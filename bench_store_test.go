package ocelotl

import (
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/eventstore"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/timeslice"
)

// The out-of-core store benchmarks: build cost (the one-time price paid at
// trace load for O(window) reads forever after) and the read side, both at
// the store layer (windowed chunk reads) and end-to-end (a 1-slice pan
// through a disk-backed Reslicer, the disk counterpart of
// BenchmarkWindowPan_Incremental — their gap is the price of out-of-core).

// BenchmarkStoreBuild measures indexing the window-benchmark trace into
// the on-disk store: stream, external sort, delta-encode, write, reopen.
func BenchmarkStoreBuild(b *testing.B) {
	tr := mpisim.ArtificialSized(windowBenchS, windowBenchW)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := microscopic.NewReslicerIndexed(microscopic.TraceSource(tr),
			microscopic.IndexOptions{Mode: microscopic.IndexDisk, Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWindowRead measures a windowed read: every series, a 2%
// time window, cold decoded-chunk cache (so the chunk pruning and decode
// are what is timed, not cache hits). chunks/op reports how many chunks
// the directory let the read touch.
func BenchmarkStoreWindowRead(b *testing.B) {
	tr := mpisim.ArtificialSized(windowBenchS, windowBenchW)
	r, err := microscopic.NewReslicerIndexed(microscopic.TraceSource(tr),
		microscopic.IndexOptions{
			Mode: microscopic.IndexDisk, Dir: b.TempDir(),
			// No decoded-chunk cache: each iteration pays the real
			// pread + decode for the window it asks for.
			Store: eventstore.Options{ChunkCacheBytes: -1},
		})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	start, end := tr.Window()
	w := (end - start) * 0.02
	before := r.IndexReadStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := start + float64(i%49)/50*(end-start-w)
		sl, err := timeslice.New(lo, lo+w, windowBenchT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.BuildAt(sl); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := r.IndexReadStats()
	b.ReportMetric(float64(after.ChunksRead-before.ChunksRead)/float64(b.N), "chunks/op")
	b.ReportMetric(float64(after.BytesRead-before.BytesRead)/float64(b.N), "readB/op")
}

// BenchmarkWindowPan_DiskIndex ping-pongs a 1-slice pan through a
// disk-backed Reslicer — BenchmarkWindowPan_Incremental with the RAM
// index swapped for the store, so the delta over it is the cost of going
// out-of-core on the interactive path.
func BenchmarkWindowPan_DiskIndex(b *testing.B) {
	tr := mpisim.ArtificialSized(windowBenchS, windowBenchW)
	r, err := microscopic.NewReslicerIndexed(microscopic.TraceSource(tr),
		microscopic.IndexOptions{Mode: microscopic.IndexDisk, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	m, err := r.Build(microscopic.Options{Slices: windowBenchT})
	if err != nil {
		b.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := 1
		if i%2 == 1 {
			d = -1
		}
		if in, err = in.Pan(d); err != nil {
			b.Fatal(err)
		}
	}
}
