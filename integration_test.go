// End-to-end integration tests over the public pipeline: simulate → encode
// → decode → model → aggregate → render → analyze, across formats and
// algorithms. These are the tests a downstream user's workflow relies on.
package ocelotl

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"ocelotl/internal/analysis"
	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/product"
	"ocelotl/internal/render"
	"ocelotl/internal/traceio"
)

// TestPipelineCaseA is the §V.A workflow: every stage chained, every
// finding asserted.
func TestPipelineCaseA(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 9, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Persist and reload through each format.
	for _, name := range []string{"a.bin", "a.csv", "a.bin.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := traceio.WriteFile(path, res.Trace); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := traceio.OpenFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := microscopic.BuildStream(r, microscopic.Options{Slices: 30})
		r.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		agg := core.New(m, core.Options{})
		pt, err := agg.Run(0.2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pt.Validate(m.H, 30); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The perturbation must be found regardless of the format the
		// trace traveled through.
		gt := res.Perturbations[0]
		devs := analysis.DeviatingResources(m, pt,
			m.Slicer.SliceOf(gt.Start)-1, m.Slicer.SliceOf(gt.End)+1)
		if len(devs) < len(gt.Ranks)/2 {
			t.Errorf("%s: only %d deviators for %d perturbed ranks", name, len(devs), len(gt.Ranks))
		}
		// And the rendering must carry every aggregate.
		scene := render.BuildScene(agg.Input, pt, render.Options{Width: 800, Height: 512})
		if scene.DataAggregates+scene.HiddenAggregates != pt.NumAreas() {
			t.Errorf("%s: scene accounts %d+%d of %d areas", name,
				scene.DataAggregates, scene.HiddenAggregates, pt.NumAreas())
		}
		var svg bytes.Buffer
		if err := scene.SVG(&svg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(svg.String(), "</svg>") {
			t.Errorf("%s: truncated SVG", name)
		}
	}
}

// TestFormatsProduceIdenticalModels: a trace read back from CSV and from
// binary must yield bit-identical microscopic models (both codecs encode
// float64 losslessly).
func TestFormatsProduceIdenticalModels(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 3, EventTarget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	models := make([]*microscopic.Model, 0, 2)
	for _, name := range []string{"t.csv", "t.bin"} {
		path := filepath.Join(dir, name)
		if err := traceio.WriteFile(path, res.Trace); err != nil {
			t.Fatal(err)
		}
		r, err := traceio.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := microscopic.BuildStream(r, microscopic.Options{Slices: 30})
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	a, b := models[0], models[1]
	for x := 0; x < a.NumStates(); x++ {
		for s := 0; s < a.NumResources(); s++ {
			for ti := 0; ti < 30; ti++ {
				if a.D(x, s, ti) != b.D(x, s, ti) {
					t.Fatalf("models differ at (%d,%d,%d)", x, s, ti)
				}
			}
		}
	}
	// Consequently the partitions agree exactly.
	pa, err := core.Aggregate(a, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.Aggregate(b, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Signature() != pb.Signature() {
		t.Error("partitions differ across formats")
	}
}

// TestAllAlgorithmsOnAllCases: the four algorithms produce valid
// partitions on every Table II case, and the spatiotemporal optimum
// dominates the product baseline.
func TestAllAlgorithmsOnAllCases(t *testing.T) {
	for _, c := range grid5000.AllCases() {
		res, err := mpisim.GenerateCase(c, mpisim.Config{Seed: 1, EventTarget: 40000})
		if err != nil {
			t.Fatalf("case %s: %v", c, err)
		}
		m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
		if err != nil {
			t.Fatalf("case %s: %v", c, err)
		}
		in := core.NewInput(m, core.Options{})
		st, err := in.NewSolver().Run(0.5)
		if err != nil {
			t.Fatalf("case %s st: %v", c, err)
		}
		pr, err := product.New(m).Evaluate(in, 0.5)
		if err != nil {
			t.Fatalf("case %s product: %v", c, err)
		}
		if err := st.Validate(m.H, 30); err != nil {
			t.Errorf("case %s st: %v", c, err)
		}
		if err := pr.Validate(m.H, 30); err != nil {
			t.Errorf("case %s product: %v", c, err)
		}
		if st.PIC < pr.PIC-1e-9*(1+math.Abs(pr.PIC)) {
			t.Errorf("case %s: core pIC %.6f < product %.6f", c, st.PIC, pr.PIC)
		}
	}
}

// TestSliderWorkflow mimics the analyst's interaction: load once, sweep p,
// every partition valid, detail monotone at the endpoints.
func TestSliderWorkflow(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseB, mpisim.Config{Seed: 2, EventTarget: 60000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	agg := core.New(m, core.Options{})
	points, err := agg.SignificantPs(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d slider stops on a 512-process trace", len(points))
	}
	for _, q := range points {
		pt, err := agg.Run(q.P)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(m.H, 30); err != nil {
			t.Fatalf("p=%v: %v", q.P, err)
		}
		if pt.NumAreas() != q.Areas {
			t.Errorf("p=%v: re-run gives %d areas, point said %d", q.P, pt.NumAreas(), q.Areas)
		}
	}
	if points[0].Areas <= points[len(points)-1].Areas {
		t.Error("first stop should be more detailed than the last")
	}
}

// TestGanttVsOverviewContrast quantifies the paper's core claim on one
// trace: the Gantt chart cannot draw most events, while the aggregated
// overview fits the entity budget with bounded information loss.
func TestGanttVsOverviewContrast(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 5, EventTarget: 150000})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := render.Gantt(res.Trace, 1200, 512, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	agg := core.New(m, core.Options{})
	pt, err := agg.Run(0.35)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SubPixel < stats.Events/2 {
		t.Errorf("Gantt not cluttered: %d of %d sub-pixel", stats.SubPixel, stats.Events)
	}
	if pt.NumAreas() > 512 {
		t.Errorf("overview exceeds entity budget: %d areas", pt.NumAreas())
	}
	rootGain, _ := agg.RootGainLoss()
	if pt.Gain < 0.5*rootGain {
		t.Errorf("overview reduction too weak: gain %.1f of %.1f", pt.Gain, rootGain)
	}
}
