// Quickstart: the paper's Fig. 3 pipeline in thirty lines — build a trace,
// derive its microscopic model, compute optimal spatiotemporal
// aggregations at two detail levels, and print terminal views.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/render"
)

func main() {
	// 1. A trace: 12 resources in 3 clusters, 20 seconds, 2 states.
	//    (Any trace.Trace works; this is the paper's Fig. 3 artifact.)
	tr := mpisim.Artificial()

	// 2. The microscopic model: events binned into |T| regular slices.
	model, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The input pass precomputes gain/loss for every candidate area;
	//    each Solver then answers one Algorithm 1 query, and any number
	//    of them may run concurrently against the shared input.
	in := core.NewInput(model, core.Options{})
	solver := in.NewSolver()

	for _, p := range []float64{0.25, 0.9} {
		pt, err := solver.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p = %.2f → %d aggregates (gain %.1f bits, loss %.1f bits)\n",
			p, pt.NumAreas(), pt.Gain, pt.Loss)
		scene := render.BuildScene(in, pt, render.Options{Width: 600, Height: 240})
		fmt.Println(scene.ASCII(12, 60))
	}

	// 4. The significant p values are the slider stops an analyst
	//    would explore.
	points, err := in.SignificantPs(1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("significant p values:")
	for _, q := range points {
		fmt.Printf("  p=%6.4f → %3d areas\n", q.P, q.Areas)
	}
}
