// naslu reproduces the paper's §V.B case study: NAS-LU class C on 700
// cores spread over three heterogeneous Nancy clusters. The aggregation
// must separate the clusters by behaviour — Graphene homogeneous,
// Graphite (10G Ethernet) spatially fragmented, Griffon regular except a
// rupture at 34.5 s caused by switches shared with hidden machines.
//
//	go run ./examples/naslu [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ocelotl/internal/analysis"
	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/render"
)

func main() {
	scale := flag.Float64("scale", 0.005, "fraction of the paper's 218M events")
	seed := flag.Int64("seed", 42, "simulation seed")
	out := flag.String("out", "", "optional SVG output for the overview")
	flag.Parse()

	res, err := mpisim.GenerateCase(grid5000.CaseC, mpisim.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated NAS-LU class C, 700 processes on Nancy: %d events\n", res.Trace.NumEvents())

	model, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		log.Fatal(err)
	}
	in := core.NewInput(model, core.Options{})
	pt, err := in.NewSolver().Run(0.35)
	if err != nil {
		log.Fatal(err)
	}

	// Per-cluster reading (the Fig. 4 narrative).
	fmt.Printf("\npartition: %d areas\n", pt.NumAreas())
	for _, cs := range analysis.SummarizeClusters(in, pt, 2) {
		name := strings.TrimPrefix(cs.Path, "nancy/")
		shape := "spatially merged"
		if !cs.SpatiallyMerged {
			shape = "spatially separated"
		}
		fmt.Printf("  %-10s %4d areas, %2d temporal cuts, %s (mode %s)\n",
			name, cs.Areas, cs.TemporalCuts, shape, model.States[cs.Mode])
	}

	// The Griffon rupture: find the temporal boundary nearest 34.5 s
	// among griffon-only areas.
	var rupture mpisim.Perturbation
	for _, p := range res.Perturbations {
		if p.Kind == "switch-sharing" {
			rupture = p
		}
	}
	griffon := model.H.ByPath["nancy/griffon"]
	bestGap := 1e18
	bestT := -1.0
	for _, a := range pt.Areas {
		if !griffon.Contains(a.Node) || a.J >= model.NumSlices()-1 {
			continue
		}
		_, cutTime := model.Slicer.Bounds(a.J)
		if gap := abs(cutTime - rupture.Start); gap < bestGap {
			bestGap, bestT = gap, cutTime
		}
	}
	fmt.Printf("\ninjected rupture at %.1f s (paper: 34.5 s); nearest griffon cut at %.1f s\n", rupture.Start, bestT)
	if bestGap <= 2*model.Slicer.Width() {
		fmt.Println("→ rupture isolated by the aggregation")
	} else {
		fmt.Println("→ rupture NOT isolated (try a lower p)")
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := render.BuildScene(in, pt, render.Options{Width: 1000, Height: 700, MinHeight: 2}).SVG(f); err != nil {
			log.Fatal(err)
		}
		fmt.Println("overview written to", *out)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
