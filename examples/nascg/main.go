// nascg reproduces the paper's §V.A case study end to end: NAS-CG class C
// on 64 cores of the Rennes parapide cluster, with a transient network
// contention around t ≈ 3 s. The example simulates the run, writes the
// trace to disk, reads it back through the streaming pipeline, aggregates,
// and checks the detection against the injected ground truth.
//
//	go run ./examples/nascg [-scale 0.05] [-out fig1.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ocelotl/internal/analysis"
	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/render"
	"ocelotl/internal/traceio"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the paper's 3.8M events")
	seed := flag.Int64("seed", 42, "simulation seed")
	out := flag.String("out", "", "optional SVG output for the overview")
	flag.Parse()

	// Simulate the paper's case A and persist it like a real tracing
	// toolchain would.
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "nascg-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "caseA.bin")
	if err := traceio.WriteFile(path, res.Trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated NAS-CG class C, 64 processes: %d events → %s\n", res.Trace.NumEvents(), path)

	// Stream the file back into the microscopic model (30 slices, as in
	// the paper) and aggregate.
	r, err := traceio.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	model, err := microscopic.BuildStream(r, microscopic.Options{Slices: 30})
	if err != nil {
		log.Fatal(err)
	}
	in := core.NewInput(model, core.Options{})
	pt, err := in.NewSolver().Run(0.2)
	if err != nil {
		log.Fatal(err)
	}
	rep := analysis.Describe(in, pt, 2)
	fmt.Print(rep.Format(model.States))

	// Score the detection against the injected contention window.
	gt := res.Perturbations[0]
	fmt.Printf("\ninjected: %s %0.2f–%0.2f s on %d of 64 ranks (paper: 26)\n",
		gt.Kind, gt.Start, gt.End, len(gt.Ranks))
	devs := analysis.DeviatingResources(model, pt,
		model.Slicer.SliceOf(gt.Start)-1, model.Slicer.SliceOf(gt.End)+1)
	truth := make(map[string]bool, len(gt.Ranks))
	for _, rank := range gt.Ranks {
		truth[res.Trace.Resources[rank]] = true
	}
	hits := 0
	for _, d := range devs {
		if truth[d.Path] {
			hits++
		}
	}
	precision := 0.0
	if len(devs) > 0 {
		precision = float64(hits) / float64(len(devs))
	}
	fmt.Printf("detected %d deviating processes near the window (precision %.0f%%, recall %.0f%%)\n",
		len(devs), 100*precision, 100*float64(hits)/float64(len(gt.Ranks)))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := render.BuildScene(in, pt, render.Options{Width: 1000, Height: 512}).SVG(f); err != nil {
			log.Fatal(err)
		}
		fmt.Println("overview written to", *out)
	}
}
