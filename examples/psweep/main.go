// psweep explores the gain/loss trade-off of §III.C interactively: it
// enumerates the significant p values of a trace (the distinct optimal
// partitions reachable by the slider), prints the quality curves, and
// compares the spatiotemporal optimum against the three baselines at each
// stop — the data behind the paper's claim that the analyst can "easily
// choose several levels of details".
//
//	go run ./examples/psweep [-case A] [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/product"
	"ocelotl/internal/spatial"
	"ocelotl/internal/temporal"
)

func main() {
	caseName := flag.String("case", "A", "Table II case to analyze")
	scale := flag.Float64("scale", 0.02, "event-count scale")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	res, err := mpisim.GenerateCase(grid5000.Case(*caseName), mpisim.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	model, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		log.Fatal(err)
	}
	// One immutable input serves every query below; the sweeps solve
	// many p values concurrently against it.
	in := core.NewInput(model, core.Options{})
	rootGain, rootLoss := in.RootGainLoss()
	fmt.Printf("case %s: %d events, |S|=%d, |T|=%d\n", *caseName, res.Trace.NumEvents(),
		model.NumResources(), model.NumSlices())
	fmt.Printf("full aggregation: gain %.1f bits, loss %.1f bits\n\n", rootGain, rootLoss)

	points, err := in.SignificantPs(1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d significant p values (each a distinct optimal partition):\n", len(points))
	fmt.Printf("%10s %8s %12s %12s %14s %14s\n", "p", "areas", "gain%", "loss%", "norm. gain", "norm. loss")
	for _, q := range points {
		fmt.Printf("%10.4f %8d %11.1f%% %11.1f%% %14.2f %14.2f\n",
			q.P, q.Areas, 100*q.Gain/rootGain, 100*safeDiv(q.Loss, rootLoss), q.Gain, q.Loss)
	}

	// Baseline comparison at three representative stops. The
	// spatiotemporal column is solved in parallel over the shared input.
	sa, ta, pa := spatial.New(model), temporal.New(model), product.New(model)
	fmt.Printf("\nbaseline comparison (pIC at equal p; higher is better):\n")
	fmt.Printf("%6s %14s %14s %14s %14s\n", "p", "spatiotemporal", "product", "spatial-only", "temporal-only")
	ps := []float64{0.15, 0.5, 0.85}
	sts, err := in.SweepRun(ps)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range ps {
		st := sts[i]
		pr, err := pa.Evaluate(in, p)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := sa.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := ta.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		// The 1-D baselines optimize different (reduced) datasets; their
		// pIC is reported on their own criterion for context, the
		// product is scored on the full model.
		fmt.Printf("%6.2f %14.2f %14.2f %14.2f %14.2f\n", p, st.PIC, pr.PIC, sp.PIC, tp.PIC)
	}
	fmt.Println("\n(spatiotemporal ≥ product always; 1-D columns use their reduced datasets)")
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
