#!/usr/bin/env bash
# Follow-mode smoke: prove the live-ingestion path end to end with real
# binaries — tracegen streams a trace to disk in flushed batches
# (-append-every) while ocelotld tails it in follow mode; the daemon must
# ingest events as they land (events strictly grow between polls), serve
# the live window (live=1), publish a follow block whose horizon never
# moves backwards, count follow ticks in /metrics, stop ingestion on
# DELETE, and report no armed failpoints.
#
#   scripts/follow_smoke.sh            # defaults: ~case A at small scale
#   PORT=8099 scripts/follow_smoke.sh  # alternate port
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8098}"

tmp="$(mktemp -d)"
daemon=""
writer=""
cleanup() {
  [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
  [ -n "$writer" ] && kill "$writer" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/tracegen" ./cmd/tracegen
go build -o "$tmp/ocelotld" ./cmd/ocelotld

# A writer that takes several seconds: flush every 2000 events, pause
# between flushes so the daemon observes many distinct ticks.
"$tmp/tracegen" -case A -scale 0.002 -out "$tmp/live.bin" \
  -append-every 2000 -append-interval 150ms &
writer=$!

"$tmp/ocelotld" -addr "127.0.0.1:$PORT" &
daemon=$!
for i in $(seq 1 50); do
  curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done

# Follow-load while the writer is still running.
curl -fs -X POST -d "{\"id\":\"live\",\"path\":\"$tmp/live.bin\",\"follow\":true,\"poll_ms\":100}" \
  "http://127.0.0.1:$PORT/traces" > "$tmp/load.json"
grep -q '"follow"' "$tmp/load.json"

events_of() {
  curl -fs "http://127.0.0.1:$PORT/traces/live" | grep -o '"events":[0-9]*' | grep -o '[0-9]*'
}
horizon_of() {
  curl -fs "http://127.0.0.1:$PORT/traces/live" | grep -o '"horizon":[0-9.e+-]*' | head -1 | cut -d: -f2
}

# Ingestion must make progress while the writer runs: two polls a second
# apart must show strictly more events, and the horizon must not retreat.
e1=$(events_of); h1=$(horizon_of)
sleep 1
e2=$(events_of); h2=$(horizon_of)
echo "follow_smoke: events $e1 -> $e2, horizon $h1 -> $h2"
if [ "$e2" -le "$e1" ]; then
  echo "follow_smoke: FAIL — no ingestion progress while the writer runs" >&2
  exit 1
fi
awk -v a="$h1" -v b="$h2" 'BEGIN { exit (b+0 >= a+0) ? 0 : 1 }' || {
  echo "follow_smoke: FAIL — horizon moved backwards ($h1 -> $h2)" >&2
  exit 1
}

# The live window answers while ingestion is in flight.
curl -fs "http://127.0.0.1:$PORT/traces/live/aggregate?p=0.35&live=1" | grep -q '"areas"'
# A window past the horizon is refused.
code=$(curl -s -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:$PORT/traces/live/aggregate?p=0.35&lo=1e12&hi=2e12&slices=4")
[ "$code" = "400" ] || { echo "follow_smoke: FAIL — past-horizon query got $code, want 400" >&2; exit 1; }

# Let the writer finish, then the daemon must converge on the full trace.
wait "$writer"; writer=""
total=$("$tmp/tracegen" -case A -scale 0.002 -out "$tmp/full.bin" 2>&1 | grep -o '[0-9]* events' | grep -o '[0-9]*' || true)
for i in $(seq 1 100); do
  [ "$(events_of)" -ge "${total:-1}" ] && break
  sleep 0.1
done
echo "follow_smoke: converged at $(events_of) events (writer wrote ${total:-?})"
if [ -n "$total" ] && [ "$(events_of)" -ne "$total" ]; then
  echo "follow_smoke: FAIL — daemon ingested $(events_of) of $total events" >&2
  exit 1
fi

# Follow counters surfaced at /metrics, and no failpoints armed. (grep
# without -q so it drains curl's pipe — -q + pipefail turns an early
# match into a curl write error.)
curl -fs "http://127.0.0.1:$PORT/metrics" | grep '^ocelotl_follow_ticks_total [1-9]' >/dev/null
curl -fs "http://127.0.0.1:$PORT/debug/failpoints" | grep -Eq '"active":(null|\[\])' || {
  echo "follow_smoke: FAIL — failpoints armed on a production-shaped daemon" >&2
  exit 1
}

# DELETE stops the follower and frees the id.
curl -fs -X DELETE "http://127.0.0.1:$PORT/traces/live"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/traces/live")
[ "$code" = "404" ] || { echo "follow_smoke: FAIL — trace survived DELETE ($code)" >&2; exit 1; }

kill "$daemon" && wait "$daemon" 2>/dev/null || true
daemon=""
echo "follow_smoke: OK — live ingestion end to end"
