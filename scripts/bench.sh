#!/usr/bin/env bash
# Run the root benchmark suite and emit BENCH_core.json (benchmark name →
# ns/op, allocs/op, bytes/op, plus any custom metric like
# BenchmarkSweepCancel's cancel_ns_per_op: time-to-return after cancelling
# a mid-flight sweep) so successive PRs leave a comparable perf trajectory
# in the repo. The suite covers the engine (input pass, Run, the fused
# multi-p sweeps BenchmarkSweepFused_{K4,K16} vs BenchmarkSweepSingle_K16,
# the batched dichotomy BenchmarkSignificantPs{,_Batched}, cooperative
# cancellation), the windowing families (BenchmarkWindowPan/Zoom), the
# out-of-core store (BenchmarkStoreBuild, BenchmarkStoreWindowRead with
# chunks/op + readB/op, and BenchmarkWindowPan_DiskIndex — the disk twin
# of the incremental pan), live ingestion (BenchmarkFollowTick: one
# Extend + live-window advance, the follower's steady-state tick, vs
# BenchmarkFollowTick_Rebuild) and the serving layer
# (BenchmarkServerPan_{Hit,Derived,Scratch}: one aggregate request
# through the HTTP handler per cache build path). A subset of
# these are gated against regressions by scripts/benchdiff.sh.
#
#   scripts/bench.sh                       # every benchmark, 1 iteration
#   BENCH='BenchmarkWindow' scripts/bench.sh   # a subset
#   BENCHTIME=10x scripts/bench.sh             # more iterations per point
#   OUT=/tmp/b.json scripts/bench.sh           # alternate output path
#
# One iteration keeps this a smoke run (CI uses it to prove every
# benchmark still executes); for publishable numbers use BENCHTIME=10x or
# a duration like BENCHTIME=1s.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${BENCH:-.}"
benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_core.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$tmp"

awk '
BEGIN { printf "{\n" }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = ""; allocs = ""; bytes = ""; cancel = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")        ns = $(i-1)
    if ($i == "allocs/op")    allocs = $(i-1)
    if ($i == "B/op")         bytes = $(i-1)
    if ($i == "cancel-ns/op") cancel = $(i-1)
  }
  if (ns != "") {
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s", \
      name, ns, (allocs == "" ? 0 : allocs), (bytes == "" ? 0 : bytes)
    if (cancel != "") printf ", \"cancel_ns_per_op\": %s", cancel
    printf "}"
  }
}
END { printf "\n}\n" }
' "$tmp" > "$out"

echo "wrote $out"
