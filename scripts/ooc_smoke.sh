#!/usr/bin/env bash
# Out-of-core smoke: prove the daemon's memory stays ~flat as the trace
# grows, because the disk index keeps events on disk and window builds
# read only the chunks they overlap.
#
# The script synthesizes two traces with tracegen's exact-count streaming
# mode (-events, O(1) generator memory), serves each from a fresh ocelotld
# forced onto the disk index, drives a load + aggregate + pan round-trip
# through ocelotlsmoke and curl, and compares the daemons' peak RSS
# (VmHWM): a RAM index would grow ~28 B/event (~10x the event delta here);
# the disk index must stay within RSS_GROWTH_MB. It also asserts the store
# was actually exercised: the trace reports "index":"disk" and
# /debug/cachestats shows a nonzero chunk-read counter.
#
#   scripts/ooc_smoke.sh                        # 0.5M vs 5M events
#   LARGE_EVENTS=50000000 scripts/ooc_smoke.sh  # go bigger locally
#   RSS_GROWTH_MB=64 scripts/ooc_smoke.sh       # tighter ceiling
set -euo pipefail
cd "$(dirname "$0")/.."

SMALL_EVENTS="${SMALL_EVENTS:-500000}"
LARGE_EVENTS="${LARGE_EVENTS:-5000000}"
RSS_GROWTH_MB="${RSS_GROWTH_MB:-128}"
PORT="${PORT:-8097}"

tmp="$(mktemp -d)"
daemon=""
cleanup() {
  [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/tracegen" ./cmd/tracegen
go build -o "$tmp/ocelotld" ./cmd/ocelotld
go build -o "$tmp/ocelotlsmoke" ./cmd/ocelotlsmoke

# run_one <events> -> appends peak RSS in kB to $tmp/rss
run_one() {
  local events=$1
  "$tmp/tracegen" -events "$events" -out "$tmp/trace.bin"
  "$tmp/ocelotld" -addr "127.0.0.1:$PORT" -index disk -index-dir "$tmp" &
  daemon=$!
  "$tmp/ocelotlsmoke" -addr "http://127.0.0.1:$PORT" -trace big="$tmp/trace.bin"
  # Pan round-trip against the disk index: the window moves one slice and
  # the response must still be well-formed.
  curl -fs "http://127.0.0.1:$PORT/traces/big/aggregate?p=0.35&slices=20" >/dev/null
  curl -fs "http://127.0.0.1:$PORT/traces/big/aggregate?p=0.35&slices=20&pan=1" >/dev/null
  curl -fs "http://127.0.0.1:$PORT/traces/big/aggregate?p=0.35&slices=20&pan=-1" >/dev/null
  # The disk backend must actually be the one serving.
  curl -fs "http://127.0.0.1:$PORT/traces/big" | grep -q '"index":"disk"'
  curl -fs "http://127.0.0.1:$PORT/debug/cachestats" | grep -q '"index_chunks_read":[1-9]'
  # Peak RSS while the daemon is still alive, then shut it down.
  awk '/VmHWM/ {print $2}' "/proc/$daemon/status" >> "$tmp/rss"
  kill "$daemon" && wait "$daemon" 2>/dev/null || true
  daemon=""
  rm -f "$tmp/trace.bin"
}

run_one "$SMALL_EVENTS"
run_one "$LARGE_EVENTS"

small_kb=$(sed -n 1p "$tmp/rss")
large_kb=$(sed -n 2p "$tmp/rss")
growth_mb=$(( (large_kb - small_kb) / 1024 ))
echo "ooc_smoke: peak RSS ${SMALL_EVENTS} events: $((small_kb / 1024)) MB, ${LARGE_EVENTS} events: $((large_kb / 1024)) MB (growth ${growth_mb} MB, ceiling ${RSS_GROWTH_MB} MB)"
if [ "$growth_mb" -gt "$RSS_GROWTH_MB" ]; then
  echo "ooc_smoke: FAIL — a $(( (LARGE_EVENTS - SMALL_EVENTS) / 1000000 ))M-event increase grew peak RSS by ${growth_mb} MB (> ${RSS_GROWTH_MB} MB); the index is not out-of-core" >&2
  exit 1
fi
echo "ooc_smoke: OK — memory stays ~flat as the trace grows"
