#!/usr/bin/env bash
# Crash-recovery smoke: prove the durable-state path end to end with real
# binaries and a real SIGKILL. An ocelotld with -state-dir loads a batch
# trace on a disk index and tails a trace that tracegen is still writing;
# we kill -9 the daemon mid-ingestion and restart it with identical
# flags. The restarted daemon must recover both traces from the manifest:
# the batch trace by reopening its sealed store in place (byte-identical
# responses, no re-index), the live trace by resuming its tail at the
# journaled offset (ingestion keeps making progress and converges on
# exactly the events the writer wrote — nothing lost, nothing ingested
# twice). Finally the offline scrub must call the crash-shaped state
# directory clean.
#
#   scripts/crash_smoke.sh            # defaults
#   PORT=8099 scripts/crash_smoke.sh  # alternate port
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8097}"

tmp="$(mktemp -d)"
daemon=""
writer=""
cleanup() {
  [ -n "$daemon" ] && kill -9 "$daemon" 2>/dev/null || true
  [ -n "$writer" ] && kill "$writer" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/tracegen" ./cmd/tracegen
go build -o "$tmp/ocelotld" ./cmd/ocelotld

# A batch trace written up front, and a live one that takes several
# seconds: flush every 2000 events with pauses, so the crash lands
# mid-ingestion.
total=$("$tmp/tracegen" -case A -scale 0.002 -out "$tmp/caseA.bin" 2>&1 | grep -o '[0-9]* events' | grep -o '[0-9]*' || true)
"$tmp/tracegen" -case A -scale 0.002 -out "$tmp/live.bin" \
  -append-every 400 -append-interval 250ms &
writer=$!

start_daemon() {
  "$tmp/ocelotld" -addr "127.0.0.1:$PORT" -state-dir "$tmp/state" \
    -index disk -checkpoint-ticks 3 &
  daemon=$!
  for i in $(seq 1 50); do
    curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
}
events_of() {
  curl -fs "http://127.0.0.1:$PORT/traces/live" | grep -o '"events":[0-9]*' | grep -o '[0-9]*'
}

start_daemon
curl -fs -X POST -d "{\"id\":\"art\",\"path\":\"$tmp/caseA.bin\"}" \
  "http://127.0.0.1:$PORT/traces" >/dev/null
curl -fs -X POST -d "{\"id\":\"live\",\"path\":\"$tmp/live.bin\",\"follow\":true,\"poll_ms\":100}" \
  "http://127.0.0.1:$PORT/traces" | grep -q '"follow"'

q="http://127.0.0.1:$PORT/traces/art/aggregate?p=0.35&slices=16"
curl -fs "$q" > "$tmp/art.before"

# Let the follower ingest a few flushes (and the tick checkpoint journal
# its offset), then kill -9: no shutdown hook, no final checkpoint.
sleep 1
e1=$(events_of)
[ "$e1" -gt 0 ] || { echo "crash_smoke: FAIL — no ingestion before the crash" >&2; exit 1; }
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=""

start_daemon
echo "crash_smoke: restarted after SIGKILL at $e1 events"

# The batch trace came back by reopening its sealed store — and answers
# bit-identically to the pre-crash daemon.
curl -fs "$q" > "$tmp/art.after"
cmp "$tmp/art.before" "$tmp/art.after" || {
  echo "crash_smoke: FAIL — batch responses diverge across the crash" >&2
  exit 1
}

# The follower resumed: the follow block is live again and ingestion
# makes progress while the writer still runs.
curl -fs "http://127.0.0.1:$PORT/traces/live" | grep -q '"follow"'
e2=$(events_of)
sleep 1
e3=$(events_of)
echo "crash_smoke: resumed follower at $e2 events, $e3 a second later"
if [ "$e3" -le "$e2" ]; then
  echo "crash_smoke: FAIL — no ingestion progress after recovery" >&2
  exit 1
fi

# Let the writer finish; the daemon must converge on exactly the events
# written — a replayed prefix (double-ingest) or a lost batch both show
# up as the wrong count.
wait "$writer"; writer=""
for i in $(seq 1 100); do
  [ "$(events_of)" -ge "${total:-1}" ] && break
  sleep 0.1
done
echo "crash_smoke: converged at $(events_of) events (writer wrote ${total:-?})"
if [ -n "$total" ] && [ "$(events_of)" -ne "$total" ]; then
  echo "crash_smoke: FAIL — daemon ingested $(events_of) of $total events" >&2
  exit 1
fi

# Checkpoints surfaced in /metrics. (grep without -q drains curl's pipe —
# -q + pipefail turns an early match into a curl write error.)
curl -fs "http://127.0.0.1:$PORT/metrics" | grep '^ocelotl_checkpoints_total [1-9]' >/dev/null

# Kill -9 once more so the scrub sees a crash-shaped directory, then the
# offline scrub must call it clean.
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=""
"$tmp/ocelotld" -scrub -state-dir "$tmp/state" > "$tmp/scrub.json"
grep -q '"clean": true' "$tmp/scrub.json" || {
  echo "crash_smoke: FAIL — offline scrub not clean:" >&2
  cat "$tmp/scrub.json" >&2
  exit 1
}

echo "crash_smoke: OK — durable state survives kill -9 end to end"
