#!/usr/bin/env bash
# Compare a fresh benchmark run against the committed BENCH_core.json and
# fail on regressions of the named hot-path benchmarks, so a PR cannot
# silently give back the engine's headline wins (the fused p-sweep, the
# batched significant-p frontier, the incremental pan, the pyramid zoom,
# the serving hit path, the Table II solve).
#
#   scripts/benchdiff.sh                    # gated benches only, 5 iters, +25%
#   REGRESS_PCT=40 scripts/benchdiff.sh     # looser gate
#   CANCEL_REGRESS_PCT=300 benchdiff.sh     # looser cancel-latency gate
#   BENCHTIME=10x scripts/benchdiff.sh      # steadier fresh numbers
#   FRESH=/tmp/b.json scripts/benchdiff.sh  # reuse an existing fresh run
#   BASELINE=old.json scripts/benchdiff.sh  # alternate baseline
#
# The fresh run benches only the gated names (BENCH overrides), so the
# gate costs a fraction of a full suite run; numbers are compared against
# a baseline committed from a comparable machine — re-baseline
# BENCH_core.json deliberately when hardware or an accepted trade-off
# moves a hot path.
#
# Hot benchmarks missing from the baseline are reported and skipped (a new
# benchmark has no history); hot benchmarks missing from the fresh run
# fail (the suite lost coverage). Everything else in the two files is
# ignored — the gate is deliberately narrow so structural benchmarks can
# move freely while the user-facing latencies cannot.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${BASELINE:-BENCH_core.json}"
threshold="${REGRESS_PCT:-25}"
fresh="${FRESH:-}"

if [ ! -f "$baseline" ]; then
  echo "benchdiff: baseline $baseline not found" >&2
  exit 1
fi

# The gated hot paths: one per headline claim of the perf trajectory.
hot="
BenchmarkSignificantPs
BenchmarkSignificantPs_Batched
BenchmarkSweepFused_K4
BenchmarkSweepFused_K16
BenchmarkWindowPan_Incremental
BenchmarkWindowPan_DiskIndex
BenchmarkWindowZoom_Incremental
BenchmarkWindowZoomOut_Incremental
BenchmarkServerPan_Hit
BenchmarkServerZoom_Pyramid
BenchmarkTable2_AggregationRun_C
BenchmarkFollowTick
"
# BenchmarkSweepCancel is gated on its cancel_ns_per_op metric instead of
# ns/op (its ns/op mostly measures the deliberate let-it-start delay).
# The threshold is looser — the metric sits in the tens of microseconds,
# where scheduler noise dwarfs 25% — but bounds the promptness promise:
# cancellation must stay within one fused node iteration, not drift to
# milliseconds.
cancel_bench="BenchmarkSweepCancel"
cancel_threshold="${CANCEL_REGRESS_PCT:-150}"

if [ -z "$fresh" ]; then
  fresh="$(mktemp)"
  trap 'rm -f "$fresh"' EXIT
  pattern="$(printf '%s$|' $hot $cancel_bench)"
  BENCH="${BENCH:-${pattern%|}}" BENCHTIME="${BENCHTIME:-5x}" OUT="$fresh" ./scripts/bench.sh >/dev/null
fi

ns_of() { # ns_of <file> <name> — empty when absent
  grep -o "\"$2\": {\"ns_per_op\": [0-9]*" "$1" | grep -o '[0-9]*$' || true
}

cancel_of() { # cancel_of <file> <name> — empty when absent
  grep -o "\"$2\": {[^}]*\"cancel_ns_per_op\": [0-9]*" "$1" | grep -o '[0-9]*$' || true
}

fail=0
for name in $hot; do
  base_ns="$(ns_of "$baseline" "$name")"
  new_ns="$(ns_of "$fresh" "$name")"
  if [ -z "$base_ns" ]; then
    echo "SKIP  $name: not in baseline (no history yet)"
    continue
  fi
  if [ -z "$new_ns" ]; then
    echo "FAIL  $name: missing from the fresh run (lost benchmark coverage)"
    fail=1
    continue
  fi
  limit=$((base_ns + base_ns * threshold / 100))
  if [ "$new_ns" -gt "$limit" ]; then
    echo "FAIL  $name: ${new_ns} ns/op vs baseline ${base_ns} (> +${threshold}%)"
    fail=1
  else
    delta=$(((new_ns - base_ns) * 100 / base_ns))
    echo "ok    $name: ${new_ns} ns/op vs ${base_ns} (${delta}%)"
  fi
done

base_c="$(cancel_of "$baseline" "$cancel_bench")"
new_c="$(cancel_of "$fresh" "$cancel_bench")"
if [ -n "$base_c" ] && [ -n "$new_c" ]; then
  limit=$((base_c + base_c * cancel_threshold / 100))
  if [ "$new_c" -gt "$limit" ]; then
    echo "FAIL  $cancel_bench: cancel ${new_c} ns vs baseline ${base_c} (> +${cancel_threshold}%)"
    fail=1
  else
    echo "ok    $cancel_bench: cancel ${new_c} ns vs ${base_c}"
  fi
elif [ -z "$base_c" ]; then
  echo "SKIP  $cancel_bench: no cancel_ns_per_op in baseline"
else
  echo "FAIL  $cancel_bench: cancel_ns_per_op missing from the fresh run"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "benchdiff: hot-path regression beyond +${threshold}% — investigate or re-baseline BENCH_core.json deliberately" >&2
  exit 1
fi
echo "benchdiff: hot paths within +${threshold}% of $baseline"
