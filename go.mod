module ocelotl

go 1.24
