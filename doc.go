// Package ocelotl reproduces "A Spatiotemporal Data Aggregation Technique
// for Performance Analysis of Large-scale Execution Traces" (Dosimont,
// Lamarche-Perrin, Schnorr, Huard, Vincent — IEEE CLUSTER 2014): an exact
// algorithm that partitions an execution trace's space×time plane into
// homogeneous aggregates by maximizing a parametrized information
// criterion, plus the full pipeline around it — trace model and codecs,
// microscopic description, unidimensional baselines, NAS-PB/Grid'5000
// workload simulation, and the §IV visualization.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the
// library lives under internal/ and the executables under cmd/. See
// README.md for the package tour and quickstart.
package ocelotl
