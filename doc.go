// Package ocelotl reproduces "A Spatiotemporal Data Aggregation Technique
// for Performance Analysis of Large-scale Execution Traces" (Dosimont,
// Lamarche-Perrin, Schnorr, Huard, Vincent — IEEE CLUSTER 2014): an exact
// algorithm that partitions an execution trace's space×time plane into
// homogeneous aggregates by maximizing a parametrized information
// criterion, plus the full pipeline around it — trace model and codecs,
// microscopic description, unidimensional baselines, NAS-PB/Grid'5000
// workload simulation, and the §IV visualization.
//
// The engine serves interactive exploration in both of its dimensions:
// one immutable core.Input answers any number of concurrent p-queries
// from a capacity-bounded solver pool, and many-p exploration is fused —
// Solver.RunMany carries up to core.MaxLanes p-lanes through a single
// triangular iteration per hierarchy node (SweepRun/SweepQuality split
// their p list into lane blocks over the worker pool; SignificantPs is a
// batched dichotomy solving each frontier generation in one fused call),
// bit-identical per lane to independent Run(p) solves. Window changes
// are incremental — microscopic.Reslicer keeps a per-resource event
// index and core.Input.Update rebuilds only what the new slices touch,
// so a zoom or pan costs O(changed slices), not a fresh input pass.
// Queries whose answer stops mattering stop costing: every engine entry
// point has a context-aware twin (RunContext, RunManyContext,
// SweepRunContext, SignificantPsContext, AcquireSolverContext — and
// NewInputContext/UpdateContext for the input pass itself, which dies
// mid-fill) that cancels cooperatively at hierarchy-node granularity,
// drains its goroutines, releases its pooled solvers, and returns
// ctx.Err() with no partial results.
//
// The serving layer turns that into a long-lived service. The packages
// layer traceio → eventstore → microscopic → core → server: traceio
// streams trace files, eventstore (below microscopic, no dependency on
// it) is the out-of-core option — a chunked, per-resource, time-ordered
// on-disk event index written once at load so window builds read only
// the chunks they overlap — microscopic indexes each loaded trace into
// one Reslicer (RAM for small traces, the eventstore past a size
// threshold, bit-identical either way),
// core builds immutable per-window Inputs and answers p-queries, and
// internal/server (the HTTP/JSON front-end behind cmd/ocelotld) keeps a
// window-keyed, byte-budgeted LRU cache of those Inputs whose misses are
// derived incrementally from the nearest cached overlapping window —
// with singleflight deduplication, per-request build-path logging and
// /debug/cachestats counters. Request contexts flow through the whole
// serve path: a timed-out or disconnected request answers 499, counts
// toward the "aborted" stat, and abandons its engine work; singleflight
// build leaders detach from their first caller's context and die only
// when every coalesced waiter has cancelled.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation, plus the
// interactive-windowing and scaling families; scripts/bench.sh distills a
// run into BENCH_core.json for cross-PR comparison. The library lives
// under internal/ and the executables under cmd/. See README.md for the
// package tour and quickstart.
package ocelotl
