// Serving-layer benchmarks: end-to-end latency of one aggregate request
// through the HTTP handler, split by cache build path. BenchmarkServerPan
// is the serving counterpart of BenchmarkWindowPan — the same 1-slice pan
// measured with the registry, window cache, singleflight, JSON encoding
// and HTTP framing around it:
//
//   - Hit:     the exact window is cached (steady-state re-query);
//   - Derived: each request pans one slice further, so every window is a
//     miss served incrementally from its cached neighbor (Input.Update);
//   - Scratch: caching disabled, every request pays the full input pass.
//
// scripts/bench.sh picks these up with the rest of the root suite, so
// BENCH_core.json tracks serving latency across PRs.
package ocelotl

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ocelotl/internal/mpisim"
	"ocelotl/internal/server"
)

// newBenchServer starts a server preloaded with the windowing benchmark
// trace (|S|=96 leaves, windows of |T|=50 slices).
func newBenchServer(b *testing.B, cacheBytes int64) *httptest.Server {
	b.Helper()
	s := server.New(server.Config{
		CacheBytes:     cacheBytes,
		RequestTimeout: time.Minute,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if _, err := s.Registry().LoadTrace("bench", mpisim.ArtificialSized(windowBenchS, windowBenchW)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchGet(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s: status %d", url, resp.StatusCode)
	}
}

func BenchmarkServerPan_Hit(b *testing.B) {
	ts := newBenchServer(b, server.DefaultCacheBytes)
	url := fmt.Sprintf("%s/traces/bench/aggregate?p=0.5&slices=%d", ts.URL, windowBenchT)
	benchGet(b, url) // prime the window
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, url)
	}
}

func BenchmarkServerPan_Derived(b *testing.B) {
	ts := newBenchServer(b, server.DefaultCacheBytes)
	base := fmt.Sprintf("%s/traces/bench/aggregate?p=0.5&slices=%d", ts.URL, windowBenchT)
	benchGet(b, base) // anchor window
	b.ResetTimer()
	// Each request pans one slice further: always a fresh window whose
	// nearest cached neighbor overlaps on |T|-1 slices.
	for i := 0; i < b.N; i++ {
		benchGet(b, fmt.Sprintf("%s&pan=%d", base, i+1))
	}
}

func BenchmarkServerPan_Scratch(b *testing.B) {
	ts := newBenchServer(b, -1) // caching disabled: every request rebuilds
	url := fmt.Sprintf("%s/traces/bench/aggregate?p=0.5&slices=%d&pan=1", ts.URL, windowBenchT)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, url)
	}
}

// The server zoom pair is the serving counterpart of BenchmarkWindowZoom:
// each request changes resolution (overview level ↔ zoomed level), panned
// a little each time so the cache never has the exact window.
//
//   - Pyramid: both levels are warm in the ladder, so every zoom is a
//     miss served by same-grid derivation from its level's resident;
//   - Scratch: caching disabled, every zoom pays the full input pass.
func benchServerZoom(b *testing.B, cacheBytes int64) {
	_, _, in := windowCase(b)
	lo, hi := in.Model.Slicer.IntervalBounds(10, 19)
	ts := newBenchServer(b, cacheBytes)
	over := fmt.Sprintf("%s/traces/bench/aggregate?p=0.5&slices=%d", ts.URL, windowBenchT)
	zoom := fmt.Sprintf("%s&lo=%g&hi=%g", over, lo, hi)
	benchGet(b, over) // warm both levels (no-ops for the scratch server)
	benchGet(b, zoom)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := zoom
		if i%2 == 1 {
			u = over
		}
		benchGet(b, fmt.Sprintf("%s&pan=%d", u, 1+i%3))
	}
}

func BenchmarkServerZoom_Pyramid(b *testing.B) { benchServerZoom(b, server.DefaultCacheBytes) }
func BenchmarkServerZoom_Scratch(b *testing.B) { benchServerZoom(b, -1) }
