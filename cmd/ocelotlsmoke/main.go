// Command ocelotlsmoke drives a running ocelotld through the client
// package and exits non-zero on any contract violation. CI uses it as
// the serving smoke: it checks readiness, loads a trace, exercises the
// aggregate/quality endpoints (retrying sheds politely via Retry-After),
// asserts the strict-validation 400s, and — the production gate — fails
// if any failpoint is armed, so a chaos configuration can never ship
// looking green.
//
//	ocelotlsmoke -addr http://localhost:8087 -trace smoke=trace.bin
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"ocelotl/internal/server/client"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8087", "ocelotld base URL")
		traceKV = flag.String("trace", "", "load a trace as id=path before querying (optional)")
		timeout = flag.Duration("timeout", 60*time.Second, "overall smoke deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*addr)

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ocelotlsmoke: "+format+"\n", args...)
		os.Exit(1)
	}

	// The daemon may still be binding; poll readiness under the deadline.
	for {
		if err := c.Ready(ctx); err == nil {
			break
		} else if ctx.Err() != nil {
			fail("server never became ready: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Production gate: no armed failpoints.
	if names, err := c.ActiveFailpoints(ctx); err != nil {
		fail("failpoint gate: %v", err)
	} else if len(names) > 0 {
		fail("failpoint gate: %d failpoint(s) armed in a production build: %s", len(names), strings.Join(names, ", "))
	}

	id := "smoke"
	if *traceKV != "" {
		path := ""
		var ok bool
		if id, path, ok = strings.Cut(*traceKV, "="); !ok {
			fail("-trace wants id=path, got %q", *traceKV)
		}
		if err := c.LoadTrace(ctx, id, path); err != nil {
			fail("loading trace: %v", err)
		}
	}

	// A real aggregate answer, whatever build path served it.
	res, err := c.Get(ctx, "/traces/"+id+"/aggregate", url.Values{"p": {"0.35"}, "slices": {"30"}})
	if err != nil {
		fail("aggregate: %v", err)
	}
	if res.Status != http.StatusOK {
		fail("aggregate: %d: %s", res.Status, strings.TrimSpace(string(res.Body)))
	}
	var agg struct {
		Areas []json.RawMessage `json:"areas"`
	}
	if err := json.Unmarshal(res.Body, &agg); err != nil || len(agg.Areas) == 0 {
		fail("aggregate body unusable (err=%v, %d areas): %.200s", err, len(agg.Areas), res.Body)
	}

	// The same window again must hit the cache (and still be 200).
	if res, err = c.Get(ctx, "/traces/"+id+"/aggregate", url.Values{"p": {"0.35"}, "slices": {"30"}}); err != nil || res.Status != http.StatusOK {
		fail("aggregate rerun: status %d, err %v", res.Status, err)
	}

	// Strict validation: garbage windows are the client's fault, 400 —
	// never a 500.
	for _, q := range []url.Values{
		{"slices": {"0"}},
		{"slices": {"-3"}},
		{"lo": {"NaN"}},
		{"hi": {"Inf"}},
		{"lo": {"-1"}},
		{"lo": {"5"}, "hi": {"2"}},
	} {
		res, err := c.Get(ctx, "/traces/"+id+"/aggregate", q)
		if err != nil {
			fail("validation probe %v: %v", q, err)
		}
		if res.Status != http.StatusBadRequest {
			fail("validation probe %v: status %d, want 400 (%s)", q, res.Status, strings.TrimSpace(string(res.Body)))
		}
	}

	// Quality sweep still answers.
	if res, err = c.Get(ctx, "/traces/"+id+"/quality", url.Values{"slices": {"25"}, "ps": {"0.2,0.5,0.8"}}); err != nil || res.Status != http.StatusOK {
		fail("quality: status %d, err %v", res.Status, err)
	}

	fmt.Println("ocelotlsmoke: ok")
}
