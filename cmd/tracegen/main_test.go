package main

import (
	"fmt"
	"path/filepath"
	"testing"

	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

func TestPickScenarioCase(t *testing.T) {
	sc, err := pickScenario("A", "", 0)
	if err != nil || sc.Application != "CG" || sc.Processes != 64 {
		t.Errorf("case A: %+v (%v)", sc, err)
	}
	if _, err := pickScenario("Z", "", 0); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestPickScenarioCustomApp(t *testing.T) {
	sc, err := pickScenario("", "cg", 128)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Processes != 128 {
		t.Errorf("procs = %d", sc.Processes)
	}
	if cap := sc.Platform.TotalCores(); cap < 128 {
		t.Errorf("platform grown to %d cores, need 128", cap)
	}
	if _, err := pickScenario("", "ft", 16); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := pickScenario("", "", 16); err == nil {
		t.Error("missing case and app accepted")
	}
}

func TestCustomizeGrowsPlatform(t *testing.T) {
	sc, err := pickScenario("", "lu", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("customized scenario invalid: %v", err)
	}
	if sc.PaperEvents != 5000*60000 {
		t.Errorf("PaperEvents = %d", sc.PaperEvents)
	}
}

func TestCustomizeRejectsNonPositive(t *testing.T) {
	if _, err := pickScenario("", "cg", 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := pickScenario("", "cg", -4); err == nil {
		t.Error("negative procs accepted")
	}
}

func TestStreamExact(t *testing.T) {
	sc, err := pickScenario("", "cg", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{0, 1, 6, 7, 1000} {
		var got int64
		var maxEnd float64
		err := streamExact(sc, n, func(ev trace.Event) error {
			got++
			if ev.Start >= ev.End {
				return fmt.Errorf("empty interval [%g,%g)", ev.Start, ev.End)
			}
			if int(ev.Resource) >= sc.Processes {
				return fmt.Errorf("resource %d out of range", ev.Resource)
			}
			if ev.End > maxEnd {
				maxEnd = ev.End
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got != n {
			t.Errorf("n=%d: emitted %d events", n, got)
		}
		if n >= int64(sc.Processes) && maxEnd != sc.PaperRuntime {
			t.Errorf("n=%d: window ends at %g, want %g", n, maxEnd, sc.PaperRuntime)
		}
	}
}

// TestStreamExactIndexes runs the synthetic stream through the pipeline
// it exists for: write to a file, index it, build a window.
func TestStreamExactIndexes(t *testing.T) {
	sc, err := pickScenario("", "cg", 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "syn.bin")
	w, err := traceio.CreateFile(path, traceio.Header{
		Resources: sc.Platform.ResourcePaths(sc.Processes),
		States:    mpisim.StateNames,
		Start:     0, End: sc.PaperRuntime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamExact(sc, 500, w.WriteEvent); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := traceio.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs, err := microscopic.NewReslicerIndexed(r, microscopic.IndexOptions{Mode: microscopic.IndexDisk, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.NumEvents() != 500 {
		t.Fatalf("indexed %d events, want 500", rs.NumEvents())
	}
	m, err := rs.Build(microscopic.Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSlices() != 10 {
		t.Fatalf("built %d slices", m.NumSlices())
	}
}
