package main

import "testing"

func TestPickScenarioCase(t *testing.T) {
	sc, err := pickScenario("A", "", 0)
	if err != nil || sc.Application != "CG" || sc.Processes != 64 {
		t.Errorf("case A: %+v (%v)", sc, err)
	}
	if _, err := pickScenario("Z", "", 0); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestPickScenarioCustomApp(t *testing.T) {
	sc, err := pickScenario("", "cg", 128)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Processes != 128 {
		t.Errorf("procs = %d", sc.Processes)
	}
	if cap := sc.Platform.TotalCores(); cap < 128 {
		t.Errorf("platform grown to %d cores, need 128", cap)
	}
	if _, err := pickScenario("", "ft", 16); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := pickScenario("", "", 16); err == nil {
		t.Error("missing case and app accepted")
	}
}

func TestCustomizeGrowsPlatform(t *testing.T) {
	sc, err := pickScenario("", "lu", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("customized scenario invalid: %v", err)
	}
	if sc.PaperEvents != 5000*60000 {
		t.Errorf("PaperEvents = %d", sc.PaperEvents)
	}
}

func TestCustomizeRejectsNonPositive(t *testing.T) {
	if _, err := pickScenario("", "cg", 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := pickScenario("", "cg", -4); err == nil {
		t.Error("negative procs accepted")
	}
}
