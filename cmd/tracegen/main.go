// Command tracegen synthesizes NAS-PB execution traces for the paper's
// Table II scenarios (or custom CG/LU runs) and streams them to disk.
//
//	tracegen -case A -scale 1 -out caseA.bin          # the paper's 3.8M events
//	tracegen -case C -scale 0.01 -out caseC.csv.gz    # quick, human-readable
//	tracegen -app cg -procs 128 -out custom.bin       # custom run
//
// Generation is deterministic for a given -seed. Ground-truth anomaly
// windows are printed so downstream analyses can be scored.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ocelotl/internal/grid5000"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

func main() {
	var (
		caseName  = flag.String("case", "", "Table II case: A, B, C or D")
		app       = flag.String("app", "", "custom run: application cg or lu")
		procs     = flag.Int("procs", 64, "custom run: MPI processes")
		scale     = flag.Float64("scale", 0.02, "fraction of the paper's event count")
		target    = flag.Int("target", 0, "absolute event budget (overrides -scale)")
		events    = flag.Int64("events", 0, "stream exactly N synthetic events in O(1) memory (overrides -scale/-target; for multi-GB CI and bench traces)")
		seed      = flag.Int64("seed", 42, "simulation seed")
		out       = flag.String("out", "", "output file (.csv, .bin, optionally .gz); required")
		noPerturb = flag.Bool("no-perturb", false, "disable anomaly injection")

		appendEvery    = flag.Int("append-every", 0, "incremental mode: flush the file after every N events, time-sorted (exercises live ingestion / follow mode)")
		appendInterval = flag.Duration("append-interval", 0, "incremental mode: sleep this long between flushed batches")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	if *events > 0 && *caseName == "" && *app == "" {
		*app = "cg" // -events needs only a platform; default to a CG layout
	}
	sc, err := pickScenario(*caseName, *app, *procs)
	if err != nil {
		fatal(err)
	}
	cfg := mpisim.Config{Seed: *seed, Scale: *scale, EventTarget: *target, DisablePerturbations: *noPerturb}

	w, err := traceio.CreateFile(*out, traceio.Header{
		Resources: sc.Platform.ResourcePaths(sc.Processes),
		States:    mpisim.StateNames,
		Start:     0, End: sc.PaperRuntime,
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var n int64
	var perts []mpisim.Perturbation
	if *appendEvery > 0 {
		perts, n, err = writeIncremental(w, sc, cfg, *events, *appendEvery, *appendInterval)
	} else if *events > 0 {
		err = streamExact(sc, *events, func(ev trace.Event) error {
			n++
			return w.WriteEvent(ev)
		})
	} else {
		perts, err = mpisim.GenerateStream(sc, cfg, func(ev trace.Event) error {
			n++
			return w.WriteEvent(ev)
		})
	}
	if err != nil {
		w.Close()
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d events, %.1f MB in %v (%s %s, %d processes on %s)\n",
		*out, n, float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond),
		sc.Application, sc.Class, sc.Processes, sc.Platform.Site)
	for _, p := range perts {
		fmt.Printf("ground truth: %-18s %8.2fs – %8.2fs  %d ranks\n", p.Kind, p.Start, p.End, len(p.Ranks))
	}
}

// writeIncremental is the live-ingestion exercise mode: it materializes
// the whole run, sorts it by event start, then appends it to the (already
// created, header-flushed) file in flushed batches of every events,
// sleeping interval between batches. Time-sorting matters: it makes every
// flushed prefix a time-prefix of the final trace, which is the write
// discipline a follow-mode reader's cache consistency leans on (the
// generators emit per-rank, not in time order). The final file is
// byte-comparable event-wise to a plain run over the same seed after the
// same sort.
func writeIncremental(w traceio.Writer, sc grid5000.Scenario, cfg mpisim.Config, events int64, every int, interval time.Duration) ([]mpisim.Perturbation, int64, error) {
	var all []trace.Event
	var perts []mpisim.Perturbation
	var err error
	collect := func(ev trace.Event) error { all = append(all, ev); return nil }
	if events > 0 {
		err = streamExact(sc, events, collect)
	} else {
		perts, err = mpisim.GenerateStream(sc, cfg, collect)
	}
	if err != nil {
		return nil, 0, err
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	if err := traceio.Flush(w); err != nil { // header first: followers need it before any event
		return nil, 0, err
	}
	for i, ev := range all {
		if err := w.WriteEvent(ev); err != nil {
			return nil, int64(i), err
		}
		if (i+1)%every == 0 {
			if err := traceio.Flush(w); err != nil {
				return nil, int64(i + 1), err
			}
			if interval > 0 {
				time.Sleep(interval)
			}
		}
	}
	return perts, int64(len(all)), nil
}

// streamExact emits exactly n synthetic events without materializing any
// of them: each rank partitions the scenario runtime into equal state
// intervals with the state cycling per rank, so event count — and
// therefore file size — scales freely while generator memory stays
// constant. Deterministic by construction (no RNG involved).
func streamExact(sc grid5000.Scenario, n int64, emit func(trace.Event) error) error {
	procs := int64(sc.Processes)
	numStates := int64(len(mpisim.StateNames))
	runtime := sc.PaperRuntime
	for r := int64(0); r < procs; r++ {
		per := n / procs
		if r < n%procs {
			per++
		}
		if per == 0 {
			continue
		}
		dt := runtime / float64(per)
		for i := int64(0); i < per; i++ {
			ev := trace.Event{
				Resource: trace.ResourceID(r),
				State:    trace.StateID((r + i) % numStates),
				Start:    float64(i) * dt,
				End:      float64(i+1) * dt,
			}
			if i == per-1 {
				ev.End = runtime // close the window exactly despite rounding
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

func pickScenario(caseName, app string, procs int) (grid5000.Scenario, error) {
	if caseName != "" {
		return grid5000.Scenarios(grid5000.Case(caseName))
	}
	switch app {
	case "cg":
		sc, _ := grid5000.Scenarios(grid5000.CaseA)
		return customize(sc, procs)
	case "lu":
		sc, _ := grid5000.Scenarios(grid5000.CaseC)
		return customize(sc, procs)
	case "":
		return grid5000.Scenario{}, fmt.Errorf("need -case or -app")
	default:
		return grid5000.Scenario{}, fmt.Errorf("unknown app %q (want cg or lu)", app)
	}
}

// customize resizes a scenario's platform to host the requested process
// count by growing the first cluster.
func customize(sc grid5000.Scenario, procs int) (grid5000.Scenario, error) {
	if procs <= 0 {
		return sc, fmt.Errorf("need a positive -procs")
	}
	sc.Processes = procs
	for cap := sc.Platform.TotalCores(); cap < procs; cap = sc.Platform.TotalCores() {
		sc.Platform.Clusters[0].Machines *= 2
	}
	sc.PaperEvents = procs * 60000 // keep -scale meaningful
	return sc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
