// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) against the simulated substrate:
//
//	experiments -exp table1              # criteria table (Table I row for our technique)
//	experiments -exp table2 -scale 0.02  # scenario sizes and pipeline timings (Table II)
//	experiments -exp fig1                # case A overview (Figure 1) → SVG/PNG + findings
//	experiments -exp fig2                # case A Gantt clutter accounting (Figure 2)
//	experiments -exp fig3                # artificial-trace aggregation ladder (Figure 3)
//	experiments -exp fig4                # case C overview (Figure 4) → SVG/PNG + findings
//	experiments -exp ablation            # scaling and baseline-comparison ablations
//	experiments -exp all                 # everything above, in order
//
// Event counts are scaled by -scale (1.0 reproduces the paper's hundreds
// of millions of events; the default 0.02 runs in seconds). Artifacts are
// written under -outdir. The logic lives in internal/experiments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ocelotl/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig3, fig4, ablation, windowing, all")
		outdir  = flag.String("outdir", "out", "directory for rendered artifacts")
		scale   = flag.Float64("scale", 0.02, "fraction of the paper's event counts to simulate")
		seed    = flag.Int64("seed", 42, "simulation seed")
		slices  = flag.Int("slices", 30, "microscopic time slices |T| (paper: 30)")
		workers = flag.Int("workers", 0, "worker count for case preparation and the engine (0 = GOMAXPROCS)")
	)
	flag.Parse()
	cfg := experiments.Config{OutDir: *outdir, Scale: *scale, Seed: *seed, Slices: *slices, Workers: *workers}

	// SIGINT/SIGTERM cancel the run's context, which RunContext forwards
	// into the engine sweeps: a batch run dies within one solve's worth of
	// work instead of finishing figures nobody will look at. A second
	// signal kills the process outright (NotifyContext stops listening
	// after the first).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	names := experiments.Names()
	if *exp != "all" {
		names = []string{*exp}
	}
	// Batch the shared cases' generation + input passes across the worker
	// pool and memoize them across the experiments below.
	cfg = experiments.Prepare(cfg, names...)
	for _, name := range names {
		fmt.Printf("\n===== %s =====\n", name)
		start := time.Now()
		if err := experiments.RunContext(ctx, name, cfg); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("----- %s done in %v -----\n", name, time.Since(start).Round(time.Millisecond))
	}
}
