// Command ocelotld is the long-lived aggregation server: it keeps one
// microscopic.Reslicer per loaded trace and a window-keyed LRU cache of
// core.Inputs, serving optimal partitions, significant-p ladders, quality
// curves and rendered views over HTTP/JSON. Window misses are derived
// incrementally from the nearest cached overlapping window, so interactive
// pan sequences cost O(changed slices) per step instead of a fresh input
// pass; the cache additionally pins a multi-resolution ladder per hot
// trace (one window per visited slice-width level, -ladder-levels deep),
// so zooming back to a familiar resolution derives incrementally too
// instead of rebuilding from the event index.
//
//	ocelotld -addr :8087 -cache-mb 256
//	ocelotld -load caseA=caseA.bin -load run7=run7.csv.gz
//	ocelotld -follow live=still-running.bin
//
// Then, for example:
//
//	curl -X POST -d '{"id":"a","path":"caseA.bin"}' localhost:8087/traces
//	curl -X POST -d '{"id":"b","path":"growing.bin","follow":true}' localhost:8087/traces
//	curl 'localhost:8087/traces/a/aggregate?p=0.35&slices=30'
//	curl 'localhost:8087/traces/b/aggregate?p=0.35&live=1'
//	curl 'localhost:8087/traces/a/aggregate?p=0.35&slices=30&pan=3'
//	curl 'localhost:8087/traces/a/aggregate?p=0.35&slices=30&lo=2.5&hi=4.5&refine=1'
//	curl localhost:8087/debug/cachestats
//	curl localhost:8087/metrics
//
// The refine=1 form is the progressive zoom: when a cached window covers
// the request, its coarse overview is returned immediately
// (X-Ocelotl-Refine: pending) while the fine build runs in the
// background; re-requesting the same URL returns the final answer.
// Windows whose single Input would exceed the cache budget are rejected
// with 413 before any build.
//
// -index selects the event-index backend for loaded traces: auto (the
// default — RAM below ~4M events, the chunked on-disk eventstore above),
// ram, or disk; -index-dir places the store files (an SSD path for big
// deployments). /traces/{id} reports each trace's backend in its "index"
// field, and /debug/cachestats adds index_bytes (fixed index residency,
// distinct from cached Input bytes), index_open_chunk_bytes (decoded-
// chunk cache), and the index_chunks_read / index_chunk_hits /
// index_bytes_read locality counters — also exported as ocelotl_index_*
// at /metrics. Disk-backed store files are load-time temporaries,
// removed when the trace unloads or the daemon shuts down.
//
// Overload control: at most -max-builds window builds run concurrently
// (-build-queue more wait FIFO; the rest are shed with 503 +
// Retry-After), and an /aggregate whose fine build runs past
// -degrade-after is answered from the coarse covering preview
// (X-Ocelotl-Degraded) while the build finishes in the background.
// -failpoint arms named fault-injection sites for chaos testing —
// /debug/failpoints lists what's armed, and must be empty in production.
//
// -state-dir makes the daemon crash-safe: loaded traces, their sealed
// index stores, and each follower's committed resume offset are
// journaled into a CRC'd manifest (written atomically: temp + fsync +
// rename + directory fsync) on every load/unload and every
// -checkpoint-ticks follow ticks. On boot the daemon recovers the
// journal — sealed stores reopen in place instead of re-indexing,
// followers resume their tail at the journaled byte offset with no event
// lost or double-ingested, and orphaned temp/store files from the crash
// are swept. -load/-follow preloads of already-recovered ids are skipped
// (so a supervisor can restart the daemon with identical flags), and
// store files become durable sidecars under <state-dir>/stores (or
// -index-dir if set) instead of load-time temporaries. GET /debug/scrub
// verifies the live stores' chunk CRCs and the manifest — quarantining
// and rebuilding what fails — and `ocelotld -scrub -state-dir DIR` runs
// the same check offline, printing a JSON report and exiting non-zero if
// anything is damaged.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// 503 immediately (wait -drain-wait for balancers to notice), then the
// listener closes, in-flight requests drain, and (with -state-dir) a
// final checkpoint journals the shutdown state.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8087", "listen address")
		cacheMB   = flag.Int("cache-mb", 256, "Input-cache byte budget in MiB (0 disables caching)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request handling timeout (0 disables)")
		workers   = flag.Int("workers", 0, "worker count for input passes and p-sweeps (0 = GOMAXPROCS)")
		poolBound = flag.Int("solver-pool", 0, "max pooled solvers per cached Input (0 = worker count)")
		normalize = flag.Bool("normalize", false, "normalize gain/loss by their full-aggregation values")
		maxSlices = flag.Int("max-slices", 0, "per-request cap on the slices (|T|) parameter (0 = default 512)")
		ladder    = flag.Int("ladder-levels", 0, "pinned resolution levels per hot trace (0 = default 8)")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period")
		drainWait = flag.Duration("drain-wait", 0, "pause between flipping /readyz to draining and closing the listener, so balancers stop routing first")
		maxBuilds = flag.Int("max-builds", 0, "concurrent window builds admitted by the overload gate (0 = GOMAXPROCS, negative disables the gate)")
		buildQ    = flag.Int("build-queue", 0, "builds allowed to queue for a gate slot before shedding (0 = 4x max-builds)")
		degrade   = flag.Duration("degrade-after", 0, "serve the coarse covering preview when a fine build runs past this (0 = default 2s, negative disables)")
		indexName = flag.String("index", "auto", "event index backend for loaded traces: auto (RAM below threshold, disk above), ram, disk")
		indexDir  = flag.String("index-dir", "", "directory for on-disk index store files (default: the system temp dir; with -state-dir, <state-dir>/stores)")
		stateDir  = flag.String("state-dir", "", "directory for durable daemon state: the manifest journal and (by default) the index stores; enables crash recovery")
		ckptTicks = flag.Int("checkpoint-ticks", 0, "follow ticks between periodic manifest checkpoints (0 = default 50, negative disables; needs -state-dir)")
		scrub     = flag.Bool("scrub", false, "verify the -state-dir manifest and store CRCs offline, print a JSON report, and exit (non-zero if damaged)")
		verbose   = flag.Bool("v", false, "debug-level logging")
	)
	var preloads []string
	flag.Func("load", "preload a trace as id=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want id=path, got %q", v)
		}
		preloads = append(preloads, v)
		return nil
	})
	var follows []string
	flag.Func("follow", "preload a trace in follow mode as id=path: the file may still be written; the daemon tails it and serves a sliding live window (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want id=path, got %q", v)
		}
		follows = append(follows, v)
		return nil
	})
	var failpoints []string
	flag.Func("failpoint", "arm a failpoint as name=spec, e.g. 'server/flight=10%error(chaos)' (repeatable; chaos testing only)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=spec, got %q", v)
		}
		failpoints = append(failpoints, v)
		return nil
	})
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *scrub {
		if *stateDir == "" {
			logger.Error("-scrub needs -state-dir")
			os.Exit(2)
		}
		rep, err := server.ScrubState(*stateDir)
		if err != nil {
			logger.Error("scrub failed", "error", err)
			os.Exit(2)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		if !rep.Clean {
			os.Exit(1)
		}
		return
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1 // disable rather than fall back to the default
	}
	indexMode, err := microscopic.ParseIndexMode(*indexName)
	if err != nil {
		logger.Error("bad -index", "error", err)
		os.Exit(1)
	}
	for _, spec := range failpoints {
		name, fpSpec, _ := strings.Cut(spec, "=")
		if err := failpoint.Enable(name, fpSpec); err != nil {
			logger.Error("bad -failpoint", "spec", spec, "error", err)
			os.Exit(1)
		}
		logger.Warn("failpoint armed — chaos configuration, not for production", "name", name, "spec", fpSpec)
	}

	srv := server.New(server.Config{
		CacheBytes:          cacheBytes,
		Core:                core.Options{Normalize: *normalize, Workers: *workers, SolverPoolBound: *poolBound},
		RequestTimeout:      *timeout,
		MaxSlices:           *maxSlices,
		LadderLevels:        *ladder,
		MaxConcurrentBuilds: *maxBuilds,
		MaxQueuedBuilds:     *buildQ,
		DegradeAfter:        *degrade,
		Logger:              logger,
		Index:               microscopic.IndexOptions{Mode: indexMode, Dir: *indexDir},
		StateDir:            *stateDir,
		CheckpointTicks:     *ckptTicks,
	})
	if *stateDir != "" {
		rep, err := srv.Recover(context.Background())
		if err != nil {
			logger.Error("state recovery failed", "state_dir", *stateDir, "error", err)
			os.Exit(1)
		}
		logger.Info("state recovered", "state_dir", *stateDir, "manifest_seq", rep.ManifestSeq,
			"restored", rep.Restored, "reopened", rep.Reopened, "rebuilt", rep.Rebuilt,
			"resumed", rep.Resumed, "restarted", rep.Restarted, "orphans", rep.Orphans,
			"manifest_corrupt", rep.ManifestCorrupt, "skipped", rep.Skipped)
	}
	// Preloads tolerate ids that recovery already restored, so a
	// supervisor can restart a crashed daemon with identical flags.
	alreadyLoaded := func(err error) bool { return strings.Contains(err.Error(), "already load") }
	for _, spec := range preloads {
		id, path, _ := strings.Cut(spec, "=")
		tr, err := srv.Registry().Load(id, path)
		if err != nil {
			if alreadyLoaded(err) {
				logger.Info("preload already recovered", "trace", id)
				continue
			}
			logger.Error("preload failed", "spec", spec, "error", err)
			os.Exit(1)
		}
		logger.Info("preloaded", "trace", tr.ID, "path", path, "events", tr.Events)
	}
	for _, spec := range follows {
		id, path, _ := strings.Cut(spec, "=")
		tr, err := srv.FollowTrace(context.Background(), id, path)
		if err != nil {
			if alreadyLoaded(err) {
				logger.Info("follow preload already recovered", "trace", id)
				continue
			}
			logger.Error("follow preload failed", "spec", spec, "error", err)
			os.Exit(1)
		}
		logger.Info("following", "trace", tr.ID, "path", path, "events", tr.Events)
	}
	if err := srv.Checkpoint(); err != nil {
		logger.Warn("post-preload checkpoint failed", "error", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("ocelotld listening", "addr", *addr, "cache_mb", *cacheMB, "timeout", *timeout)

	select {
	case err := <-errCh:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Flip /readyz to draining first so load balancers stop routing new
	// requests, then (after -drain-wait) close the listener and drain
	// what's in flight.
	srv.SetDraining(true)
	if *drainWait > 0 {
		logger.Info("draining", "wait", *drainWait)
		time.Sleep(*drainWait)
	}
	logger.Info("shutting down", "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "error", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", "error", err)
		os.Exit(1)
	}
	// Stop the follow-mode ingestion loops before releasing the indexes
	// they publish snapshots of; with -state-dir, journal the final state
	// (the followers' last committed offsets) before stopping the keeper.
	// Then release the event indexes — load-time-temporary stores are
	// removed, durable sidecars stay for the next boot to reopen.
	srv.StopFollowers()
	if err := srv.Checkpoint(); err != nil {
		logger.Error("final checkpoint failed", "error", err)
	}
	srv.CloseState()
	if err := srv.Registry().CloseAll(); err != nil {
		logger.Error("closing trace indexes", "error", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
