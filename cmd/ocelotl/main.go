// Command ocelotl is the end-to-end analysis pipeline of the paper: read
// an execution trace, build its microscopic model, compute an optimal
// structure-consistent aggregation, and render or report the result.
//
//	ocelotl -trace run.bin.gz -p 0.35 -format svg -out view.svg
//	ocelotl -case A -p 0.2 -format report
//	ocelotl -trace run.csv -list-p
//	ocelotl -case C -mode product -format report
//	ocelotl -case A -zoom 5:14 -pan 1,1,-3 -format report
//
// Modes select the algorithm: "st" (the paper's spatiotemporal algorithm,
// default), "spatial" and "temporal" (the 1-D baselines), "product" (their
// Cartesian combination, Fig. 3.c).
//
// -zoom/-pan replay a navigation sequence through the incremental window
// engine (microscopic.Reslicer + core.Input.Update): each step reports its
// latency and how many slices it reused, and the report/render is produced
// on the final window.
//
// -follow tails a trace that is still being written (for example by
// tracegen -append-every) and re-aggregates a sliding window each poll
// tick through the same incremental engine, printing one summary line per
// tick:
//
//	ocelotl -trace growing.bin -follow -p 0.35 -follow-idle 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ocelotl/internal/analysis"
	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/partition"
	"ocelotl/internal/product"
	"ocelotl/internal/render"
	"ocelotl/internal/spatial"
	"ocelotl/internal/temporal"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file to analyze (csv/bin, optionally .gz)")
		caseName  = flag.String("case", "", "generate a Table II case instead of reading a trace (A, B, C, D)")
		scale     = flag.Float64("scale", 0.02, "event-count scale when generating a case")
		seed      = flag.Int64("seed", 42, "simulation seed when generating a case")
		slices    = flag.Int("slices", microscopic.DefaultSlices, "microscopic time slices |T|")
		p         = flag.Float64("p", 0.35, "gain/loss trade-off ratio ∈ [0,1]")
		mode      = flag.String("mode", "st", "aggregation mode: st, spatial, temporal, product")
		format    = flag.String("format", "report", "output: report, svg, png, ascii")
		out       = flag.String("out", "", "output file (default stdout)")
		width     = flag.Int("width", 1000, "view width in pixels")
		height    = flag.Int("height", 600, "view height in pixels")
		minH      = flag.Float64("minheight", 2, "visual-aggregation threshold in pixels (0 disables)")
		normalize = flag.Bool("normalize", false, "normalize gain/loss by their full-aggregation values")
		paletteN  = flag.String("palette", "default", "state colors: default, or ycbcr (equal-luma, §VI)")
		tooltips  = flag.Bool("tooltips", false, "embed per-state proportions as SVG tooltips")
		listP     = flag.Bool("list-p", false, "list the significant p values and exit")
		from      = flag.Float64("from", 0, "zoom: window start as a fraction of the trace [0,1)")
		to        = flag.Float64("to", 1, "zoom: window end as a fraction of the trace (0,1]")
		panSeq    = flag.String("pan", "", "replay comma-separated slice shifts incrementally after -zoom steps (e.g. 1,1,-3)")
		zoomSeq   = flag.String("zoom", "", "replay comma-separated lo:hi slice-range zooms incrementally (e.g. 10:20,2:7)")
		indexName = flag.String("index", "auto", "event index backend: auto (RAM below threshold, disk above), ram, disk")

		follow     = flag.Bool("follow", false, "live mode: tail -trace while it is being written, re-aggregating a sliding window each poll tick (stop with Ctrl-C or -follow-idle)")
		followPoll = flag.Duration("follow-poll", 200*time.Millisecond, "follow mode: tail poll interval")
		followIdle = flag.Duration("follow-idle", 0, "follow mode: exit once no new events arrive for this long (0 = run until interrupted)")
	)
	flag.Parse()

	indexMode, err := microscopic.ParseIndexMode(*indexName)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the pipeline's context; the engine's ctx-aware
	// entry points abandon the solve / significant-p dichotomy at their
	// next node-level check instead of running the analysis to completion.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *follow {
		if *tracePath == "" {
			fatal(fmt.Errorf("-follow needs -trace FILE"))
		}
		if err := runFollow(ctx, os.Stdout, *tracePath, *slices, *p, *mode, *normalize, indexMode, *followPoll, *followIdle); err != nil {
			fatal(err)
		}
		return
	}

	replaying := *panSeq != "" || *zoomSeq != ""
	m, cleanup, err := loadModel(*tracePath, *caseName, *scale, *seed, *slices, *from, *to, replaying, indexMode)
	if err != nil {
		fatal(err)
	}
	onFatal = cleanup
	defer cleanup()
	in := core.NewInput(m, core.Options{Normalize: *normalize})
	if replaying {
		if in, err = replayWindow(os.Stderr, in, *zoomSeq, *panSeq); err != nil {
			fatal(err)
		}
		m = in.Model // the report/render and baseline modes use the final window
	}

	if *listP {
		points, err := in.SignificantPsContext(ctx, 1e-3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10s %8s %12s %12s\n", "p", "areas", "gain", "loss")
		for _, q := range points {
			fmt.Printf("%10.4f %8d %12.2f %12.2f\n", q.P, q.Areas, q.Gain, q.Loss)
		}
		return
	}

	pt, err := runMode(ctx, m, in, *mode, *p)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	opt := render.Options{Width: *width, Height: *height, MinHeight: *minH, Tooltips: *tooltips}
	switch *paletteN {
	case "default":
	case "ycbcr":
		opt.Palette = render.YCbCrPalette(m.NumStates(), 170)
	default:
		fatal(fmt.Errorf("unknown palette %q (want default or ycbcr)", *paletteN))
	}
	switch *format {
	case "report":
		rep := analysis.Describe(in, pt, 2)
		fmt.Fprint(w, rep.Format(m.States))
	case "svg":
		err = render.BuildScene(in, pt, opt).SVG(w)
	case "png":
		err = render.BuildScene(in, pt, opt).PNG(w)
	case "ascii":
		fmt.Fprint(w, render.BuildScene(in, pt, opt).ASCII(0, 0))
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// loadModel builds the microscopic model; with indexed set (or an
// explicit -index choice) it goes through a microscopic.Reslicer so the
// model supports incremental -pan/-zoom replay. The returned cleanup
// releases the event index — a disk-backed one holds an open temporary
// store file until then.
func loadModel(tracePath, caseName string, scale float64, seed int64, slices int, from, to float64, indexed bool, mode microscopic.IndexMode) (*microscopic.Model, func(), error) {
	noop := func() {}
	if from < 0 || to > 1 || from >= to {
		return nil, noop, fmt.Errorf("bad zoom window [%g,%g): need 0 ≤ from < to ≤ 1", from, to)
	}
	// An explicit -index choice routes through the Reslicer even without
	// replay, so the backend can be exercised (and disk forced) on a
	// plain one-shot run.
	useIndex := indexed || mode != microscopic.IndexAuto
	build := func(src microscopic.EventSource, opt microscopic.Options) (*microscopic.Model, func(), error) {
		rs, err := microscopic.NewReslicerIndexed(src, microscopic.IndexOptions{Mode: mode})
		if err != nil {
			return nil, noop, err
		}
		m, err := rs.Build(opt)
		if err != nil {
			rs.Close()
			return nil, noop, err
		}
		return m, func() { rs.Close() }, nil
	}
	switch {
	case tracePath != "" && caseName != "":
		return nil, noop, fmt.Errorf("use either -trace or -case, not both")
	case tracePath != "":
		r, err := traceio.OpenFile(tracePath)
		if err != nil {
			return nil, noop, err
		}
		defer r.Close()
		opt := microscopic.Options{Slices: slices}
		if from != 0 || to != 1 {
			ws, we := r.Window()
			opt.Start, opt.End = ws+from*(we-ws), ws+to*(we-ws)
		}
		if useIndex {
			return build(r, opt)
		}
		m, err := microscopic.BuildStream(r, opt)
		return m, noop, err
	case caseName != "":
		res, err := mpisim.GenerateCase(grid5000.Case(caseName), mpisim.Config{Seed: seed, Scale: scale})
		if err != nil {
			return nil, noop, err
		}
		opt := microscopic.Options{Slices: slices}
		if from != 0 || to != 1 {
			ws, we := res.Trace.Window()
			opt.Start, opt.End = ws+from*(we-ws), ws+to*(we-ws)
		}
		if useIndex {
			return build(microscopic.TraceSource(res.Trace), opt)
		}
		m, err := microscopic.Build(res.Trace, opt)
		return m, noop, err
	default:
		return nil, noop, fmt.Errorf("need -trace FILE or -case A|B|C|D (see -help)")
	}
}

// replayWindow applies the -zoom steps then the -pan steps through the
// incremental engine path, reporting each step's window, slice reuse and
// latency. The partition/rendering then runs on the final window's input.
func replayWindow(log io.Writer, in *core.Input, zoomSpec, panSpec string) (*core.Input, error) {
	step := func(label string, fn func() (*core.Input, error)) error {
		prev := in.Model.Slicer
		t0 := time.Now()
		next, err := fn()
		if err != nil {
			return fmt.Errorf("replay %s: %w", label, err)
		}
		elapsed := time.Since(t0)
		reused := microscopic.GridOverlap(prev, next.Model.Slicer).W
		in = next
		fmt.Fprintf(log, "replay %-12s window=[%.6g,%.6g) reused %d/%d slices in %v\n",
			label, in.Model.Slicer.Start, in.Model.Slicer.End, reused, in.T, elapsed)
		return nil
	}
	if zoomSpec != "" {
		for _, part := range strings.Split(zoomSpec, ",") {
			lohi := strings.SplitN(part, ":", 2)
			if len(lohi) != 2 {
				return nil, fmt.Errorf("bad -zoom step %q (want lo:hi)", part)
			}
			lo, err1 := strconv.Atoi(strings.TrimSpace(lohi[0]))
			hi, err2 := strconv.Atoi(strings.TrimSpace(lohi[1]))
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad -zoom step %q (want lo:hi)", part)
			}
			if err := step(fmt.Sprintf("zoom %d:%d", lo, hi), func() (*core.Input, error) { return in.Zoom(lo, hi) }); err != nil {
				return nil, err
			}
		}
	}
	if panSpec != "" {
		for _, part := range strings.Split(panSpec, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad -pan step %q (want an integer slice shift)", part)
			}
			if err := step(fmt.Sprintf("pan %+d", k), func() (*core.Input, error) { return in.Pan(k) }); err != nil {
				return nil, err
			}
		}
	}
	return in, nil
}

// runFollow is the CLI face of live ingestion: tail the trace file while
// a writer appends to it, extend the event index copy-on-write each poll
// tick (traceio.TailReader → microscopic.Reslicer.Extend), slide a
// slices-wide window to the ingestion horizon, and re-aggregate it
// incrementally (core.Input.Advance — O(Δ slices) per tick). One summary
// line per tick that carried events.
func runFollow(ctx context.Context, w io.Writer, path string, slices int, p float64, mode string, normalize bool, indexMode microscopic.IndexMode, poll, idle time.Duration) error {
	var tail *traceio.TailReader
	for {
		var err error
		tail, err = traceio.OpenTail(path)
		if err == nil {
			break
		}
		if !os.IsNotExist(err) && !traceio.IsIncomplete(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(poll):
		}
	}
	defer tail.Close()

	hdrStart, hdrEnd := tail.Window()
	horizon := hdrStart
	var events []trace.Event
	readBatch := func() (int, error) {
		n := 0
		var ev trace.Event
		for n < 1<<18 {
			if err := tail.Next(&ev); err != nil {
				if traceio.IsIncomplete(err) {
					return n, nil
				}
				return n, err
			}
			if ev.Start > horizon {
				horizon = ev.Start
			}
			events = append(events, ev)
			n++
		}
		return n, nil
	}
	if _, err := readBatch(); err != nil {
		return err
	}

	width := 1.0
	if hdrEnd > hdrStart {
		width = (hdrEnd - hdrStart) / float64(slices)
	}
	anchor, err := timeslice.New(hdrStart, hdrStart+float64(slices)*width, slices)
	if err != nil {
		return err
	}
	// livePan positions the window so its end is the last slice boundary
	// at or below the horizon — every slice shown is fully ingested.
	livePan := func(h float64) int {
		pan := int((h-anchor.Start)/anchor.Width()) - anchor.N
		if pan < -anchor.N {
			pan = -anchor.N
		}
		for pan > -anchor.N && anchor.Shift(pan).End > h {
			pan--
		}
		for anchor.Shift(pan+1).End <= h {
			pan++
		}
		return pan
	}

	resl, err := microscopic.NewReslicerIndexed(
		microscopic.TraceSource(&trace.Trace{Resources: tail.Resources(), States: tail.States(), Events: events, Start: hdrStart, End: horizon}),
		microscopic.IndexOptions{Mode: indexMode})
	if err != nil {
		return err
	}
	defer func() { resl.Close() }()
	events = nil

	pan := livePan(horizon)
	m, err := resl.BuildAt(anchor.Shift(pan))
	if err != nil {
		return err
	}
	in, err := core.NewInputContext(ctx, m, core.Options{Normalize: normalize})
	if err != nil {
		return err
	}

	tick := 0
	total := resl.NumEvents()
	report := func() error {
		pt, err := runMode(ctx, in.Model, in, mode, p)
		if err != nil {
			return err
		}
		sl := in.Model.Slicer
		_, err = fmt.Fprintf(w, "tick %4d  events %9d  horizon %12.6g  window [%.6g,%.6g)  areas %4d  gain %12.4f  loss %12.4f\n",
			tick, total, horizon, sl.Start, sl.End, len(pt.Areas), pt.Gain, pt.Loss)
		return err
	}
	if err := report(); err != nil {
		return err
	}

	lastData := time.Now()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		prevHorizon := horizon
		n, err := readBatch()
		if err != nil {
			return err
		}
		if n == 0 {
			if idle > 0 && time.Since(lastData) > idle {
				return nil
			}
			continue
		}
		lastData = time.Now()
		reorder := false
		for _, ev := range events {
			if ev.Start < prevHorizon {
				reorder = true
				break
			}
		}
		next, err := resl.Extend(events, horizon)
		if err != nil {
			return err
		}
		resl = next // old snapshots stay readable; the deferred Close releases the newest (shared) index once
		total = resl.NumEvents()
		events = events[:0]
		npan := livePan(horizon)
		switch {
		case reorder:
			if m, err = resl.BuildAt(anchor.Shift(npan)); err != nil {
				return err
			}
			if in, err = core.NewInputContext(ctx, m, core.Options{Normalize: normalize}); err != nil {
				return err
			}
		case npan > pan:
			if in, err = in.AdvanceContext(ctx, resl, npan-pan); err != nil {
				return err
			}
		}
		pan = npan
		tick++
		if err := report(); err != nil {
			return err
		}
	}
}

func runMode(ctx context.Context, m *microscopic.Model, in *core.Input, mode string, p float64) (*partition.Partition, error) {
	switch mode {
	case "st":
		return in.NewSolver().RunContext(ctx, p)
	case "spatial":
		return spatial.New(m).Run(p)
	case "temporal":
		return temporal.New(m).Run(p)
	case "product":
		return product.New(m).Evaluate(in, p)
	default:
		return nil, fmt.Errorf("unknown mode %q (want st, spatial, temporal or product)", mode)
	}
}

// onFatal runs before os.Exit so a disk-backed index's temporary store
// file is removed even on error exits (deferred cleanups don't run past
// os.Exit).
var onFatal = func() {}

func fatal(err error) {
	onFatal()
	fmt.Fprintln(os.Stderr, "ocelotl:", err)
	os.Exit(1)
}
