// Command ocelotl is the end-to-end analysis pipeline of the paper: read
// an execution trace, build its microscopic model, compute an optimal
// structure-consistent aggregation, and render or report the result.
//
//	ocelotl -trace run.bin.gz -p 0.35 -format svg -out view.svg
//	ocelotl -case A -p 0.2 -format report
//	ocelotl -trace run.csv -list-p
//	ocelotl -case C -mode product -format report
//
// Modes select the algorithm: "st" (the paper's spatiotemporal algorithm,
// default), "spatial" and "temporal" (the 1-D baselines), "product" (their
// Cartesian combination, Fig. 3.c).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ocelotl/internal/analysis"
	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/partition"
	"ocelotl/internal/product"
	"ocelotl/internal/render"
	"ocelotl/internal/spatial"
	"ocelotl/internal/temporal"
	"ocelotl/internal/traceio"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file to analyze (csv/bin, optionally .gz)")
		caseName  = flag.String("case", "", "generate a Table II case instead of reading a trace (A, B, C, D)")
		scale     = flag.Float64("scale", 0.02, "event-count scale when generating a case")
		seed      = flag.Int64("seed", 42, "simulation seed when generating a case")
		slices    = flag.Int("slices", microscopic.DefaultSlices, "microscopic time slices |T|")
		p         = flag.Float64("p", 0.35, "gain/loss trade-off ratio ∈ [0,1]")
		mode      = flag.String("mode", "st", "aggregation mode: st, spatial, temporal, product")
		format    = flag.String("format", "report", "output: report, svg, png, ascii")
		out       = flag.String("out", "", "output file (default stdout)")
		width     = flag.Int("width", 1000, "view width in pixels")
		height    = flag.Int("height", 600, "view height in pixels")
		minH      = flag.Float64("minheight", 2, "visual-aggregation threshold in pixels (0 disables)")
		normalize = flag.Bool("normalize", false, "normalize gain/loss by their full-aggregation values")
		paletteN  = flag.String("palette", "default", "state colors: default, or ycbcr (equal-luma, §VI)")
		tooltips  = flag.Bool("tooltips", false, "embed per-state proportions as SVG tooltips")
		listP     = flag.Bool("list-p", false, "list the significant p values and exit")
		from      = flag.Float64("from", 0, "zoom: window start as a fraction of the trace [0,1)")
		to        = flag.Float64("to", 1, "zoom: window end as a fraction of the trace (0,1]")
	)
	flag.Parse()

	m, err := loadModel(*tracePath, *caseName, *scale, *seed, *slices, *from, *to)
	if err != nil {
		fatal(err)
	}
	in := core.NewInput(m, core.Options{Normalize: *normalize})

	if *listP {
		points, err := in.SignificantPs(1e-3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10s %8s %12s %12s\n", "p", "areas", "gain", "loss")
		for _, q := range points {
			fmt.Printf("%10.4f %8d %12.2f %12.2f\n", q.P, q.Areas, q.Gain, q.Loss)
		}
		return
	}

	pt, err := runMode(m, in, *mode, *p)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	opt := render.Options{Width: *width, Height: *height, MinHeight: *minH, Tooltips: *tooltips}
	switch *paletteN {
	case "default":
	case "ycbcr":
		opt.Palette = render.YCbCrPalette(m.NumStates(), 170)
	default:
		fatal(fmt.Errorf("unknown palette %q (want default or ycbcr)", *paletteN))
	}
	switch *format {
	case "report":
		rep := analysis.Describe(in, pt, 2)
		fmt.Fprint(w, rep.Format(m.States))
	case "svg":
		err = render.BuildScene(in, pt, opt).SVG(w)
	case "png":
		err = render.BuildScene(in, pt, opt).PNG(w)
	case "ascii":
		fmt.Fprint(w, render.BuildScene(in, pt, opt).ASCII(0, 0))
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func loadModel(tracePath, caseName string, scale float64, seed int64, slices int, from, to float64) (*microscopic.Model, error) {
	if from < 0 || to > 1 || from >= to {
		return nil, fmt.Errorf("bad zoom window [%g,%g): need 0 ≤ from < to ≤ 1", from, to)
	}
	switch {
	case tracePath != "" && caseName != "":
		return nil, fmt.Errorf("use either -trace or -case, not both")
	case tracePath != "":
		r, err := traceio.OpenFile(tracePath)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		opt := microscopic.Options{Slices: slices}
		if from != 0 || to != 1 {
			ws, we := r.Window()
			opt.Start, opt.End = ws+from*(we-ws), ws+to*(we-ws)
		}
		return microscopic.BuildStream(r, opt)
	case caseName != "":
		res, err := mpisim.GenerateCase(grid5000.Case(caseName), mpisim.Config{Seed: seed, Scale: scale})
		if err != nil {
			return nil, err
		}
		opt := microscopic.Options{Slices: slices}
		if from != 0 || to != 1 {
			ws, we := res.Trace.Window()
			opt.Start, opt.End = ws+from*(we-ws), ws+to*(we-ws)
		}
		return microscopic.Build(res.Trace, opt)
	default:
		return nil, fmt.Errorf("need -trace FILE or -case A|B|C|D (see -help)")
	}
}

func runMode(m *microscopic.Model, in *core.Input, mode string, p float64) (*partition.Partition, error) {
	switch mode {
	case "st":
		return in.NewSolver().Run(p)
	case "spatial":
		return spatial.New(m).Run(p)
	case "temporal":
		return temporal.New(m).Run(p)
	case "product":
		return product.New(m).Evaluate(in, p)
	default:
		return nil, fmt.Errorf("unknown mode %q (want st, spatial, temporal or product)", mode)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocelotl:", err)
	os.Exit(1)
}
