package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/traceio"
)

// testLoadModel adapts loadModel to the pre-index test call shape: auto
// mode, cleanup registered on the test.
func testLoadModel(t *testing.T, tracePath, caseName string, scale float64, seed int64, slices int, from, to float64, indexed bool) (*microscopic.Model, error) {
	t.Helper()
	m, cleanup, err := loadModel(tracePath, caseName, scale, seed, slices, from, to, indexed, microscopic.IndexAuto)
	t.Cleanup(cleanup)
	return m, err
}

func TestLoadModelFromCase(t *testing.T) {
	m, err := testLoadModel(t, "", "A", 0.002, 1, 10, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumResources() != 64 || m.NumSlices() != 10 {
		t.Errorf("dims: %d resources, %d slices", m.NumResources(), m.NumSlices())
	}
}

func TestLoadModelFromFile(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := traceio.WriteFile(path, res.Trace); err != nil {
		t.Fatal(err)
	}
	m, err := testLoadModel(t, path, "", 0, 0, 15, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumResources() != 64 || m.NumSlices() != 15 {
		t.Errorf("dims: %d resources, %d slices", m.NumResources(), m.NumSlices())
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := testLoadModel(t, "", "", 0, 0, 10, 0, 1, false); err == nil {
		t.Error("no source accepted")
	}
	if _, err := testLoadModel(t, "x.bin", "A", 0, 0, 10, 0, 1, false); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := testLoadModel(t, filepath.Join(t.TempDir(), "missing.bin"), "", 0, 0, 10, 0, 1, false); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := testLoadModel(t, "", "Q", 0.01, 0, 10, 0, 1, false); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestLoadModelZoom(t *testing.T) {
	// Zooming into the case-A computation phase: the model window must
	// cover exactly the requested fraction.
	m, err := testLoadModel(t, "", "A", 0.005, 1, 10, 0.25, 0.75, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slicer.Start < 2.3 || m.Slicer.Start > 2.45 || m.Slicer.End < 7.0 || m.Slicer.End > 7.2 {
		t.Errorf("zoom window = [%g,%g), want ≈[2.375,7.125)", m.Slicer.Start, m.Slicer.End)
	}
	for _, bad := range [][2]float64{{-0.1, 1}, {0, 1.1}, {0.6, 0.4}, {0.5, 0.5}} {
		if _, err := testLoadModel(t, "", "A", 0.005, 1, 10, bad[0], bad[1], false); err == nil {
			t.Errorf("zoom window %v accepted", bad)
		}
	}
}

func TestRunModeAll(t *testing.T) {
	m, err := testLoadModel(t, "", "A", 0.002, 1, 10, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	for _, mode := range []string{"st", "spatial", "temporal", "product"} {
		pt, err := runMode(context.Background(), m, in, mode, 0.4)
		if err != nil {
			t.Errorf("mode %s: %v", mode, err)
			continue
		}
		if err := pt.Validate(m.H, m.NumSlices()); err != nil {
			t.Errorf("mode %s: invalid partition: %v", mode, err)
		}
	}
	if _, err := runMode(context.Background(), m, in, "bogus", 0.4); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestLoadModelIndexed(t *testing.T) {
	m, err := testLoadModel(t, "", "A", 0.002, 1, 10, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reslicer() == nil {
		t.Fatal("indexed load did not attach a reslicer")
	}
	// And the streaming path too.
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 4000})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := traceio.WriteFile(path, res.Trace); err != nil {
		t.Fatal(err)
	}
	m, err = testLoadModel(t, path, "", 0, 0, 12, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reslicer() == nil {
		t.Fatal("indexed stream load did not attach a reslicer")
	}
}

func TestReplayWindow(t *testing.T) {
	m, err := testLoadModel(t, "", "A", 0.002, 1, 10, 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	var log bytes.Buffer
	out, err := replayWindow(&log, in, "2:7,0:9", "1,1,-3")
	if err != nil {
		t.Fatal(err)
	}
	if out == in || out.Model == m {
		t.Fatal("replay did not move the window")
	}
	lines := strings.Count(log.String(), "\n")
	if lines != 5 {
		t.Fatalf("replay logged %d steps, want 5:\n%s", lines, log.String())
	}
	if !strings.Contains(log.String(), "reused 9/10 slices") {
		t.Errorf("pan step did not report slice reuse:\n%s", log.String())
	}
	// The replayed input answers queries like a fresh one on its window.
	fm, err := m.Reslicer().BuildAt(out.Model.Slicer)
	if err != nil {
		t.Fatal(err)
	}
	fresh := core.NewInput(fm, core.Options{})
	a, err := out.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() != b.Signature() {
		t.Error("replayed input disagrees with a fresh build on the final window")
	}

	for _, bad := range []struct{ zoom, pan string }{
		{"2", ""}, {"a:b", ""}, {"", "x"}, {"3:1", ""},
	} {
		if _, err := replayWindow(&log, in, bad.zoom, bad.pan); err == nil {
			t.Errorf("replay accepted zoom=%q pan=%q", bad.zoom, bad.pan)
		}
	}
}

// TestLoadModelDiskIndex forces -index=disk through both load paths and
// checks the disk backend answers the replay engine identically to RAM.
func TestLoadModelDiskIndex(t *testing.T) {
	ramM, ramClean, err := loadModel("", "A", 0.002, 1, 10, 0, 1, true, microscopic.IndexRAM)
	if err != nil {
		t.Fatal(err)
	}
	defer ramClean()
	diskM, diskClean, err := loadModel("", "A", 0.002, 1, 10, 0, 1, true, microscopic.IndexDisk)
	if err != nil {
		t.Fatal(err)
	}
	defer diskClean()
	if kind := diskM.Reslicer().IndexKind(); kind != "disk" {
		t.Fatalf("forced disk index reports kind %q", kind)
	}
	var ramLog, diskLog bytes.Buffer
	ramIn, err := replayWindow(&ramLog, core.NewInput(ramM, core.Options{}), "2:7", "1,-2")
	if err != nil {
		t.Fatal(err)
	}
	diskIn, err := replayWindow(&diskLog, core.NewInput(diskM, core.Options{}), "2:7", "1,-2")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ramIn.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := diskIn.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Signature() != b.Signature() {
		t.Error("disk-indexed replay disagrees with RAM-indexed replay")
	}
}
