package main

import (
	"path/filepath"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/traceio"
)

func TestLoadModelFromCase(t *testing.T) {
	m, err := loadModel("", "A", 0.002, 1, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumResources() != 64 || m.NumSlices() != 10 {
		t.Errorf("dims: %d resources, %d slices", m.NumResources(), m.NumSlices())
	}
}

func TestLoadModelFromFile(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := traceio.WriteFile(path, res.Trace); err != nil {
		t.Fatal(err)
	}
	m, err := loadModel(path, "", 0, 0, 15, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumResources() != 64 || m.NumSlices() != 15 {
		t.Errorf("dims: %d resources, %d slices", m.NumResources(), m.NumSlices())
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := loadModel("", "", 0, 0, 10, 0, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadModel("x.bin", "A", 0, 0, 10, 0, 1); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadModel(filepath.Join(t.TempDir(), "missing.bin"), "", 0, 0, 10, 0, 1); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := loadModel("", "Q", 0.01, 0, 10, 0, 1); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestLoadModelZoom(t *testing.T) {
	// Zooming into the case-A computation phase: the model window must
	// cover exactly the requested fraction.
	m, err := loadModel("", "A", 0.005, 1, 10, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slicer.Start < 2.3 || m.Slicer.Start > 2.45 || m.Slicer.End < 7.0 || m.Slicer.End > 7.2 {
		t.Errorf("zoom window = [%g,%g), want ≈[2.375,7.125)", m.Slicer.Start, m.Slicer.End)
	}
	for _, bad := range [][2]float64{{-0.1, 1}, {0, 1.1}, {0.6, 0.4}, {0.5, 0.5}} {
		if _, err := loadModel("", "A", 0.005, 1, 10, bad[0], bad[1]); err == nil {
			t.Errorf("zoom window %v accepted", bad)
		}
	}
}

func TestRunModeAll(t *testing.T) {
	m, err := loadModel("", "A", 0.002, 1, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	for _, mode := range []string{"st", "spatial", "temporal", "product"} {
		pt, err := runMode(m, in, mode, 0.4)
		if err != nil {
			t.Errorf("mode %s: %v", mode, err)
			continue
		}
		if err := pt.Validate(m.H, m.NumSlices()); err != nil {
			t.Errorf("mode %s: invalid partition: %v", mode, err)
		}
	}
	if _, err := runMode(m, in, "bogus", 0.4); err == nil {
		t.Error("unknown mode accepted")
	}
}
