package main

import (
	"path/filepath"
	"testing"

	"ocelotl/internal/grid5000"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/traceio"
)

func TestLoadTraceFromCase(t *testing.T) {
	tr, err := loadTrace("", "A", 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumResources() != 64 {
		t.Errorf("resources = %d", tr.NumResources())
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.csv.gz")
	if err := traceio.WriteFile(path, res.Trace); err != nil {
		t.Fatal(err)
	}
	tr, err := loadTrace(path, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() != res.Trace.NumEvents() {
		t.Errorf("events = %d, want %d", tr.NumEvents(), res.Trace.NumEvents())
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := loadTrace("", "", 0, 0); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadTrace("x", "A", 0, 0); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadTrace("", "Z", 0.01, 0); err == nil {
		t.Error("unknown case accepted")
	}
}
