// Command ganttview renders a microscopic Gantt chart of a trace and
// reports the clutter statistics that motivate the paper (Fig. 2): how
// many graphical objects fit the viewport, how many collapse below one
// pixel, and how much information the pixel-guided rendering overdraws.
//
//	ganttview -trace run.bin -out gantt.png
//	ganttview -case A -scale 0.1 -width 1777 -height 233
package main

import (
	"flag"
	"fmt"
	"os"

	"ocelotl/internal/grid5000"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/render"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (csv/bin, optionally .gz)")
		caseName  = flag.String("case", "", "generate a Table II case instead")
		scale     = flag.Float64("scale", 0.02, "event-count scale when generating")
		seed      = flag.Int64("seed", 42, "simulation seed when generating")
		width     = flag.Int("width", 1200, "viewport width in pixels")
		height    = flag.Int("height", 512, "viewport height in pixels")
		out       = flag.String("out", "", "PNG output file (omit for stats only)")
		from      = flag.Float64("from", 0, "window start fraction [0,1)")
		to        = flag.Float64("to", 1, "window end fraction (0,1]")
	)
	flag.Parse()

	tr, err := loadTrace(*tracePath, *caseName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if *from != 0 || *to != 1 {
		ws, we := tr.Window()
		span := we - ws
		tr = tr.Slice(ws+*from*span, ws+*to*span)
	}
	var w *os.File
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	var stats render.GanttStats
	if w != nil {
		stats, err = render.Gantt(tr, *width, *height, nil, w)
	} else {
		stats, err = render.Gantt(tr, *width, *height, nil, nil)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(stats)
	if *out != "" {
		fmt.Println("wrote", *out)
	}
}

func loadTrace(path, caseName string, scale float64, seed int64) (*trace.Trace, error) {
	switch {
	case path != "" && caseName != "":
		return nil, fmt.Errorf("use either -trace or -case, not both")
	case path != "":
		return traceio.ReadFile(path)
	case caseName != "":
		res, err := mpisim.GenerateCase(grid5000.Case(caseName), mpisim.Config{Seed: seed, Scale: scale})
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	default:
		return nil, fmt.Errorf("need -trace FILE or -case A|B|C|D")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ganttview:", err)
	os.Exit(1)
}
