// Benchmark harness: one benchmark (family) per table and figure of the
// paper's evaluation (§V), plus the scaling ablations backing the §III
// complexity claims. Run with:
//
//	go test -bench=. -benchmem
//
// Event counts are scaled (see benchScale) so the suite completes in
// minutes; the *shapes* — reading ≫ microscopic ≫ aggregation, cubic |T|
// scaling, linear |S| scaling, core ≥ product — are what reproduce the
// paper, not the absolute numbers measured on the authors' testbed.
package ocelotl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/product"
	"ocelotl/internal/render"
	"ocelotl/internal/spatial"
	"ocelotl/internal/temporal"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

// benchScale keeps per-case event budgets tractable: ~1/50th of the
// paper's counts (case C ≈ 4.4M events instead of 218M).
const benchScale = 0.02

type caseData struct {
	res   *mpisim.Result
	model *microscopic.Model
	in    *core.Input
	agg   *core.Aggregator // compatibility facade over in
	path  string           // binary trace on disk
}

var (
	caseMu    sync.Mutex
	caseCache = map[grid5000.Case]*caseData{}
	benchDir  string
)

// loadCase generates (once) a scaled Table II case, its on-disk binary
// trace, its microscopic model and its prepared aggregator.
func loadCase(b *testing.B, c grid5000.Case) *caseData {
	b.Helper()
	caseMu.Lock()
	defer caseMu.Unlock()
	if d, ok := caseCache[c]; ok {
		return d
	}
	if benchDir == "" {
		dir, err := os.MkdirTemp("", "ocelotl-bench-")
		if err != nil {
			b.Fatal(err)
		}
		benchDir = dir
	}
	res, err := mpisim.GenerateCase(c, mpisim.Config{Seed: 42, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(benchDir, fmt.Sprintf("case%s.bin", c))
	if err := traceio.WriteFile(path, res.Trace); err != nil {
		b.Fatal(err)
	}
	model, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		b.Fatal(err)
	}
	agg := core.New(model, core.Options{})
	d := &caseData{res: res, model: model, in: agg.Input, agg: agg, path: path}
	caseCache[c] = d
	return d
}

// ---------------------------------------------------------------------------
// Table II: the three pipeline stages per case.

func benchTable2Read(b *testing.B, c grid5000.Case) {
	d := loadCase(b, c)
	st, _ := os.Stat(d.path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := traceio.OpenFile(d.path)
		if err != nil {
			b.Fatal(err)
		}
		var ev trace.Event
		for {
			if err := r.Next(&ev); err != nil {
				break
			}
		}
		r.Close()
	}
}

func BenchmarkTable2_Read_A(b *testing.B) { benchTable2Read(b, grid5000.CaseA) }
func BenchmarkTable2_Read_B(b *testing.B) { benchTable2Read(b, grid5000.CaseB) }
func BenchmarkTable2_Read_C(b *testing.B) { benchTable2Read(b, grid5000.CaseC) }
func BenchmarkTable2_Read_D(b *testing.B) { benchTable2Read(b, grid5000.CaseD) }

func benchTable2Microscopic(b *testing.B, c grid5000.Case) {
	d := loadCase(b, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microscopic.Build(d.res.Trace, microscopic.Options{Slices: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_Microscopic_A(b *testing.B) { benchTable2Microscopic(b, grid5000.CaseA) }
func BenchmarkTable2_Microscopic_B(b *testing.B) { benchTable2Microscopic(b, grid5000.CaseB) }
func BenchmarkTable2_Microscopic_C(b *testing.B) { benchTable2Microscopic(b, grid5000.CaseC) }
func BenchmarkTable2_Microscopic_D(b *testing.B) { benchTable2Microscopic(b, grid5000.CaseD) }

// The aggregation column measures both phases: building the tree of
// triangular matrices (Aggregation_Input) and one Algorithm 1 pass
// (Aggregation_Run — the per-slider-stop cost, "instantaneous" in §V).
func benchTable2AggInput(b *testing.B, c grid5000.Case) {
	d := loadCase(b, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewInput(d.model, core.Options{})
	}
}

func BenchmarkTable2_AggregationInput_A(b *testing.B) { benchTable2AggInput(b, grid5000.CaseA) }
func BenchmarkTable2_AggregationInput_C(b *testing.B) { benchTable2AggInput(b, grid5000.CaseC) }
func BenchmarkTable2_AggregationInput_D(b *testing.B) { benchTable2AggInput(b, grid5000.CaseD) }

func benchTable2AggRun(b *testing.B, c grid5000.Case) {
	d := loadCase(b, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.agg.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_AggregationRun_A(b *testing.B) { benchTable2AggRun(b, grid5000.CaseA) }
func BenchmarkTable2_AggregationRun_B(b *testing.B) { benchTable2AggRun(b, grid5000.CaseB) }
func BenchmarkTable2_AggregationRun_C(b *testing.B) { benchTable2AggRun(b, grid5000.CaseC) }
func BenchmarkTable2_AggregationRun_D(b *testing.B) { benchTable2AggRun(b, grid5000.CaseD) }

// ---------------------------------------------------------------------------
// Figure 1: the full case-A pipeline (aggregate + scene construction).

func BenchmarkFig1_CaseA_Overview(b *testing.B) {
	d := loadCase(b, grid5000.CaseA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := d.agg.Run(0.2)
		if err != nil {
			b.Fatal(err)
		}
		render.BuildScene(d.in, pt, render.Options{Width: 1000, Height: 512})
	}
}

// ---------------------------------------------------------------------------
// Figure 2: the Gantt rendering of the same trace (stats only — the paper's
// point is that drawing everything is the expensive, lossy path).

func BenchmarkFig2_Gantt_CaseA(b *testing.B) {
	d := loadCase(b, grid5000.CaseA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := render.Gantt(d.res.Trace, 1200, 512, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 3: the artificial-trace ladder (build + two aggregation levels +
// visual aggregation).

func BenchmarkFig3_Artificial(b *testing.B) {
	tr := mpisim.Artificial()
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := core.NewInput(m, core.Options{})
		solver := in.NewSolver()
		lo, err := solver.Run(0.25)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := solver.Run(0.9); err != nil {
			b.Fatal(err)
		}
		render.BuildScene(in, lo, render.Options{Width: 480, Height: 36, MinHeight: 6})
	}
}

// ---------------------------------------------------------------------------
// Figure 4: the case-C overview.

func BenchmarkFig4_CaseC_Overview(b *testing.B) {
	d := loadCase(b, grid5000.CaseC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := d.agg.Run(0.35)
		if err != nil {
			b.Fatal(err)
		}
		render.BuildScene(d.in, pt, render.Options{Width: 1000, Height: 700, MinHeight: 2})
	}
}

// ---------------------------------------------------------------------------
// Scaling ablations: Algorithm 1 is O(|S|·|T|³) time with an O(|S|·|T|²)
// input pass. BenchmarkScaling_T_* should grow ~8× per doubling (run) and
// BenchmarkScaling_S_* ~2× per doubling.

func scalingModel(b *testing.B, S, T int) *microscopic.Model {
	b.Helper()
	m, err := microscopic.Build(mpisim.ArtificialSized(S, T), microscopic.Options{Slices: T})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchScalingT(b *testing.B, T int) {
	m := scalingModel(b, 48, T)
	agg := core.New(m, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaling_T_16(b *testing.B)  { benchScalingT(b, 16) }
func BenchmarkScaling_T_32(b *testing.B)  { benchScalingT(b, 32) }
func BenchmarkScaling_T_64(b *testing.B)  { benchScalingT(b, 64) }
func BenchmarkScaling_T_128(b *testing.B) { benchScalingT(b, 128) }

func benchScalingS(b *testing.B, S int) {
	m := scalingModel(b, S, 32)
	agg := core.New(m, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaling_S_24(b *testing.B)  { benchScalingS(b, 24) }
func BenchmarkScaling_S_96(b *testing.B)  { benchScalingS(b, 96) }
func BenchmarkScaling_S_384(b *testing.B) { benchScalingS(b, 384) }

// ---------------------------------------------------------------------------
// Baseline ablations (§III.D): the spatiotemporal algorithm versus the
// Cartesian product and the two 1-D algorithms on the same model.

func BenchmarkAblation_Spatiotemporal(b *testing.B) {
	m := scalingModel(b, 96, 30)
	agg := core.New(m, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Product(b *testing.B) {
	m := scalingModel(b, 96, 30)
	pa := product.New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pa.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SpatialOnly(b *testing.B) {
	m := scalingModel(b, 96, 30)
	sa := spatial.New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sa.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TemporalOnly(b *testing.B) {
	m := scalingModel(b, 96, 30)
	ta := temporal.New(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ta.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SignificantPs measures the dichotomic slider-stop
// search (the interactive exploration cost).
func BenchmarkAblation_SignificantPs(b *testing.B) {
	m := scalingModel(b, 48, 30)
	agg := core.New(m, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.SignificantPs(1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignificantPs tracks the sweep-level cost of the full
// significant-p exploration — the end-to-end latency an analyst waits for
// slider stops — with the batched fused frontier at default workers and
// the Workers=1 reference. Since the batched rewrite, each dichotomy
// round solves all of its midpoints in one fused RunMany call, so the
// default-workers number improves over the committed pre-fusion baseline
// even on a single core; _Batched pins the same path under its
// post-rewrite name for the benchdiff trajectory.
func BenchmarkSignificantPs(b *testing.B)            { benchSignificantPs(b, 0) }
func BenchmarkSignificantPs_Batched(b *testing.B)    { benchSignificantPs(b, 0) }
func BenchmarkSignificantPs_Sequential(b *testing.B) { benchSignificantPs(b, 1) }

func benchSignificantPs(b *testing.B, workers int) {
	m := scalingModel(b, 96, 40)
	in := core.NewInput(m, core.Options{Workers: workers})
	// One warm-up exploration so the timed iterations measure the pooled
	// steady state (solver pool populated, lane arenas faulted in) — the
	// latency a served slider sees — rather than first-use page faults.
	if _, err := in.SignificantPs(1e-3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SignificantPs(1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// The fused-sweep family measures the tentpole economics directly: one
// lane-blocked SweepQuality call over n evenly spaced ps versus the
// unfused reference of n pooled single-p runs (BenchmarkSweepSingle_K16 —
// what every caller paid before the fusion, and still the right baseline
// because the per-p kernels are unchanged). The acceptance bar is ≥ 1.5×
// throughput for the 16-p sweep; report ns/p to compare across n.
func BenchmarkSweepFused_K4(b *testing.B)  { benchSweepFused(b, 4) }
func BenchmarkSweepFused_K16(b *testing.B) { benchSweepFused(b, 16) }

func benchSweepPs(n int) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n+1)
	}
	return ps
}

func benchSweepFused(b *testing.B, n int) {
	m := scalingModel(b, 96, 40)
	in := core.NewInput(m, core.Options{})
	ps := benchSweepPs(n)
	if _, err := in.SweepQuality(ps); err != nil { // steady-state warm-up
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SweepQuality(ps); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/p")
}

func BenchmarkSweepSingle_K16(b *testing.B) {
	m := scalingModel(b, 96, 40)
	in := core.NewInput(m, core.Options{})
	ps := benchSweepPs(16)
	if s := in.AcquireSolver(); s != nil { // steady-state warm-up
		if _, err := s.Quality(ps[0]); err != nil {
			b.Fatal(err)
		}
		in.ReleaseSolver(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			s := in.AcquireSolver()
			if _, err := s.Quality(p); err != nil {
				b.Fatal(err)
			}
			in.ReleaseSolver(s)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ps)), "ns/p")
}

// BenchmarkSweepCancel measures the serving layer's cancellation latency:
// how long after cancel() a mid-flight p-sweep takes to return — the time
// a timed-out request keeps burning CPU past its deadline. The engine
// promises one node-level check interval; the reported cancel-ns/op is
// that interval measured (ns/op itself also includes the deliberate
// let-it-start delay, so cancel-ns/op is the headline number).
func BenchmarkSweepCancel(b *testing.B) {
	m := scalingModel(b, 96, 40)
	in := core.NewInput(m, core.Options{})
	ps := make([]float64, 64)
	for i := range ps {
		ps[i] = float64(i) / float64(len(ps)-1)
	}
	var cancelLatency time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := in.SweepRunContext(ctx, ps)
			done <- err
		}()
		time.Sleep(200 * time.Microsecond) // let solvers get in flight
		start := time.Now()
		cancel()
		err := <-done
		cancelLatency += time.Since(start)
		if err != nil && !errors.Is(err, context.Canceled) {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cancelLatency.Nanoseconds())/float64(b.N), "cancel-ns/op")
}

// ---------------------------------------------------------------------------
// Interactive windowing: the cost of moving the analysis window, which the
// incremental path (microscopic.Reslicer + core.Input.Update) turns from a
// full input pass into O(changed slices) work. The _Scratch variants
// measure the status quo ante: rebuild the microscopic model and the whole
// Input for every window change. The acceptance bar for the incremental
// engine is ≥ 5× on a 1-slice pan at |T| = 50.

const (
	windowBenchS = 96  // |S|
	windowBenchT = 50  // |T|
	windowBenchW = 200 // trace duration (slices are 4 s wide)
)

var (
	windowOnce sync.Once
	windowTr   *trace.Trace
	windowR    *microscopic.Reslicer
	windowIn   *core.Input
)

func windowCase(b *testing.B) (*trace.Trace, *microscopic.Reslicer, *core.Input) {
	b.Helper()
	windowOnce.Do(func() {
		windowTr = mpisim.ArtificialSized(windowBenchS, windowBenchW)
		r, err := microscopic.NewReslicer(windowTr)
		if err != nil {
			b.Fatal(err)
		}
		m, err := r.Build(microscopic.Options{Slices: windowBenchT})
		if err != nil {
			b.Fatal(err)
		}
		windowR, windowIn = r, core.NewInput(m, core.Options{})
	})
	return windowTr, windowR, windowIn
}

// benchWindowPanIncremental ping-pongs the window by ±k slices through the
// incremental path; each iteration is one complete window change (model +
// matrices).
func benchWindowPanIncremental(b *testing.B, k int) {
	_, _, in := windowCase(b)
	b.ResetTimer()
	var err error
	for i := 0; i < b.N; i++ {
		d := k
		if i%2 == 1 {
			d = -k
		}
		if in, err = in.Pan(d); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWindowPanScratch rebuilds model and Input from scratch for the same
// alternating windows.
func benchWindowPanScratch(b *testing.B, k int) {
	tr, _, in := windowCase(b)
	w := in.Model.Slicer.Width()
	start, end := in.Model.Slicer.Start, in.Model.Slicer.End
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, e := start, end
		if i%2 == 0 {
			s, e = start+float64(k)*w, end+float64(k)*w
		}
		m, err := microscopic.Build(tr, microscopic.Options{Slices: windowBenchT, Start: s, End: e})
		if err != nil {
			b.Fatal(err)
		}
		core.NewInput(m, core.Options{})
	}
}

func BenchmarkWindowPan_Incremental(b *testing.B)  { benchWindowPanIncremental(b, 1) }
func BenchmarkWindowPan_Scratch(b *testing.B)      { benchWindowPanScratch(b, 1) }
func BenchmarkWindowPan8_Incremental(b *testing.B) { benchWindowPanIncremental(b, 8) }
func BenchmarkWindowPan8_Scratch(b *testing.B)     { benchWindowPanScratch(b, 8) }

// Zooming changes the slice width, so nothing of the matrices transfers
// across the resolution change itself — the pyramid instead keeps one
// Input resident per visited grid level, so revisiting a resolution is a
// same-grid pan (Input.Update) rather than a rebuild. The benchmark
// ping-pongs between the overview level and a zoomed level with the
// target always a slice or two off the level's resident window, so every
// iteration is a genuine zoom request served by pan-derivation, never a
// pure map hit.
func BenchmarkWindowZoom_Incremental(b *testing.B) {
	_, r, in := windowCase(b)
	ctx := context.Background()
	py := core.NewPyramid(r, core.Options{}, 0)
	if _, _, err := py.Resolve(ctx, in.Model.Slicer); err != nil {
		b.Fatal(err)
	}
	zin, _, err := py.Zoom(ctx, in, 10, 19)
	if err != nil {
		b.Fatal(err)
	}
	over, zoom := in.Model.Slicer, zin.Model.Slicer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl := zoom
		if i%2 == 1 {
			sl = over
		}
		sl = sl.Shift(1 + i%3)
		_, kind, err := py.Resolve(ctx, sl)
		if err != nil {
			b.Fatal(err)
		}
		if kind != core.ResolvePan {
			b.Fatalf("iteration %d resolved %v, want pan (warm level)", i, kind)
		}
	}
}

func BenchmarkWindowZoom_Scratch(b *testing.B) {
	tr, _, in := windowCase(b)
	start, end := in.Model.Slicer.IntervalBounds(10, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := microscopic.Build(tr, microscopic.Options{Slices: windowBenchT, Start: start, End: end})
		if err != nil {
			b.Fatal(err)
		}
		core.NewInput(m, core.Options{})
	}
}

// BenchmarkWindowZoomOut_Incremental measures the coarsen derivation: the
// overview one level up (2× slice width) computed from the fine Input by
// slice-pair merging — no event-index pass, and a matrix fill a quarter
// the size of the fine one. This is the path behind the serving layer's
// progressive previews.
func BenchmarkWindowZoomOut_Incremental(b *testing.B) {
	_, _, in := windowCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Coarsen(2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Trace I/O throughput (the substrate behind Table II's reading column).

func benchIOWrite(b *testing.B, format traceio.Format) {
	d := loadCase(b, grid5000.CaseA)
	hdr := traceio.Header{Resources: d.res.Trace.Resources, States: d.res.Trace.States,
		Start: d.res.Trace.Start, End: d.res.Trace.End}
	b.SetBytes(int64(d.res.Trace.NumEvents()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := traceio.NewWriter(discard{}, format, hdr)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range d.res.Trace.Events {
			if err := w.WriteEvent(e); err != nil {
				b.Fatal(err)
			}
		}
		w.Close()
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkTraceIO_WriteBinary(b *testing.B) { benchIOWrite(b, traceio.FormatBinary) }
func BenchmarkTraceIO_WriteCSV(b *testing.B)    { benchIOWrite(b, traceio.FormatCSV) }

func BenchmarkTraceIO_GenerateCaseA(b *testing.B) {
	sc, _ := grid5000.Scenarios(grid5000.CaseA)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := mpisim.GenerateStream(sc, mpisim.Config{Seed: 42, Scale: benchScale},
			func(trace.Event) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "events")
	}
}

// --- Live ingestion (follow mode) -----------------------------------------

// followBenchBatch synthesizes one tick's worth of time-ordered events in
// [lo, lo+w): the flushed batch a live writer hands the follower.
func followBenchBatch(tick, n, nRes, nStates int, lo, w float64) []trace.Event {
	evs := make([]trace.Event, n)
	step := w / float64(n)
	for i := range evs {
		s := lo + float64(i)*step
		evs[i] = trace.Event{
			Resource: trace.ResourceID((tick*7 + i) % nRes),
			State:    trace.StateID((tick + i) % nStates),
			Start:    s,
			End:      s + 2*step,
		}
	}
	return evs
}

// followBenchSetup builds the steady-state follow scenario: a reslicer
// over one live window's worth of history and the window's Input.
func followBenchSetup(b *testing.B) (*microscopic.Reslicer, *core.Input, *trace.Trace) {
	b.Helper()
	const (
		slices  = 30
		width   = 1.0
		perTick = 2000
	)
	res := make([]string, 16)
	for i := range res {
		res[i] = fmt.Sprintf("h/r%d", i)
	}
	tr := trace.New(res, []string{"run", "wait", "io"})
	tr.Start, tr.End = 0, slices*width
	for tick := 0; tick < slices; tick++ {
		for _, e := range followBenchBatch(tick, perTick, len(res), 3, float64(tick)*width, width) {
			tr.Add(e.Resource, e.State, e.Start, e.End)
		}
	}
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		b.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: slices})
	if err != nil {
		b.Fatal(err)
	}
	return r, core.NewInput(m, core.Options{}), tr
}

// BenchmarkFollowTick is one steady-state live-ingestion tick at the
// engine level: Extend the event index by one slice worth of freshly
// flushed events, then advance the live window's Input one slice — the
// incremental path ocelotld's follower takes every poll. Gated by
// scripts/benchdiff.sh: this latency bounds how fast a trace can be
// ingested while staying interactive.
func BenchmarkFollowTick(b *testing.B) {
	resl, in, tr := followBenchSetup(b)
	ctx := context.Background()
	w := in.Model.Slicer.Width()
	end := tr.End
	b.ResetTimer()
	var err error
	for i := 0; i < b.N; i++ {
		batch := followBenchBatch(30+i, 2000, len(tr.Resources), len(tr.States), end, w)
		end += w
		if resl, err = resl.Extend(batch, batch[len(batch)-1].Start); err != nil {
			b.Fatal(err)
		}
		if in, err = in.AdvanceContext(ctx, resl, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowTick_Rebuild serves the same advancing window the naive
// way — a scratch model build + Input per tick — the comparator for the
// O(Δ slices) claim.
func BenchmarkFollowTick_Rebuild(b *testing.B) {
	resl, in, tr := followBenchSetup(b)
	w := in.Model.Slicer.Width()
	sl := in.Model.Slicer
	end := tr.End
	b.ResetTimer()
	var err error
	for i := 0; i < b.N; i++ {
		batch := followBenchBatch(30+i, 2000, len(tr.Resources), len(tr.States), end, w)
		end += w
		if resl, err = resl.Extend(batch, batch[len(batch)-1].Start); err != nil {
			b.Fatal(err)
		}
		sl = sl.Shift(1)
		m, err := resl.BuildAt(sl)
		if err != nil {
			b.Fatal(err)
		}
		core.NewInput(m, core.Options{})
	}
}
