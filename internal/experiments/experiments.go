// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each Run* function writes its report to Config.Out and
// its artifacts (SVG/PNG) under Config.OutDir; cmd/experiments is the
// command-line wrapper. Keeping the logic here makes the whole evaluation
// pipeline testable.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ocelotl/internal/grid5000"
)

// Config parametrizes an experiment run.
type Config struct {
	// OutDir receives rendered artifacts (created by Run if missing).
	OutDir string
	// Scale multiplies the paper's Table II event counts.
	Scale float64
	// Seed drives the simulators.
	Seed int64
	// Slices is the microscopic |T| (the paper uses 30).
	Slices int
	// Out receives the textual report (default os.Stdout).
	Out io.Writer
	// Workers bounds the parallelism of case preparation and of the
	// engine (core.Options.Workers); 0 picks GOMAXPROCS. This is the same
	// worker-count knob the serving layer exposes.
	Workers int

	// prep memoizes prepared cases across the experiments of one Run so
	// independent cases batch across the worker pool (see batch.go).
	prep *casePrep

	// ctx carries RunContext's cancellation into the engine sweeps the
	// experiments drive; nil means context.Background().
	ctx context.Context
}

// context resolves the run's cancellation context.
func (c Config) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

func (c Config) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return os.Stdout
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.out(), format, args...)
}

func (c Config) println(args ...interface{}) {
	fmt.Fprintln(c.out(), args...)
}

func (c Config) artifact(name string) string { return filepath.Join(c.OutDir, name) }

// Names lists the experiments in canonical order.
func Names() []string {
	return []string{"table1", "fig3", "table2", "fig1", "fig2", "fig4", "ablation", "windowing"}
}

// casesFor returns the distinct Table II cases the named experiments
// consume through the shared bundle path ("all" expands to every name).
func casesFor(names []string) []grid5000.Case {
	need := map[string][]grid5000.Case{
		"fig1": {grid5000.CaseA}, "fig2": {grid5000.CaseA}, "fig4": {grid5000.CaseC},
	}
	seen := map[grid5000.Case]bool{}
	var out []grid5000.Case
	for _, n := range names {
		if n == "all" {
			return casesFor(Names())
		}
		for _, c := range need[n] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Prepare arms cfg's shared case memo and batches the preparation
// (generation, microscopic model, Input) of the independent cases the
// named experiments consume across the worker pool, instead of letting
// each experiment build its case sequentially on first touch. Successive
// Run calls with the returned Config share the prepared cases.
func Prepare(cfg Config, names ...string) Config {
	cfg.prep = newCasePrep()
	cfg.prebuild(casesFor(names))
	return cfg
}

// Run dispatches one experiment by name ("all" runs everything). A full
// run prebuilds the cases the figure experiments share across the worker
// pool (multi-trace batching) before executing the experiments in order.
func Run(name string, cfg Config) error {
	return RunContext(context.Background(), name, cfg)
}

// RunContext is Run with cooperative cancellation: ctx is checked between
// experiments (and between the per-case stages of the batch ones), and is
// forwarded into every engine sweep an experiment drives, so a signalled
// batch run stops within one solve's worth of work instead of finishing
// figures nobody will look at.
func RunContext(ctx context.Context, name string, cfg Config) error {
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
	}
	if cfg.prep == nil {
		cfg.prep = newCasePrep()
	}
	cfg.ctx = ctx
	fns := map[string]func(Config) error{
		"table1": RunTable1, "fig3": RunFig3, "table2": RunTable2,
		"fig1": RunFig1, "fig2": RunFig2, "fig4": RunFig4, "ablation": RunAblation,
		"windowing": RunWindowing,
	}
	if name == "all" {
		cfg.prebuild(casesFor(Names()))
		for _, n := range Names() {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fns[n](cfg); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	fn, ok := fns[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return fn(cfg)
}

// timed measures one pipeline stage.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
