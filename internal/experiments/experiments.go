// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each Run* function writes its report to Config.Out and
// its artifacts (SVG/PNG) under Config.OutDir; cmd/experiments is the
// command-line wrapper. Keeping the logic here makes the whole evaluation
// pipeline testable.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Config parametrizes an experiment run.
type Config struct {
	// OutDir receives rendered artifacts (created by Run if missing).
	OutDir string
	// Scale multiplies the paper's Table II event counts.
	Scale float64
	// Seed drives the simulators.
	Seed int64
	// Slices is the microscopic |T| (the paper uses 30).
	Slices int
	// Out receives the textual report (default os.Stdout).
	Out io.Writer
}

func (c Config) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return os.Stdout
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.out(), format, args...)
}

func (c Config) println(args ...interface{}) {
	fmt.Fprintln(c.out(), args...)
}

func (c Config) artifact(name string) string { return filepath.Join(c.OutDir, name) }

// Names lists the experiments in canonical order.
func Names() []string {
	return []string{"table1", "fig3", "table2", "fig1", "fig2", "fig4", "ablation", "windowing"}
}

// Run dispatches one experiment by name ("all" runs everything).
func Run(name string, cfg Config) error {
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
	}
	fns := map[string]func(Config) error{
		"table1": RunTable1, "fig3": RunFig3, "table2": RunTable2,
		"fig1": RunFig1, "fig2": RunFig2, "fig4": RunFig4, "ablation": RunAblation,
		"windowing": RunWindowing,
	}
	if name == "all" {
		for _, n := range Names() {
			if err := fns[n](cfg); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	fn, ok := fns[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return fn(cfg)
}

// timed measures one pipeline stage.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
