package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ocelotl/internal/grid5000"
)

// quickCfg returns a config small enough for CI but large enough for the
// experiments' assertions to be meaningful.
func quickCfg(t *testing.T) (Config, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return Config{
		OutDir: t.TempDir(),
		Scale:  0.004,
		Seed:   42,
		Slices: 30,
		Out:    &buf,
	}, &buf
}

func TestRunTable1(t *testing.T) {
	cfg, buf := quickCfg(t)
	if err := RunTable1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, crit := range []string{"G1", "G2", "G3", "G4", "G5", "G6", "M1", "M2"} {
		if !strings.Contains(out, crit) {
			t.Errorf("criterion %s missing", crit)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Errorf("a checkable criterion failed:\n%s", out)
	}
}

func TestRunFig3(t *testing.T) {
	cfg, buf := quickCfg(t)
	if err := RunFig3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3.b", "3.c", "3.d", "3.e", "3.f", "significant p values"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("fig3 reported a dominance violation:\n%s", out)
	}
	for _, f := range []string{"fig3d.svg", "fig3e.svg"} {
		if _, err := os.Stat(filepath.Join(cfg.OutDir, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
	// The 3.d partition must have more areas than 3.e (the paper's
	// 56 > 15 ordering).
	re := regexp.MustCompile(`3\.d optimal at p=[0-9.]+:\s+(\d+) areas`)
	md := re.FindStringSubmatch(out)
	re = regexp.MustCompile(`3\.e optimal at p=[0-9.]+:\s+(\d+) areas`)
	me := re.FindStringSubmatch(out)
	if md == nil || me == nil {
		t.Fatalf("area counts not found:\n%s", out)
	}
	if md[1] <= me[1] && len(md[1]) <= len(me[1]) { // numeric compare via width+lex
		t.Errorf("3.d (%s areas) should be finer than 3.e (%s areas)", md[1], me[1])
	}
}

func TestRunTable2(t *testing.T) {
	cfg, buf := quickCfg(t)
	if err := RunTable2(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Case", "(paper)", "3838144", "218457456"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
	// All four cases present.
	for _, c := range []string{"A ", "B ", "C ", "D "} {
		if !strings.Contains(out, "\n"+c) {
			t.Errorf("case %q row missing", strings.TrimSpace(c))
		}
	}
}

func TestRunFig1(t *testing.T) {
	cfg, buf := quickCfg(t)
	cfg.Scale = 0.02 // fig1 needs event density for the detection claim
	if err := RunFig1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MPI_Init") {
		t.Error("fig1 output missing the init phase")
	}
	if !strings.Contains(out, "network-contention") {
		t.Error("fig1 output missing the ground truth")
	}
	re := regexp.MustCompile(`detected (\d+) deviating resources near the perturbation, (\d+) of them truly perturbed`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("detection line missing:\n%s", out)
	}
	if m[2] == "0" {
		t.Error("no truly perturbed resources detected")
	}
	for _, f := range []string{"fig1.svg", "fig1.png"} {
		if _, err := os.Stat(filepath.Join(cfg.OutDir, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
}

func TestRunFig2(t *testing.T) {
	cfg, buf := quickCfg(t)
	cfg.Scale = 0.02
	if err := RunFig2(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sub-pixel") {
		t.Error("fig2 output missing clutter stats")
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "fig2.png")); err != nil {
		t.Errorf("artifact fig2.png: %v", err)
	}
}

func TestRunFig4(t *testing.T) {
	cfg, buf := quickCfg(t)
	if err := RunFig4(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graphene", "graphite", "griffon", "switch-sharing"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "fig4.svg")); err != nil {
		t.Errorf("artifact fig4.svg: %v", err)
	}
}

func TestRunAblation(t *testing.T) {
	cfg, buf := quickCfg(t)
	if err := RunAblation(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scaling in |T|", "scaling in |S|", "product baseline", "significant-p ladder"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	if !strings.Contains(out, "core strictly better") {
		t.Error("ablation found no p where core strictly beats the product baseline")
	}
}

func TestRunDispatch(t *testing.T) {
	cfg, _ := quickCfg(t)
	if err := Run("bogus", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := Run("table1", cfg); err != nil {
		t.Errorf("dispatch table1: %v", err)
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names = %v", names)
	}
	cfg, _ := quickCfg(t)
	// Every named experiment must dispatch.
	for _, n := range names {
		if n == "table2" || n == "fig1" || n == "fig2" || n == "fig4" {
			continue // covered above; skip the slow ones here
		}
		if err := Run(n, cfg); err != nil {
			t.Errorf("Run(%s): %v", n, err)
		}
	}
}

func TestRunWindowing(t *testing.T) {
	cfg, buf := quickCfg(t)
	if err := RunWindowing(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pan 1", "pan 25", "zoom 10:19", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("windowing report missing %q:\n%s", want, out)
		}
	}
	if regexp.MustCompile(`pan 1 .*NaN`).MatchString(out) {
		t.Errorf("bad speedup:\n%s", out)
	}
}

// TestPrepareBatchesSharedCases: Prepare must build each needed case
// exactly once across the worker pool, and Run* consumers must reuse the
// memoized bundle rather than regenerating (same pointer identity).
func TestPrepareBatchesSharedCases(t *testing.T) {
	cfg, _ := quickCfg(t)
	cfg.Workers = 2
	cfg = Prepare(cfg, "fig1", "fig2", "fig4")

	b1, err := cfg.bundle(grid5000.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cfg.bundle(grid5000.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("case A rebuilt instead of reusing the memoized bundle")
	}
	if b1.res == nil || b1.model == nil || b1.in == nil {
		t.Fatalf("incomplete bundle: %+v", b1)
	}
	// The prepared bundle must match a direct, unbatched build.
	direct, err := buildBundle(cfg, grid5000.CaseA)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b1.model.TotalTime(), direct.model.TotalTime(); got != want {
		t.Fatalf("batched model TotalTime %v != direct %v", got, want)
	}
	bg, bl := b1.in.RootGainLoss()
	dg, dl := direct.in.RootGainLoss()
	if bg != dg || bl != dl {
		t.Fatalf("batched input root gain/loss (%v,%v) != direct (%v,%v)", bg, bl, dg, dl)
	}
	if got := casesFor([]string{"fig1", "fig2", "fig4"}); len(got) != 2 {
		t.Fatalf("casesFor = %v, want the two distinct cases A and C", got)
	}
}
