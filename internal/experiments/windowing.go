package experiments

import (
	"fmt"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/timeslice"
)

// RunWindowing backs the incremental-windowing claim with measurements: a
// window change through microscopic.Reslicer + core.Input.Update costs
// O(changed slices), against rebuilding the model and the whole Input from
// scratch. The table sweeps the overlap fraction W/|T| from a 1-slice pan
// down to a full displacement, plus a zoom (whose slice width changes, so
// only the indexed model fill is saved). Every incremental result is
// checked against the from-scratch build before timing is reported — the
// experiment fails rather than print a speedup for a wrong answer.
func RunWindowing(cfg Config) error {
	const (
		S = 96
		T = 50
	)
	tr := mpisim.ArtificialSized(S, 4*T)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		return err
	}
	base, err := r.Build(microscopic.Options{Slices: T})
	if err != nil {
		return err
	}
	in := core.NewInput(base, core.Options{})

	cfg.printf("incremental window updates vs from-scratch rebuild (|S|=%d, |T|=%d, %d events):\n",
		S, T, r.NumEvents())
	cfg.printf("%12s %10s %14s %14s %10s\n", "step", "overlap", "incremental", "scratch", "speedup")

	w := base.Slicer.Width()
	scratch := func(start, end float64) (*core.Input, time.Duration, error) {
		t0 := time.Now()
		m, err := microscopic.Build(tr, microscopic.Options{Slices: T, Start: start, End: end})
		if err != nil {
			return nil, 0, err
		}
		fresh := core.NewInput(m, core.Options{})
		return fresh, time.Since(t0), nil
	}
	row := func(label string, overlap int, inc func() (*core.Input, error), start, end float64) error {
		t0 := time.Now()
		got, err := inc()
		if err != nil {
			return err
		}
		dInc := time.Since(t0)
		_, dScr, err := scratch(start, end)
		if err != nil {
			return err
		}
		// Bit-exact self-check against a full fill of the same window from
		// the same index (Build accumulates in trace order, the index in
		// per-resource start order, so *that* comparison is only ever
		// tolerance-exact; within the index family equality is exact).
		fm, err := r.BuildAt(got.Model.Slicer)
		if err != nil {
			return err
		}
		fresh := core.NewInput(fm, core.Options{})
		if err := sameAnswers(got, fresh); err != nil {
			return fmt.Errorf("windowing %s: incremental diverged from fresh build: %w", label, err)
		}
		cfg.printf("%12s %9.0f%% %14v %14v %9.1f×\n", label,
			100*float64(overlap)/float64(T),
			dInc.Round(time.Microsecond), dScr.Round(time.Microsecond),
			float64(dScr)/float64(dInc))
		return nil
	}

	for _, k := range []int{1, 2, 5, 12, 25, 50} {
		k := k
		start, end := base.Slicer.Start+float64(k)*w, base.Slicer.End+float64(k)*w
		overlap := T - k
		if overlap < 0 {
			overlap = 0
		}
		if err := row(fmt.Sprintf("pan %d", k), overlap,
			func() (*core.Input, error) { return in.Pan(k) }, start, end); err != nil {
			return err
		}
	}
	zs, ze := base.Slicer.IntervalBounds(10, 19)
	if err := row("zoom 10:19", 0,
		func() (*core.Input, error) { return in.Zoom(10, 19) }, zs, ze); err != nil {
		return err
	}
	cfg.println("\n(speedup scales with the overlap: surviving slice rows and the shared")
	cfg.println(" gain/loss sub-triangle are reused; a zoom changes the slice width, so")
	cfg.println(" only the indexed event fill is saved.)")

	// The multi-resolution pyramid closes the zoom gap: one Input stays
	// resident per visited grid level, so the overview-then-drill loop
	// pays scratch once per resolution and pan prices on every revisit.
	// The same bit-exact self-check guards every row.
	py := core.NewPyramid(r, core.Options{}, 0)
	ctx := cfg.context()
	cfg.println("\npyramid zoom sequence (overview ⇄ drill, levels stay warm):")
	cfg.printf("%24s %10s %14s %14s %10s\n", "step", "resolve", "pyramid", "scratch", "speedup")
	pyRow := func(label string, sl timeslice.Slicer) error {
		t0 := time.Now()
		got, kind, err := py.Resolve(ctx, sl)
		if err != nil {
			return err
		}
		dPy := time.Since(t0)
		_, dScr, err := scratch(sl.Start, sl.End)
		if err != nil {
			return err
		}
		fm, err := r.BuildAt(got.Model.Slicer)
		if err != nil {
			return err
		}
		fresh := core.NewInput(fm, core.Options{})
		if err := sameAnswers(got, fresh); err != nil {
			return fmt.Errorf("pyramid %s: diverged from fresh build: %w", label, err)
		}
		cfg.printf("%24s %10s %14v %14v %9.1f×\n", label, kind,
			dPy.Round(time.Microsecond), dScr.Round(time.Microsecond),
			float64(dScr)/float64(dPy))
		return nil
	}
	drillSl, err := timeslice.New(zs, ze, T)
	if err != nil {
		return err
	}
	overview := in.Model.Slicer
	for _, step := range []struct {
		label string
		sl    timeslice.Slicer
	}{
		{"overview (first visit)", overview},
		{"drill 10:19 (first)", drillSl},
		{"back out (warm)", overview},
		{"re-drill panned (warm)", drillSl.Shift(2)},
		{"overview panned (warm)", overview.Shift(-3)},
	} {
		if err := pyRow(step.label, step.sl); err != nil {
			return err
		}
	}
	cfg.println("\n(first visits to a resolution build from the event index; revisits")
	cfg.println(" resolve as hits or same-grid pan-derivations — zooms at pan prices.)")
	return nil
}

// sameAnswers cross-checks the observable behavior of two Inputs over the
// same window: normalization constants and the optimal partitions at a few
// p. The incremental path promises bit-identity, so the comparison is
// exact.
func sameAnswers(a, b *core.Input) error {
	ag, al := a.RootGainLoss()
	bg, bl := b.RootGainLoss()
	if ag != bg || al != bl {
		return fmt.Errorf("RootGainLoss (%v,%v) vs (%v,%v)", ag, al, bg, bl)
	}
	for _, p := range []float64{0.25, 0.75} {
		pa, err := a.NewSolver().Run(p)
		if err != nil {
			return err
		}
		pb, err := b.NewSolver().Run(p)
		if err != nil {
			return err
		}
		if pa.Signature() != pb.Signature() || pa.PIC != pb.PIC {
			return fmt.Errorf("Run(%v) partitions differ", p)
		}
	}
	return nil
}
