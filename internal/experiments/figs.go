package experiments

import (
	"os"

	"ocelotl/internal/analysis"
	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/partition"
	"ocelotl/internal/product"
	"ocelotl/internal/render"
	"ocelotl/internal/spatial"
	"ocelotl/internal/temporal"
)

// runTable1 prints the Table I criteria row for this implementation and
// verifies the checkable criteria programmatically on the artificial
// trace: G1 via the visual-aggregation entity budget, G4 via the
// diagonal/cross marks, G5 via the exposed gain/loss, M1/M2 by
// construction of the spatiotemporal algorithm.
func RunTable1(cfg Config) error {
	m, err := microscopic.Build(mpisim.Artificial(), microscopic.Options{Slices: 20})
	if err != nil {
		return err
	}
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.35)
	if err != nil {
		return err
	}
	// Check G1: at a tiny vertical budget the scene must not exceed the
	// entity budget (≤ one rect per threshold band per slice).
	sc := render.BuildScene(in, pt, render.Options{Width: 400, Height: 24, MinHeight: 4})
	budget := (24/4 + 1) * m.NumSlices()
	g1 := len(sc.Rects) <= budget
	// Check G4: visual aggregates all marked.
	g4 := true
	for _, r := range sc.Rects {
		if r.Visual == (r.Mark == render.MarkNone) {
			g4 = false
		}
	}
	// Check G5: the partition reports its information loss.
	g5 := pt.Loss >= 0 && pt.Gain != 0

	cfg.println("Table I row — Timeline, Information aggregation (⋆, ◦): Ocelotl (this implementation)")
	cfg.printf("  G1 entity budget        %s (scene rects %d ≤ budget %d at 24 px)\n", checkmark(g1), len(sc.Rects), budget)
	cfg.printf("  G2 visual summary       • (mode color + α-opacity per aggregate)\n")
	cfg.printf("  G3 visual simplicity    • (plain rectangles)\n")
	cfg.printf("  G4 discriminability     %s (diagonal/cross marks on visual aggregates)\n", checkmark(g4))
	cfg.printf("  G5 fidelity             %s (gain %.2f / loss %.2f bits exposed to the user)\n", checkmark(g5), pt.Gain, pt.Loss)
	cfg.printf("  G6 interpretability     • (aggregates = homogeneous spatiotemporal areas)\n")
	cfg.printf("  M1 spatiotemporal repr. • (both axes drawn)\n")
	cfg.printf("  M2 aggregation coherence• (single criterion over H(S)×I(T))\n")
	return nil
}

func checkmark(ok bool) string {
	if ok {
		return "•"
	}
	return "✗ FAILED"
}

// runFig3 reproduces Figure 3: the artificial trace's aggregation ladder —
// the fixed partition of Fig. 3.b, the product baseline of Fig. 3.c, the
// optimal spatiotemporal partitions at two p values (Figs. 3.d/3.e), and
// the visual aggregation of Fig. 3.f.
func RunFig3(cfg Config) error {
	tr := mpisim.Artificial()
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		return err
	}
	in := core.NewInput(m, core.Options{})

	// 3.b: the naive fixed partition (3 clusters × 4 five-slice periods).
	fixed := fixedPartition(m)
	fg, fl, _ := in.EvaluatePartition(fixed, 0.5)
	cfg.printf("3.b fixed 3×4 grid:          %3d areas, gain %7.2f, loss %7.2f\n", fixed.NumAreas(), fg, fl)

	// 3.c: product of the two 1-D optima.
	pa := product.New(m)
	prodPt, err := pa.Evaluate(in, 0.5)
	if err != nil {
		return err
	}
	cfg.printf("3.c product of 1-D optima:   %3d areas, gain %7.2f, loss %7.2f\n", prodPt.NumAreas(), prodPt.Gain, prodPt.Loss)
	sp, _ := spatial.New(m).Run(0.5)
	tp, _ := temporal.New(m).Run(0.5)
	cfg.printf("    (spatial-only %d nodes × temporal-only %d intervals)\n", sp.NumAreas(), tp.NumAreas())

	// 3.d/3.e: the optimal spatiotemporal partitions at two significant
	// p values (the paper shows 56 then 15 areas; exact counts depend on
	// the synthetic data, the ordering is the reproduced shape).
	points, err := in.SignificantPsContext(cfg.context(), 1e-3)
	if err != nil {
		return err
	}
	cfg.printf("significant p values: %d distinct partitions\n", len(points))
	pd, pe := pickFigPs(points)
	// The two sampled granularities are independent queries; solve them
	// concurrently against the shared input.
	figPts, err := in.SweepRunContext(cfg.context(), []float64{pd, pe})
	if err != nil {
		return err
	}
	lo, hi := figPts[0], figPts[1]
	cfg.printf("3.d optimal at p=%.3f:       %3d areas, gain %7.2f, loss %7.2f (paper: 56 areas)\n", pd, lo.NumAreas(), lo.Gain, lo.Loss)
	cfg.printf("3.e optimal at p=%.3f:       %3d areas, gain %7.2f, loss %7.2f (paper: 15 areas)\n", pe, hi.NumAreas(), hi.Gain, hi.Loss)
	cg, cl, _ := in.EvaluatePartition(lo, 0.5)
	if cg-cl <= fg-fl {
		cfg.println("    WARNING: optimal partition does not dominate the fixed grid")
	}

	// 3.f: visual aggregation of 3.d on a small canvas.
	sc := render.BuildScene(in, lo, render.Options{Width: 480, Height: 36, MinHeight: 6})
	cfg.printf("3.f visual aggregation:      %3d data + %d visual aggregates (paper: 21 + 7)\n",
		sc.DataAggregates, sc.VisualAggregates)

	// Render 3.d and 3.e as SVGs.
	if err := writeSVG(in, lo, cfg.artifact("fig3d.svg"), render.Options{Width: 600, Height: 360}); err != nil {
		return err
	}
	if err := writeSVG(in, hi, cfg.artifact("fig3e.svg"), render.Options{Width: 600, Height: 360}); err != nil {
		return err
	}
	cfg.printf("artifacts: %s, %s\n", cfg.artifact("fig3d.svg"), cfg.artifact("fig3e.svg"))
	return nil
}

// pickFigPs selects the two p values whose partitions best match the
// Fig. 3.d/3.e granularities: the closest to ~56 areas and the closest to
// ~15 areas (counts on the artificial trace).
func pickFigPs(points []core.QualityPoint) (pd, pe float64) {
	bestD, bestE := 1<<30, 1<<30
	pd, pe = 0.3, 0.9
	for _, q := range points {
		if d := absInt(q.Areas - 56); d < bestD {
			bestD, pd = d, q.P
		}
		if d := absInt(q.Areas - 15); d < bestE {
			bestE, pe = d, q.P
		}
	}
	return pd, pe
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// fixedPartition builds Fig. 3.b: clusters × four 5-slice periods.
func fixedPartition(m *microscopic.Model) *partition.Partition {
	pt := &partition.Partition{P: 0.5}
	for _, n := range m.H.Root.Children {
		for k := 0; k < 4; k++ {
			pt.Areas = append(pt.Areas, partition.Area{Node: n, I: k * 5, J: k*5 + 4})
		}
	}
	return pt
}

// writeSVG renders the partition to an SVG file.
func writeSVG(in *core.Input, pt *partition.Partition, path string, opt render.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.BuildScene(in, pt, opt).SVG(f)
}

// runFig1 reproduces Figure 1: the case-A overview with the perturbation
// around 3 s, plus the §V.A findings (phases, wait-dedicated processes,
// impacted-process list).
func RunFig1(cfg Config) error {
	b, err := cfg.bundle(grid5000.CaseA)
	if err != nil {
		return err
	}
	res, m, in := b.res, b.model, b.in
	pt, err := in.NewSolver().Run(0.2)
	if err != nil {
		return err
	}
	rep := analysis.Describe(in, pt, 2)
	cfg.printf("%s", rep.Format(m.States))
	gt := res.Perturbations[0]
	cfg.printf("\nground truth: %s %0.2fs–%0.2fs affecting %d ranks\n", gt.Kind, gt.Start, gt.End, len(gt.Ranks))
	devs := analysis.DeviatingResources(m, pt, m.Slicer.SliceOf(gt.Start)-1, m.Slicer.SliceOf(gt.End)+1)
	hits := 0
	truth := map[string]bool{}
	for _, r := range gt.Ranks {
		truth[res.Trace.Resources[r]] = true
	}
	for _, d := range devs {
		if truth[d.Path] {
			hits++
		}
	}
	cfg.printf("detected %d deviating resources near the perturbation, %d of them truly perturbed\n", len(devs), hits)
	if err := writeSVG(in, pt, cfg.artifact("fig1.svg"), render.Options{Width: 1000, Height: 512}); err != nil {
		return err
	}
	f, err := os.Create(cfg.artifact("fig1.png"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render.BuildScene(in, pt, render.Options{Width: 1000, Height: 512}).PNG(f); err != nil {
		return err
	}
	cfg.printf("artifacts: %s, %s\n", cfg.artifact("fig1.svg"), cfg.artifact("fig1.png"))
	return nil
}

// runFig2 reproduces Figure 2: the cluttered Gantt chart of the same
// trace. The point is quantitative — most events cannot be drawn
// faithfully at screen resolution.
func RunFig2(cfg Config) error {
	b, err := cfg.bundle(grid5000.CaseA)
	if err != nil {
		return err
	}
	res := b.res
	f, err := os.Create(cfg.artifact("fig2.png"))
	if err != nil {
		return err
	}
	defer f.Close()
	// The paper's Fig. 2 shows 1/7 of the trace and is still cluttered;
	// take a central seventh (inside the computation phase).
	_, we := res.Trace.Window()
	sub := res.Trace.Slice(3*we/7, 4*we/7)
	stats, err := render.Gantt(sub, 1200, 512, nil, f)
	if err != nil {
		return err
	}
	cfg.printf("Gantt of 1/7 of case A at 1200×512: %s\n", stats)
	full, err := render.Gantt(res.Trace, 1200, 512, nil, nil)
	if err != nil {
		return err
	}
	cfg.printf("Gantt of the full trace:            %s\n", full)
	cfg.printf("artifact: %s\n", cfg.artifact("fig2.png"))
	return nil
}

// runFig4 reproduces Figure 4: the case-C overview — Graphene homogeneous,
// Graphite spatially separated and heterogeneous, Griffon ruptured at
// 34.5 s.
func RunFig4(cfg Config) error {
	b, err := cfg.bundle(grid5000.CaseC)
	if err != nil {
		return err
	}
	res, m, in := b.res, b.model, b.in
	pt, err := in.NewSolver().Run(0.35)
	if err != nil {
		return err
	}
	rep := analysis.Describe(in, pt, 2)
	cfg.printf("%s", rep.Format(m.States))
	for _, gt := range res.Perturbations {
		cfg.printf("ground truth: %-18s %6.2fs–%6.2fs affecting %d ranks\n", gt.Kind, gt.Start, gt.End, len(gt.Ranks))
	}
	if err := writeSVG(in, pt, cfg.artifact("fig4.svg"), render.Options{Width: 1000, Height: 700, MinHeight: 2}); err != nil {
		return err
	}
	cfg.printf("artifacts: %s\n", cfg.artifact("fig4.svg"))
	return nil
}
