package experiments

import (
	"os"
	"path/filepath"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

// runTable2 reproduces Table II: for each case A–D, the scenario settings,
// the generated trace's event count and on-disk size, and the three
// pipeline timings the paper reports — trace reading, microscopic
// description, aggregation. Event counts are scaled by -scale; the paper's
// absolute numbers are printed alongside for comparison.
func RunTable2(cfg Config) error {
	cfg.printf("Table II reproduction (scale %.3g; paper values in parentheses)\n\n", cfg.Scale)
	cfg.printf("%-6s %-4s %-6s %-10s %12s %10s %12s %14s %12s %12s\n",
		"Case", "App", "Class", "Procs", "Events", "Trace MB", "Reading", "Microscopic", "Aggregation", "Sweep16/p")
	for _, c := range grid5000.AllCases() {
		// Each case generates, re-reads and aggregates a whole trace; honor
		// an interrupt between cases rather than finishing the table.
		if err := cfg.context().Err(); err != nil {
			return err
		}
		sc, err := grid5000.Scenarios(c)
		if err != nil {
			return err
		}
		row, err := measureCase(cfg, sc)
		if err != nil {
			return err
		}
		cfg.printf("%-6s %-4s %-6s %-10d %12d %10.1f %12v %14v %12v %12v\n",
			string(c), sc.Application, sc.Class, sc.Processes,
			row.events, row.traceMB, row.read.Round(time.Millisecond), row.micro.Round(time.Millisecond), row.agg.Round(time.Millisecond),
			(row.sweep / 16).Round(time.Microsecond))
		cfg.printf("%-6s %-4s %-6s %-10s %12d %10.1f %12s %14s %12s %12s\n",
			"", "", "", "(paper)", sc.PaperEvents, sc.PaperTraceMB,
			paperReading(c), paperMicro(c), paperAgg(c), "-")
	}
	cfg.println("\nShape check: aggregation must be orders of magnitude below reading, and")
	cfg.println("stay interactive (≪1 s at 30 slices) regardless of the event count; the")
	cfg.println("fused sweep's per-p cost must sit below one Aggregation run.")
	return nil
}

type table2Row struct {
	events  int
	traceMB float64
	read    time.Duration
	micro   time.Duration
	agg     time.Duration
	sweep   time.Duration // fused 16-p quality sweep (Sweep16/p = sweep/16)
}

func measureCase(cfg Config, sc grid5000.Scenario) (table2Row, error) {
	var row table2Row
	// Generate the scaled trace to disk (binary, the fast path).
	dir, err := os.MkdirTemp("", "ocelotl-table2-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.bin")
	w, err := traceio.CreateFile(path, traceio.Header{
		Resources: sc.Platform.ResourcePaths(sc.Processes),
		States:    mpisim.StateNames,
		Start:     0, End: sc.PaperRuntime,
	})
	if err != nil {
		return row, err
	}
	n := 0
	if _, err := mpisim.GenerateStream(sc, mpisim.Config{Seed: cfg.Seed, Scale: cfg.Scale}, func(ev trace.Event) error {
		n++
		return w.WriteEvent(ev)
	}); err != nil {
		return row, err
	}
	if err := w.Close(); err != nil {
		return row, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return row, err
	}
	row.events = n
	row.traceMB = float64(st.Size()) / (1 << 20)

	// Stage 1: trace reading (decode the file into event structures).
	var tr *trace.Trace
	row.read, err = timed(func() error {
		var err error
		tr, err = traceio.ReadFile(path)
		return err
	})
	if err != nil {
		return row, err
	}
	// Stage 2: microscopic description (events → d_x(s,t)).
	var m *microscopic.Model
	row.micro, err = timed(func() error {
		var err error
		m, err = microscopic.Build(tr, microscopic.Options{Slices: cfg.Slices})
		return err
	})
	if err != nil {
		return row, err
	}
	// Stage 3: aggregation (input matrices + one Algorithm 1 run).
	var in *core.Input
	row.agg, err = timed(func() error {
		in = core.NewInput(m, core.Options{})
		_, err := in.NewSolver().RunContext(cfg.context(), 0.5)
		return err
	})
	if err != nil {
		return row, err
	}
	// Stage 4: the interactive exploration cost — a fused 16-p quality
	// sweep over the same Input (the "build once, answer every p" economics
	// the serving layer banks on); the table reports the per-p share.
	ps := make([]float64, 16)
	for i := range ps {
		ps[i] = float64(i+1) / float64(len(ps)+1)
	}
	row.sweep, err = timed(func() error {
		_, err := in.SweepQualityContext(cfg.context(), ps)
		return err
	})
	return row, err
}

func paperReading(c grid5000.Case) string {
	switch c {
	case grid5000.CaseA:
		return "44 s"
	case grid5000.CaseB:
		return "613 s"
	case grid5000.CaseC:
		return "2911 s"
	default:
		return "2091 s"
	}
}

func paperMicro(c grid5000.Case) string {
	switch c {
	case grid5000.CaseA:
		return "4 s"
	case grid5000.CaseB:
		return "55 s"
	case grid5000.CaseC:
		return "244 s"
	default:
		return "196 s"
	}
}

func paperAgg(c grid5000.Case) string {
	switch c {
	case grid5000.CaseA, grid5000.CaseB:
		return "<1 s"
	default:
		return "2 s"
	}
}
