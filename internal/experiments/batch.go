package experiments

import (
	"runtime"
	"sync"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
)

// caseBundle is one Table II case prepared end to end: the generated
// trace (with its ground-truth perturbations), its microscopic model and
// its aggregation Input.
type caseBundle struct {
	res   *mpisim.Result
	model *microscopic.Model
	in    *core.Input
}

// casePrep memoizes case preparation across the experiments of one Run,
// so figures sharing a case (fig1 and fig2 both use case A) generate and
// build it once, and so Prebuild can batch the input passes of
// independent cases across the worker pool. Each case's once-guard is
// independent: two cases build concurrently, one case builds exactly
// once.
type casePrep struct {
	mu      sync.Mutex
	pending map[grid5000.Case]*caseOnce
}

type caseOnce struct {
	once   sync.Once
	bundle *caseBundle
	err    error
}

func newCasePrep() *casePrep {
	return &casePrep{pending: make(map[grid5000.Case]*caseOnce)}
}

func (p *casePrep) slot(c grid5000.Case) *caseOnce {
	p.mu.Lock()
	defer p.mu.Unlock()
	o, ok := p.pending[c]
	if !ok {
		o = &caseOnce{}
		p.pending[c] = o
	}
	return o
}

// bundle returns the prepared case, building it on first use.
func (cfg Config) bundle(c grid5000.Case) (*caseBundle, error) {
	if cfg.prep == nil { // direct Run* call without the Run dispatcher
		return buildBundle(cfg, c)
	}
	o := cfg.prep.slot(c)
	o.once.Do(func() { o.bundle, o.err = buildBundle(cfg, c) })
	return o.bundle, o.err
}

func buildBundle(cfg Config, c grid5000.Case) (*caseBundle, error) {
	res, err := mpisim.GenerateCase(c, mpisim.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: cfg.Slices})
	if err != nil {
		return nil, err
	}
	in := core.NewInput(m, core.Options{Workers: cfg.Workers})
	return &caseBundle{res: res, model: m, in: in}, nil
}

// Prebuild batches the preparation of independent cases across the
// worker pool (the same worker-count option the serving layer uses)
// instead of letting each experiment build its case sequentially on first
// touch. Errors are left for the consuming experiment to report in
// context; Prebuild itself only warms the memo.
func (cfg Config) prebuild(cases []grid5000.Case) {
	if cfg.prep == nil || len(cases) < 2 {
		return
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	var wg sync.WaitGroup
	next := make(chan grid5000.Case)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				cfg.bundle(c)
			}
		}()
	}
	for _, c := range cases {
		next <- c
	}
	close(next)
	wg.Wait()
}
