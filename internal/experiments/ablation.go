package experiments

import (
	"fmt"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/product"
	"ocelotl/internal/temporal"
)

// runAblation backs the paper's §III complexity claims and the §III.D
// baseline comparison with measurements:
//
//  1. aggregation time scales ~cubically in |T| at fixed |S| and
//     ~linearly in |S| at fixed |T| (Algorithm 1 is O(|S|·|T|³));
//  2. the spatiotemporal optimum dominates the Cartesian-product baseline
//     at every p, strictly where cross patterns exist;
//  3. the significant-p ladder gives the analyst a small set of slider
//     stops;
//  4. the fused lane-blocked p-sweep answers a 16-p quality curve well
//     under the cost of 16 single-p runs, bit-identically.
func RunAblation(cfg Config) error {
	cfg.println("1. scaling in |T| at |S|=48 (expect ~8× time per 2× slices at large |T|):")
	cfg.printf("%8s %12s %12s %14s\n", "|T|", "input", "run", "cells")
	for _, T := range []int{16, 32, 64, 128} {
		input, run, cells, err := measureScaling(48, T)
		if err != nil {
			return err
		}
		cfg.printf("%8d %12v %12v %14d\n", T, input.Round(time.Microsecond), run.Round(time.Microsecond), cells)
	}
	cfg.println("\n2. scaling in |S| at |T|=32 (expect ~2× time per 2× resources):")
	cfg.printf("%8s %12s %12s %14s\n", "|S|", "input", "run", "cells")
	for _, S := range []int{24, 48, 96, 192, 384} {
		input, run, cells, err := measureScaling(S, 32)
		if err != nil {
			return err
		}
		cfg.printf("%8d %12v %12v %14d\n", S, input.Round(time.Microsecond), run.Round(time.Microsecond), cells)
	}

	cfg.println("\n3. spatiotemporal optimum vs Cartesian-product baseline (artificial trace):")
	m, err := microscopic.Build(mpisim.Artificial(), microscopic.Options{Slices: 20})
	if err != nil {
		return err
	}
	in := core.NewInput(m, core.Options{})
	pa := product.New(m)
	cfg.printf("%6s %14s %14s %10s\n", "p", "core pIC", "product pIC", "areas")
	// The spatiotemporal curve is sampled concurrently (one solver per p
	// against the shared input); reporting stays in p order.
	ps := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	corePts, err := in.SweepRunContext(cfg.context(), ps)
	if err != nil {
		return err
	}
	for i, p := range ps {
		corePt := corePts[i]
		prodPt, err := pa.Evaluate(in, p)
		if err != nil {
			return err
		}
		marker := ""
		if corePt.PIC > prodPt.PIC+1e-9 {
			marker = "  (core strictly better)"
		}
		cfg.printf("%6.2f %14.3f %14.3f %6d/%-4d%s\n", p, corePt.PIC, prodPt.PIC, corePt.NumAreas(), prodPt.NumAreas(), marker)
	}

	cfg.println("\n4. temporal-only baseline cost on the same model (O(|T|²) DP):")
	ta := temporal.New(m)
	start := time.Now()
	tp, err := ta.Run(0.5)
	if err != nil {
		return err
	}
	cfg.printf("   %d intervals in %v\n", tp.NumAreas(), time.Since(start).Round(time.Microsecond))

	cfg.println("\n5. significant-p ladder (slider stops):")
	points, err := in.SignificantPsContext(cfg.context(), 1e-3)
	if err != nil {
		return err
	}
	for _, q := range points {
		cfg.printf("   p=%6.4f  %4d areas  gain %8.2f  loss %8.2f\n", q.P, q.Areas, q.Gain, q.Loss)
	}

	cfg.println("\n6. fused p-sweep vs single-p runs (16 ps on a larger model):")
	mw, err := microscopic.Build(mpisim.ArtificialSized(96, 40), microscopic.Options{Slices: 40})
	if err != nil {
		return err
	}
	inw := core.NewInput(mw, core.Options{})
	sweepPs := make([]float64, 16)
	for i := range sweepPs {
		sweepPs[i] = float64(i+1) / float64(len(sweepPs)+1)
	}
	var single []core.QualityPoint
	singleDur, err := timed(func() error {
		s, err := inw.AcquireSolverContext(cfg.context())
		if err != nil {
			return err
		}
		defer inw.ReleaseSolver(s)
		for _, p := range sweepPs {
			q, err := s.QualityContext(cfg.context(), p)
			if err != nil {
				return err
			}
			single = append(single, q)
		}
		return nil
	})
	if err != nil {
		return err
	}
	var fused []core.QualityPoint
	fusedDur, err := timed(func() error {
		var err error
		fused, err = inw.SweepQualityContext(cfg.context(), sweepPs)
		return err
	})
	if err != nil {
		return err
	}
	for i := range fused {
		if fused[i] != single[i] {
			return fmt.Errorf("fused sweep diverged from single-p runs at p=%v", sweepPs[i])
		}
	}
	cfg.printf("   16 single-p runs: %10v   fused sweep: %10v   (%.1fx, bit-identical)\n",
		singleDur.Round(time.Microsecond), fusedDur.Round(time.Microsecond),
		float64(singleDur)/float64(fusedDur))
	return nil
}

// measureScaling builds a synthetic model of the given dimensions and
// times the two phases of the algorithm separately.
func measureScaling(S, T int) (input, run time.Duration, cells int, err error) {
	tr := mpisim.ArtificialSized(S, T)
	m, err := microscopic.Build(tr, microscopic.Options{Slices: T})
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	in := core.NewInput(m, core.Options{})
	input = time.Since(start)
	solver := in.NewSolver()
	start = time.Now()
	if _, err := solver.Run(0.5); err != nil {
		return 0, 0, 0, err
	}
	run = time.Since(start)
	return input, run, in.InputCells(), nil
}
