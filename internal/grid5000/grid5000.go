// Package grid5000 models the experimental platform of the paper's
// evaluation (§V): Grid'5000 sites, their clusters, machines and cores,
// and the four Table II case configurations. The aggregation algorithms
// only consume the resource *hierarchy* (site → cluster → machine →
// process-bound-to-core) plus coarse interconnect characteristics used by
// the MPI simulator, so this declarative model is a faithful substitute
// for the physical testbed.
package grid5000

import (
	"fmt"

	"ocelotl/internal/hierarchy"
)

// Network is the coarse interconnect class of a cluster; the simulator
// uses it to scale communication latencies (the paper attributes the
// Graphite cluster's heterogeneous behaviour to its slower Ethernet).
type Network int

const (
	// Infiniband20G covers the MT25418/Infiniband-20G interconnects of
	// parapide, graphene, griffon, adonis, edel, genepi…
	Infiniband20G Network = iota
	// Ethernet10G is the 10 Gigabit Ethernet of the Graphite cluster.
	Ethernet10G
	// Ethernet1G models commodity gigabit for synthetic experiments.
	Ethernet1G
)

// String names the network class.
func (n Network) String() string {
	switch n {
	case Infiniband20G:
		return "infiniband-20G"
	case Ethernet10G:
		return "ethernet-10G"
	case Ethernet1G:
		return "ethernet-1G"
	default:
		return fmt.Sprintf("network(%d)", int(n))
	}
}

// LatencyFactor returns the simulator's relative communication latency
// multiplier for this network class (Infiniband = 1).
func (n Network) LatencyFactor() float64 {
	switch n {
	case Infiniband20G:
		return 1
	case Ethernet10G:
		return 3.5
	case Ethernet1G:
		return 8
	default:
		return 1
	}
}

// Cluster describes one homogeneous Grid'5000 cluster.
type Cluster struct {
	Name     string
	Machines int // number of nodes available to the experiment
	Cores    int // cores per machine (= MPI processes bound per node)
	Network  Network
}

// TotalCores returns Machines·Cores.
func (c Cluster) TotalCores() int { return c.Machines * c.Cores }

// Platform is a site with the clusters allocated to one experiment.
type Platform struct {
	Site     string
	Clusters []Cluster
}

// TotalCores sums the cores of every cluster.
func (p Platform) TotalCores() int {
	total := 0
	for _, c := range p.Clusters {
		total += c.TotalCores()
	}
	return total
}

// ResourcePaths enumerates the hierarchical paths of the first n process
// slots, binding processes to cores machine by machine, cluster by cluster
// — exactly the paper's layout ("each MPI process is bound to a core",
// cores grouped by machines, machines by clusters, clusters by site).
// n ≤ 0 means all cores. Paths look like
// "rennes/parapide/parapide-3/p42" where p42 is the MPI rank.
func (p Platform) ResourcePaths(n int) []string {
	if n <= 0 || n > p.TotalCores() {
		n = p.TotalCores()
	}
	paths := make([]string, 0, n)
	rank := 0
	for _, c := range p.Clusters {
		for m := 1; m <= c.Machines && rank < n; m++ {
			for k := 0; k < c.Cores && rank < n; k++ {
				paths = append(paths, fmt.Sprintf("%s/%s/%s-%d/p%d", p.Site, c.Name, c.Name, m, rank))
				rank++
			}
		}
	}
	return paths
}

// Hierarchy builds the platform hierarchy for the first n process slots.
func (p Platform) Hierarchy(n int) (*hierarchy.Hierarchy, error) {
	return hierarchy.FromPaths(p.ResourcePaths(n))
}

// ClusterOf returns the cluster hosting the given rank (following the
// same binding order as ResourcePaths) and the rank's machine index within
// that cluster, or an error if the rank is out of range.
func (p Platform) ClusterOf(rank int) (Cluster, int, error) {
	at := 0
	for _, c := range p.Clusters {
		if rank < at+c.TotalCores() {
			within := rank - at
			return c, within / c.Cores, nil
		}
		at += c.TotalCores()
	}
	return Cluster{}, 0, fmt.Errorf("grid5000: rank %d beyond platform capacity %d", rank, at)
}

// Case identifies one of the paper's Table II scenarios.
type Case string

// The four evaluation scenarios of Table II.
const (
	CaseA Case = "A" // CG class C,  64 processes, Rennes/parapide
	CaseB Case = "B" // CG class C, 512 processes, Grenoble/adonis+edel+genepi
	CaseC Case = "C" // LU class C, 700 processes, Nancy/graphene+graphite+griffon
	CaseD Case = "D" // LU class B, 900 processes, Rennes/paradent+parapide+parapluie
)

// Scenario bundles everything Table II specifies for one case: the
// application and class, the process count, the platform, and the event
// count of the paper's trace (used to calibrate the simulator).
type Scenario struct {
	Case        Case
	Application string // "CG" or "LU"
	Class       string // NPB class ("B", "C")
	Processes   int
	Platform    Platform
	// PaperEvents is the event count reported in Table II.
	PaperEvents int
	// PaperTraceMB is the trace size reported in Table II (megabytes).
	PaperTraceMB float64
	// PaperRuntime is the traced application's wall-clock span in
	// seconds (from the paper's figures: ≈9.5 s for case A, ≈70 s for
	// case C; cases B and D estimated from class/process scaling).
	PaperRuntime float64
}

// Scenarios returns the Table II configuration for the given case.
func Scenarios(c Case) (Scenario, error) {
	switch c {
	case CaseA:
		return Scenario{
			Case: CaseA, Application: "CG", Class: "C", Processes: 64,
			Platform: Platform{Site: "rennes", Clusters: []Cluster{
				{Name: "parapide", Machines: 8, Cores: 8, Network: Infiniband20G},
			}},
			PaperEvents: 3838144, PaperTraceMB: 136.9, PaperRuntime: 9.5,
		}, nil
	case CaseB:
		return Scenario{
			Case: CaseB, Application: "CG", Class: "C", Processes: 512,
			Platform: Platform{Site: "grenoble", Clusters: []Cluster{
				{Name: "adonis", Machines: 9, Cores: 8, Network: Infiniband20G},
				{Name: "edel", Machines: 24, Cores: 8, Network: Infiniband20G},
				{Name: "genepi", Machines: 31, Cores: 8, Network: Infiniband20G},
			}},
			PaperEvents: 49149440, PaperTraceMB: 1843.2, PaperRuntime: 30,
		}, nil
	case CaseC:
		return Scenario{
			Case: CaseC, Application: "LU", Class: "C", Processes: 700,
			Platform: Platform{Site: "nancy", Clusters: []Cluster{
				{Name: "graphene", Machines: 26, Cores: 4, Network: Infiniband20G},
				{Name: "graphite", Machines: 4, Cores: 16, Network: Ethernet10G},
				{Name: "griffon", Machines: 67, Cores: 8, Network: Infiniband20G},
			}},
			PaperEvents: 218457456, PaperTraceMB: 8499.2, PaperRuntime: 70,
		}, nil
	case CaseD:
		return Scenario{
			Case: CaseD, Application: "LU", Class: "B", Processes: 900,
			Platform: Platform{Site: "rennes", Clusters: []Cluster{
				{Name: "paradent", Machines: 38, Cores: 8, Network: Infiniband20G},
				{Name: "parapide", Machines: 21, Cores: 8, Network: Infiniband20G},
				{Name: "parapluie", Machines: 18, Cores: 24, Network: Infiniband20G},
			}},
			PaperEvents: 177376729, PaperTraceMB: 6860.8, PaperRuntime: 45,
		}, nil
	default:
		return Scenario{}, fmt.Errorf("grid5000: unknown case %q (want A, B, C or D)", c)
	}
}

// AllCases lists the Table II cases in order.
func AllCases() []Case { return []Case{CaseA, CaseB, CaseC, CaseD} }

// Validate checks that the scenario's platform can host its processes.
func (s Scenario) Validate() error {
	if s.Processes <= 0 {
		return fmt.Errorf("grid5000: case %s has no processes", s.Case)
	}
	if cap := s.Platform.TotalCores(); s.Processes > cap {
		return fmt.Errorf("grid5000: case %s needs %d cores, platform has %d", s.Case, s.Processes, cap)
	}
	return nil
}
