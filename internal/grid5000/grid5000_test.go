package grid5000

import (
	"strings"
	"testing"
)

func TestScenariosTableII(t *testing.T) {
	want := []struct {
		c      Case
		app    string
		procs  int
		site   string
		events int
	}{
		{CaseA, "CG", 64, "rennes", 3838144},
		{CaseB, "CG", 512, "grenoble", 49149440},
		{CaseC, "LU", 700, "nancy", 218457456},
		{CaseD, "LU", 900, "rennes", 177376729},
	}
	for _, w := range want {
		sc, err := Scenarios(w.c)
		if err != nil {
			t.Fatalf("case %s: %v", w.c, err)
		}
		if sc.Application != w.app || sc.Processes != w.procs || sc.Platform.Site != w.site || sc.PaperEvents != w.events {
			t.Errorf("case %s = %+v, want %+v", w.c, sc, w)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("case %s invalid: %v", w.c, err)
		}
	}
}

func TestScenariosUnknown(t *testing.T) {
	if _, err := Scenarios("Z"); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestAllCases(t *testing.T) {
	if got := AllCases(); len(got) != 4 || got[0] != CaseA || got[3] != CaseD {
		t.Errorf("AllCases = %v", got)
	}
}

func TestPlatformCapacityCoversProcesses(t *testing.T) {
	for _, c := range AllCases() {
		sc, _ := Scenarios(c)
		if cap := sc.Platform.TotalCores(); cap < sc.Processes {
			t.Errorf("case %s: %d processes on %d cores", c, sc.Processes, cap)
		}
	}
}

func TestResourcePaths(t *testing.T) {
	p := Platform{Site: "s", Clusters: []Cluster{
		{Name: "a", Machines: 2, Cores: 2, Network: Infiniband20G},
		{Name: "b", Machines: 1, Cores: 3, Network: Ethernet10G},
	}}
	paths := p.ResourcePaths(0)
	if len(paths) != 7 {
		t.Fatalf("got %d paths, want 7", len(paths))
	}
	if paths[0] != "s/a/a-1/p0" || paths[2] != "s/a/a-2/p2" || paths[4] != "s/b/b-1/p4" {
		t.Errorf("paths = %v", paths)
	}
	// Truncated allocation.
	if got := p.ResourcePaths(3); len(got) != 3 {
		t.Errorf("ResourcePaths(3) gave %d", len(got))
	}
	// Over-capacity request clamps.
	if got := p.ResourcePaths(100); len(got) != 7 {
		t.Errorf("ResourcePaths(100) gave %d", len(got))
	}
}

func TestHierarchyStructure(t *testing.T) {
	sc, _ := Scenarios(CaseA)
	h, err := sc.Platform.Hierarchy(sc.Processes)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumLeaves() != 64 {
		t.Errorf("case A leaves = %d, want 64", h.NumLeaves())
	}
	// site → cluster → machine → core = depth 4.
	if h.Depth() != 4 {
		t.Errorf("depth = %d, want 4", h.Depth())
	}
	// 8 machines of 8 cores.
	counts := h.CountAtDepth()
	if counts[3] != 8 || counts[4] != 64 {
		t.Errorf("CountAtDepth = %v", counts)
	}
}

func TestCaseCHeterogeneousLayout(t *testing.T) {
	sc, _ := Scenarios(CaseC)
	h, err := sc.Platform.Hierarchy(sc.Processes)
	if err != nil {
		t.Fatal(err)
	}
	// Three clusters under the nancy site.
	site := h.Root.Children[0]
	if site.Name != "nancy" || len(site.Children) != 3 {
		t.Fatalf("site layout wrong: %s with %d clusters", site.Name, len(site.Children))
	}
	names := []string{site.Children[0].Name, site.Children[1].Name, site.Children[2].Name}
	if strings.Join(names, ",") != "graphene,graphite,griffon" {
		t.Errorf("clusters = %v", names)
	}
	// graphene: 26 machines × 4 cores = 104 leaves.
	if got := site.Children[0].Size(); got != 104 {
		t.Errorf("graphene size = %d, want 104", got)
	}
	// graphite: 4 × 16 = 64.
	if got := site.Children[1].Size(); got != 64 {
		t.Errorf("graphite size = %d, want 64", got)
	}
	// griffon gets the remaining 700-104-64 = 532.
	if got := site.Children[2].Size(); got != 532 {
		t.Errorf("griffon size = %d, want 532", got)
	}
}

func TestClusterOf(t *testing.T) {
	sc, _ := Scenarios(CaseC)
	cl, machine, err := sc.Platform.ClusterOf(0)
	if err != nil || cl.Name != "graphene" || machine != 0 {
		t.Errorf("rank 0: %s machine %d (%v)", cl.Name, machine, err)
	}
	cl, _, err = sc.Platform.ClusterOf(104)
	if err != nil || cl.Name != "graphite" {
		t.Errorf("rank 104: %s (%v)", cl.Name, err)
	}
	cl, machine, err = sc.Platform.ClusterOf(168 + 9)
	if err != nil || cl.Name != "griffon" || machine != 1 {
		t.Errorf("rank 177: %s machine %d (%v)", cl.Name, machine, err)
	}
	if _, _, err := sc.Platform.ClusterOf(999999); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestNetworkProperties(t *testing.T) {
	if Infiniband20G.LatencyFactor() != 1 {
		t.Error("infiniband latency factor should be the baseline 1")
	}
	if Ethernet10G.LatencyFactor() <= Infiniband20G.LatencyFactor() {
		t.Error("ethernet must be slower than infiniband")
	}
	for _, n := range []Network{Infiniband20G, Ethernet10G, Ethernet1G} {
		if n.String() == "" || strings.HasPrefix(n.String(), "network(") {
			t.Errorf("missing name for %d", int(n))
		}
	}
	if Network(99).String() != "network(99)" {
		t.Error("unknown network String")
	}
	if Network(99).LatencyFactor() != 1 {
		t.Error("unknown network latency factor should default to 1")
	}
}

func TestScenarioValidateRejectsOversubscription(t *testing.T) {
	sc, _ := Scenarios(CaseA)
	sc.Processes = 10000
	if err := sc.Validate(); err == nil {
		t.Error("oversubscribed scenario accepted")
	}
	sc.Processes = 0
	if err := sc.Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
}
