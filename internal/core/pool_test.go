package core

import (
	"sync"
	"testing"
	"time"

	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/testutil"
)

func poolTestInput(t *testing.T, opt Options) *Input {
	t.Helper()
	m, err := microscopic.Build(mpisim.ArtificialSized(8, 10), microscopic.Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	return NewInput(m, opt)
}

func TestSolverPoolBoundDefaultsToWorkers(t *testing.T) {
	in := poolTestInput(t, Options{Workers: 3})
	if got := in.SolverPoolBound(); got != 3 {
		t.Fatalf("default pool bound = %d, want the worker count 3", got)
	}
	in = poolTestInput(t, Options{Workers: 3, SolverPoolBound: 7})
	if got := in.SolverPoolBound(); got != 7 {
		t.Fatalf("explicit pool bound = %d, want 7", got)
	}
}

// TestSolverPoolBlocksAtBound acquires the full bound, checks that one
// more acquire blocks, and that releasing unblocks it — the memory-cap
// contract: at most bound solvers' scratch ever exists.
func TestSolverPoolBlocksAtBound(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := poolTestInput(t, Options{Workers: 1, SolverPoolBound: 2})
	s1 := in.AcquireSolver()
	s2 := in.AcquireSolver()
	if s1 == s2 {
		t.Fatal("pool handed out the same solver twice")
	}
	acquired := make(chan *Solver)
	go func() { acquired <- in.AcquireSolver() }()
	select {
	case <-acquired:
		t.Fatal("third acquire succeeded with bound 2 and both solvers in flight")
	case <-time.After(50 * time.Millisecond):
	}
	in.ReleaseSolver(s1)
	select {
	case s3 := <-acquired:
		if s3 != s1 {
			t.Fatalf("unblocked acquire got a new solver, want the released one")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire still blocked after release")
	}
	in.ReleaseSolver(s2)
}

// TestSolverPoolBoundSurvivesUpdate checks the bound propagates through
// the incremental-derivation path.
func TestSolverPoolBoundSurvivesUpdate(t *testing.T) {
	tr := mpisim.ArtificialSized(8, 20)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(m, Options{SolverPoolBound: 5})
	next, err := in.Pan(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := next.SolverPoolBound(); got != 5 {
		t.Fatalf("pool bound after Pan = %d, want 5", got)
	}
}

// TestSolverPoolUnderChurn runs far more concurrent queries than the
// bound allows; everything must complete (no deadlock, no lost wakeups)
// and answers must match the sequential result.
func TestSolverPoolUnderChurn(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := poolTestInput(t, Options{Workers: 2, SolverPoolBound: 2})
	want, err := in.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s := in.AcquireSolver()
				pt, err := s.Run(0.5)
				in.ReleaseSolver(s)
				if err != nil {
					errs <- err
					return
				}
				if pt.Signature() != want.Signature() {
					errs <- errSignature
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errSignature = &signatureError{}

type signatureError struct{}

func (*signatureError) Error() string { return "pooled solver returned a different partition" }

func TestInputMemoryBytes(t *testing.T) {
	in := poolTestInput(t, Options{Workers: 1})
	got := in.MemoryBytes()
	// The two triangles alone are 2·nodes·T(T+1)/2 floats.
	if min := 2 * in.InputCells() * 8; got < min {
		t.Fatalf("MemoryBytes() = %d, want ≥ %d (the gain/loss arenas)", got, min)
	}
}
