package core

import (
	"context"
	"fmt"

	"ocelotl/internal/microscopic"
)

// Update derives the Input of a new window from this one, reusing
// everything the overlapping slices pin down. newModel must share this
// input's hierarchy and dimensions (which models from one
// microscopic.Reslicer do); ov says which of its slices are bit-identical
// to slices of the current window. Per node, the slice rows of surviving
// slices are copied (their values are slice-local, hence shift-invariant),
// the prefix sums are rebased with one running pass, and the gain/loss
// sub-triangle spanned by the surviving slices moves with per-row copies —
// only the rows and columns touching new slices are recomputed. For a pan
// keeping W of |T| slices that is O(Δ·|T|) evaluated cells per node,
// Δ = |T|−W, against O(|T|²) for a fresh build. (A backward pan skips its
// surviving rows entirely; a forward pan's surviving rows still make one
// add-only accumulation pass to reach their Δ tail cells — bit-identical
// running sums cannot start mid-row — so its savings are the dropped
// gain/loss evaluations, the logarithm-heavy part, not the adds.) The
// work is spread over the worker pool exactly like NewInput's.
//
// The result is a new immutable Input, bit-identical to
// NewInput(newModel, same options) — the property tests enforce equality
// down to the float. The receiver is left untouched and stays valid.
//
// If newModel has a different hierarchy or shape, or the overlap is empty,
// Update degrades to a full (still parallel) rebuild and remains correct.
func (in *Input) Update(newModel *microscopic.Model, ov microscopic.SliceOverlap) *Input {
	out, _ := in.UpdateContext(context.Background(), newModel, ov)
	return out
}

// UpdateContext is Update with cooperative cancellation: like
// NewInputContext, ctx is checked once per hierarchy node inside the
// matrix pass (copy-then-extend here), so an abandoned derivation dies
// mid-fill and returns (nil, ctx.Err()) instead of finishing an Input
// nobody will read. With a never-cancelled ctx the result is bit-identical
// to Update.
func (in *Input) UpdateContext(ctx context.Context, newModel *microscopic.Model, ov microscopic.SliceOverlap) (*Input, error) {
	if newModel.H != in.Model.H || newModel.NumSlices() != in.T || newModel.NumStates() != in.X {
		return NewInputContext(ctx, newModel, Options{Normalize: in.normalize, Workers: in.workers, SolverPoolBound: in.poolBound})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ov = in.verifyOverlap(newModel, ov)
	out := &Input{
		Model:     newModel,
		T:         in.T,
		X:         in.X,
		meta:      in.meta, // hierarchy bookkeeping is window-independent
		rootID:    in.rootID,
		cells:     in.cells,
		offs:      in.offs,
		normalize: in.normalize,
		workers:   in.workers,
		poolBound: in.poolBound,
	}
	out.allocArenas(len(in.meta))
	out.initPool()
	for t := 0; t < out.T; t++ {
		out.durPref[t+1] = out.durPref[t] + newModel.SliceDur[t]
	}
	out.updateSliceRows(in, ov)
	if err := out.updateMatrices(ctx, in, ov); err != nil {
		return nil, err
	}
	out.readRoot()
	return out, nil
}

// Pan returns the Input of the window panned by k slices, going through
// the model's Reslicer for the O(Δ) model update. The model must have been
// produced by a microscopic.Reslicer (Model.Reslicer() != nil).
func (in *Input) Pan(k int) (*Input, error) {
	r := in.Model.Reslicer()
	if r == nil {
		return nil, fmt.Errorf("core: Pan needs a model built by a microscopic.Reslicer")
	}
	m, ov, err := r.Shift(in.Model, k)
	if err != nil {
		return nil, err
	}
	return in.Update(m, ov), nil
}

// Zoom returns the Input of the window re-sliced to the range covered by
// slices [lo, hi] of the current window (indices outside [0, |T|) zoom
// out). A full-width zoom is recognized as a pan and reuses the shared
// slices; other zooms change the slice width, so the model is refilled
// from the event index and the matrices rebuilt.
func (in *Input) Zoom(lo, hi int) (*Input, error) {
	r := in.Model.Reslicer()
	if r == nil {
		return nil, fmt.Errorf("core: Zoom needs a model built by a microscopic.Reslicer")
	}
	m, ov, err := r.Zoom(in.Model, lo, hi)
	if err != nil {
		return nil, err
	}
	return in.Update(m, ov), nil
}

// verifyOverlap cross-checks a claimed overlap against the two windows'
// slice grids (microscopic.GridOverlap, the shared window-arithmetic
// helper), so a wrong claim degrades to a (correct) rebuild instead of
// silently reusing slices that are not the same. A claim narrower than the
// derivable truth is honored, anything inconsistent is replaced by the
// truth; off-grid windows share nothing.
func (in *Input) verifyOverlap(newModel *microscopic.Model, ov microscopic.SliceOverlap) microscopic.SliceOverlap {
	truth := microscopic.GridOverlap(in.Model.Slicer, newModel.Slicer)
	if !truth.Shared() {
		return truth
	}
	if ov.Shared() && ov.Shift() == truth.Shift() &&
		ov.OldLo >= truth.OldLo && ov.OldLo+ov.W <= truth.OldLo+truth.W {
		return ov // a consistent, possibly narrower claim
	}
	return truth
}

// updateSliceRows fills out's slice rows and prefix sums: surviving slices
// are copied from old (shift-invariant), new slices come from the model
// (leaves) or the children's fresh rows (inner nodes), and the prefix pass
// reruns over the assembled rows — the same computation NewInput does, on
// the same values, hence the same floats.
func (out *Input) updateSliceRows(old *Input, ov microscopic.SliceOverlap) {
	T, X := out.T, out.X
	// Half-open ranges of genuinely new slices in the new window.
	newRanges := [][2]int{{0, ov.NewLo}, {ov.NewLo + ov.W, T}}
	var rec func(id int)
	rec = func(id int) {
		meta := &out.meta[id]
		for _, c := range meta.children {
			rec(int(c))
		}
		for x := 0; x < X; x++ {
			if ov.W > 0 {
				sb := out.slcBase(id, x)
				copy(out.slcD[sb+ov.NewLo:sb+ov.NewLo+ov.W], old.slcD[sb+ov.OldLo:sb+ov.OldLo+ov.W])
				copy(out.slcRho[sb+ov.NewLo:sb+ov.NewLo+ov.W], old.slcRho[sb+ov.OldLo:sb+ov.OldLo+ov.W])
				copy(out.slcRL[sb+ov.NewLo:sb+ov.NewLo+ov.W], old.slcRL[sb+ov.OldLo:sb+ov.OldLo+ov.W])
			}
			for _, rg := range newRanges {
				if rg[0] >= rg[1] {
					continue
				}
				if meta.node.IsLeaf() {
					out.leafSliceRow(id, x, meta.node.Lo, rg[0], rg[1])
				} else {
					out.innerSliceRow(id, x, rg[0], rg[1])
				}
			}
		}
		out.prefixRows(id)
	}
	rec(out.rootID)
}

// updateMatrices rebuilds the gain/loss arenas over the worker pool: rows
// whose start slice survives copy their surviving segment from the old
// arena (one contiguous copy per row — the shared sub-triangle moves) and
// then extend with fillRow; rows starting in a new slice are filled whole.
func (out *Input) updateMatrices(ctx context.Context, old *Input, ov microscopic.SliceOverlap) error {
	T := out.T
	sharedHi := ov.NewLo + ov.W - 1 // last surviving slice, new indexing
	return out.fillMatrices(ctx, func(id int, sc *rowSums) {
		off := out.offs[id]
		for i := 0; i < T; i++ {
			if ov.W == 0 || i < ov.NewLo || i > sharedHi {
				out.fillRow(id, i, i, sc)
				continue
			}
			oldI := i - ov.NewLo + ov.OldLo
			n := sharedHi - i + 1
			dst := off + out.triIndex(i, i)
			src := off + out.triIndex(oldI, oldI)
			copy(out.gain[dst:dst+n], old.gain[src:src+n])
			copy(out.loss[dst:dst+n], old.loss[src:src+n])
			if sharedHi+1 < T {
				out.fillRow(id, i, sharedHi+1, sc)
			}
		}
	})
}
