package core

import (
	"runtime"
	"sync"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// nodeMeta carries the per-node hierarchy bookkeeping of §III.E's data
// structure. The matrices themselves live in the Input's flat arenas.
type nodeMeta struct {
	node *hierarchy.Node
	size int // |S_k|

	// children are child node IDs; childOffs are the children's base
	// offsets into the matrix arenas, precomputed so the spatial-cut sum
	// of Algorithm 1 needs no indirection.
	children  []int32
	childOffs []int
}

// Input is the immutable result of the input pass (Eqs. 1–3): every
// candidate area's gain and loss, plus the per-node prefix sums they were
// computed from. Building it costs O(|X|·|S|·|T| + |X|·|H(S)|·|T|²); once
// built it is never mutated, so any number of Solvers (and the read-only
// query methods below) may share one Input concurrently. This split is
// what makes the paper's "instantaneous interaction" scale across cores:
// one input pass serves every p the analyst explores.
//
// Storage is arena-backed: each matrix kind is a single flat []float64
// holding one T(T+1)/2-cell upper triangle per hierarchy node, indexed by
// the per-node offset table offs. The prefix sums use the same layout with
// one (|T|+1)-row per (node, state) pair.
type Input struct {
	Model *microscopic.Model
	T, X  int

	meta   []nodeMeta // indexed by hierarchy node ID
	rootID int

	cells int   // triangle cells per node: T(T+1)/2
	offs  []int // node ID → base offset into the matrix arenas

	// Triangular-matrix arenas (gain and loss of every area, Eq. 2/3).
	gain, loss []float64

	// Prefix-sum arenas, row base prefBase(id, x), length |T|+1 each:
	// prefD[t]   = Σ_{t'<t} Σ_{s∈S_k} d_x(s,t')
	// prefRho[t] = Σ_{t'<t} Σ_{s∈S_k} ρ_x(s,t')
	// prefRL[t]  = Σ_{t'<t} Σ_{s∈S_k} ρ_x·log₂ρ_x
	prefD, prefRho, prefRL []float64

	durPref []float64 // prefix sums of d(t), length |T|+1

	normalize          bool
	workers            int
	rootGain, rootLoss float64 // full-aggregation gain/loss (normalization)
}

// Options tunes the input pass and the solvers derived from it.
type Options struct {
	// Normalize rescales gain and loss by their full-aggregation values
	// before combining them, so that p has a comparable meaning across
	// traces of different sizes (as the Ocelotl tool does). Internally it
	// is an exact reparametrization of p; the set of reachable partitions
	// is unchanged.
	Normalize bool
	// Workers bounds the parallelism of the input pass, of Algorithm 1
	// across independent subtrees, and of the p-sweeps (SweepRun,
	// SignificantPs): 0 picks GOMAXPROCS, 1 forces the sequential paths.
	// Results are bit-identical for any worker count — each node's
	// matrices depend only on its own prefix sums (input pass) and on its
	// children's completed matrices (optimization), and sweep results are
	// keyed by p, so no decomposition has shared mutable state.
	Workers int
}

// workers resolves the effective parallelism.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// NewInput runs the input pass: per-node prefix sums and the fused
// gain/loss triangular matrices for every area of A(S×T).
func NewInput(m *microscopic.Model, opt Options) *Input {
	T, X := m.NumSlices(), m.NumStates()
	n := m.H.NumNodes()
	in := &Input{
		Model:     m,
		T:         T,
		X:         X,
		meta:      make([]nodeMeta, n),
		rootID:    m.H.Root.ID,
		cells:     T * (T + 1) / 2,
		offs:      make([]int, n),
		normalize: opt.Normalize,
		workers:   opt.workers(),
	}
	for id := range in.offs {
		in.offs[id] = id * in.cells
	}
	in.gain = make([]float64, n*in.cells)
	in.loss = make([]float64, n*in.cells)
	in.prefD = make([]float64, n*X*(T+1))
	in.prefRho = make([]float64, n*X*(T+1))
	in.prefRL = make([]float64, n*X*(T+1))
	in.durPref = make([]float64, T+1)
	for t := 0; t < T; t++ {
		in.durPref[t+1] = in.durPref[t] + m.SliceDur[t]
	}
	in.build(m.H.Root)
	in.fillMatrices()
	if in.cells > 0 {
		idx := in.offs[in.rootID] + in.triIndex(0, T-1)
		in.rootGain, in.rootLoss = in.gain[idx], in.loss[idx]
	}
	return in
}

// prefBase returns the base of the (node, state) prefix-sum row.
func (in *Input) prefBase(id, x int) int { return (id*in.X + x) * (in.T + 1) }

// build recursively fills prefix sums bottom-up.
func (in *Input) build(n *hierarchy.Node) {
	T, X := in.T, in.X
	id := n.ID
	meta := &in.meta[id]
	meta.node = n
	meta.size = n.Size()
	if n.IsLeaf() {
		s := n.Lo
		for x := 0; x < X; x++ {
			row := in.Model.StateRow(x)
			base := in.prefBase(id, x)
			pd := in.prefD[base : base+T+1]
			pr := in.prefRho[base : base+T+1]
			pl := in.prefRL[base : base+T+1]
			for t := 0; t < T; t++ {
				d := row[s*T+t]
				rho := 0.0
				if sd := in.Model.SliceDur[t]; sd > 0 {
					rho = d / sd
				}
				pd[t+1] = pd[t] + d
				pr[t+1] = pr[t] + rho
				pl[t+1] = pl[t] + measures.PLogP(rho)
			}
		}
		return
	}
	meta.children = make([]int32, len(n.Children))
	meta.childOffs = make([]int, len(n.Children))
	for ci, c := range n.Children {
		in.build(c)
		meta.children[ci] = int32(c.ID)
		meta.childOffs[ci] = in.offs[c.ID]
	}
	for x := 0; x < X; x++ {
		base := in.prefBase(id, x)
		pd := in.prefD[base : base+T+1]
		pr := in.prefRho[base : base+T+1]
		pl := in.prefRL[base : base+T+1]
		for _, cid := range meta.children {
			cbase := in.prefBase(int(cid), x)
			cd := in.prefD[cbase : cbase+T+1]
			cr := in.prefRho[cbase : cbase+T+1]
			cl := in.prefRL[cbase : cbase+T+1]
			for t := 1; t <= T; t++ {
				pd[t] += cd[t]
				pr[t] += cr[t]
				pl[t] += cl[t]
			}
		}
	}
}

// fillMatrices computes every node's gain/loss triangle from the prefix
// sums. Nodes write disjoint arena regions, so the O(|X|·|H(S)|·|T|²) work
// is spread over the worker pool.
func (in *Input) fillMatrices() {
	fill := func(id int) {
		off := in.offs[id]
		for i := 0; i < in.T; i++ {
			for j := i; j < in.T; j++ {
				idx := off + in.triIndex(i, j)
				in.gain[idx], in.loss[idx] = in.areaGainLoss(id, i, j)
			}
		}
	}
	n := len(in.meta)
	if in.workers <= 1 || n < 2 {
		for id := 0; id < n; id++ {
			fill(id)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < in.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range next {
				fill(id)
			}
		}()
	}
	for id := 0; id < n; id++ {
		next <- id
	}
	close(next)
	wg.Wait()
}

// areaGainLoss computes (Σ_x gain_x, Σ_x loss_x) of the area
// (node id, T_(i,j)) from the prefix sums, applying Eqs. 1–3.
func (in *Input) areaGainLoss(id, i, j int) (gain, loss float64) {
	dur := in.durPref[j+1] - in.durPref[i]
	size := in.meta[id].size
	for x := 0; x < in.X; x++ {
		base := in.prefBase(id, x)
		sums := measures.AreaSums{
			SumD:         in.prefD[base+j+1] - in.prefD[base+i],
			SumRho:       in.prefRho[base+j+1] - in.prefRho[base+i],
			SumRhoLogRho: in.prefRL[base+j+1] - in.prefRL[base+i],
			Size:         size,
			Duration:     dur,
		}
		gain += sums.Gain()
		loss += sums.Loss()
	}
	return gain, loss
}

// triIndex maps interval [i, j] (0 ≤ i ≤ j < |T|) to its flattened
// upper-triangular cell, relative to a node's base offset.
func (in *Input) triIndex(i, j int) int {
	return i*in.T - i*(i-1)/2 + (j - i)
}

// EffectiveP returns the raw trade-off ratio actually fed to Algorithm 1
// for a user-facing p, i.e. p itself without normalization, and the exact
// reparametrization p·L/(p·L+(1−p)·G) with it.
func (in *Input) EffectiveP(p float64) float64 { return in.effectiveP(p) }

// effectiveP maps the user-facing p through the optional normalization:
// maximizing p·(gain/G) − (1−p)·(loss/L) is identical to maximizing
// p*·gain − (1−p*)·loss with p* = pL / (pL + (1−p)G).
func (in *Input) effectiveP(p float64) float64 {
	if !in.normalize {
		return p
	}
	g, l := in.rootGain, in.rootLoss
	if g <= 0 || l <= 0 {
		return p
	}
	den := p*l + (1-p)*g
	if den <= 0 {
		return p
	}
	return p * l / den
}

// AreaInfo describes one area for reporting and rendering: aggregated
// per-state proportions (Eq. 1), the state mode and its share α (§IV), and
// the area's information measures.
type AreaInfo struct {
	Rho        []float64
	Mode       int     // index of the dominant state, -1 if area is idle
	Alpha      float64 // ρ_mode / Σ_x ρ_x ∈ [1/|X|, 1] (0 when idle)
	Gain, Loss float64
}

// Describe computes AreaInfo for the area (node, [i, j]). The node must
// belong to the input's hierarchy.
func (in *Input) Describe(ar partition.Area) AreaInfo {
	id := ar.Node.ID
	idx := in.offs[id] + in.triIndex(ar.I, ar.J)
	info := AreaInfo{
		Rho:  make([]float64, in.X),
		Gain: in.gain[idx],
		Loss: in.loss[idx],
	}
	dur := in.durPref[ar.J+1] - in.durPref[ar.I]
	for x := 0; x < in.X; x++ {
		base := in.prefBase(id, x)
		sums := measures.AreaSums{
			SumD:     in.prefD[base+ar.J+1] - in.prefD[base+ar.I],
			Size:     in.meta[id].size,
			Duration: dur,
		}
		info.Rho[x] = sums.AggRho()
	}
	info.Mode, info.Alpha = measures.Mode(info.Rho)
	return info
}

// EvaluateArea returns the (gain, loss) of an arbitrary candidate area,
// whether or not it belongs to any optimal partition. The product baseline
// uses this to score its partitions against the full microscopic model.
func (in *Input) EvaluateArea(ar partition.Area) (gain, loss float64) {
	idx := in.offs[ar.Node.ID] + in.triIndex(ar.I, ar.J)
	return in.gain[idx], in.loss[idx]
}

// EvaluatePartition sums gain/loss/pIC of an arbitrary structure-consistent
// partition under this model (areas must reference this hierarchy's nodes).
func (in *Input) EvaluatePartition(pt *partition.Partition, p float64) (gain, loss, pic float64) {
	for _, ar := range pt.Areas {
		g, l := in.EvaluateArea(ar)
		gain += g
		loss += l
	}
	return gain, loss, measures.PIC(in.effectiveP(p), gain, loss)
}

// RootGainLoss returns the gain and loss of the full aggregation — the
// normalization constants and the extreme point of the quality curves.
func (in *Input) RootGainLoss() (gain, loss float64) { return in.rootGain, in.rootLoss }

// InputCells returns the total number of triangular-matrix cells, i.e. the
// O(|H(S)|·|T|²) space term; exposed for the scaling ablations.
func (in *Input) InputCells() int { return len(in.gain) }
