package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ocelotl/internal/failpoint"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// nodeMeta carries the per-node hierarchy bookkeeping of §III.E's data
// structure. The matrices themselves live in the Input's flat arenas.
type nodeMeta struct {
	node *hierarchy.Node
	size int // |S_k|

	// children are child node IDs; childOffs are the children's base
	// offsets into the matrix arenas, precomputed so the spatial-cut sum
	// of Algorithm 1 needs no indirection.
	children  []int32
	childOffs []int
}

// Input is the immutable result of the input pass (Eqs. 1–3): every
// candidate area's gain and loss, plus the per-node slice rows and prefix
// sums they were computed from. Building it costs
// O(|X|·|S|·|T| + |X|·|H(S)|·|T|²); once built it is never mutated, so any
// number of Solvers (and the read-only query methods below) may share one
// Input concurrently. This split is what makes the paper's "instantaneous
// interaction" scale across cores: one input pass serves every p the
// analyst explores.
//
// Storage is arena-backed: each matrix kind is a single flat []float64
// holding one T(T+1)/2-cell upper triangle per hierarchy node, indexed by
// the per-node offset table offs.
//
// Every cell (i, j) is computed as a running sum over the slice-local rows
// slc* restricted to [i, j], never as a difference of global prefix sums.
// That makes each cell's float value depend only on the slices it covers —
// shift-invariant across windows — which is what lets Update reuse the
// sub-triangle shared with a previous window bit-identically (see
// update.go).
type Input struct {
	Model *microscopic.Model
	T, X  int

	meta   []nodeMeta // indexed by hierarchy node ID
	rootID int

	cells int   // triangle cells per node: T(T+1)/2
	offs  []int // node ID → base offset into the matrix arenas

	// Triangular-matrix arenas (gain and loss of every area, Eq. 2/3).
	gain, loss []float64

	// Slice-local arenas, row base slcBase(id, x), length |T| each:
	// slcD[t]   = Σ_{s∈S_k} d_x(s,t)
	// slcRho[t] = Σ_{s∈S_k} ρ_x(s,t)
	// slcRL[t]  = Σ_{s∈S_k} ρ_x·log₂ρ_x
	// These are the shift-invariant per-slice aggregates the matrices are
	// summed from, and the unit of reuse on a window change.
	slcD, slcRho, slcRL []float64

	// Prefix-sum arenas over the slice rows, row base prefBase(id, x),
	// length |T|+1 each; serve the O(1) range queries of Describe.
	prefD, prefRho, prefRL []float64

	durPref []float64 // prefix sums of d(t), length |T|+1

	normalize          bool
	workers            int
	poolBound          int
	rootGain, rootLoss float64 // full-aggregation gain/loss (normalization)

	// The solver pool recycles Solver scratch (the O(|H(S)|·|T|²) pIC/cut
	// arenas) across queries and bounds how many pooled Solvers can exist
	// at once: solverFree holds idle solvers, and creating a new one
	// claims a slot of solverTokens, so at most poolBound solvers are ever
	// live and AcquireSolver blocks once they are all in flight. That caps
	// the peak pooled scratch memory at poolBound·O(|H(S)|·|T|²) no matter
	// how many queries race. The pool is internal concurrency-safe state,
	// not a mutation of the aggregation results.
	solverFree   chan *Solver
	solverTokens chan struct{}
	// solversLive counts the pooled solvers created so far (≤ poolBound).
	// Unlike a sync.Pool, the bounded pool retains its solvers for the
	// Input's lifetime, so their scratch is part of the Input's resident
	// cost and MemoryBytes includes it.
	solversLive atomic.Int64
	// laneBytes totals the fused-lane scratch (RunMany's K-wide pIC/cut
	// strips) grown by pooled solvers, which the pool likewise retains.
	laneBytes atomic.Int64
}

// Options tunes the input pass and the solvers derived from it.
type Options struct {
	// Normalize rescales gain and loss by their full-aggregation values
	// before combining them, so that p has a comparable meaning across
	// traces of different sizes (as the Ocelotl tool does). Internally it
	// is an exact reparametrization of p; the set of reachable partitions
	// is unchanged.
	Normalize bool
	// Workers bounds the parallelism of the input pass, of Algorithm 1
	// across independent subtrees, and of the p-sweeps (SweepRun,
	// SignificantPs): 0 picks GOMAXPROCS, 1 forces the sequential paths.
	// Results are bit-identical for any worker count — each node's
	// matrices depend only on its own slice rows (input pass) and on its
	// children's completed matrices (optimization), and sweep results are
	// keyed by p, so no decomposition has shared mutable state.
	Workers int
	// SolverPoolBound caps how many pooled Solvers (each holding
	// O(|H(S)|·|T|²) pIC/cut scratch) an Input keeps alive at once: 0
	// defaults to the resolved worker count (i.e. GOMAXPROCS). Once the
	// bound is reached, AcquireSolver blocks until a solver is released,
	// so the sweep's peak scratch memory is capped even under unbounded
	// query concurrency. Solvers allocated directly with NewSolver are
	// outside the pool and uncounted.
	SolverPoolBound int
}

// workers resolves the effective parallelism.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// FailpointInputFill names the fault-injection site at the head of every
// input pass (NewInputContext/NewInput), the most expensive stage of a
// window build — chaos tests use it to make builds fail, stall, or panic.
const FailpointInputFill = "core/input-fill"

// NewInput runs the input pass: per-node slice rows, prefix sums and the
// fused gain/loss triangular matrices for every area of A(S×T). With a
// background context the pass cannot fail — except through an armed
// FailpointInputFill, whose injected error panics here rather than
// returning a nil Input; the serving layer's recovery converts that into
// a 500, and non-chaos processes never arm failpoints.
func NewInput(m *microscopic.Model, opt Options) *Input {
	in, err := NewInputContext(context.Background(), m, opt)
	if err != nil {
		panic(err)
	}
	return in
}

// NewInputContext is NewInput with cooperative cancellation: ctx is
// checked once per hierarchy node inside the matrix fill (the
// O(|X|·|T|²)-per-node bulk of the pass), so an abandoned large-|T| build
// dies mid-fill — within one node's worth of work plus the worker join —
// instead of running to completion. A cancelled build returns
// (nil, ctx.Err()); with a never-cancelled ctx the result is bit-identical
// to NewInput. An already-cancelled ctx fails before allocating the
// arenas.
func NewInputContext(ctx context.Context, m *microscopic.Model, opt Options) (*Input, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := failpoint.InjectContext(ctx, FailpointInputFill); err != nil {
		return nil, err
	}
	T, X := m.NumSlices(), m.NumStates()
	n := m.H.NumNodes()
	in := &Input{
		Model:     m,
		T:         T,
		X:         X,
		meta:      make([]nodeMeta, n),
		rootID:    m.H.Root.ID,
		cells:     T * (T + 1) / 2,
		offs:      make([]int, n),
		normalize: opt.Normalize,
		workers:   opt.workers(),
		poolBound: opt.SolverPoolBound,
	}
	for id := range in.offs {
		in.offs[id] = id * in.cells
	}
	in.allocArenas(n)
	in.initPool()
	for t := 0; t < T; t++ {
		in.durPref[t+1] = in.durPref[t] + m.SliceDur[t]
	}
	in.build(m.H.Root)
	if err := in.fillMatrices(ctx, nil); err != nil {
		return nil, err
	}
	in.readRoot()
	return in, nil
}

// allocArenas sizes every flat arena for n hierarchy nodes.
func (in *Input) allocArenas(n int) {
	T, X := in.T, in.X
	in.gain = make([]float64, n*in.cells)
	in.loss = make([]float64, n*in.cells)
	in.slcD = make([]float64, n*X*T)
	in.slcRho = make([]float64, n*X*T)
	in.slcRL = make([]float64, n*X*T)
	in.prefD = make([]float64, n*X*(T+1))
	in.prefRho = make([]float64, n*X*(T+1))
	in.prefRL = make([]float64, n*X*(T+1))
	in.durPref = make([]float64, T+1)
}

// initPool arms the bounded solver pool; called by every Input
// constructor. A zero bound defaults to the worker count.
func (in *Input) initPool() {
	if in.poolBound <= 0 {
		in.poolBound = in.workers
	}
	if in.poolBound < 1 {
		in.poolBound = 1
	}
	in.solverFree = make(chan *Solver, in.poolBound)
	in.solverTokens = make(chan struct{}, in.poolBound)
}

// readRoot records the full-aggregation gain/loss (the normalization
// constants) from the root's widest cell.
func (in *Input) readRoot() {
	if in.cells > 0 {
		idx := in.offs[in.rootID] + in.triIndex(0, in.T-1)
		in.rootGain, in.rootLoss = in.gain[idx], in.loss[idx]
	}
}

// prefBase returns the base of the (node, state) prefix-sum row.
func (in *Input) prefBase(id, x int) int { return (id*in.X + x) * (in.T + 1) }

// slcBase returns the base of the (node, state) slice-local row.
func (in *Input) slcBase(id, x int) int { return (id*in.X + x) * in.T }

// build recursively fills the slice rows bottom-up (leaves from the model,
// inner nodes from their children) and derives the prefix sums.
func (in *Input) build(n *hierarchy.Node) {
	T, X := in.T, in.X
	id := n.ID
	meta := &in.meta[id]
	meta.node = n
	meta.size = n.Size()
	if n.IsLeaf() {
		s := n.Lo
		for x := 0; x < X; x++ {
			in.leafSliceRow(id, x, s, 0, T)
		}
	} else {
		meta.children = make([]int32, len(n.Children))
		meta.childOffs = make([]int, len(n.Children))
		for ci, c := range n.Children {
			in.build(c)
			meta.children[ci] = int32(c.ID)
			meta.childOffs[ci] = in.offs[c.ID]
		}
		for x := 0; x < X; x++ {
			in.innerSliceRow(id, x, 0, T)
		}
	}
	in.prefixRows(id)
}

// leafSliceRow fills slices [lo, hi) of leaf id's (state x) slice row from
// the model's d_x(s, ·) values.
func (in *Input) leafSliceRow(id, x, s, lo, hi int) {
	T := in.T
	row := in.Model.StateRow(x)
	sb := in.slcBase(id, x)
	sd := in.slcD[sb : sb+T]
	sr := in.slcRho[sb : sb+T]
	sl := in.slcRL[sb : sb+T]
	for t := lo; t < hi; t++ {
		d := row[s*T+t]
		rho := 0.0
		if w := in.Model.SliceDur[t]; w > 0 {
			rho = d / w
		}
		sd[t], sr[t], sl[t] = d, rho, measures.PLogP(rho)
	}
}

// innerSliceRow fills slices [lo, hi) of inner node id's (state x) slice
// row by summing its children's rows in child order.
func (in *Input) innerSliceRow(id, x, lo, hi int) {
	T := in.T
	sb := in.slcBase(id, x)
	sd := in.slcD[sb : sb+T]
	sr := in.slcRho[sb : sb+T]
	sl := in.slcRL[sb : sb+T]
	for t := lo; t < hi; t++ {
		sd[t], sr[t], sl[t] = 0, 0, 0
	}
	for _, cid := range in.meta[id].children {
		cb := in.slcBase(int(cid), x)
		cd := in.slcD[cb : cb+T]
		cr := in.slcRho[cb : cb+T]
		cl := in.slcRL[cb : cb+T]
		for t := lo; t < hi; t++ {
			sd[t] += cd[t]
			sr[t] += cr[t]
			sl[t] += cl[t]
		}
	}
}

// prefixRows derives node id's prefix sums from its slice rows.
func (in *Input) prefixRows(id int) {
	T := in.T
	for x := 0; x < in.X; x++ {
		sb := in.slcBase(id, x)
		pb := in.prefBase(id, x)
		pd := in.prefD[pb : pb+T+1]
		pr := in.prefRho[pb : pb+T+1]
		pl := in.prefRL[pb : pb+T+1]
		for t := 0; t < T; t++ {
			pd[t+1] = pd[t] + in.slcD[sb+t]
			pr[t+1] = pr[t] + in.slcRho[sb+t]
			pl[t+1] = pl[t] + in.slcRL[sb+t]
		}
	}
}

// rowSums is the per-worker scratch of one triangle row's running
// per-state sums.
type rowSums struct {
	d, rho, rl []float64
}

func (in *Input) newRowSums() *rowSums {
	return &rowSums{
		d:   make([]float64, in.X),
		rho: make([]float64, in.X),
		rl:  make([]float64, in.X),
	}
}

// fillRow computes the cells (i, j), from ≤ j < |T|, of node id's
// gain/loss triangle. The per-state sums run from j = i regardless of
// from, so every cell is a pure function of the slice rows over [i, j]
// (shift-invariant); cells with j < from are only accumulated over, not
// evaluated or written — the incremental path has already copied them.
func (in *Input) fillRow(id, i, from int, sc *rowSums) {
	T, X := in.T, in.X
	size := in.meta[id].size
	for x := 0; x < X; x++ {
		sc.d[x], sc.rho[x], sc.rl[x] = 0, 0, 0
	}
	dur := 0.0
	sb0 := in.slcBase(id, 0)
	rowBase := in.offs[id] + in.triIndex(i, i)
	for j := i; j < T; j++ {
		dur += in.Model.SliceDur[j]
		eval := j >= from
		var gain, loss float64
		for x := 0; x < X; x++ {
			sb := sb0 + x*T
			sc.d[x] += in.slcD[sb+j]
			sc.rho[x] += in.slcRho[sb+j]
			sc.rl[x] += in.slcRL[sb+j]
			if eval {
				sums := measures.AreaSums{
					SumD:         sc.d[x],
					SumRho:       sc.rho[x],
					SumRhoLogRho: sc.rl[x],
					Size:         size,
					Duration:     dur,
				}
				gain += sums.Gain()
				loss += sums.Loss()
			}
		}
		if eval {
			idx := rowBase + (j - i)
			in.gain[idx], in.loss[idx] = gain, loss
		}
	}
}

// fillMatrices computes every node's gain/loss triangle from the slice
// rows. Nodes write disjoint arena regions, so the O(|X|·|H(S)|·|T|²) work
// is spread over the worker pool. fillNode, when non-nil, overrides the
// per-node work (the incremental path substitutes its copy-then-fill).
// ctx is checked once per node on every path — a cancelled build stops
// dispatching nodes, drains its workers, and returns ctx.Err(), leaving
// the half-filled arenas to the garbage collector.
func (in *Input) fillMatrices(ctx context.Context, fillNode func(id int, sc *rowSums)) error {
	if fillNode == nil {
		fillNode = func(id int, sc *rowSums) {
			for i := 0; i < in.T; i++ {
				in.fillRow(id, i, i, sc)
			}
		}
	}
	n := len(in.meta)
	if in.workers <= 1 || n < 2 {
		sc := in.newRowSums()
		for id := 0; id < n; id++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fillNode(id, sc)
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < in.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := in.newRowSums()
			for id := range next {
				if ctx.Err() != nil {
					continue // drain without working
				}
				fillNode(id, sc)
			}
		}()
	}
	for id := 0; id < n; id++ {
		if ctx.Err() != nil {
			break
		}
		next <- id
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// triIndex maps interval [i, j] (0 ≤ i ≤ j < |T|) to its flattened
// upper-triangular cell, relative to a node's base offset.
func (in *Input) triIndex(i, j int) int {
	return i*in.T - i*(i-1)/2 + (j - i)
}

// EffectiveP returns the raw trade-off ratio actually fed to Algorithm 1
// for a user-facing p, i.e. p itself without normalization, and the exact
// reparametrization p·L/(p·L+(1−p)·G) with it.
func (in *Input) EffectiveP(p float64) float64 { return in.effectiveP(p) }

// effectiveP maps the user-facing p through the optional normalization:
// maximizing p·(gain/G) − (1−p)·(loss/L) is identical to maximizing
// p*·gain − (1−p*)·loss with p* = pL / (pL + (1−p)G).
func (in *Input) effectiveP(p float64) float64 {
	if !in.normalize {
		return p
	}
	g, l := in.rootGain, in.rootLoss
	if g <= 0 || l <= 0 {
		return p
	}
	den := p*l + (1-p)*g
	if den <= 0 {
		return p
	}
	return p * l / den
}

// AreaInfo describes one area for reporting and rendering: aggregated
// per-state proportions (Eq. 1), the state mode and its share α (§IV), and
// the area's information measures.
type AreaInfo struct {
	Rho        []float64
	Mode       int     // index of the dominant state, -1 if area is idle
	Alpha      float64 // ρ_mode / Σ_x ρ_x ∈ [1/|X|, 1] (0 when idle)
	Gain, Loss float64
}

// Describe computes AreaInfo for the area (node, [i, j]). The node must
// belong to the input's hierarchy.
func (in *Input) Describe(ar partition.Area) AreaInfo {
	id := ar.Node.ID
	idx := in.offs[id] + in.triIndex(ar.I, ar.J)
	info := AreaInfo{
		Rho:  make([]float64, in.X),
		Gain: in.gain[idx],
		Loss: in.loss[idx],
	}
	dur := in.durPref[ar.J+1] - in.durPref[ar.I]
	for x := 0; x < in.X; x++ {
		base := in.prefBase(id, x)
		sums := measures.AreaSums{
			SumD:     in.prefD[base+ar.J+1] - in.prefD[base+ar.I],
			Size:     in.meta[id].size,
			Duration: dur,
		}
		info.Rho[x] = sums.AggRho()
	}
	info.Mode, info.Alpha = measures.Mode(info.Rho)
	return info
}

// EvaluateArea returns the (gain, loss) of an arbitrary candidate area,
// whether or not it belongs to any optimal partition. The product baseline
// uses this to score its partitions against the full microscopic model.
func (in *Input) EvaluateArea(ar partition.Area) (gain, loss float64) {
	idx := in.offs[ar.Node.ID] + in.triIndex(ar.I, ar.J)
	return in.gain[idx], in.loss[idx]
}

// EvaluatePartition sums gain/loss/pIC of an arbitrary structure-consistent
// partition under this model (areas must reference this hierarchy's nodes).
func (in *Input) EvaluatePartition(pt *partition.Partition, p float64) (gain, loss, pic float64) {
	for _, ar := range pt.Areas {
		g, l := in.EvaluateArea(ar)
		gain += g
		loss += l
	}
	return gain, loss, measures.PIC(in.effectiveP(p), gain, loss)
}

// RootGainLoss returns the gain and loss of the full aggregation — the
// normalization constants and the extreme point of the quality curves.
func (in *Input) RootGainLoss() (gain, loss float64) { return in.rootGain, in.rootLoss }

// InputCells returns the total number of triangular-matrix cells, i.e. the
// O(|H(S)|·|T|²) space term; exposed for the scaling ablations.
func (in *Input) InputCells() int { return len(in.gain) }

// AcquireSolver returns a Solver from the input's bounded pool, with
// Workers reset to the input's default. Callers should ReleaseSolver it
// when the query is done; the sweeps, the Aggregator facade and the
// serving layer use this so repeated queries stop reallocating the
// O(|H(S)|·|T|²) pIC/cut scratch. At most Options.SolverPoolBound solvers
// (default: the worker count) exist at once — when they are all in
// flight, AcquireSolver blocks until one is released, capping the peak
// pooled scratch memory under any request concurrency.
func (in *Input) AcquireSolver() *Solver {
	s, _ := in.acquireSolver(context.Background())
	return s
}

// AcquireSolverContext is AcquireSolver with a way out: a caller blocked at
// the pool bound (every solver in flight) gives up when ctx is cancelled
// and gets ctx.Err() instead of a solver. An already-cancelled ctx fails
// immediately, so a request whose deadline expired never claims scratch it
// cannot use. On success the caller owns the solver exactly as with
// AcquireSolver and must ReleaseSolver it.
func (in *Input) AcquireSolverContext(ctx context.Context) (*Solver, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return in.acquireSolver(ctx)
}

// acquireSolver implements both acquire paths: a non-blocking grab of an
// idle solver first, then a blocking wait on a release or a creation slot,
// abandoned if ctx cancels (a background ctx never does — its nil Done
// channel makes that select arm unreachable).
func (in *Input) acquireSolver(ctx context.Context) (*Solver, error) {
	var s *Solver
	select {
	case s = <-in.solverFree:
	default:
		select {
		case s = <-in.solverFree:
		case in.solverTokens <- struct{}{}: // claim a creation slot
			s = in.NewSolver()
			s.pooled = true
			in.solversLive.Add(1)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.Workers = in.workers
	return s, nil
}

// ReleaseSolver returns a Solver obtained from AcquireSolver to the pool,
// unblocking a waiting AcquireSolver if any. Extra solvers beyond the
// bound (e.g. created directly with NewSolver) are dropped for the GC.
func (in *Input) ReleaseSolver(s *Solver) {
	select {
	case in.solverFree <- s:
	default:
	}
}

// SolverPoolBound reports the resolved solver-pool capacity.
func (in *Input) SolverPoolBound() int { return in.poolBound }

// MemoryBytes returns the approximate resident size of the Input in
// bytes — the cache-cost accessor serving-layer caches budget their
// entries with: the arenas (matrices, slice rows, prefix sums) plus the
// scratch of every pooled solver created so far (the bounded pool
// retains them for the Input's lifetime, so they are resident cost; the
// pool warms as queries run, so callers budgeting by this value should
// re-read it rather than assume the at-construction figure).
func (in *Input) MemoryBytes() int {
	floats := len(in.gain) + len(in.loss) +
		len(in.slcD) + len(in.slcRho) + len(in.slcRL) +
		len(in.prefD) + len(in.prefRho) + len(in.prefRL) +
		len(in.durPref)
	// Each pooled solver holds a float64 pIC and an int32 cut arena of
	// len(gain) cells, plus whatever fused-lane strips it has grown.
	solver := len(in.gain) * (8 + 4)
	return floats*8 + int(in.solversLive.Load())*solver + int(in.laneBytes.Load())
}
