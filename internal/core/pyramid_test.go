package core

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"ocelotl/internal/microscopic"
)

// TestCoarsenBitIdentity: coarsening a fine Input is bit-identical to
// NewInput on the pair-merged model at the coarse grid — for random
// traces, hierarchies, factors, worker counts and factor-aligned pans of
// the fine window (the alignment pyramid levels guarantee).
func TestCoarsenBitIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run("workers"+strconv.Itoa(workers), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(workers) * 31))
			for trial := 0; trial < 6; trial++ {
				tr := windowTrace(rng, 5+rng.Intn(7), 400, 25)
				r, err := microscopic.NewReslicer(tr)
				if err != nil {
					t.Fatal(err)
				}
				T := []int{8, 12, 16}[rng.Intn(3)]
				factor := []int{2, 4}[rng.Intn(2)]
				m, err := r.Build(microscopic.Options{Slices: T})
				if err != nil {
					t.Fatal(err)
				}
				// Pan the fine window by a factor-aligned offset so the
				// coarse grid stays anchored, as ladder levels are.
				if k := factor * (rng.Intn(5) - 2); k != 0 {
					m, _ = testShift(t, r, m, k)
				}
				opt := Options{Workers: workers, Normalize: trial%2 == 0}
				in := NewInput(m, opt)
				coarse, err := in.Coarsen(factor)
				if err != nil {
					t.Fatalf("trial %d: Coarsen(%d): %v", trial, factor, err)
				}
				merged, err := in.Model.MergePairs(factor)
				if err != nil {
					t.Fatal(err)
				}
				fresh := NewInput(merged, opt)
				requireInputsBitIdentical(t, coarse, fresh,
					"trial "+strconv.Itoa(trial)+" factor "+strconv.Itoa(factor))
				if coarse.Model.Slicer.N != T/factor {
					t.Fatalf("coarse |T| = %d, want %d", coarse.Model.Slicer.N, T/factor)
				}
				if got, want := coarse.Model.Slicer.Width(), in.Model.Slicer.Width()*float64(factor); got != want {
					t.Fatalf("coarse width %v, want %v", got, want)
				}
			}
		})
	}
}

// TestCoarsenRejectsBadFactors: non-power-of-two factors, indivisible
// slice counts and unaligned grid offsets must error rather than produce
// an off-grid level.
func TestCoarsenRejectsBadFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := windowTrace(rng, 6, 300, 20)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: 12})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(m, Options{})
	for _, factor := range []int{0, 1, 3, 5, 8} { // 8 ∤ 12, 3/5 not powers of 2
		if _, err := in.Coarsen(factor); err == nil {
			t.Errorf("Coarsen(%d) on |T|=12 succeeded, want error", factor)
		}
	}
	odd, _ := testShift(t, r, m, 1) // grid offset 1: not 2-aligned
	if _, err := NewInput(odd, Options{}).Coarsen(2); err == nil {
		t.Error("Coarsen(2) on an odd grid offset succeeded, want error")
	}
}

// TestPyramidZoomBitIdentity is the ladder's scratch-equivalence property:
// any random sequence of Pyramid Zoom/Resolve calls — hits, same-level
// pan-derivations and scratch builds alike — yields Inputs bit-identical
// to a fresh build at the resolved window.
func TestPyramidZoomBitIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run("workers"+strconv.Itoa(workers), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(workers)*59 + 1))
			tr := windowTrace(rng, 9, 900, 30)
			r, err := microscopic.NewReslicer(tr)
			if err != nil {
				t.Fatal(err)
			}
			const T = 12
			opt := Options{Workers: workers}
			py := NewPyramid(r, opt, 4)
			m, err := r.Build(microscopic.Options{Slices: T})
			if err != nil {
				t.Fatal(err)
			}
			in, kind, err := py.Resolve(context.Background(), m.Slicer)
			if err != nil {
				t.Fatal(err)
			}
			if kind != ResolveScratch {
				t.Fatalf("first resolve: kind %q, want scratch", kind)
			}
			kinds := map[ResolveKind]int{kind: 1}
			for step := 0; step < 18; step++ {
				var label string
				switch rng.Intn(3) {
				case 0: // zoom into a sub-range (or out, via negative lo)
					lo := rng.Intn(2*T) - T/2
					hi := lo + 1 + rng.Intn(T+4)
					in, kind, err = py.Zoom(context.Background(), in, lo, hi)
					label = "Zoom(" + strconv.Itoa(lo) + "," + strconv.Itoa(hi) + ")"
				case 1: // pan on the current grid
					k := rng.Intn(2*T) - T
					in, kind, err = py.Resolve(context.Background(), in.Model.Slicer.Shift(k))
					label = "Pan(" + strconv.Itoa(k) + ")"
				default: // revisit: resolve the exact current window again
					in, kind, err = py.Resolve(context.Background(), in.Model.Slicer)
					label = "Revisit"
				}
				if err != nil {
					t.Fatalf("step %d %s: %v", step, label, err)
				}
				kinds[kind]++
				fresh := NewInput(testBuildAt(t, r, in.Model.Slicer), opt)
				requireInputsBitIdentical(t, in, fresh,
					"step "+strconv.Itoa(step)+" "+label+" ("+string(kind)+")")
			}
			if kinds[ResolveHit] == 0 || kinds[ResolvePan] == 0 {
				t.Fatalf("sequence never exercised hit+pan paths: %v", kinds)
			}
		})
	}
}

// TestPyramidZoomInViaFinerLevel: drilling back into a previously visited
// finer level resolves by pan (or hit) — the event index is not consulted
// — and still matches scratch bit-identically; zooming back out resolves
// against the retained coarser level the same way.
func TestPyramidZoomInViaFinerLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := windowTrace(rng, 9, 900, 40)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	const T = 16
	py := NewPyramid(r, Options{}, 4)
	m, err := r.Build(microscopic.Options{Slices: T})
	if err != nil {
		t.Fatal(err)
	}
	overview, _, err := py.Resolve(context.Background(), m.Slicer)
	if err != nil {
		t.Fatal(err)
	}
	// First drill: half the window — a new (finer) level, scratch.
	fine, kind, err := py.Zoom(context.Background(), overview, 0, T/2-1)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ResolveScratch {
		t.Fatalf("first drill: kind %q, want scratch", kind)
	}
	// Back out to the overview: its level is resident — a hit.
	back, kind, err := py.Resolve(context.Background(), overview.Model.Slicer)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ResolveHit || back != overview {
		t.Fatalf("zoom out: kind %q (same input: %v), want resident hit", kind, back == overview)
	}
	// Drill again one fine-slice over: same finer grid, pan-derived.
	again, kind, err := py.Resolve(context.Background(), fine.Model.Slicer.Shift(1))
	if err != nil {
		t.Fatal(err)
	}
	if kind != ResolvePan {
		t.Fatalf("re-drill: kind %q, want pan", kind)
	}
	requireInputsBitIdentical(t, again, NewInput(testBuildAt(t, r, again.Model.Slicer), Options{}), "re-drill")
}

// TestPyramidLevelCap: the ladder retains at most maxLevels levels,
// dropping the least recently used.
func TestPyramidLevelCap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := windowTrace(rng, 6, 400, 32)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	py := NewPyramid(r, Options{}, 2)
	m, err := r.Build(microscopic.Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := py.Resolve(context.Background(), m.Slicer)
	if err != nil {
		t.Fatal(err)
	}
	for _, rg := range [][2]int{{0, 3}, {0, 1}, {2, 5}} { // three more widths
		if _, _, err := py.Zoom(context.Background(), in, rg[0], rg[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := py.Levels(); got != 2 {
		t.Fatalf("ladder holds %d levels, cap is 2", got)
	}
	if py.MemoryBytes() <= 0 {
		t.Fatal("ladder reports no resident memory")
	}
	// The original level was dropped: resolving it again is a scratch.
	if _, kind, err := py.Resolve(context.Background(), m.Slicer); err != nil || kind != ResolveScratch {
		t.Fatalf("evicted level resolve: kind %q err %v, want scratch", kind, err)
	}
}

// TestPyramidConcurrentResolve: concurrent zooms and pans over one ladder
// are race-free and every result matches scratch (run under -race).
func TestPyramidConcurrentResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := windowTrace(rng, 9, 600, 30)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	const T = 10
	py := NewPyramid(r, Options{Workers: 2}, 4)
	m, err := r.Build(microscopic.Options{Slices: T})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := py.Resolve(context.Background(), m.Slicer)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			in := base
			for i := 0; i < 6; i++ {
				var err error
				var got *Input
				if rng.Intn(2) == 0 {
					got, _, err = py.Zoom(context.Background(), in, 0, T/2-1)
				} else {
					got, _, err = py.Resolve(context.Background(), in.Model.Slicer.Shift(rng.Intn(5)-2))
				}
				if err != nil {
					t.Error(err)
					return
				}
				fresh := NewInput(testBuildAt(t, r, got.Model.Slicer), Options{Workers: 2})
				gotG, gotL := got.RootGainLoss()
				wantG, wantL := fresh.RootGainLoss()
				if gotG != wantG || gotL != wantL {
					t.Errorf("concurrent resolve diverged from scratch")
					return
				}
				in = got
			}
		}(int64(g) * 101)
	}
	wg.Wait()
}

// TestPyramidCancelledResolve: a cancelled context aborts the underlying
// build and leaves the ladder serviceable.
func TestPyramidCancelledResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := windowTrace(rng, 6, 400, 20)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	py := NewPyramid(r, Options{}, 4)
	m, err := r.Build(microscopic.Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := py.Resolve(ctx, m.Slicer); err == nil {
		t.Fatal("cancelled resolve succeeded, want ctx error")
	}
	if got := py.Levels(); got != 0 {
		t.Fatalf("cancelled resolve left %d resident levels", got)
	}
	if in, kind, err := py.Resolve(context.Background(), m.Slicer); err != nil || in == nil || kind != ResolveScratch {
		t.Fatalf("post-cancel resolve: kind %q err %v", kind, err)
	}
}

// TestEstimateMemoryBytes: the arithmetic estimate equals MemoryBytes of
// a freshly built Input (empty solver pool) exactly — the admission
// guard's precondition.
func TestEstimateMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		tr := windowTrace(rng, 4+rng.Intn(8), 300, 20)
		r, err := microscopic.NewReslicer(tr)
		if err != nil {
			t.Fatal(err)
		}
		T := 5 + rng.Intn(20)
		m, err := r.Build(microscopic.Options{Slices: T})
		if err != nil {
			t.Fatal(err)
		}
		in := NewInput(m, Options{})
		est := EstimateMemoryBytes(m.H.NumNodes(), m.NumStates(), T)
		if got := int64(in.MemoryBytes()); got != est {
			t.Fatalf("trial %d: estimate %d, fresh MemoryBytes %d", trial, est, got)
		}
	}
}

// TestPyramidZoomRejectsInvertedRange mirrors Input.Zoom's validation.
func TestPyramidZoomRejectsInvertedRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := windowTrace(rng, 4, 100, 10)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	py := NewPyramid(r, Options{}, 2)
	in, _, err := py.Resolve(context.Background(), m.Slicer)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := py.Zoom(context.Background(), in, 5, 2); err == nil {
		t.Fatal("inverted zoom range succeeded")
	}
}
