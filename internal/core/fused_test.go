package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/testutil"
	"ocelotl/internal/timeslice"
)

// randomFusedModel builds a random hierarchy/slice-count/state-count model
// big enough to exercise multi-lane blocks (unlike the brute-force-sized
// randomSmallModel) while staying fast under -race.
func randomFusedModel(rng *rand.Rand) *microscopic.Model {
	paths := randomHierarchyPaths(rng, 2+rng.Intn(7))
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		panic(err)
	}
	T := 4 + rng.Intn(12)
	sl, _ := timeslice.New(0, float64(T), T)
	X := 1 + rng.Intn(3)
	states := make([]string, X)
	for x := range states {
		states[x] = "x" + strconv.Itoa(x)
	}
	m := microscopic.NewEmpty(h, sl, states)
	for s := 0; s < h.NumLeaves(); s++ {
		for ti := 0; ti < T; ti++ {
			budget := 1.0
			for x := 0; x < X; x++ {
				d := rng.Float64() * budget
				m.AddD(x, s, ti, d)
				budget -= d
			}
		}
	}
	return m
}

// randomPs draws a p list that covers the lane-blocking edge cases: empty
// through several blocks, repeated values, and the endpoints.
func randomPs(rng *rand.Rand) []float64 {
	n := rng.Intn(2*MaxLanes + 3)
	ps := make([]float64, n)
	for i := range ps {
		switch rng.Intn(6) {
		case 0:
			ps[i] = 0
		case 1:
			ps[i] = 1
		default:
			ps[i] = rng.Float64()
		}
	}
	return ps
}

// TestRunManyBitIdenticalToRun is the fused-path property test: across
// random hierarchies, dimensions, data, normalization and p lists, every
// lane of RunMany must equal its own Run(p) — same partition signature,
// same gain/loss/pIC floats — for any lane count.
func TestRunManyBitIdenticalToRun(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		m := randomFusedModel(rng)
		in := NewInput(m, Options{Normalize: trial%2 == 1})
		ps := randomPs(rng)

		s := in.NewSolver()
		got, err := s.RunMany(ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ps) {
			t.Fatalf("trial %d: RunMany returned %d partitions for %d ps", trial, len(got), len(ps))
		}
		ref := in.NewSolver()
		for i, p := range ps {
			want, err := ref.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			pt := got[i]
			if pt.Signature() != want.Signature() {
				t.Fatalf("trial %d p=%v (lane %d of %d): partitions differ", trial, p, i, len(ps))
			}
			if pt.Gain != want.Gain || pt.Loss != want.Loss || pt.PIC != want.PIC {
				t.Fatalf("trial %d p=%v: gain/loss/pIC (%v,%v,%v) vs Run's (%v,%v,%v)",
					trial, p, pt.Gain, pt.Loss, pt.PIC, want.Gain, want.Loss, want.PIC)
			}
		}
		// The same solver must reproduce the sweep after its lanes have
		// been overwritten (scratch reuse, like single-p solvers).
		again, err := s.RunMany(ps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range again {
			if again[i].Signature() != got[i].Signature() {
				t.Fatalf("trial %d: repeated RunMany changed lane %d", trial, i)
			}
		}
	}
}

// TestRunManyRejectsBadP: one out-of-range entry fails the whole call
// before any lane is solved, exactly like Run — including through the
// sweep layer at every worker count (the fused lane blocks must not
// bypass the validation the per-p path performed).
func TestRunManyRejectsBadP(t *testing.T) {
	m := randomFusedModel(rand.New(rand.NewSource(7)))
	in := NewInput(m, Options{})
	for _, ps := range [][]float64{{0.5, 2}, {-0.1}, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.5}} {
		if out, err := in.NewSolver().RunMany(ps); err == nil || out != nil {
			t.Fatalf("RunMany(%v) = (%v, %v), want rejection", ps, out, err)
		}
	}
	for _, workers := range []int{1, 4} {
		wIn := NewInput(m, Options{Workers: workers})
		if out, err := wIn.SweepRun([]float64{0.5, 2}); err == nil || out != nil {
			t.Fatalf("workers=%d: SweepRun with p=2 = (%v, %v), want rejection", workers, out, err)
		}
		if out, err := wIn.SweepQuality([]float64{0.3, math.NaN()}); err == nil || out != nil {
			t.Fatalf("workers=%d: SweepQuality with NaN = (%v, %v), want rejection", workers, out, err)
		}
	}
}

// TestSweepMatchesFusedAndSingle pins the sweep layer across worker
// counts: SweepRun/SweepQuality results must be bit-identical to per-p
// Run regardless of how the ps are partitioned into lane blocks.
func TestSweepMatchesFusedAndSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := randomFusedModel(rng)
	ps := sweepPs(23)
	ref := NewInput(m, Options{Workers: 1})
	want := make([]QualityPoint, len(ps))
	s := ref.NewSolver()
	for i, p := range ps {
		q, err := s.Quality(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = q
	}
	for _, workers := range []int{1, 2, 5, 0} {
		in := NewInput(m, Options{Workers: workers})
		got, err := in.SweepQuality(ps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: SweepQuality diverges at p=%g: %+v vs %+v", workers, ps[i], got[i], want[i])
			}
		}
	}
}

// TestSignificantPsMatchesRecursiveDichotomy proves the batched-round
// frontier samples the identical point set as the plain sequential
// recursion of the original algorithm, implemented here as the oracle on
// single-p Runs.
func TestSignificantPsMatchesRecursiveDichotomy(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		m := randomFusedModel(rng)
		in := NewInput(m, Options{})
		eps := []float64{1e-2, 1e-3}[seed%2]

		// Oracle: the recursive dichotomy on a dedicated solver.
		s := in.NewSolver()
		quality := func(p float64) QualityPoint {
			pt, err := s.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			return qualityOf(p, pt)
		}
		lo, hi := quality(0), quality(1)
		points := map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
		var explore func(l, h QualityPoint)
		explore = func(l, h QualityPoint) {
			if l.Signature == h.Signature || h.P-l.P <= eps {
				return
			}
			mid := quality((l.P + h.P) / 2)
			if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
				points[mid.Signature] = mid
			}
			explore(l, mid)
			explore(mid, h)
		}
		explore(lo, hi)
		want := sortedPoints(points)

		got, err := in.SignificantPs(eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: batched ladder has %d points, recursion %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: ladder point %d differs: %+v vs %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestRunManyCancellation injects cancels at every reachable engine check
// of a fused multi-block solve: the result is always either complete and
// bit-identical or (nil, context.Canceled) — never lanes next to holes —
// and the solver stays usable.
func TestRunManyCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 1})
	ps := sweepPs(2*MaxLanes + 3) // three blocks
	s := in.NewSolver()
	want, err := s.RunMany(ps)
	if err != nil {
		t.Fatal(err)
	}

	probe := newCancelAfterChecks(1 << 40)
	if _, err := s.RunManyContext(probe, ps); err != nil {
		t.Fatal(err)
	}
	checks := probe.Checks()
	probe.cancel()

	rng := rand.New(rand.NewSource(11))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Int63n(checks+2)
		ctx := newCancelAfterChecks(n)
		out, err := s.RunManyContext(ctx, ps)
		switch {
		case err != nil:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d (cancel after %d checks): err = %v", trial, n, err)
			}
			if out != nil {
				t.Fatalf("trial %d: error AND %d lanes", trial, len(out))
			}
		default:
			if len(out) != len(ps) {
				t.Fatalf("trial %d: success with %d/%d lanes", trial, len(out), len(ps))
			}
			for i, pt := range out {
				if pt == nil || pt.Signature() != want[i].Signature() {
					t.Fatalf("trial %d: lane %d differs from the uncancelled solve", trial, i)
				}
			}
		}
		ctx.cancel()
	}
}

// TestInputBuildCancellation covers the cancellable input pass: a ctx
// cancelled mid-fill aborts NewInputContext and UpdateContext promptly
// with no Input, an already-dead ctx fails before the arenas are
// allocated, and an uncancelled rebuild afterwards is bit-identical.
func TestInputBuildCancellation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tr := mpisim.ArtificialSized(24, 60)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opt := Options{Workers: workers}

		dead, cancelDead := context.WithCancel(context.Background())
		cancelDead()
		if in, err := NewInputContext(dead, m, opt); !errors.Is(err, context.Canceled) || in != nil {
			t.Fatalf("workers=%d: NewInputContext(dead) = (%v, %v)", workers, in, err)
		}

		// Count the build's cancellation checks, then kill it halfway.
		probe := newCancelAfterChecks(1 << 40)
		want, err := NewInputContext(probe, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		probe.cancel()
		ctx := newCancelAfterChecks(probe.Checks() / 2)
		start := time.Now()
		in, err := NewInputContext(ctx, m, opt)
		if !errors.Is(err, context.Canceled) || in != nil {
			t.Fatalf("workers=%d: mid-fill cancel returned (%v, %v)", workers, in, err)
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("workers=%d: cancelled build took %v to return", workers, elapsed)
		}
		ctx.cancel()

		// The incremental pass honors ctx the same way.
		shifted, ov := testShift(t, r, want.Model, 3)
		probe = newCancelAfterChecks(1 << 40)
		wantUpd, err := want.UpdateContext(probe, shifted, ov)
		if err != nil {
			t.Fatal(err)
		}
		probe.cancel()
		uctx := newCancelAfterChecks(probe.Checks() / 2)
		upd, err := want.UpdateContext(uctx, shifted, ov)
		if !errors.Is(err, context.Canceled) || upd != nil {
			t.Fatalf("workers=%d: mid-fill Update cancel returned (%v, %v)", workers, upd, err)
		}
		uctx.cancel()

		// An uncancelled retry reproduces the builds float for float.
		full := NewInput(m, opt)
		for c := range full.gain {
			if full.gain[c] != want.gain[c] || full.loss[c] != want.loss[c] {
				t.Fatalf("workers=%d: ctx build diverges from NewInput at cell %d", workers, c)
			}
		}
		fullUpd := want.Update(shifted, ov)
		for c := range fullUpd.gain {
			if fullUpd.gain[c] != wantUpd.gain[c] || fullUpd.loss[c] != wantUpd.loss[c] {
				t.Fatalf("workers=%d: ctx update diverges from Update at cell %d", workers, c)
			}
		}
	}
}

// TestFusedScratchAccounted: a pooled solver that has fused grows the
// Input's reported memory, and the scratch is released back with the
// solver (the pool keeps it, the bound still holds).
func TestFusedScratchAccounted(t *testing.T) {
	in := cancelTestInput(t, Options{Workers: 1, SolverPoolBound: 1})
	before := in.MemoryBytes()
	s, err := in.AcquireSolverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunMany(sweepPs(MaxLanes)); err != nil {
		t.Fatal(err)
	}
	in.ReleaseSolver(s)
	after := in.MemoryBytes()
	wantGrowth := len(in.gain) * MaxLanes * (8 + 4)
	if after < before+wantGrowth {
		t.Fatalf("MemoryBytes grew %d after fused use, want ≥ %d more", after-before, wantGrowth)
	}
	assertPoolReleased(t, in)
}
