package core

import (
	"math"
	"math/rand"
	"testing"

	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
)

// widerModel builds a model with enough nodes to exercise the worker pool.
func widerModel(t *testing.T, seed int64) *microscopic.Model {
	t.Helper()
	tr := mpisim.ArtificialSized(60, 24)
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 24})
	if err != nil {
		t.Fatal(err)
	}
	// Add seeded noise so ties are rare and any ordering bug shows up as
	// a different partition.
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < m.NumResources(); s++ {
		for ti := 0; ti < m.NumSlices(); ti++ {
			m.AddD(0, s, ti, 0.02*rng.Float64())
		}
	}
	return m
}

// TestParallelMatchesSequential: any worker count must produce the exact
// same matrices and partitions as the sequential path.
func TestParallelMatchesSequential(t *testing.T) {
	m := widerModel(t, 1)
	seq := New(m, Options{Workers: 1})
	for _, workers := range []int{2, 4, 8, 0} {
		par := New(m, Options{Workers: workers})
		// Input matrix arenas bit-identical.
		for c := range seq.gain {
			if seq.gain[c] != par.gain[c] || seq.loss[c] != par.loss[c] {
				t.Fatalf("workers=%d: arena cell %d differs", workers, c)
			}
		}
		for _, p := range []float64{0, 0.2, 0.5, 0.8, 1} {
			a, err := seq.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if a.Signature() != b.Signature() {
				t.Fatalf("workers=%d p=%v: partitions differ", workers, p)
			}
			if math.Abs(a.PIC-b.PIC) > 0 {
				t.Fatalf("workers=%d p=%v: pIC %v vs %v", workers, p, a.PIC, b.PIC)
			}
		}
	}
}

// TestParallelRepeatedRuns exercises matrix reuse under the parallel path.
func TestParallelRepeatedRuns(t *testing.T) {
	m := widerModel(t, 2)
	agg := New(m, Options{Workers: 4})
	first, err := agg.Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := agg.Run(0.9); err != nil {
			t.Fatal(err)
		}
		again, err := agg.Run(0.4)
		if err != nil {
			t.Fatal(err)
		}
		if again.Signature() != first.Signature() {
			t.Fatalf("iteration %d: repeated Run(0.4) changed", i)
		}
	}
}

func BenchmarkInputPassWorkers1(b *testing.B) { benchInput(b, 1) }
func BenchmarkInputPassWorkers4(b *testing.B) { benchInput(b, 4) }

func benchInput(b *testing.B, workers int) {
	tr := mpisim.ArtificialSized(192, 48)
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 48})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(m, Options{Workers: workers})
	}
}

func BenchmarkRunWorkers1(b *testing.B) { benchRun(b, 1) }
func BenchmarkRunWorkers4(b *testing.B) { benchRun(b, 4) }

func benchRun(b *testing.B, workers int) {
	tr := mpisim.ArtificialSized(192, 48)
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 48})
	if err != nil {
		b.Fatal(err)
	}
	agg := New(m, Options{Workers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}
