package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ocelotl/internal/failpoint"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

// Coarsen derives the Input one pyramid level up: the same window at
// factor× the slice width (factor a power of two dividing |T|), computed
// from this input's model by slice-pair merging (microscopic.MergePairs)
// and therefore bit-identical to NewInput at the coarse grid — the merged
// model's rows are exactly this input's leaf slice rows summed in pairs,
// and the input pass over them is the one shared fill path. The property
// tests enforce the equality down to the float.
//
// Against a from-scratch coarse build, Coarsen skips the event-index fill
// entirely (the merge is O(|X|·|S|·|T|), independent of event count) and
// its matrix pass is (1/factor²) the size of the fine one — the overview
// economics the serving layer's progressive responses ride on: an
// analyst's coarse preview costs a fraction of the window they are
// waiting for.
func (in *Input) Coarsen(factor int) (*Input, error) {
	return in.CoarsenContext(context.Background(), factor)
}

// FailpointCoarsen names the fault-injection site at the head of every
// pair-merge coarsening (preview overviews) — chaos tests use it to fail
// the degrade path independently of the fine build.
const FailpointCoarsen = "core/coarsen"

// CoarsenContext is Coarsen with cooperative cancellation, checked once
// per hierarchy node inside the coarse matrix fill like every other input
// pass.
func (in *Input) CoarsenContext(ctx context.Context, factor int) (*Input, error) {
	if err := failpoint.InjectContext(ctx, FailpointCoarsen); err != nil {
		return nil, err
	}
	m, err := in.Model.MergePairs(factor)
	if err != nil {
		return nil, fmt.Errorf("core: coarsen: %w", err)
	}
	return NewInputContext(ctx, m, Options{
		Normalize:       in.normalize,
		Workers:         in.workers,
		SolverPoolBound: in.poolBound,
	})
}

// gridID identifies one pyramid level: a slice grid's (origin, width) as
// exact float bits. Windows on the same grid at different offsets — pans
// of one another — share a gridID; any change of slice width (a zoom) is
// a different level.
type gridID struct {
	base, width uint64
}

func gridOf(sl timeslice.Slicer) gridID {
	base, width, _ := sl.Grid()
	return gridID{math.Float64bits(base), math.Float64bits(width)}
}

// ResolveKind reports how Pyramid.Resolve obtained an Input.
type ResolveKind string

const (
	// ResolveHit: the exact window was the level's resident Input.
	ResolveHit ResolveKind = "hit"
	// ResolvePan: the level was resident at another offset; the Input was
	// pan-derived from it via Update (O(Δ·|T|) per node).
	ResolvePan ResolveKind = "pan"
	// ResolveScratch: no resident level matched the request's grid; the
	// Input was built from the event index.
	ResolveScratch ResolveKind = "scratch"
)

// Pyramid is the engine-level multi-resolution ladder: per slice-width
// grid level, the most recently used Input, so that a zoom to a warm
// level resolves by hit or same-grid pan-derivation — the existing
// bit-identical Update path — before touching the event index. It turns
// the aggregate-overview-then-drill loop into pan economics: the first
// visit to a resolution pays a scratch build, every later visit pays
// O(Δ·|T|) per node.
//
// The ladder holds at most maxLevels resident Inputs (least recently used
// level dropped first), bounding the extra residency at
// maxLevels·O(|H(S)|·|T|²). The serving layer's InputCache implements the
// same idea with a byte budget, singleflight and per-trace generations;
// Pyramid is the dependency-free form for the CLI, benchmarks and
// embedders driving a Reslicer directly.
//
// A Pyramid is safe for concurrent use. Builds run outside the lock, so
// concurrent misses of one level may build twice (last insert wins) —
// callers needing build dedup use the serving layer.
type Pyramid struct {
	r    *microscopic.Reslicer
	opts Options
	max  int

	mu     sync.Mutex
	levels map[gridID]*Input
	order  []gridID // least → most recently used
}

// DefaultPyramidLevels bounds the resident ladder when NewPyramid is
// given no cap: 8 levels spans a 128× zoom range at factor-2 steps.
const DefaultPyramidLevels = 8

// NewPyramid returns an empty ladder over r. opts configures every Input
// it builds; maxLevels ≤ 0 means DefaultPyramidLevels.
func NewPyramid(r *microscopic.Reslicer, opts Options, maxLevels int) *Pyramid {
	if maxLevels <= 0 {
		maxLevels = DefaultPyramidLevels
	}
	return &Pyramid{r: r, opts: opts, max: maxLevels, levels: make(map[gridID]*Input)}
}

// Resolve returns the Input for sl's window, preferring the ladder: an
// exact resident window is returned as-is, a resident window on the same
// grid pan-derives (Reslicer.Shift + Input.UpdateContext — bit-identical
// to scratch by the Update property), and only an unknown grid level
// falls through to the event index. The resolved Input becomes its
// level's resident.
func (p *Pyramid) Resolve(ctx context.Context, sl timeslice.Slicer) (*Input, ResolveKind, error) {
	gid := gridOf(sl)
	p.mu.Lock()
	res := p.levels[gid]
	p.mu.Unlock()

	if res != nil && res.Model.Slicer.N == sl.N {
		src := res.Model.Slicer
		if k, ok := src.OnGrid(sl); ok {
			if k == 0 {
				p.touch(gid, res)
				return res, ResolveHit, nil
			}
			m, ov, err := p.r.Shift(res.Model, k)
			if err != nil {
				return nil, "", err
			}
			in, err := res.UpdateContext(ctx, m, ov)
			if err != nil {
				return nil, "", err
			}
			p.touch(gid, in)
			return in, ResolvePan, nil
		}
	}
	m, err := p.r.BuildAt(sl)
	if err != nil {
		return nil, "", err
	}
	in, err := NewInputContext(ctx, m, p.opts)
	if err != nil {
		return nil, "", err
	}
	p.touch(gid, in)
	return in, ResolveScratch, nil
}

// Zoom resolves the window covered by slices [lo, hi] of in's window,
// re-sliced to in's slice count — the pyramid-aware counterpart of
// Input.Zoom. A full-width range is a pan on in's own grid; any other
// range addresses a different level, found in the ladder when the same
// zoom (or a pan of it) ran before. Repeating the paper's
// overview-then-drill loop therefore pays scratch once per resolution and
// pan prices after.
func (p *Pyramid) Zoom(ctx context.Context, in *Input, lo, hi int) (*Input, ResolveKind, error) {
	T := in.Model.Slicer.N
	if hi < lo {
		return nil, "", fmt.Errorf("core: zoom range [%d,%d] inverted", lo, hi)
	}
	if hi-lo+1 == T { // same width: a pan on in's grid
		return p.Resolve(ctx, in.Model.Slicer.Shift(lo))
	}
	start, end := in.Model.Slicer.IntervalBounds(lo, hi)
	sl, err := timeslice.New(start, end, T)
	if err != nil {
		return nil, "", fmt.Errorf("core: zoom: %w", err)
	}
	return p.Resolve(ctx, sl)
}

// touch makes in the resident Input of level gid and moves the level to
// the most-recently-used end, dropping the least recently used level
// beyond the cap.
func (p *Pyramid) touch(gid gridID, in *Input) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.levels[gid]; !ok && len(p.levels) >= p.max {
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.levels, oldest)
	}
	for i, g := range p.order {
		if g == gid {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.order = append(p.order, gid)
	p.levels[gid] = in
}

// Levels reports the resident level count (observability, tests).
func (p *Pyramid) Levels() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.levels)
}

// MemoryBytes totals the resident Inputs' MemoryBytes — the ladder's
// bounded extra residency.
func (p *Pyramid) MemoryBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, in := range p.levels {
		n += in.MemoryBytes()
	}
	return n
}

// EstimateMemoryBytes predicts Input.MemoryBytes for a build over
// numNodes hierarchy nodes, numStates states and slices time slices,
// before any arena is allocated: the matrix triangles, slice rows, prefix
// sums and duration prefix, exactly as MemoryBytes sums them for a fresh
// Input (whose solver pool is still empty). Serving-layer admission
// guards use this to reject windows whose Input alone would blow a cache
// budget, arithmetically, before paying the build.
func EstimateMemoryBytes(numNodes, numStates, slices int) int64 {
	n, x, t := int64(numNodes), int64(numStates), int64(slices)
	cells := t * (t + 1) / 2
	floats := 2*n*cells + // gain, loss triangles
		3*n*x*t + // slcD, slcRho, slcRL
		3*n*x*(t+1) + // prefD, prefRho, prefRL
		(t + 1) // durPref
	return floats * 8
}
