package core

import (
	"testing"

	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

// testBuildAt and testShift unwrap the fallible index API for tests on
// RAM-backed reslicers, where fills cannot fail.
func testBuildAt(t *testing.T, r *microscopic.Reslicer, sl timeslice.Slicer) *microscopic.Model {
	t.Helper()
	m, err := r.BuildAt(sl)
	if err != nil {
		t.Fatalf("BuildAt: %v", err)
	}
	return m
}

func testShift(t *testing.T, r *microscopic.Reslicer, m *microscopic.Model, k int) (*microscopic.Model, microscopic.SliceOverlap) {
	t.Helper()
	nm, ov, err := r.Shift(m, k)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	return nm, ov
}
