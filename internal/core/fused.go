package core

import (
	"context"
	"fmt"
	"math"

	"ocelotl/internal/measures"
	"ocelotl/internal/partition"
)

// MaxLanes is the widest fused lane block a Solver carries through one
// triangular iteration: RunMany partitions its p list into blocks of at
// most this many lanes. The width trades per-lane efficiency (wider blocks
// amortize more of the DP control flow, index arithmetic and gain/loss
// traffic) against the per-node working set — a block holds
// MaxLanes·(8+4) bytes per triangle cell of pIC/cut state, which at 16
// lanes keeps a |T| ≈ 50 node's live rows inside L2 — and against sweep
// granularity across workers (the sweep layer shrinks blocks below this
// cap when splitting them over more workers is the better trade).
const MaxLanes = 16

// improveThr returns the strict-improvement threshold Improves(·, best)
// compares against for a finite best: a candidate beats best iff it
// exceeds best + ImproveEps·(1+|best|). The fused kernel caches this value
// per lane and recomputes it only when best changes, instead of
// re-deriving it on every add-compare; the comparison is bit-identical to
// measures.Improves because every pIC alternative is finite (gain and
// loss are finite sums, p ∈ [0,1]), so Improves' -Inf arm is unreachable.
func improveThr(best float64) float64 {
	return best + measures.ImproveEps*(1+math.Abs(best))
}

// RunMany executes Algorithm 1 once per entry of ps on this solver and
// returns the optimal partitions in input order, each bit-identical to a
// separate Run(p). The ps are solved in fused lane blocks of up to
// MaxLanes values: one triangular iteration per hierarchy node reads each
// cell's gain/loss and child offsets once and updates every lane in the
// inner add-compare loop, instead of re-streaming the whole arena once
// per p. That amortizes the DP control flow and memory traffic across the
// block, which is what makes wide p-sweeps (quality curves, the
// significant-p dichotomy) cheap per query.
func (s *Solver) RunMany(ps []float64) ([]*partition.Partition, error) {
	return s.RunManyContext(context.Background(), ps)
}

// RunManyContext is RunMany with cooperative cancellation: ctx is checked
// once per hierarchy node (the same cadence as RunContext, though a fused
// node iteration is up to MaxLanes single-p iterations of work), and a
// cancelled call returns ctx.Err() with no partitions — never a result
// slice with solved lanes next to holes. The lane scratch is grown on
// first use and retained for reuse, exactly like the pIC/cut scratch.
func (s *Solver) RunManyContext(ctx context.Context, ps []float64) ([]*partition.Partition, error) {
	if err := validatePs(ps); err != nil {
		return nil, err
	}
	out := make([]*partition.Partition, len(ps))
	for lo := 0; lo < len(ps); lo += MaxLanes {
		hi := lo + MaxLanes
		if hi > len(ps) {
			hi = len(ps)
		}
		if err := s.runLanes(ctx, ps[lo:hi], out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// QualityMany is RunMany reduced to quality-curve samples.
func (s *Solver) QualityMany(ctx context.Context, ps []float64) ([]QualityPoint, error) {
	pts, err := s.RunManyContext(ctx, ps)
	if err != nil {
		return nil, err
	}
	out := make([]QualityPoint, len(pts))
	for i, pt := range pts {
		out[i] = qualityOf(ps[i], pt)
	}
	return out, nil
}

// validatePs rejects any p outside [0,1] (or NaN) before a multi-p solve
// starts, so a bad entry fails the whole call up front instead of the
// fused kernel computing nonsense for it. Every multi-p entry point
// (RunManyContext, SweepRunContext) runs it.
func validatePs(ps []float64) error {
	for _, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("core: p = %v out of [0,1]", p)
		}
	}
	return nil
}

// runLanes solves one lane block (1 ≤ len(ps) ≤ MaxLanes) into out. The ps
// must already be validated. A single-entry block takes the plain
// single-p path — one lane carries no fusion to amortize.
func (s *Solver) runLanes(ctx context.Context, ps []float64, out []*partition.Partition) error {
	if len(ps) == 1 {
		pt, err := s.RunContext(ctx, ps[0])
		if err != nil {
			return err
		}
		out[0] = pt
		return nil
	}
	K := len(ps)
	s.ensureLanes(K)
	var eff [MaxLanes]float64
	for k, p := range ps {
		eff[k] = s.in.effectiveP(p)
	}
	iterate := func(id int) { s.iterateCellsLanes(id, K, &eff) }
	if s.Workers > 1 {
		sem := make(chan struct{}, s.Workers)
		s.walkParallel(ctx, s.in.rootID, sem, iterate)
	} else {
		s.walk(ctx, s.in.rootID, iterate)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for k, p := range ps {
		pt := &partition.Partition{P: p}
		s.recoverLane(s.in.rootID, 0, s.in.T-1, k, K, pt)
		pt.PIC = measures.PIC(eff[k], pt.Gain, pt.Loss)
		pt.Sort()
		out[k] = pt
	}
	return nil
}

// ensureLanes sizes the lane arenas for a K-lane block. The first fused
// use allocates exactly the requested width — a many-core sweep that
// splits into narrow blocks (laneWidth) never pays for lanes it won't
// use — but a solver that widens a second time jumps straight to the
// MaxLanes cap: a widening caller is almost always the dichotomy, whose
// rounds keep growing, and one jump beats re-zeroing the arena per
// round. The scratch is retained across runs; pooled solvers keep it for
// the Input's lifetime, so MemoryBytes accounts it.
func (s *Solver) ensureLanes(K int) {
	need := len(s.in.gain) * K
	if cap(s.lanePic) < need {
		alloc := need
		if cap(s.lanePic) > 0 {
			alloc = len(s.in.gain) * MaxLanes
		}
		if s.pooled {
			s.in.laneBytes.Add(int64(alloc-cap(s.lanePic)) * (8 + 4))
		}
		s.lanePic = make([]float64, alloc)
		s.laneCut = make([]int32, alloc)
	}
	s.lanePic = s.lanePic[:need]
	s.laneCut = s.laneCut[:need]
}

// iterateCellsLanes is the fused triangular iteration of Algorithm 1 for
// one node and K p-lanes: the lane arenas hold one K-wide strip per
// triangle cell (row-major, like the gain/loss triangles), so every
// alternative of the single-p iteration becomes K contiguous add-compares
// against per-lane cached thresholds. Per lane the sequence of float
// operations and strict comparisons is exactly iterateCells' — same
// no-cut initialization, same child-order spatial sum, same temporal-cut
// order — so each lane's pIC and cut matrices are bit-identical to a
// single-p solve at that p.
func (s *Solver) iterateCellsLanes(id, K int, eff *[MaxLanes]float64) {
	in := s.in
	T := in.T
	off := in.offs[id]
	gain := in.gain[off : off+in.cells]
	loss := in.loss[off : off+in.cells]
	pic := s.lanePic[off*K : (off+in.cells)*K]
	cuts := s.laneCut[off*K : (off+in.cells)*K]
	childOffs := in.meta[id].childOffs
	p := eff[:K:K]
	var qa, best, thr, sums [MaxLanes]float64
	var bestCutA [MaxLanes]int32
	q := qa[:K:K]
	for k := range p {
		q[k] = 1 - p[k]
	}
	bst, th, bestCut := best[:K:K], thr[:K:K], bestCutA[:K:K]
	for i := T - 1; i >= 0; i-- {
		base := i*T - i*(i-1)/2  // triIndex(i, i)
		nextBase := base + T - i // triIndex(i+1, i+1)
		rowPic := pic[base*K:]
		for j := i; j < T; j++ {
			idx := base + (j - i)
			g, l := gain[idx], loss[idx]
			for k := range bst {
				b := p[k]*g - q[k]*l // no cut
				bst[k], th[k], bestCut[k] = b, improveThr(b), int32(j)
			}
			if len(childOffs) > 0 { // spatial cut?
				sm := sums[:K:K]
				for k := range sm {
					sm[k] = 0
				}
				for _, co := range childOffs {
					cb := (co + idx) * K
					cp := s.lanePic[cb : cb+K : cb+K]
					for k := range sm {
						sm[k] += cp[k]
					}
				}
				for k := range sm {
					if sm[k] > th[k] {
						bst[k], th[k], bestCut[k] = sm[k], improveThr(sm[k]), CutSpatial
					}
				}
			}
			// Temporal cuts: the left parts pic[(i, cut)] walk the row-i
			// strips of rowPic contiguously; the right parts
			// pic[(cut+1, j)] advance by T-cut-2 strips per step — the
			// single-p kernel's affine walk, times K lanes per strip.
			rIdx := nextBase + (j - i - 1)
			for cut := i; cut < j; cut++ {
				lb := (cut - i) * K
				lp := rowPic[lb : lb+K : lb+K]
				rb := rIdx * K
				rp := pic[rb : rb+K : rb+K]
				for k := range lp {
					if v := lp[k] + rp[k]; v > th[k] {
						bst[k], th[k], bestCut[k] = v, improveThr(v), int32(cut)
					}
				}
				rIdx += T - cut - 2
			}
			ob := idx * K
			op := pic[ob : ob+K : ob+K]
			oc := cuts[ob : ob+K : ob+K]
			for k := range op {
				op[k], oc[k] = bst[k], bestCut[k]
			}
		}
	}
}

// recoverLane walks lane k's cut matrix (stride K strips) from
// (node, [i,j]) down to the aggregates of that lane's optimal partition,
// mirroring the single-p recover.
func (s *Solver) recoverLane(id, i, j, k, K int, pt *partition.Partition) {
	in := s.in
	idx := in.offs[id] + in.triIndex(i, j)
	switch c := s.laneCut[idx*K+k]; {
	case c == int32(j): // aggregate of the partition
		pt.Areas = append(pt.Areas, partition.Area{Node: in.meta[id].node, I: i, J: j})
		pt.Gain += in.gain[idx]
		pt.Loss += in.loss[idx]
	case c == CutSpatial:
		for _, child := range in.meta[id].children {
			s.recoverLane(int(child), i, j, k, K, pt)
		}
	default: // temporal cut at c
		s.recoverLane(id, i, int(c), k, K, pt)
		s.recoverLane(id, int(c)+1, j, k, K, pt)
	}
}
