// Package core implements the paper's primary contribution (§III.E): the
// exact spatiotemporal aggregation algorithm that computes, for a given
// gain/loss trade-off ratio p, a hierarchy-and-order-consistent partition
// of S×T maximizing the parametrized Information Criterion (Eq. 4).
//
// The set of candidate areas A(S×T) = H(S)×I(T) is stored as a tree of
// upper-triangular matrices: one matrix per hierarchy node, one cell per
// time interval [i, j]. Building the input (gain and loss of every area,
// Eqs. 1–3) costs O(|X|·|S|·|T| + |X|·|H(S)|·|T|²) time and O(|H(S)|·|T|²)
// space; each optimization run (Algorithm 1) costs O(|S|·|T|³) time and is
// independent of the input pass, which is what gives the paper's
// "instantaneous interaction" when the analyst slides p.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// CutSpatial is the cut-matrix marker for a spatial cut (the area is
// partitioned into its node's children over the same interval).
const CutSpatial = int32(-1)

// improves is measures.Improves: a strict comparison with a relative
// rounding-noise tolerance, so ties keep the aggregate as in Algorithm 1.
func improves(candidate, best float64) bool { return measures.Improves(candidate, best) }

// nodeData carries, for one hierarchy node S_k, the triangular matrices of
// §III.E "Data Structure" plus the per-state prefix sums used to fill them.
type nodeData struct {
	node     *hierarchy.Node
	children []*nodeData
	size     int // |S_k|

	// Per-state prefix sums over slices (length |T|+1 each):
	// prefD[x][t]   = Σ_{t'<t} Σ_{s∈S_k} d_x(s,t')
	// prefRho[x][t] = Σ_{t'<t} Σ_{s∈S_k} ρ_x(s,t')
	// prefRL[x][t]  = Σ_{t'<t} Σ_{s∈S_k} ρ_x·log₂ρ_x
	prefD, prefRho, prefRL [][]float64

	// Triangular matrices over intervals [i,j] (summed over states):
	gain, loss []float64
	pic        []float64
	cut        []int32
}

// Aggregator holds the precomputed tree of triangular matrices for one
// microscopic model and answers optimal-partition queries for any p.
// An Aggregator is not safe for concurrent Run calls (the pIC/cut matrices
// are reused across runs); build one per goroutine if needed.
type Aggregator struct {
	Model *microscopic.Model
	T, X  int

	nodes   []*nodeData // indexed by hierarchy node ID
	root    *nodeData
	durPref []float64 // prefix sums of d(t), length |T|+1

	normalize  bool
	nWorkers   int
	rootGain   float64 // gain of the full aggregation (for normalization)
	rootLoss   float64 // loss of the full aggregation
	lastEffP   float64
	inputCells int
}

// Options tunes the aggregator.
type Options struct {
	// Normalize rescales gain and loss by their full-aggregation values
	// before combining them, so that p has a comparable meaning across
	// traces of different sizes (as the Ocelotl tool does). Internally it
	// is an exact reparametrization of p; the set of reachable partitions
	// is unchanged.
	Normalize bool
	// Workers bounds the parallelism of the input pass and of Algorithm 1
	// across independent subtrees: 0 picks GOMAXPROCS, 1 forces the
	// sequential paths. Results are bit-identical for any worker count —
	// each node's matrices depend only on its own prefix sums (input
	// pass) and on its children's completed matrices (optimization), so
	// the decomposition has no shared mutable state.
	Workers int
}

// workers resolves the effective parallelism.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// New builds the aggregator: per-node prefix sums and the gain/loss
// triangular matrices for every area of A(S×T).
func New(m *microscopic.Model, opt Options) *Aggregator {
	T, X := m.NumSlices(), m.NumStates()
	a := &Aggregator{
		Model:     m,
		T:         T,
		X:         X,
		nodes:     make([]*nodeData, m.H.NumNodes()),
		normalize: opt.Normalize,
		nWorkers:  opt.workers(),
	}
	a.durPref = make([]float64, T+1)
	for t := 0; t < T; t++ {
		a.durPref[t+1] = a.durPref[t] + m.SliceDur[t]
	}
	a.root = a.build(m.H.Root)
	a.fillMatrices()
	if a.root != nil {
		idx := a.triIndex(0, T-1)
		a.rootGain, a.rootLoss = a.root.gain[idx], a.root.loss[idx]
	}
	return a
}

// fillMatrices computes every node's gain/loss triangular matrices from
// the prefix sums. Nodes are independent here, so the O(|X|·|H(S)|·|T|²)
// work is spread over the worker pool.
func (a *Aggregator) fillMatrices() {
	fill := func(nd *nodeData) {
		for i := 0; i < a.T; i++ {
			for j := i; j < a.T; j++ {
				idx := a.triIndex(i, j)
				nd.gain[idx], nd.loss[idx] = a.areaGainLoss(nd, i, j)
			}
		}
	}
	if a.nWorkers <= 1 || len(a.nodes) < 2 {
		for _, nd := range a.nodes {
			fill(nd)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *nodeData)
	for w := 0; w < a.nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for nd := range next {
				fill(nd)
			}
		}()
	}
	for _, nd := range a.nodes {
		next <- nd
	}
	close(next)
	wg.Wait()
}

// build recursively constructs nodeData bottom-up.
func (a *Aggregator) build(n *hierarchy.Node) *nodeData {
	T, X := a.T, a.X
	nd := &nodeData{node: n, size: n.Size()}
	a.nodes[n.ID] = nd
	nd.prefD = make([][]float64, X)
	nd.prefRho = make([][]float64, X)
	nd.prefRL = make([][]float64, X)
	for x := 0; x < X; x++ {
		nd.prefD[x] = make([]float64, T+1)
		nd.prefRho[x] = make([]float64, T+1)
		nd.prefRL[x] = make([]float64, T+1)
	}
	if n.IsLeaf() {
		s := n.Lo
		for x := 0; x < X; x++ {
			row := a.Model.StateRow(x)
			pd, pr, pl := nd.prefD[x], nd.prefRho[x], nd.prefRL[x]
			for t := 0; t < T; t++ {
				d := row[s*T+t]
				rho := 0.0
				if sd := a.Model.SliceDur[t]; sd > 0 {
					rho = d / sd
				}
				pd[t+1] = pd[t] + d
				pr[t+1] = pr[t] + rho
				pl[t+1] = pl[t] + measures.PLogP(rho)
			}
		}
	} else {
		nd.children = make([]*nodeData, len(n.Children))
		for ci, c := range n.Children {
			nd.children[ci] = a.build(c)
		}
		for x := 0; x < X; x++ {
			pd, pr, pl := nd.prefD[x], nd.prefRho[x], nd.prefRL[x]
			for _, c := range nd.children {
				cd, cr, cl := c.prefD[x], c.prefRho[x], c.prefRL[x]
				for t := 1; t <= T; t++ {
					pd[t] += cd[t]
					pr[t] += cr[t]
					pl[t] += cl[t]
				}
			}
		}
	}
	// Allocate the triangular matrices; fillMatrices computes them.
	cells := T * (T + 1) / 2
	nd.gain = make([]float64, cells)
	nd.loss = make([]float64, cells)
	nd.pic = make([]float64, cells)
	nd.cut = make([]int32, cells)
	a.inputCells += cells
	return nd
}

// areaGainLoss computes (Σ_x gain_x, Σ_x loss_x) of the area
// (nd.node, T_(i,j)) from the prefix sums, applying Eqs. 1–3.
func (a *Aggregator) areaGainLoss(nd *nodeData, i, j int) (gain, loss float64) {
	dur := a.durPref[j+1] - a.durPref[i]
	for x := 0; x < a.X; x++ {
		sums := measures.AreaSums{
			SumD:         nd.prefD[x][j+1] - nd.prefD[x][i],
			SumRho:       nd.prefRho[x][j+1] - nd.prefRho[x][i],
			SumRhoLogRho: nd.prefRL[x][j+1] - nd.prefRL[x][i],
			Size:         nd.size,
			Duration:     dur,
		}
		gain += sums.Gain()
		loss += sums.Loss()
	}
	return gain, loss
}

// triIndex maps interval [i, j] (0 ≤ i ≤ j < |T|) to its flattened
// upper-triangular cell.
func (a *Aggregator) triIndex(i, j int) int {
	return i*a.T - i*(i-1)/2 + (j - i)
}

// EffectiveP returns the raw trade-off ratio actually fed to Algorithm 1
// for a user-facing p, i.e. p itself without normalization, and the exact
// reparametrization p·L/(p·L+(1−p)·G) with it.
func (a *Aggregator) EffectiveP(p float64) float64 { return a.effectiveP(p) }

// effectiveP maps the user-facing p through the optional normalization:
// maximizing p·(gain/G) − (1−p)·(loss/L) is identical to maximizing
// p*·gain − (1−p*)·loss with p* = pL / (pL + (1−p)G).
func (a *Aggregator) effectiveP(p float64) float64 {
	if !a.normalize {
		return p
	}
	g, l := a.rootGain, a.rootLoss
	if g <= 0 || l <= 0 {
		return p
	}
	den := p*l + (1-p)*g
	if den <= 0 {
		return p
	}
	return p * l / den
}

// Run executes Algorithm 1 for trade-off ratio p ∈ [0,1] and returns the
// optimal partition, with its total gain, loss and pIC. Ties are resolved
// in favor of aggregation (strict improvement is required to cut), exactly
// as in the paper's pseudocode.
func (a *Aggregator) Run(p float64) (*partition.Partition, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("core: p = %v out of [0,1]", p)
	}
	ep := a.effectiveP(p)
	a.lastEffP = ep
	if a.nWorkers > 1 {
		sem := make(chan struct{}, a.nWorkers)
		a.computeOptimalParallel(a.root, ep, sem)
	} else {
		a.computeOptimal(a.root, ep)
	}
	pt := &partition.Partition{P: p}
	a.recover(a.root, 0, a.T-1, pt)
	pt.PIC = measures.PIC(ep, pt.Gain, pt.Loss)
	pt.Sort()
	return pt, nil
}

// computeOptimalParallel runs Algorithm 1 with sibling subtrees processed
// concurrently: a node's triangular iteration only reads its children's
// completed pIC matrices, so the tree decomposes into independent tasks
// joined bottom-up. The semaphore caps in-flight goroutines; results are
// identical to the sequential pass.
func (a *Aggregator) computeOptimalParallel(nd *nodeData, p float64, sem chan struct{}) {
	if len(nd.children) > 1 {
		var wg sync.WaitGroup
		for _, c := range nd.children {
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(c *nodeData) {
					defer wg.Done()
					defer func() { <-sem }()
					a.computeOptimalParallel(c, p, sem)
				}(c)
			default:
				// Pool saturated: recurse inline rather than queue.
				a.computeOptimalParallel(c, p, sem)
			}
		}
		wg.Wait()
	} else {
		for _, c := range nd.children {
			a.computeOptimalParallel(c, p, sem)
		}
	}
	a.iterateCells(nd, p)
}

// computeOptimal is procedure node.COMPUTEOPTIMALPARTITION(p) of
// Algorithm 1: children first (spatial recursion), then the triangular
// iteration from the last line to the first, evaluating for each cell the
// "no cut", "spatial cut" and every "temporal cut" alternative.
func (a *Aggregator) computeOptimal(nd *nodeData, p float64) {
	for _, c := range nd.children {
		a.computeOptimal(c, p)
	}
	a.iterateCells(nd, p)
}

// iterateCells is the triangular iteration of Algorithm 1 for one node,
// assuming every child's pIC matrix is already computed.
func (a *Aggregator) iterateCells(nd *nodeData, p float64) {
	T := a.T
	q := 1 - p
	for i := T - 1; i >= 0; i-- {
		base := a.triIndex(i, i)
		rowPic := nd.pic[base:]
		for j := i; j < T; j++ {
			idx := base + (j - i)
			best := p*nd.gain[idx] - q*nd.loss[idx] // no cut
			bestCut := int32(j)
			if len(nd.children) > 0 { // spatial cut?
				var sum float64
				for _, c := range nd.children {
					sum += c.pic[idx]
				}
				if improves(sum, best) {
					best, bestCut = sum, CutSpatial
				}
			}
			for cut := i; cut < j; cut++ { // temporal cut?
				v := rowPic[cut-i] + nd.pic[a.triIndex(cut+1, j)]
				if improves(v, best) {
					best, bestCut = v, int32(cut)
				}
			}
			nd.pic[idx], nd.cut[idx] = best, bestCut
		}
	}
}

// recover walks the sequence of cuts from (node, [i,j]) down to the
// aggregates of the optimal partition, accumulating gain/loss totals.
func (a *Aggregator) recover(nd *nodeData, i, j int, pt *partition.Partition) {
	idx := a.triIndex(i, j)
	switch c := nd.cut[idx]; {
	case c == int32(j): // aggregate of the partition
		pt.Areas = append(pt.Areas, partition.Area{Node: nd.node, I: i, J: j})
		pt.Gain += nd.gain[idx]
		pt.Loss += nd.loss[idx]
	case c == CutSpatial:
		for _, child := range nd.children {
			a.recover(child, i, j, pt)
		}
	default: // temporal cut at c
		a.recover(nd, i, int(c), pt)
		a.recover(nd, int(c)+1, j, pt)
	}
}

// AreaInfo describes one area for reporting and rendering: aggregated
// per-state proportions (Eq. 1), the state mode and its share α (§IV), and
// the area's information measures.
type AreaInfo struct {
	Rho        []float64
	Mode       int     // index of the dominant state, -1 if area is idle
	Alpha      float64 // ρ_mode / Σ_x ρ_x ∈ [1/|X|, 1] (0 when idle)
	Gain, Loss float64
}

// Describe computes AreaInfo for the area (node, [i, j]). The node must
// belong to the aggregator's hierarchy.
func (a *Aggregator) Describe(ar partition.Area) AreaInfo {
	nd := a.nodes[ar.Node.ID]
	idx := a.triIndex(ar.I, ar.J)
	info := AreaInfo{
		Rho:  make([]float64, a.X),
		Gain: nd.gain[idx],
		Loss: nd.loss[idx],
	}
	dur := a.durPref[ar.J+1] - a.durPref[ar.I]
	for x := 0; x < a.X; x++ {
		sums := measures.AreaSums{
			SumD:     nd.prefD[x][ar.J+1] - nd.prefD[x][ar.I],
			Size:     nd.size,
			Duration: dur,
		}
		info.Rho[x] = sums.AggRho()
	}
	info.Mode, info.Alpha = measures.Mode(info.Rho)
	return info
}

// EvaluateArea returns the (gain, loss) of an arbitrary candidate area,
// whether or not it belongs to the current optimal partition. The product
// baseline uses this to score its partitions against the full microscopic
// model.
func (a *Aggregator) EvaluateArea(ar partition.Area) (gain, loss float64) {
	nd := a.nodes[ar.Node.ID]
	idx := a.triIndex(ar.I, ar.J)
	return nd.gain[idx], nd.loss[idx]
}

// EvaluatePartition sums gain/loss/pIC of an arbitrary structure-consistent
// partition under this model (areas must reference this hierarchy's nodes).
func (a *Aggregator) EvaluatePartition(pt *partition.Partition, p float64) (gain, loss, pic float64) {
	for _, ar := range pt.Areas {
		g, l := a.EvaluateArea(ar)
		gain += g
		loss += l
	}
	return gain, loss, measures.PIC(a.effectiveP(p), gain, loss)
}

// RootGainLoss returns the gain and loss of the full aggregation — the
// normalization constants and the extreme point of the quality curves.
func (a *Aggregator) RootGainLoss() (gain, loss float64) { return a.rootGain, a.rootLoss }

// InputCells returns the total number of triangular-matrix cells, i.e. the
// O(|H(S)|·|T|²) space term; exposed for the scaling ablations.
func (a *Aggregator) InputCells() int { return a.inputCells }

// QualityPoint is one sample of the quality curves: the partition computed
// at P, its aggregate count and its total gain/loss.
type QualityPoint struct {
	P         float64
	Areas     int
	Gain      float64
	Loss      float64
	Signature string
}

// Quality runs the algorithm at p and summarizes the result.
func (a *Aggregator) Quality(p float64) (QualityPoint, error) {
	pt, err := a.Run(p)
	if err != nil {
		return QualityPoint{}, err
	}
	return QualityPoint{P: p, Areas: pt.NumAreas(), Gain: pt.Gain, Loss: pt.Loss, Signature: pt.Signature()}, nil
}

// SignificantPs explores [0,1] by dichotomy and returns one QualityPoint
// per distinct optimal partition, sorted by p (each point carries the
// smallest sampled p producing that partition). This reproduces Ocelotl's
// "significant values" slider stops: between two consecutive returned
// values the optimal partition does not change (up to the eps resolution).
func (a *Aggregator) SignificantPs(eps float64) ([]QualityPoint, error) {
	if eps <= 0 {
		eps = 1e-4
	}
	lo, err := a.Quality(0)
	if err != nil {
		return nil, err
	}
	hi, err := a.Quality(1)
	if err != nil {
		return nil, err
	}
	points := map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	var explore func(l, h QualityPoint)
	explore = func(l, h QualityPoint) {
		if l.Signature == h.Signature || h.P-l.P <= eps {
			return
		}
		mid, err := a.Quality((l.P + h.P) / 2)
		if err != nil {
			return
		}
		if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
			points[mid.Signature] = mid
		}
		explore(l, mid)
		explore(mid, h)
	}
	explore(lo, hi)
	out := make([]QualityPoint, 0, len(points))
	for _, q := range points {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out, nil
}

// Aggregate is the one-call convenience API: build the input structure for
// the model and return the optimal partition at p.
func Aggregate(m *microscopic.Model, p float64) (*partition.Partition, error) {
	return New(m, Options{}).Run(p)
}
