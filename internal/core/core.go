// Package core implements the paper's primary contribution (§III.E): the
// exact spatiotemporal aggregation algorithm that computes, for a given
// gain/loss trade-off ratio p, a hierarchy-and-order-consistent partition
// of S×T maximizing the parametrized Information Criterion (Eq. 4).
//
// The engine is split along the paper's two phases:
//
//   - Input (input.go) is the immutable result of the input pass: the
//     gain and loss of every candidate area of A(S×T) = H(S)×I(T), stored
//     as flat arena-backed triangular matrices (one T(T+1)/2-cell triangle
//     per hierarchy node, addressed through a per-node offset table).
//     Building it costs O(|X|·|S|·|T| + |X|·|H(S)|·|T|²) time and
//     O(|H(S)|·|T|²) space; once built it is never written again.
//
//   - Solver (solver.go) owns the pIC/cut scratch of one Algorithm 1
//     query, costing O(|S|·|T|³) time per Run(p). Any number of Solvers
//     share one Input concurrently, and one Solver can fuse many queries:
//     RunMany (fused.go) carries up to MaxLanes p-lanes through a single
//     triangular iteration per node — each cell reads its gain/loss and
//     child offsets once and updates every lane in the inner add-compare
//     loop — bit-identically per lane to separate Run(p) calls. The sweep
//     layer (sweep.go: SweepRun, SweepQuality, SignificantPs) builds on
//     it: sweeps partition their ps into lane blocks over the worker
//     pool, and the significant-p dichotomy solves each frontier
//     generation as one fused batch per round.
//
// Window changes are incremental (update.go): Input.Update — and the
// Pan/Zoom conveniences over a microscopic.Reslicer-built model — derives
// the next window's Input from the current one, copying everything the
// surviving slices pin down and recomputing only the O(Δ·|T|) cells per
// node that touch new slices, bit-identically to a fresh build.
//
// Resolution changes are incremental too (pyramid.go): Pyramid keeps the
// most recent Input resident per slice-width grid level, so a zoom back
// to a visited resolution resolves as a hit or a same-grid pan before
// touching the event index — Update's economics extended across the
// resolution axis. Input.Coarsen derives the overview one level up by
// slice-pair merging (microscopic.Model.MergePairs), bit-identical to
// NewInput on the merged model and free of any event-index pass; it
// feeds preview responses, never cache entries that promise equality
// with a scratch build at the coarse grid (boundary-spanning events
// split-then-sum differently there, so the last ulp can differ). The
// layering is deliberate: timeslice names the grids (Grid/CoarsenGrid),
// microscopic merges models, core derives Inputs and keys the ladder,
// and the serving layer adds byte budgets, singleflight and progressive
// delivery on top.
//
// Every query entry point has a context-aware twin (RunContext,
// QualityContext, RunManyContext, SweepRunContext, SweepQualityContext,
// SignificantPsContext, AcquireSolverContext) for callers whose work can
// become worthless mid-flight — a serving layer whose request timed out, a
// CLI hit by SIGINT. Cancellation is cooperative at hierarchy-node
// granularity: a cancelled call stops launching work, aborts in-flight
// solves at their next node boundary, joins every goroutine it spawned,
// returns every pooled solver, and reports ctx.Err() with no partial
// results (a cancelled fused sweep never returns solved lanes next to
// holes). The input pass itself is cancellable the same way:
// NewInputContext and UpdateContext check their ctx once per node inside
// the matrix fill, so an abandoned large-|T| build dies mid-fill. The
// context-free names delegate to their twins with a background context,
// so legacy callers pay only a nil-check per node and get bit-identical
// results.
//
// Aggregator below is a thin compatibility facade over an Input (queries
// run on the Input's solver pool); new code should use Input and Solver
// directly.
package core

import (
	"ocelotl/internal/measures"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// CutSpatial is the cut-matrix marker for a spatial cut (the area is
// partitioned into its node's children over the same interval).
const CutSpatial = int32(-1)

// improves is measures.Improves: a strict comparison with a relative
// rounding-noise tolerance, so ties keep the aggregate as in Algorithm 1.
func improves(candidate, best float64) bool { return measures.Improves(candidate, best) }

// Aggregator is the original one-struct API, kept as a facade over
// Input + Solver: it holds the precomputed input for one microscopic
// model and answers optimal-partition queries for any p. Run is safe for
// concurrent calls — each call borrows a Solver from the Input's pool, so
// concurrent queries never share pIC/cut scratch.
type Aggregator struct {
	*Input
}

// New builds the aggregator: the immutable Input (per-node slice rows and
// the gain/loss triangular matrices for every area of A(S×T)); queries run
// on the Input's solver pool.
func New(m *microscopic.Model, opt Options) *Aggregator {
	return &Aggregator{Input: NewInput(m, opt)}
}

// Run executes Algorithm 1 for trade-off ratio p ∈ [0,1] on a pooled
// Solver and returns the optimal partition, with its total gain, loss and
// pIC.
func (a *Aggregator) Run(p float64) (*partition.Partition, error) {
	s := a.AcquireSolver()
	defer a.ReleaseSolver(s)
	return s.Run(p)
}

// Quality runs the algorithm at p and summarizes the result.
func (a *Aggregator) Quality(p float64) (QualityPoint, error) {
	s := a.AcquireSolver()
	defer a.ReleaseSolver(s)
	return s.Quality(p)
}

// Aggregate is the one-call convenience API: build the input structure for
// the model and return the optimal partition at p.
func Aggregate(m *microscopic.Model, p float64) (*partition.Partition, error) {
	return NewInput(m, Options{}).NewSolver().Run(p)
}
