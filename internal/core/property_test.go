package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"ocelotl/internal/exhaustive"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

// randomHierarchyPaths generates a random 1–3-level platform with at most
// maxLeaves resources.
func randomHierarchyPaths(rng *rand.Rand, maxLeaves int) []string {
	var paths []string
	clusters := 1 + rng.Intn(3)
	for c := 0; c < clusters && len(paths) < maxLeaves; c++ {
		machines := 1 + rng.Intn(2)
		for m := 0; m < machines && len(paths) < maxLeaves; m++ {
			cores := 1 + rng.Intn(2)
			for k := 0; k < cores && len(paths) < maxLeaves; k++ {
				paths = append(paths, "c"+strconv.Itoa(c)+"/m"+strconv.Itoa(m)+"/p"+strconv.Itoa(k))
			}
		}
	}
	return paths
}

func randomSmallModel(rng *rand.Rand) *microscopic.Model {
	paths := randomHierarchyPaths(rng, 4)
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		panic(err)
	}
	T := 2 + rng.Intn(2) // 2–3 slices keeps brute force tractable
	sl, _ := timeslice.New(0, float64(T), T)
	X := 1 + rng.Intn(2)
	states := make([]string, X)
	for x := range states {
		states[x] = "x" + strconv.Itoa(x)
	}
	m := microscopic.NewEmpty(h, sl, states)
	for s := 0; s < h.NumLeaves(); s++ {
		for ti := 0; ti < T; ti++ {
			budget := 1.0
			for x := 0; x < X; x++ {
				d := rng.Float64() * budget
				m.AddD(x, s, ti, d)
				budget -= d
			}
		}
	}
	return m
}

// TestPropertyOptimalOnRandomShapes: for random hierarchy shapes, slice
// counts, state counts, data and p, the algorithm's pIC equals the
// brute-force optimum.
func TestPropertyOptimalOnRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSmallModel(rng)
		agg := New(m, Options{})
		enumerated := exhaustive.EnumerateSpatiotemporal(m.H.Root, 0, m.NumSlices()-1, 0)
		p := rng.Float64()
		pt, err := agg.Run(p)
		if err != nil {
			return false
		}
		if pt.Validate(m.H, m.NumSlices()) != nil {
			return false
		}
		want := bruteBest(m, enumerated, p)
		return math.Abs(pt.PIC-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReportedPICMatchesAreas: the partition's reported gain/loss
// always equal the sum of its areas' measures.
func TestPropertyReportedPICMatchesAreas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSmallModel(rng)
		agg := New(m, Options{})
		p := rng.Float64()
		pt, err := agg.Run(p)
		if err != nil {
			return false
		}
		var gain, loss float64
		for _, ar := range pt.Areas {
			g, l := agg.EvaluateArea(ar)
			gain += g
			loss += l
		}
		return math.Abs(gain-pt.Gain) < 1e-9*(1+math.Abs(gain)) &&
			math.Abs(loss-pt.Loss) < 1e-9*(1+math.Abs(loss))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMicroscopicBeatsNothingAtPZero: at p=0 the optimum's pIC is
// exactly 0 (the microscopic partition's value), never negative.
func TestPropertyMicroscopicBeatsNothingAtPZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSmallModel(rng)
		pt, err := New(m, Options{}).Run(0)
		if err != nil {
			return false
		}
		return pt.PIC >= -1e-9 && pt.PIC <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScaleInvariance: multiplying every duration by a constant
// (same trace at a different time unit) must not change the chosen
// partition — d(t) scales identically, so every ρ is unchanged.
func TestPropertyScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		paths := randomHierarchyPaths(rng, 5)
		h, err := hierarchy.FromPaths(paths)
		if err != nil {
			return false
		}
		T := 3
		k := 1 + rng.Float64()*999 // time-unit factor
		sl1, _ := timeslice.New(0, float64(T), T)
		sl2, _ := timeslice.New(0, k*float64(T), T)
		m1 := microscopic.NewEmpty(h, sl1, []string{"a", "b"})
		m2 := microscopic.NewEmpty(h, sl2, []string{"a", "b"})
		for s := 0; s < h.NumLeaves(); s++ {
			for ti := 0; ti < T; ti++ {
				u, v := rng.Float64()*0.6, rng.Float64()*0.4
				m1.AddD(0, s, ti, u)
				m1.AddD(1, s, ti, v)
				m2.AddD(0, s, ti, k*u)
				m2.AddD(1, s, ti, k*v)
			}
		}
		p := rng.Float64()
		p1, err := New(m1, Options{}).Run(p)
		if err != nil {
			return false
		}
		p2, err := New(m2, Options{}).Run(p)
		if err != nil {
			return false
		}
		return p1.Signature() == p2.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPermutationInvariance: permuting the state labels must not
// change the partition geometry (the criterion is a sum over states).
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		paths := randomHierarchyPaths(rng, 4)
		h1, err := hierarchy.FromPaths(paths)
		if err != nil {
			return false
		}
		h2, _ := hierarchy.FromPaths(paths)
		T := 3
		sl, _ := timeslice.New(0, float64(T), T)
		m1 := microscopic.NewEmpty(h1, sl, []string{"a", "b"})
		m2 := microscopic.NewEmpty(h2, sl, []string{"b", "a"})
		for s := 0; s < h1.NumLeaves(); s++ {
			for ti := 0; ti < T; ti++ {
				u, v := rng.Float64()*0.5, rng.Float64()*0.5
				m1.AddD(0, s, ti, u)
				m1.AddD(1, s, ti, v)
				m2.AddD(0, s, ti, v) // swapped
				m2.AddD(1, s, ti, u)
			}
		}
		p := rng.Float64()
		p1, err := New(m1, Options{}).Run(p)
		if err != nil {
			return false
		}
		p2, err := New(m2, Options{}).Run(p)
		if err != nil {
			return false
		}
		return p1.Signature() == p2.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
