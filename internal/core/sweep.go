package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"ocelotl/internal/partition"
)

// QualityPoint is one sample of the quality curves: the partition computed
// at P, its aggregate count and its total gain/loss.
type QualityPoint struct {
	P         float64
	Areas     int
	Gain      float64
	Loss      float64
	Signature string
}

// qualityOf summarizes a solved partition as a quality-curve sample.
func qualityOf(p float64, pt *partition.Partition) QualityPoint {
	return QualityPoint{P: p, Areas: pt.NumAreas(), Gain: pt.Gain, Loss: pt.Loss, Signature: pt.Signature()}
}

// SweepRun solves one query per entry of ps concurrently — each on its own
// Solver against this shared Input — and returns the partitions in input
// order. Per-run subtree parallelism is disabled inside the sweep because
// cross-query parallelism already saturates the worker pool; results are
// bit-identical to solving each p sequentially.
func (in *Input) SweepRun(ps []float64) ([]*partition.Partition, error) {
	out := make([]*partition.Partition, len(ps))
	workers := in.workers
	if workers > len(ps) {
		workers = len(ps)
	}
	if workers <= 1 {
		s := in.NewSolver()
		for i, p := range ps {
			pt, err := s.Run(p)
			if err != nil {
				return nil, err
			}
			out[i] = pt
		}
		return out, nil
	}
	errs := make([]error, len(ps))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := in.NewSolver()
			s.Workers = 1
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) {
					return
				}
				out[i], errs[i] = s.Run(ps[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepQuality is SweepRun reduced to quality-curve samples.
func (in *Input) SweepQuality(ps []float64) ([]QualityPoint, error) {
	pts, err := in.SweepRun(ps)
	if err != nil {
		return nil, err
	}
	out := make([]QualityPoint, len(pts))
	for i, pt := range pts {
		out[i] = qualityOf(ps[i], pt)
	}
	return out, nil
}

// SignificantPs explores [0,1] by dichotomy and returns one QualityPoint
// per distinct optimal partition, sorted by p (each point carries the
// smallest sampled p producing that partition). This reproduces Ocelotl's
// "significant values" slider stops: between two consecutive returned
// values the optimal partition does not change (up to the eps resolution).
//
// The two recursive halves of the dichotomy are independent, so with
// Workers > 1 they are explored concurrently, each query on its own pooled
// Solver. The sampled p set — and therefore the returned point set — is
// identical to the sequential exploration's.
func (in *Input) SignificantPs(eps float64) ([]QualityPoint, error) {
	if eps <= 0 {
		eps = 1e-4
	}
	if in.workers <= 1 {
		return in.significantPsSeq(eps)
	}
	pool := sync.Pool{New: func() any {
		s := in.NewSolver()
		s.Workers = 1
		return s
	}}
	quality := func(p float64) (QualityPoint, error) {
		s := pool.Get().(*Solver)
		defer pool.Put(s)
		return s.Quality(p)
	}
	lo, err := quality(0)
	if err != nil {
		return nil, err
	}
	hi, err := quality(1)
	if err != nil {
		return nil, err
	}
	var (
		mu       sync.Mutex
		points   = map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, in.workers)
	var explore func(l, h QualityPoint)
	explore = func(l, h QualityPoint) {
		if l.Signature == h.Signature || h.P-l.P <= eps {
			return
		}
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			return
		}
		mid, err := quality((l.P + h.P) / 2)
		mu.Lock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
			points[mid.Signature] = mid
		}
		mu.Unlock()
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				explore(l, mid)
			}()
		default:
			// Pool saturated: recurse inline rather than queue.
			explore(l, mid)
		}
		explore(mid, h)
	}
	explore(lo, hi)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sortedPoints(points), nil
}

// significantPsSeq is the Workers == 1 exploration: one Solver, the plain
// recursive dichotomy of the original algorithm.
func (in *Input) significantPsSeq(eps float64) ([]QualityPoint, error) {
	s := in.NewSolver()
	lo, err := s.Quality(0)
	if err != nil {
		return nil, err
	}
	hi, err := s.Quality(1)
	if err != nil {
		return nil, err
	}
	points := map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	var firstErr error
	var explore func(l, h QualityPoint)
	explore = func(l, h QualityPoint) {
		if l.Signature == h.Signature || h.P-l.P <= eps || firstErr != nil {
			return
		}
		mid, err := s.Quality((l.P + h.P) / 2)
		if err != nil {
			firstErr = err
			return
		}
		if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
			points[mid.Signature] = mid
		}
		explore(l, mid)
		explore(mid, h)
	}
	explore(lo, hi)
	if firstErr != nil {
		return nil, firstErr
	}
	return sortedPoints(points), nil
}

func sortedPoints(points map[string]QualityPoint) []QualityPoint {
	out := make([]QualityPoint, 0, len(points))
	for _, q := range points {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out
}
