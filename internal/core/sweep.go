package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ocelotl/internal/partition"
)

// QualityPoint is one sample of the quality curves: the partition computed
// at P, its aggregate count and its total gain/loss.
type QualityPoint struct {
	P         float64
	Areas     int
	Gain      float64
	Loss      float64
	Signature string
}

// qualityOf summarizes a solved partition as a quality-curve sample.
func qualityOf(p float64, pt *partition.Partition) QualityPoint {
	return QualityPoint{P: p, Areas: pt.NumAreas(), Gain: pt.Gain, Loss: pt.Loss, Signature: pt.Signature()}
}

// laneWidth picks the fused block width for a sweep of n ps over w
// workers: wide enough to amortize the DP control flow across lanes,
// never wider than needed to give every worker a block (splitting the
// sweep across idle cores beats making one core's block wider), capped at
// MaxLanes. Results are bit-identical for any width, so this is purely a
// latency choice.
func laneWidth(n, w int) int {
	if w < 1 {
		w = 1
	}
	k := (n + w - 1) / w
	if k > MaxLanes {
		k = MaxLanes
	}
	if k < 1 {
		k = 1
	}
	return k
}

// SweepRun solves one query per entry of ps — fused into lane blocks on
// pooled Solvers against this shared Input — and returns the partitions
// in input order. Blocks run concurrently over the worker pool with
// per-run subtree parallelism disabled (cross-block parallelism already
// saturates it); within a block one triangular iteration per node answers
// every lane. Results are bit-identical to solving each p with its own
// Run.
func (in *Input) SweepRun(ps []float64) ([]*partition.Partition, error) {
	return in.SweepRunContext(context.Background(), ps)
}

// SweepRunContext is SweepRun with cooperative cancellation: once ctx is
// cancelled no further lane block starts, every in-flight block aborts at
// its next node-level check, every worker goroutine is drained, every
// pooled solver is released, and the call returns ctx.Err() with no
// partial result slice — callers never see a sweep that is half
// partitions, half holes. With a never-cancelled ctx the computation and
// result are bit-identical to SweepRun.
func (in *Input) SweepRunContext(ctx context.Context, ps []float64) ([]*partition.Partition, error) {
	if err := validatePs(ps); err != nil {
		return nil, err
	}
	out := make([]*partition.Partition, len(ps))
	if len(ps) == 0 {
		return out, nil
	}
	lanes := laneWidth(len(ps), in.workers)
	blocks := (len(ps) + lanes - 1) / lanes
	workers := in.workers
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		s, err := in.AcquireSolverContext(ctx)
		if err != nil {
			return nil, err
		}
		defer in.ReleaseSolver(s)
		// With a single block in flight the solver keeps the Input's
		// worker setting, so its subtree parallelism still applies.
		for lo := 0; lo < len(ps); lo += lanes {
			hi := lo + lanes
			if hi > len(ps) {
				hi = len(ps)
			}
			if err := s.runLanes(ctx, ps[lo:hi], out[lo:hi]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := in.AcquireSolverContext(ctx)
			if err != nil {
				errs[w] = err
				return
			}
			defer in.ReleaseSolver(s)
			s.Workers = 1
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * lanes
				hi := lo + lanes
				if hi > len(ps) {
					hi = len(ps)
				}
				if errs[w] = s.runLanes(ctx, ps[lo:hi], out[lo:hi]); errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepQuality is SweepRun reduced to quality-curve samples.
func (in *Input) SweepQuality(ps []float64) ([]QualityPoint, error) {
	return in.SweepQualityContext(context.Background(), ps)
}

// SweepQualityContext is SweepRunContext reduced to quality-curve samples.
func (in *Input) SweepQualityContext(ctx context.Context, ps []float64) ([]QualityPoint, error) {
	pts, err := in.SweepRunContext(ctx, ps)
	if err != nil {
		return nil, err
	}
	out := make([]QualityPoint, len(pts))
	for i, pt := range pts {
		out[i] = qualityOf(ps[i], pt)
	}
	return out, nil
}

// gap is one unexplored [l, h] stretch of the dichotomy whose endpoints
// disagree; the batched frontier bisects every current gap per round.
type gap struct {
	l, h QualityPoint
}

// SignificantPs explores [0,1] by dichotomy and returns one QualityPoint
// per distinct optimal partition, sorted by p (each point carries the
// smallest sampled p producing that partition). This reproduces Ocelotl's
// "significant values" slider stops: between two consecutive returned
// values the optimal partition does not change (up to the eps resolution).
//
// The exploration is round-based: every gap of the current frontier
// generation contributes its midpoint, the whole batch is solved in one
// fused SweepRun call, and the next generation is built from the results.
// A frontier generation is exactly one level of the sequential recursion
// tree, and whether a gap subdivides depends only on its endpoints'
// signatures — never on exploration order — so the sampled p set, and
// therefore the returned point set, is identical to the plain recursive
// dichotomy's. Unlike a chain of dependent bisections, each round is one
// wide data-parallel solve: the lanes fuse across the batch and the
// blocks spread over the worker pool.
func (in *Input) SignificantPs(eps float64) ([]QualityPoint, error) {
	return in.SignificantPsContext(context.Background(), eps)
}

// SignificantPsContext is SignificantPs with cooperative cancellation: a
// cancelled ctx aborts the current round's fused sweep at its next
// node-level check, launches no further round, releases every pooled
// solver and returns ctx.Err() — never a partially explored ladder. With
// a never-cancelled ctx the exploration and result are bit-identical to
// SignificantPs.
func (in *Input) SignificantPsContext(ctx context.Context, eps float64) ([]QualityPoint, error) {
	if eps <= 0 {
		eps = 1e-4
	}
	ends, err := in.SweepQualityContext(ctx, []float64{0, 1})
	if err != nil {
		return nil, err
	}
	lo, hi := ends[0], ends[1]
	points := map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	expandable := func(l, h QualityPoint) bool {
		return l.Signature != h.Signature && h.P-l.P > eps
	}
	var frontier []gap
	if expandable(lo, hi) {
		frontier = append(frontier, gap{lo, hi})
	}
	for len(frontier) > 0 {
		mids := make([]float64, len(frontier))
		for i, g := range frontier {
			mids[i] = (g.l.P + g.h.P) / 2
		}
		qs, err := in.SweepQualityContext(ctx, mids)
		if err != nil {
			return nil, err
		}
		next := make([]gap, 0, 2*len(frontier))
		for i, g := range frontier {
			mid := qs[i]
			if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
				points[mid.Signature] = mid
			}
			if expandable(g.l, mid) {
				next = append(next, gap{g.l, mid})
			}
			if expandable(mid, g.h) {
				next = append(next, gap{mid, g.h})
			}
		}
		frontier = next
	}
	return sortedPoints(points), nil
}

func sortedPoints(points map[string]QualityPoint) []QualityPoint {
	out := make([]QualityPoint, 0, len(points))
	for _, q := range points {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out
}
