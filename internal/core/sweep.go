package core

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"ocelotl/internal/partition"
)

// QualityPoint is one sample of the quality curves: the partition computed
// at P, its aggregate count and its total gain/loss.
type QualityPoint struct {
	P         float64
	Areas     int
	Gain      float64
	Loss      float64
	Signature string
}

// qualityOf summarizes a solved partition as a quality-curve sample.
func qualityOf(p float64, pt *partition.Partition) QualityPoint {
	return QualityPoint{P: p, Areas: pt.NumAreas(), Gain: pt.Gain, Loss: pt.Loss, Signature: pt.Signature()}
}

// SweepRun solves one query per entry of ps concurrently — each on a
// pooled Solver against this shared Input — and returns the partitions in
// input order. Per-run subtree parallelism is disabled inside the sweep
// because cross-query parallelism already saturates the worker pool;
// results are bit-identical to solving each p sequentially.
func (in *Input) SweepRun(ps []float64) ([]*partition.Partition, error) {
	out := make([]*partition.Partition, len(ps))
	workers := in.workers
	if workers > len(ps) {
		workers = len(ps)
	}
	if workers <= 1 {
		s := in.AcquireSolver()
		defer in.ReleaseSolver(s)
		for i, p := range ps {
			pt, err := s.Run(p)
			if err != nil {
				return nil, err
			}
			out[i] = pt
		}
		return out, nil
	}
	errs := make([]error, len(ps))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := in.AcquireSolver()
			defer in.ReleaseSolver(s)
			s.Workers = 1
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) {
					return
				}
				out[i], errs[i] = s.Run(ps[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepQuality is SweepRun reduced to quality-curve samples.
func (in *Input) SweepQuality(ps []float64) ([]QualityPoint, error) {
	pts, err := in.SweepRun(ps)
	if err != nil {
		return nil, err
	}
	out := make([]QualityPoint, len(pts))
	for i, pt := range pts {
		out[i] = qualityOf(ps[i], pt)
	}
	return out, nil
}

// gapInterval is one unexplored [l, h] stretch of the dichotomy whose
// endpoints disagree; the frontier orders them widest first.
type gapInterval struct {
	l, h QualityPoint
}

// gapHeap is a max-heap of gapIntervals by gap width h.P−l.P.
type gapHeap []gapInterval

func (g gapHeap) Len() int           { return len(g) }
func (g gapHeap) Less(i, j int) bool { return g[i].h.P-g[i].l.P > g[j].h.P-g[j].l.P }
func (g gapHeap) Swap(i, j int)      { g[i], g[j] = g[j], g[i] }
func (g *gapHeap) Push(x any)        { *g = append(*g, x.(gapInterval)) }
func (g *gapHeap) Pop() any          { old := *g; n := len(old); x := old[n-1]; *g = old[:n-1]; return x }

// SignificantPs explores [0,1] by dichotomy and returns one QualityPoint
// per distinct optimal partition, sorted by p (each point carries the
// smallest sampled p producing that partition). This reproduces Ocelotl's
// "significant values" slider stops: between two consecutive returned
// values the optimal partition does not change (up to the eps resolution).
//
// With Workers > 1 the exploration is a priority-ordered frontier: workers
// always bisect the widest remaining [l, h] gap first, so the big
// partition changes — the slider stops an analyst sees first — surface
// before the fine boundary refinements. Which intervals get subdivided
// depends only on their endpoints' signatures, never on exploration order,
// so the sampled p set — and therefore the returned point set — is
// identical to the sequential recursion's.
func (in *Input) SignificantPs(eps float64) ([]QualityPoint, error) {
	if eps <= 0 {
		eps = 1e-4
	}
	if in.workers <= 1 {
		return in.significantPsSeq(eps)
	}
	quality := func(p float64) (QualityPoint, error) {
		s := in.AcquireSolver()
		defer in.ReleaseSolver(s)
		s.Workers = 1
		return s.Quality(p)
	}
	lo, err := quality(0)
	if err != nil {
		return nil, err
	}
	hi, err := quality(1)
	if err != nil {
		return nil, err
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		frontier gapHeap
		active   int
		firstErr error
		points   = map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	)
	expandable := func(l, h QualityPoint) bool {
		return l.Signature != h.Signature && h.P-l.P > eps
	}
	if expandable(lo, hi) {
		heap.Push(&frontier, gapInterval{lo, hi})
	}
	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(frontier) == 0 && active > 0 && firstErr == nil {
					cond.Wait()
				}
				if len(frontier) == 0 || firstErr != nil {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				iv := heap.Pop(&frontier).(gapInterval)
				active++
				mu.Unlock()

				mid, err := quality((iv.l.P + iv.h.P) / 2)

				mu.Lock()
				active--
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					cond.Broadcast()
					mu.Unlock()
					return
				}
				if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
					points[mid.Signature] = mid
				}
				if expandable(iv.l, mid) {
					heap.Push(&frontier, gapInterval{iv.l, mid})
				}
				if expandable(mid, iv.h) {
					heap.Push(&frontier, gapInterval{mid, iv.h})
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sortedPoints(points), nil
}

// significantPsSeq is the Workers == 1 exploration: one pooled Solver, the
// plain recursive dichotomy of the original algorithm.
func (in *Input) significantPsSeq(eps float64) ([]QualityPoint, error) {
	s := in.AcquireSolver()
	defer in.ReleaseSolver(s)
	lo, err := s.Quality(0)
	if err != nil {
		return nil, err
	}
	hi, err := s.Quality(1)
	if err != nil {
		return nil, err
	}
	points := map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	var firstErr error
	var explore func(l, h QualityPoint)
	explore = func(l, h QualityPoint) {
		if l.Signature == h.Signature || h.P-l.P <= eps || firstErr != nil {
			return
		}
		mid, err := s.Quality((l.P + h.P) / 2)
		if err != nil {
			firstErr = err
			return
		}
		if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
			points[mid.Signature] = mid
		}
		explore(l, mid)
		explore(mid, h)
	}
	explore(lo, hi)
	if firstErr != nil {
		return nil, firstErr
	}
	return sortedPoints(points), nil
}

func sortedPoints(points map[string]QualityPoint) []QualityPoint {
	out := make([]QualityPoint, 0, len(points))
	for _, q := range points {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out
}
