package core

import (
	"container/heap"
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ocelotl/internal/partition"
)

// QualityPoint is one sample of the quality curves: the partition computed
// at P, its aggregate count and its total gain/loss.
type QualityPoint struct {
	P         float64
	Areas     int
	Gain      float64
	Loss      float64
	Signature string
}

// qualityOf summarizes a solved partition as a quality-curve sample.
func qualityOf(p float64, pt *partition.Partition) QualityPoint {
	return QualityPoint{P: p, Areas: pt.NumAreas(), Gain: pt.Gain, Loss: pt.Loss, Signature: pt.Signature()}
}

// SweepRun solves one query per entry of ps concurrently — each on a
// pooled Solver against this shared Input — and returns the partitions in
// input order. Per-run subtree parallelism is disabled inside the sweep
// because cross-query parallelism already saturates the worker pool;
// results are bit-identical to solving each p sequentially.
func (in *Input) SweepRun(ps []float64) ([]*partition.Partition, error) {
	return in.SweepRunContext(context.Background(), ps)
}

// SweepRunContext is SweepRun with cooperative cancellation: once ctx is
// cancelled no further query starts, every in-flight query aborts at its
// next node-level check, every worker goroutine is drained, every pooled
// solver is released, and the call returns ctx.Err() with no partial
// result slice — callers never see a sweep that is half partitions, half
// holes. With a never-cancelled ctx the computation and result are
// bit-identical to SweepRun.
func (in *Input) SweepRunContext(ctx context.Context, ps []float64) ([]*partition.Partition, error) {
	out := make([]*partition.Partition, len(ps))
	workers := in.workers
	if workers > len(ps) {
		workers = len(ps)
	}
	if workers <= 1 {
		s, err := in.AcquireSolverContext(ctx)
		if err != nil {
			return nil, err
		}
		defer in.ReleaseSolver(s)
		for i, p := range ps {
			pt, err := s.RunContext(ctx, p)
			if err != nil {
				return nil, err
			}
			out[i] = pt
		}
		return out, nil
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := in.AcquireSolverContext(ctx)
			if err != nil {
				errs[w] = err
				return
			}
			defer in.ReleaseSolver(s)
			s.Workers = 1
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) {
					return
				}
				if out[i], errs[w] = s.RunContext(ctx, ps[i]); errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepQuality is SweepRun reduced to quality-curve samples.
func (in *Input) SweepQuality(ps []float64) ([]QualityPoint, error) {
	return in.SweepQualityContext(context.Background(), ps)
}

// SweepQualityContext is SweepRunContext reduced to quality-curve samples.
func (in *Input) SweepQualityContext(ctx context.Context, ps []float64) ([]QualityPoint, error) {
	pts, err := in.SweepRunContext(ctx, ps)
	if err != nil {
		return nil, err
	}
	out := make([]QualityPoint, len(pts))
	for i, pt := range pts {
		out[i] = qualityOf(ps[i], pt)
	}
	return out, nil
}

// gapInterval is one unexplored [l, h] stretch of the dichotomy whose
// endpoints disagree; the frontier orders them widest first.
type gapInterval struct {
	l, h QualityPoint
}

// gapHeap is a max-heap of gapIntervals by gap width h.P−l.P.
type gapHeap []gapInterval

func (g gapHeap) Len() int           { return len(g) }
func (g gapHeap) Less(i, j int) bool { return g[i].h.P-g[i].l.P > g[j].h.P-g[j].l.P }
func (g gapHeap) Swap(i, j int)      { g[i], g[j] = g[j], g[i] }
func (g *gapHeap) Push(x any)        { *g = append(*g, x.(gapInterval)) }
func (g *gapHeap) Pop() any          { old := *g; n := len(old); x := old[n-1]; *g = old[:n-1]; return x }

// SignificantPs explores [0,1] by dichotomy and returns one QualityPoint
// per distinct optimal partition, sorted by p (each point carries the
// smallest sampled p producing that partition). This reproduces Ocelotl's
// "significant values" slider stops: between two consecutive returned
// values the optimal partition does not change (up to the eps resolution).
//
// With Workers > 1 the exploration is a priority-ordered frontier: workers
// always bisect the widest remaining [l, h] gap first, so the big
// partition changes — the slider stops an analyst sees first — surface
// before the fine boundary refinements. Which intervals get subdivided
// depends only on their endpoints' signatures, never on exploration order,
// so the sampled p set — and therefore the returned point set — is
// identical to the sequential recursion's.
func (in *Input) SignificantPs(eps float64) ([]QualityPoint, error) {
	return in.SignificantPsContext(context.Background(), eps)
}

// SignificantPsContext is SignificantPs with cooperative cancellation: a
// cancelled ctx stops the frontier from launching further midpoints, wakes
// every worker parked on the frontier, aborts in-flight solves at their
// next node-level check, releases every pooled solver and returns ctx.Err()
// — never a partially explored ladder. With a never-cancelled ctx the
// exploration and result are bit-identical to SignificantPs.
func (in *Input) SignificantPsContext(ctx context.Context, eps float64) ([]QualityPoint, error) {
	if eps <= 0 {
		eps = 1e-4
	}
	if in.workers <= 1 {
		return in.significantPsSeq(ctx, eps)
	}
	quality := func(p float64) (QualityPoint, error) {
		s, err := in.AcquireSolverContext(ctx)
		if err != nil {
			return QualityPoint{}, err
		}
		defer in.ReleaseSolver(s)
		s.Workers = 1
		return s.QualityContext(ctx, p)
	}
	lo, err := quality(0)
	if err != nil {
		return nil, err
	}
	hi, err := quality(1)
	if err != nil {
		return nil, err
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		frontier gapHeap
		active   int
		firstErr error
		points   = map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	)
	expandable := func(l, h QualityPoint) bool {
		return l.Signature != h.Signature && h.P-l.P > eps
	}
	if expandable(lo, hi) {
		heap.Push(&frontier, gapInterval{lo, hi})
	}
	// Workers park on the cond while the frontier is empty, which a ctx
	// cancel cannot interrupt by itself; this watcher turns the cancel into
	// a recorded firstErr plus a broadcast, so parked workers wake up and
	// exit. It is stopped (and joined, for leak-free shutdown) as soon as
	// the frontier drains.
	watcherDone := make(chan struct{})
	stopWatcher := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			mu.Lock()
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			cond.Broadcast()
			mu.Unlock()
		case <-stopWatcher:
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < in.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(frontier) == 0 && active > 0 && firstErr == nil {
					cond.Wait()
				}
				if len(frontier) == 0 || firstErr != nil {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				iv := heap.Pop(&frontier).(gapInterval)
				active++
				mu.Unlock()

				mid, err := quality((iv.l.P + iv.h.P) / 2)

				mu.Lock()
				active--
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					cond.Broadcast()
					mu.Unlock()
					return
				}
				if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
					points[mid.Signature] = mid
				}
				if expandable(iv.l, mid) {
					heap.Push(&frontier, gapInterval{iv.l, mid})
				}
				if expandable(mid, iv.h) {
					heap.Push(&frontier, gapInterval{mid, iv.h})
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stopWatcher)
	<-watcherDone
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sortedPoints(points), nil
}

// significantPsSeq is the Workers == 1 exploration: one pooled Solver, the
// plain recursive dichotomy of the original algorithm.
func (in *Input) significantPsSeq(ctx context.Context, eps float64) ([]QualityPoint, error) {
	s, err := in.AcquireSolverContext(ctx)
	if err != nil {
		return nil, err
	}
	defer in.ReleaseSolver(s)
	lo, err := s.QualityContext(ctx, 0)
	if err != nil {
		return nil, err
	}
	hi, err := s.QualityContext(ctx, 1)
	if err != nil {
		return nil, err
	}
	points := map[string]QualityPoint{lo.Signature: lo, hi.Signature: hi}
	var firstErr error
	var explore func(l, h QualityPoint)
	explore = func(l, h QualityPoint) {
		if l.Signature == h.Signature || h.P-l.P <= eps || firstErr != nil {
			return
		}
		mid, err := s.QualityContext(ctx, (l.P+h.P)/2)
		if err != nil {
			firstErr = err
			return
		}
		if prev, ok := points[mid.Signature]; !ok || mid.P < prev.P {
			points[mid.Signature] = mid
		}
		explore(l, mid)
		explore(mid, h)
	}
	explore(lo, hi)
	if firstErr != nil {
		return nil, firstErr
	}
	return sortedPoints(points), nil
}

func sortedPoints(points map[string]QualityPoint) []QualityPoint {
	out := make([]QualityPoint, 0, len(points))
	for _, q := range points {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	return out
}
