package core

import (
	"context"

	"ocelotl/internal/microscopic"
)

// AdvanceContext is the per-tick step of live ingestion: the trace has
// grown (r is an Extend of the reslicer this input's model was built
// over), and the live window slides k slices forward on the same grid to
// chase the ingestion horizon. The model shift fills only the k new slice
// columns from r's index — which for an extended reslicer includes the
// freshly appended events — and the Input derivation reuses every
// surviving row via UpdateContext, so one tick costs O(Δ slices), not a
// rebuild. k = 0 re-derives the same window over the extended index (only
// needed if appended events can land inside the current window; a
// time-ordered writer never puts any there, so followers skip the k = 0
// no-op entirely).
//
// The result is bit-identical to a scratch build over r at the shifted
// window — Extend preserves the fill order and Update is bit-identical by
// its own contract — which is what lets a serving layer keep cache
// entries from earlier ticks alive. The receiver stays valid.
func (in *Input) AdvanceContext(ctx context.Context, r *microscopic.Reslicer, k int) (*Input, error) {
	m, ov, err := r.Shift(in.Model, k)
	if err != nil {
		return nil, err
	}
	return in.UpdateContext(ctx, m, ov)
}

// Advance is AdvanceContext without cancellation.
func (in *Input) Advance(r *microscopic.Reslicer, k int) (*Input, error) {
	return in.AdvanceContext(context.Background(), r, k)
}
