package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/testutil"
)

// cancelTestInput builds a mid-sized input: enough hierarchy nodes and
// slices that a sweep makes hundreds of node-level cancellation checks,
// small enough to solve in milliseconds.
func cancelTestInput(t testing.TB, opt Options) *Input {
	t.Helper()
	m, err := microscopic.Build(mpisim.ArtificialSized(16, 24), microscopic.Options{Slices: 24})
	if err != nil {
		t.Fatal(err)
	}
	return NewInput(m, opt)
}

// cancelAfterChecks is a context that cancels itself after its Err method
// has been consulted n times. The engine consults Err at every
// cancellation point — each solver acquisition and each hierarchy-node
// boundary — so choosing n injects a cancel at the n-th cancellation
// point, which is how the property test below sprays cancels across every
// reachable point of a sweep. Checks() reports how many have been
// consumed, so a full uncancelled run measures how many points exist.
type cancelAfterChecks struct {
	context.Context
	cancel context.CancelFunc
	left   atomic.Int64
	budget int64
}

func newCancelAfterChecks(n int64) *cancelAfterChecks {
	ctx, cancel := context.WithCancel(context.Background())
	c := &cancelAfterChecks{Context: ctx, cancel: cancel, budget: n}
	c.left.Store(n)
	return c
}

func (c *cancelAfterChecks) Err() error {
	if c.left.Add(-1) == 0 {
		c.cancel()
	}
	return c.Context.Err()
}

// Checks reports how many cancellation checks the engine consumed.
func (c *cancelAfterChecks) Checks() int64 { return c.budget - c.left.Load() }

// assertPoolReleased proves every pooled solver went back to the pool:
// the full bound must be acquirable without blocking past a timeout.
func assertPoolReleased(t *testing.T, in *Input) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	bound := in.SolverPoolBound()
	solvers := make([]*Solver, 0, bound)
	for i := 0; i < bound; i++ {
		s, err := in.AcquireSolverContext(ctx)
		if err != nil {
			t.Fatalf("solver %d/%d unacquirable after cancel — not released back to the pool: %v", i+1, bound, err)
		}
		solvers = append(solvers, s)
	}
	for _, s := range solvers {
		in.ReleaseSolver(s)
	}
}

// sweepPs returns a p-grid big enough that a cancel lands mid-sweep.
func sweepPs(n int) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = float64(i) / float64(n-1)
	}
	return ps
}

// TestRunContextCancelled checks the solver-level contract: an
// already-cancelled ctx yields ctx.Err() and no partition, and the solver
// remains usable for the next (uncancelled) run.
func TestRunContextCancelled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 4})
	s := in.NewSolver()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if pt, err := s.RunContext(ctx, 0.5); !errors.Is(err, context.Canceled) || pt != nil {
		t.Fatalf("RunContext(cancelled) = (%v, %v), want (nil, context.Canceled)", pt, err)
	}

	// The scratch is reusable: the same solver must now produce the same
	// partition as a fresh one.
	got, err := s.Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := in.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signature() != want.Signature() {
		t.Error("solver reused after a cancelled run returned a different partition")
	}
}

// TestSweepCancelMidRun cancels a parallel SweepRun partway through and
// checks the three-part contract of the tentpole: the call returns
// ctx.Err() with no partial results, leaks no goroutines (the armed
// guard), and releases every pooled solver.
func TestSweepCancelMidRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 4})
	ps := sweepPs(64)

	// Measure the total number of cancellation points of a full sweep,
	// then cancel at roughly the halfway point.
	probe := newCancelAfterChecks(1 << 40)
	if _, err := in.SweepRunContext(probe, ps); err != nil {
		t.Fatal(err)
	}
	probe.cancel()

	ctx := newCancelAfterChecks(probe.Checks() / 2)
	defer ctx.cancel()
	start := time.Now()
	out, err := in.SweepRunContext(ctx, ps)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled sweep returned a partial result slice of %d entries", len(out))
	}
	// Return must be prompt: one node-level check interval, not the
	// remaining half of the sweep. The full sweep takes well under the
	// bound on any hardware; the point is that the call did not hang.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled sweep took %v to return", elapsed)
	}
	assertPoolReleased(t, in)

	// The input is unharmed: the same sweep, uncancelled, still works.
	if _, err := in.SweepRun(ps[:8]); err != nil {
		t.Fatal(err)
	}
}

// TestSignificantPsCancelMidRun is the same contract for the dichotomy
// frontier: cancel partway, expect ctx.Err(), no goroutine parked on the
// frontier cond, every solver back in the pool.
func TestSignificantPsCancelMidRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 4})

	probe := newCancelAfterChecks(1 << 40)
	want, err := in.SignificantPsContext(probe, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	probe.cancel()

	ctx := newCancelAfterChecks(probe.Checks() / 2)
	defer ctx.cancel()
	points, err := in.SignificantPsContext(ctx, 1e-3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SignificantPs returned err = %v, want context.Canceled", err)
	}
	if points != nil {
		t.Fatalf("cancelled SignificantPs returned %d points, want none", len(points))
	}
	assertPoolReleased(t, in)

	// And uncancelled, the ladder is reproduced exactly.
	again, err := in.SignificantPs(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(want) {
		t.Fatalf("ladder after a cancelled run has %d points, want %d", len(again), len(want))
	}
	for i := range again {
		if again[i] != want[i] {
			t.Fatalf("ladder point %d changed after a cancelled run: %+v vs %+v", i, again[i], want[i])
		}
	}
}

// TestAcquireSolverContextGivesUp holds the whole pool and checks a
// blocked acquire abandons the wait on cancel — the SolverPoolBound
// escape hatch — while an already-cancelled ctx fails without claiming
// anything.
func TestAcquireSolverContextGivesUp(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 1, SolverPoolBound: 2})
	s1, err := in.AcquireSolverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := in.AcquireSolverContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := in.AcquireSolverContext(ctx)
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("acquire at a full pool returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked acquire returned %v on cancel, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked acquire did not give up on cancel")
	}

	expired, cancelExpired := context.WithCancel(context.Background())
	cancelExpired()
	if s, err := in.AcquireSolverContext(expired); err == nil {
		in.ReleaseSolver(s)
		t.Fatal("already-cancelled acquire handed out a solver")
	}

	in.ReleaseSolver(s1)
	in.ReleaseSolver(s2)
	assertPoolReleased(t, in)
}

// TestContextPathsBitIdenticalToLegacy pins the compatibility guarantee:
// with a never-cancelled ctx, every ctx-aware entry point returns results
// bit-identical (float-for-float, signature-for-signature) to its legacy
// twin.
func TestContextPathsBitIdenticalToLegacy(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 4})
	ctx := context.Background()
	ps := sweepPs(17)

	legacyPt, err := in.NewSolver().Run(0.35)
	if err != nil {
		t.Fatal(err)
	}
	ctxPt, err := in.NewSolver().RunContext(ctx, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if legacyPt.Signature() != ctxPt.Signature() ||
		legacyPt.Gain != ctxPt.Gain || legacyPt.Loss != ctxPt.Loss || legacyPt.PIC != ctxPt.PIC {
		t.Error("RunContext(background) diverges from Run")
	}

	legacySweep, err := in.SweepQuality(ps)
	if err != nil {
		t.Fatal(err)
	}
	ctxSweep, err := in.SweepQualityContext(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacySweep {
		if legacySweep[i] != ctxSweep[i] {
			t.Fatalf("SweepQualityContext diverges at p=%g: %+v vs %+v", ps[i], ctxSweep[i], legacySweep[i])
		}
	}

	legacySig, err := in.SignificantPs(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ctxSig, err := in.SignificantPsContext(ctx, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacySig) != len(ctxSig) {
		t.Fatalf("SignificantPsContext found %d points, legacy %d", len(ctxSig), len(legacySig))
	}
	for i := range legacySig {
		if legacySig[i] != ctxSig[i] {
			t.Fatalf("SignificantPsContext diverges at point %d: %+v vs %+v", i, ctxSig[i], legacySig[i])
		}
	}
}

// TestCancelInjectionNeverPartial is the property test of the satellite
// list: random cancel points injected across SweepRun and SignificantPs —
// a ctx that cancels after N engine checks (solver acquisitions and node
// boundaries), N drawn uniformly over every reachable point — must always
// yield either the complete, correct result with a nil error, or
// (nil, context.Canceled). Nothing in between, under any interleaving.
func TestCancelInjectionNeverPartial(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	in := cancelTestInput(t, Options{Workers: 4})
	ps := sweepPs(12)

	wantSweep, err := in.SweepRun(ps)
	if err != nil {
		t.Fatal(err)
	}
	wantSig, err := in.SignificantPs(5e-3)
	if err != nil {
		t.Fatal(err)
	}

	probe := newCancelAfterChecks(1 << 40)
	if _, err := in.SweepRunContext(probe, ps); err != nil {
		t.Fatal(err)
	}
	sweepChecks := probe.Checks()
	probe.cancel()
	probe = newCancelAfterChecks(1 << 40)
	if _, err := in.SignificantPsContext(probe, 5e-3); err != nil {
		t.Fatal(err)
	}
	sigChecks := probe.Checks()
	probe.cancel()

	rng := rand.New(rand.NewSource(7))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		// +2 so some trials cancel only after all useful work is done.
		n := 1 + rng.Int63n(sweepChecks+2)
		ctx := newCancelAfterChecks(n)
		out, err := in.SweepRunContext(ctx, ps)
		switch {
		case err != nil:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d (cancel after %d checks): err = %v, want context.Canceled", trial, n, err)
			}
			if out != nil {
				t.Fatalf("trial %d (cancel after %d checks): error AND %d results", trial, n, len(out))
			}
		default:
			if len(out) != len(ps) {
				t.Fatalf("trial %d: success with %d/%d results", trial, len(out), len(ps))
			}
			for i, pt := range out {
				if pt == nil {
					t.Fatalf("trial %d: success with hole at index %d", trial, i)
				}
				if pt.Signature() != wantSweep[i].Signature() {
					t.Fatalf("trial %d: result %d differs from the uncancelled sweep", trial, i)
				}
			}
		}
		ctx.cancel()

		n = 1 + rng.Int63n(sigChecks+2)
		sctx := newCancelAfterChecks(n)
		points, err := in.SignificantPsContext(sctx, 5e-3)
		switch {
		case err != nil:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d (sig cancel after %d checks): err = %v, want context.Canceled", trial, n, err)
			}
			if points != nil {
				t.Fatalf("trial %d: SignificantPs error AND %d points", trial, len(points))
			}
		default:
			if len(points) != len(wantSig) {
				t.Fatalf("trial %d: ladder has %d points, want %d", trial, len(points), len(wantSig))
			}
			for i := range points {
				if points[i] != wantSig[i] {
					t.Fatalf("trial %d: ladder point %d differs: %+v vs %+v", trial, i, points[i], wantSig[i])
				}
			}
		}
		sctx.cancel()
		assertPoolReleased(t, in)
	}
}
