package core

import (
	"sync"
	"testing"
)

// sequentialReference solves every p on one sequential Solver and records
// the exact results.
func sequentialReference(t *testing.T, in *Input, ps []float64) map[float64][4]interface{} {
	t.Helper()
	ref := make(map[float64][4]interface{}, len(ps))
	s := in.NewSolver()
	s.Workers = 1
	for _, p := range ps {
		pt, err := s.Run(p)
		if err != nil {
			t.Fatalf("sequential Run(%v): %v", p, err)
		}
		ref[p] = [4]interface{}{pt.Signature(), pt.Gain, pt.Loss, pt.PIC}
	}
	return ref
}

// TestConcurrentSolversMatchSequential is the refactor's core guarantee:
// N goroutines, each with its own Solver, running distinct p values
// against one shared Input produce partitions bit-identical (signature,
// gain, loss, pIC) to a sequential pass. Run with -race to prove the
// Input is never written after construction.
func TestConcurrentSolversMatchSequential(t *testing.T) {
	m := widerModel(t, 5)
	in := NewInput(m, Options{})
	ps := []float64{0, 0.05, 0.15, 0.3, 0.45, 0.6, 0.75, 0.85, 0.95, 1}
	if len(ps) < 8 {
		t.Fatalf("need at least 8 concurrent queries, have %d", len(ps))
	}
	ref := sequentialReference(t, in, ps)

	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		errs := make([]error, len(ps))
		got := make([][4]interface{}, len(ps))
		for i, p := range ps {
			wg.Add(1)
			go func(i int, p float64) {
				defer wg.Done()
				pt, err := in.NewSolver().Run(p)
				if err != nil {
					errs[i] = err
					return
				}
				got[i] = [4]interface{}{pt.Signature(), pt.Gain, pt.Loss, pt.PIC}
			}(i, p)
		}
		wg.Wait()
		for i, p := range ps {
			if errs[i] != nil {
				t.Fatalf("round %d concurrent Run(%v): %v", round, p, errs[i])
			}
			if got[i] != ref[p] {
				t.Errorf("round %d p=%v: concurrent result differs from sequential\n got %v\nwant %v",
					round, p, got[i], ref[p])
			}
		}
	}
}

// TestSolverReuseAcrossPs: one Solver answering many p values in sequence
// (scratch reuse) matches fresh Solvers per query.
func TestSolverReuseAcrossPs(t *testing.T) {
	m := widerModel(t, 6)
	in := NewInput(m, Options{Workers: 1})
	ps := []float64{0.9, 0.1, 0.5, 0.1, 0.9, 0.3}
	reused := in.NewSolver()
	for _, p := range ps {
		a, err := reused.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := in.NewSolver().Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Signature() != b.Signature() || a.PIC != b.PIC {
			t.Errorf("p=%v: reused solver diverges from fresh solver", p)
		}
	}
}

// TestSweepRunMatchesSequential: the parallel sweep returns, in order, the
// exact partitions of a sequential pass.
func TestSweepRunMatchesSequential(t *testing.T) {
	m := widerModel(t, 7)
	in := NewInput(m, Options{Workers: 8})
	ps := []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
	ref := sequentialReference(t, in, ps)
	pts, err := in.SweepRun(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		got := [4]interface{}{pts[i].Signature(), pts[i].Gain, pts[i].Loss, pts[i].PIC}
		if got != ref[p] {
			t.Errorf("p=%v: sweep result differs from sequential", p)
		}
	}
	if _, err := in.SweepRun([]float64{0.5, 2}); err == nil {
		t.Error("SweepRun accepted p out of range")
	}
}

// TestSweepQualityMatchesQuality: the parallel quality sweep returns, in
// order, exactly what per-p Quality calls report.
func TestSweepQualityMatchesQuality(t *testing.T) {
	m := widerModel(t, 10)
	in := NewInput(m, Options{Workers: 4})
	ps := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	qs, err := in.SweepQuality(ps)
	if err != nil {
		t.Fatal(err)
	}
	s := in.NewSolver()
	s.Workers = 1
	for i, p := range ps {
		want, err := s.Quality(p)
		if err != nil {
			t.Fatal(err)
		}
		if qs[i] != want {
			t.Errorf("p=%v: sweep quality %+v, sequential %+v", p, qs[i], want)
		}
	}
	if _, err := in.SweepQuality([]float64{-1}); err == nil {
		t.Error("SweepQuality accepted p out of range")
	}
}

// TestSignificantPsParallelMatchesSequential is the regression guard for
// the parallelized dichotomy: the returned point set (p values,
// signatures, measures) must be exactly the sequential exploration's.
func TestSignificantPsParallelMatchesSequential(t *testing.T) {
	m := widerModel(t, 8)
	seq := NewInput(m, Options{Workers: 1})
	par := NewInput(m, Options{Workers: 8})
	a, err := seq.SignificantPs(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.SignificantPs(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) < 2 {
		t.Fatalf("only %d significant points; model too trivial for the regression", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("point count differs: sequential %d, parallel %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs:\nsequential %+v\nparallel   %+v", i, a[i], b[i])
		}
	}
}

// TestAggregatorFacadeConcurrentRuns: the compatibility facade pools
// solvers, so concurrent Run calls on one Aggregator are safe and agree
// with the sequential answers.
func TestAggregatorFacadeConcurrentRuns(t *testing.T) {
	m := widerModel(t, 9)
	agg := New(m, Options{})
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9}
	ref := sequentialReference(t, agg.Input, ps)
	var wg sync.WaitGroup
	for _, p := range ps {
		wg.Add(1)
		go func(p float64) {
			defer wg.Done()
			pt, err := agg.Run(p)
			if err != nil {
				t.Errorf("Run(%v): %v", p, err)
				return
			}
			if got := [4]interface{}{pt.Signature(), pt.Gain, pt.Loss, pt.PIC}; got != ref[p] {
				t.Errorf("p=%v: facade concurrent result differs from sequential", p)
			}
		}(p)
	}
	wg.Wait()
}
