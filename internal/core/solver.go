package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ocelotl/internal/measures"
	"ocelotl/internal/partition"
)

// Solver owns the mutable per-query state of Algorithm 1: the pIC and cut
// triangular matrices for one optimization run. A Solver only ever reads
// its Input, so any number of Solvers run concurrently against one shared
// Input — this is the paper's interactivity model taken to multi-core:
// build the input once, answer every p in parallel.
//
// A single Solver is NOT safe for concurrent use of itself (Run reuses its
// scratch); create one Solver per in-flight query, or use the Aggregator
// facade, which pools them.
type Solver struct {
	in  *Input
	pic []float64
	cut []int32

	// Lane arenas of the fused multi-p path (RunMany): one K-wide strip of
	// pIC/cut state per triangle cell. Grown on first fused use, retained
	// like the single-p scratch; see fused.go.
	lanePic []float64
	laneCut []int32
	// pooled marks solvers created through the Input's bounded pool, whose
	// retained scratch (lanes included) counts toward Input.MemoryBytes.
	pooled bool

	// Workers caps Algorithm 1's parallelism across independent sibling
	// subtrees within this one run (default: the Input's worker setting;
	// 1 forces the sequential path). Results are bit-identical for any
	// value. The p-sweeps set this to 1 because cross-query parallelism
	// already saturates the pool.
	Workers int
}

// NewSolver allocates a Solver (the O(|H(S)|·|T|²) pIC/cut scratch) bound
// to this input.
func (in *Input) NewSolver() *Solver {
	return &Solver{
		in:      in,
		pic:     make([]float64, len(in.gain)),
		cut:     make([]int32, len(in.gain)),
		Workers: in.workers,
	}
}

// Run executes Algorithm 1 for trade-off ratio p ∈ [0,1] and returns the
// optimal partition, with its total gain, loss and pIC. Ties are resolved
// in favor of aggregation (strict improvement is required to cut), exactly
// as in the paper's pseudocode.
func (s *Solver) Run(p float64) (*partition.Partition, error) {
	return s.RunContext(context.Background(), p)
}

// RunContext is Run with cooperative cancellation: ctx is checked once per
// hierarchy node before its triangular iteration (the O(|T|²·|T|) unit of
// work), so a cancelled query returns ctx.Err() within one node's worth of
// computation — and, in the parallel path, after every in-flight subtree
// goroutine has been joined, so no work outlives the call. A cancelled run
// returns no partition; the solver's scratch is left in an undefined state
// but is fully overwritten by the next run, so the solver stays reusable
// (and poolable). With a never-cancelled ctx the computation is
// bit-identical to Run.
func (s *Solver) RunContext(ctx context.Context, p float64) (*partition.Partition, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("core: p = %v out of [0,1]", p)
	}
	ep := s.in.effectiveP(p)
	iterate := func(id int) { s.iterateCells(id, ep) }
	if s.Workers > 1 {
		sem := make(chan struct{}, s.Workers)
		s.walkParallel(ctx, s.in.rootID, sem, iterate)
	} else {
		s.walk(ctx, s.in.rootID, iterate)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pt := &partition.Partition{P: p}
	s.recover(s.in.rootID, 0, s.in.T-1, pt)
	pt.PIC = measures.PIC(ep, pt.Gain, pt.Loss)
	pt.Sort()
	return pt, nil
}

// Quality runs the algorithm at p and summarizes the result.
func (s *Solver) Quality(p float64) (QualityPoint, error) {
	return s.QualityContext(context.Background(), p)
}

// QualityContext is Quality with cooperative cancellation (see RunContext).
func (s *Solver) QualityContext(ctx context.Context, p float64) (QualityPoint, error) {
	pt, err := s.RunContext(ctx, p)
	if err != nil {
		return QualityPoint{}, err
	}
	return qualityOf(p, pt), nil
}

// walkParallel runs iterate over the hierarchy with sibling subtrees
// processed concurrently: a node's triangular iteration only reads its
// children's completed pIC matrices, so the tree decomposes into
// independent tasks joined bottom-up. The semaphore caps in-flight
// goroutines; results are identical to the sequential pass. Cancellation
// is checked per node: a cancelled ctx stops descending and skips the
// iteration, but every spawned goroutine is still joined before
// returning. Both the single-p kernel (iterateCells at a fixed p) and the
// fused multi-p kernel (iterateCellsLanes) run through this traversal.
func (s *Solver) walkParallel(ctx context.Context, id int, sem chan struct{}, iterate func(id int)) {
	if ctx.Err() != nil {
		return
	}
	children := s.in.meta[id].children
	if len(children) > 1 {
		var wg sync.WaitGroup
		for _, c := range children {
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(c int32) {
					defer wg.Done()
					defer func() { <-sem }()
					s.walkParallel(ctx, int(c), sem, iterate)
				}(c)
			default:
				// Pool saturated: recurse inline rather than queue.
				s.walkParallel(ctx, int(c), sem, iterate)
			}
		}
		wg.Wait()
	} else {
		for _, c := range children {
			s.walkParallel(ctx, int(c), sem, iterate)
		}
	}
	if ctx.Err() != nil {
		return
	}
	iterate(id)
}

// walk is the sequential traversal of procedure
// node.COMPUTEOPTIMALPARTITION(p) of Algorithm 1: children first (spatial
// recursion), then the node's triangular iteration — single-p or fused —
// from the last line to the first, evaluating for each cell the "no cut",
// "spatial cut" and every "temporal cut" alternative. The context is
// checked once per node, bounding the latency of a cancel to one
// triangular iteration.
func (s *Solver) walk(ctx context.Context, id int, iterate func(id int)) {
	if ctx.Err() != nil {
		return
	}
	for _, c := range s.in.meta[id].children {
		s.walk(ctx, int(c), iterate)
	}
	if ctx.Err() != nil {
		return
	}
	iterate(id)
}

// iterateCells is the triangular iteration of Algorithm 1 for one node,
// assuming every child's pIC matrix is already computed. The temporal-cut
// scan keeps the right-interval index as a running offset (triIndex is an
// affine walk along a fixed j), so the inner loop is add-compare only.
func (s *Solver) iterateCells(id int, p float64) {
	in := s.in
	T := in.T
	q := 1 - p
	off := in.offs[id]
	gain := in.gain[off : off+in.cells]
	loss := in.loss[off : off+in.cells]
	pic := s.pic[off : off+in.cells]
	cuts := s.cut[off : off+in.cells]
	childOffs := in.meta[id].childOffs
	for i := T - 1; i >= 0; i-- {
		base := i*T - i*(i-1)/2  // triIndex(i, i)
		nextBase := base + T - i // triIndex(i+1, i+1)
		rowPic := pic[base:]
		for j := i; j < T; j++ {
			idx := base + (j - i)
			best := p*gain[idx] - q*loss[idx] // no cut
			bestCut := int32(j)
			if len(childOffs) > 0 { // spatial cut?
				var sum float64
				for _, co := range childOffs {
					sum += s.pic[co+idx]
				}
				if improves(sum, best) {
					best, bestCut = sum, CutSpatial
				}
			}
			// Temporal cuts: left part pic[(i,cut)] is rowPic[cut-i];
			// right part pic[(cut+1,j)] starts at triIndex(i+1, j) =
			// nextBase + (j-i-1) and advances by T-cut-2 per step of cut.
			rIdx := nextBase + (j - i - 1)
			for cut := i; cut < j; cut++ {
				if v := rowPic[cut-i] + pic[rIdx]; improves(v, best) {
					best, bestCut = v, int32(cut)
				}
				rIdx += T - cut - 2
			}
			pic[idx], cuts[idx] = best, bestCut
		}
	}
}

// recover walks the sequence of cuts from (node, [i,j]) down to the
// aggregates of the optimal partition, accumulating gain/loss totals.
func (s *Solver) recover(id, i, j int, pt *partition.Partition) {
	in := s.in
	idx := in.offs[id] + in.triIndex(i, j)
	switch c := s.cut[idx]; {
	case c == int32(j): // aggregate of the partition
		pt.Areas = append(pt.Areas, partition.Area{Node: in.meta[id].node, I: i, J: j})
		pt.Gain += in.gain[idx]
		pt.Loss += in.loss[idx]
	case c == CutSpatial:
		for _, child := range in.meta[id].children {
			s.recover(int(child), i, j, pt)
		}
	default: // temporal cut at c
		s.recover(id, i, int(c), pt)
		s.recover(id, int(c)+1, j, pt)
	}
}
