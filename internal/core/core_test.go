package core

import (
	"math"
	"math/rand"
	"testing"

	"ocelotl/internal/exhaustive"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
	"ocelotl/internal/timeslice"
)

// buildModel creates a model over the given hierarchy paths with X states
// and T slices of one second each, filled by fn(x, s, t) returning the
// proportion of slice t spent by resource s in state x. Proportions across
// states need not sum to 1 (idle time is allowed).
func buildModel(t *testing.T, paths []string, states []string, T int, fn func(x, s, t int) float64) *microscopic.Model {
	t.Helper()
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		t.Fatalf("hierarchy: %v", err)
	}
	sl, err := timeslice.New(0, float64(T), T)
	if err != nil {
		t.Fatalf("slicer: %v", err)
	}
	m := microscopic.NewEmpty(h, sl, states)
	for x := range states {
		for s := 0; s < h.NumLeaves(); s++ {
			for ti := 0; ti < T; ti++ {
				m.AddD(x, s, ti, fn(x, s, ti))
			}
		}
	}
	return m
}

var paths2x2 = []string{"A/a0", "A/a1", "B/b0", "B/b1"}

// randomModel2 builds a 2-state model where state shares sum to <= 1.
func randomModel2(t *testing.T, rng *rand.Rand, paths []string, T int) *microscopic.Model {
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		t.Fatalf("hierarchy: %v", err)
	}
	sl, _ := timeslice.New(0, float64(T), T)
	m := microscopic.NewEmpty(h, sl, []string{"u", "v"})
	for s := 0; s < h.NumLeaves(); s++ {
		for ti := 0; ti < T; ti++ {
			a := rng.Float64()
			b := rng.Float64() * (1 - a)
			m.AddD(0, s, ti, a)
			m.AddD(1, s, ti, b)
		}
	}
	return m
}

// bruteBest scores a pre-enumerated set of candidate partitions at ratio p
// using per-area gain/loss computed once from first principles.
func bruteBest(m *microscopic.Model, enumerated [][]partition.Area, p float64) float64 {
	type gl struct{ g, l float64 }
	cache := make(map[partition.Area]gl)
	score := func(ar partition.Area) gl {
		if v, ok := cache[ar]; ok {
			return v
		}
		g, l := exhaustive.AreaGainLoss(m, ar)
		v := gl{g, l}
		cache[ar] = v
		return v
	}
	best := math.Inf(-1)
	for _, areas := range enumerated {
		var v float64
		for _, ar := range areas {
			s := score(ar)
			v += p*s.g - (1-p)*s.l
		}
		if v > best {
			best = v
		}
	}
	return best
}

func TestOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1}
	for trial := 0; trial < 8; trial++ {
		m := randomModel2(t, rng, paths2x2, 3)
		agg := New(m, Options{})
		enumerated := exhaustive.EnumerateSpatiotemporal(m.H.Root, 0, m.NumSlices()-1, 0)
		for _, p := range ps {
			pt, err := agg.Run(p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			want := bruteBest(m, enumerated, p)
			if math.Abs(pt.PIC-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("trial %d p=%.1f: core pIC %.12f, brute force %.12f", trial, p, pt.PIC, want)
			}
			// And the partition's own pIC, recomputed from first
			// principles, must equal what the algorithm reports.
			got := exhaustive.PartitionPIC(m, pt, p)
			if math.Abs(pt.PIC-got) > 1e-9*(1+math.Abs(got)) {
				t.Errorf("trial %d p=%.1f: reported pIC %.12f, first-principles %.12f", trial, p, pt.PIC, got)
			}
		}
	}
}

func TestOptimalityDeeperHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	paths := []string{"A/m0/c0", "A/m0/c1", "A/m1/c0", "B/m2/c0", "B/m2/c1"}
	for trial := 0; trial < 4; trial++ {
		m := randomModel2(t, rng, paths, 3)
		agg := New(m, Options{})
		enumerated := exhaustive.EnumerateSpatiotemporal(m.H.Root, 0, m.NumSlices()-1, 0)
		for _, p := range []float64{0.2, 0.5, 0.8} {
			pt, err := agg.Run(p)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			want := bruteBest(m, enumerated, p)
			if math.Abs(pt.PIC-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("trial %d p=%.1f: core pIC %.12f, brute force %.12f", trial, p, pt.PIC, want)
			}
		}
	}
}

func TestPartitionIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomModel2(t, rng, paths2x2, 6)
	agg := New(m, Options{})
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		pt, err := agg.Run(p)
		if err != nil {
			t.Fatalf("run(%v): %v", p, err)
		}
		if err := pt.Validate(m.H, m.NumSlices()); err != nil {
			t.Errorf("p=%v: invalid partition: %v", p, err)
		}
	}
}

func TestPZeroHasZeroLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		m := randomModel2(t, rng, paths2x2, 5)
		pt, err := New(m, Options{}).Run(0)
		if err != nil {
			t.Fatal(err)
		}
		// At p=0 the criterion is −loss; the microscopic partition has
		// loss 0, so the optimum must too.
		if pt.Loss > 1e-9 {
			t.Errorf("trial %d: p=0 partition has loss %g", trial, pt.Loss)
		}
	}
}

func TestHomogeneousModelFullyAggregates(t *testing.T) {
	m := buildModel(t, paths2x2, []string{"u", "v"}, 5, func(x, s, ti int) float64 {
		if x == 0 {
			return 0.3
		}
		return 0.6
	})
	agg := New(m, Options{})
	for _, p := range []float64{0, 0.5, 1} {
		pt, err := agg.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if !pt.IsFullAggregation(m.H, m.NumSlices()) {
			t.Errorf("p=%v: homogeneous model produced %d areas, want the single root area", p, pt.NumAreas())
		}
		if pt.Loss > 1e-9 {
			t.Errorf("p=%v: homogeneous aggregation lost %g bits", p, pt.Loss)
		}
	}
}

func TestGainLossMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := randomModel2(t, rng, paths2x2, 6)
	agg := New(m, Options{})
	prevGain, prevLoss := math.Inf(-1), math.Inf(-1)
	for p := 0.0; p <= 1.0001; p += 0.05 {
		pt, err := agg.Run(math.Min(p, 1))
		if err != nil {
			t.Fatal(err)
		}
		// Standard trade-off-curve property: as p grows, the optimal
		// partition's gain and loss are both non-decreasing.
		if pt.Gain < prevGain-1e-9 {
			t.Errorf("p=%.2f: gain decreased %.12f -> %.12f", p, prevGain, pt.Gain)
		}
		if pt.Loss < prevLoss-1e-9 {
			t.Errorf("p=%.2f: loss decreased %.12f -> %.12f", p, prevLoss, pt.Loss)
		}
		prevGain, prevLoss = pt.Gain, pt.Loss
	}
}

func TestEvaluateAreaMatchesFirstPrinciples(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomModel2(t, rng, paths2x2, 4)
	agg := New(m, Options{})
	for _, n := range m.H.Nodes {
		for i := 0; i < m.NumSlices(); i++ {
			for j := i; j < m.NumSlices(); j++ {
				ar := partition.Area{Node: n, I: i, J: j}
				g1, l1 := agg.EvaluateArea(ar)
				g2, l2 := exhaustive.AreaGainLoss(m, ar)
				if math.Abs(g1-g2) > 1e-9 || math.Abs(l1-l2) > 1e-9 {
					t.Errorf("area %v: core (g=%g,l=%g) vs exhaustive (g=%g,l=%g)", ar, g1, l1, g2, l2)
				}
			}
		}
	}
}

func TestLossNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := randomModel2(t, rng, paths2x2, 5)
	agg := New(m, Options{})
	for _, n := range m.H.Nodes {
		for i := 0; i < m.NumSlices(); i++ {
			for j := i; j < m.NumSlices(); j++ {
				_, l := agg.EvaluateArea(partition.Area{Node: n, I: i, J: j})
				if l < -1e-9 {
					t.Errorf("area (%s,[%d,%d]) has negative loss %g", n.Path, i, j, l)
				}
			}
		}
	}
}

func TestMicroAreasHaveZeroGainAndLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := randomModel2(t, rng, paths2x2, 4)
	agg := New(m, Options{})
	for _, leaf := range m.H.Leaves {
		for ti := 0; ti < m.NumSlices(); ti++ {
			g, l := agg.EvaluateArea(partition.Area{Node: leaf, I: ti, J: ti})
			if math.Abs(g) > 1e-12 || math.Abs(l) > 1e-12 {
				t.Errorf("microscopic area (%s,%d): gain=%g loss=%g, want 0,0", leaf.Path, ti, g, l)
			}
		}
	}
}

func TestDescribe(t *testing.T) {
	m := buildModel(t, paths2x2, []string{"u", "v"}, 4, func(x, s, ti int) float64 {
		if x == 0 {
			return 0.7
		}
		return 0.2
	})
	agg := New(m, Options{})
	info := agg.Describe(partition.Area{Node: m.H.Root, I: 0, J: 3})
	if info.Mode != 0 {
		t.Errorf("mode = %d, want 0", info.Mode)
	}
	if math.Abs(info.Rho[0]-0.7) > 1e-12 || math.Abs(info.Rho[1]-0.2) > 1e-12 {
		t.Errorf("rho = %v, want [0.7 0.2]", info.Rho)
	}
	wantAlpha := 0.7 / 0.9
	if math.Abs(info.Alpha-wantAlpha) > 1e-12 {
		t.Errorf("alpha = %g, want %g", info.Alpha, wantAlpha)
	}
}

func TestDescribeIdleArea(t *testing.T) {
	m := buildModel(t, paths2x2, []string{"u", "v"}, 3, func(x, s, ti int) float64 { return 0 })
	agg := New(m, Options{})
	info := agg.Describe(partition.Area{Node: m.H.Root, I: 0, J: 2})
	if info.Mode != -1 || info.Alpha != 0 {
		t.Errorf("idle area: mode=%d alpha=%g, want -1, 0", info.Mode, info.Alpha)
	}
}

func TestNormalizationReachesSamePartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m := randomModel2(t, rng, paths2x2, 5)
	plain := New(m, Options{})
	norm := New(m, Options{Normalize: true})
	// Normalization is an exact reparametrization: the normalized run at p
	// must produce the same partition as the plain run at EffectiveP(p).
	for p := 0.0; p <= 1.0; p += 0.01 {
		np, err := norm.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := plain.Run(norm.EffectiveP(p))
		if err != nil {
			t.Fatal(err)
		}
		if np.Signature() != pp.Signature() {
			t.Errorf("normalized p=%.2f (effective %.4f) differs from plain run", p, norm.EffectiveP(p))
		}
	}
	// And EffectiveP must be a monotone bijection of [0,1].
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		ep := norm.EffectiveP(p)
		if ep < prev {
			t.Errorf("EffectiveP not monotone at p=%.2f", p)
		}
		prev = ep
	}
	if norm.EffectiveP(0) != 0 || norm.EffectiveP(1) != 1 {
		t.Errorf("EffectiveP endpoints: got (%g, %g), want (0, 1)", norm.EffectiveP(0), norm.EffectiveP(1))
	}
}

func TestRunRejectsBadP(t *testing.T) {
	m := buildModel(t, paths2x2, []string{"u"}, 3, func(x, s, ti int) float64 { return 0.5 })
	agg := New(m, Options{})
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := agg.Run(p); err == nil {
			t.Errorf("Run(%v) succeeded, want error", p)
		}
	}
}

func TestSignificantPs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randomModel2(t, rng, paths2x2, 6)
	agg := New(m, Options{})
	points, err := agg.SignificantPs(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("got %d significant points, want at least microscopic + aggregated", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].P < points[i-1].P {
			t.Errorf("points not sorted: %v after %v", points[i].P, points[i-1].P)
		}
		if points[i].Signature == points[i-1].Signature {
			t.Errorf("duplicate partition at indices %d-%d", i-1, i)
		}
	}
	// Area counts should globally shrink from the first to the last point.
	if points[0].Areas <= points[len(points)-1].Areas {
		t.Errorf("expected more areas at low p (%d) than at high p (%d)", points[0].Areas, points[len(points)-1].Areas)
	}
}

func TestSingleResourceMatchesTemporalDP(t *testing.T) {
	// With a single resource the spatiotemporal problem degenerates to
	// pure temporal partitioning; cross-check against brute force over
	// interval compositions scored from first principles.
	rng := rand.New(rand.NewSource(43))
	m := randomModel2(t, rng, []string{"only"}, 6)
	agg := New(m, Options{})
	leaf := m.H.Leaves[0]
	for _, p := range []float64{0.2, 0.5, 0.8} {
		pt, err := agg.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exhaustive.BestTemporal(m.NumSlices(), func(i, j int) float64 {
			g, l := exhaustive.AreaGainLoss(m, partition.Area{Node: leaf, I: i, J: j})
			return p*g - (1-p)*l
		})
		// The root and its single leaf describe identical areas; the
		// algorithm may answer with either node, the value must match.
		if math.Abs(pt.PIC-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("p=%v: core %.12f, temporal brute force %.12f", p, pt.PIC, want)
		}
	}
}

func TestSingleSliceMatchesSpatialDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := randomModel2(t, rng, paths2x2, 1)
	agg := New(m, Options{})
	for _, p := range []float64{0.2, 0.5, 0.8} {
		pt, err := agg.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exhaustive.BestSpatial(m.H.Root, func(n *hierarchy.Node) float64 {
			g, l := exhaustive.AreaGainLoss(m, partition.Area{Node: n, I: 0, J: 0})
			return p*g - (1-p)*l
		})
		if math.Abs(pt.PIC-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("p=%v: core %.12f, spatial brute force %.12f", p, pt.PIC, want)
		}
	}
}

func TestInputCells(t *testing.T) {
	m := buildModel(t, paths2x2, []string{"u"}, 4, func(x, s, ti int) float64 { return 0.1 })
	agg := New(m, Options{})
	// 7 nodes (root + 2 clusters + 4 leaves) × T(T+1)/2 = 10 cells.
	if got, want := agg.InputCells(), 7*10; got != want {
		t.Errorf("InputCells = %d, want %d", got, want)
	}
}

func TestAggregateConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := randomModel2(t, rng, paths2x2, 4)
	pt, err := Aggregate(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(m.H, m.NumSlices()); err != nil {
		t.Errorf("invalid partition: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := randomModel2(t, rng, paths2x2, 5)
	a1, a2 := New(m, Options{}), New(m, Options{})
	p1, err := a1.Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a2.Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Signature() != p2.Signature() {
		t.Error("two aggregators over the same model disagree")
	}
	// Re-running on the same aggregator (matrix reuse) must also agree.
	p3, err := a1.Run(0.9)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := a1.Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	_ = p3
	if p4.Signature() != p1.Signature() {
		t.Error("re-running at the same p after another p changed the result")
	}
}
