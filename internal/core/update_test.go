package core

import (
	"math/rand"
	"strconv"
	"testing"

	"ocelotl/internal/microscopic"
	"ocelotl/internal/trace"
)

// windowTrace builds a trace with overlapping random events over a
// three-level hierarchy — enough structure for pans and zooms to cross
// real aggregate boundaries.
func windowTrace(rng *rand.Rand, nRes, nEv int, winEnd float64) *trace.Trace {
	paths := make([]string, nRes)
	for i := range paths {
		paths[i] = "c" + strconv.Itoa(i%3) + "/m" + strconv.Itoa(i%6) + "/r" + strconv.Itoa(i)
	}
	tr := trace.New(paths, []string{"work", "wait", "io"})
	tr.Start, tr.End = 0, winEnd
	for i := 0; i < nEv; i++ {
		s := trace.ResourceID(rng.Intn(nRes))
		x := trace.StateID(rng.Intn(3))
		start := rng.Float64() * winEnd
		dur := rng.Float64() * winEnd / 9
		tr.Add(s, x, start, start+dur)
	}
	return tr
}

// requireInputsBitIdentical asserts every observable of the incremental
// input equals the fresh one's down to the float: the gain/loss arenas,
// the slice/prefix rows, the normalization constants, and the partitions
// (with their measures) of several Run(p) queries.
func requireInputsBitIdentical(t *testing.T, got, want *Input, label string) {
	t.Helper()
	for c := range want.gain {
		if got.gain[c] != want.gain[c] || got.loss[c] != want.loss[c] {
			t.Fatalf("%s: arena cell %d: gain %v/%v loss %v/%v",
				label, c, got.gain[c], want.gain[c], got.loss[c], want.loss[c])
		}
	}
	for c := range want.slcD {
		if got.slcD[c] != want.slcD[c] || got.slcRho[c] != want.slcRho[c] || got.slcRL[c] != want.slcRL[c] {
			t.Fatalf("%s: slice row cell %d differs", label, c)
		}
	}
	for c := range want.prefD {
		if got.prefD[c] != want.prefD[c] || got.prefRho[c] != want.prefRho[c] || got.prefRL[c] != want.prefRL[c] {
			t.Fatalf("%s: prefix cell %d differs", label, c)
		}
	}
	gg, gl := got.RootGainLoss()
	wg, wl := want.RootGainLoss()
	if gg != wg || gl != wl {
		t.Fatalf("%s: RootGainLoss (%v,%v) vs (%v,%v)", label, gg, gl, wg, wl)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a, err := got.NewSolver().Run(p)
		if err != nil {
			t.Fatalf("%s: incremental Run(%v): %v", label, p, err)
		}
		b, err := want.NewSolver().Run(p)
		if err != nil {
			t.Fatalf("%s: fresh Run(%v): %v", label, p, err)
		}
		if a.Signature() != b.Signature() {
			t.Fatalf("%s: Run(%v) partitions differ:\n%s\n%s", label, p, a.Signature(), b.Signature())
		}
		if a.Gain != b.Gain || a.Loss != b.Loss || a.PIC != b.PIC {
			t.Fatalf("%s: Run(%v) measures differ: (%v,%v,%v) vs (%v,%v,%v)",
				label, p, a.Gain, a.Loss, a.PIC, b.Gain, b.Loss, b.PIC)
		}
	}
}

// TestUpdateEquivalenceRandomSequences is the incremental-equivalence
// property test: any sequence of random Pan/Zoom/Update calls yields an
// Input bit-identical to NewInput built fresh on the final window — for
// the plain and the Normalize: true path, sequentially and parallel.
func TestUpdateEquivalenceRandomSequences(t *testing.T) {
	for _, opt := range []Options{
		{Workers: 1},
		{Workers: 4},
		{Normalize: true, Workers: 1},
		{Normalize: true, Workers: 4},
	} {
		opt := opt
		name := "workers" + strconv.Itoa(opt.Workers)
		if opt.Normalize {
			name += "_normalize"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(opt.Workers)*100 + 7))
			tr := windowTrace(rng, 9, 900, 30)
			r, err := microscopic.NewReslicer(tr)
			if err != nil {
				t.Fatal(err)
			}
			const T = 12
			m, err := r.Build(microscopic.Options{Slices: T})
			if err != nil {
				t.Fatal(err)
			}
			in := NewInput(m, opt)
			for step := 0; step < 12; step++ {
				var label string
				switch op := rng.Intn(4); op {
				case 0: // pan, small or past-the-edge
					k := rng.Intn(2*T+6) - (T + 3)
					in, err = in.Pan(k)
					label = "Pan(" + strconv.Itoa(k) + ")"
				case 1: // zoom in or out, occasionally full-width (a pan)
					lo := rng.Intn(2*T) - T/2
					hi := lo + 1 + rng.Intn(T+4)
					if rng.Intn(4) == 0 {
						hi = lo + T - 1 // full width: the pan fast path
					}
					in, err = in.Zoom(lo, hi)
					label = "Zoom(" + strconv.Itoa(lo) + "," + strconv.Itoa(hi) + ")"
				case 2: // raw Update from an explicit Shift
					k := rng.Intn(7) - 3
					m2, ov := testShift(t, r, in.Model, k)
					in, err = in.Update(m2, ov), nil
					label = "Update(Shift " + strconv.Itoa(k) + ")"
				default: // arbitrary absolute window: no reusable slices
					lo := rng.Float64() * 20
					m2, ov, werr := r.Window(in.Model, lo, lo+1+rng.Float64()*15)
					if werr != nil {
						t.Fatal(werr)
					}
					in, err = in.Update(m2, ov), nil
					label = "Update(Window)"
				}
				if err != nil {
					t.Fatalf("step %d %s: %v", step, label, err)
				}
				fresh := NewInput(testBuildAt(t, r, in.Model.Slicer), opt)
				requireInputsBitIdentical(t, in, fresh,
					"step "+strconv.Itoa(step)+" "+label)
				// The incrementally produced model must itself match a full
				// fill at the same slicer (the model-layer contract Update
				// builds on).
				for x := 0; x < in.Model.NumStates(); x++ {
					g, w := in.Model.StateRow(x), fresh.Model.StateRow(x)
					for c := range w {
						if g[c] != w[c] {
							t.Fatalf("step %d %s: model d_%d cell %d differs", step, label, x, c)
						}
					}
				}
			}
		})
	}
}

// TestUpdateDegradesToRebuild: a foreign model (different hierarchy) or an
// empty overlap must still produce a correct Input.
func TestUpdateDegradesToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := windowTrace(rng, 6, 400, 10)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(m, Options{Workers: 2})

	// Empty/garbage overlaps: still bit-identical to fresh.
	m2, _ := testShift(t, r, m, 3)
	for _, ov := range []microscopic.SliceOverlap{
		{},
		{OldLo: -4, NewLo: 0, W: 5},
		{OldLo: 0, NewLo: 0, W: 99},
	} {
		got := in.Update(m2, ov)
		requireInputsBitIdentical(t, got, NewInput(m2, Options{Workers: 2}), "garbage overlap")
	}

	// A model on another hierarchy: Update must fall back to NewInput.
	tr2 := windowTrace(rng, 4, 200, 10)
	other, err := microscopic.Build(tr2, microscopic.Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := in.Update(other, microscopic.SliceOverlap{OldLo: 0, NewLo: 0, W: 8})
	if got.Model != other || got.T != 8 {
		t.Fatal("fallback rebuild lost the model")
	}
}

// TestPanZoomNeedReslicer: the convenience helpers refuse models without
// an event index instead of silently doing something expensive and wrong.
func TestPanZoomNeedReslicer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomModel2(t, rng, paths2x2, 4)
	in := NewInput(m, Options{})
	if _, err := in.Pan(1); err == nil {
		t.Error("Pan accepted a model without a reslicer")
	}
	if _, err := in.Zoom(1, 2); err == nil {
		t.Error("Zoom accepted a model without a reslicer")
	}
}

// TestUpdatePreservesOldInput: the receiver must stay valid and unchanged
// after deriving a new window from it (immutability contract).
func TestUpdatePreservesOldInput(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := windowTrace(rng, 6, 500, 12)
	r, err := microscopic.NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(microscopic.Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(m, Options{})
	before, err := in.NewSolver().Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	gainCopy := append([]float64(nil), in.gain...)
	if _, err := in.Pan(3); err != nil {
		t.Fatal(err)
	}
	for c := range gainCopy {
		if in.gain[c] != gainCopy[c] {
			t.Fatalf("Pan mutated the source input (cell %d)", c)
		}
	}
	after, err := in.NewSolver().Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if before.Signature() != after.Signature() {
		t.Fatal("source input answers changed after Pan")
	}
}
