package render

import (
	"image/color"
	"math"
)

// The paper's future work (§VI) observes that the α-transparency encoding
// interacts badly with hue: "its effect on the user is dependent on the
// colors that are employed. Solutions using different color spaces, as
// YCbCr, could be employed." This file implements that suggestion: a
// palette generator that places states on the chroma (Cb, Cr) plane at
// *constant luma*, so that the α channel — which §IV uses to encode the
// mode's share — is the only luminance-affecting variable. Two aggregates
// with the same α then have the same perceived brightness regardless of
// their state hue.

// YCbCrPalette returns n colors of equal luma, spread uniformly on a
// circle of the chroma plane. The luma (0–255) sets the shared perceived
// brightness; 170 reads well on white backgrounds.
func YCbCrPalette(n int, luma uint8) []color.RGBA {
	if n <= 0 {
		return nil
	}
	// Radius chosen so every hue stays inside the RGB gamut at mid luma
	// (B = Y + 1.772·(Cb−128) is the binding channel: 1.772·45 ≈ 80).
	const radius = 45.0
	out := make([]color.RGBA, n)
	for i := range out {
		angle := 2 * math.Pi * float64(i) / float64(n)
		cb := uint8(128 + radius*math.Cos(angle))
		cr := uint8(128 + radius*math.Sin(angle))
		r, g, b := color.YCbCrToRGB(luma, cb, cr)
		out[i] = color.RGBA{r, g, b, 0xFF}
	}
	return out
}

// Luma returns the Y (luminance) of an RGBA color under the BT.601
// weights used by image/color — the quantity YCbCrPalette equalizes.
func Luma(c color.RGBA) float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}
