package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"ocelotl/internal/trace"
)

// GanttStats quantifies the paper's Fig. 2 argument: a microscopic Gantt
// chart of a large trace is cluttered because most graphical objects fall
// below one pixel and overwrite each other.
type GanttStats struct {
	Events int
	// Drawable counts events at least one pixel wide at the given
	// viewport.
	Drawable int
	// SubPixel counts events narrower than one pixel — the rendering
	// artifacts of §I/§II ("pixelization artifacts").
	SubPixel int
	// OverdrawnPixels counts pixels painted more than once — places
	// where the pixel-guided rendering silently discards information
	// (criteria G4/G5/G6 violations of Table I).
	OverdrawnPixels int
	// RowsPerResource is the vertical budget; below 1 the spatial
	// dimension itself is under-resolved.
	RowsPerResource float64
}

// String summarizes the stats in one line.
func (g GanttStats) String() string {
	return fmt.Sprintf("events=%d drawable=%d sub-pixel=%d (%.1f%%) overdrawn-pixels=%d rows/resource=%.2f",
		g.Events, g.Drawable, g.SubPixel,
		100*float64(g.SubPixel)/math.Max(1, float64(g.Events)),
		g.OverdrawnPixels, g.RowsPerResource)
}

// Gantt rasterizes a microscopic Gantt chart of the trace at the given
// viewport and returns the clutter statistics. A nil writer skips PNG
// encoding (stats only), which is how the Fig. 2 benchmark runs.
func Gantt(tr *trace.Trace, width, height int, palette []color.RGBA, w io.Writer) (GanttStats, error) {
	if width <= 0 || height <= 0 {
		return GanttStats{}, fmt.Errorf("render: bad viewport %dx%d", width, height)
	}
	start, end := tr.Window()
	span := end - start
	if span <= 0 {
		return GanttStats{}, fmt.Errorf("render: empty trace window")
	}
	if palette == nil {
		palette = DefaultPalette(tr.States)
	}
	nRes := tr.NumResources()
	stats := GanttStats{Events: tr.NumEvents(), RowsPerResource: float64(height) / float64(nRes)}

	img := image.NewRGBA(image.Rect(0, 0, width, height))
	fill(img, 0, 0, width, height, color.RGBA{255, 255, 255, 255})
	painted := make([]uint8, width*height) // paint counts, saturating

	xOf := func(t float64) float64 { return (t - start) / span * float64(width) }
	for _, e := range tr.Events {
		x0f, x1f := xOf(e.Start), xOf(e.End)
		if x1f-x0f < 1 {
			stats.SubPixel++
		} else {
			stats.Drawable++
		}
		y0 := int(float64(e.Resource) * stats.RowsPerResource)
		y1 := int(float64(e.Resource+1) * stats.RowsPerResource)
		if y1 <= y0 {
			y1 = y0 + 1
		}
		x0, x1 := int(x0f), int(math.Ceil(x1f))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		c := palette[e.State]
		for y := y0; y < y1 && y < height; y++ {
			row := y * width
			for x := x0; x < x1 && x < width; x++ {
				if painted[row+x] == 1 {
					stats.OverdrawnPixels++
				}
				if painted[row+x] < 2 {
					painted[row+x]++
				}
				img.SetRGBA(x, y, c)
			}
		}
	}
	if w == nil {
		return stats, nil
	}
	return stats, png.Encode(w, img)
}
