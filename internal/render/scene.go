// Package render implements the paper's visualization of the aggregation
// output (§IV):
//
//   - each aggregate is a rectangle spanning its node's resources
//     (vertically) and its time interval (horizontally);
//   - the fill color encodes the state *mode* (argmax_x ρ_x) and the fill
//     opacity encodes the mode's share α = ρ_max/Σρ ∈ [1/|X|, 1];
//   - *visual aggregation* preserves the entity budget (criterion G1):
//     aggregates whose on-screen height falls below a pixel threshold are
//     replaced by their parent, marked with a diagonal line when the
//     underlying resources share the same temporal partitioning and with a
//     cross otherwise (criterion G4: visual aggregates are distinguishable
//     from data aggregates);
//   - a Gantt renderer (gantt.go) reproduces the paper's Fig. 2 clutter
//     argument by accounting drawable versus sub-pixel objects.
//
// Rendering is split in two stages: BuildScene computes a
// resolution-independent Scene (rectangles, colors, marks, counts), and
// the SVG/PNG/ASCII emitters in output.go serialize it. The split keeps
// the §IV logic testable without pixel comparisons.
package render

import (
	"fmt"
	"image/color"
	"sort"

	"ocelotl/internal/core"
	"ocelotl/internal/partition"
)

// Mark distinguishes data aggregates from the two kinds of visual
// aggregates (§IV, Fig. 3.f).
type Mark int

const (
	// MarkNone is a plain data aggregate.
	MarkNone Mark = iota
	// MarkDiagonal flags a visual aggregate whose underlying resources
	// share the same temporal data partitioning.
	MarkDiagonal
	// MarkCross flags a visual aggregate hiding heterogeneous temporal
	// partitionings.
	MarkCross
)

// String names the mark.
func (m Mark) String() string {
	switch m {
	case MarkNone:
		return "none"
	case MarkDiagonal:
		return "diagonal"
	case MarkCross:
		return "cross"
	default:
		return fmt.Sprintf("mark(%d)", int(m))
	}
}

// Rect is one drawn rectangle in scene coordinates (pixels, origin at the
// top-left, y growing downward).
type Rect struct {
	X, Y, W, H float64
	// Color is the mode state's color; Alpha the mode share used as fill
	// opacity. A Mode of -1 (idle area) renders as background.
	Color color.RGBA
	Alpha float64
	Mode  int
	Mark  Mark
	// Rho holds the aggregate's full per-state proportions (Eq. 1) — the
	// §VI "proportion of all the active states" retrieval, surfaced as
	// SVG tooltips.
	Rho []float64
	// Area is the underlying aggregate (for visual aggregates, the
	// synthesized parent extent).
	Area partition.Area
	// Visual is true when the rect replaces sub-threshold aggregates.
	Visual bool
}

// LegendEntry maps a state name to its color.
type LegendEntry struct {
	State string
	Color color.RGBA
}

// Scene is a resolution-independent description of one §IV view.
type Scene struct {
	W, H   int
	Rects  []Rect
	Legend []LegendEntry
	// DataAggregates and VisualAggregates reproduce the Fig. 3.f
	// accounting ("21 data aggregates and 7 visual aggregates").
	DataAggregates   int
	VisualAggregates int
	// HiddenAggregates counts the data aggregates that were folded into
	// visual ones.
	HiddenAggregates int
	// TimeStart/TimeEnd label the horizontal axis.
	TimeStart, TimeEnd float64
	// Tooltips enables per-rect <title> emission in SVG output.
	Tooltips bool
}

// Options tunes scene construction.
type Options struct {
	// Width and Height of the drawing area in pixels (defaults 1000×600).
	Width, Height int
	// MinHeight is the visual-aggregation threshold in pixels: data
	// aggregates drawn shorter than this are replaced by their parent
	// (default 2 px; ≤ 0 disables visual aggregation).
	MinHeight float64
	// Palette overrides the default state colors (indexed by state).
	Palette []color.RGBA
	// Tooltips adds a <title> element per SVG rectangle listing every
	// state's aggregated proportion — the paper's §VI data-retrieval
	// interaction.
	Tooltips bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 1000
	}
	if o.Height <= 0 {
		o.Height = 600
	}
	return o
}

// DefaultPalette assigns the paper's Fig. 1 colors to the common MPI
// states by name (MPI_Init yellow, MPI_Send green, MPI_Wait red) and a
// fixed categorical palette to everything else.
func DefaultPalette(states []string) []color.RGBA {
	fixed := map[string]color.RGBA{
		"MPI_Init":      {0xE6, 0xC8, 0x29, 0xFF}, // yellow
		"MPI_Send":      {0x3C, 0xA0, 0x3C, 0xFF}, // green
		"MPI_Recv":      {0x3C, 0x64, 0xC8, 0xFF}, // blue
		"MPI_Wait":      {0xC8, 0x32, 0x32, 0xFF}, // red
		"MPI_Allreduce": {0xE6, 0x7E, 0x22, 0xFF}, // orange
		"compute":       {0x9B, 0x9B, 0x9B, 0xFF}, // gray
	}
	categorical := []color.RGBA{
		{0x1F, 0x77, 0xB4, 0xFF}, {0xFF, 0x7F, 0x0E, 0xFF}, {0x2C, 0xA0, 0x2C, 0xFF},
		{0xD6, 0x27, 0x28, 0xFF}, {0x94, 0x67, 0xBD, 0xFF}, {0x8C, 0x56, 0x4B, 0xFF},
		{0xE3, 0x77, 0xC2, 0xFF}, {0x7F, 0x7F, 0x7F, 0xFF}, {0xBC, 0xBD, 0x22, 0xFF},
		{0x17, 0xBE, 0xCF, 0xFF},
	}
	out := make([]color.RGBA, len(states))
	k := 0
	for i, s := range states {
		if c, ok := fixed[s]; ok {
			out[i] = c
		} else {
			out[i] = categorical[k%len(categorical)]
			k++
		}
	}
	return out
}

// BuildScene lays out the partition solved against in at the given pixel
// budget, applying §IV's mode/α encoding and visual aggregation. It only
// reads the immutable Input, so concurrent scene builds are safe.
func BuildScene(in *core.Input, pt *partition.Partition, opt Options) *Scene {
	opt = opt.withDefaults()
	m := in.Model
	nRes, nT := m.NumResources(), m.NumSlices()
	pxPerLeaf := float64(opt.Height) / float64(nRes)
	pxPerSlice := float64(opt.Width) / float64(nT)
	palette := opt.Palette
	if palette == nil {
		palette = DefaultPalette(m.States)
	}
	sc := &Scene{
		W: opt.Width, H: opt.Height,
		TimeStart: m.Slicer.Start, TimeEnd: m.Slicer.End,
		Tooltips: opt.Tooltips,
	}
	for i, s := range m.States {
		sc.Legend = append(sc.Legend, LegendEntry{State: s, Color: palette[i]})
	}

	rectFor := func(a partition.Area, visual bool, mark Mark) Rect {
		info := in.Describe(a)
		r := Rect{
			X:      float64(a.I) * pxPerSlice,
			Y:      float64(a.Node.Lo) * pxPerLeaf,
			W:      float64(a.Slices()) * pxPerSlice,
			H:      float64(a.Leaves()) * pxPerLeaf,
			Mode:   info.Mode,
			Alpha:  info.Alpha,
			Mark:   mark,
			Rho:    info.Rho,
			Area:   a,
			Visual: visual,
		}
		if info.Mode >= 0 {
			r.Color = palette[info.Mode]
		}
		return r
	}

	// Pass 1: split areas into directly drawable and sub-threshold.
	type group struct {
		parent *partition.Area // synthesized extent (node = common ancestor)
		areas  []partition.Area
	}
	var small []partition.Area
	for _, a := range pt.Areas {
		h := float64(a.Leaves()) * pxPerLeaf
		if opt.MinHeight > 0 && h < opt.MinHeight {
			small = append(small, a)
			continue
		}
		sc.Rects = append(sc.Rects, rectFor(a, false, MarkNone))
		sc.DataAggregates++
	}

	// Pass 2: group sub-threshold areas under their lowest ancestor tall
	// enough to draw, then decide diagonal vs cross per group.
	groups := make(map[int]*group) // ancestor node ID → group
	for _, a := range small {
		anc := a.Node
		for anc.Parent != nil && float64(anc.Size())*pxPerLeaf < opt.MinHeight {
			anc = anc.Parent
		}
		g, ok := groups[anc.ID]
		if !ok {
			g = &group{parent: &partition.Area{Node: anc, I: a.I, J: a.J}}
			groups[anc.ID] = g
		}
		if a.I < g.parent.I {
			g.parent.I = a.I
		}
		if a.J > g.parent.J {
			g.parent.J = a.J
		}
		g.areas = append(g.areas, a)
	}
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		g := groups[id]
		sc.HiddenAggregates += len(g.areas)
		if sameTemporalPartition(g.areas) {
			// One visual aggregate per shared interval, diagonal mark.
			ivs := intervalsOf(g.areas)
			for _, iv := range ivs {
				a := partition.Area{Node: g.parent.Node, I: iv[0], J: iv[1]}
				sc.Rects = append(sc.Rects, rectFor(a, true, MarkDiagonal))
				sc.VisualAggregates++
			}
		} else {
			sc.Rects = append(sc.Rects, rectFor(*g.parent, true, MarkCross))
			sc.VisualAggregates++
		}
	}
	return sc
}

// sameTemporalPartition reports whether every resource covered by the
// areas has the same multiset of interval bounds — §IV's diagonal-vs-cross
// criterion.
func sameTemporalPartition(areas []partition.Area) bool {
	perLeaf := make(map[int][][2]int)
	for _, a := range areas {
		for s := a.Node.Lo; s < a.Node.Hi; s++ {
			perLeaf[s] = append(perLeaf[s], [2]int{a.I, a.J})
		}
	}
	var ref [][2]int
	first := true
	for _, ivs := range perLeaf {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		if first {
			ref = ivs
			first = false
			continue
		}
		if len(ivs) != len(ref) {
			return false
		}
		for i := range ivs {
			if ivs[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// intervalsOf returns the sorted distinct intervals present in the areas.
func intervalsOf(areas []partition.Area) [][2]int {
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, a := range areas {
		iv := [2]int{a.I, a.J}
		if !seen[iv] {
			seen[iv] = true
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
