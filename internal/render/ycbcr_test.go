package render

import (
	"bytes"
	"image/color"
	"math"
	"strings"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
)

func TestYCbCrPaletteEqualLuma(t *testing.T) {
	for _, n := range []int{2, 3, 6, 10} {
		pal := YCbCrPalette(n, 170)
		if len(pal) != n {
			t.Fatalf("n=%d: got %d colors", n, len(pal))
		}
		base := Luma(pal[0])
		for i, c := range pal {
			// RGB quantization wobbles luma by a few units; the §VI
			// goal is equal *perceived* brightness, so a tight bound.
			if math.Abs(Luma(c)-base) > 6 {
				t.Errorf("n=%d color %d: luma %.1f vs %.1f", n, i, Luma(c), base)
			}
		}
	}
}

func TestYCbCrPaletteDistinct(t *testing.T) {
	pal := YCbCrPalette(6, 170)
	for i := range pal {
		for j := i + 1; j < len(pal); j++ {
			dr := int(pal[i].R) - int(pal[j].R)
			dg := int(pal[i].G) - int(pal[j].G)
			db := int(pal[i].B) - int(pal[j].B)
			if dr*dr+dg*dg+db*db < 900 { // distance ≥ 30
				t.Errorf("colors %d and %d too close: %v vs %v", i, j, pal[i], pal[j])
			}
		}
	}
}

func TestYCbCrPaletteDegenerate(t *testing.T) {
	if YCbCrPalette(0, 170) != nil {
		t.Error("n=0 should yield nil")
	}
	if got := YCbCrPalette(1, 170); len(got) != 1 {
		t.Errorf("n=1 gave %d colors", len(got))
	}
}

func TestLumaWeights(t *testing.T) {
	if got := Luma(color.RGBA{255, 255, 255, 255}); math.Abs(got-255) > 1e-9 {
		t.Errorf("white luma = %g", got)
	}
	if got := Luma(color.RGBA{0, 0, 0, 255}); got != 0 {
		t.Errorf("black luma = %g", got)
	}
	// Green dominates perceived brightness.
	if Luma(color.RGBA{0, 200, 0, 255}) <= Luma(color.RGBA{200, 0, 0, 255}) {
		t.Error("green should be brighter than red at equal channel value")
	}
}

func TestSceneWithYCbCrPalette(t *testing.T) {
	tr := mpisim.Artificial()
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.4)
	if err != nil {
		t.Fatal(err)
	}
	sc := BuildScene(in, pt, Options{Palette: YCbCrPalette(m.NumStates(), 170)})
	for _, r := range sc.Rects {
		if r.Mode >= 0 && r.Color == (color.RGBA{}) {
			t.Fatal("palette not applied")
		}
	}
}

func TestSVGTooltips(t *testing.T) {
	tr := mpisim.Artificial()
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sc := BuildScene(in, pt, Options{Tooltips: true})
	var buf bytes.Buffer
	if err := sc.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if got := strings.Count(s, "<title>"); got != len(sc.Rects) {
		t.Errorf("SVG has %d tooltips for %d rects", got, len(sc.Rects))
	}
	if !strings.Contains(s, "busy:") || !strings.Contains(s, "idle:") {
		t.Error("tooltips missing state proportions")
	}
	// Off by default.
	plain := BuildScene(in, pt, Options{})
	buf.Reset()
	if err := plain.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<title>") {
		t.Error("tooltips emitted without the option")
	}
}

func TestTooltipTextContents(t *testing.T) {
	tr := mpisim.Artificial()
	m, _ := microscopic.Build(tr, microscopic.Options{Slices: 20})
	in := core.NewInput(m, core.Options{})
	pt, _ := in.NewSolver().Run(0.5)
	sc := BuildScene(in, pt, Options{Tooltips: true})
	txt := tooltipText(sc, sc.Rects[0])
	if !strings.Contains(txt, sc.Rects[0].Area.String()) {
		t.Errorf("tooltip %q missing area label", txt)
	}
	if !strings.Contains(txt, "%") {
		t.Errorf("tooltip %q missing proportions", txt)
	}
}
