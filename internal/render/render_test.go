package render

import (
	"bytes"
	"image/color"
	"image/png"
	"strings"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/partition"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

// artificialScene builds a scene from the Fig. 3 artificial trace.
func artificialScene(t *testing.T, p float64, opt Options) (*core.Input, *partition.Partition, *Scene) {
	t.Helper()
	tr := mpisim.Artificial()
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInput(m, core.Options{})
	pt, err := in.NewSolver().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return in, pt, BuildScene(in, pt, opt)
}

func TestSceneCoversAllAggregates(t *testing.T) {
	_, pt, sc := artificialScene(t, 0.5, Options{Width: 800, Height: 480})
	// No visual aggregation at 40 px per resource: every aggregate drawn.
	if sc.DataAggregates != pt.NumAreas() {
		t.Errorf("data aggregates = %d, partition has %d", sc.DataAggregates, pt.NumAreas())
	}
	if sc.VisualAggregates != 0 || sc.HiddenAggregates != 0 {
		t.Errorf("unexpected visual aggregation: %d visual, %d hidden", sc.VisualAggregates, sc.HiddenAggregates)
	}
	if len(sc.Rects) != pt.NumAreas() {
		t.Errorf("rects = %d", len(sc.Rects))
	}
}

func TestSceneGeometryWithinBounds(t *testing.T) {
	_, _, sc := artificialScene(t, 0.4, Options{Width: 640, Height: 360})
	for _, r := range sc.Rects {
		if r.X < -1e-9 || r.Y < -1e-9 || r.X+r.W > float64(sc.W)+1e-9 || r.Y+r.H > float64(sc.H)+1e-9 {
			t.Errorf("rect out of bounds: %+v", r)
		}
		if r.W <= 0 || r.H <= 0 {
			t.Errorf("degenerate rect: %+v", r)
		}
	}
}

func TestSceneAlphaRange(t *testing.T) {
	_, _, sc := artificialScene(t, 0.5, Options{})
	for _, r := range sc.Rects {
		if r.Mode >= 0 && (r.Alpha < 0.5-1e-9 || r.Alpha > 1+1e-9) {
			// Two states → α ∈ [1/2, 1] per §IV.
			t.Errorf("alpha %g outside [1/2,1] for rect %+v", r.Alpha, r.Area)
		}
	}
}

func TestVisualAggregationTriggers(t *testing.T) {
	// 12 resources on a 24-px-high canvas = 2 px per resource; a 5-px
	// threshold forces leaf-level aggregates to fold into parents.
	_, pt, sc := artificialScene(t, 0.3, Options{Width: 400, Height: 24, MinHeight: 5})
	if sc.VisualAggregates == 0 {
		t.Fatalf("no visual aggregation at 2 px/resource (partition had %d areas)", pt.NumAreas())
	}
	if sc.HiddenAggregates == 0 {
		t.Error("visual aggregates exist but nothing hidden")
	}
	// Every visual rect carries a mark.
	for _, r := range sc.Rects {
		if r.Visual && r.Mark == MarkNone {
			t.Errorf("visual aggregate without mark: %+v", r.Area)
		}
		if !r.Visual && r.Mark != MarkNone {
			t.Errorf("data aggregate with mark: %+v", r.Area)
		}
	}
	// Accounting: data + hidden = partition areas.
	if sc.DataAggregates+sc.HiddenAggregates != pt.NumAreas() {
		t.Errorf("accounting broken: %d data + %d hidden != %d areas",
			sc.DataAggregates, sc.HiddenAggregates, pt.NumAreas())
	}
}

func TestDiagonalVsCrossMarks(t *testing.T) {
	// Hand-build a hierarchy and partitions to pin the §IV mark rule.
	h, err := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1"})
	if err != nil {
		t.Fatal(err)
	}
	sl, _ := timeslice.New(0, 4, 4)
	m := microscopic.NewEmpty(h, sl, []string{"x", "y"})
	for s := 0; s < 4; s++ {
		for ti := 0; ti < 4; ti++ {
			m.AddD(0, s, ti, 0.5)
		}
	}
	in := core.NewInput(m, core.Options{})
	// Same temporal partitioning within A → diagonal.
	same := &partition.Partition{Areas: []partition.Area{
		{Node: h.ByPath["A/a0"], I: 0, J: 1}, {Node: h.ByPath["A/a0"], I: 2, J: 3},
		{Node: h.ByPath["A/a1"], I: 0, J: 1}, {Node: h.ByPath["A/a1"], I: 2, J: 3},
		{Node: h.ByPath["B"], I: 0, J: 3},
	}}
	// 4 resources on 4 px → 1 px per leaf; threshold 3 px: clusters
	// (2 px) are still too small, so everything folds to the root
	// (4 px). Within that group A's resources are cut at t=1 but B's
	// are not → heterogeneous partitionings → a cross mark.
	scSame := BuildScene(in, same, Options{Width: 100, Height: 4, MinHeight: 3})
	rootCross := false
	for _, r := range scSame.Rects {
		if r.Visual && r.Mark == MarkCross {
			rootCross = true
		}
	}
	if !rootCross {
		t.Error("root-level visual aggregate should carry a cross: A is cut at t=1, B is not")
	}
	// With 8 px height the 2-leaf clusters are tall enough (4 px ≥ 3):
	// each group is now internally homogeneous → diagonals only.
	scA := BuildScene(in, same, Options{Width: 100, Height: 8, MinHeight: 3})
	var diag, cross int
	for _, r := range scA.Rects {
		switch r.Mark {
		case MarkDiagonal:
			diag++
		case MarkCross:
			cross++
		}
	}
	if diag == 0 {
		t.Errorf("no diagonal marks for identical temporal partitionings (diag=%d cross=%d)", diag, cross)
	}
	if cross != 0 {
		t.Errorf("cross marks despite identical partitionings within each group (diag=%d cross=%d)", diag, cross)
	}

	// Different temporal partitioning within A → cross.
	diff := &partition.Partition{Areas: []partition.Area{
		{Node: h.ByPath["A/a0"], I: 0, J: 1}, {Node: h.ByPath["A/a0"], I: 2, J: 3},
		{Node: h.ByPath["A/a1"], I: 0, J: 3},
		{Node: h.ByPath["B"], I: 0, J: 3},
	}}
	scDiff := BuildScene(in, diff, Options{Width: 100, Height: 8, MinHeight: 3})
	foundCross := false
	for _, r := range scDiff.Rects {
		if r.Mark == MarkCross {
			foundCross = true
		}
	}
	if !foundCross {
		t.Error("no cross mark for heterogeneous temporal partitionings")
	}
}

func TestSVGWellFormed(t *testing.T) {
	_, _, sc := artificialScene(t, 0.5, Options{Width: 300, Height: 200})
	var buf bytes.Buffer
	if err := sc.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Error("SVG not delimited")
	}
	if strings.Count(s, "<rect") < len(sc.Rects) {
		t.Errorf("SVG has %d rects, scene has %d", strings.Count(s, "<rect"), len(sc.Rects))
	}
	for _, le := range sc.Legend {
		if !strings.Contains(s, le.State) {
			t.Errorf("legend entry %q missing", le.State)
		}
	}
	if !strings.Contains(s, "text-anchor") {
		t.Error("no axis labels")
	}
}

func TestPNGDecodes(t *testing.T) {
	_, _, sc := artificialScene(t, 0.5, Options{Width: 200, Height: 120})
	var buf bytes.Buffer
	if err := sc.PNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("PNG does not decode: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 200 || b.Dy() != 120 {
		t.Errorf("PNG size %dx%d", b.Dx(), b.Dy())
	}
	// Not all white: something was drawn.
	allWhite := true
	for y := b.Min.Y; y < b.Max.Y && allWhite; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := img.At(x, y).RGBA()
			if r != 0xFFFF || g != 0xFFFF || bb != 0xFFFF {
				allWhite = false
				break
			}
		}
	}
	if allWhite {
		t.Error("PNG is blank")
	}
}

func TestASCIIOutput(t *testing.T) {
	_, _, sc := artificialScene(t, 0.5, Options{Width: 300, Height: 120})
	s := sc.ASCII(12, 40)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 13 { // 12 rows + legend
		t.Fatalf("ASCII has %d lines", len(lines))
	}
	for i := 0; i < 12; i++ {
		if len(lines[i]) != 40 {
			t.Errorf("row %d width %d", i, len(lines[i]))
		}
	}
	if !strings.Contains(lines[12], "busy") || !strings.Contains(lines[12], "idle") {
		t.Errorf("legend line %q", lines[12])
	}
	// Defaults don't panic.
	if sc.ASCII(0, 0) == "" {
		t.Error("default ASCII empty")
	}
}

func TestDefaultPaletteStableAndDistinct(t *testing.T) {
	states := mpisim.StateNames
	p1 := DefaultPalette(states)
	p2 := DefaultPalette(states)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("palette not deterministic")
		}
	}
	seen := map[color.RGBA]bool{}
	for _, c := range p1 {
		if seen[c] {
			t.Errorf("duplicate color %v", c)
		}
		seen[c] = true
	}
	// MPI_Wait must be red-ish, MPI_Send green-ish (Fig. 1).
	wait := p1[mpisim.StateWait]
	if !(wait.R > wait.G && wait.R > wait.B) {
		t.Errorf("MPI_Wait color %v not red-dominant", wait)
	}
	send := p1[mpisim.StateSend]
	if !(send.G > send.R && send.G > send.B) {
		t.Errorf("MPI_Send color %v not green-dominant", send)
	}
}

func TestGanttStats(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 200000})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Gantt(res.Trace, 1000, 600, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != res.Trace.NumEvents() {
		t.Errorf("events = %d, want %d", stats.Events, res.Trace.NumEvents())
	}
	if stats.Drawable+stats.SubPixel != stats.Events {
		t.Errorf("drawable %d + subpixel %d != events %d", stats.Drawable, stats.SubPixel, stats.Events)
	}
	// 50k events over 1000 px × 64 rows: most events must be sub-pixel —
	// the Fig. 2 clutter argument.
	if stats.SubPixel < stats.Events/2 {
		t.Errorf("only %d of %d events sub-pixel; expected clutter", stats.SubPixel, stats.Events)
	}
	if stats.OverdrawnPixels == 0 {
		t.Error("no overdraw on a cluttered Gantt")
	}
	if s := stats.String(); !strings.Contains(s, "sub-pixel") {
		t.Errorf("String() = %q", s)
	}
}

func TestGanttPNG(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Gantt(res.Trace, 400, 200, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatalf("Gantt PNG invalid: %v", err)
	}
}

func TestGanttRejectsBadInput(t *testing.T) {
	tr := trace.New([]string{"r"}, []string{"x"})
	if _, err := Gantt(tr, 0, 100, nil, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Gantt(tr, 100, 100, nil, nil); err == nil {
		t.Error("empty window accepted")
	}
}

func TestMarkString(t *testing.T) {
	if MarkNone.String() != "none" || MarkDiagonal.String() != "diagonal" || MarkCross.String() != "cross" {
		t.Error("mark names wrong")
	}
	if !strings.HasPrefix(Mark(9).String(), "mark(") {
		t.Error("unknown mark String")
	}
}
