package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strings"
)

// SVG serializes the scene as a standalone SVG document: one <rect> per
// aggregate (fill = mode color, fill-opacity = α), diagonal/cross mark
// lines for visual aggregates, a bottom time axis and a state legend.
func (sc *Scene) SVG(w io.Writer) error {
	const legendH = 28
	const axisH = 22
	total := sc.H + axisH + legendH
	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		sc.W, total, sc.W, total); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", sc.W, total)
	for _, r := range sc.Rects {
		if r.Mode < 0 {
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="#888" stroke-width="0.5"/>`+"\n",
				r.X, r.Y, r.W, r.H)
			continue
		}
		if sc.Tooltips && len(r.Rho) > 0 {
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.3f" stroke="#333" stroke-width="0.5">`,
				r.X, r.Y, r.W, r.H, hexColor(r.Color), r.Alpha)
			fmt.Fprintf(w, "<title>%s</title></rect>\n", xmlEscape(tooltipText(sc, r)))
		} else {
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.3f" stroke="#333" stroke-width="0.5"/>`+"\n",
				r.X, r.Y, r.W, r.H, hexColor(r.Color), r.Alpha)
		}
		switch r.Mark {
		case MarkDiagonal:
			fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="black" stroke-width="1"/>`+"\n",
				r.X, r.Y+r.H, r.X+r.W, r.Y)
		case MarkCross:
			fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="black" stroke-width="1"/>`+"\n",
				r.X, r.Y+r.H, r.X+r.W, r.Y)
			fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="black" stroke-width="1"/>`+"\n",
				r.X, r.Y, r.X+r.W, r.Y+r.H)
		}
	}
	// Time axis: five labels.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		x := frac * float64(sc.W)
		tv := sc.TimeStart + frac*(sc.TimeEnd-sc.TimeStart)
		anchor := "middle"
		if i == 0 {
			anchor = "start"
		} else if i == 4 {
			anchor = "end"
		}
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="11" font-family="sans-serif" text-anchor="%s">%.3gs</text>`+"\n",
			x, sc.H+15, anchor, tv)
	}
	// Legend.
	x := 4.0
	y := sc.H + axisH + 18
	for _, le := range sc.Legend {
		fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, y-11, hexColor(le.Color))
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n", x+16, y, xmlEscape(le.State))
		x += 16 + 7.5*float64(len(le.State)) + 14
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func hexColor(c color.RGBA) string { return fmt.Sprintf("#%02x%02x%02x", c.R, c.G, c.B) }

// tooltipText lists the area and every state's aggregated proportion —
// the §VI "retrieve the proportion of all the active states" interaction.
func tooltipText(sc *Scene, r Rect) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.Area.String())
	if r.Visual {
		b.WriteString(" (visual aggregate)")
	}
	for i, rho := range r.Rho {
		name := fmt.Sprintf("state %d", i)
		if i < len(sc.Legend) {
			name = sc.Legend[i].State
		}
		fmt.Fprintf(&b, "\n%s: %.1f%%", name, 100*rho)
	}
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// PNG rasterizes the scene (white background, alpha-blended fills, 1-px
// borders, mark lines) and writes it as a PNG image.
func (sc *Scene) PNG(w io.Writer) error {
	img := image.NewRGBA(image.Rect(0, 0, sc.W, sc.H))
	fill(img, 0, 0, sc.W, sc.H, color.RGBA{255, 255, 255, 255})
	for _, r := range sc.Rects {
		x0, y0 := int(math.Round(r.X)), int(math.Round(r.Y))
		x1, y1 := int(math.Round(r.X+r.W)), int(math.Round(r.Y+r.H))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if y1 <= y0 {
			y1 = y0 + 1
		}
		if r.Mode >= 0 {
			fill(img, x0, y0, x1-x0, y1-y0, blend(r.Color, r.Alpha))
		}
		border(img, x0, y0, x1-x0, y1-y0, color.RGBA{51, 51, 51, 255})
		switch r.Mark {
		case MarkDiagonal:
			line(img, x0, y1-1, x1-1, y0, color.RGBA{0, 0, 0, 255})
		case MarkCross:
			line(img, x0, y1-1, x1-1, y0, color.RGBA{0, 0, 0, 255})
			line(img, x0, y0, x1-1, y1-1, color.RGBA{0, 0, 0, 255})
		}
	}
	return png.Encode(w, img)
}

// blend premultiplies the color against white by alpha (the SVG
// fill-opacity equivalent for an opaque canvas).
func blend(c color.RGBA, alpha float64) color.RGBA {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	mix := func(v uint8) uint8 {
		return uint8(math.Round(alpha*float64(v) + (1-alpha)*255))
	}
	return color.RGBA{mix(c.R), mix(c.G), mix(c.B), 255}
}

func fill(img *image.RGBA, x, y, w, h int, c color.RGBA) {
	b := img.Bounds()
	for yy := max(y, b.Min.Y); yy < min(y+h, b.Max.Y); yy++ {
		for xx := max(x, b.Min.X); xx < min(x+w, b.Max.X); xx++ {
			img.SetRGBA(xx, yy, c)
		}
	}
}

func border(img *image.RGBA, x, y, w, h int, c color.RGBA) {
	for xx := x; xx < x+w; xx++ {
		set(img, xx, y, c)
		set(img, xx, y+h-1, c)
	}
	for yy := y; yy < y+h; yy++ {
		set(img, x, yy, c)
		set(img, x+w-1, yy, c)
	}
}

func set(img *image.RGBA, x, y int, c color.RGBA) {
	if image.Pt(x, y).In(img.Bounds()) {
		img.SetRGBA(x, y, c)
	}
}

// line draws with the integer Bresenham algorithm.
func line(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		set(img, x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		if e2 := 2 * err; e2 >= dy {
			err += dy
			x0 += sx
		} else {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ASCII renders a compact terminal view: one character cell per
// (resource-band, slice), showing the mode state's letter; uppercase for a
// dominant mode (α ≥ 0.66), lowercase otherwise, '.' for idle, '▒'-style
// '#' marks for visual aggregates. maxRows caps the number of resource
// bands (resources are binned when |S| exceeds it).
func (sc *Scene) ASCII(maxRows, cols int) string {
	if maxRows <= 0 {
		maxRows = 24
	}
	if cols <= 0 {
		cols = 60
	}
	grid := make([][]byte, maxRows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	// Scene pixel space → character space.
	for _, r := range sc.Rects {
		c0 := int(r.X / float64(sc.W) * float64(cols))
		c1 := int(math.Ceil((r.X + r.W) / float64(sc.W) * float64(cols)))
		r0 := int(r.Y / float64(sc.H) * float64(maxRows))
		r1 := int(math.Ceil((r.Y + r.H) / float64(sc.H) * float64(maxRows)))
		ch := byte('.')
		if r.Mode >= 0 && r.Mode < len(sc.Legend) {
			name := sc.Legend[r.Mode].State
			letter := stateLetter(name)
			if r.Alpha >= 0.66 {
				ch = upper(letter)
			} else {
				ch = lower(letter)
			}
		}
		if r.Mark == MarkCross {
			ch = '#'
		}
		for rr := max(r0, 0); rr < min(r1, maxRows); rr++ {
			for cc := max(c0, 0); cc < min(c1, cols); cc++ {
				grid[rr][cc] = ch
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	// Legend line.
	for _, le := range sc.Legend {
		fmt.Fprintf(&b, "%c=%s ", upper(stateLetter(le.State)), le.State)
	}
	b.WriteByte('\n')
	return b.String()
}

// stateLetter picks a distinguishing letter for a state name: the first
// letter after a known prefix ("MPI_Wait" → 'w') or the first letter.
func stateLetter(name string) byte {
	if s, ok := strings.CutPrefix(name, "MPI_"); ok && len(s) > 0 {
		return s[0]
	}
	if len(name) > 0 {
		return name[0]
	}
	return '?'
}

func upper(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 32
	}
	return b
}

func lower(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 32
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
