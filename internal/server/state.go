package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/manifest"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

// Durable daemon state. With Config.StateDir set, the server journals its
// serving state — which traces are loaded, where their sealed index
// stores live, and each follower's committed resume offset — into a CRC'd
// manifest (internal/manifest) written atomically on every load, unload
// and every CheckpointTicks follow ticks. Recover replays the manifest on
// boot: sealed stores are reopened in place instead of re-indexed,
// followers resume their tail at the journaled byte offset
// (traceio.OpenTailAt), and anything the manifest doesn't vouch for —
// spill temps, half-built stores, stores from unloaded traces — is swept.
// The contract is the one the follow tests pin end to end: after a kill
// -9 and restart, responses are bit-identical to an uninterrupted run and
// no flushed event is lost or double-ingested.
//
// Checkpoints are written by a dedicated keeper goroutine; the follow
// tick only drops a non-blocking kick on it, so journaling never sits on
// the ingestion hot path. Load/unload checkpoint synchronously — the
// manifest is durable before the client sees the 2xx.

// FailpointRecoverOpen names the fault-injection site at the head of each
// journaled trace's recovery. An armed error simulates a store that
// cannot be reopened: recovery falls back to rebuilding the index from
// the trace file (or restarting the follow fresh) instead of skipping the
// trace, so chaos at boot degrades to extra work, not data loss.
const FailpointRecoverOpen = "recover/open"

// DefaultCheckpointTicks is how many event-carrying follow ticks elapse
// between periodic checkpoints when Config.CheckpointTicks is 0. Each
// tick advances the journaled resume offset; more frequent checkpoints
// shrink the prefix a restart replays, at the price of more manifest
// writes.
const DefaultCheckpointTicks = 50

// stateKeeper owns the manifest journal: one goroutine drains kicks and
// writes checkpoints, and mu serializes its Saves with the synchronous
// ones (load/unload/shutdown).
type stateKeeper struct {
	j *manifest.Journal

	mu  sync.Mutex // serializes Save and the seq counter
	seq uint64

	kick chan struct{} // capacity 1: coalesces pending checkpoint requests
	stop chan struct{}
	done chan struct{}

	stopOnce sync.Once
}

// RecoveryReport summarizes what Recover found and did.
type RecoveryReport struct {
	// ManifestSeq is the recovered manifest's checkpoint sequence (0 when
	// booting fresh); ManifestCorrupt reports that the manifest existed
	// but failed validation and was quarantined (FileName + ".corrupt").
	ManifestSeq     uint64 `json:"manifest_seq"`
	ManifestCorrupt bool   `json:"manifest_corrupt"`
	// Restored counts journaled traces serving again, split into how:
	// Reopened sealed stores, Rebuilt indexes re-streamed from the trace
	// file, Resumed followers continuing at the journaled offset, and
	// Restarted followers that fell back to a fresh follow.
	Restored  int `json:"restored"`
	Reopened  int `json:"reopened"`
	Rebuilt   int `json:"rebuilt"`
	Resumed   int `json:"resumed"`
	Restarted int `json:"restarted"`
	// Orphans counts swept files: spill temps, abandoned build temps, and
	// store files no journaled trace references.
	Orphans int `json:"orphans"`
	// Skipped lists traces that could not be restored by any path (their
	// trace file is gone or unreadable); the daemon serves without them.
	Skipped []string `json:"skipped,omitempty"`
}

// ScrubReport summarizes a consistency pass over the daemon's durable
// state (Scrub for a live server, ScrubState offline).
type ScrubReport struct {
	Traces      int  `json:"traces"`
	Chunks      int  `json:"chunks_verified"`
	Quarantined int  `json:"quarantined"`
	Rebuilt     int  `json:"rebuilt"`
	ManifestOK  bool `json:"manifest_ok"`
	// Errors lists every inconsistency found, rebuilt or not; Clean is
	// len(Errors) == 0 && ManifestOK.
	Errors []string `json:"errors,omitempty"`
	Clean  bool     `json:"clean"`
}

// Recover loads the manifest from Config.StateDir, sweeps orphaned files,
// re-registers every journaled trace (reopening sealed stores in place,
// resuming followers at their committed offsets), and starts the
// checkpoint keeper. It must be called once, before the handler starts
// serving and before any preload. A fresh state directory recovers to an
// empty registry — not an error.
func (s *Server) Recover(ctx context.Context) (*RecoveryReport, error) {
	if s.stateDir == "" {
		return nil, fmt.Errorf("server: recover: no state directory configured")
	}
	if s.state != nil {
		return nil, fmt.Errorf("server: recover: state already recovered")
	}
	j, err := manifest.Open(s.stateDir)
	if err != nil {
		return nil, err
	}
	if dir := s.reg.indexOpts.Dir; dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: store dir: %w", err)
		}
	}
	report := &RecoveryReport{}
	m, err := j.Load()
	if err != nil {
		if !manifest.IsCorrupt(err) {
			return nil, err
		}
		// A corrupt manifest is "no usable manifest": preserve it for
		// inspection and boot empty rather than refuse to serve.
		s.log.Error("manifest corrupt; quarantining and starting empty", "error", err)
		if _, qerr := j.Quarantine(); qerr != nil {
			return nil, qerr
		}
		s.cache.stats.Quarantined.Add(1)
		report.ManifestCorrupt = true
		m = nil
	}
	k := &stateKeeper{
		j:    j,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if m != nil {
		k.seq = m.Seq
		report.ManifestSeq = m.Seq
	}
	// Publish the keeper before any follower goroutine starts: resumed
	// followers read s.state on their tick path.
	s.state = k
	go s.runStateKeeper(k)

	referenced := make(map[string]bool)
	if m != nil {
		for _, ts := range m.Traces {
			if ts.Store != "" {
				referenced[filepath.Clean(ts.Store)] = true
			}
		}
	}
	report.Orphans = s.sweepOrphans(referenced)

	if m != nil {
		for _, ts := range m.Traces {
			if err := s.recoverTrace(ctx, ts, report); err != nil {
				s.log.Error("trace not recovered", "trace", ts.ID, "error", err)
				report.Skipped = append(report.Skipped, ts.ID)
			} else {
				report.Restored++
			}
			// Keep the generation counter past every journaled gen, so new
			// lineages can never collide with journaled cache keys.
			s.reg.bumpGen(ts.Gen)
		}
	}
	// Seal recovery with a fresh checkpoint: the manifest now reflects
	// what is actually serving (skipped traces drop out, restarted
	// followers get their new lineage).
	if err := s.Checkpoint(); err != nil {
		s.log.Warn("post-recovery checkpoint failed", "error", err)
	}
	return report, nil
}

// recoverTrace restores one journaled trace by the cheapest path that
// works: reopen the sealed store, else rebuild from the trace file;
// resume the follower at its committed offset, else restart the follow
// fresh. The armed recover/open failpoint forces the fallback path.
func (s *Server) recoverTrace(ctx context.Context, ts manifest.TraceState, report *RecoveryReport) error {
	injected := failpoint.Inject(FailpointRecoverOpen)
	if ts.Follow != nil {
		if injected == nil {
			if _, err := s.resumeFollow(ts); err == nil {
				report.Resumed++
				return nil
			} else {
				s.log.Warn("follow resume failed; restarting fresh", "trace", ts.ID, "error", err)
			}
		} else {
			s.log.Warn("recover/open failpoint: restarting follow fresh", "trace", ts.ID, "error", injected)
		}
		// Fresh follow: re-ingest the whole file. Slower than a resume but
		// still lossless, and the journaled anchor width keeps the grid.
		req := loadRequest{ID: ts.ID, Path: ts.Path, Follow: true, PollMs: ts.Follow.PollMs, LiveSlices: ts.Follow.Slices}
		if ts.Follow.Slices > 0 {
			req.SliceWidth = (ts.Follow.AnchorHi - ts.Follow.AnchorLo) / float64(ts.Follow.Slices)
		}
		if _, err := s.startFollow(ctx, req); err != nil {
			return err
		}
		report.Restarted++
		return nil
	}
	if ts.Store != "" && injected == nil {
		resl, err := microscopic.OpenReslicerStore(ts.Store, s.reg.indexOpts)
		if err == nil {
			if _, rerr := s.reg.register(&Trace{ID: ts.ID, Path: ts.Path, resl: resl, gen: ts.Gen}); rerr != nil {
				resl.Close()
				return rerr
			}
			report.Reopened++
			return nil
		}
		if eventstore.IsCorrupt(err) {
			s.log.Error("journaled store corrupt; rebuilding from trace", "trace", ts.ID, "store", ts.Store, "error", err)
			s.quarantineStore(ts.Store)
		} else {
			s.log.Warn("journaled store unreadable; rebuilding from trace", "trace", ts.ID, "store", ts.Store, "error", err)
		}
	} else if injected != nil {
		s.log.Warn("recover/open failpoint: rebuilding from trace", "trace", ts.ID, "error", injected)
	}
	src, err := traceio.OpenFile(ts.Path)
	if err != nil {
		return err
	}
	resl, err := microscopic.NewReslicerIndexed(src, s.reg.indexOpts)
	src.Close()
	if err != nil {
		return err
	}
	if _, err := s.reg.register(&Trace{ID: ts.ID, Path: ts.Path, resl: resl, gen: ts.Gen}); err != nil {
		resl.Close()
		return err
	}
	report.Rebuilt++
	return nil
}

// resumeFollow restores a journaled follower with zero loss and zero
// re-ingestion drift: the committed prefix (everything before the
// journaled offset, a record boundary) is replayed into a fresh index,
// then the live tail reopens exactly at that offset — the next tick picks
// up the first record the crashed daemon had not committed. Any mismatch
// between the file and the journal (truncation, a horizon that replays
// differently) is an error; the caller falls back to a fresh follow.
func (s *Server) resumeFollow(ts manifest.TraceState) (*Trace, error) {
	fs := ts.Follow
	anchor, err := timeslice.New(fs.AnchorLo, fs.AnchorHi, fs.Slices)
	if err != nil {
		return nil, fmt.Errorf("journaled anchor: %w", err)
	}
	poll := followDefaultPoll
	if fs.PollMs > 0 {
		poll = time.Duration(fs.PollMs) * time.Millisecond
	}

	pre, err := traceio.OpenTail(ts.Path)
	if err != nil {
		return nil, err
	}
	hdrStart, _ := pre.Window()
	horizon := hdrStart
	var events []trace.Event
	var ev trace.Event
	for pre.Offset() < fs.Offset {
		if err := pre.Next(&ev); err != nil {
			off := pre.Offset()
			pre.Close()
			if traceio.IsIncomplete(err) {
				return nil, fmt.Errorf("file ends at offset %d, journal committed %d (truncated since the crash?)", off, fs.Offset)
			}
			return nil, err
		}
		if ev.Start > horizon {
			horizon = ev.Start
		}
		events = append(events, ev)
	}
	if off := pre.Offset(); off != fs.Offset {
		pre.Close()
		return nil, fmt.Errorf("prefix replay landed at offset %d, journal committed %d (not a record boundary)", off, fs.Offset)
	}
	if horizon != fs.Horizon {
		pre.Close()
		return nil, fmt.Errorf("prefix replays to horizon %g, journal says %g (file rewritten?)", horizon, fs.Horizon)
	}
	resources, states := pre.Resources(), pre.States()
	pre.Close()

	resl, err := microscopic.NewReslicerIndexed(
		&followSource{resources: resources, states: states, start: hdrStart, end: horizon, events: events},
		s.reg.indexOpts)
	if err != nil {
		return nil, err
	}
	tail, err := traceio.OpenTailAt(ts.Path, fs.Offset)
	if err != nil {
		resl.Close()
		return nil, err
	}

	fctx, cancel := context.WithCancel(context.Background())
	f := &follower{
		id:     ts.ID,
		tail:   tail,
		opts:   followOptions{poll: poll, liveSlices: anchor.N, sliceWidth: anchor.Width()},
		ctx:    fctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	tr := &Trace{ID: ts.ID, Path: ts.Path, resl: resl, gen: ts.Gen, follow: &followState{
		anchor:  anchor,
		pan:     sealedPan(anchor, horizon),
		horizon: horizon,
		ticks:   fs.Ticks,
		offset:  tail.Offset(),
		poll:    poll,
	}}
	out, err := s.launchFollower(f, tr)
	if err != nil {
		cancel()
		tail.Close()
		resl.Close()
		return nil, err
	}
	s.log.Info("follow resumed", "trace", ts.ID, "path", ts.Path,
		"offset", fs.Offset, "events", out.Events, "horizon", horizon)
	return out, nil
}

// sweepOrphans removes files in the store directory that no journaled
// trace references: spill runs and build temps from interrupted index
// builds, and store files whose trace was unloaded (or followed — follow
// stores are never journaled) before the crash.
func (s *Server) sweepOrphans(referenced map[string]bool) int {
	dir := s.reg.indexOpts.Dir
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		s.log.Warn("orphan sweep: reading store dir", "dir", dir, "error", err)
		return 0
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(dir, name)
		isTemp := strings.HasPrefix(name, ".oces-run-") || strings.HasPrefix(name, ".oces-build-")
		isStore := strings.HasPrefix(name, "ocelotl-index-") && strings.HasSuffix(name, ".oces")
		if !isTemp && !(isStore && !referenced[filepath.Clean(full)]) {
			continue
		}
		if err := os.Remove(full); err != nil {
			s.log.Warn("orphan sweep: remove", "file", full, "error", err)
			continue
		}
		s.log.Info("orphan swept", "file", full)
		n++
	}
	if n > 0 {
		s.cache.stats.RecoveredOrphans.Add(int64(n))
		if err := manifest.SyncDir(dir); err != nil {
			s.log.Warn("orphan sweep: sync dir", "error", err)
		}
	}
	return n
}

// quarantineStore moves a corrupt store aside (path + ".quarantined") so
// it is preserved for inspection but can never be reopened as live state.
func (s *Server) quarantineStore(path string) {
	dst := path + ".quarantined"
	if err := os.Rename(path, dst); err != nil {
		s.log.Warn("store quarantine failed", "store", path, "error", err)
		return
	}
	if err := manifest.SyncDir(filepath.Dir(path)); err != nil {
		s.log.Warn("store quarantine: sync dir", "error", err)
	}
	s.cache.stats.Quarantined.Add(1)
	s.log.Error("store quarantined", "store", path, "moved_to", dst)
}

// snapshotManifest captures the registry as a Manifest. Traces loaded
// from memory (no source path) cannot be recovered and are not journaled.
// Follow traces journal no store: their sealed store holds only the
// load-time prefix, so recovery rebuilds the index from the trace file's
// committed prefix instead.
func (s *Server) snapshotManifest() *manifest.Manifest {
	m := &manifest.Manifest{}
	for _, t := range s.reg.snapshot() {
		if t.Path == "" {
			continue
		}
		ts := manifest.TraceState{ID: t.ID, Path: t.Path, Index: t.resl.IndexKind(), Gen: t.gen}
		if fs := t.follow; fs != nil {
			ts.Follow = &manifest.FollowState{
				Offset:   fs.offset,
				AnchorLo: fs.anchor.Start,
				AnchorHi: fs.anchor.End,
				Slices:   fs.anchor.N,
				Pan:      fs.pan,
				Horizon:  fs.horizon,
				Ticks:    fs.ticks,
				PollMs:   int(fs.poll / time.Millisecond),
			}
		} else {
			ts.Store = t.resl.StorePath()
		}
		m.Traces = append(m.Traces, ts)
	}
	sort.Slice(m.Traces, func(i, j int) bool { return m.Traces[i].ID < m.Traces[j].ID })
	return m
}

// Checkpoint synchronously writes the current serving state to the
// manifest. A no-op (nil) when durable state is disabled.
func (s *Server) Checkpoint() error {
	k := s.state
	if k == nil {
		return nil
	}
	m := s.snapshotManifest()
	k.mu.Lock()
	defer k.mu.Unlock()
	k.seq++
	m.Seq = k.seq
	if err := k.j.Save(m); err != nil {
		k.seq--
		return err
	}
	s.cache.stats.Checkpoints.Add(1)
	return nil
}

// requestCheckpoint asks the keeper for a checkpoint without blocking —
// the follow tick's path. A kick already pending coalesces.
func (s *Server) requestCheckpoint() {
	k := s.state
	if k == nil {
		return
	}
	select {
	case k.kick <- struct{}{}:
	default:
	}
}

// runStateKeeper drains checkpoint kicks until CloseState.
func (s *Server) runStateKeeper(k *stateKeeper) {
	defer close(k.done)
	for {
		select {
		case <-k.stop:
			return
		case <-k.kick:
			if err := s.Checkpoint(); err != nil {
				s.log.Warn("checkpoint failed", "error", err)
			}
		}
	}
}

// CloseState stops the checkpoint keeper without writing a final
// checkpoint — the daemon calls Checkpoint explicitly before this on a
// clean shutdown, and tests skip it to simulate a crash. Idempotent.
func (s *Server) CloseState() {
	k := s.state
	if k == nil {
		return
	}
	k.stopOnce.Do(func() { close(k.stop) })
	<-k.done
}

// Scrub verifies the live server's durable state: every disk-backed
// index's chunks are re-read from disk and CRC-checked, and the manifest
// is re-validated. A corrupt non-follow store is quarantined and its
// index rebuilt from the trace file under a fresh generation (the
// unload/reload consistency path); a corrupt follow index is reported
// only — its authoritative bytes are still in the tailed file. Served at
// GET /debug/scrub.
func (s *Server) Scrub() *ScrubReport {
	rep := &ScrubReport{ManifestOK: true}
	for _, t := range s.reg.snapshot() {
		rep.Traces++
		n, err := t.resl.VerifyIndex()
		rep.Chunks += n
		if err == nil {
			continue
		}
		rep.Errors = append(rep.Errors, fmt.Sprintf("trace %s: %v", t.ID, err))
		if t.follow != nil || t.Path == "" || !eventstore.IsCorrupt(err) {
			continue
		}
		if s.rebuildTrace(t) {
			rep.Quarantined++
			rep.Rebuilt++
		}
	}
	if k := s.state; k != nil {
		// Read-only load: the keeper may be writing concurrently, and the
		// atomic rename guarantees we see a complete manifest either way.
		if _, err := k.j.Load(); err != nil {
			rep.ManifestOK = false
			rep.Errors = append(rep.Errors, fmt.Sprintf("manifest: %v", err))
			// The registry is intact, so a fresh checkpoint rewrites the
			// damaged manifest in place.
			if cerr := s.Checkpoint(); cerr == nil {
				rep.Errors = append(rep.Errors, "manifest: rewritten from the live registry")
			}
		}
	}
	rep.Clean = rep.ManifestOK && len(rep.Errors) == 0
	return rep
}

// rebuildTrace replaces a trace whose store failed verification: a fresh
// index is streamed from the trace file, swapped in under a new
// generation, the stale cache lineage purged, and the damaged store
// quarantined. Reports whether the swap happened (a concurrent unload or
// reload wins the race and makes the rebuild moot).
func (s *Server) rebuildTrace(old *Trace) bool {
	src, err := traceio.OpenFile(old.Path)
	if err != nil {
		s.log.Error("scrub rebuild: trace file", "trace", old.ID, "error", err)
		return false
	}
	resl, err := microscopic.NewReslicerIndexed(src, s.reg.indexOpts)
	src.Close()
	if err != nil {
		s.log.Error("scrub rebuild failed", "trace", old.ID, "error", err)
		return false
	}
	nw := &Trace{ID: old.ID, Path: old.Path, Events: resl.NumEvents(),
		LoadedAt: old.LoadedAt, resl: resl, gen: s.reg.gen.Add(1)}
	if !s.reg.swap(old, nw) {
		resl.Close()
		return false
	}
	s.cache.PurgeTrace(old.ID, old.gen)
	storePath := old.resl.StorePath()
	if err := old.resl.Close(); err != nil {
		s.log.Warn("scrub rebuild: closing old index", "trace", old.ID, "error", err)
	}
	if storePath != "" {
		s.quarantineStore(storePath)
	}
	s.requestCheckpoint()
	s.log.Info("scrub rebuilt trace", "trace", old.ID, "events", nw.Events)
	return true
}

// handleScrub serves GET /debug/scrub.
func (s *Server) handleScrub(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Scrub())
}

// ScrubState verifies a state directory offline (ocelotld -scrub): the
// manifest decodes and every journaled store's chunks pass their CRCs.
// Nothing is repaired or removed — it is a read-only health check safe to
// run beside a live daemon (LoadFile does not sweep temps, and stores
// open without RemoveOnClose).
func ScrubState(dir string) (*ScrubReport, error) {
	rep := &ScrubReport{ManifestOK: true}
	m, err := manifest.LoadFile(filepath.Join(dir, manifest.FileName))
	if err != nil {
		rep.ManifestOK = false
		rep.Errors = append(rep.Errors, fmt.Sprintf("manifest: %v", err))
	}
	if m != nil {
		for _, ts := range m.Traces {
			rep.Traces++
			if ts.Path != "" {
				if _, err := os.Stat(ts.Path); err != nil {
					rep.Errors = append(rep.Errors, fmt.Sprintf("trace %s: source: %v", ts.ID, err))
				}
			}
			if ts.Store == "" {
				continue
			}
			st, err := eventstore.Open(ts.Store, eventstore.Options{})
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("trace %s: store: %v", ts.ID, err))
				continue
			}
			n, err := st.VerifyChunks()
			rep.Chunks += n
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("trace %s: store: %v", ts.ID, err))
			}
			st.Close()
		}
	}
	rep.Clean = rep.ManifestOK && len(rep.Errors) == 0
	return rep, nil
}
