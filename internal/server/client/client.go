// Package client is a small Go client for the ocelotld HTTP API. It
// exists for the pieces of the protocol a bare http.Get gets wrong under
// load: a shed request (503) carries a Retry-After the server computed
// from its backlog, and the polite response is to wait that long — not a
// fixed sleep, not an immediate hammer. The client retries transport
// errors and 503s with jittered exponential backoff, honoring Retry-After
// as a floor, and records every attempt so tests (the chaos soak, the CI
// smoke) can assert on the full status history rather than only the final
// answer.
//
// Layering: the package depends only on net/http and the server's wire
// format (URLs, headers, JSON bodies) — never on internal/server's types —
// so it is exactly what an external consumer could write from the README.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DegradedHeader is the response header marking a degraded (coarse
// preview) answer; its value names the reason.
const DegradedHeader = "X-Ocelotl-Degraded"

// Attempt records one HTTP exchange inside a Get, including the ones that
// were retried away. Status 0 means the request never got a response
// (transport error, in Err).
type Attempt struct {
	Status     int
	RetryAfter time.Duration // parsed Retry-After, 0 if absent
	Err        error
}

// Result is the final response of a Get plus the attempt trail that led
// to it.
type Result struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts []Attempt
}

// Degraded returns the X-Ocelotl-Degraded reason, "" for a fine answer.
func (r *Result) Degraded() string { return r.Header.Get(DegradedHeader) }

// Client talks to one ocelotld base URL. The zero value is not usable;
// call New.
type Client struct {
	base string
	http *http.Client

	// MaxRetries bounds the retried attempts after the first (so a Get
	// issues at most MaxRetries+1 requests).
	MaxRetries int
	// BaseBackoff and MaxBackoff bound the exponential backoff schedule:
	// attempt k waits jitter(BaseBackoff·2^k) capped at MaxBackoff, or
	// the server's Retry-After if that is longer.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a Client with the default retry policy (4 retries, 100ms
// base backoff capped at 5s) and a time-seeded jitter source.
func New(baseURL string) *Client {
	return &Client{
		base:        strings.TrimRight(baseURL, "/"),
		http:        &http.Client{},
		MaxRetries:  4,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Seed makes the jitter deterministic — for tests.
func (c *Client) Seed(seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = rand.New(rand.NewSource(seed))
}

// SetHTTPClient swaps the underlying transport (custom timeouts, test
// transports).
func (c *Client) SetHTTPClient(h *http.Client) { c.http = h }

// retryable reports whether a response status is worth another attempt:
// only 503 — the server's explicit "come back later". 4xx are the
// caller's fault and 500 may be deterministic, so retrying them just
// doubles the damage.
func retryable(status int) bool { return status == http.StatusServiceUnavailable }

// backoff computes the wait before retry attempt k (0-based), honoring
// the server's Retry-After as a floor under the jittered exponential
// schedule.
func (c *Client) backoff(k int, retryAfter time.Duration) time.Duration {
	d := c.BaseBackoff << uint(k)
	if d > c.MaxBackoff || d <= 0 {
		d = c.MaxBackoff
	}
	c.mu.Lock()
	jitter := 0.5 + c.rng.Float64() // ∈ [0.5, 1.5)
	c.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	return d
}

// Get issues GET {base}{path}?{q} with retries. It returns the final
// response whatever its status — HTTP-level failures are data here, not
// errors — and errs only when the context dies or every attempt failed at
// the transport.
func (c *Client) Get(ctx context.Context, path string, q url.Values) (*Result, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	res := &Result{}
	for k := 0; ; k++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			res.Attempts = append(res.Attempts, Attempt{Err: err})
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			if k >= c.MaxRetries {
				return res, fmt.Errorf("GET %s: %d attempts, last: %w", u, k+1, err)
			}
			if err := sleep(ctx, c.backoff(k, 0)); err != nil {
				return res, err
			}
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		res.Attempts = append(res.Attempts, Attempt{Status: resp.StatusCode, RetryAfter: ra})
		res.Status, res.Header, res.Body = resp.StatusCode, resp.Header, body
		if rerr != nil {
			return res, fmt.Errorf("GET %s: reading body: %w", u, rerr)
		}
		if !retryable(resp.StatusCode) || k >= c.MaxRetries {
			return res, nil
		}
		if err := sleep(ctx, c.backoff(k, ra)); err != nil {
			return res, err
		}
	}
}

// LoadTrace POSTs /traces, registering path under id. A 409 (already
// loaded) is success: the trace is there.
func (c *Client) LoadTrace(ctx context.Context, id, path string) error {
	body, _ := json.Marshal(struct {
		ID   string `json:"id"`
		Path string `json:"path"`
	}{id, path})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/traces", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	return fmt.Errorf("POST /traces: %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
}

// UnloadTrace DELETEs /traces/{id}.
func (c *Client) UnloadTrace(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/traces/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("DELETE /traces/%s: %d: %s", id, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Ready GETs /readyz once (no retries — readiness probes want the truth,
// not persistence) and errs unless the server answered 200.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("readyz: %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// ActiveFailpoints GETs /debug/failpoints and returns the armed failpoint
// names — the CI production gate asserts this comes back empty.
func (c *Client) ActiveFailpoints(ctx context.Context) ([]string, error) {
	res, err := c.Get(ctx, "/debug/failpoints", nil)
	if err != nil {
		return nil, err
	}
	if res.Status != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/failpoints: %d: %s", res.Status, strings.TrimSpace(string(res.Body)))
	}
	var body struct {
		Active []struct {
			Name string `json:"name"`
		} `json:"active"`
	}
	if err := json.Unmarshal(res.Body, &body); err != nil {
		return nil, fmt.Errorf("decoding /debug/failpoints: %w", err)
	}
	names := make([]string, 0, len(body.Active))
	for _, s := range body.Active {
		names = append(names, s.Name)
	}
	return names, nil
}

// parseRetryAfter handles the delta-seconds form the server sends (the
// HTTP-date form is not worth the dependency here).
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
