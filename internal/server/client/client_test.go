package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetRetries503HonoringRetryAfter: the client must come back after a
// shed, wait at least the advertised Retry-After, and surface the full
// attempt trail.
func TestGetRetries503HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gaps []time.Duration
	last := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		gaps = append(gaps, now.Sub(last))
		last = now
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("fine"))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Seed(1)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Second
	start := time.Now()
	res, err := c.Get(context.Background(), "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || string(res.Body) != "fine" {
		t.Fatalf("got (%d, %q), want (200, fine)", res.Status, res.Body)
	}
	if len(res.Attempts) != 3 {
		t.Fatalf("attempt trail %+v, want 2 sheds + 1 success", res.Attempts)
	}
	for i := 0; i < 2; i++ {
		if res.Attempts[i].Status != http.StatusServiceUnavailable || res.Attempts[i].RetryAfter != time.Second {
			t.Fatalf("attempt %d = %+v, want 503 with Retry-After 1s", i, res.Attempts[i])
		}
	}
	// Two waits, each floored at the 1s Retry-After.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("client waited only %v across two Retry-After:1 sheds", elapsed)
	}
	for _, gap := range gaps[1:] {
		if gap < time.Second {
			t.Fatalf("retry arrived after %v, before the 1s Retry-After", gap)
		}
	}
}

// TestGetGivesUpAfterMaxRetries: a server that always sheds is reported
// as its final 503, not an error — HTTP statuses are data.
func TestGetGivesUpAfterMaxRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL)
	c.Seed(2)
	c.MaxRetries = 2
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	res, err := c.Get(context.Background(), "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || len(res.Attempts) != 3 {
		t.Fatalf("got status %d after %d attempts, want 503 after 3", res.Status, len(res.Attempts))
	}
}

// TestGetDoesNotRetryClientErrors: a 400 is the caller's bug; one attempt.
func TestGetDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad slices", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := New(ts.URL)
	res, err := c.Get(context.Background(), "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusBadRequest || calls.Load() != 1 {
		t.Fatalf("400 handled as (%d, %d calls), want one un-retried attempt", res.Status, calls.Load())
	}
}

// TestGetContextCancelsBackoff: a dying context interrupts the wait.
func TestGetContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, "/x", nil)
	if err == nil {
		t.Fatal("want a context error, got success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Get still took %v", elapsed)
	}
}
