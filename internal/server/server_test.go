package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/testutil"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/traceio"
)

// quietConfig keeps test logs out of the way and the worker count small.
func quietConfig() Config {
	return Config{
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		RequestTimeout: time.Minute,
	}
}

// newTestServer spins up a server with the artificial trace preloaded
// under id "art".
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if _, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(24, 40)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestLoadListInfoUnload(t *testing.T) {
	s := New(quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := t.TempDir()
	path := filepath.Join(dir, "art.bin")
	if err := traceio.WriteFile(path, mpisim.Artificial()); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(loadRequest{ID: "a", Path: path})
	resp, err := http.Post(ts.URL+"/traces", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /traces: status %d", resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "a" || info.Events == 0 || info.Resources == 0 {
		t.Fatalf("bad load response: %+v", info)
	}

	// Duplicate load conflicts.
	resp2, err := http.Post(ts.URL+"/traces", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate load: status %d, want 409", resp2.StatusCode)
	}

	if r, _ := get(t, ts.URL+"/traces/a"); r.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/a: status %d", r.StatusCode)
	}
	_, listBody := get(t, ts.URL+"/traces")
	if !bytes.Contains(listBody, []byte(`"id":"a"`)) {
		t.Fatalf("list does not mention trace a: %s", listBody)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/a", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}
	if r, _ := get(t, ts.URL+"/traces/a/aggregate?p=0.5"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("aggregate after unload: status %d, want 404", r.StatusCode)
	}
}

// TestPanServedIncrementally is the acceptance scenario: load → aggregate
// → pan. The panned window must be served via Input.Update from the
// cached anchor (a derived build, not scratch), and its response body must
// be byte-identical to the same window built from scratch on a fresh
// server.
func TestPanServedIncrementally(t *testing.T) {
	s, ts := newTestServer(t, quietConfig())

	const window = "slices=20&p=0.4"
	resp, _ := get(t, ts.URL+"/traces/art/aggregate?"+window)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anchor: status %d", resp.StatusCode)
	}
	if b := resp.Header.Get(buildHeader); b != string(BuildScratch) {
		t.Fatalf("anchor build = %q, want scratch", b)
	}

	resp, derivedBody := get(t, ts.URL+"/traces/art/aggregate?"+window+"&pan=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pan: status %d", resp.StatusCode)
	}
	if b := resp.Header.Get(buildHeader); b != string(BuildDerived) {
		t.Fatalf("pan build = %q, want derived", b)
	}
	st := s.CacheStats()
	if st.Derived != 1 || st.Scratch != 1 {
		t.Fatalf("stats after pan: %+v, want 1 derived + 1 scratch", st)
	}

	// A fresh server has no anchor to derive from: the same panned window
	// is a scratch build there, and must produce byte-identical JSON.
	_, ts2 := newTestServer(t, quietConfig())
	resp, scratchBody := get(t, ts2.URL+"/traces/art/aggregate?"+window+"&pan=1")
	if b := resp.Header.Get(buildHeader); b != string(BuildScratch) {
		t.Fatalf("fresh-server pan build = %q, want scratch", b)
	}
	if !bytes.Equal(derivedBody, scratchBody) {
		t.Fatalf("derived partition differs from scratch build:\nderived: %s\nscratch: %s", derivedBody, scratchBody)
	}

	// The anchor window is still cached: re-requesting it is a hit.
	resp, _ = get(t, ts.URL+"/traces/art/aggregate?"+window)
	if b := resp.Header.Get(buildHeader); b != string(BuildHit) {
		t.Fatalf("anchor re-request build = %q, want hit", b)
	}
}

// TestReanchoredWindowDerives checks the nearest-window search for
// requests that specify the panned window by absolute times (a client
// that computes lo+width itself) rather than the grid-exact pan param.
func TestReanchoredWindowDerives(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())

	var anchor aggregateJSON
	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=20")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anchor: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &anchor); err != nil {
		t.Fatal(err)
	}
	w := (anchor.Window.End - anchor.Window.Start) / float64(anchor.Window.Slices)
	lo := anchor.Window.Start + 2*w
	hi := anchor.Window.End + 2*w
	url := fmt.Sprintf("%s/traces/art/aggregate?slices=20&lo=%.17g&hi=%.17g", ts.URL, lo, hi)
	resp, _ = get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shifted window: status %d", resp.StatusCode)
	}
	// base + 2w re-derived from decimal round-trips may or may not land
	// bit-exactly on the grid; when it does, the build must be derived.
	// With lo/hi printed at full precision it does for this window.
	if b := resp.Header.Get(buildHeader); b != string(BuildDerived) {
		t.Fatalf("shifted-window build = %q, want derived", b)
	}
}

// TestSingleflight fires concurrent identical first-time requests; the
// build must run exactly once, everything else coalescing onto it.
func TestSingleflight(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, quietConfig())

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Get(ts.URL + "/traces/art/aggregate?p=0.3&slices=25")
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// One key: exactly one build ever ran, split across one miss and n-1
	// hits/coalesced waiters.
	s := httptestStats(t, ts)
	if s.Misses != 1 || s.Scratch+s.Derived != 1 {
		t.Fatalf("singleflight stats: %+v, want exactly one build", s)
	}
	if s.Hits+s.Coalesced != n-1 {
		t.Fatalf("singleflight stats: %+v, want %d hits+coalesced", s, n-1)
	}
}

func httptestStats(t *testing.T, ts *httptest.Server) StatsSnapshot {
	t.Helper()
	_, body := get(t, ts.URL+"/debug/cachestats")
	var s StatsSnapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConcurrentAggregates hammers one trace from many goroutines with
// mixed windows and p values; run under -race this exercises the cache,
// singleflight, bounded solver pool and handlers for data races.
func TestConcurrentAggregates(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, quietConfig())

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url := fmt.Sprintf("%s/traces/art/aggregate?slices=20&pan=%d&p=0.%d",
					ts.URL, i%3, 1+(g+i)%8)
				resp, err := http.Get(url)
				if err != nil {
					errs[g] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("%s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	total := st.Hits + st.Misses + st.Coalesced
	if total != workers*perWorker {
		t.Fatalf("requests accounted: %d, want %d (%+v)", total, workers*perWorker, st)
	}
	if st.Derived+st.Scratch != st.Misses {
		t.Fatalf("builds (%d derived + %d scratch) != misses %d", st.Derived, st.Scratch, st.Misses)
	}
}

// TestEvictionUnderTinyBudget caches through a budget that holds exactly
// one window, so every second window evicts the first.
func TestEvictionUnderTinyBudget(t *testing.T) {
	tr := loadArtificial(t)
	sl, err := timeslice.New(0, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := tr.resl.BuildAt(sl)
	if err != nil {
		t.Fatal(err)
	}
	probe := core.NewInput(pm, core.Options{})
	budget := int64(probe.MemoryBytes()) + 64 // one entry fits, two don't

	c := NewInputCache(budget, core.Options{}, 0)
	// Three pairwise non-overlapping windows (pans ≥ |T| share nothing).
	w1 := sl
	w2 := sl.Shift(16)
	w3 := sl.Shift(32)
	for _, w := range []timeslice.Slicer{w1, w2, w3} {
		if _, kind, err := c.Get(context.Background(), tr, w); err != nil || kind != BuildScratch {
			t.Fatalf("window %v: kind %v err %v, want scratch", w.Start, kind, err)
		}
	}
	st := c.Snapshot()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 under single-entry budget", st.Entries)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.Bytes > budget {
		t.Fatalf("cached bytes %d exceed budget %d", st.Bytes, budget)
	}
	// w3 survived (most recent), w1 must rebuild.
	if _, kind, _ := c.Get(context.Background(), tr, w3); kind != BuildHit {
		t.Fatalf("w3: kind %v, want hit", kind)
	}
	if _, kind, _ := c.Get(context.Background(), tr, w1); kind != BuildScratch {
		t.Fatalf("w1 after eviction: kind %v, want scratch rebuild", kind)
	}
}

// TestDerivedMatchesScratchAtCacheLevel checks bit-identity of the
// cache's derivation path against a fresh build of the same window.
func TestDerivedMatchesScratchAtCacheLevel(t *testing.T) {
	tr := loadArtificial(t)
	sl, err := timeslice.New(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	c := NewInputCache(DefaultCacheBytes, core.Options{}, 0)
	if _, kind, err := c.Get(context.Background(), tr, sl); err != nil || kind != BuildScratch {
		t.Fatalf("anchor: kind %v err %v", kind, err)
	}
	for _, k := range []int{1, -2, 7} {
		derived, kind, err := c.Get(context.Background(), tr, sl.Shift(k))
		if err != nil {
			t.Fatal(err)
		}
		if kind != BuildDerived {
			t.Fatalf("pan %+d: kind %v, want derived", k, kind)
		}
		fm, err := tr.resl.BuildAt(derived.Model.Slicer)
		if err != nil {
			t.Fatal(err)
		}
		fresh := core.NewInput(fm, core.Options{})
		dg, dl := derived.RootGainLoss()
		fg, fl := fresh.RootGainLoss()
		if dg != fg || dl != fl {
			t.Fatalf("pan %+d: root gain/loss (%v,%v) != fresh (%v,%v)", k, dg, dl, fg, fl)
		}
		dp, err := derived.NewSolver().Run(0.5)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := fresh.NewSolver().Run(0.5)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Signature() != fp.Signature() || dp.PIC != fp.PIC {
			t.Fatalf("pan %+d: derived partition differs from scratch", k)
		}
	}
}

func loadArtificial(t *testing.T) *Trace {
	t.Helper()
	reg := NewRegistry()
	tr, err := reg.LoadTrace("art", mpisim.ArtificialSized(16, 40))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSignificantQualityRenderEndpoints smoke-tests the remaining query
// endpoints over one cached window.
func TestSignificantQualityRenderEndpoints(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())

	resp, body := get(t, ts.URL+"/traces/art/significant?eps=0.01&slices=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("significant: status %d: %s", resp.StatusCode, body)
	}
	var sig struct {
		Points []qualityJSON `json:"points"`
	}
	if err := json.Unmarshal(body, &sig); err != nil {
		t.Fatal(err)
	}
	if len(sig.Points) < 2 {
		t.Fatalf("significant: %d points, want ≥ 2", len(sig.Points))
	}

	resp, body = get(t, ts.URL+"/traces/art/quality?ps=0.2,0.8&slices=15")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quality: status %d: %s", resp.StatusCode, body)
	}
	var qual struct {
		Points []qualityJSON `json:"points"`
	}
	if err := json.Unmarshal(body, &qual); err != nil {
		t.Fatal(err)
	}
	if len(qual.Points) != 2 || qual.Points[0].P != 0.2 || qual.Points[1].P != 0.8 {
		t.Fatalf("quality: bad points %+v", qual.Points)
	}

	resp, body = get(t, ts.URL+"/traces/art/render?p=0.4&slices=15&width=200&height=120")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("render content-type %q", ct)
	}
	if len(body) < 8 || body[1] != 'P' || body[2] != 'N' || body[3] != 'G' {
		t.Fatalf("render did not produce a PNG (%d bytes)", len(body))
	}

	// All three shared one window: first built it, the rest hit.
	s := httptestStats(t, ts)
	if s.Hits < 2 {
		t.Fatalf("stats %+v: want the window shared across endpoints", s)
	}

	// Parameter validation surfaces as 400s.
	if r, _ := get(t, ts.URL+"/traces/art/aggregate?p=nope"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad p: status %d", r.StatusCode)
	}
	if r, _ := get(t, ts.URL+"/traces/art/aggregate?p=1.5"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range p: status %d", r.StatusCode)
	}
	if r, _ := get(t, ts.URL+"/traces/art/aggregate?slices=0"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero slices: status %d", r.StatusCode)
	}
}

// TestSlicesCapAndFiniteWindow: resource-limit validation — an over-cap
// |T| or a non-finite window bound must be rejected before any build.
func TestSlicesCapAndFiniteWindow(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	for _, q := range []string{
		"slices=30000", "slices=513", "lo=-Inf", "hi=%2BInf", "lo=NaN",
	} {
		if r, body := get(t, ts.URL+"/traces/art/aggregate?"+q); r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", q, r.StatusCode, body)
		}
	}
	// The cap is configurable.
	cfg := quietConfig()
	cfg.MaxSlices = 600
	_, ts2 := newTestServer(t, cfg)
	if r, body := get(t, ts2.URL+"/traces/art/aggregate?slices=513&p=0.5"); r.StatusCode != http.StatusOK {
		t.Errorf("slices=513 under raised cap: status %d (%s)", r.StatusCode, body)
	}
}

// TestReloadedTraceDoesNotHitStaleCache: entries (and in-flight builds)
// of an unloaded trace must never serve a reload of the same id — each
// load gets its own cache generation.
func TestReloadedTraceDoesNotHitStaleCache(t *testing.T) {
	c := NewInputCache(DefaultCacheBytes, core.Options{}, 0)
	regA := NewRegistry()
	trOld, err := regA.LoadTrace("a", mpisim.ArtificialSized(8, 40))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := timeslice.New(0, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, kind, err := c.Get(context.Background(), trOld, sl); err != nil || kind != BuildScratch {
		t.Fatalf("old trace: kind %v err %v", kind, err)
	}
	// Unload + reload the same id (different content, new generation).
	if !regA.Remove("a") {
		t.Fatal("remove failed")
	}
	c.PurgeTrace("a", trOld.gen)
	trNew, err := regA.LoadTrace("a", mpisim.ArtificialSized(16, 40))
	if err != nil {
		t.Fatal(err)
	}
	if trNew.gen == trOld.gen {
		t.Fatal("reload reused the old generation")
	}
	in, kind, err := c.Get(context.Background(), trNew, sl)
	if err != nil {
		t.Fatal(err)
	}
	if kind != BuildScratch {
		t.Fatalf("reloaded trace window: kind %v, want a fresh scratch build", kind)
	}
	if got := in.Model.NumResources(); got != 16 {
		t.Fatalf("served Input has %d resources, want the reloaded trace's 16", got)
	}
	// A stale insert after the purge (a build that was in flight during
	// the unload) is discarded outright — no budget parked on an
	// unreachable entry, and the new generation can never hit it.
	before := c.Snapshot()
	c.insertStaleForTest(trOld, sl)
	after := c.Snapshot()
	if after.Entries != before.Entries || after.Bytes != before.Bytes {
		t.Fatalf("stale insert was cached: %+v -> %+v", before, after)
	}
	if _, kind, _ := c.Get(context.Background(), trNew, sl.Shift(1)); kind == BuildHit {
		t.Fatal("new generation hit a stale entry")
	}
}

// TestRequestWorkCaps: the render-dimension and quality-sweep caps reject
// requests whose bounded-work guarantee would otherwise break.
func TestRequestWorkCaps(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	if r, _ := get(t, ts.URL+"/traces/art/render?width=100000&height=100000"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized render: status %d, want 400", r.StatusCode)
	}
	huge := "0.1" + strings.Repeat(",0.1", maxQualityPs)
	if r, _ := get(t, ts.URL+"/traces/art/quality?ps="+huge); r.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized ps list: status %d, want 400", r.StatusCode)
	}
}

// TestCacheAccountsForSolverPoolWarmup: an entry's cost grows as queries
// warm its solver pool; a hit must refresh the cache's byte accounting.
func TestCacheAccountsForSolverPoolWarmup(t *testing.T) {
	tr := loadArtificial(t)
	sl, err := timeslice.New(0, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewInputCache(DefaultCacheBytes, core.Options{}, 0)
	in, _, err := c.Get(context.Background(), tr, sl)
	if err != nil {
		t.Fatal(err)
	}
	cold := c.Snapshot().Bytes
	s := in.AcquireSolver() // warms the pool: scratch is now resident
	in.ReleaseSolver(s)
	if got := int64(in.MemoryBytes()); got <= cold {
		t.Fatalf("MemoryBytes %d does not include pooled solver scratch (arenas alone: %d)", got, cold)
	}
	if _, kind, _ := c.Get(context.Background(), tr, sl); kind != BuildHit {
		t.Fatal("expected a hit")
	}
	if warm := c.Snapshot().Bytes; warm <= cold {
		t.Fatalf("hit did not refresh accounting: %d -> %d", cold, warm)
	}
}
