package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
	"ocelotl/internal/render"
	"ocelotl/internal/timeslice"
)

// StatusClientClosedRequest is the 499 status (nginx's convention) the
// server answers with when a request's work was abandoned because its
// context died — the client went away or its deadline expired. The write
// usually lands nowhere (the client is gone), but the status keeps the
// request log and tests honest about why no real response was produced.
const StatusClientClosedRequest = 499

// isCancellation reports whether err is a context cancellation or
// deadline expiry — the errors the engine's ctx-aware entry points return
// when a request's work was abandoned rather than failed.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// abortIfCancelled maps a cancellation error to a 499 response and the
// aborted counter; it reports whether it consumed the error. Handlers call
// it first on any error coming back from a ctx-aware engine call.
func (s *Server) abortIfCancelled(w http.ResponseWriter, err error) bool {
	if err == nil || !isCancellation(err) {
		return false
	}
	s.cache.noteAborted()
	httpError(w, StatusClientClosedRequest, err)
	return true
}

// shedIfOverloaded maps a build-gate refusal to 503 with a Retry-After
// derived from the gate's backlog estimate, and counts the shed; it
// reports whether it consumed the error.
func (s *Server) shedIfOverloaded(w http.ResponseWriter, err error) bool {
	var oe *OverloadError
	if !errors.As(err, &oe) {
		return false
	}
	s.cache.noteShed()
	secs := int(math.Ceil(oe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusServiceUnavailable, err)
	return true
}

// writeGetError is the shared error tail of the cache-fill path:
// cancellation → 499, shed → 503 + Retry-After, anything else (including
// a recovered build panic) → 500.
func (s *Server) writeGetError(w http.ResponseWriter, err error) {
	if s.abortIfCancelled(w, err) || s.shedIfOverloaded(w, err) {
		return
	}
	httpError(w, http.StatusInternalServerError, err)
}

// loadRequest is the POST /traces body. The follow fields select live
// ingestion: follow tails a file still being written, poll_ms sets the
// tail poll interval, live_slices and slice_width shape the live window's
// grid (both optional — the defaults split the header's declared window
// into the standard slice count).
type loadRequest struct {
	ID         string  `json:"id"`
	Path       string  `json:"path"`
	Follow     bool    `json:"follow,omitempty"`
	PollMs     int     `json:"poll_ms,omitempty"`
	LiveSlices int     `json:"live_slices,omitempty"`
	SliceWidth float64 `json:"slice_width,omitempty"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorf(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.ID == "" || req.Path == "" {
		httpErrorf(w, http.StatusBadRequest, `need {"id": ..., "path": ...}`)
		return
	}
	start := time.Now()
	var tr *Trace
	var err error
	if req.Follow {
		tr, err = s.startFollow(r.Context(), req)
	} else {
		tr, err = s.reg.Load(req.ID, req.Path)
	}
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already load") {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	// The load is durable before the client sees the 201: a crash after
	// this point recovers the trace, a crash before it never claimed one.
	if err := s.Checkpoint(); err != nil {
		s.log.Warn("checkpoint after load failed", "trace", tr.ID, "error", err)
	}
	s.log.Info("trace loaded", "trace", tr.ID, "path", tr.Path,
		"events", tr.Events, "follow", req.Follow, "latency", time.Since(start))
	writeJSON(w, http.StatusCreated, tr.Info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Traces []Info `json:"traces"`
	}{Traces: s.reg.List()})
}

func (s *Server) handleTraceInfo(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpErrorf(w, http.StatusNotFound, "trace %q not loaded", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, tr.Info())
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Stop any follower first (cancel + wait): once the loop has exited it
	// can no longer publish a snapshot, so the Get below observes the final
	// one and the close at the bottom releases the newest index.
	s.stopFollower(id)
	tr, ok := s.reg.Get(id)
	if !ok || !s.reg.Remove(id) {
		httpErrorf(w, http.StatusNotFound, "trace %q not loaded", id)
		return
	}
	purged := s.cache.PurgeTrace(id, tr.gen)
	// Release the index last: a disk-backed reslicer holds an open store
	// file that Close removes. A build still in flight across this close
	// fails with an error (surfaced as that request's 500) — it can never
	// read recycled data into a model.
	storePath := tr.resl.StorePath()
	if err := tr.resl.Close(); err != nil {
		s.log.Warn("closing trace index", "trace", id, "error", err)
	}
	if s.state != nil {
		// Durable sidecar mode: Close keeps the store file, so the unload
		// removes it — then checkpoints, so the manifest never references
		// the deleted store.
		if storePath != "" {
			os.Remove(storePath)
		}
		if err := s.Checkpoint(); err != nil {
			s.log.Warn("checkpoint after unload failed", "trace", id, "error", err)
		}
	}
	s.log.Info("trace unloaded", "trace", id, "purged_windows", purged)
	w.WriteHeader(http.StatusNoContent)
}

// windowFromQuery resolves the shared window parameters (lo, hi, slices,
// pan) against a trace. lo/hi are absolute times defaulting to the full
// trace window; slices is |T|, capped at maxSlices because a window's
// Input costs O(|H(S)|·|T|²) before any cache budget applies; pan shifts
// the window by whole slices on its own grid — the grid-exact navigation
// path, so a panned request is derivable from its anchor window's cached
// Input.
//
// Two follow-mode extensions: live=1 resolves to the trace's current live
// window (the last slices of the anchored live grid — exactly the window
// the follower seeds each tick, so it is a cache hit between ticks); and
// any window reaching past the ingestion horizon is refused — the events
// beyond it haven't been ingested, so its Input would be a float soup the
// cache could never validate against later ticks.
func windowFromQuery(tr *Trace, q url.Values, maxSlices int) (timeslice.Slicer, error) {
	if q.Get("live") != "" {
		live, err := strconv.ParseBool(q.Get("live"))
		if err != nil {
			return timeslice.Slicer{}, fmt.Errorf("bad live=%q: %v", q.Get("live"), err)
		}
		if live {
			if tr.follow == nil {
				return timeslice.Slicer{}, fmt.Errorf("live=1 requires a trace loaded in follow mode")
			}
			if tr.follow.anchor.N > maxSlices {
				return timeslice.Slicer{}, fmt.Errorf("live window slices=%d exceeds the server cap %d", tr.follow.anchor.N, maxSlices)
			}
			return tr.follow.liveWindow(), nil
		}
	}
	start, end := tr.resl.TraceWindow()
	lo, err := finiteParam(q, "lo", start)
	if err != nil {
		return timeslice.Slicer{}, err
	}
	hi, err := finiteParam(q, "hi", end)
	if err != nil {
		return timeslice.Slicer{}, err
	}
	if q.Get("lo") != "" && lo < 0 {
		return timeslice.Slicer{}, fmt.Errorf("bad lo=%v: must be non-negative", lo)
	}
	if q.Get("hi") != "" && hi < 0 {
		return timeslice.Slicer{}, fmt.Errorf("bad hi=%v: must be non-negative", hi)
	}
	if hi <= lo {
		return timeslice.Slicer{}, fmt.Errorf("bad window: hi=%v must be greater than lo=%v", hi, lo)
	}
	slices, err := intParam(q, "slices", microscopic.DefaultSlices)
	if err != nil {
		return timeslice.Slicer{}, err
	}
	if slices <= 0 {
		return timeslice.Slicer{}, fmt.Errorf("bad slices=%d: must be positive", slices)
	}
	if slices > maxSlices {
		return timeslice.Slicer{}, fmt.Errorf("slices=%d exceeds the server cap %d", slices, maxSlices)
	}
	pan, err := intParam(q, "pan", 0)
	if err != nil {
		return timeslice.Slicer{}, err
	}
	sl, err := timeslice.New(lo, hi, slices)
	if err != nil {
		return timeslice.Slicer{}, err
	}
	if pan != 0 {
		sl = sl.Shift(pan)
	}
	if tr.follow != nil && sl.End > tr.follow.horizon {
		return timeslice.Slicer{}, fmt.Errorf("window end %v is past the ingestion horizon %v: not yet ingested", sl.End, tr.follow.horizon)
	}
	return sl, nil
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %v", name, s, err)
	}
	return v, nil
}

// finiteParam is floatParam restricted to finite values (window bounds —
// ±Inf would slip past timeslice.New's emptiness check).
func finiteParam(q url.Values, name string, def float64) (float64, error) {
	v, err := floatParam(q, name, def)
	if err != nil {
		return 0, err
	}
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("bad %s=%q: must be finite", name, q.Get(name))
	}
	return v, nil
}

func intParam(q url.Values, name string, def int) (int, error) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %v", name, s, err)
	}
	return v, nil
}

// resolveWindow resolves the trace and window of a query request and runs
// the admission guard: a window whose Input alone would exceed the cache
// budget is rejected with 413 before any arena is allocated — the
// estimate is arithmetic (core.EstimateMemoryBytes), so the refusal costs
// nothing and the working ladder is never evicted to make room for one
// oversized request.
func (s *Server) resolveWindow(w http.ResponseWriter, r *http.Request) (*Trace, timeslice.Slicer, bool) {
	tr, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpErrorf(w, http.StatusNotFound, "trace %q not loaded", r.PathValue("id"))
		return nil, timeslice.Slicer{}, false
	}
	sl, err := windowFromQuery(tr, r.URL.Query(), s.maxSlices)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, timeslice.Slicer{}, false
	}
	if err := s.cache.Admit(tr, sl); err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, err)
		return nil, timeslice.Slicer{}, false
	}
	return tr, sl, true
}

// getInput runs the window through the cache and records the build path
// and latency in the response headers. The request's context rides along
// into the cache fill: a request that is already dead (expired deadline,
// disconnected client) is aborted with 499 before any build work, and one
// that dies mid-build abandons its stake in the flight (see
// InputCache.Get).
func (s *Server) getInput(w http.ResponseWriter, r *http.Request, tr *Trace, sl timeslice.Slicer) (*core.Input, bool) {
	start := time.Now()
	in, kind, err := s.cache.Get(r.Context(), tr, sl)
	if err != nil {
		s.writeGetError(w, err)
		return nil, false
	}
	w.Header().Set(buildHeader, string(kind))
	w.Header().Set(buildLatencyHeader, strconv.FormatInt(time.Since(start).Microseconds(), 10))
	return in, true
}

// Degrade reasons reported in the X-Ocelotl-Degraded header.
const (
	degradeSlowBuild = "slow-build" // fine build exceeded the degrade deadline
	degradeFault     = "fault"      // fine build died on a retryable error
	degradeOverload  = "overload"   // build gate shed the request but a preview was warm
)

// getInputDegraded is getInput with the degrade-to-preview fallback: if
// the fine build exceeds the degrade deadline, dies on a retryable fault,
// or is shed by the build gate while a cached window covers the request,
// the covering window's coarse preview is served instead — the refine=1
// preview machinery promoted to an automatic fallback — with the reason in
// the X-Ocelotl-Degraded header. For slow builds the fine build is kept
// alive in the background (same adoption pattern as refineLookup) so a
// follow-up request for the same URL lands on a warm entry. The second
// return value reports whether the Input is a degraded preview.
func (s *Server) getInputDegraded(w http.ResponseWriter, r *http.Request, tr *Trace, sl timeslice.Slicer) (*core.Input, bool, bool) {
	if s.degradeAfter <= 0 {
		in, ok := s.getInput(w, r, tr, sl)
		return in, false, ok
	}
	start := time.Now()
	type result struct {
		in   *core.Input
		kind BuildKind
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		in, kind, err := s.cache.Get(r.Context(), tr, sl)
		ch <- result{in, kind, err}
	}()
	timer := time.NewTimer(s.degradeAfter)
	defer timer.Stop()

	finish := func(res result) (*core.Input, bool, bool) {
		if res.err != nil {
			s.writeGetError(w, res.err)
			return nil, false, false
		}
		w.Header().Set(buildHeader, string(res.kind))
		w.Header().Set(buildLatencyHeader, strconv.FormatInt(time.Since(start).Microseconds(), 10))
		return res.in, false, true
	}

	var reason string
	var res result
	select {
	case res = <-ch:
		if res.err == nil || isCancellation(res.err) {
			return finish(res)
		}
		reason = degradeFault
		var oe *OverloadError
		if errors.As(res.err, &oe) {
			reason = degradeOverload
		}
	case <-timer.C:
		reason = degradeSlowBuild
	}
	pv := s.cache.Preview(tr, sl)
	if pv == nil {
		// Nothing cached covers the request, so no degraded answer
		// exists: wait a slow build out, or surface the error in hand.
		if reason == degradeSlowBuild {
			return finish(<-ch)
		}
		s.writeGetError(w, res.err)
		return nil, false, false
	}
	if reason == degradeSlowBuild {
		// The waiter spawned above abandons its stake in the flight
		// when r.Context() dies at handler return; adopt the build
		// under the server's own deadline first so the degraded answer
		// doesn't kill the fine build it is standing in for.
		go func() {
			ctx := context.Background()
			if s.timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, s.timeout)
				defer cancel()
			}
			s.cache.Get(ctx, tr, sl)
		}()
	}
	s.cache.noteDegraded()
	w.Header().Set(degradedHeader, reason)
	w.Header().Set(buildHeader, string(BuildPreview))
	w.Header().Set(buildLatencyHeader, strconv.FormatInt(time.Since(start).Microseconds(), 10))
	return pv, true, true
}

// inputFor is resolveWindow + getInput — the shared serve path of every
// query endpoint.
func (s *Server) inputFor(w http.ResponseWriter, r *http.Request) (*Trace, *core.Input, bool) {
	tr, sl, ok := s.resolveWindow(w, r)
	if !ok {
		return nil, nil, false
	}
	in, ok := s.getInput(w, r, tr, sl)
	if !ok {
		return nil, nil, false
	}
	return tr, in, true
}

// refineLookup implements the progressive zoom path (aggregate with
// refine=1). When the exact window is already cached the response is
// final ("ready"). Otherwise, if some cached window covers the request,
// its coarse overview is served immediately as a preview ("pending") and
// the fine build is kicked off in the background under its own deadline —
// singleflight dedups concurrent refines of one window — so the client's
// follow-up request for the same URL lands on a warm entry. With nothing
// covering the request ("none") the caller falls back to the synchronous
// path.
func (s *Server) refineLookup(tr *Trace, sl timeslice.Slicer) (*core.Input, string) {
	if s.cache.Cached(tr, sl) {
		return nil, "ready"
	}
	pv := s.cache.Preview(tr, sl)
	if pv == nil {
		return nil, "none"
	}
	s.cache.stats.Previews.Add(1)
	go func() {
		ctx := context.Background()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		s.cache.Get(ctx, tr, sl)
	}()
	return pv, "pending"
}

// windowJSON describes the exact window a response was computed over.
type windowJSON struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Slices int     `json:"slices"`
}

func windowOf(in *core.Input) windowJSON {
	sl := in.Model.Slicer
	return windowJSON{Start: sl.Start, End: sl.End, Slices: sl.N}
}

// areaJSON is one aggregate of the optimal partition.
type areaJSON struct {
	Path   string    `json:"path"`
	I      int       `json:"i"`
	J      int       `json:"j"`
	Leaves int       `json:"leaves"`
	Mode   string    `json:"mode,omitempty"`
	Alpha  float64   `json:"alpha"`
	Gain   float64   `json:"gain"`
	Loss   float64   `json:"loss"`
	Rho    []float64 `json:"rho"`
}

// aggregateJSON is the GET /traces/{id}/aggregate body. Preview marks a
// progressive (refine=1) response computed over a coarse covering window
// instead of the requested one; it is omitted otherwise, so non-preview
// bodies stay byte-identical across build paths.
type aggregateJSON struct {
	Trace   string     `json:"trace"`
	P       float64    `json:"p"`
	Window  windowJSON `json:"window"`
	Preview bool       `json:"preview,omitempty"`
	Gain    float64    `json:"gain"`
	Loss    float64    `json:"loss"`
	PIC     float64    `json:"pic"`
	Areas   []areaJSON `json:"areas"`
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, err := floatParam(q, "p", 0.35)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tr, sl, ok := s.resolveWindow(w, r)
	if !ok {
		return
	}
	var in *core.Input
	preview := false
	if q.Get("refine") == "1" {
		start := time.Now()
		pv, state := s.refineLookup(tr, sl)
		w.Header().Set(refineHeader, state)
		if pv != nil {
			in, preview = pv, true
			w.Header().Set(buildHeader, string(BuildPreview))
			w.Header().Set(buildLatencyHeader, strconv.FormatInt(time.Since(start).Microseconds(), 10))
		}
	}
	if in == nil {
		var degraded bool
		if in, degraded, ok = s.getInputDegraded(w, r, tr, sl); !ok {
			return
		}
		// A degraded body is the same preview body refine=1 would
		// serve — byte-identical across the two paths.
		preview = preview || degraded
	}
	pt, err := s.solve(r.Context(), in, p)
	if err != nil {
		if !s.abortIfCancelled(w, err) {
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := aggregateJSON{
		Trace:   tr.ID,
		P:       p,
		Window:  windowOf(in),
		Preview: preview,
		Gain:    pt.Gain,
		Loss:    pt.Loss,
		PIC:     pt.PIC,
		Areas:   make([]areaJSON, 0, len(pt.Areas)),
	}
	states := tr.resl.States()
	for _, ar := range pt.Areas {
		info := in.Describe(ar)
		aj := areaJSON{
			Path:   ar.Node.Path,
			I:      ar.I,
			J:      ar.J,
			Leaves: ar.Leaves(),
			Alpha:  info.Alpha,
			Gain:   info.Gain,
			Loss:   info.Loss,
			Rho:    info.Rho,
		}
		if info.Mode >= 0 && info.Mode < len(states) {
			aj.Mode = states[info.Mode]
		}
		resp.Areas = append(resp.Areas, aj)
	}
	writeJSON(w, http.StatusOK, resp)
}

// solve runs one Algorithm 1 query on a pooled (capacity-bounded) Solver.
// The request context rides into both the (possibly blocking) pool
// acquisition and the solve itself, so a dead request neither queues for
// scratch nor finishes an O(|S|·|T|³) run nobody will read.
func (s *Server) solve(ctx context.Context, in *core.Input, p float64) (*partition.Partition, error) {
	solver, err := in.AcquireSolverContext(ctx)
	if err != nil {
		return nil, err
	}
	defer in.ReleaseSolver(solver)
	return solver.RunContext(ctx, p)
}

// qualityJSON is one quality-curve sample.
type qualityJSON struct {
	P     float64 `json:"p"`
	Areas int     `json:"areas"`
	Gain  float64 `json:"gain"`
	Loss  float64 `json:"loss"`
}

func qualityPoints(pts []core.QualityPoint) []qualityJSON {
	out := make([]qualityJSON, len(pts))
	for i, q := range pts {
		out[i] = qualityJSON{P: q.P, Areas: q.Areas, Gain: q.Gain, Loss: q.Loss}
	}
	return out
}

func (s *Server) handleSignificant(w http.ResponseWriter, r *http.Request) {
	eps, err := floatParam(r.URL.Query(), "eps", 1e-3)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tr, in, ok := s.inputFor(w, r)
	if !ok {
		return
	}
	points, err := in.SignificantPsContext(r.Context(), eps)
	if err != nil {
		if !s.abortIfCancelled(w, err) {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.cache.noteSweep(len(points))
	writeJSON(w, http.StatusOK, struct {
		Trace  string        `json:"trace"`
		Eps    float64       `json:"eps"`
		Window windowJSON    `json:"window"`
		Points []qualityJSON `json:"points"`
	}{Trace: tr.ID, Eps: eps, Window: windowOf(in), Points: qualityPoints(points)})
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	ps, err := psParam(r.URL.Query().Get("ps"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tr, in, ok := s.inputFor(w, r)
	if !ok {
		return
	}
	points, err := in.SweepQualityContext(r.Context(), ps)
	if err != nil {
		if !s.abortIfCancelled(w, err) {
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.cache.noteSweep(len(points))
	writeJSON(w, http.StatusOK, struct {
		Trace  string        `json:"trace"`
		Window windowJSON    `json:"window"`
		Points []qualityJSON `json:"points"`
	}{Trace: tr.ID, Window: windowOf(in), Points: qualityPoints(points)})
}

// maxQualityPs caps the /quality sweep size: each entry is an O(|S|·|T|³)
// solve, and a request's admitted work should stay bounded up front even
// though a timed-out request's sweep is now cancelled cooperatively (the
// cap bounds the work between the last response byte wanted and the first
// cancellation check; cancellation is a backstop, not an admission
// policy).
const maxQualityPs = 128

// psParam parses the comma-separated p list of /quality.
func psParam(spec string) ([]float64, error) {
	if spec == "" {
		return []float64{0.1, 0.25, 0.5, 0.75, 0.9}, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) > maxQualityPs {
		return nil, fmt.Errorf("ps lists %d values, server cap is %d", len(parts), maxQualityPs)
	}
	ps := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ps entry %q: %v", part, err)
		}
		ps = append(ps, v)
	}
	return ps, nil
}

// maxRenderDim caps /render's width/height: a PNG allocates 4·W·H bytes
// before a single rect is drawn, so unbounded dimensions would let one
// request exhaust the daemon the same way an unbounded |T| would.
const maxRenderDim = 4096

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, err := floatParam(q, "p", 0.35)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	width, err := intParam(q, "width", 1000)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	height, err := intParam(q, "height", 600)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if width > maxRenderDim || height > maxRenderDim {
		httpErrorf(w, http.StatusBadRequest, "render dimensions %dx%d exceed the server cap %d", width, height, maxRenderDim)
		return
	}
	minH, err := floatParam(q, "minheight", 2)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "png"
	}
	_, in, ok := s.inputFor(w, r)
	if !ok {
		return
	}
	pt, err := s.solve(r.Context(), in, p)
	if err != nil {
		if !s.abortIfCancelled(w, err) {
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	sc := render.BuildScene(in, pt, render.Options{Width: width, Height: height, MinHeight: minH})
	switch format {
	case "png":
		w.Header().Set("Content-Type", "image/png")
		err = sc.PNG(w)
	case "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		err = sc.SVG(w)
	default:
		httpErrorf(w, http.StatusBadRequest, "unknown format %q (want png or svg)", format)
		return
	}
	if err != nil {
		s.log.Error("render failed", "error", err)
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.CacheStats())
}
