package server

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

// BuildKind records how a window's Input was obtained, for the
// per-request log line and /debug/cachestats.
type BuildKind string

const (
	// BuildHit: the exact window was cached.
	BuildHit BuildKind = "hit"
	// BuildDerived: a miss served by Input.Update from the nearest cached
	// overlapping window (O(Δ·|T|) per node instead of O(|T|²)).
	BuildDerived BuildKind = "derived"
	// BuildScratch: a miss with no overlapping neighbor — a full NewInput
	// over a Reslicer-filled model.
	BuildScratch BuildKind = "scratch"
	// BuildCoalesced: the request piggybacked on an identical in-flight
	// build (singleflight).
	BuildCoalesced BuildKind = "coalesced"
	// BuildPreview: a refine request answered with a coarse covering
	// cached window while the fine build proceeds in the background.
	BuildPreview BuildKind = "preview"
)

// windowKey identifies one cached Input by (trace, grid level, window):
// the trace load (id + its load generation, so a reloaded id never
// matches the old load's entries or in-flight builds), the pyramid level
// — the slice width as exact float bits, computed canonically from the
// window so every derivation of the same window agrees — and the window's
// position at that level (slice count + exact boundary floats). Two
// windows on the same grid at different offsets share a level but hash to
// different keys; the grid relation between them is what the derivation
// path exploits, and the shared level is what the ladder pins.
type windowKey struct {
	trace      string
	gen        uint64
	level      uint64
	slices     int
	start, end float64
}

// levelOf is the canonical pyramid level of a window: the float bits of
// its slice width derived from the public boundary floats (never the
// slicer's internal grid width, which can differ in the last ulp between
// a New-built and a Shift-derived slicer for the same window). A pure
// function of (start, end, slices), so it adds no distinctions to key
// equality — it names the resolution axis the ladder is organized along.
func levelOf(sl timeslice.Slicer) uint64 {
	return math.Float64bits((sl.End - sl.Start) / float64(sl.N))
}

// entry is one cached Input on the LRU list. ov memoizes the entry's
// pair-merged coarse overview (core.Input.Coarsen) for progressive
// responses: built at most once, labeled preview on the wire, and never
// inserted under a window key of its own — merge-derived floats may
// differ in the last ulp from an event-index build at the coarse grid,
// and window keys promise byte-identity with scratch.
type entry struct {
	key   windowKey
	in    *core.Input
	bytes int // in + ovBytes, charged against the budget

	ovMu    sync.Mutex
	ov      *core.Input
	ovBytes int // guarded by the cache mu, not ovMu
}

// traceGen addresses one trace load's ladder.
type traceGen struct {
	trace string
	gen   uint64
}

// ladder is one trace load's multi-resolution state: per grid level, the
// key of the level's resident (most recently used) entry — pinned against
// eviction so a hot trace keeps one window per visited resolution warm —
// plus the level of the trace's last window request, which classifies the
// next request as a pan (same level) or a zoom (level change).
type ladder struct {
	resident map[uint64]windowKey
	order    []uint64 // least → most recently used level
	last     uint64
	hasLast  bool
}

// DefaultLadderLevels bounds each trace's pinned ladder when no cap is
// configured; levels beyond the cap lose their pin oldest-first (their
// entries still cache normally).
const DefaultLadderLevels = core.DefaultPyramidLevels

// flight is one in-flight build; concurrent requests for the same key
// wait on done instead of building again. The build runs under the
// flight's own context, detached from the leader's request: a singleflight
// result is shared, so one impatient caller must not kill work other
// callers still want. Instead every participant (leader included) holds a
// waiter reference; a caller whose request context dies drops its
// reference, and when the count reaches zero — every response that would
// have carried this Input has been abandoned — cancel fires and the build
// aborts at its next check.
type flight struct {
	done chan struct{}
	in   *core.Input
	kind BuildKind
	err  error

	ctx     context.Context // the build's detached context
	cancel  context.CancelFunc
	waiters int // guarded by the cache mu; leader counts as one
}

// InputCache is the window-keyed Input cache of the serving layer: an LRU
// over (trace, grid level, window) with a byte budget derived from
// core.Input.MemoryBytes. A miss does not go straight to NewInput — it
// first looks for the nearest cached window of the same trace and shape
// that overlaps the request on its slice grid (microscopic.GridOverlap)
// and derives the new Input incrementally via Input.Update, falling back
// to a from-scratch build only when nothing overlaps. Concurrent requests
// for the same window are deduplicated (singleflight): one build runs,
// the rest wait for its result.
//
// On top of the LRU the cache maintains one multi-resolution ladder per
// hot trace, lazily: the most recent entry of each visited grid level is
// pinned against the first eviction pass (see evictToBudgetLocked), so a
// zoom back to a resolution the analyst has touched before lands next to
// a warm same-level window and resolves as a hit or pan-derivation — the
// serving-layer form of core.Pyramid, with a byte budget and
// singleflight on top.
type InputCache struct {
	budget    int64
	opts      core.Options
	ladderMax int
	// gate, when non-nil, bounds how many flights build at once and
	// sheds deadline-doomed or over-queued builds (see buildGate). Set by
	// the Server; hits and coalesced waits never touch it.
	gate *buildGate

	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	entries  map[windowKey]*list.Element
	inflight map[windowKey]*flight
	bytes    int64
	// purged[trace] is the highest unloaded generation per trace id:
	// inserts at or below it (builds that were in flight across an
	// unload) are discarded instead of parking unreachable entries
	// against the budget.
	purged map[string]uint64
	// ladders holds the per-trace-load multi-resolution ladders: which
	// entry is resident (and pinned) per grid level, and the last
	// requested level for zoom classification.
	ladders map[traceGen]*ladder

	stats Stats
}

// NewInputCache returns a cache holding at most budget bytes of Input
// arenas (≤ 0 keeps nothing cached — every request builds, which the
// eviction and benchmark paths use). opts configures every Input built
// through the cache; ladderLevels caps each trace's pinned resolution
// ladder (≤ 0 means DefaultLadderLevels).
func NewInputCache(budget int64, opts core.Options, ladderLevels int) *InputCache {
	if ladderLevels <= 0 {
		ladderLevels = DefaultLadderLevels
	}
	return &InputCache{
		budget:    budget,
		opts:      opts,
		ladderMax: ladderLevels,
		lru:       list.New(),
		entries:   make(map[windowKey]*list.Element),
		inflight:  make(map[windowKey]*flight),
		purged:    make(map[string]uint64),
		ladders:   make(map[traceGen]*ladder),
	}
}

func keyFor(tr *Trace, sl timeslice.Slicer) windowKey {
	return windowKey{trace: tr.ID, gen: tr.gen, level: levelOf(sl), slices: sl.N, start: sl.Start, end: sl.End}
}

// Get returns the Input for the trace restricted to sl's window, and how
// it was obtained. The returned Input is immutable and remains valid
// after eviction; callers never hold cache locks while using it.
//
// ctx is the caller's request context. A cache hit is served regardless
// (it costs one map lookup). On a miss the build runs under the flight's
// detached context (see flight); ctx only governs this caller's stake in
// it — an already-cancelled ctx returns ctx.Err() before any work starts,
// and a ctx cancelled mid-wait abandons the flight (the build itself dies
// only once every waiter has abandoned it).
//
// A cancellation error is therefore only ever this caller's own: a live
// request that runs into a flight all of whose waiters already cancelled
// does not inherit the dying build's ctx.Err() — it waits out the
// abandoned flight's unwind and retries with a fresh build.
func (c *InputCache) Get(ctx context.Context, tr *Trace, sl timeslice.Slicer) (*core.Input, BuildKind, error) {
	for {
		in, kind, err := c.getOnce(ctx, tr, sl)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			// The flight this caller coalesced onto was abandoned by its
			// other waiters and died with their cancellation, not ours.
			// The flight is (or is about to be) out of the inflight map;
			// go again and build it for real.
			continue
		}
		return in, kind, err
	}
}

func (c *InputCache) getOnce(ctx context.Context, tr *Trace, sl timeslice.Slicer) (*core.Input, BuildKind, error) {
	key := keyFor(tr, sl)

	c.mu.Lock()
	zoom := c.noteLevelLocked(key)
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits.Add(1)
		in := el.Value.(*entry).in
		c.touchLadderLocked(key)
		c.refreshLocked(el)
		c.mu.Unlock()
		return in, BuildHit, nil
	}
	if err := ctx.Err(); err != nil {
		// Expired before any build work: fail fast rather than start (or
		// pile onto) a build whose response this caller will never read.
		c.mu.Unlock()
		return nil, "", err
	}
	if f, ok := c.inflight[key]; ok {
		if f.ctx.Err() != nil {
			// Every waiter already abandoned this flight; its build is
			// unwinding toward a cancellation error. Joining it would only
			// inherit that error — wait out the unwind instead, then let
			// the caller's retry start a fresh flight.
			c.mu.Unlock()
			select {
			case <-f.done:
				return nil, BuildCoalesced, context.Canceled
			case <-ctx.Done():
				return nil, BuildCoalesced, ctx.Err()
			}
		}
		c.stats.Coalesced.Add(1)
		f.waiters++
		c.mu.Unlock()
		c.watchWaiter(f, ctx)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, BuildCoalesced, ctx.Err()
		}
		if f.err != nil {
			return nil, BuildCoalesced, f.err
		}
		return f.in, BuildCoalesced, nil
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), ctx: fctx, cancel: cancel, waiters: 1}
	c.inflight[key] = f
	c.stats.Misses.Add(1)
	src, aligned := c.nearestLocked(tr, sl)
	c.mu.Unlock()
	c.watchWaiter(f, ctx)

	f.in, f.kind, f.err = c.runBuild(fctx, ctx, tr, sl, src, aligned)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(keyFor(tr, f.in.Model.Slicer), f.in)
		if zoom {
			// A resolution change that built: the ladder either made it a
			// derivation (the level was warm) or it fell through to the
			// event index. Same-level builds are pans, counted elsewhere.
			switch f.kind {
			case BuildDerived:
				c.stats.ZoomDerived.Add(1)
			case BuildScratch:
				c.stats.ZoomScratch.Add(1)
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
	cancel() // release the flight context's resources
	return f.in, f.kind, f.err
}

// watchWaiter ties one caller's request context to a flight: when the
// caller's ctx dies, its waiter reference is dropped, and the last drop
// cancels the flight's build context. The goroutine exits as soon as the
// flight completes, so a finished flight pins nothing. Contexts that can
// never be cancelled (ctx.Done() == nil, e.g. context.Background()) hold
// their reference forever without spawning anything.
func (c *InputCache) watchWaiter(f *flight, ctx context.Context) {
	if ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			f.waiters--
			abandoned := f.waiters == 0
			c.mu.Unlock()
			if abandoned {
				f.cancel()
			}
		case <-f.done:
		}
	}()
}

// nearestLocked finds the cached window of the same trace load and slice
// count sharing the most slices with target, together with target
// re-anchored onto that entry's grid. Windows built independently at the
// same resolution carry distinct float anchors even when their grids
// coincide, so alignment goes two ways: the exact grid relation first
// (microscopic.GridOverlap), then a numeric re-anchor that is accepted
// only if shifting the candidate's slicer reproduces the requested
// boundary floats bit-exactly.
func (c *InputCache) nearestLocked(tr *Trace, target timeslice.Slicer) (*entry, timeslice.Slicer) {
	var best *entry
	bestW := 0
	bestSl := target
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.key.trace != tr.ID || e.key.gen != tr.gen || e.key.slices != target.N {
			continue
		}
		cand := e.in.Model.Slicer
		ov := microscopic.GridOverlap(cand, target)
		sl := target
		if !ov.Shared() {
			var ok bool
			if sl, ok = reanchor(cand, target); !ok {
				continue
			}
			ov = microscopic.GridOverlap(cand, sl)
		}
		if ov.W > bestW {
			best, bestW, bestSl = e, ov.W, sl
		}
	}
	return best, bestSl
}

// reanchor tries to express target on base's grid: if some k-slice shift
// of base reproduces target's boundary floats exactly, the shifted slicer
// is target as base's grid sees it. Anything short of bit-exact equality
// is rejected — close-but-different windows must rebuild, never reuse.
func reanchor(base, target timeslice.Slicer) (timeslice.Slicer, bool) {
	w := base.Width()
	if w <= 0 || base.N != target.N {
		return timeslice.Slicer{}, false
	}
	k := int(math.Round((target.Start - base.Start) / w))
	cand := base.Shift(k)
	if cand.Start != target.Start || cand.End != target.End {
		return timeslice.Slicer{}, false
	}
	return cand, true
}

// ladderLocked returns (creating if needed) the trace load's ladder.
func (c *InputCache) ladderLocked(tg traceGen) *ladder {
	ld := c.ladders[tg]
	if ld == nil {
		ld = &ladder{resident: make(map[uint64]windowKey)}
		c.ladders[tg] = ld
	}
	return ld
}

// noteLevelLocked records key's grid level as the trace's last requested
// resolution and reports whether this request changed level — a zoom, as
// opposed to a pan or re-query at the current resolution.
func (c *InputCache) noteLevelLocked(key windowKey) bool {
	ld := c.ladderLocked(traceGen{key.trace, key.gen})
	zoom := ld.hasLast && ld.last != key.level
	ld.last, ld.hasLast = key.level, true
	return zoom
}

// touchLadderLocked makes key the resident of its grid level and moves
// the level to the most-recently-used end, dropping the oldest level's
// pin beyond the cap. The resident entry per level is exempt from the
// first eviction pass, so a hot trace's ladder survives pressure from
// one-off windows.
func (c *InputCache) touchLadderLocked(key windowKey) {
	ld := c.ladderLocked(traceGen{key.trace, key.gen})
	if _, ok := ld.resident[key.level]; !ok && len(ld.resident) >= c.ladderMax {
		oldest := ld.order[0]
		ld.order = ld.order[1:]
		delete(ld.resident, oldest)
	}
	for i, l := range ld.order {
		if l == key.level {
			ld.order = append(ld.order[:i], ld.order[i+1:]...)
			break
		}
	}
	ld.order = append(ld.order, key.level)
	ld.resident[key.level] = key
}

// pinnedLocked reports whether e is its level's ladder resident.
func (c *InputCache) pinnedLocked(e *entry) bool {
	ld := c.ladders[traceGen{e.key.trace, e.key.gen}]
	return ld != nil && ld.resident[e.key.level] == e.key
}

// Admit is the arithmetic admission guard: it rejects a window whose
// Input alone would exceed the cache budget, computed from the trace and
// slice-count shape (core.EstimateMemoryBytes) before any arena is
// allocated or any build starts — one oversized request must not evict an
// entire working ladder just to cache a single entry that the next insert
// drops anyway. A disabled cache admits everything (there is no ladder to
// protect).
func (c *InputCache) Admit(tr *Trace, sl timeslice.Slicer) error {
	if c.budget <= 0 {
		return nil
	}
	est := core.EstimateMemoryBytes(tr.resl.Hierarchy().NumNodes(), len(tr.resl.States()), sl.N)
	// Disk-backed indexes keep decoded chunks resident while serving
	// fills; that memory shares the machine with the Input arenas, so
	// admission charges it against the budget instead of pretending the
	// arenas are the only residents.
	avail := c.budget - tr.resl.OpenChunkBytes()
	if est > avail {
		c.stats.Rejected.Add(1)
		return fmt.Errorf("window at %d slices needs ~%d bytes of Input arenas, cache budget is %d bytes (%d held by open index chunks)",
			sl.N, est, c.budget, c.budget-avail)
	}
	return nil
}

// Cached reports whether sl's exact window is resident (refine probe —
// no stats, no LRU movement).
func (c *InputCache) Cached(tr *Trace, sl timeslice.Slicer) bool {
	key := keyFor(tr, sl)
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Preview returns a coarse stand-in for sl's window for progressive
// responses: the tightest cached window of the same trace load that
// contains [sl.Start, sl.End] — any level — served through its memoized
// pair-merged overview. Nil when nothing covers the request (first touch
// of a region) — the caller falls back to the synchronous path.
func (c *InputCache) Preview(tr *Trace, sl timeslice.Slicer) *core.Input {
	key := keyFor(tr, sl)
	c.mu.Lock()
	var best *entry
	var bestEl *list.Element
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.key.trace != tr.ID || e.key.gen != tr.gen || e.key == key {
			continue
		}
		if e.key.start > sl.Start || e.key.end < sl.End {
			continue
		}
		if best == nil || e.key.end-e.key.start < best.key.end-best.key.start {
			best, bestEl = e, el
		}
	}
	if best == nil {
		c.mu.Unlock()
		return nil
	}
	c.lru.MoveToFront(bestEl)
	c.mu.Unlock()
	return c.overview(best)
}

// previewCoarsenMin: below this |T| a covering window is cheap enough to
// solve as-is and doubles as its own preview; at or above it the preview
// runs at half resolution (the solve is O(|T|³) — the coarse overview
// answers ~8× faster).
const previewCoarsenMin = 32

// overview returns e's preview Input: the entry's own Input for small
// windows, otherwise its factor-2 Coarsen, built at most once per entry
// and charged against the cache budget alongside the entry.
func (c *InputCache) overview(e *entry) *core.Input {
	if e.key.slices < previewCoarsenMin || e.key.slices%2 != 0 {
		return e.in
	}
	e.ovMu.Lock()
	defer e.ovMu.Unlock()
	if e.ov == nil {
		ov, err := e.in.Coarsen(2)
		if err != nil {
			return e.in
		}
		e.ov = ov
		c.mu.Lock()
		if el, ok := c.entries[e.key]; ok && el.Value.(*entry) == e {
			e.ovBytes = ov.MemoryBytes()
			e.bytes += e.ovBytes
			c.bytes += int64(e.ovBytes)
			c.evictToBudgetLocked()
		}
		c.mu.Unlock()
	}
	return e.ov
}

// FailpointFlight names the fault-injection site at the start of every
// singleflight build, evaluated with the flight's detached context.
// Chaos tests inject errors, delays and panics here; deterministic tests
// use failpoint.EnableFunc to hold a build in place and observe the
// all-waiters-cancelled semantics.
const FailpointFlight = "server/flight"

// runBuild is build wrapped in the overload and fault armor every flight
// gets: the build gate (bounded concurrency, FIFO queue, early shedding
// — reqCtx contributes the deadline the doom check runs against) and a
// panic barrier. A panicking build must fail its flight like any other
// error — the normal unwind in getOnce still deletes the inflight entry
// and closes f.done, so every coalesced waiter gets the 500 instead of
// blocking forever on a flight that will never complete.
func (c *InputCache) runBuild(ctx, reqCtx context.Context, tr *Trace, sl timeslice.Slicer, src *entry, aligned timeslice.Slicer) (in *core.Input, kind BuildKind, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.stats.Panics.Add(1)
			in, kind = nil, ""
			err = fmt.Errorf("window build panicked: %v", r)
		}
	}()
	if c.gate != nil {
		release, gerr := c.gate.Acquire(ctx, reqCtx)
		if gerr != nil {
			return nil, "", gerr
		}
		start := time.Now()
		defer func() {
			c.gate.RecordBuild(time.Since(start))
			release()
		}()
	}
	return c.build(ctx, tr, sl, src, aligned)
}

// build produces the Input for sl outside the cache lock: derived from
// src when a neighbor overlaps, from scratch otherwise. src.in is
// immutable, so the build is safe even if the entry is evicted meanwhile.
// ctx is the flight's detached context: it is checked between the build's
// stages (model fill, input pass) and — through NewInputContext /
// UpdateContext — once per hierarchy node inside the matrix fill itself,
// so a flight every waiter abandoned dies mid-fill rather than running
// its most expensive step to completion for a dead Input.
func (c *InputCache) build(ctx context.Context, tr *Trace, sl timeslice.Slicer, src *entry, aligned timeslice.Slicer) (*core.Input, BuildKind, error) {
	if err := failpoint.InjectContext(ctx, FailpointFlight); err != nil {
		return nil, "", err
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	if src != nil {
		if ov := microscopic.GridOverlap(src.in.Model.Slicer, aligned); ov.Shared() {
			m, shiftOv, err := tr.resl.Shift(src.in.Model, ov.Shift())
			if err != nil {
				return nil, "", err
			}
			if err := ctx.Err(); err != nil {
				return nil, "", err
			}
			in, err := src.in.UpdateContext(ctx, m, shiftOv)
			if err != nil {
				return nil, "", err
			}
			c.stats.Derived.Add(1)
			return in, BuildDerived, nil
		}
	}
	m, err := tr.resl.BuildAt(sl)
	if err != nil {
		return nil, "", err
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	in, err := core.NewInputContext(ctx, m, c.opts)
	if err != nil {
		return nil, "", err
	}
	c.stats.Scratch.Add(1)
	return in, BuildScratch, nil
}

// noteAborted records one cancelled request in the serve stats; the
// handlers call it whenever they map a cancellation to a client response.
func (c *InputCache) noteAborted() { c.stats.Aborted.Add(1) }

// noteShed records one load-shed request (503 + Retry-After).
func (c *InputCache) noteShed() { c.stats.Shed.Add(1) }

// notePanic records one recovered panic (handler middleware; flight
// panics are counted at the recovery site in runBuild).
func (c *InputCache) notePanic() { c.stats.Panics.Add(1) }

// noteDegraded records one request answered with the coarse preview
// because the fine build was slow or faulted.
func (c *InputCache) noteDegraded() { c.stats.Degraded.Add(1) }

// noteSweep records one multi-p query served through the fused sweep path
// (/significant, /quality) and the number of p points it answered.
func (c *InputCache) noteSweep(ps int) {
	c.stats.SweepQueries.Add(1)
	c.stats.SweepPs.Add(int64(ps))
}

// insertLocked caches in under key and evicts from the LRU tail until the
// byte budget holds. The inserted entry itself is exempt from its own
// eviction pass (an over-budget single Input still serves its request and
// is dropped on the next insert).
func (c *InputCache) insertLocked(key windowKey, in *core.Input) {
	if c.budget <= 0 {
		return
	}
	if key.gen <= c.purged[key.trace] { // built across an unload: discard
		return
	}
	if el, ok := c.entries[key]; ok { // lost a race with an equivalent build
		c.lru.MoveToFront(el)
		c.touchLadderLocked(key)
		return
	}
	e := &entry{key: key, in: in, bytes: in.MemoryBytes()}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += int64(e.bytes)
	c.touchLadderLocked(key)
	c.evictToBudgetLocked()
}

// Seed inserts an already-built Input under its own window key — the
// follower's per-tick publish of the live window, so the first query
// after a tick is a plain hit. Subject to the same admission rules as a
// miss-path insert (budget, purge floor, ladder accounting).
func (c *InputCache) Seed(tr *Trace, in *core.Input) {
	if in == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(keyFor(tr, in.Model.Slicer), in)
}

// refreshLocked re-reads an entry's byte cost (it grows as the Input's
// bounded solver pool warms up) and reruns eviction if the total
// overflows; the refreshed entry sits at the LRU front, so it is never
// its own victim.
func (c *InputCache) refreshLocked(el *list.Element) {
	e := el.Value.(*entry)
	now := e.in.MemoryBytes() + e.ovBytes
	if now == e.bytes {
		return
	}
	c.bytes += int64(now - e.bytes)
	e.bytes = now
	c.evictToBudgetLocked()
}

// evictToBudgetLocked brings the cache back under budget in two passes
// from the LRU tail: first sparing ladder residents (one window per
// visited resolution per hot trace stays warm under pressure from
// one-off windows), then — if the pins alone still overflow — evicting
// regardless, because the byte budget is the harder promise. The LRU
// front (the entry that triggered the pass) is never its own victim.
func (c *InputCache) evictToBudgetLocked() {
	var prev *list.Element
	for el := c.lru.Back(); el != nil && el.Prev() != nil && c.bytes > c.budget; el = prev {
		prev = el.Prev()
		if c.pinnedLocked(el.Value.(*entry)) {
			continue
		}
		c.evictLocked(el)
	}
	for c.bytes > c.budget && c.lru.Len() > 1 {
		c.evictLocked(c.lru.Back())
	}
}

func (c *InputCache) evictLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(e.bytes)
	c.stats.Evictions.Add(1)
	if ld := c.ladders[traceGen{e.key.trace, e.key.gen}]; ld != nil && ld.resident[e.key.level] == e.key {
		delete(ld.resident, e.key.level)
		for i, l := range ld.order {
			if l == e.key.level {
				ld.order = append(ld.order[:i], ld.order[i+1:]...)
				break
			}
		}
	}
}

// PurgeTrace drops every cached window of the given trace (unload path)
// and records gen as the trace's purged-generation floor, so builds still
// in flight for the unloaded generation discard their result at insert
// instead of parking an unreachable entry against the budget.
func (c *InputCache) PurgeTrace(traceID string, gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.purged[traceID] {
		c.purged[traceID] = gen
	}
	for tg := range c.ladders {
		if tg.trace == traceID {
			delete(c.ladders, tg)
		}
	}
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*entry).key.trace == traceID {
			c.evictLocked(el)
			n++
		}
	}
	return n
}

// Snapshot returns the current counters plus the cache's occupancy.
func (c *InputCache) Snapshot() StatsSnapshot {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	s := c.stats.snapshot()
	s.Entries = entries
	s.Bytes = bytes
	s.BudgetBytes = c.budget
	return s
}

// insertStaleForTest re-inserts a scratch build under an old trace
// generation, simulating a build that was in flight across an unload;
// tests use it to prove generation isolation.
func (c *InputCache) insertStaleForTest(tr *Trace, sl timeslice.Slicer) {
	m, err := tr.resl.BuildAt(sl)
	if err != nil {
		panic(err) // test-only helper; RAM-backed fills cannot fail
	}
	in := core.NewInput(m, c.opts)
	c.mu.Lock()
	c.insertLocked(keyFor(tr, sl), in)
	c.mu.Unlock()
}
