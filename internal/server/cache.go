package server

import (
	"container/list"
	"context"
	"math"
	"sync"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

// BuildKind records how a window's Input was obtained, for the
// per-request log line and /debug/cachestats.
type BuildKind string

const (
	// BuildHit: the exact window was cached.
	BuildHit BuildKind = "hit"
	// BuildDerived: a miss served by Input.Update from the nearest cached
	// overlapping window (O(Δ·|T|) per node instead of O(|T|²)).
	BuildDerived BuildKind = "derived"
	// BuildScratch: a miss with no overlapping neighbor — a full NewInput
	// over a Reslicer-filled model.
	BuildScratch BuildKind = "scratch"
	// BuildCoalesced: the request piggybacked on an identical in-flight
	// build (singleflight).
	BuildCoalesced BuildKind = "coalesced"
)

// windowKey identifies one cached Input: the trace load (id + its load
// generation, so a reloaded id never matches the old load's entries or
// in-flight builds), the slice count and the exact window floats. Two
// windows on the same grid at different offsets hash to different keys;
// the grid relation between them is what the derivation path exploits.
type windowKey struct {
	trace      string
	gen        uint64
	slices     int
	start, end float64
}

// entry is one cached Input on the LRU list.
type entry struct {
	key   windowKey
	in    *core.Input
	bytes int
}

// flight is one in-flight build; concurrent requests for the same key
// wait on done instead of building again. The build runs under the
// flight's own context, detached from the leader's request: a singleflight
// result is shared, so one impatient caller must not kill work other
// callers still want. Instead every participant (leader included) holds a
// waiter reference; a caller whose request context dies drops its
// reference, and when the count reaches zero — every response that would
// have carried this Input has been abandoned — cancel fires and the build
// aborts at its next check.
type flight struct {
	done chan struct{}
	in   *core.Input
	kind BuildKind
	err  error

	ctx     context.Context // the build's detached context
	cancel  context.CancelFunc
	waiters int // guarded by the cache mu; leader counts as one
}

// InputCache is the window-keyed Input cache of the serving layer: an LRU
// over (trace, slice count, window) with a byte budget derived from
// core.Input.MemoryBytes. A miss does not go straight to NewInput — it
// first looks for the nearest cached window of the same trace and shape
// that overlaps the request on its slice grid (microscopic.GridOverlap)
// and derives the new Input incrementally via Input.Update, falling back
// to a from-scratch build only when nothing overlaps. Concurrent requests
// for the same window are deduplicated (singleflight): one build runs,
// the rest wait for its result.
type InputCache struct {
	budget int64
	opts   core.Options

	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	entries  map[windowKey]*list.Element
	inflight map[windowKey]*flight
	bytes    int64
	// purged[trace] is the highest unloaded generation per trace id:
	// inserts at or below it (builds that were in flight across an
	// unload) are discarded instead of parking unreachable entries
	// against the budget.
	purged map[string]uint64

	stats Stats
}

// NewInputCache returns a cache holding at most budget bytes of Input
// arenas (≤ 0 keeps nothing cached — every request builds, which the
// eviction and benchmark paths use). opts configures every Input built
// through the cache.
func NewInputCache(budget int64, opts core.Options) *InputCache {
	return &InputCache{
		budget:   budget,
		opts:     opts,
		lru:      list.New(),
		entries:  make(map[windowKey]*list.Element),
		inflight: make(map[windowKey]*flight),
		purged:   make(map[string]uint64),
	}
}

func keyFor(tr *Trace, sl timeslice.Slicer) windowKey {
	return windowKey{trace: tr.ID, gen: tr.gen, slices: sl.N, start: sl.Start, end: sl.End}
}

// Get returns the Input for the trace restricted to sl's window, and how
// it was obtained. The returned Input is immutable and remains valid
// after eviction; callers never hold cache locks while using it.
//
// ctx is the caller's request context. A cache hit is served regardless
// (it costs one map lookup). On a miss the build runs under the flight's
// detached context (see flight); ctx only governs this caller's stake in
// it — an already-cancelled ctx returns ctx.Err() before any work starts,
// and a ctx cancelled mid-wait abandons the flight (the build itself dies
// only once every waiter has abandoned it).
//
// A cancellation error is therefore only ever this caller's own: a live
// request that runs into a flight all of whose waiters already cancelled
// does not inherit the dying build's ctx.Err() — it waits out the
// abandoned flight's unwind and retries with a fresh build.
func (c *InputCache) Get(ctx context.Context, tr *Trace, sl timeslice.Slicer) (*core.Input, BuildKind, error) {
	for {
		in, kind, err := c.getOnce(ctx, tr, sl)
		if err != nil && isCancellation(err) && ctx.Err() == nil {
			// The flight this caller coalesced onto was abandoned by its
			// other waiters and died with their cancellation, not ours.
			// The flight is (or is about to be) out of the inflight map;
			// go again and build it for real.
			continue
		}
		return in, kind, err
	}
}

func (c *InputCache) getOnce(ctx context.Context, tr *Trace, sl timeslice.Slicer) (*core.Input, BuildKind, error) {
	key := keyFor(tr, sl)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits.Add(1)
		in := el.Value.(*entry).in
		c.refreshLocked(el)
		c.mu.Unlock()
		return in, BuildHit, nil
	}
	if err := ctx.Err(); err != nil {
		// Expired before any build work: fail fast rather than start (or
		// pile onto) a build whose response this caller will never read.
		c.mu.Unlock()
		return nil, "", err
	}
	if f, ok := c.inflight[key]; ok {
		if f.ctx.Err() != nil {
			// Every waiter already abandoned this flight; its build is
			// unwinding toward a cancellation error. Joining it would only
			// inherit that error — wait out the unwind instead, then let
			// the caller's retry start a fresh flight.
			c.mu.Unlock()
			select {
			case <-f.done:
				return nil, BuildCoalesced, context.Canceled
			case <-ctx.Done():
				return nil, BuildCoalesced, ctx.Err()
			}
		}
		c.stats.Coalesced.Add(1)
		f.waiters++
		c.mu.Unlock()
		c.watchWaiter(f, ctx)
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, BuildCoalesced, ctx.Err()
		}
		if f.err != nil {
			return nil, BuildCoalesced, f.err
		}
		return f.in, BuildCoalesced, nil
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), ctx: fctx, cancel: cancel, waiters: 1}
	c.inflight[key] = f
	c.stats.Misses.Add(1)
	src, aligned := c.nearestLocked(tr, sl)
	c.mu.Unlock()
	c.watchWaiter(f, ctx)

	f.in, f.kind, f.err = c.build(fctx, tr, sl, src, aligned)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(keyFor(tr, f.in.Model.Slicer), f.in)
	}
	c.mu.Unlock()
	close(f.done)
	cancel() // release the flight context's resources
	return f.in, f.kind, f.err
}

// watchWaiter ties one caller's request context to a flight: when the
// caller's ctx dies, its waiter reference is dropped, and the last drop
// cancels the flight's build context. The goroutine exits as soon as the
// flight completes, so a finished flight pins nothing. Contexts that can
// never be cancelled (ctx.Done() == nil, e.g. context.Background()) hold
// their reference forever without spawning anything.
func (c *InputCache) watchWaiter(f *flight, ctx context.Context) {
	if ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			f.waiters--
			abandoned := f.waiters == 0
			c.mu.Unlock()
			if abandoned {
				f.cancel()
			}
		case <-f.done:
		}
	}()
}

// nearestLocked finds the cached window of the same trace load and slice
// count sharing the most slices with target, together with target
// re-anchored onto that entry's grid. Windows built independently at the
// same resolution carry distinct float anchors even when their grids
// coincide, so alignment goes two ways: the exact grid relation first
// (microscopic.GridOverlap), then a numeric re-anchor that is accepted
// only if shifting the candidate's slicer reproduces the requested
// boundary floats bit-exactly.
func (c *InputCache) nearestLocked(tr *Trace, target timeslice.Slicer) (*entry, timeslice.Slicer) {
	var best *entry
	bestW := 0
	bestSl := target
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.key.trace != tr.ID || e.key.gen != tr.gen || e.key.slices != target.N {
			continue
		}
		cand := e.in.Model.Slicer
		ov := microscopic.GridOverlap(cand, target)
		sl := target
		if !ov.Shared() {
			var ok bool
			if sl, ok = reanchor(cand, target); !ok {
				continue
			}
			ov = microscopic.GridOverlap(cand, sl)
		}
		if ov.W > bestW {
			best, bestW, bestSl = e, ov.W, sl
		}
	}
	return best, bestSl
}

// reanchor tries to express target on base's grid: if some k-slice shift
// of base reproduces target's boundary floats exactly, the shifted slicer
// is target as base's grid sees it. Anything short of bit-exact equality
// is rejected — close-but-different windows must rebuild, never reuse.
func reanchor(base, target timeslice.Slicer) (timeslice.Slicer, bool) {
	w := base.Width()
	if w <= 0 || base.N != target.N {
		return timeslice.Slicer{}, false
	}
	k := int(math.Round((target.Start - base.Start) / w))
	cand := base.Shift(k)
	if cand.Start != target.Start || cand.End != target.End {
		return timeslice.Slicer{}, false
	}
	return cand, true
}

// testHookBuildStart, when set by a test, runs at the start of every
// flight's build with the flight's detached context, letting tests hold a
// build in place and observe the all-waiters-cancelled semantics
// deterministically.
var testHookBuildStart func(context.Context)

// build produces the Input for sl outside the cache lock: derived from
// src when a neighbor overlaps, from scratch otherwise. src.in is
// immutable, so the build is safe even if the entry is evicted meanwhile.
// ctx is the flight's detached context: it is checked between the build's
// stages (model fill, input pass) and — through NewInputContext /
// UpdateContext — once per hierarchy node inside the matrix fill itself,
// so a flight every waiter abandoned dies mid-fill rather than running
// its most expensive step to completion for a dead Input.
func (c *InputCache) build(ctx context.Context, tr *Trace, sl timeslice.Slicer, src *entry, aligned timeslice.Slicer) (*core.Input, BuildKind, error) {
	if testHookBuildStart != nil {
		testHookBuildStart(ctx)
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	if src != nil {
		if ov := microscopic.GridOverlap(src.in.Model.Slicer, aligned); ov.Shared() {
			m, shiftOv := tr.resl.Shift(src.in.Model, ov.Shift())
			if err := ctx.Err(); err != nil {
				return nil, "", err
			}
			in, err := src.in.UpdateContext(ctx, m, shiftOv)
			if err != nil {
				return nil, "", err
			}
			c.stats.Derived.Add(1)
			return in, BuildDerived, nil
		}
	}
	m := tr.resl.BuildAt(sl)
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	in, err := core.NewInputContext(ctx, m, c.opts)
	if err != nil {
		return nil, "", err
	}
	c.stats.Scratch.Add(1)
	return in, BuildScratch, nil
}

// noteAborted records one cancelled request in the serve stats; the
// handlers call it whenever they map a cancellation to a client response.
func (c *InputCache) noteAborted() { c.stats.Aborted.Add(1) }

// noteSweep records one multi-p query served through the fused sweep path
// (/significant, /quality) and the number of p points it answered.
func (c *InputCache) noteSweep(ps int) {
	c.stats.SweepQueries.Add(1)
	c.stats.SweepPs.Add(int64(ps))
}

// insertLocked caches in under key and evicts from the LRU tail until the
// byte budget holds. The inserted entry itself is exempt from its own
// eviction pass (an over-budget single Input still serves its request and
// is dropped on the next insert).
func (c *InputCache) insertLocked(key windowKey, in *core.Input) {
	if c.budget <= 0 {
		return
	}
	if key.gen <= c.purged[key.trace] { // built across an unload: discard
		return
	}
	if el, ok := c.entries[key]; ok { // lost a race with an equivalent build
		c.lru.MoveToFront(el)
		return
	}
	e := &entry{key: key, in: in, bytes: in.MemoryBytes()}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += int64(e.bytes)
	for c.bytes > c.budget && c.lru.Len() > 1 {
		c.evictLocked(c.lru.Back())
	}
}

// refreshLocked re-reads an entry's byte cost (it grows as the Input's
// bounded solver pool warms up) and reruns eviction if the total
// overflows; the refreshed entry sits at the LRU front, so it is never
// its own victim.
func (c *InputCache) refreshLocked(el *list.Element) {
	e := el.Value.(*entry)
	now := e.in.MemoryBytes()
	if now == e.bytes {
		return
	}
	c.bytes += int64(now - e.bytes)
	e.bytes = now
	for c.bytes > c.budget && c.lru.Len() > 1 {
		c.evictLocked(c.lru.Back())
	}
}

func (c *InputCache) evictLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(e.bytes)
	c.stats.Evictions.Add(1)
}

// PurgeTrace drops every cached window of the given trace (unload path)
// and records gen as the trace's purged-generation floor, so builds still
// in flight for the unloaded generation discard their result at insert
// instead of parking an unreachable entry against the budget.
func (c *InputCache) PurgeTrace(traceID string, gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.purged[traceID] {
		c.purged[traceID] = gen
	}
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*entry).key.trace == traceID {
			c.evictLocked(el)
			n++
		}
	}
	return n
}

// Snapshot returns the current counters plus the cache's occupancy.
func (c *InputCache) Snapshot() StatsSnapshot {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	s := c.stats.snapshot()
	s.Entries = entries
	s.Bytes = bytes
	s.BudgetBytes = c.budget
	return s
}

// insertStaleForTest re-inserts a scratch build under an old trace
// generation, simulating a build that was in flight across an unload;
// tests use it to prove generation isolation.
func (c *InputCache) insertStaleForTest(tr *Trace, sl timeslice.Slicer) {
	in := core.NewInput(tr.resl.BuildAt(sl), c.opts)
	c.mu.Lock()
	c.insertLocked(keyFor(tr, sl), in)
	c.mu.Unlock()
}
