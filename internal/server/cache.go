package server

import (
	"container/list"
	"math"
	"sync"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

// BuildKind records how a window's Input was obtained, for the
// per-request log line and /debug/cachestats.
type BuildKind string

const (
	// BuildHit: the exact window was cached.
	BuildHit BuildKind = "hit"
	// BuildDerived: a miss served by Input.Update from the nearest cached
	// overlapping window (O(Δ·|T|) per node instead of O(|T|²)).
	BuildDerived BuildKind = "derived"
	// BuildScratch: a miss with no overlapping neighbor — a full NewInput
	// over a Reslicer-filled model.
	BuildScratch BuildKind = "scratch"
	// BuildCoalesced: the request piggybacked on an identical in-flight
	// build (singleflight).
	BuildCoalesced BuildKind = "coalesced"
)

// windowKey identifies one cached Input: the trace load (id + its load
// generation, so a reloaded id never matches the old load's entries or
// in-flight builds), the slice count and the exact window floats. Two
// windows on the same grid at different offsets hash to different keys;
// the grid relation between them is what the derivation path exploits.
type windowKey struct {
	trace      string
	gen        uint64
	slices     int
	start, end float64
}

// entry is one cached Input on the LRU list.
type entry struct {
	key   windowKey
	in    *core.Input
	bytes int
}

// flight is one in-flight build; concurrent requests for the same key
// wait on done instead of building again.
type flight struct {
	done chan struct{}
	in   *core.Input
	kind BuildKind
	err  error
}

// InputCache is the window-keyed Input cache of the serving layer: an LRU
// over (trace, slice count, window) with a byte budget derived from
// core.Input.MemoryBytes. A miss does not go straight to NewInput — it
// first looks for the nearest cached window of the same trace and shape
// that overlaps the request on its slice grid (microscopic.GridOverlap)
// and derives the new Input incrementally via Input.Update, falling back
// to a from-scratch build only when nothing overlaps. Concurrent requests
// for the same window are deduplicated (singleflight): one build runs,
// the rest wait for its result.
type InputCache struct {
	budget int64
	opts   core.Options

	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	entries  map[windowKey]*list.Element
	inflight map[windowKey]*flight
	bytes    int64
	// purged[trace] is the highest unloaded generation per trace id:
	// inserts at or below it (builds that were in flight across an
	// unload) are discarded instead of parking unreachable entries
	// against the budget.
	purged map[string]uint64

	stats Stats
}

// NewInputCache returns a cache holding at most budget bytes of Input
// arenas (≤ 0 keeps nothing cached — every request builds, which the
// eviction and benchmark paths use). opts configures every Input built
// through the cache.
func NewInputCache(budget int64, opts core.Options) *InputCache {
	return &InputCache{
		budget:   budget,
		opts:     opts,
		lru:      list.New(),
		entries:  make(map[windowKey]*list.Element),
		inflight: make(map[windowKey]*flight),
		purged:   make(map[string]uint64),
	}
}

func keyFor(tr *Trace, sl timeslice.Slicer) windowKey {
	return windowKey{trace: tr.ID, gen: tr.gen, slices: sl.N, start: sl.Start, end: sl.End}
}

// Get returns the Input for the trace restricted to sl's window, and how
// it was obtained. The returned Input is immutable and remains valid
// after eviction; callers never hold cache locks while using it.
func (c *InputCache) Get(tr *Trace, sl timeslice.Slicer) (*core.Input, BuildKind, error) {
	key := keyFor(tr, sl)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits.Add(1)
		in := el.Value.(*entry).in
		c.refreshLocked(el)
		c.mu.Unlock()
		return in, BuildHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.stats.Coalesced.Add(1)
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, BuildCoalesced, f.err
		}
		return f.in, BuildCoalesced, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.stats.Misses.Add(1)
	src, aligned := c.nearestLocked(tr, sl)
	c.mu.Unlock()

	f.in, f.kind, f.err = c.build(tr, sl, src, aligned)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(keyFor(tr, f.in.Model.Slicer), f.in)
	}
	c.mu.Unlock()
	close(f.done)
	return f.in, f.kind, f.err
}

// nearestLocked finds the cached window of the same trace load and slice
// count sharing the most slices with target, together with target
// re-anchored onto that entry's grid. Windows built independently at the
// same resolution carry distinct float anchors even when their grids
// coincide, so alignment goes two ways: the exact grid relation first
// (microscopic.GridOverlap), then a numeric re-anchor that is accepted
// only if shifting the candidate's slicer reproduces the requested
// boundary floats bit-exactly.
func (c *InputCache) nearestLocked(tr *Trace, target timeslice.Slicer) (*entry, timeslice.Slicer) {
	var best *entry
	bestW := 0
	bestSl := target
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.key.trace != tr.ID || e.key.gen != tr.gen || e.key.slices != target.N {
			continue
		}
		cand := e.in.Model.Slicer
		ov := microscopic.GridOverlap(cand, target)
		sl := target
		if !ov.Shared() {
			var ok bool
			if sl, ok = reanchor(cand, target); !ok {
				continue
			}
			ov = microscopic.GridOverlap(cand, sl)
		}
		if ov.W > bestW {
			best, bestW, bestSl = e, ov.W, sl
		}
	}
	return best, bestSl
}

// reanchor tries to express target on base's grid: if some k-slice shift
// of base reproduces target's boundary floats exactly, the shifted slicer
// is target as base's grid sees it. Anything short of bit-exact equality
// is rejected — close-but-different windows must rebuild, never reuse.
func reanchor(base, target timeslice.Slicer) (timeslice.Slicer, bool) {
	w := base.Width()
	if w <= 0 || base.N != target.N {
		return timeslice.Slicer{}, false
	}
	k := int(math.Round((target.Start - base.Start) / w))
	cand := base.Shift(k)
	if cand.Start != target.Start || cand.End != target.End {
		return timeslice.Slicer{}, false
	}
	return cand, true
}

// build produces the Input for sl outside the cache lock: derived from
// src when a neighbor overlaps, from scratch otherwise. src.in is
// immutable, so the build is safe even if the entry is evicted meanwhile.
func (c *InputCache) build(tr *Trace, sl timeslice.Slicer, src *entry, aligned timeslice.Slicer) (*core.Input, BuildKind, error) {
	if src != nil {
		if ov := microscopic.GridOverlap(src.in.Model.Slicer, aligned); ov.Shared() {
			m, shiftOv := tr.resl.Shift(src.in.Model, ov.Shift())
			c.stats.Derived.Add(1)
			return src.in.Update(m, shiftOv), BuildDerived, nil
		}
	}
	c.stats.Scratch.Add(1)
	return core.NewInput(tr.resl.BuildAt(sl), c.opts), BuildScratch, nil
}

// insertLocked caches in under key and evicts from the LRU tail until the
// byte budget holds. The inserted entry itself is exempt from its own
// eviction pass (an over-budget single Input still serves its request and
// is dropped on the next insert).
func (c *InputCache) insertLocked(key windowKey, in *core.Input) {
	if c.budget <= 0 {
		return
	}
	if key.gen <= c.purged[key.trace] { // built across an unload: discard
		return
	}
	if el, ok := c.entries[key]; ok { // lost a race with an equivalent build
		c.lru.MoveToFront(el)
		return
	}
	e := &entry{key: key, in: in, bytes: in.MemoryBytes()}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += int64(e.bytes)
	for c.bytes > c.budget && c.lru.Len() > 1 {
		c.evictLocked(c.lru.Back())
	}
}

// refreshLocked re-reads an entry's byte cost (it grows as the Input's
// bounded solver pool warms up) and reruns eviction if the total
// overflows; the refreshed entry sits at the LRU front, so it is never
// its own victim.
func (c *InputCache) refreshLocked(el *list.Element) {
	e := el.Value.(*entry)
	now := e.in.MemoryBytes()
	if now == e.bytes {
		return
	}
	c.bytes += int64(now - e.bytes)
	e.bytes = now
	for c.bytes > c.budget && c.lru.Len() > 1 {
		c.evictLocked(c.lru.Back())
	}
}

func (c *InputCache) evictLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(e.bytes)
	c.stats.Evictions.Add(1)
}

// PurgeTrace drops every cached window of the given trace (unload path)
// and records gen as the trace's purged-generation floor, so builds still
// in flight for the unloaded generation discard their result at insert
// instead of parking an unreachable entry against the budget.
func (c *InputCache) PurgeTrace(traceID string, gen uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen > c.purged[traceID] {
		c.purged[traceID] = gen
	}
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*entry).key.trace == traceID {
			c.evictLocked(el)
			n++
		}
	}
	return n
}

// Snapshot returns the current counters plus the cache's occupancy.
func (c *InputCache) Snapshot() StatsSnapshot {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	s := c.stats.snapshot()
	s.Entries = entries
	s.Bytes = bytes
	s.BudgetBytes = c.budget
	return s
}

// insertStaleForTest re-inserts a scratch build under an old trace
// generation, simulating a build that was in flight across an unload;
// tests use it to prove generation isolation.
func (c *InputCache) insertStaleForTest(tr *Trace, sl timeslice.Slicer) {
	in := core.NewInput(tr.resl.BuildAt(sl), c.opts)
	c.mu.Lock()
	c.insertLocked(keyFor(tr, sl), in)
	c.mu.Unlock()
}
