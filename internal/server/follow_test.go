package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"ocelotl/internal/failpoint"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/testutil"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

// followEvents returns n deterministic time-ordered events over the
// followHeader tables — the stream a live writer flushes in prefixes.
func followEvents(n int) []trace.Event {
	evs := make([]trace.Event, n)
	for i := range evs {
		s := float64(i) * 0.02
		evs[i] = trace.Event{Resource: trace.ResourceID(i % 3), State: trace.StateID(i % 2),
			Start: s, End: s + 0.05}
	}
	return evs
}

func followHeader() traceio.Header {
	return traceio.Header{Resources: []string{"A/a0", "A/a1", "B/b0"},
		States: []string{"run", "wait"}, Start: 0, End: 10}
}

// liveWriter appends flushed batches to a trace file the way a live
// tracer would, keeping the stream open between batches.
type liveWriter struct {
	t *testing.T
	f *os.File
	w traceio.Writer
}

func newLiveWriter(t *testing.T, path string) *liveWriter {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traceio.NewWriter(f, traceio.FormatBinary, followHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.Flush(w); err != nil {
		t.Fatal(err)
	}
	lw := &liveWriter{t: t, f: f, w: w}
	t.Cleanup(func() { lw.f.Close() })
	return lw
}

func (lw *liveWriter) append(evs []trace.Event) {
	lw.t.Helper()
	for _, e := range evs {
		if err := lw.w.WriteEvent(e); err != nil {
			lw.t.Fatal(err)
		}
	}
	if err := traceio.Flush(lw.w); err != nil {
		lw.t.Fatal(err)
	}
}

// followLoad POSTs a follow-mode load and returns the created Info.
func followLoad(t *testing.T, ts *httptest.Server, id, path string, pollMs int) Info {
	t.Helper()
	body, _ := json.Marshal(loadRequest{ID: id, Path: path, Follow: true,
		PollMs: pollMs, LiveSlices: 10})
	resp, err := http.Post(ts.URL+"/traces", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("follow load: status %d (%s)", resp.StatusCode, raw)
	}
	var info Info
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Follow == nil {
		t.Fatalf("follow load response has no follow block: %s", raw)
	}
	return info
}

func readAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// waitForFollow polls the trace's Info until it has ingested at least
// `events` events — the per-round barrier in the live tests: once the
// writer stops, Events converges and the published snapshot is stable.
func waitForFollow(t *testing.T, ts *httptest.Server, id string, events int) Info {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last []byte
	for time.Now().Before(deadline) {
		resp, body := get(t, ts.URL+"/traces/"+id)
		last = body
		if resp.StatusCode == http.StatusOK {
			var info Info
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatal(err)
			}
			if info.Events >= events {
				return info
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("trace %s never reached %d events (last info: %s)", id, events, last)
	return Info{}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// liveQueryPath is the explicit-window form of fi's live window: per the
// FollowInfo contract it reproduces the same floats on any server.
func liveQueryPath(id string, fi *FollowInfo) string {
	return fmt.Sprintf("/traces/%s/aggregate?p=0.4&lo=%s&hi=%s&slices=%d&pan=%d",
		id, fmtFloat(fi.Lo), fmtFloat(fi.Hi), fi.Slices, fi.Pan)
}

// TestFollowE2EByteIdentity is the acceptance scenario: a daemon serving
// a trace that is still being written answers queries whose live window
// advances monotonically with the ingestion horizon, and every response
// is byte-identical to (a) the explicit-window form of the same query on
// the same server and (b) a scratch batch server loaded with exactly the
// events ingested at that tick.
func TestFollowE2EByteIdentity(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "live.bin")
	all := followEvents(400)
	lw := newLiveWriter(t, path)
	lw.append(all[:80])

	s := New(quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.StopFollowers()

	info := followLoad(t, ts, "live", path, 10)
	prevPan, prevHorizon := info.Follow.Pan, info.Follow.Horizon

	written := 80
	for _, cut := range []int{160, 240, 320, 400} {
		lw.append(all[written:cut])
		written = cut
		info = waitForFollow(t, ts, "live", cut)
		fi := info.Follow
		if fi == nil {
			t.Fatalf("cut %d: follow block disappeared", cut)
		}
		if fi.Pan < prevPan || fi.Horizon < prevHorizon {
			t.Fatalf("cut %d: live window went backwards: pan %d→%d, horizon %v→%v",
				cut, prevPan, fi.Pan, prevHorizon, fi.Horizon)
		}
		prevPan, prevHorizon = fi.Pan, fi.Horizon

		// live=1 and its explicit-window twin on the follow server.
		rLive, bLive := get(t, ts.URL+"/traces/live/aggregate?p=0.4&live=1")
		rExp, bExp := get(t, ts.URL+liveQueryPath("live", fi))
		if rLive.StatusCode != http.StatusOK || rExp.StatusCode != http.StatusOK {
			t.Fatalf("cut %d: live=%d (%s), explicit=%d (%s)",
				cut, rLive.StatusCode, bLive, rExp.StatusCode, bExp)
		}
		if !bytes.Equal(bLive, bExp) {
			t.Fatalf("cut %d: live=1 body differs from explicit window:\n%s\n%s", cut, bLive, bExp)
		}

		// Scratch batch server over exactly the ingested prefix, same id
		// so the bodies are comparable byte for byte.
		scratchPath := filepath.Join(dir, fmt.Sprintf("prefix%d.bin", cut))
		hdr := followHeader()
		if err := traceio.WriteFile(scratchPath, &trace.Trace{
			Resources: hdr.Resources, States: hdr.States,
			Events: all[:cut], Start: hdr.Start, End: hdr.End}); err != nil {
			t.Fatal(err)
		}
		s2 := New(quietConfig())
		ts2 := httptest.NewServer(s2.Handler())
		if _, err := s2.Registry().Load("live", scratchPath); err != nil {
			t.Fatal(err)
		}
		rS, bS := get(t, ts2.URL+liveQueryPath("live", fi))
		if rS.StatusCode != http.StatusOK {
			t.Fatalf("cut %d: scratch server: status %d (%s)", cut, rS.StatusCode, bS)
		}
		if !bytes.Equal(bLive, bS) {
			t.Fatalf("cut %d: follow body differs from scratch build:\n%s\n%s", cut, bLive, bS)
		}
		ts2.Close()
		if err := s2.Registry().CloseAll(); err != nil {
			t.Fatal(err)
		}
	}
	if info.Follow.Pan <= -10+1 {
		t.Fatalf("live window never advanced: final pan %d", info.Follow.Pan)
	}
	if info.Follow.Ticks == 0 {
		t.Fatal("no ingestion ticks recorded")
	}

	// Tear down through the HTTP path: DELETE stops the follower.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/live", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}
	quiesce(t, s.cache)
	checkByteAccounting(t, s.cache)
}

// TestFollowHorizonGuard: windows ending past the ingestion horizon are
// refused (they would cache unsealed values), and live=1 is only legal on
// follow-loaded traces.
func TestFollowHorizonGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.bin")
	lw := newLiveWriter(t, path)
	all := followEvents(100)
	lw.append(all)

	s, ts := newTestServer(t, quietConfig()) // preloads batch trace "art"
	defer s.StopFollowers()
	info := followLoad(t, ts, "live", path, 10)
	fi := info.Follow

	past := fmt.Sprintf("%s/traces/live/aggregate?p=0.4&lo=%s&hi=%s&slices=4",
		ts.URL, fmtFloat(fi.Horizon), fmtFloat(fi.Horizon+4))
	if resp, body := get(t, past); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("window past horizon: status %d (%s), want 400", resp.StatusCode, body)
	}
	if resp, body := get(t, ts.URL+"/traces/art/aggregate?p=0.4&live=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("live=1 on a batch trace: status %d (%s), want 400", resp.StatusCode, body)
	}
	// A sealed window (end ≤ horizon) is admitted.
	sealed := fmt.Sprintf("%s/traces/live/aggregate?p=0.4&lo=0&hi=%s&slices=4",
		ts.URL, fmtFloat(fi.Horizon))
	if resp, body := get(t, sealed); resp.StatusCode != http.StatusOK {
		t.Fatalf("sealed window: status %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestFollowDeleteStopsIngestion: DELETE on a follow trace stops the
// follower loop before the trace is removed — later appends are never
// ingested, the id stays 404, and nothing leaks.
func TestFollowDeleteStopsIngestion(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "live.bin")
	all := followEvents(300)
	lw := newLiveWriter(t, path)
	lw.append(all[:100])

	s := New(quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	followLoad(t, ts, "live", path, 5)
	lw.append(all[100:200])
	waitForFollow(t, ts, "live", 200)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/live", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}

	// The loop is gone: appending more events must change nothing.
	lw.append(all[200:])
	time.Sleep(50 * time.Millisecond)
	if resp, _ := get(t, ts.URL+"/traces/live"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace resurrected after DELETE: status %d", resp.StatusCode)
	}
	s.followMu.Lock()
	n := len(s.followers)
	s.followMu.Unlock()
	if n != 0 {
		t.Fatalf("%d followers tracked after DELETE, want 0", n)
	}
	quiesce(t, s.cache)
	checkByteAccounting(t, s.cache)
}

// TestFollowDrainParksSnapshots: StopFollowers (the daemon drain path)
// halts ingestion but keeps serving the last published snapshot.
func TestFollowDrainParksSnapshots(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	pa, pb := filepath.Join(dir, "a.bin"), filepath.Join(dir, "b.bin")
	all := followEvents(200)
	lwa, lwb := newLiveWriter(t, pa), newLiveWriter(t, pb)
	lwa.append(all[:100])
	lwb.append(all[:150])

	s := New(quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	followLoad(t, ts, "a", pa, 5)
	followLoad(t, ts, "b", pb, 5)
	waitForFollow(t, ts, "a", 100)
	waitForFollow(t, ts, "b", 150)

	s.StopFollowers()
	lwa.append(all[100:]) // nobody is listening anymore
	time.Sleep(30 * time.Millisecond)

	infoA := waitForFollow(t, ts, "a", 100)
	if infoA.Events != 100 {
		t.Fatalf("drained trace kept ingesting: %d events, want 100", infoA.Events)
	}
	if resp, body := get(t, ts.URL+"/traces/a/aggregate?p=0.4&live=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("parked snapshot not servable: status %d (%s)", resp.StatusCode, body)
	}
	if err := s.Registry().CloseAll(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowCancelInjection tears the follower down at randomized points
// while a writer appends and clients query the live window — the
// DELETE/ingestion/query races must never leak a goroutine or corrupt
// cache byte accounting.
func TestFollowCancelInjection(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 4; round++ {
		func() {
			dir := t.TempDir()
			path := filepath.Join(dir, "live.bin")
			all := followEvents(500)
			lw := newLiveWriter(t, path)
			lw.append(all[:50])

			s := New(quietConfig())
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer s.StopFollowers()
			followLoad(t, ts, "live", path, 2)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // writer
				defer wg.Done()
				for next := 70; next <= len(all); next += 20 {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
					lw.append(all[next-20 : next])
				}
			}()
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() { // querier
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, body := get(t, ts.URL+"/traces/live/aggregate?p=0.4&live=1")
						if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
							t.Errorf("round %d: live query status %d (%s)", round, resp.StatusCode, body)
							return
						}
					}
				}()
			}

			time.Sleep(time.Duration(5+rng.Intn(25)) * time.Millisecond)
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/live", nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusNoContent {
				t.Fatalf("round %d: DELETE status %d", round, dresp.StatusCode)
			}
			close(stop)
			wg.Wait()
			quiesce(t, s.cache)
			checkByteAccounting(t, s.cache)
		}()
	}
}

// TestChaosSoakFollow arms failpoints on the follow ingestion path — the
// tail reader and the index extend — while a writer streams batches and
// clients hammer the live window. Faults may delay ingestion but must
// never lose an event: once the failpoints disarm, the follower converges
// on exactly the written stream, still byte-identical to a scratch build.
// Runs under -race in CI's chaos step (name matches the TestChaosSoak
// pattern).
func TestChaosSoakFollow(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "live.bin")
	all := followEvents(600)
	lw := newLiveWriter(t, path)
	lw.append(all[:100])

	s := New(quietConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.StopFollowers()
	followLoad(t, ts, "live", path, 3)

	if err := failpoint.EnableSeeded(traceio.FailpointTail, "20%error(chaos)", 42); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.EnableSeeded(microscopic.FailpointExtend, "20%error(chaos)", 43); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := get(t, ts.URL+"/traces/live/aggregate?p=0.4&live=1")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("querier %d: status %d (%s)", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	for next := 125; next <= len(all); next += 25 {
		lw.append(all[next-25 : next])
		time.Sleep(3 * time.Millisecond)
	}

	// Disarm and converge: every written event must be ingested — armed
	// faults delayed ticks, they may not have dropped events.
	failpoint.DisableAll()
	info := waitForFollow(t, ts, "live", len(all))
	close(stop)
	wg.Wait()
	if info.Events != len(all) {
		t.Fatalf("event loss under chaos: %d ingested, want %d", info.Events, len(all))
	}

	scratchPath := filepath.Join(dir, "scratch.bin")
	hdr := followHeader()
	if err := traceio.WriteFile(scratchPath, &trace.Trace{
		Resources: hdr.Resources, States: hdr.States,
		Events: all, Start: hdr.Start, End: hdr.End}); err != nil {
		t.Fatal(err)
	}
	s2 := New(quietConfig())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if _, err := s2.Registry().Load("live", scratchPath); err != nil {
		t.Fatal(err)
	}
	_, bFollow := get(t, ts.URL+liveQueryPath("live", info.Follow))
	_, bScratch := get(t, ts2.URL+liveQueryPath("live", info.Follow))
	if !bytes.Equal(bFollow, bScratch) {
		t.Fatalf("post-chaos body differs from scratch build:\n%s\n%s", bFollow, bScratch)
	}
	if err := s2.Registry().CloseAll(); err != nil {
		t.Fatal(err)
	}
	quiesce(t, s.cache)
	checkByteAccounting(t, s.cache)
}
