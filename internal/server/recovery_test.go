package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/manifest"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/testutil"
	"ocelotl/internal/traceio"
)

// newStateServer builds a server with durable state in stateDir and runs
// recovery — the daemon boot sequence. Index stores land in
// stateDir/stores (the StateDir default).
func newStateServer(t *testing.T, stateDir string, mode microscopic.IndexMode) (*Server, *httptest.Server, *RecoveryReport) {
	t.Helper()
	cfg := quietConfig()
	cfg.StateDir = stateDir
	cfg.CheckpointTicks = 1
	cfg.Index = microscopic.IndexOptions{Mode: mode, Store: eventstore.Options{TargetChunkEvents: 32}}
	s := New(cfg)
	rep, err := s.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, rep
}

// crash simulates a kill -9 as far as durable state is concerned: the
// ingestion loops and the checkpoint keeper stop dead — no final
// checkpoint, no index close, no store removal. (The goroutines must
// still be stopped for the leak guard; a real SIGKILL stops them without
// any cleanup either.)
func crash(s *Server, ts *httptest.Server) {
	ts.Close()
	s.StopFollowers()
	s.CloseState()
}

// shutdown is the clean counterpart used by cleanups.
func shutdown(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	s.StopFollowers()
	s.CloseState()
	if err := s.Registry().CloseAll(); err != nil {
		t.Errorf("closing indexes: %v", err)
	}
}

func postLoad(t *testing.T, ts *httptest.Server, id, path string) {
	t.Helper()
	body, _ := json.Marshal(loadRequest{ID: id, Path: path})
	resp, err := http.Post(ts.URL+"/traces", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: status %d (%s)", resp.StatusCode, raw)
	}
}

func writeArtTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "art.otf2bin")
	if err := traceio.WriteFile(path, mpisim.ArtificialSized(24, 40)); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRecoverFreshDir: booting an empty state directory recovers to an
// empty registry and a working journal — not an error.
func TestRecoverFreshDir(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts, rep := newStateServer(t, t.TempDir(), microscopic.IndexAuto)
	defer shutdown(t, s, ts)
	if rep.Restored != 0 || rep.ManifestCorrupt || rep.Orphans != 0 {
		t.Fatalf("fresh dir recovery not empty: %+v", rep)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on fresh state: %v", err)
	}
	m, err := manifest.LoadFile(filepath.Join(s.stateDir, manifest.FileName))
	if err != nil || m == nil {
		t.Fatalf("manifest after checkpoint: m=%v err=%v", m, err)
	}
	if len(m.Traces) != 0 {
		t.Fatalf("empty server journaled %d traces", len(m.Traces))
	}
}

// TestCrashRecoveryReopensStore is the batch half of the restart
// contract: after a crash, a disk-indexed trace comes back by reopening
// its sealed store in place (no re-indexing), under its journaled
// generation, and serves byte-identical responses.
func TestCrashRecoveryReopensStore(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tracePath := writeArtTrace(t)
	stateDir := t.TempDir()
	q := "/traces/art/aggregate?p=0.4&slices=12"

	s1, ts1, _ := newStateServer(t, stateDir, microscopic.IndexDisk)
	postLoad(t, ts1, "art", tracePath)
	resp, respA := get(t, ts1.URL+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash query: %d (%s)", resp.StatusCode, respA)
	}
	tr1, _ := s1.Registry().Get("art")
	store1 := tr1.resl.StorePath()
	if store1 == "" || filepath.Dir(store1) != filepath.Join(stateDir, "stores") {
		t.Fatalf("store not in the state dir: %q", store1)
	}
	crash(s1, ts1)

	s2, ts2, rep := newStateServer(t, stateDir, microscopic.IndexDisk)
	defer shutdown(t, s2, ts2)
	if rep.Restored != 1 || rep.Reopened != 1 || rep.Rebuilt != 0 {
		t.Fatalf("want 1 reopened trace, got %+v", rep)
	}
	tr2, ok := s2.Registry().Get("art")
	if !ok {
		t.Fatal("trace not recovered")
	}
	if tr2.resl.StorePath() != store1 {
		t.Fatalf("recovery opened %q, crashed daemon used %q", tr2.resl.StorePath(), store1)
	}
	if tr2.gen != tr1.gen {
		t.Fatalf("generation changed across restart: %d -> %d", tr1.gen, tr2.gen)
	}
	resp, respB := get(t, ts2.URL+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash query: %d (%s)", resp.StatusCode, respB)
	}
	if !bytes.Equal(respA, respB) {
		t.Fatalf("responses diverge across restart:\n  pre:  %s\n  post: %s", respA, respB)
	}
}

// TestCrashRecoveryResumesFollower is the live half: a follower crashed
// mid-ingestion resumes at the journaled byte offset — no event lost, no
// event double-ingested, live responses bit-identical — and keeps
// ingesting what the writer appends after the restart.
func TestCrashRecoveryResumesFollower(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	stateDir := t.TempDir()
	path := filepath.Join(t.TempDir(), "live.bin")
	evs := followEvents(900)
	lw := newLiveWriter(t, path)
	lw.append(evs[:300])

	s1, ts1, _ := newStateServer(t, stateDir, microscopic.IndexAuto)
	followLoad(t, ts1, "live", path, 10)
	lw.append(evs[300:600])
	infoA := waitForFollow(t, ts1, "live", 600)
	if infoA.Events != 600 {
		t.Fatalf("pre-crash ingested %d events, wrote 600", infoA.Events)
	}
	// Make the current offset the durable resume point, then crash.
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	resp, respA := get(t, ts1.URL+liveQueryPath("live", infoA.Follow))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash live query: %d (%s)", resp.StatusCode, respA)
	}
	crash(s1, ts1)

	s2, ts2, rep := newStateServer(t, stateDir, microscopic.IndexAuto)
	defer shutdown(t, s2, ts2)
	if rep.Resumed != 1 || rep.Restarted != 0 {
		t.Fatalf("want 1 resumed follower, got %+v", rep)
	}
	infoB := waitForFollow(t, ts2, "live", 600)
	if infoB.Events != 600 {
		t.Fatalf("resume replayed to %d events, want exactly 600 (dup or loss)", infoB.Events)
	}
	fa, fb := infoA.Follow, infoB.Follow
	if fb.Offset != fa.Offset || fb.Horizon != fa.Horizon || fb.Ticks != fa.Ticks ||
		fb.Lo != fa.Lo || fb.Hi != fa.Hi || fb.Pan != fa.Pan {
		t.Fatalf("follow state diverges across restart:\n  pre:  %+v\n  post: %+v", fa, fb)
	}
	resp, respB := get(t, ts2.URL+liveQueryPath("live", fa))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash live query: %d (%s)", resp.StatusCode, respB)
	}
	if !bytes.Equal(respA, respB) {
		t.Fatalf("live responses diverge across restart:\n  pre:  %s\n  post: %s", respA, respB)
	}
	// The resumed tail keeps ingesting: exactly the appended events land.
	lw.append(evs[600:])
	infoC := waitForFollow(t, ts2, "live", 900)
	if infoC.Events != 900 {
		t.Fatalf("post-resume ingested %d events, wrote 900", infoC.Events)
	}
	if infoC.Follow.Offset <= fa.Offset {
		t.Fatalf("offset did not advance past the resume point: %d <= %d", infoC.Follow.Offset, fa.Offset)
	}
}

// TestRecoverCorruptManifestQuarantines: a damaged manifest is moved
// aside (preserved for inspection) and the daemon boots empty instead of
// refusing to start.
func TestRecoverCorruptManifestQuarantines(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	stateDir := t.TempDir()
	mpath := filepath.Join(stateDir, manifest.FileName)
	if err := os.WriteFile(mpath, []byte("OCMFgarbage that is not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts, rep := newStateServer(t, stateDir, microscopic.IndexAuto)
	defer shutdown(t, s, ts)
	if !rep.ManifestCorrupt {
		t.Fatalf("corruption not reported: %+v", rep)
	}
	if _, err := os.Stat(mpath + ".corrupt"); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
	if n := len(s.Registry().List()); n != 0 {
		t.Fatalf("booted with %d traces from a corrupt manifest", n)
	}
	if got := s.CacheStats().Quarantined; got != 1 {
		t.Fatalf("quarantined counter = %d, want 1", got)
	}
	// The post-recovery checkpoint wrote a fresh manifest in its place.
	if m, err := manifest.LoadFile(mpath); err != nil || m == nil {
		t.Fatalf("fresh manifest after quarantine: m=%v err=%v", m, err)
	}
}

// TestRecoverSweepsOrphans: spill temps, abandoned build temps, and
// store files no journaled trace references are removed at boot; files
// the sweep has no business with stay.
func TestRecoverSweepsOrphans(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	stateDir := t.TempDir()
	stores := filepath.Join(stateDir, "stores")
	if err := os.MkdirAll(stores, 0o755); err != nil {
		t.Fatal(err)
	}
	orphans := []string{".oces-run-123", ".oces-build-456", "ocelotl-index-789.oces"}
	for _, name := range append(orphans, "notes.txt") {
		if err := os.WriteFile(filepath.Join(stores, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, ts, rep := newStateServer(t, stateDir, microscopic.IndexDisk)
	defer shutdown(t, s, ts)
	if rep.Orphans != len(orphans) {
		t.Fatalf("swept %d orphans, want %d", rep.Orphans, len(orphans))
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(stores, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(stores, "notes.txt")); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
	if got := s.CacheStats().RecoveredOrphans; got != int64(len(orphans)) {
		t.Fatalf("recovered_orphans = %d, want %d", got, len(orphans))
	}
}

// TestRecoverOpenFailpoint: with recover/open armed, recovery falls back
// to rebuilding the index from the trace file — degraded to extra work,
// never to a missing trace — and the responses still match.
func TestRecoverOpenFailpoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tracePath := writeArtTrace(t)
	stateDir := t.TempDir()
	q := "/traces/art/aggregate?p=0.4&slices=12"

	s1, ts1, _ := newStateServer(t, stateDir, microscopic.IndexDisk)
	postLoad(t, ts1, "art", tracePath)
	_, respA := get(t, ts1.URL+q)
	crash(s1, ts1)

	if err := failpoint.Enable(FailpointRecoverOpen, "error(chaos)"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable(FailpointRecoverOpen)
	s2, ts2, rep := newStateServer(t, stateDir, microscopic.IndexDisk)
	defer shutdown(t, s2, ts2)
	if rep.Restored != 1 || rep.Rebuilt != 1 || rep.Reopened != 0 {
		t.Fatalf("want 1 rebuilt trace under the failpoint, got %+v", rep)
	}
	_, respB := get(t, ts2.URL+q)
	if !bytes.Equal(respA, respB) {
		t.Fatalf("rebuilt trace diverges:\n  pre:  %s\n  post: %s", respA, respB)
	}
}

// TestScrubQuarantinesAndRebuilds: a bit flip in a live store's chunk
// region is caught by the scrub's CRC pass; the store is quarantined,
// the index rebuilt from the trace file, and queries keep answering
// bit-identically. A second scrub comes back clean.
func TestScrubQuarantinesAndRebuilds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tracePath := writeArtTrace(t)
	s, ts, _ := newStateServer(t, t.TempDir(), microscopic.IndexDisk)
	defer shutdown(t, s, ts)
	postLoad(t, ts, "art", tracePath)
	q := "/traces/art/aggregate?p=0.4&slices=12"
	_, respA := get(t, ts.URL+q)

	tr, _ := s.Registry().Get("art")
	storePath := tr.resl.StorePath()
	data, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(storePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := s.Scrub()
	if rep.Clean || rep.Quarantined != 1 || rep.Rebuilt != 1 {
		t.Fatalf("scrub of a flipped store: %+v", rep)
	}
	if _, err := os.Stat(storePath + ".quarantined"); err != nil {
		t.Fatalf("damaged store not quarantined: %v", err)
	}
	resp, respB := get(t, ts.URL+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after rebuild: %d (%s)", resp.StatusCode, respB)
	}
	if !bytes.Equal(respA, respB) {
		t.Fatalf("rebuilt trace diverges:\n  pre:  %s\n  post: %s", respA, respB)
	}
	if rep2 := s.Scrub(); !rep2.Clean {
		t.Fatalf("second scrub not clean: %+v", rep2)
	}
}

// TestScrubEndpointAndOffline: GET /debug/scrub reports a clean state,
// and the offline ScrubState agrees on the same directory after a crash
// (reading the manifest read-only, removing nothing).
func TestScrubEndpointAndOffline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tracePath := writeArtTrace(t)
	stateDir := t.TempDir()
	s, ts, _ := newStateServer(t, stateDir, microscopic.IndexDisk)
	postLoad(t, ts, "art", tracePath)

	resp, body := get(t, ts.URL+"/debug/scrub")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/scrub: %d (%s)", resp.StatusCode, body)
	}
	var rep ScrubReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || rep.Traces != 1 || rep.Chunks == 0 {
		t.Fatalf("live scrub of a healthy store: %+v", rep)
	}
	store := func() string {
		tr, _ := s.Registry().Get("art")
		return tr.resl.StorePath()
	}()
	crash(s, ts)

	off, err := ScrubState(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if !off.Clean || off.Traces != 1 || off.Chunks != rep.Chunks {
		t.Fatalf("offline scrub disagrees: live %+v, offline %+v", rep, off)
	}
	if _, err := os.Stat(store); err != nil {
		t.Fatalf("offline scrub touched the store: %v", err)
	}
}

// TestUnloadRemovesDurableStore: in state mode the store file is a
// durable sidecar, so the unload — not the index close — removes it, and
// the manifest stops referencing the trace before the client sees 204.
func TestUnloadRemovesDurableStore(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tracePath := writeArtTrace(t)
	stateDir := t.TempDir()
	s, ts, _ := newStateServer(t, stateDir, microscopic.IndexDisk)
	defer shutdown(t, s, ts)
	postLoad(t, ts, "art", tracePath)
	tr, _ := s.Registry().Get("art")
	storePath := tr.resl.StorePath()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/art", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unload: %d", resp.StatusCode)
	}
	if _, err := os.Stat(storePath); !os.IsNotExist(err) {
		t.Fatalf("unload left the durable store behind: %v", err)
	}
	m, err := manifest.LoadFile(filepath.Join(stateDir, manifest.FileName))
	if err != nil || m == nil {
		t.Fatalf("manifest after unload: m=%v err=%v", m, err)
	}
	if len(m.Traces) != 0 {
		t.Fatalf("manifest still references %d traces after unload", len(m.Traces))
	}
}

// TestTornManifestWriteRecovers: a crash in the torn-write window (the
// armed manifest/write failpoint leaves a durable-but-unpublished temp)
// loses only the newest checkpoint — the previous manifest recovers, and
// the next boot sweeps the debris.
func TestTornManifestWriteRecovers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tracePath := writeArtTrace(t)
	stateDir := t.TempDir()
	s1, ts1, _ := newStateServer(t, stateDir, microscopic.IndexDisk)
	postLoad(t, ts1, "art", tracePath) // durably journaled

	if err := failpoint.Enable(manifest.FailpointWrite, "error(torn)"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Checkpoint(); err == nil {
		t.Fatal("checkpoint through an armed manifest/write failpoint succeeded")
	}
	failpoint.Disable(manifest.FailpointWrite)
	crash(s1, ts1)

	s2, ts2, rep := newStateServer(t, stateDir, microscopic.IndexDisk)
	defer shutdown(t, s2, ts2)
	if rep.Restored != 1 || rep.ManifestCorrupt {
		t.Fatalf("previous manifest did not recover past the torn write: %+v", rep)
	}
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 11 && e.Name()[:11] == ".ocmf-write" {
			t.Fatalf("torn-write debris survived the boot sweep: %s", e.Name())
		}
	}
}
