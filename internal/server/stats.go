package server

import "sync/atomic"

// Stats are the cache's monotonic counters. Hits + Coalesced + Misses is
// the total number of window requests; Derived + Scratch is the number of
// builds actually executed (== Misses once nothing is in flight, minus
// builds abandoned by cancellation). Aborted counts requests dropped on
// cancellation anywhere along the serve path — an expired deadline at
// entry, an abandoned cache fill, or a solve/sweep cut short — i.e. work
// whose response nobody was waiting for anymore. Rejected counts windows
// turned away by the arithmetic admission guard (413) before any build.
// SweepQueries / SweepPs count the multi-p work served through the fused
// engine path (/significant and /quality): queries is the number of sweep
// requests answered, ps the total p points they returned — the ratio is
// the average fan-out a sweep request amortizes over the shared Input.
// ZoomDerived / ZoomScratch split the builds triggered by a resolution
// change (the request's grid level differs from the trace's previous
// request): derived means the ladder had the level warm and the build was
// an incremental Update, scratch means it fell through to the event
// index — the ratio is the pyramid's zoom hit rate. Previews counts
// refine requests answered immediately with a coarse covering window
// while the fine build proceeded in the background.
//
// The overload counters: Shed counts requests refused by the build gate
// (503 + Retry-After — the queue was full or the request's deadline was
// shorter than the estimated wait); Degraded counts requests answered
// with the coarse covering preview because the fine build exceeded the
// degrade deadline or died on a retryable fault; Panics counts panics
// recovered anywhere on the serve path (a panicking flight fails all its
// waiters with 500 and increments this once).
type Stats struct {
	Hits         atomic.Int64
	Misses       atomic.Int64
	Coalesced    atomic.Int64
	Derived      atomic.Int64
	Scratch      atomic.Int64
	Evictions    atomic.Int64
	Aborted      atomic.Int64
	Rejected     atomic.Int64
	Shed         atomic.Int64
	Degraded     atomic.Int64
	Panics       atomic.Int64
	ZoomDerived  atomic.Int64
	ZoomScratch  atomic.Int64
	Previews     atomic.Int64
	SweepQueries atomic.Int64
	SweepPs      atomic.Int64

	// Follow-mode ingestion counters: FollowTicks counts ticks that
	// ingested at least one event, FollowEvents the events they carried,
	// FollowReorders the out-of-order batches that forced a generation
	// bump and cache purge (a healthy time-ordered writer keeps this 0).
	FollowTicks    atomic.Int64
	FollowEvents   atomic.Int64
	FollowReorders atomic.Int64
	// FollowRetries counts backoff sleeps on the follow paths: tail-open
	// attempts that found the file missing or its header incomplete, and
	// follower ticks retried after a retryable fault.
	FollowRetries atomic.Int64

	// Durable-state counters (state.go): Checkpoints counts manifest
	// saves, RecoveredOrphans the stale temp/store files swept at boot,
	// Quarantined the corrupt artifacts (manifest or store files) moved
	// aside by recovery and scrub.
	Checkpoints      atomic.Int64
	RecoveredOrphans atomic.Int64
	Quarantined      atomic.Int64
}

// StatsSnapshot is the JSON form served by /debug/cachestats.
type StatsSnapshot struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"`
	Derived      int64 `json:"derived_builds"`
	Scratch      int64 `json:"scratch_builds"`
	Evictions    int64 `json:"evictions"`
	Aborted      int64 `json:"aborted"`
	Rejected     int64 `json:"rejected"`
	Shed         int64 `json:"shed"`
	Degraded     int64 `json:"degraded"`
	Panics       int64 `json:"panics"`
	ZoomDerived  int64 `json:"zoom_derived"`
	ZoomScratch  int64 `json:"zoom_scratch"`
	Previews     int64 `json:"previews"`
	SweepQueries int64 `json:"sweep_queries"`
	SweepPs      int64 `json:"sweep_ps"`

	FollowTicks    int64 `json:"follow_ticks"`
	FollowEvents   int64 `json:"follow_events"`
	FollowReorders int64 `json:"follow_reorders"`
	FollowRetries  int64 `json:"follow_retries"`

	Checkpoints      int64 `json:"checkpoints"`
	RecoveredOrphans int64 `json:"recovered_orphans"`
	Quarantined      int64 `json:"quarantined"`
	Entries          int   `json:"entries"`
	Bytes            int64 `json:"bytes"`
	BudgetBytes      int64 `json:"budget_bytes"`
	// The index fields are registry aggregates, filled by
	// Server.CacheStats (not Stats.snapshot): index bytes are the event
	// indexes' fixed residency (RAM arrays or disk chunk directory),
	// open-chunk bytes the disk backends' decoded-chunk caches — both
	// distinct from Bytes (cached Input arenas), so the byte budget and
	// the store never double-count. The chunk counters expose window-read
	// locality: chunks_read is disk fetches, chunk_hits decoded-cache
	// hits.
	IndexBytes          int64 `json:"index_bytes"`
	IndexOpenChunkBytes int64 `json:"index_open_chunk_bytes"`
	IndexChunksRead     int64 `json:"index_chunks_read"`
	IndexChunkHits      int64 `json:"index_chunk_hits"`
	IndexBytesRead      int64 `json:"index_bytes_read"`
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Hits:         s.Hits.Load(),
		Misses:       s.Misses.Load(),
		Coalesced:    s.Coalesced.Load(),
		Derived:      s.Derived.Load(),
		Scratch:      s.Scratch.Load(),
		Evictions:    s.Evictions.Load(),
		Aborted:      s.Aborted.Load(),
		Rejected:     s.Rejected.Load(),
		Shed:         s.Shed.Load(),
		Degraded:     s.Degraded.Load(),
		Panics:       s.Panics.Load(),
		ZoomDerived:  s.ZoomDerived.Load(),
		ZoomScratch:  s.ZoomScratch.Load(),
		Previews:     s.Previews.Load(),
		SweepQueries: s.SweepQueries.Load(),
		SweepPs:      s.SweepPs.Load(),

		FollowTicks:    s.FollowTicks.Load(),
		FollowEvents:   s.FollowEvents.Load(),
		FollowReorders: s.FollowReorders.Load(),
		FollowRetries:  s.FollowRetries.Load(),

		Checkpoints:      s.Checkpoints.Load(),
		RecoveredOrphans: s.RecoveredOrphans.Load(),
		Quarantined:      s.Quarantined.Load(),
	}
}
