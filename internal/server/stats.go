package server

import "sync/atomic"

// Stats are the cache's monotonic counters. Hits + Coalesced + Misses is
// the total number of window requests; Derived + Scratch is the number of
// builds actually executed (== Misses once nothing is in flight, minus
// builds abandoned by cancellation). Aborted counts requests dropped on
// cancellation anywhere along the serve path — an expired deadline at
// entry, an abandoned cache fill, or a solve/sweep cut short — i.e. work
// whose response nobody was waiting for anymore.
// SweepQueries / SweepPs count the multi-p work served through the fused
// engine path (/significant and /quality): queries is the number of sweep
// requests answered, ps the total p points they returned — the ratio is
// the average fan-out a sweep request amortizes over the shared Input.
type Stats struct {
	Hits         atomic.Int64
	Misses       atomic.Int64
	Coalesced    atomic.Int64
	Derived      atomic.Int64
	Scratch      atomic.Int64
	Evictions    atomic.Int64
	Aborted      atomic.Int64
	SweepQueries atomic.Int64
	SweepPs      atomic.Int64
}

// StatsSnapshot is the JSON form served by /debug/cachestats.
type StatsSnapshot struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"`
	Derived      int64 `json:"derived_builds"`
	Scratch      int64 `json:"scratch_builds"`
	Evictions    int64 `json:"evictions"`
	Aborted      int64 `json:"aborted"`
	SweepQueries int64 `json:"sweep_queries"`
	SweepPs      int64 `json:"sweep_ps"`
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
	BudgetBytes  int64 `json:"budget_bytes"`
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Hits:         s.Hits.Load(),
		Misses:       s.Misses.Load(),
		Coalesced:    s.Coalesced.Load(),
		Derived:      s.Derived.Load(),
		Scratch:      s.Scratch.Load(),
		Evictions:    s.Evictions.Load(),
		Aborted:      s.Aborted.Load(),
		SweepQueries: s.SweepQueries.Load(),
		SweepPs:      s.SweepPs.Load(),
	}
}
