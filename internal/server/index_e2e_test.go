package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/server/client"
	"ocelotl/internal/testutil"
	"ocelotl/internal/traceio"
)

// newIndexedTestServer writes the artificial trace to a file and loads it
// through the registry's file path (the only path that honors the index
// mode), so the server exercises the real out-of-core pipeline rather
// than the in-memory test shortcut.
func newIndexedTestServer(t *testing.T, cfg Config, mode microscopic.IndexMode) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "art.otf2bin")
	if err := traceio.WriteFile(path, mpisim.ArtificialSized(24, 40)); err != nil {
		t.Fatal(err)
	}
	cfg.Index = microscopic.IndexOptions{
		Mode: mode,
		Dir:  dir,
		// Small chunks so even the test trace spans many of them and
		// window pruning has something to prune.
		Store: eventstore.Options{TargetChunkEvents: 32},
	}
	s := New(cfg)
	if _, err := s.Registry().Load("art", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Registry().CloseAll(); err != nil {
			t.Errorf("closing indexes: %v", err)
		}
	})
	return s, ts
}

// TestDiskIndexServerBitIdentical drives the same pan/zoom request
// sequence against a RAM-indexed and a disk-indexed server over the same
// trace and requires byte-identical responses — the HTTP-level form of
// the backends' bit-identity contract.
func TestDiskIndexServerBitIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ramTS := newIndexedTestServer(t, quietConfig(), microscopic.IndexRAM)
	diskS, diskTS := newIndexedTestServer(t, quietConfig(), microscopic.IndexDisk)

	if _, body := get(t, diskTS.URL+"/traces/art"); true {
		var info Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Index != "disk" {
			t.Fatalf("disk server reports index %q, want disk", info.Index)
		}
	}

	queries := []string{
		"/traces/art/aggregate?slices=20&p=0.4",
		"/traces/art/aggregate?slices=20&p=0.4&pan=1",
		"/traces/art/aggregate?slices=20&p=0.4&pan=-1",
		"/traces/art/aggregate?slices=15&p=0.3",
		"/traces/art/aggregate?slices=40&p=0.5",
		"/traces/art/aggregate?slices=10&p=0.6&pan=3",
		"/traces/art/significant?slices=20",
		"/traces/art/quality?slices=20",
	}
	for _, q := range queries {
		ramResp, ramBody := get(t, ramTS.URL+q)
		diskResp, diskBody := get(t, diskTS.URL+q)
		if ramResp.StatusCode != diskResp.StatusCode {
			t.Fatalf("%s: status ram=%d disk=%d", q, ramResp.StatusCode, diskResp.StatusCode)
		}
		if ramResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", q, ramResp.StatusCode, ramBody)
		}
		if string(ramBody) != string(diskBody) {
			t.Fatalf("%s: disk response differs from RAM\nram:  %s\ndisk: %s", q, ramBody, diskBody)
		}
	}

	snap := diskS.CacheStats()
	if snap.IndexChunksRead == 0 {
		t.Fatal("disk server served windows without reading any store chunks")
	}
	if snap.IndexBytes == 0 {
		t.Fatal("disk index reports zero resident bytes")
	}
}

// TestChaosSoakDiskIndex is the chaos soak rerun over the disk-backed
// index with the eventstore's own failpoints armed: chunk opens and
// reads fail mid-build, and every response must still be a well-formed
// status from the allowed set with byte accounting intact afterwards.
func TestChaosSoakDiskIndex(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := quietConfig()
	cfg.MaxConcurrentBuilds = 2
	cfg.MaxQueuedBuilds = 2
	cfg.DegradeAfter = 25 * time.Millisecond
	cfg.RequestTimeout = time.Minute
	s, ts := newIndexedTestServer(t, cfg, microscopic.IndexDisk)

	// Warm the full window so degradation has a preview to reach for.
	warmFullWindow(t, ts, 20)

	for point, spec := range map[string]string{
		FailpointFlight:          "10%error(chaos)",
		eventstore.FailpointRead: "10%error(chaos)",
		eventstore.FailpointOpen: "5%delay(10ms)",
	} {
		if err := failpoint.EnableSeeded(point, spec, 42); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	c := client.New(ts.URL)
	c.Seed(7)
	c.MaxRetries = 2
	c.BaseBackoff = 5 * time.Millisecond
	c.MaxBackoff = 50 * time.Millisecond

	queries := []url.Values{
		{"slices": {"20"}, "p": {"0.4"}},
		{"slices": {"20"}, "p": {"0.4"}, "pan": {"1"}},
		{"slices": {"15"}, "p": {"0.3"}},
		{"slices": {"10"}, "p": {"0.5"}, "pan": {"2"}},
		{"slices": {"12"}, "p": {"0.6"}},
	}
	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusRequestEntityTooLarge: true,
		StatusClientClosedRequest:        true,
		http.StatusInternalServerError:   true,
		http.StatusServiceUnavailable:    true,
	}

	const workers = 6
	const perWorker = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	var mu sync.Mutex
	statusSeen := map[int]int{}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < perWorker; i++ {
				q := queries[rng.Intn(len(queries))]
				resp, err := http.Get(ts.URL + "/traces/art/aggregate?" + q.Encode())
				if err != nil {
					errs[g] = fmt.Errorf("worker %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if !allowed[resp.StatusCode] {
					errs[g] = fmt.Errorf("worker %d: unexpected status %d", g, resp.StatusCode)
					return
				}
				mu.Lock()
				statusSeen[resp.StatusCode]++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if statusSeen[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded under chaos: %v", statusSeen)
	}
	checkByteAccounting(t, s.cache)

	// With the chaos off, the same index must still serve clean builds —
	// injected faults fail requests, never poison the store.
	failpoint.DisableAll()
	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=20&p=0.4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos build: status %d (%s)", resp.StatusCode, body)
	}
}
