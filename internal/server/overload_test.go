package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/server/client"
	"ocelotl/internal/testutil"
)

// checkByteAccounting asserts the cache's global byte counter equals the
// sum over resident entries — the invariant overload, faults and races
// must not corrupt.
func checkByteAccounting(t *testing.T, c *InputCache) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sum += int64(el.Value.(*entry).bytes)
	}
	if sum != c.bytes {
		t.Errorf("byte accounting corrupt: entries sum to %d, counter says %d", sum, c.bytes)
	}
}

// quiesce waits until no build is in flight and the gate is idle, so
// post-test invariants aren't read mid-build (degrade keepalives outlive
// their requests by design).
func quiesce(t *testing.T, c *InputCache) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		flights := len(c.inflight)
		c.mu.Unlock()
		queued, inflight := 0, 0
		if c.gate != nil {
			inflight, queued = c.gate.Backlog()
		}
		if flights == 0 && inflight == 0 && queued == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("builds never quiesced: %d flights, gate %d/%d", flights, inflight, queued)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGateFIFOAndShed drives the gate directly: capacity 1, queue 1. The
// second acquire queues, the third is shed with a positive Retry-After,
// and release hands the slot to the queued waiter in FIFO order.
func TestGateFIFOAndShed(t *testing.T) {
	g := newBuildGate(1, 1)
	release, err := g.Acquire(context.Background(), context.Background())
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background(), context.Background())
		if err == nil {
			defer r()
		}
		got <- err
	}()
	// Wait for the second acquire to queue.
	for i := 0; ; i++ {
		if _, q := g.Backlog(); q == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err = g.Acquire(context.Background(), context.Background())
	oe, ok := err.(*OverloadError)
	if !ok {
		t.Fatalf("third acquire got %v, want an OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("OverloadError.RetryAfter = %v, want > 0", oe.RetryAfter)
	}

	release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter got %v after release", err)
	}
}

// TestGateShedsDoomedDeadlines: a request whose deadline is shorter than
// the estimated wait is refused up front instead of queueing past its
// budget.
func TestGateShedsDoomedDeadlines(t *testing.T) {
	g := newBuildGate(1, 8)
	g.RecordBuild(10 * time.Second) // drive the EWMA far above any test deadline
	release, err := g.Acquire(context.Background(), context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	reqCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = g.Acquire(context.Background(), reqCtx)
	oe, ok := err.(*OverloadError)
	if !ok || !strings.Contains(oe.Reason, "deadline") {
		t.Fatalf("doomed acquire got %v, want a deadline-shed OverloadError", err)
	}
}

// TestShedReturns503WithRetryAfter is the HTTP contract: with one build
// slot held and a zero-length queue, a second (non-coalescing) build
// request is shed as 503 carrying Retry-After, and the shed counter
// moves. The held build completes normally afterwards.
func TestShedReturns503WithRetryAfter(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := quietConfig()
	cfg.MaxConcurrentBuilds = 1
	cfg.MaxQueuedBuilds = -1 // no queue: saturation sheds immediately
	cfg.DegradeAfter = -1    // isolate shedding from degradation
	s, ts := newTestServer(t, cfg)

	entered := make(chan struct{})
	release := make(chan struct{})
	failpoint.EnableFunc(FailpointFlight, func(ctx context.Context) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	defer failpoint.Disable(FailpointFlight)

	firstDone := make(chan int, 1)
	go func() {
		resp, _ := get(t, ts.URL+"/traces/art/aggregate?slices=20&p=0.4")
		firstDone <- resp.StatusCode
	}()
	<-entered // the lone slot is now held mid-build

	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=25&p=0.4")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	} else if secs, err := time.ParseDuration(ra + "s"); err != nil || secs < time.Second {
		t.Fatalf("Retry-After %q, want ≥ 1 whole second", ra)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("held build finished with %d, want 200", code)
	}
	if st := s.CacheStats(); st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1 (%+v)", st.Shed, st)
	}
}

// TestFlightPanicFailsWaitersWithoutDeadlock: a panicking build must turn
// into a 500 for every waiter — the flight unwinds, the singleflight
// entry clears, the panic counter moves — and the same window then
// rebuilds cleanly once the failpoint disarms.
func TestFlightPanicFailsWaitersWithoutDeadlock(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, quietConfig())

	if err := failpoint.Enable(FailpointFlight, "1*panic(chaos)->off"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable(FailpointFlight)

	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=20&p=0.4")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking build: status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Fatalf("500 body %q does not say the build panicked", body)
	}
	if st := s.CacheStats(); st.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", st.Panics)
	}

	// The failpoint's first term is spent: the retry must succeed, proving
	// the panic left no slot leaked and no flight entry wedged.
	resp, body = get(t, ts.URL+"/traces/art/aggregate?slices=20&p=0.4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild after panic: status %d (%s), want 200", resp.StatusCode, body)
	}
	checkByteAccounting(t, s.cache)
}

// TestHandlerPanicRecovered exercises the middleware half of panic
// containment: a panic above the flight (in the handler goroutine) is
// answered as a 500, not a dropped connection, and counted.
func TestHandlerPanicRecovered(t *testing.T) {
	s := New(quietConfig())
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler chaos")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if st := s.CacheStats(); st.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", st.Panics)
	}
}

// TestReadyzFlipsWhileDraining: /readyz is the balancer's routing signal —
// 200 in service, 503 once SetDraining(true), back to 200 if draining is
// cancelled. /healthz stays 200 throughout (the process is alive either
// way).
func TestReadyzFlipsWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, quietConfig())
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	s.SetDraining(true)
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz while draining: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	s.SetDraining(false)
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after drain cancelled: %d", resp.StatusCode)
	}
}

// warmFullWindow builds and caches the trace's full window at the given
// |T| and returns its exact bounds, so sub-window requests have a
// covering preview to degrade to.
func warmFullWindow(t *testing.T, ts *httptest.Server, slices int) windowJSON {
	t.Helper()
	resp, body := get(t, fmt.Sprintf("%s/traces/art/aggregate?slices=%d&p=0.4", ts.URL, slices))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming full window: status %d (%s)", resp.StatusCode, body)
	}
	var agg aggregateJSON
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	return agg.Window
}

// subWindowQuery returns an aggregate URL for the middle half of the
// warmed window — covered by it, but not identical to it.
func subWindowQuery(w windowJSON) string {
	width := w.End - w.Start
	return fmt.Sprintf("aggregate?slices=10&p=0.4&lo=%.17g&hi=%.17g", w.Start+0.25*width, w.Start+0.75*width)
}

// TestDegradeSlowBuildServesPreview: with the fine build held past the
// degrade deadline, /aggregate answers 200 from the covering preview,
// marked X-Ocelotl-Degraded: slow-build — and the fine build survives the
// handler's return, so the same URL later serves the real answer.
func TestDegradeSlowBuildServesPreview(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := quietConfig()
	cfg.DegradeAfter = 20 * time.Millisecond
	s, ts := newTestServer(t, cfg)
	// ≥ previewCoarsenMin slices, so the preview is a genuine factor-2
	// coarsening rather than the covering entry itself.
	full := warmFullWindow(t, ts, 40)

	failpoint.EnableFunc(FailpointFlight, func(ctx context.Context) error {
		select {
		case <-time.After(400 * time.Millisecond):
		case <-ctx.Done():
		}
		return nil
	})
	defer failpoint.Disable(FailpointFlight)

	resp, body := get(t, ts.URL+"/traces/art/"+subWindowQuery(full))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d (%s)", resp.StatusCode, body)
	}
	if reason := resp.Header.Get(degradedHeader); reason != degradeSlowBuild {
		t.Fatalf("%s = %q, want %q", degradedHeader, reason, degradeSlowBuild)
	}
	if b := resp.Header.Get(buildHeader); b != string(BuildPreview) {
		t.Fatalf("degraded build header = %q, want %q", b, BuildPreview)
	}
	var agg aggregateJSON
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	if !agg.Preview {
		t.Fatalf("degraded body not marked preview: %s", body)
	}
	if agg.Window.Start != full.Start || agg.Window.End != full.End || agg.Window.Slices != full.Slices/2 {
		t.Fatalf("degraded window %+v is not the half-resolution overview of %+v", agg.Window, full)
	}
	if st := s.CacheStats(); st.Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", st.Degraded)
	}

	// The background keep-alive must land the fine window in the cache.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := get(t, ts.URL+"/traces/art/"+subWindowQuery(full))
		if resp.Header.Get(degradedHeader) == "" && resp.Header.Get(buildHeader) == string(BuildHit) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fine build never completed in the background after a degraded answer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	quiesce(t, s.cache)
	checkByteAccounting(t, s.cache)
}

// TestDegradeFaultServesPreview: a fine build that dies on an injected
// (retryable) fault degrades to the preview instead of 500ing, marked
// with reason "fault".
func TestDegradeFaultServesPreview(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, quietConfig())
	full := warmFullWindow(t, ts, 20)

	if err := failpoint.Enable(FailpointFlight, "1*error(chaos)->off"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable(FailpointFlight)

	resp, body := get(t, ts.URL+"/traces/art/"+subWindowQuery(full))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted request: status %d (%s)", resp.StatusCode, body)
	}
	if reason := resp.Header.Get(degradedHeader); reason != degradeFault {
		t.Fatalf("%s = %q, want %q", degradedHeader, reason, degradeFault)
	}
	if st := s.CacheStats(); st.Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", st.Degraded)
	}
	// Without a covering preview the same fault is a plain 500: unload
	// everything the preview could come from first.
	if err := failpoint.Enable(FailpointFlight, "1*error(chaos)->off"); err != nil {
		t.Fatal(err)
	}
	s.cache.PurgeTrace("art", ^uint64(0))
	resp, body = get(t, ts.URL+"/traces/art/"+subWindowQuery(full))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request without preview: status %d (%s), want 500", resp.StatusCode, body)
	}
}

// TestDegradedBodyMatchesRefinePreview is the byte-identity acceptance
// criterion: the degraded body must be exactly the preview body the
// refine=1 path serves for the same window over the same warmed cache.
func TestDegradedBodyMatchesRefinePreview(t *testing.T) {
	cfg := quietConfig()
	cfg.DegradeAfter = 20 * time.Millisecond

	// Server A: warm the full window, hold the fine build, get degraded.
	_, tsA := newTestServer(t, cfg)
	full := warmFullWindow(t, tsA, 20)
	failpoint.EnableFunc(FailpointFlight, func(ctx context.Context) error {
		select {
		case <-time.After(400 * time.Millisecond):
		case <-ctx.Done():
		}
		return nil
	})
	respA, degradedBody := get(t, tsA.URL+"/traces/art/"+subWindowQuery(full))
	failpoint.Disable(FailpointFlight)
	if respA.StatusCode != http.StatusOK || respA.Header.Get(degradedHeader) == "" {
		t.Fatalf("server A: status %d, degraded %q", respA.StatusCode, respA.Header.Get(degradedHeader))
	}

	// Server B: identical warm state, same window via refine=1.
	_, tsB := newTestServer(t, cfg)
	fullB := warmFullWindow(t, tsB, 20)
	if fullB != full {
		t.Fatalf("servers warmed different windows: %+v vs %+v", full, fullB)
	}
	respB, refineBody := get(t, tsB.URL+"/traces/art/"+subWindowQuery(full)+"&refine=1")
	if respB.StatusCode != http.StatusOK || respB.Header.Get(refineHeader) != "pending" {
		t.Fatalf("server B: status %d, refine %q", respB.StatusCode, respB.Header.Get(refineHeader))
	}
	if string(degradedBody) != string(refineBody) {
		t.Fatalf("degraded body differs from the refine preview:\ndegraded: %s\nrefine:   %s", degradedBody, refineBody)
	}
}

// TestDeleteRacesInflightBuilds hammers aggregates while the trace is
// concurrently unloaded and reloaded. Every response must be 200 or 404
// (plus 499/503 under extreme scheduling), the registry and cache must
// end consistent, and nothing may leak — the generation purge is what
// keeps in-flight builds of dead trace epochs from resurrecting entries.
func TestDeleteRacesInflightBuilds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, quietConfig())

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/art", nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			// Reload in-process: same id, fresh generation.
			s.Registry().LoadTrace("art", mpisim.ArtificialSized(24, 40))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const workers = 6
	const perWorker = 15
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < perWorker; i++ {
				u := fmt.Sprintf("%s/traces/art/aggregate?slices=%d&pan=%d&p=0.4",
					ts.URL, 10+rng.Intn(3)*5, rng.Intn(4))
				resp, err := http.Get(u)
				if err != nil {
					errs[g] = err
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound,
					StatusClientClosedRequest, http.StatusServiceUnavailable:
				default:
					errs[g] = fmt.Errorf("%s: status %d", u, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
	quiesce(t, s.cache)
	checkByteAccounting(t, s.cache)
	// The cache must hold nothing from purged generations: a final load +
	// request must build fresh or hit only current-generation entries.
	s.Registry().LoadTrace("art", mpisim.ArtificialSized(24, 40))
	if resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=10&p=0.4"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-churn request: status %d (%s)", resp.StatusCode, body)
	}
}

// TestChaosSoak is the acceptance soak: failpoints firing across the
// pipeline (flight faults, input-fill delays, coarsen faults), a tiny
// build gate, an aggressive degrade deadline, and concurrent clients
// retrying sheds through the client package. Every response must come
// from the small legal set, every 503 must carry Retry-After, and the
// server must end with no leaked goroutines, no wedged flights, and
// consistent byte accounting. Run under -race in CI.
func TestChaosSoak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := quietConfig()
	cfg.MaxConcurrentBuilds = 2
	cfg.MaxQueuedBuilds = 2
	cfg.DegradeAfter = 25 * time.Millisecond
	cfg.RequestTimeout = time.Minute
	s, ts := newTestServer(t, cfg)

	// Warm the full window so degradation has a preview to reach for.
	warmFullWindow(t, ts, 20)

	for point, spec := range map[string]string{
		FailpointFlight:         "15%error(chaos)",
		core.FailpointInputFill: "10%delay(40ms)",
		core.FailpointCoarsen:   "5%error(chaos)",
	} {
		if err := failpoint.EnableSeeded(point, spec, 42); err != nil {
			t.Fatal(err)
		}
	}
	defer failpoint.DisableAll()

	c := client.New(ts.URL)
	c.Seed(7)
	c.MaxRetries = 2
	c.BaseBackoff = 5 * time.Millisecond
	c.MaxBackoff = 50 * time.Millisecond

	queries := []url.Values{
		{"slices": {"20"}, "p": {"0.4"}},
		{"slices": {"20"}, "p": {"0.4"}, "pan": {"1"}},
		{"slices": {"15"}, "p": {"0.3"}},
		{"slices": {"10"}, "p": {"0.5"}, "pan": {"2"}},
		{"slices": {"12"}, "p": {"0.6"}},
		{"slices": {"0"}},          // strict validation: 400
		{"lo": {"9"}, "hi": {"1"}}, // strict validation: 400
	}
	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		StatusClientClosedRequest:        true,
		http.StatusInternalServerError:   true,
		http.StatusServiceUnavailable:    true,
	}

	const workers = 6
	const perWorker = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	var mu sync.Mutex
	statusSeen := map[int]int{}
	degradedSeen := 0
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			for i := 0; i < perWorker; i++ {
				q := queries[rng.Intn(len(queries))]
				res, err := c.Get(context.Background(), "/traces/art/aggregate", q)
				if err != nil {
					errs[g] = fmt.Errorf("query %v: %v", q, err)
					return
				}
				for _, at := range res.Attempts {
					if !allowed[at.Status] {
						errs[g] = fmt.Errorf("query %v: illegal status %d", q, at.Status)
						return
					}
					if at.Status == http.StatusServiceUnavailable && at.RetryAfter <= 0 {
						errs[g] = fmt.Errorf("query %v: 503 without Retry-After", q)
						return
					}
					mu.Lock()
					statusSeen[at.Status]++
					mu.Unlock()
				}
				if res.Degraded() != "" {
					mu.Lock()
					degradedSeen++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}

	// The soak must actually have exercised the chaos: at least one
	// failpoint fired, and the strict-validation queries 400ed.
	fired := int64(0)
	for _, p := range []string{FailpointFlight, core.FailpointInputFill, core.FailpointCoarsen} {
		fired += failpoint.Hits(p)
	}
	if fired == 0 {
		t.Fatal("chaos soak ran without a single failpoint firing")
	}
	if statusSeen[http.StatusBadRequest] == 0 {
		t.Fatalf("no 400s recorded across %v", statusSeen)
	}
	t.Logf("soak statuses: %v, degraded responses: %d, failpoint hits: %d", statusSeen, degradedSeen, fired)

	failpoint.DisableAll()
	quiesce(t, s.cache)
	checkByteAccounting(t, s.cache)

	// With chaos disarmed the server serves normally — nothing wedged.
	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=20&p=0.4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak request: status %d (%s)", resp.StatusCode, body)
	}
	if st := s.CacheStats(); st.Panics != 0 {
		t.Logf("panics recovered during soak: %d", st.Panics)
	}
}
