// Package server is the serving layer over the aggregation engine: a
// long-lived HTTP/JSON front-end that keeps one microscopic.Reslicer per
// loaded trace (Registry) and a window-keyed, byte-budgeted LRU cache of
// core.Inputs (InputCache) whose misses are derived incrementally from
// the nearest cached overlapping window via Input.Update instead of a
// from-scratch input pass. It is the interactive-analysis interface the
// paper argues for, turned into a service: an analyst (or dashboard) pans
// and zooms a spatiotemporal window and re-aggregates at chosen p values,
// and the expensive O(|X|·|H(S)|·|T|²) input pass is paid only for the
// slices that actually changed.
//
// Layering: traceio streams events → microscopic indexes them (Reslicer)
// → core builds Inputs and answers p-queries from pooled, capacity-
// bounded Solvers → server caches the Inputs per window and speaks JSON.
//
// Traces may also be loaded in follow mode ({"follow": true} on POST
// /traces): the server tails the file while a writer is still appending
// to it, extends the trace's index copy-on-write each poll tick
// (traceio.TailReader → Reslicer.Extend → Input.AdvanceContext), and
// serves a sliding live window (live=1 on any query endpoint) whose
// responses stay byte-identical to a scratch build over the events
// ingested so far. See follow.go for the horizon rule that keeps the
// cache exact across ticks.
//
// Endpoints:
//
//	POST   /traces                      load a trace file {"id","path"}
//	GET    /traces                      list loaded traces
//	GET    /traces/{id}                 one trace's metadata
//	DELETE /traces/{id}                 unload (purges its cached windows)
//	GET    /traces/{id}/aggregate       optimal partition at p over a window
//	GET    /traces/{id}/significant     significant-p ladder over a window
//	GET    /traces/{id}/quality         quality-curve samples at given ps
//	GET    /traces/{id}/render          PNG/SVG view of the partition
//	GET    /debug/cachestats            cache counters (hits/derived/...)
//	GET    /debug/scrub                 verify stores + manifest (state.go)
//	GET    /metrics                     the same counters, Prometheus format
//	GET    /healthz                     liveness
//
// Window selection is shared by every query endpoint: lo/hi (absolute
// times, default: the whole trace), slices (|T|, default 30) and pan (a
// slice shift applied on the window's grid, the interactive-pan path —
// grid-exact, so a panned request is derivable from its anchor's cached
// Input). Responses carry the build path (hit/derived/scratch/coalesced/
// preview) and build latency in X-Ocelotl-Build / X-Ocelotl-Build-Us
// headers, keeping bodies byte-comparable across build paths.
//
// The cache behind those endpoints is multi-resolution (see InputCache):
// entries are keyed by (trace, grid level, window) and the most recent
// entry per visited level is pinned as a per-trace ladder, so zooming
// back to a familiar resolution resolves as a hit or an incremental
// same-grid derivation instead of an event-index rebuild. Two guards
// bound the residency this trades on: windows whose single Input would
// exceed the cache budget are rejected up front with 413 (estimated
// arithmetically, before building), and /aggregate accepts refine=1 for
// progressive zooms — when a cached window covers the request, its coarse
// overview is returned immediately (X-Ocelotl-Refine: pending, body
// marked "preview") while the fine build proceeds in the background.
//
// Every request's context is plumbed through the cache fill and into the
// engine's ctx-aware entry points (core.RunContext, SweepQualityContext,
// SignificantPsContext, AcquireSolverContext), so a request whose client
// disconnected or whose deadline expired stops consuming solver scratch
// and CPU within one hierarchy-node check instead of running to
// completion. Abandoned requests answer 499 and increment the "aborted"
// counter in /debug/cachestats. Singleflight builds are the one deliberate
// exception: a flight's build detaches from its leader's context (its
// result is shared by every coalesced waiter) and is cancelled only when
// all of its waiters have given up.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/microscopic"
)

// Config tunes a Server.
type Config struct {
	// CacheBytes budgets the window-keyed Input cache (default 256 MiB;
	// negative disables caching entirely).
	CacheBytes int64
	// Core configures every Input built by the server: normalization,
	// worker count, and the solver-pool bound that caps per-Input query
	// scratch (core.Options.SolverPoolBound).
	Core core.Options
	// RequestTimeout bounds each request's handling (default 30 s; ≤ 0
	// disables the limit). The timeout arrives at the handlers as a
	// deadline on the request context (http.TimeoutHandler), which the
	// serve path forwards into the engine — so expiry does not merely
	// report failure, it cancels the request's remaining solve/sweep work.
	RequestTimeout time.Duration
	// LadderLevels caps each hot trace's pinned resolution ladder: the
	// most recent cached window of up to this many grid levels is spared
	// by the first eviction pass, keeping zoom-backs warm (default
	// DefaultLadderLevels).
	LadderLevels int
	// MaxSlices caps the slices (|T|) parameter of window requests
	// (default DefaultMaxSlices). A single Input costs
	// O(|H(S)|·|T|²) memory and the build is paid before the cache
	// budget applies, so an unbounded |T| would let one request exhaust
	// the daemon; over-limit requests are rejected with 400.
	MaxSlices int
	// MaxConcurrentBuilds bounds how many window builds run at once
	// (default GOMAXPROCS; negative disables the gate). Builds beyond
	// the bound queue FIFO; see MaxQueuedBuilds.
	MaxConcurrentBuilds int
	// MaxQueuedBuilds caps the build gate's FIFO wait queue (default
	// 4× the build bound). A request that finds the queue full — or
	// whose deadline is shorter than the estimated wait to the front —
	// is shed immediately with 503 + Retry-After instead of queueing
	// past its budget.
	MaxQueuedBuilds int
	// DegradeAfter is the degrade deadline of /aggregate: when the fine
	// build of a window takes longer than this and a cached window
	// covers the request, the response degrades to the covering window's
	// memoized coarse preview (X-Ocelotl-Degraded: slow-build) while the
	// fine build completes in the background. Also applies when the fine
	// build dies on a retryable fault or is shed by the gate — a warm
	// preview beats a 500/503. Default DefaultDegradeAfter; negative
	// disables degradation.
	DegradeAfter time.Duration
	// Logger receives the structured per-request log (default
	// slog.Default()).
	Logger *slog.Logger
	// Index selects and tunes the event-index backend for loaded traces
	// (the out-of-core path). The zero value is IndexAuto: RAM below the
	// event threshold, the chunked on-disk store above it — so small
	// traces keep the fast path and huge ones stop being rejected by RAM.
	Index microscopic.IndexOptions
	// StateDir enables durable daemon state (see state.go): the manifest
	// journal lives here, disk-backed index stores become durable
	// sidecars (Index.KeepStore is forced on; Index.Dir defaults to
	// StateDir/stores), and Recover must be called before serving to
	// replay the journal. Empty disables journaling — stores stay
	// load-time temporaries and a restart boots empty, the prior
	// behavior.
	StateDir string
	// CheckpointTicks is how many event-carrying follow ticks elapse
	// between periodic manifest checkpoints (0 = DefaultCheckpointTicks;
	// negative disables tick-driven checkpoints, leaving load/unload/
	// shutdown as the only checkpoint sites). Only meaningful with
	// StateDir set.
	CheckpointTicks int
}

// DefaultCacheBytes is the Input-cache budget when Config.CacheBytes is 0.
const DefaultCacheBytes = 256 << 20

// DefaultMaxSlices is the per-request |T| cap when Config.MaxSlices is 0:
// generous against the paper's 30 while keeping a single window's
// triangular matrices (O(|H(S)|·|T|²)) bounded.
const DefaultMaxSlices = 512

// DefaultDegradeAfter is the degrade deadline when Config.DegradeAfter
// is 0: long enough that warm derivations and small scratch builds
// always answer fine, short enough that an analyst staring at a stalled
// zoom gets the coarse preview well before an interactive pause turns
// into an outage.
const DefaultDegradeAfter = 2 * time.Second

// defaultQueueFactor sizes the build gate's wait queue from its
// concurrency bound when Config.MaxQueuedBuilds is 0.
const defaultQueueFactor = 4

// Server is the long-lived aggregation service: a registry of loaded
// traces and the window-keyed Input cache serving every query endpoint.
type Server struct {
	reg          *Registry
	cache        *InputCache
	log          *slog.Logger
	timeout      time.Duration
	maxSlices    int
	degradeAfter time.Duration
	// draining flips /readyz to 503 during shutdown so the fleet's
	// balancer stops routing here while in-flight requests finish.
	draining atomic.Bool
	// followers tracks the live-ingestion loop of each follow-loaded
	// trace (see follow.go); guarded by followMu.
	followMu  sync.Mutex
	followers map[string]*follower
	// Durable state (see state.go): stateDir is Config.StateDir, state
	// the manifest keeper — nil until Recover, and nil forever when
	// journaling is disabled. Written once before serving starts.
	stateDir        string
	checkpointTicks int
	state           *stateKeeper
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	budget := cfg.CacheBytes
	if budget == 0 {
		budget = DefaultCacheBytes
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	maxSlices := cfg.MaxSlices
	if maxSlices <= 0 {
		maxSlices = DefaultMaxSlices
	}
	degradeAfter := cfg.DegradeAfter
	if degradeAfter == 0 {
		degradeAfter = DefaultDegradeAfter
	}
	cache := NewInputCache(budget, cfg.Core, cfg.LadderLevels)
	if cfg.MaxConcurrentBuilds >= 0 {
		capacity := cfg.MaxConcurrentBuilds
		if capacity == 0 {
			capacity = runtime.GOMAXPROCS(0)
		}
		maxQueue := cfg.MaxQueuedBuilds
		if maxQueue == 0 {
			maxQueue = defaultQueueFactor * capacity
		}
		if maxQueue < 0 {
			maxQueue = 0
		}
		cache.gate = newBuildGate(capacity, maxQueue)
	}
	checkpointTicks := cfg.CheckpointTicks
	if checkpointTicks == 0 {
		checkpointTicks = DefaultCheckpointTicks
	}
	if cfg.StateDir != "" {
		// Durable state needs the stores to outlive the process: force
		// the sidecar mode and give the stores a home inside the state
		// directory unless -index-dir placed them elsewhere.
		cfg.Index.KeepStore = true
		if cfg.Index.Dir == "" {
			cfg.Index.Dir = filepath.Join(cfg.StateDir, "stores")
		}
	}
	reg := NewRegistry()
	reg.SetIndexOptions(cfg.Index)
	return &Server{
		reg:             reg,
		cache:           cache,
		log:             logger,
		timeout:         timeout,
		maxSlices:       maxSlices,
		degradeAfter:    degradeAfter,
		followers:       make(map[string]*follower),
		stateDir:        cfg.StateDir,
		checkpointTicks: checkpointTicks,
	}
}

// SetDraining flips the /readyz readiness signal: a draining server
// still answers every endpoint (in-flight and straggler requests
// complete normally) but tells balancers to stop routing new work to it.
// The daemon sets it on SIGTERM before starting the HTTP drain.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Registry exposes the trace registry (preloading at daemon startup).
func (s *Server) Registry() *Registry { return s.reg }

// CacheStats exposes the cache counters plus the registry's index
// residency and read counters (tests, metrics scrapers,
// /debug/cachestats).
func (s *Server) CacheStats() StatsSnapshot {
	snap := s.cache.Snapshot()
	ib, ocb, rs := s.reg.IndexStats()
	snap.IndexBytes = ib
	snap.IndexOpenChunkBytes = ocb
	snap.IndexChunksRead = rs.ChunksRead
	snap.IndexChunkHits = rs.CacheHits
	snap.IndexBytesRead = rs.BytesRead
	return snap
}

// Handler returns the fully assembled HTTP handler: routes, per-request
// timeout, and structured request logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /traces", s.handleLoad)
	mux.HandleFunc("GET /traces", s.handleList)
	mux.HandleFunc("GET /traces/{id}", s.handleTraceInfo)
	mux.HandleFunc("DELETE /traces/{id}", s.handleUnload)
	mux.HandleFunc("GET /traces/{id}/aggregate", s.handleAggregate)
	mux.HandleFunc("GET /traces/{id}/significant", s.handleSignificant)
	mux.HandleFunc("GET /traces/{id}/quality", s.handleQuality)
	mux.HandleFunc("GET /traces/{id}/render", s.handleRender)
	mux.HandleFunc("GET /debug/cachestats", s.handleCacheStats)
	mux.HandleFunc("GET /debug/failpoints", s.handleFailpoints)
	mux.HandleFunc("GET /debug/scrub", s.handleScrub)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	h := s.recoverPanics(mux)
	if s.timeout > 0 {
		h = http.TimeoutHandler(h, s.timeout, "request timed out\n")
	}
	return s.logRequests(h)
}

// recoverPanics is the last-resort panic barrier of the serve path: a
// handler that panics (outside the flight-level recovery in runBuild)
// answers 500 instead of tearing down the connection, and the panic is
// counted and logged with its stack. http.ErrAbortHandler passes through
// — it is the standard way to abort a response, not a fault.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.cache.notePanic()
			s.log.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// Best effort: if the handler already wrote, this is a no-op.
			httpErrorf(w, http.StatusInternalServerError, "internal panic: %v", rec)
		}()
		next.ServeHTTP(w, r)
	})
}

// handleFailpoints lists the armed fault-injection points. In production
// the list must be empty — the serving smoke gates on it — so the
// endpoint doubles as the release check that no chaos configuration
// leaked into a real deployment.
func (s *Server) handleFailpoints(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Active []failpoint.Status `json:"active"`
	}{Active: failpoint.Active()})
}

// statusWriter captures the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// logRequests emits one structured line per request: method, path,
// status, total latency, and — for query endpoints — the cache build path
// (hit / derived / scratch / coalesced) and build latency the handler
// recorded in the response headers.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"latency", time.Since(start),
		}
		if build := w.Header().Get(buildHeader); build != "" {
			attrs = append(attrs, "build", build,
				"build_latency_us", w.Header().Get(buildLatencyHeader))
		}
		s.log.Info("request", attrs...)
	})
}

// buildHeader and buildLatencyHeader expose the cache build path without
// touching the response body, so identical windows produce byte-identical
// bodies whether served from cache, derivation or scratch.
const (
	buildHeader        = "X-Ocelotl-Build"
	buildLatencyHeader = "X-Ocelotl-Build-Us"
	// refineHeader reports the progressive-zoom state of an aggregate
	// request with refine=1: "ready" (the exact window was cached — the
	// body is final), "pending" (the body is a coarse covering preview;
	// the fine build is running, re-request to get it), or "none" (nothing
	// covered the request; the body was built synchronously and is final).
	refineHeader = "X-Ocelotl-Refine"
	// degradedHeader marks a response served from the coarse covering
	// preview because the fine build could not answer in time: the value
	// names the reason ("slow-build", "fault", "overload"). The body is
	// byte-identical to what the refine path would serve for the same
	// window; re-requesting (optionally with refine=1) returns the fine
	// answer once the background build lands.
	degradedHeader = "X-Ocelotl-Degraded"
)

// writeJSON serializes v with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func httpErrorf(w http.ResponseWriter, status int, format string, args ...any) {
	httpError(w, status, fmt.Errorf(format, args...))
}
