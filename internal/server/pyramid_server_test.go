package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestZoomLadderByteIdentity is the serving-layer acceptance check of the
// multi-resolution pyramid: an overview → zoom → back-out → re-zoom
// sequence against a cached server must (a) serve the revisited levels
// from the ladder (hit or derived, never scratch), (b) classify the
// resolution changes in the zoom counters, and (c) produce responses
// byte-identical to a caching-disabled server that builds every window
// from the event index.
func TestZoomLadderByteIdentity(t *testing.T) {
	sCached, tsCached := newTestServer(t, quietConfig())
	cfgScratch := quietConfig()
	cfgScratch.CacheBytes = -1 // every request builds from scratch
	_, tsScratch := newTestServer(t, cfgScratch)

	overview := "/traces/art/aggregate?slices=64"
	zoomed := "/traces/art/aggregate?slices=64&lo=2&hi=7"
	steps := []struct {
		path      string
		wantBuild string
	}{
		{overview, "scratch"},             // first touch of the overview level
		{zoomed, "scratch"},               // first touch of the zoom level
		{overview, "hit"},                 // back out: overview level is warm
		{zoomed + "&pan=1", "derived"},    // re-zoom panned: same grid, Update
		{zoomed, "hit"},                   // re-zoom exact: still resident
		{overview + "&pan=-2", "derived"}, // pan the overview level
	}
	for i, step := range steps {
		resp, body := get(t, tsCached.URL+step.path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d %s: status %d: %s", i, step.path, resp.StatusCode, body)
		}
		if got := resp.Header.Get(buildHeader); got != step.wantBuild {
			t.Fatalf("step %d %s: build %q, want %q", i, step.path, got, step.wantBuild)
		}
		sresp, sbody := get(t, tsScratch.URL+step.path)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("step %d scratch: status %d: %s", i, sresp.StatusCode, sbody)
		}
		if string(body) != string(sbody) {
			t.Fatalf("step %d %s: %s body differs from scratch build\ncached:  %s\nscratch: %s",
				i, step.path, step.wantBuild, body, sbody)
		}
	}
	st := sCached.CacheStats()
	if st.ZoomScratch == 0 {
		t.Fatalf("zoom_scratch = 0, want the first zoom counted: %+v", st)
	}
	if st.ZoomDerived == 0 {
		t.Fatalf("zoom_derived = 0, want the warm re-zoom counted: %+v", st)
	}
	if st.Scratch != 2 {
		t.Fatalf("scratch builds = %d, want 2 (one per level): %+v", st.Scratch, st)
	}
}

// TestAdmissionGuardRejectsOversizedWindow checks the arithmetic 413: a
// window whose single Input would exceed the cache budget is refused
// before any build, while a caching-disabled server admits everything.
func TestAdmissionGuardRejectsOversizedWindow(t *testing.T) {
	cfg := quietConfig()
	cfg.CacheBytes = 4 << 10 // far below any Input at 64 slices
	s, ts := newTestServer(t, cfg)

	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=64")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "budget") {
		t.Fatalf("413 body does not explain the budget: %s", body)
	}
	if st := s.CacheStats(); st.Rejected != 1 || st.Misses != 0 {
		t.Fatalf("rejected=%d misses=%d, want 1 rejection and no build", st.Rejected, st.Misses)
	}

	cfg.CacheBytes = -1 // disabled cache: no ladder to protect, no guard
	_, tsOff := newTestServer(t, cfg)
	if resp, body := get(t, tsOff.URL+"/traces/art/aggregate?slices=64"); resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled cache: status %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestRefineServesPreviewThenFine drives the progressive path: a zoom
// into uncached territory with refine=1 answers immediately with the
// coarse covering overview (preview marked in header and body) while the
// fine build runs in the background; re-requesting converges to the final
// response, byte-identical to a scratch build of the same window.
func TestRefineServesPreviewThenFine(t *testing.T) {
	s, ts := newTestServer(t, quietConfig())

	// Warm the overview level.
	if resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=64"); resp.StatusCode != http.StatusOK {
		t.Fatalf("overview: status %d: %s", resp.StatusCode, body)
	}

	zoomed := "/traces/art/aggregate?slices=64&lo=3&hi=9&refine=1"
	resp, body := get(t, ts.URL+zoomed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refine: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(refineHeader); got != "pending" {
		t.Fatalf("%s = %q, want pending", refineHeader, got)
	}
	if got := resp.Header.Get(buildHeader); got != string(BuildPreview) {
		t.Fatalf("%s = %q, want preview", buildHeader, got)
	}
	if !strings.Contains(string(body), `"preview":true`) {
		t.Fatalf("preview body not marked: %s", body)
	}
	// The preview is the covering overview at half resolution.
	if !strings.Contains(string(body), `"slices":32`) {
		t.Fatalf("preview not served at the coarse level: %s", body)
	}
	if st := s.CacheStats(); st.Previews != 1 {
		t.Fatalf("previews = %d, want 1", st.Previews)
	}

	// The background build converges: the same URL turns "ready" and the
	// final body is the fine window.
	deadline := time.Now().Add(30 * time.Second)
	var final []byte
	for {
		resp, body = get(t, ts.URL+zoomed)
		if resp.Header.Get(refineHeader) == "ready" {
			final = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refine never converged; last state %q", resp.Header.Get(refineHeader))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if strings.Contains(string(final), `"preview":true`) {
		t.Fatalf("converged body still marked preview: %s", final)
	}

	// Byte-identical to a scratch build of the fine window.
	cfgScratch := quietConfig()
	cfgScratch.CacheBytes = -1
	_, tsScratch := newTestServer(t, cfgScratch)
	if _, sbody := get(t, tsScratch.URL+"/traces/art/aggregate?slices=64&lo=3&hi=9"); string(final) != string(sbody) {
		t.Fatalf("refined body differs from scratch:\nrefined: %s\nscratch: %s", final, sbody)
	}
}

// TestRefineWithoutCoverFallsThrough: refine on a first-touch region has
// nothing to preview and answers synchronously, final.
func TestRefineWithoutCoverFallsThrough(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=48&lo=1&hi=4&refine=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(refineHeader); got != "none" {
		t.Fatalf("%s = %q, want none", refineHeader, got)
	}
	if got := resp.Header.Get(buildHeader); got != "scratch" {
		t.Fatalf("%s = %q, want scratch", buildHeader, got)
	}
	if strings.Contains(string(body), `"preview"`) {
		t.Fatalf("synchronous fallback marked preview: %s", body)
	}
}

// TestMetricsEndpoint scrapes /metrics and checks the Prometheus text
// format carries the counters /debug/cachestats reports.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, quietConfig())
	if resp, body := get(t, ts.URL+"/traces/art/aggregate?slices=20"); resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate: status %d: %s", resp.StatusCode, body)
	}

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	st := s.CacheStats()
	text := string(body)
	for _, want := range []string{
		"# TYPE ocelotl_cache_misses_total counter",
		fmt.Sprintf("ocelotl_cache_misses_total %d", st.Misses),
		fmt.Sprintf("ocelotl_cache_scratch_builds_total %d", st.Scratch),
		"# TYPE ocelotl_cache_bytes gauge",
		fmt.Sprintf("ocelotl_cache_budget_bytes %d", st.BudgetBytes),
		"ocelotl_zoom_derived_total",
		"ocelotl_zoom_scratch_total",
		"ocelotl_cache_rejected_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
