package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

// Trace is one loaded trace: its microscopic.Reslicer (the per-resource
// event index every window build and incremental derivation goes through)
// plus the metadata clients need to form window requests. Immutable after
// load, so handlers share it without locking.
type Trace struct {
	ID       string
	Path     string // source file, "" for traces loaded from memory
	Events   int
	LoadedAt time.Time

	resl *microscopic.Reslicer
	// gen distinguishes loads: an unload + reload of the same id gets a
	// fresh generation, so cache keys of the old load (including builds
	// still in flight during the unload) can never be served for the new
	// one.
	gen uint64
	// follow is non-nil for traces loaded in follow mode (live ingestion);
	// like the rest of the snapshot it is immutable — each follower tick
	// publishes a whole new Trace via replace.
	follow *followState
}

// Info summarizes a loaded trace for the JSON API.
type Info struct {
	ID        string   `json:"id"`
	Path      string   `json:"path,omitempty"`
	Events    int      `json:"events"`
	Resources int      `json:"resources"`
	States    []string `json:"states"`
	Start     float64  `json:"start"`
	End       float64  `json:"end"`
	LoadedAt  string   `json:"loaded_at"`
	Index     string   `json:"index"` // "ram" or "disk"
	// Follow is present for live-ingested traces.
	Follow *FollowInfo `json:"follow,omitempty"`
}

// FollowInfo publishes a follow trace's live-window coordinates. Lo, Hi,
// Slices and Pan are chosen so that querying any server — including a
// plain batch load of the same file — with exactly
// ?lo=Lo&hi=Hi&slices=Slices&pan=Pan reconstructs the live window
// float-for-float (JSON round-trips float64 exactly), which is how tests
// compare follow responses byte-for-byte against a scratch build.
type FollowInfo struct {
	Lo      float64 `json:"lo"`      // anchor grid start
	Hi      float64 `json:"hi"`      // anchor grid end
	Slices  int     `json:"slices"`  // slices per live window
	Pan     int     `json:"pan"`     // live window = anchor shifted this many slices
	Horizon float64 `json:"horizon"` // max event start ingested (sealed time)
	Ticks   int64   `json:"ticks"`   // ingestion ticks that carried events
	Offset  int64   `json:"offset"`  // committed byte offset in the source file
}

// Info renders the trace's metadata.
func (t *Trace) Info() Info {
	start, end := t.resl.TraceWindow()
	info := Info{
		ID:        t.ID,
		Path:      t.Path,
		Events:    t.Events,
		Resources: t.resl.Hierarchy().NumLeaves(),
		States:    t.resl.States(),
		Start:     start,
		End:       end,
		LoadedAt:  t.LoadedAt.UTC().Format(time.RFC3339),
		Index:     t.resl.IndexKind(),
	}
	if t.follow != nil {
		info.Follow = &FollowInfo{
			Lo:      t.follow.anchor.Start,
			Hi:      t.follow.anchor.End,
			Slices:  t.follow.anchor.N,
			Pan:     t.follow.pan,
			Horizon: t.follow.horizon,
			Ticks:   t.follow.ticks,
			Offset:  t.follow.offset,
		}
	}
	return info
}

// Registry holds the long-lived per-trace state: one Reslicer (and its
// hierarchy) per trace ID. Loading streams the trace once into the event
// index; every subsequent window request is served from the index without
// touching the file again.
type Registry struct {
	mu     sync.RWMutex
	traces map[string]*Trace
	now    func() time.Time
	gen    atomic.Uint64
	// indexOpts selects and tunes the Reslicer index backend for every
	// Load (zero value: IndexAuto with defaults — RAM below the
	// threshold, the on-disk store above it).
	indexOpts microscopic.IndexOptions
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{traces: make(map[string]*Trace), now: time.Now}
}

// SetIndexOptions configures the index backend used by subsequent Loads
// (daemon startup, before any trace is loaded).
func (r *Registry) SetIndexOptions(opt microscopic.IndexOptions) { r.indexOpts = opt }

// Load streams the trace file at path into a Reslicer and registers it
// under id. Loading an id that already exists is an error (unload first);
// concurrent loads of distinct ids proceed independently.
func (r *Registry) Load(id, path string) (*Trace, error) {
	if id == "" {
		return nil, fmt.Errorf("server: trace id must not be empty")
	}
	r.mu.RLock()
	_, exists := r.traces[id]
	r.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("server: trace %q already loaded", id)
	}
	src, err := traceio.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	resl, err := microscopic.NewReslicerIndexed(src, r.indexOpts)
	if err != nil {
		return nil, err
	}
	t, err := r.register(&Trace{ID: id, Path: path, resl: resl})
	if err != nil {
		resl.Close()
		return nil, err
	}
	return t, nil
}

// LoadTrace registers an in-memory trace (tests and embedders).
func (r *Registry) LoadTrace(id string, tr *trace.Trace) (*Trace, error) {
	if id == "" {
		return nil, fmt.Errorf("server: trace id must not be empty")
	}
	resl, err := microscopic.NewReslicer(tr)
	if err != nil {
		return nil, err
	}
	return r.register(&Trace{ID: id, resl: resl})
}

func (r *Registry) register(t *Trace) (*Trace, error) {
	t.Events = t.resl.NumEvents()
	t.LoadedAt = r.now()
	// A pre-set gen is a recovered trace keeping its journaled lineage
	// (the caller bumps the counter past it); everything else gets fresh.
	if t.gen == 0 {
		t.gen = r.gen.Add(1)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.traces[t.ID]; exists {
		return nil, fmt.Errorf("server: trace %q already loaded", t.ID)
	}
	r.traces[t.ID] = t
	return t, nil
}

// replace swaps in a new snapshot for t.ID, preserving registration
// identity — the follower's per-tick publish. It refuses (returning
// false) when the id is no longer registered or was re-registered under
// a different lineage (the old snapshot's gen no longer matches and the
// new one isn't a deliberate bump of it), so a tick racing an unload can
// never resurrect a removed trace.
func (r *Registry) replace(t *Trace) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.traces[t.ID]
	if !ok || cur.follow == nil {
		return false
	}
	r.traces[t.ID] = t
	return true
}

// bumpGen advances the generation counter to at least g — recovery calls
// it with each journaled gen so post-restart loads can never reuse a
// generation the manifest (and therefore old cache keys) already names.
func (r *Registry) bumpGen(g uint64) {
	for {
		cur := r.gen.Load()
		if cur >= g || r.gen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// snapshot returns the registered traces (unsorted) — the manifest and
// scrub passes iterate it without holding the lock across their I/O.
func (r *Registry) snapshot() []*Trace {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Trace, 0, len(r.traces))
	for _, t := range r.traces {
		out = append(out, t)
	}
	return out
}

// swap replaces old with nw iff old is still the registered snapshot —
// the scrub rebuild's publish, analogous to replace but keyed on pointer
// identity so it cannot clobber a concurrent reload.
func (r *Registry) swap(old, nw *Trace) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.traces[old.ID]
	if !ok || cur != old {
		return false
	}
	r.traces[nw.ID] = nw
	return true
}

// Get returns the trace registered under id.
func (r *Registry) Get(id string) (*Trace, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.traces[id]
	return t, ok
}

// Remove unregisters id and reports whether it was present. The caller is
// responsible for purging any cached Inputs derived from it.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.traces[id]
	delete(r.traces, id)
	return ok
}

// List returns the loaded traces' metadata, sorted by id.
func (r *Registry) List() []Info {
	r.mu.RLock()
	out := make([]Info, 0, len(r.traces))
	for _, t := range r.traces {
		out = append(out, t.Info())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IndexStats aggregates the loaded traces' index residency and read
// counters: index bytes (RAM arrays or disk directory — the fixed cost),
// open-chunk bytes (the disk backends' decoded caches), and the summed
// store read counters. Reported via /debug/cachestats and /metrics,
// distinct from Input (cache entry) bytes so the two budgets never
// double-count.
func (r *Registry) IndexStats() (indexBytes, openChunkBytes int64, rs eventstore.ReadStats) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, t := range r.traces {
		indexBytes += t.resl.IndexMemoryBytes()
		openChunkBytes += t.resl.OpenChunkBytes()
		st := t.resl.IndexReadStats()
		rs.ChunksRead += st.ChunksRead
		rs.BytesRead += st.BytesRead
		rs.CacheHits += st.CacheHits
	}
	return indexBytes, openChunkBytes, rs
}

// CloseAll unregisters every trace and releases its index (daemon
// shutdown: disk-backed indexes hold open store files that Close
// removes). Returns the first close error.
func (r *Registry) CloseAll() error {
	r.mu.Lock()
	traces := r.traces
	r.traces = make(map[string]*Trace)
	r.mu.Unlock()
	var first error
	for _, t := range traces {
		if err := t.resl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
