package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
	"ocelotl/internal/traceio"
)

// Follow mode: live ingestion of a trace that is still being written.
//
// One follower goroutine per follow-loaded trace tails the file
// (traceio.OpenTail), and each tick extends the trace's Reslicer with the
// newly flushed events (microscopic.Reslicer.Extend — copy-on-write, so
// queries in flight keep their snapshot), advances the live window's
// Input incrementally (core.Input.AdvanceContext — O(Δ slices)), and
// swaps a fresh immutable Trace snapshot into the registry.
//
// Correctness under concurrent queries hangs on the *horizon* rule: the
// horizon is the maximum event start ingested so far, and a time-ordered
// writer can only append events starting at or past it. A window whose
// end ≤ horizon is therefore sealed — no future event can overlap it —
// so cached Inputs for sealed windows stay bit-identical to scratch
// forever and ticks do NOT bump the trace generation: hits, ladder pins
// and pan-derivations all survive ingestion. Queries past the horizon
// are refused with 400 (they would cache unsealed floats). A batch that
// violates time order (min start < horizon) takes the safe fallback:
// generation bump + cache purge + live-window rebuild, exactly the
// unload/reload consistency path.
//
// The live window itself is the last liveSlices slices of a fixed grid
// anchored at the trace start (the anchor), shifted forward as the
// horizon crosses slice boundaries. live=1 on any query endpoint
// resolves to it, and the trace's Info publishes (lo, hi, slices, pan)
// such that an explicit ?lo=&hi=&slices=&pan= query reproduces the exact
// window — the same floats — which is what makes follow responses
// byte-comparable against a scratch server.

// followDefaultPoll is the tail poll interval when the load request
// leaves poll_ms unset.
const followDefaultPoll = 200 * time.Millisecond

// followOpenWait bounds how long POST /traces waits for the file to
// appear with a complete header before failing the load.
const followOpenWait = 5 * time.Second

// followMaxBatch caps the events ingested per tick, bounding tick
// latency; a backlog simply drains over consecutive ticks.
const followMaxBatch = 1 << 18

// followOptions is the follow half of a load request, normalized.
type followOptions struct {
	poll       time.Duration
	liveSlices int
	sliceWidth float64
}

// followState is the published follow view carried by each immutable
// Trace snapshot (handlers read it without locking; the follower
// publishes a fresh one per tick).
type followState struct {
	anchor  timeslice.Slicer // live grid: New(start, start+T·w, T)
	pan     int              // anchor.Shift(pan) is the current live window
	horizon float64          // max event start ingested; sealed time
	ticks   int64            // ticks that ingested at least one event
	offset  int64            // tail reader committed byte offset (resume point)
	poll    time.Duration    // tail poll interval (journaled for resume)
}

// liveWindow returns the current live slicer.
func (fs *followState) liveWindow() timeslice.Slicer { return fs.anchor.Shift(fs.pan) }

// follower is one trace's ingestion loop state (owned by its goroutine;
// the registry snapshot is the only shared view).
type follower struct {
	id     string
	tail   *traceio.TailReader
	opts   followOptions
	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}

	// live chains tick to tick so each advance is O(Δ slices); nil until
	// the first build, rebuilt from scratch after a reorder.
	live *core.Input
	// pending holds events read from the tail but not yet extended into
	// the index — kept across a failed tick (e.g. an armed extend
	// failpoint) so chaos faults delay ingestion instead of losing events.
	pending []trace.Event
}

// sealedPan returns the pan (relative to the anchor) of the live window
// whose end sits at the last slice boundary at or below horizon. The
// boundary comparison uses the exact floats Shift produces, so the
// returned window always passes the horizon admission guard.
func sealedPan(anchor timeslice.Slicer, horizon float64) int {
	w := anchor.Width()
	e := int(math.Floor((horizon - anchor.Start) / w))
	if e < 0 {
		e = 0
	}
	pan := e - anchor.N
	for pan > -anchor.N && anchor.Shift(pan).End > horizon {
		pan--
	}
	for anchor.Shift(pan+1).End <= horizon {
		pan++
	}
	return pan
}

// FollowTrace loads a trace in follow mode outside the HTTP API (daemon
// preloading, tests, embedders) with default poll and grid settings.
func (s *Server) FollowTrace(ctx context.Context, id, path string) (*Trace, error) {
	return s.startFollow(ctx, loadRequest{ID: id, Path: path, Follow: true})
}

// startFollow loads a trace in follow mode: it waits (briefly) for the
// file's header, ingests whatever events are already flushed, registers
// the snapshot, seeds the live window, and starts the follower loop.
func (s *Server) startFollow(ctx context.Context, req loadRequest) (*Trace, error) {
	opts := followOptions{
		poll:       followDefaultPoll,
		liveSlices: microscopic.DefaultSlices,
		sliceWidth: req.SliceWidth,
	}
	if req.PollMs > 0 {
		opts.poll = time.Duration(req.PollMs) * time.Millisecond
	}
	if req.LiveSlices > 0 {
		opts.liveSlices = req.LiveSlices
	}
	if req.SliceWidth < 0 || math.IsNaN(req.SliceWidth) || math.IsInf(req.SliceWidth, 0) {
		return nil, fmt.Errorf("server: bad slice_width %v", req.SliceWidth)
	}
	if _, exists := s.reg.Get(req.ID); exists {
		return nil, fmt.Errorf("server: trace %q already loaded", req.ID)
	}

	tail, err := s.openTailWait(ctx, req.Path, opts.poll)
	if err != nil {
		return nil, err
	}

	// Ingest the flushed prefix and find the initial horizon.
	hdrStart, hdrEnd := tail.Window()
	horizon := hdrStart
	var events []trace.Event
	var ev trace.Event
	for {
		err := tail.Next(&ev)
		if err != nil {
			if traceio.IsIncomplete(err) {
				break
			}
			tail.Close()
			return nil, err
		}
		if ev.Start > horizon {
			horizon = ev.Start
		}
		events = append(events, ev)
	}

	if opts.sliceWidth == 0 {
		// Default grid: the header's declared window split into liveSlices
		// — the live view converges to the batch view at completion.
		if hdrEnd > hdrStart {
			opts.sliceWidth = (hdrEnd - hdrStart) / float64(opts.liveSlices)
		} else {
			opts.sliceWidth = 1
		}
	}
	anchor, err := timeslice.New(hdrStart, hdrStart+float64(opts.liveSlices)*opts.sliceWidth, opts.liveSlices)
	if err != nil {
		tail.Close()
		return nil, fmt.Errorf("server: follow grid: %w", err)
	}

	resl, err := microscopic.NewReslicerIndexed(
		&followSource{resources: tail.Resources(), states: tail.States(), start: hdrStart, end: horizon, events: events},
		s.reg.indexOpts)
	if err != nil {
		tail.Close()
		return nil, err
	}

	fctx, cancel := context.WithCancel(context.Background())
	f := &follower{
		id:     req.ID,
		tail:   tail,
		opts:   opts,
		ctx:    fctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	tr := &Trace{ID: req.ID, Path: req.Path, resl: resl, follow: &followState{
		anchor:  anchor,
		pan:     sealedPan(anchor, horizon),
		horizon: horizon,
		offset:  tail.Offset(),
		poll:    opts.poll,
	}}

	tr, err = s.launchFollower(f, tr)
	if err != nil {
		cancel()
		tail.Close()
		resl.Close()
		return nil, err
	}
	s.log.Info("follow started", "trace", req.ID, "path", req.Path,
		"events", tr.Events, "horizon", horizon, "poll", opts.poll,
		"live_slices", opts.liveSlices, "slice_width", opts.sliceWidth)
	return tr, nil
}

// launchFollower publishes a prepared follower: it is tracked before the
// trace is visible (so a DELETE racing the load always finds the loop to
// stop), the snapshot registered, the live window seeded so the first
// live=1 query is a hit, and the ingestion loop started. Shared by
// startFollow and the recovery resume; on error the caller releases the
// tail and index it prepared.
func (s *Server) launchFollower(f *follower, tr *Trace) (*Trace, error) {
	s.followMu.Lock()
	if _, dup := s.followers[f.id]; dup {
		s.followMu.Unlock()
		return nil, fmt.Errorf("server: trace %q already loading in follow mode", f.id)
	}
	s.followers[f.id] = f
	s.followMu.Unlock()

	if _, err := s.reg.register(tr); err != nil {
		s.followMu.Lock()
		delete(s.followers, f.id)
		s.followMu.Unlock()
		return nil, err
	}

	if in, err := s.buildLive(f.ctx, tr); err == nil {
		f.live = in
		s.cache.Seed(tr, in)
	} else if !isCancellation(err) {
		s.log.Warn("follow: initial live build failed", "trace", f.id, "error", err)
	}

	go s.runFollower(f)
	return tr, nil
}

// followRetryBase and followRetryCap bound the retry backoff shared by
// openTailWait and the follower loop's error path: exponential from the
// base, jittered (a uniform draw from [d/2, d]), capped so a long outage
// still polls a few times a second rather than going silent.
const (
	followRetryBase = 20 * time.Millisecond
	followRetryCap  = 500 * time.Millisecond
)

// followBackoff returns the jittered sleep for the given consecutive-
// failure count (1-based) and counts the retry.
func (s *Server) followBackoff(failures int) time.Duration {
	d := followRetryBase << uint(failures-1)
	if d <= 0 || d > followRetryCap {
		d = followRetryCap
	}
	s.cache.stats.FollowRetries.Add(1)
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// openTailWait retries OpenTail while the file is missing or its header
// incomplete — the writer may not have flushed it yet — with capped
// jittered exponential backoff (counted in follow_retries), bounded by
// followOpenWait and the request context.
func (s *Server) openTailWait(ctx context.Context, path string, poll time.Duration) (*traceio.TailReader, error) {
	deadline := time.Now().Add(followOpenWait)
	for attempt := 1; ; attempt++ {
		tail, err := traceio.OpenTail(path)
		if err == nil {
			return tail, nil
		}
		if !os.IsNotExist(err) && !traceio.IsIncomplete(err) {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: waiting for followable header: %w", err)
		}
		wait := s.followBackoff(attempt)
		if wait > poll {
			wait = poll
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// followSource feeds the initial in-memory prefix to the indexed
// constructor with the ingested horizon as the window end.
type followSource struct {
	resources, states []string
	start, end        float64
	events            []trace.Event
	i                 int
}

func (s *followSource) Resources() []string        { return s.resources }
func (s *followSource) States() []string           { return s.states }
func (s *followSource) Window() (float64, float64) { return s.start, s.end }
func (s *followSource) Next(ev *trace.Event) error {
	if s.i >= len(s.events) {
		return io.EOF
	}
	*ev = s.events[s.i]
	s.i++
	return nil
}

// buildLive scratch-builds the trace snapshot's current live window.
func (s *Server) buildLive(ctx context.Context, tr *Trace) (*core.Input, error) {
	m, err := tr.resl.BuildAt(tr.follow.liveWindow())
	if err != nil {
		return nil, err
	}
	return core.NewInputContext(ctx, m, s.cache.opts)
}

// runFollower is the per-trace ingestion loop: poll, tick, repeat until
// cancelled (DELETE or drain). Retryable tick errors — I/O hiccups, armed
// failpoints — are logged and retried with the pending batch intact,
// under the shared jittered backoff (counted in follow_retries, reset on
// the first good tick) so a persistent fault doesn't spin the poll;
// corruption is terminal (it never repairs), the loop parks with the
// last good snapshot still served.
func (s *Server) runFollower(f *follower) {
	defer close(f.done)
	defer f.tail.Close()
	ticker := time.NewTicker(f.opts.poll)
	defer ticker.Stop()
	failures := 0
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-ticker.C:
		}
		err := s.followTick(f)
		if err == nil {
			failures = 0
			continue
		}
		if f.ctx.Err() != nil || isCancellation(err) {
			return
		}
		if traceio.IsCorrupt(err) {
			s.log.Error("follow stopped: trace corrupt", "trace", f.id, "error", err)
			return
		}
		failures++
		wait := s.followBackoff(failures)
		s.log.Warn("follow tick failed; retrying", "trace", f.id, "error", err,
			"failures", failures, "backoff", wait)
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// followTick ingests one batch: read newly flushed events, Extend the
// snapshot's reslicer, advance the live Input incrementally, publish the
// new snapshot, seed the cache. Reads errNothing new as a no-op.
func (s *Server) followTick(f *follower) error {
	var ev trace.Event
	for len(f.pending) < followMaxBatch {
		err := f.tail.Next(&ev)
		if err != nil {
			if traceio.IsIncomplete(err) {
				break
			}
			return err
		}
		f.pending = append(f.pending, ev)
	}
	if len(f.pending) == 0 {
		return nil
	}
	cur, ok := s.reg.Get(f.id)
	if !ok || cur.follow == nil {
		return nil // unloaded under us; cancellation is on its way
	}
	fs := cur.follow

	minStart, maxStart := math.Inf(1), math.Inf(-1)
	for _, e := range f.pending {
		if e.Start < minStart {
			minStart = e.Start
		}
		if e.Start > maxStart {
			maxStart = e.Start
		}
	}
	reorder := minStart < fs.horizon
	horizon := fs.horizon
	if maxStart > horizon {
		horizon = maxStart
	}

	resl, err := cur.resl.Extend(f.pending, horizon)
	if err != nil {
		return err
	}
	nfs := &followState{
		anchor:  fs.anchor,
		pan:     sealedPan(fs.anchor, horizon),
		horizon: horizon,
		ticks:   fs.ticks + 1,
		offset:  f.tail.Offset(),
		poll:    fs.poll,
	}
	batch := len(f.pending)
	f.pending = f.pending[:0]

	k := nfs.pan - fs.pan
	ntr := &Trace{ID: cur.ID, Path: cur.Path, Events: resl.NumEvents(),
		LoadedAt: cur.LoadedAt, resl: resl, gen: cur.gen, follow: nfs}
	if reorder {
		// Out-of-order batch: sealed-window reasoning is void for every
		// cached entry, so isolate them behind a fresh generation — the
		// unload/reload consistency path — and rebuild the live chain.
		ntr.gen = s.reg.gen.Add(1)
		s.cache.stats.FollowReorders.Add(1)
	}
	live := f.live
	switch {
	case reorder || live == nil:
		live, err = s.buildLive(f.ctx, ntr)
		if err != nil {
			return err
		}
	case k > 0:
		live, err = live.AdvanceContext(f.ctx, resl, k)
		if err != nil {
			return err
		}
		// k == 0: the window didn't move and (time-ordered batch) no new
		// event starts before its end — the chained Input stays exact.
	}

	if reorder {
		s.cache.PurgeTrace(cur.ID, cur.gen)
	}
	if !s.reg.replace(ntr) {
		return nil // unloaded during the tick
	}
	f.live = live
	s.cache.Seed(ntr, live)
	s.cache.stats.FollowTicks.Add(1)
	s.cache.stats.FollowEvents.Add(int64(batch))
	// Journal the advanced resume offset every checkpointTicks ticks —
	// a non-blocking kick to the keeper, nothing durable on this path.
	if s.state != nil && s.checkpointTicks > 0 && nfs.ticks%int64(s.checkpointTicks) == 0 {
		s.requestCheckpoint()
	}
	s.log.Debug("follow tick", "trace", f.id, "events", batch,
		"horizon", horizon, "pan", nfs.pan, "advanced_slices", k, "reorder", reorder)
	return nil
}

// stopFollower cancels id's follower (if any) and waits for the loop to
// exit — DELETE and drain call it before touching the registry, so the
// loop can never publish a snapshot for a removed trace.
func (s *Server) stopFollower(id string) {
	s.followMu.Lock()
	f := s.followers[id]
	delete(s.followers, id)
	s.followMu.Unlock()
	if f == nil {
		return
	}
	f.cancel()
	<-f.done
}

// StopFollowers stops every follow loop and waits for them (daemon
// shutdown, before Registry.CloseAll releases the indexes).
func (s *Server) StopFollowers() {
	s.followMu.Lock()
	fs := make([]*follower, 0, len(s.followers))
	for id, f := range s.followers {
		fs = append(fs, f)
		delete(s.followers, id)
	}
	s.followMu.Unlock()
	for _, f := range fs {
		f.cancel()
	}
	for _, f := range fs {
		<-f.done
	}
}
