package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// OverloadError is the serving layer's load-shedding refusal: the build
// gate is saturated and this request either found the wait queue full or
// would blow its own deadline before reaching the front. Handlers map it
// to 503 with a Retry-After derived from the gate's current backlog
// estimate — the client-visible contract that a shed request is
// retryable, not failed.
type OverloadError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server overloaded (%s): retry in %v", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// defaultBuildEstimate seeds the gate's build-latency EWMA before any
// build has completed; real observations replace it within a few builds.
const defaultBuildEstimate = 100 * time.Millisecond

// buildGate bounds the number of window builds running at once. Builds
// are the expensive admission unit of the server — each one fills
// O(|H(S)|·|T|²) matrices — and without a bound a burst of scratch
// requests queues unboundedly behind the solver pool, taking every
// later request down with it. The gate holds a fixed number of slots and
// a FIFO wait queue; requests beyond the queue cap, and requests whose
// deadline is closer than the estimated time to reach the front, are
// shed immediately (OverloadError → 503 + Retry-After) instead of
// queueing past their budget. The estimate is an EWMA of observed build
// latencies, so Retry-After tracks the actual workload.
//
// Cache hits never touch the gate: shedding applies to work, not
// lookups.
type buildGate struct {
	capacity int
	maxQueue int

	mu       sync.Mutex
	inflight int
	queue    *list.List // of *gateWaiter, FIFO

	avgBuildNs atomic.Int64
}

// gateWaiter is one queued build; ready is closed when a released slot
// is handed to it.
type gateWaiter struct {
	ready chan struct{}
}

func newBuildGate(capacity, maxQueue int) *buildGate {
	g := &buildGate{capacity: capacity, maxQueue: maxQueue, queue: list.New()}
	g.avgBuildNs.Store(int64(defaultBuildEstimate))
	return g
}

// expectedWaitLocked estimates how long a request arriving now would
// wait for a slot with queued requests already ahead of it: every
// capacity-sized wave of the backlog costs one average build.
func (g *buildGate) expectedWaitLocked(queued int) time.Duration {
	avg := time.Duration(g.avgBuildNs.Load())
	waves := queued/g.capacity + 1
	return avg * time.Duration(waves)
}

// Acquire claims a build slot, queueing FIFO behind the backlog.
// waitCtx governs the wait itself (the flight's detached context — a
// build every waiter abandoned stops queueing); reqCtx contributes only
// its deadline, against which a queued request is shed as doomed before
// it waits at all. The returned release hands the slot to the next
// waiter.
func (g *buildGate) Acquire(waitCtx, reqCtx context.Context) (release func(), err error) {
	g.mu.Lock()
	if g.inflight < g.capacity {
		g.inflight++
		g.mu.Unlock()
		return g.release, nil
	}
	queued := g.queue.Len()
	wait := g.expectedWaitLocked(queued)
	if queued >= g.maxQueue {
		g.mu.Unlock()
		return nil, &OverloadError{Reason: "build queue full", RetryAfter: wait}
	}
	if deadline, ok := reqCtx.Deadline(); ok && time.Until(deadline) < wait {
		g.mu.Unlock()
		return nil, &OverloadError{Reason: "deadline shorter than queue", RetryAfter: wait}
	}
	w := &gateWaiter{ready: make(chan struct{})}
	el := g.queue.PushBack(w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return g.release, nil
	case <-waitCtx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the cancellation: the slot is ours
			// to give back.
			g.mu.Unlock()
			g.release()
		default:
			g.queue.Remove(el)
			g.mu.Unlock()
		}
		return nil, waitCtx.Err()
	}
}

// release returns a slot: the FIFO head inherits it, or the in-flight
// count drops.
func (g *buildGate) release() {
	g.mu.Lock()
	if el := g.queue.Front(); el != nil {
		g.queue.Remove(el)
		close(el.Value.(*gateWaiter).ready)
		g.mu.Unlock()
		return
	}
	g.inflight--
	g.mu.Unlock()
}

// RecordBuild feeds one observed build latency into the EWMA behind
// Retry-After and the doomed-deadline check (weight 1/8: stable under
// the mixed derived/scratch latencies one trace produces).
func (g *buildGate) RecordBuild(d time.Duration) {
	old := g.avgBuildNs.Load()
	g.avgBuildNs.Store(old - old/8 + int64(d)/8)
}

// Backlog reports the gate's instantaneous occupancy (metrics).
func (g *buildGate) Backlog() (inflight, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.queue.Len()
}
