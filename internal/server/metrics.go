package server

import (
	"fmt"
	"net/http"
)

// handleMetrics serves the cache counters in the Prometheus text
// exposition format (version 0.0.4). The counters are already monotonic
// atomics and the format is plain text, so no client library is needed —
// the daemon stays dependency-free while any standard scraper can watch
// the pyramid's zoom hit rate (ocelotl_zoom_derived_total vs
// ocelotl_zoom_scratch_total) and the cache's pressure counters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.CacheStats()
	type metric struct {
		name, help, typ string
		value           int64
	}
	metrics := []metric{
		{"ocelotl_cache_hits_total", "Window requests served from the exact cached entry.", "counter", snap.Hits},
		{"ocelotl_cache_misses_total", "Window requests that started a build flight.", "counter", snap.Misses},
		{"ocelotl_cache_coalesced_total", "Requests that piggybacked on an identical in-flight build.", "counter", snap.Coalesced},
		{"ocelotl_cache_derived_builds_total", "Builds served by incremental derivation from a cached neighbor.", "counter", snap.Derived},
		{"ocelotl_cache_scratch_builds_total", "Builds that went to the event index.", "counter", snap.Scratch},
		{"ocelotl_cache_evictions_total", "Entries evicted by the byte budget.", "counter", snap.Evictions},
		{"ocelotl_cache_aborted_total", "Requests abandoned on context cancellation.", "counter", snap.Aborted},
		{"ocelotl_cache_rejected_total", "Windows rejected by the admission guard before building (413).", "counter", snap.Rejected},
		{"ocelotl_shed_total", "Requests shed by the build gate (503 + Retry-After).", "counter", snap.Shed},
		{"ocelotl_degraded_total", "Requests answered with the coarse preview after a slow or faulted fine build.", "counter", snap.Degraded},
		{"ocelotl_panics_total", "Panics recovered on the serve path (flight builds and handlers).", "counter", snap.Panics},
		{"ocelotl_zoom_derived_total", "Resolution changes served by derivation from the warm ladder level.", "counter", snap.ZoomDerived},
		{"ocelotl_zoom_scratch_total", "Resolution changes that fell through to the event index.", "counter", snap.ZoomScratch},
		{"ocelotl_previews_total", "Refine requests answered with a coarse covering preview.", "counter", snap.Previews},
		{"ocelotl_sweep_queries_total", "Multi-p requests served through the fused sweep path.", "counter", snap.SweepQueries},
		{"ocelotl_sweep_ps_total", "Total p points answered by fused sweeps.", "counter", snap.SweepPs},
		{"ocelotl_follow_ticks_total", "Follow-mode ingestion ticks that carried events.", "counter", snap.FollowTicks},
		{"ocelotl_follow_events_total", "Events ingested by follow-mode ticks.", "counter", snap.FollowEvents},
		{"ocelotl_follow_reorders_total", "Out-of-order follow batches that forced a generation bump and cache purge.", "counter", snap.FollowReorders},
		{"ocelotl_follow_retries_total", "Backed-off retries on the follow paths (tail opens and failed ticks).", "counter", snap.FollowRetries},
		{"ocelotl_checkpoints_total", "Manifest checkpoints written by the durable-state keeper.", "counter", snap.Checkpoints},
		{"ocelotl_recovered_orphans_total", "Stale temp and unreferenced store files swept at recovery.", "counter", snap.RecoveredOrphans},
		{"ocelotl_quarantined_total", "Corrupt manifests and store files moved aside by recovery and scrub.", "counter", snap.Quarantined},
		{"ocelotl_cache_entries", "Cached window Inputs resident now.", "gauge", int64(snap.Entries)},
		{"ocelotl_cache_bytes", "Bytes of cached Input arenas resident now.", "gauge", snap.Bytes},
		{"ocelotl_cache_budget_bytes", "Configured cache byte budget.", "gauge", snap.BudgetBytes},
		{"ocelotl_index_bytes", "Event indexes' fixed residency (RAM arrays or disk chunk directories), distinct from Input bytes.", "gauge", snap.IndexBytes},
		{"ocelotl_index_open_chunk_bytes", "Disk indexes' decoded-chunk cache residency.", "gauge", snap.IndexOpenChunkBytes},
		{"ocelotl_index_chunks_read_total", "Store chunks fetched and decoded from disk.", "counter", snap.IndexChunksRead},
		{"ocelotl_index_chunk_hits_total", "Chunk reads served from the decoded-chunk cache.", "counter", snap.IndexChunkHits},
		{"ocelotl_index_bytes_read_total", "Bytes of chunk payload read from disk.", "counter", snap.IndexBytesRead},
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
}
