package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ocelotl/internal/failpoint"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/testutil"
	"ocelotl/internal/timeslice"
)

// serveWithContext drives the handler directly with a caller-controlled
// request context — the in-process equivalent of a client whose deadline
// expired or who hung up. RequestTimeout is disabled so the response
// observed is the handler's own (http.TimeoutHandler would race it with
// its 503).
func serveWithContext(t *testing.T, s *Server, ctx context.Context, target string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func noTimeoutConfig() Config {
	cfg := quietConfig()
	cfg.RequestTimeout = -1
	return cfg
}

// TestExpiredDeadlineAborts is the satellite contract: a request arriving
// with an already-expired deadline returns promptly with 499, increments
// the aborted counter, builds nothing — and leaves the cache's byte
// accounting consistent, so an identical follow-up request with a live
// context is served normally and a third one hits.
func TestExpiredDeadlineAborts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := New(noTimeoutConfig())
	if _, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(16, 30)); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	rec := serveWithContext(t, s, expired, "/traces/art/aggregate?p=0.3&slices=20")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("expired request took %v, want a prompt return", elapsed)
	}
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("expired request: status %d, want %d (body %q)", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}

	st := s.CacheStats()
	if st.Aborted != 1 {
		t.Fatalf("aborted counter = %d after an expired request, want 1", st.Aborted)
	}
	if st.Scratch+st.Derived != 0 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("expired request left build debris in the cache: %+v", st)
	}

	// Identical follow-up with a live context: served, cached, accounted.
	rec = serveWithContext(t, s, context.Background(), "/traces/art/aggregate?p=0.3&slices=20")
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request: status %d, want 200 (body %q)", rec.Code, rec.Body.String())
	}
	var resp aggregateJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Areas) == 0 {
		t.Fatal("follow-up request served an empty partition")
	}
	st = s.CacheStats()
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("follow-up build not accounted: %+v", st)
	}
	if st.Aborted != 1 {
		t.Fatalf("aborted counter moved to %d on a served request", st.Aborted)
	}

	// And the cached window actually hits.
	rec = serveWithContext(t, s, context.Background(), "/traces/art/aggregate?p=0.3&slices=20")
	if rec.Code != http.StatusOK {
		t.Fatalf("third request: status %d", rec.Code)
	}
	if st = s.CacheStats(); st.Hits != 1 {
		t.Fatalf("third request did not hit the cache: %+v", st)
	}
}

// TestExpiredDeadlineStillServesHits pins the cheap-path exception: a hit
// costs a map lookup, so even a dead request gets it (the write is
// discarded upstream; the point is the cache refuses no free work and
// aborts only builds).
func TestExpiredDeadlineStillServesHits(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := New(noTimeoutConfig())
	tr, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(16, 30))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := timeslice.New(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.cache.Get(context.Background(), tr, sl); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	in, kind, err := s.cache.Get(expired, tr, sl)
	if err != nil || kind != BuildHit || in == nil {
		t.Fatalf("cached window under an expired ctx: (%v, %v, %v), want a hit", in, kind, err)
	}
}

// TestSingleflightDiesWhenAllWaitersCancel holds a build in place with the
// test hook and proves the detach semantics end to end: the leader's
// cancel alone does not kill the flight (a joiner still wants the result);
// only when the last waiter cancels does the flight's context die, the
// build abort, and both callers get cancellation errors — with nothing
// inserted into the cache and no goroutine left behind.
func TestSingleflightDiesWhenAllWaitersCancel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := New(noTimeoutConfig())
	tr, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(16, 30))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := timeslice.New(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}

	buildEntered := make(chan struct{})
	buildCtxDied := make(chan struct{})
	failpoint.EnableFunc(FailpointFlight, func(ctx context.Context) error {
		close(buildEntered)
		select {
		case <-ctx.Done():
			close(buildCtxDied)
		case <-time.After(30 * time.Second):
		}
		return nil
	})
	defer failpoint.Disable(FailpointFlight)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	joinerCtx, cancelJoiner := context.WithCancel(context.Background())
	defer cancelJoiner()

	type result struct {
		kind BuildKind
		err  error
	}
	leaderDone := make(chan result, 1)
	go func() {
		_, kind, err := s.cache.Get(leaderCtx, tr, sl)
		leaderDone <- result{kind, err}
	}()
	<-buildEntered // the leader is inside the (held) build

	joinerDone := make(chan result, 1)
	go func() {
		_, kind, err := s.cache.Get(joinerCtx, tr, sl)
		joinerDone <- result{kind, err}
	}()
	// Wait until the joiner has coalesced onto the flight.
	for i := 0; ; i++ {
		if s.cache.Snapshot().Coalesced == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("joiner never coalesced onto the in-flight build")
		}
		time.Sleep(time.Millisecond)
	}

	// First waiter (the leader's request) gives up: the flight must stay
	// alive for the joiner.
	cancelLeader()
	select {
	case <-buildCtxDied:
		t.Fatal("flight died on the leader's cancel while a joiner was still waiting")
	case <-time.After(100 * time.Millisecond):
	}

	// Last waiter gives up: now the flight's context must die, the build
	// abort, and both callers get cancellation errors.
	cancelJoiner()
	select {
	case <-buildCtxDied:
	case <-time.After(10 * time.Second):
		t.Fatal("flight context did not die after all waiters cancelled")
	}
	jr := <-joinerDone
	if !errors.Is(jr.err, context.Canceled) {
		t.Fatalf("joiner got (%v, %v), want context.Canceled", jr.kind, jr.err)
	}
	lr := <-leaderDone
	if !errors.Is(lr.err, context.Canceled) {
		t.Fatalf("leader got (%v, %v), want context.Canceled", lr.kind, lr.err)
	}

	st := s.cache.Snapshot()
	if st.Entries != 0 || st.Bytes != 0 || st.Scratch+st.Derived != 0 {
		t.Fatalf("abandoned flight left debris: %+v", st)
	}

	// The same window still builds cleanly afterwards.
	failpoint.Disable(FailpointFlight)
	if _, kind, err := s.cache.Get(context.Background(), tr, sl); err != nil || kind != BuildScratch {
		t.Fatalf("rebuild after abandoned flight: (%v, %v)", kind, err)
	}
}

// TestLiveRequestNotPoisonedByAbandonedFlight pins the retry semantics: a
// live request that runs into a flight all of whose waiters already
// cancelled must not inherit the dying build's context.Canceled (which the
// handler would misreport as 499 "client closed") — it waits out the
// abandoned flight's unwind and builds fresh.
func TestLiveRequestNotPoisonedByAbandonedFlight(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := New(noTimeoutConfig())
	tr, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(16, 30))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := timeslice.New(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}

	buildEntered := make(chan struct{}, 2)
	releaseBuild := make(chan struct{})
	var flightCtx context.Context
	failpoint.EnableFunc(FailpointFlight, func(ctx context.Context) error {
		flightCtx = ctx
		buildEntered <- struct{}{}
		<-releaseBuild // hold even past cancellation: pins the unwind window
		return nil
	})
	defer failpoint.Disable(FailpointFlight)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := s.cache.Get(leaderCtx, tr, sl)
		leaderDone <- err
	}()
	<-buildEntered

	// The sole waiter cancels: the flight is now abandoned but its build
	// is still unwinding (held by the hook).
	cancelLeader()
	for i := 0; flightCtx.Err() == nil; i++ {
		if i > 5000 {
			t.Fatal("flight context did not die after its only waiter cancelled")
		}
		time.Sleep(time.Millisecond)
	}

	// A live request arrives mid-unwind. It must end with a real Input.
	type result struct {
		in   interface{ MemoryBytes() int }
		kind BuildKind
		err  error
	}
	liveDone := make(chan result, 1)
	go func() {
		in, kind, err := s.cache.Get(context.Background(), tr, sl)
		liveDone <- result{in, kind, err}
	}()
	time.Sleep(20 * time.Millisecond) // let it park on the dying flight
	close(releaseBuild)               // the abandoned build finally unwinds

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned leader got %v, want context.Canceled", err)
	}
	lr := <-liveDone
	if lr.err != nil || lr.in == nil {
		t.Fatalf("live request got (%v, %v, %v), want a fresh build", lr.in, lr.kind, lr.err)
	}
	if st := s.cache.Snapshot(); st.Entries != 1 {
		t.Fatalf("live request's rebuild not cached: %+v", st)
	}
}

// TestSingleflightSurvivesLeaderCancel is the positive half of the detach
// semantics: the leader's request dies mid-build, the joiner stays — the
// build must complete and serve the joiner.
func TestSingleflightSurvivesLeaderCancel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := New(noTimeoutConfig())
	tr, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(16, 30))
	if err != nil {
		t.Fatal(err)
	}
	sl, err := timeslice.New(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}

	buildEntered := make(chan struct{})
	releaseBuild := make(chan struct{})
	failpoint.EnableFunc(FailpointFlight, func(ctx context.Context) error {
		close(buildEntered)
		select {
		case <-releaseBuild:
		case <-ctx.Done():
		}
		return nil
	})
	defer failpoint.Disable(FailpointFlight)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := s.cache.Get(leaderCtx, tr, sl)
		leaderDone <- err
	}()
	<-buildEntered

	type result struct {
		kind BuildKind
		err  error
	}
	joinerDone := make(chan result, 1)
	go func() {
		_, kind, err := s.cache.Get(context.Background(), tr, sl)
		joinerDone <- result{kind, err}
	}()
	for i := 0; ; i++ {
		if s.cache.Snapshot().Coalesced == 1 {
			break
		}
		if i > 5000 {
			t.Fatal("joiner never coalesced onto the in-flight build")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	time.Sleep(20 * time.Millisecond) // let the leader's watcher drop its reference
	close(releaseBuild)

	jr := <-joinerDone
	if jr.err != nil || jr.kind != BuildCoalesced {
		t.Fatalf("joiner got (%v, %v), want a coalesced result", jr.kind, jr.err)
	}
	// The leader ran the build to completion on the joiner's behalf, so it
	// reports the build's own outcome (the response write upstream is what
	// the dead request discards).
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader's build errored despite a surviving waiter: %v", err)
	}
	if st := s.cache.Snapshot(); st.Entries != 1 {
		t.Fatalf("completed flight not cached: %+v", st)
	}
}

// TestTimedOutRequestAborts drives the real HTTP stack with a request
// timeout far shorter than the solve, proving expiry cancels engine work
// (the aborted counter moves) rather than merely reporting 503.
func TestTimedOutRequestAborts(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := quietConfig()
	cfg.RequestTimeout = time.Millisecond
	s := New(cfg)
	// A large |T| makes the scratch build + significant-p dichotomy take
	// well past the 1 ms budget.
	if _, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(24, 40)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/traces/art/significant?slices=64")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d (%s), want 503 from the timeout handler", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	// The handler goroutine keeps running briefly past the 503; wait for
	// it to observe the cancelled context and record the abort.
	deadline := time.Now().Add(10 * time.Second)
	for s.CacheStats().Aborted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("timed-out request never recorded an abort: %+v", s.CacheStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentCancelledRequests mixes cancelled and live requests under
// -race: live ones must all succeed, and the suite-level leak guard plus
// pool bound prove cancelled ones released what they held.
func TestConcurrentCancelledRequests(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := noTimeoutConfig()
	cfg.Core.SolverPoolBound = 2
	s := New(cfg)
	if _, err := s.Registry().LoadTrace("art", mpisim.ArtificialSized(16, 30)); err != nil {
		t.Fatal(err)
	}

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 { // every third request is already dead
				c, cancel := context.WithCancel(context.Background())
				cancel()
				ctx = c
			}
			rec := serveWithContext(t, s, ctx, "/traces/art/significant?slices=25&eps=0.01")
			switch {
			case i%3 == 0 && rec.Code != StatusClientClosedRequest && rec.Code != http.StatusOK:
				// A pre-cancelled request may still be served from cache
				// (hit path) but must otherwise abort with 499.
				errs[i] = errors.New(rec.Body.String())
			case i%3 != 0 && rec.Code != http.StatusOK:
				errs[i] = errors.New(rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}
