// Package exhaustive provides brute-force reference implementations used by
// the test suite to certify the optimality of the fast algorithms on small
// instances. Everything here is deliberately written from first principles
// (direct iteration over microscopic areas, explicit partition enumeration)
// and shares no code with the optimized paths in core, spatial or temporal.
//
// The enumeration cost is exponential (the paper notes |H(S)| = Θ(c^|S|)
// and |I(T)| = O(2^|T|)); callers keep |S| and |T| small.
package exhaustive

import (
	"math"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
)

// AreaGainLoss computes the (gain, loss) of one spatiotemporal area from
// the raw microscopic model, applying Eqs. 1–3 verbatim: no prefix sums, no
// shared accumulators.
func AreaGainLoss(m *microscopic.Model, ar partition.Area) (gain, loss float64) {
	X := m.NumStates()
	for x := 0; x < X; x++ {
		// Eq. 1: average over resources of the per-resource
		// time-weighted ratios.
		var agg float64
		for s := ar.Node.Lo; s < ar.Node.Hi; s++ {
			var num, den float64
			for t := ar.I; t <= ar.J; t++ {
				num += m.D(x, s, t)
				den += m.SliceDur[t]
			}
			if den > 0 {
				agg += num / den
			}
		}
		agg /= float64(ar.Node.Size())
		// Eqs. 2 and 3 over the microscopic areas.
		var sumRho, sumRL float64
		for s := ar.Node.Lo; s < ar.Node.Hi; s++ {
			for t := ar.I; t <= ar.J; t++ {
				rho := m.Rho(x, s, t)
				if rho > 0 {
					sumRho += rho
					sumRL += rho * math.Log2(rho)
				}
			}
		}
		if agg > 0 {
			loss += sumRL - sumRho*math.Log2(agg)
			gain += agg*math.Log2(agg) - sumRL
		} else {
			gain += -sumRL
		}
	}
	return gain, loss
}

// PartitionPIC scores a whole partition at ratio p from first principles.
func PartitionPIC(m *microscopic.Model, pt *partition.Partition, p float64) float64 {
	var pic float64
	for _, ar := range pt.Areas {
		g, l := AreaGainLoss(m, ar)
		pic += p*g - (1-p)*l
	}
	return pic
}

// EnumerateSpatiotemporal yields every hierarchy-and-order-consistent
// partition of (node, [i, j]) as slices of areas. Duplicate partitions
// (reachable through different cut sequences) are deduplicated. The limit
// caps the number of distinct partitions produced (<=0 means no cap);
// enumeration stops silently once reached, so optimality checks should use
// sizes well below the cap.
func EnumerateSpatiotemporal(node *hierarchy.Node, i, j, limit int) [][]partition.Area {
	seen := make(map[string]bool)
	var out [][]partition.Area
	emit := func(p []partition.Area) bool {
		cp := &partition.Partition{Areas: p}
		sig := cp.Signature()
		if !seen[sig] {
			seen[sig] = true
			out = append(out, append([]partition.Area(nil), p...))
		}
		return limit <= 0 || len(out) < limit
	}
	var enum func(n *hierarchy.Node, a, b int) [][]partition.Area
	enum = func(n *hierarchy.Node, a, b int) [][]partition.Area {
		var res [][]partition.Area
		res = append(res, []partition.Area{{Node: n, I: a, J: b}})
		if !n.IsLeaf() {
			// Spatial cut: cross product of children partitions.
			parts := make([][][]partition.Area, len(n.Children))
			for ci, c := range n.Children {
				parts[ci] = enum(c, a, b)
			}
			for _, combo := range crossProduct(parts) {
				res = append(res, combo)
			}
		}
		for cut := a; cut < b; cut++ {
			left := enum(n, a, cut)
			right := enum(n, cut+1, b)
			for _, l := range left {
				for _, r := range right {
					res = append(res, append(append([]partition.Area(nil), l...), r...))
				}
			}
		}
		return res
	}
	for _, p := range enum(node, i, j) {
		if !emit(p) {
			break
		}
	}
	return out
}

// crossProduct combines one partition choice per child into flat area lists.
func crossProduct(parts [][][]partition.Area) [][]partition.Area {
	out := [][]partition.Area{nil}
	for _, choices := range parts {
		var next [][]partition.Area
		for _, acc := range out {
			for _, ch := range choices {
				next = append(next, append(append([]partition.Area(nil), acc...), ch...))
			}
		}
		out = next
	}
	return out
}

// BestSpatiotemporal exhaustively searches the optimal partition of the
// whole model at ratio p and returns its pIC and one partition achieving
// it. Use only on tiny models.
func BestSpatiotemporal(m *microscopic.Model, p float64) (float64, *partition.Partition) {
	best := math.Inf(-1)
	var bestPt *partition.Partition
	for _, areas := range EnumerateSpatiotemporal(m.H.Root, 0, m.NumSlices()-1, 0) {
		pt := &partition.Partition{Areas: areas, P: p}
		v := PartitionPIC(m, pt, p)
		if v > best {
			best, bestPt = v, pt
		}
	}
	return best, bestPt
}

// CountSpatiotemporal returns the number of distinct hierarchy-and-order-
// consistent partitions of the model's A(S×T) (for structure tests).
func CountSpatiotemporal(h *hierarchy.Hierarchy, slices int) int {
	return len(EnumerateSpatiotemporal(h.Root, 0, slices-1, 0))
}

// IntervalCompositions yields every order-consistent partition of [0, n-1]
// as lists of [i, j] interval bounds — all 2^(n-1) compositions.
func IntervalCompositions(n int) [][][2]int {
	var out [][][2]int
	var rec func(start int, acc [][2]int)
	rec = func(start int, acc [][2]int) {
		if start == n {
			out = append(out, append([][2]int(nil), acc...))
			return
		}
		for end := start; end < n; end++ {
			rec(end+1, append(acc, [2]int{start, end}))
		}
	}
	rec(0, nil)
	return out
}

// BestTemporal exhaustively finds the optimal order-consistent partition
// value for a caller-supplied interval scorer (e.g. the temporal baseline's
// IntervalGainLoss composed with pIC).
func BestTemporal(n int, score func(i, j int) float64) (float64, [][2]int) {
	best := math.Inf(-1)
	var bestIv [][2]int
	for _, comp := range IntervalCompositions(n) {
		var v float64
		for _, iv := range comp {
			v += score(iv[0], iv[1])
		}
		if v > best {
			best, bestIv = v, comp
		}
	}
	return best, bestIv
}

// HierarchyPartitions yields every hierarchy-consistent partition of the
// subtree rooted at n, as lists of nodes.
func HierarchyPartitions(n *hierarchy.Node) [][]*hierarchy.Node {
	res := [][]*hierarchy.Node{{n}}
	if n.IsLeaf() {
		return res
	}
	parts := make([][][]*hierarchy.Node, len(n.Children))
	for ci, c := range n.Children {
		parts[ci] = HierarchyPartitions(c)
	}
	combos := [][]*hierarchy.Node{nil}
	for _, choices := range parts {
		var next [][]*hierarchy.Node
		for _, acc := range combos {
			for _, ch := range choices {
				next = append(next, append(append([]*hierarchy.Node(nil), acc...), ch...))
			}
		}
		combos = next
	}
	return append(res, combos...)
}

// BestSpatial exhaustively finds the optimal hierarchy-consistent partition
// value for a caller-supplied node scorer.
func BestSpatial(root *hierarchy.Node, score func(*hierarchy.Node) float64) (float64, []*hierarchy.Node) {
	best := math.Inf(-1)
	var bestNodes []*hierarchy.Node
	for _, nodes := range HierarchyPartitions(root) {
		var v float64
		for _, n := range nodes {
			v += score(n)
		}
		if v > best {
			best, bestNodes = v, nodes
		}
	}
	return best, bestNodes
}
