package exhaustive

import (
	"math"
	"testing"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
	"ocelotl/internal/timeslice"
)

func flatModel(t *testing.T, values [][]float64) *microscopic.Model {
	t.Helper()
	paths := make([]string, len(values))
	for i := range paths {
		paths[i] = "g/r" + string(rune('0'+i))
	}
	h, err := hierarchy.FromPaths(paths)
	if err != nil {
		t.Fatal(err)
	}
	T := len(values[0])
	sl, _ := timeslice.New(0, float64(T), T)
	m := microscopic.NewEmpty(h, sl, []string{"x"})
	for s, row := range values {
		for ti, v := range row {
			m.AddD(0, s, ti, v)
		}
	}
	return m
}

func TestIntervalCompositionsCount(t *testing.T) {
	for n := 1; n <= 8; n++ {
		got := len(IntervalCompositions(n))
		want := 1 << (n - 1)
		if got != want {
			t.Errorf("compositions(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIntervalCompositionsAreValid(t *testing.T) {
	for _, comp := range IntervalCompositions(5) {
		at := 0
		for _, iv := range comp {
			if iv[0] != at || iv[1] < iv[0] {
				t.Fatalf("bad composition %v", comp)
			}
			at = iv[1] + 1
		}
		if at != 5 {
			t.Fatalf("composition %v does not cover [0,5)", comp)
		}
	}
}

func TestHierarchyPartitionsCount(t *testing.T) {
	// A binary tree with 2 clusters of 2 leaves: partitions are
	// root | {A,B} with A ∈ {A, {a0,a1}}, B likewise → 1 + 2·2 = 5.
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1"})
	got := len(HierarchyPartitions(h.Root))
	if got != 5 {
		t.Errorf("hierarchy partitions = %d, want 5", got)
	}
}

func TestHierarchyPartitionsAreValid(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1", "B/b2"})
	for _, nodes := range HierarchyPartitions(h.Root) {
		covered := make([]int, h.NumLeaves())
		for _, n := range nodes {
			for s := n.Lo; s < n.Hi; s++ {
				covered[s]++
			}
		}
		for s, c := range covered {
			if c != 1 {
				t.Fatalf("leaf %d covered %d times by %v", s, c, nodes)
			}
		}
	}
}

func TestEnumerateSpatiotemporalAllValid(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0"})
	T := 3
	parts := EnumerateSpatiotemporal(h.Root, 0, T-1, 0)
	if len(parts) == 0 {
		t.Fatal("no partitions enumerated")
	}
	for _, areas := range parts {
		pt := &partition.Partition{Areas: areas}
		if err := pt.Validate(h, T); err != nil {
			t.Fatalf("enumerated partition invalid: %v (%v)", err, areas)
		}
	}
	// Distinctness is guaranteed by construction; verify anyway.
	seen := map[string]bool{}
	for _, areas := range parts {
		sig := (&partition.Partition{Areas: areas}).Signature()
		if seen[sig] {
			t.Fatalf("duplicate partition %s", sig)
		}
		seen[sig] = true
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0"})
	parts := EnumerateSpatiotemporal(h.Root, 0, 2, 7)
	if len(parts) != 7 {
		t.Errorf("limit ignored: got %d", len(parts))
	}
}

func TestEnumerateSingleLeafMatchesCompositions(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"only"})
	T := 5
	parts := EnumerateSpatiotemporal(h.Root, 0, T-1, 0)
	// Root has exactly one child (the leaf); every temporal composition
	// exists at both levels, and mixed root/leaf splits multiply the
	// count. The count must be at least 2^(T-1) and every partition
	// valid.
	if len(parts) < 1<<(T-1) {
		t.Errorf("got %d partitions, want at least %d", len(parts), 1<<(T-1))
	}
	for _, areas := range parts {
		pt := &partition.Partition{Areas: areas}
		if err := pt.Validate(h, T); err != nil {
			t.Fatalf("invalid: %v", err)
		}
	}
}

func TestAreaGainLossHomogeneous(t *testing.T) {
	m := flatModel(t, [][]float64{{0.4, 0.4}, {0.4, 0.4}})
	g, l := AreaGainLoss(m, partition.Area{Node: m.H.Root, I: 0, J: 1})
	if math.Abs(l) > 1e-12 {
		t.Errorf("homogeneous loss = %g", l)
	}
	want := -3 * 0.4 * math.Log2(0.4) // plogp(0.4) - 4·plogp(0.4)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("gain = %g, want %g", g, want)
	}
}

func TestBestSpatiotemporalOnPhasePattern(t *testing.T) {
	// One clean phase change; the best partition at moderate p should
	// carry zero loss by cutting at the change.
	m := flatModel(t, [][]float64{
		{0.2, 0.2, 0.8, 0.8},
		{0.2, 0.2, 0.8, 0.8},
	})
	best, pt := BestSpatiotemporal(m, 0.5)
	if pt == nil {
		t.Fatal("no partition returned")
	}
	if pt.Loss != 0 {
		// Loss is not stored by BestSpatiotemporal; recompute.
		var loss float64
		for _, a := range pt.Areas {
			_, l := AreaGainLoss(m, a)
			loss += l
		}
		if loss > 1e-9 {
			t.Errorf("best partition has loss %g, expected a lossless cut at the phase change", loss)
		}
	}
	if best < 0 {
		t.Errorf("best pIC = %g < 0; aggregating two homogeneous phases should pay", best)
	}
	if err := pt.Validate(m.H, m.NumSlices()); err != nil {
		t.Errorf("best partition invalid: %v", err)
	}
}

func TestPartitionPICAdditivity(t *testing.T) {
	m := flatModel(t, [][]float64{{0.1, 0.9, 0.5}, {0.3, 0.7, 0.5}})
	root := partition.Area{Node: m.H.Root, I: 0, J: 2}
	g, l := AreaGainLoss(m, root)
	pt := &partition.Partition{Areas: []partition.Area{root}}
	for _, p := range []float64{0, 0.5, 1} {
		want := p*g - (1-p)*l
		if got := PartitionPIC(m, pt, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: PartitionPIC = %g, want %g", p, got, want)
		}
	}
}

func TestCountSpatiotemporalGrowth(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1"})
	c2 := CountSpatiotemporal(h, 2)
	c3 := CountSpatiotemporal(h, 3)
	if c3 <= c2 {
		t.Errorf("partition count should grow with |T|: %d then %d", c2, c3)
	}
}

func TestBestTemporalDegenerate(t *testing.T) {
	best, ivs := BestTemporal(1, func(i, j int) float64 { return -1 })
	if best != -1 || len(ivs) != 1 {
		t.Errorf("BestTemporal(1) = (%g, %v)", best, ivs)
	}
}
