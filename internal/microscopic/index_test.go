package microscopic

import (
	"math/rand"
	"sync"
	"testing"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/trace"
)

// diskReslicer force-builds a disk-backed index for tr with small chunks
// (so windows span several) and, when spill is true, a tiny sort buffer
// (so the external merge path runs).
func diskReslicer(t *testing.T, tr *trace.Trace, spill bool) *Reslicer {
	t.Helper()
	opt := IndexOptions{
		Mode:  IndexDisk,
		Dir:   t.TempDir(),
		Store: eventstore.Options{TargetChunkEvents: 32},
	}
	if spill {
		opt.Store.SortBufferEvents = 61
	}
	r, err := NewReslicerIndexed(&traceSource{tr: tr}, opt)
	if err != nil {
		t.Fatalf("NewReslicerIndexed(disk): %v", err)
	}
	t.Cleanup(func() { r.Close() })
	if r.IndexKind() != "disk" {
		t.Fatalf("IndexKind = %q, want disk", r.IndexKind())
	}
	return r
}

// TestDiskIndexBitIdenticalToRAM is the backend contract property test:
// the same random Build/Shift/Zoom/Window sequence applied through the
// RAM index and the disk index produces bit-identical models at every
// step. Run with -race this also hammers the store's concurrent-read
// structures through the pans.
func TestDiskIndexBitIdenticalToRAM(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(40 + seed))
		tr := randomTrace(rng, 6, 900, 25)
		ram, err := NewReslicer(tr)
		if err != nil {
			t.Fatal(err)
		}
		disk := diskReslicer(t, tr, seed%2 == 0)
		if ram.NumEvents() != disk.NumEvents() {
			t.Fatalf("seed %d: event counts %d (ram) vs %d (disk)", seed, ram.NumEvents(), disk.NumEvents())
		}

		mRAM, err := ram.Build(Options{Slices: 14})
		if err != nil {
			t.Fatal(err)
		}
		mDisk, err := disk.Build(Options{Slices: 14})
		if err != nil {
			t.Fatalf("seed %d: disk Build: %v", seed, err)
		}
		modelsBitIdentical(t, mDisk, mRAM, "initial build")

		for step := 0; step < 30; step++ {
			var ovRAM, ovDisk SliceOverlap
			switch rng.Intn(4) {
			case 0: // pan
				k := rng.Intn(9) - 4
				mRAM, ovRAM = mustShift(t, ram, mRAM, k)
				mDisk, ovDisk, err = disk.Shift(mDisk, k)
			case 1: // zoom in
				lo := rng.Intn(10)
				hi := lo + 1 + rng.Intn(13-lo)
				mRAM, ovRAM, err = ram.Zoom(mRAM, lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				mDisk, ovDisk, err = disk.Zoom(mDisk, lo, hi)
			case 2: // zoom out
				mRAM, ovRAM, err = ram.Zoom(mRAM, -7, 20)
				if err != nil {
					t.Fatal(err)
				}
				mDisk, ovDisk, err = disk.Zoom(mDisk, -7, 20)
			default: // arbitrary absolute window
				lo := rng.Float64() * 20
				hi := lo + 1 + rng.Float64()*10
				mRAM, ovRAM, err = ram.Window(mRAM, lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				mDisk, ovDisk, err = disk.Window(mDisk, lo, hi)
			}
			if err != nil {
				t.Fatalf("seed %d step %d: disk op: %v", seed, step, err)
			}
			if ovRAM != ovDisk {
				t.Fatalf("seed %d step %d: overlaps diverge: %+v vs %+v", seed, step, ovRAM, ovDisk)
			}
			modelsBitIdentical(t, mDisk, mRAM, "after step")
		}
	}
}

// TestAutoModeSelectsBackendBySize: IndexAuto stays in RAM below the
// threshold and spills to disk above it, and the two give identical
// models either way.
func TestAutoModeSelectsBackendBySize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTrace(rng, 5, 500, 15)
	small, err := NewReslicerIndexed(&traceSource{tr: tr},
		IndexOptions{Mode: IndexAuto, Threshold: 1000, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if small.IndexKind() != "ram" {
		t.Fatalf("below threshold: kind %q, want ram", small.IndexKind())
	}
	big, err := NewReslicerIndexed(&traceSource{tr: tr},
		IndexOptions{Mode: IndexAuto, Threshold: 100, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if big.IndexKind() != "disk" {
		t.Fatalf("above threshold: kind %q, want disk", big.IndexKind())
	}
	ms, err := small.Build(Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := big.Build(Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	modelsBitIdentical(t, mb, ms, "auto ram vs auto disk")
}

// TestDiskIndexWindowLocality pins the O(window) read contract: after a
// full build, a 1-slice pan reads only the chunks overlapping the new
// slice, not the whole store — asserted via the store's read counters.
func TestDiskIndexWindowLocality(t *testing.T) {
	// Regular events so chunk time-ranges tile the window evenly.
	tr := trace.New([]string{"c/r0", "c/r1"}, []string{"work"})
	tr.Start, tr.End = 0, 100
	for i := 0; i < 8000; i++ {
		at := float64(i%4000) / 40
		tr.Add(trace.ResourceID(i%2), 0, at, at+0.02)
	}
	r := diskReslicer(t, tr, false)
	m, err := r.Build(Options{Slices: 50})
	if err != nil {
		t.Fatal(err)
	}
	full := r.IndexReadStats()
	if full.ChunksRead == 0 {
		t.Fatal("full build read no chunks")
	}
	if _, _, err := r.Shift(m, 1); err != nil {
		t.Fatal(err)
	}
	pan := r.IndexReadStats()
	delta := pan.ChunksRead - full.ChunksRead
	// 2 series × 125 chunks each; one 2-wide slice window overlaps ≤ 3
	// chunks per series. Cache hits don't count as reads.
	if delta > 6 {
		t.Fatalf("1-slice pan read %d chunks from disk (%d total in store)", delta, full.ChunksRead)
	}
	if r.OpenChunkBytes() <= 0 {
		t.Fatal("no decoded chunks resident after reads")
	}
	if r.IndexMemoryBytes() <= 0 {
		t.Fatal("disk index reports no directory bytes")
	}
}

// TestDiskIndexConcurrentFills drives parallel BuildAt through one
// disk-backed reslicer — under -race this checks the chunk cache and
// counters; the results must all be bit-identical to the RAM index.
func TestDiskIndexConcurrentFills(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomTrace(rng, 4, 600, 20)
	ram, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	disk := diskReslicer(t, tr, false)
	base, err := ram.Build(Options{Slices: 12})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sl := base.Slicer.Shift(w - 4)
			want := mustBuildAt(t, ram, sl)
			for i := 0; i < 5; i++ {
				got, err := disk.BuildAt(sl)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for x := 0; x < want.NumStates(); x++ {
					g, ww := got.StateRow(x), want.StateRow(x)
					for c := range ww {
						if g[c] != ww[c] {
							t.Errorf("worker %d: cell diverged", w)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDiskIndexCloseFailsFills: fills after Close fail with an error —
// never a silent empty model.
func TestDiskIndexCloseFailsFills(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 3, 300, 10)
	r := diskReslicer(t, tr, false)
	m, err := r.Build(Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Same window as the live build: Close dropped the decoded cache, so
	// this must hit the closed file and fail.
	if _, err := r.BuildAt(m.Slicer); err == nil {
		t.Fatal("BuildAt on a closed disk index succeeded")
	}
}

func TestParseIndexMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want IndexMode
		ok   bool
	}{
		{"", IndexAuto, true},
		{"auto", IndexAuto, true},
		{"ram", IndexRAM, true},
		{"RAM", IndexRAM, true},
		{"disk", IndexDisk, true},
		{"mmap", IndexAuto, false},
	} {
		got, err := ParseIndexMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseIndexMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if IndexDisk.String() != "disk" || IndexRAM.String() != "ram" || IndexAuto.String() != "auto" {
		t.Error("IndexMode.String vocabulary drifted from the flag vocabulary")
	}
}

// TestRAMIndexAccountsMemory: the RAM backend reports its ~28 B/event
// arrays and zero open-chunk bytes.
func TestRAMIndexAccountsMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTrace(rng, 3, 250, 10)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.IndexMemoryBytes(), int64(tr.NumEvents())*28; got != want {
		t.Fatalf("IndexMemoryBytes = %d, want %d", got, want)
	}
	if r.OpenChunkBytes() != 0 {
		t.Fatal("RAM index reports open-chunk bytes")
	}
	if r.IndexKind() != "ram" {
		t.Fatalf("IndexKind = %q", r.IndexKind())
	}
	if st := r.IndexReadStats(); st != (eventstore.ReadStats{}) {
		t.Fatalf("RAM index reports read stats %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
