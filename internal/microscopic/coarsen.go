package microscopic

import "fmt"

// MergePairs derives the model one pyramid level up: the same window
// re-sliced at factor× the slice width (factor a power of two), with each
// coarse cell d_x(s,t') the sum of its factor fine cells in ascending
// slice order. This is the canonical coarse fill of the multi-resolution
// pyramid: core.Input.Coarsen reproduces exactly these floats from its
// slice rows, which is what makes "coarsen a fine Input" and "NewInput on
// the merged model" bit-identical (see core's pyramid property tests).
//
// The merged d values are the exact event times of the window re-binned,
// so the coarse model is a faithful microscopic model of the same trace
// region; its floats may differ in the last ulp from an independent
// event-index fill at the coarse grid (events spanning a fine boundary
// split-then-sum there), which is why the serving layer labels
// merge-derived overview responses as previews rather than caching them
// under window keys.
//
// The model keeps the reslicer back-pointer, so the coarse model supports
// the same Pan/Zoom derivations as any index-built one.
func (m *Model) MergePairs(factor int) (*Model, error) {
	sl, err := m.Slicer.CoarsenGrid(factor)
	if err != nil {
		return nil, fmt.Errorf("microscopic: merge pairs: %w", err)
	}
	nm := NewEmpty(m.H, sl, m.States)
	nm.resl = m.resl
	T, cT := m.Slicer.N, sl.N
	for x := range m.dx {
		src, dst := m.dx[x], nm.dx[x]
		for s := 0; s < m.NumResources(); s++ {
			for t := 0; t < cT; t++ {
				sum := 0.0
				for i := 0; i < factor; i++ {
					sum += src[s*T+t*factor+i]
				}
				dst[s*cT+t] = sum
			}
		}
	}
	return nm, nil
}
