package microscopic

import (
	"fmt"
	"math"
	"sort"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/failpoint"
	"ocelotl/internal/trace"
)

// FailpointExtend names the fault-injection site at the head of every
// Extend — the append half of the live-ingestion path (chaos tests arm it
// together with traceio/tail).
const FailpointExtend = "microscopic/extend"

// Extend returns a Reslicer that additionally indexes events appended to
// the trace, with the observation window grown to newEnd. The receiver is
// untouched — extension is copy-on-write, so snapshots held by in-flight
// queries keep filling from exactly the events they were built over — and
// the two share everything the new events don't touch (the hierarchy, the
// untouched leaves' arrays, the on-disk store).
//
// The fill-order invariant is preserved exactly as if the appended events
// had been part of the original stream: a chain of Extends is
// bit-identical to one NewReslicer over the concatenated events (the
// per-leaf order is a stable merge by start, and stable-sorting a
// concatenation equals stably merging the stably-sorted parts). Events
// may land anywhere in time — ingestion order, not time order, is what
// the invariant keys on — though callers that cache windows will want
// time-ordered appends (see the server's horizon rule).
//
// For disk-backed reslicers the appended events live in a RAM overlay on
// top of the sealed store; fills stream-merge the two sides. A follow
// tick's batch is small, so the overlay stays a fraction of the store it
// shadows.
//
// Closing either the receiver or the extension closes the shared backing
// store (disk backend); close at most one of them, when no snapshot is in
// use — the server keeps only the newest snapshot closeable for exactly
// this reason.
func (r *Reslicer) Extend(events []trace.Event, newEnd float64) (*Reslicer, error) {
	if err := failpoint.Inject(FailpointExtend); err != nil {
		return nil, fmt.Errorf("microscopic: extend: %w", err)
	}
	if math.IsNaN(newEnd) || newEnd < r.winEnd {
		return nil, fmt.Errorf("microscopic: extend: new end %g shrinks the window (current end %g)", newEnd, r.winEnd)
	}
	if r.r2leaf == nil {
		return nil, fmt.Errorf("microscopic: extend: reslicer was built without a resource map")
	}
	nr := &Reslicer{
		h:        r.h,
		states:   r.states,
		winStart: r.winStart,
		winEnd:   newEnd,
		r2leaf:   r.r2leaf,
		idx:      r.idx,
	}
	if len(events) == 0 {
		return nr, nil
	}
	tmp := make([][]indexedEvent, r.h.NumLeaves())
	for _, e := range events {
		if err := indexEvent(tmp, r.r2leaf, len(r.states), e); err != nil {
			return nil, err
		}
	}
	idx, err := r.idx.extend(tmp)
	if err != nil {
		return nil, err
	}
	nr.idx = idx
	return nr, nil
}

// extend merges the new events into fresh per-leaf arrays, sharing the
// untouched leaves' slices with the receiver. Existing events win start
// ties (they are earlier in the stream), which is what makes the merge a
// stable one.
func (ix *ramIndex) extend(tmp [][]indexedEvent) (eventIndex, error) {
	nx := &ramIndex{
		evStart:  make([][]float64, len(ix.evStart)),
		evEnd:    make([][]float64, len(ix.evEnd)),
		evState:  make([][]int32, len(ix.evState)),
		evMaxEnd: make([][]float64, len(ix.evMaxEnd)),
	}
	for s := range ix.evStart {
		evs := tmp[s]
		if len(evs) == 0 {
			nx.evStart[s], nx.evEnd[s], nx.evState[s], nx.evMaxEnd[s] =
				ix.evStart[s], ix.evEnd[s], ix.evState[s], ix.evMaxEnd[s]
			continue
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].start < evs[j].start })
		oldS, oldE, oldSt := ix.evStart[s], ix.evEnd[s], ix.evState[s]
		n := len(oldS) + len(evs)
		starts := make([]float64, n)
		ends := make([]float64, n)
		states := make([]int32, n)
		maxEnd := make([]float64, n)
		i, j := 0, 0
		for k := 0; k < n; k++ {
			if i < len(oldS) && (j >= len(evs) || oldS[i] <= evs[j].start) {
				starts[k], ends[k], states[k] = oldS[i], oldE[i], oldSt[i]
				i++
			} else {
				starts[k], ends[k], states[k] = evs[j].start, evs[j].end, evs[j].state
				j++
			}
		}
		running := 0.0
		for k := 0; k < n; k++ {
			if k == 0 || ends[k] > running {
				running = ends[k]
			}
			maxEnd[k] = running
		}
		nx.evStart[s], nx.evEnd[s], nx.evState[s], nx.evMaxEnd[s] = starts, ends, states, maxEnd
	}
	return nx, nil
}

// extend stacks a RAM overlay on the sealed store.
func (ix *diskIndex) extend(tmp [][]indexedEvent) (eventIndex, error) {
	return &overlayIndex{base: ix, tail: freezeRAM(tmp)}, nil
}

// extend merges into the overlay's RAM tail; the store stays shared.
func (ix *overlayIndex) extend(tmp [][]indexedEvent) (eventIndex, error) {
	tail, err := ix.tail.extend(tmp)
	if err != nil {
		return nil, err
	}
	return &overlayIndex{base: ix.base, tail: tail.(*ramIndex)}, nil
}

// overlayIndex layers live appended events (a ramIndex tail) over a
// sealed base index — how a disk-backed reslicer grows without rewriting
// its store. fill stream-merges the two sides back into the global
// (start, stream order) order the bit-identity invariant demands: the
// base is the stream prefix, so its events win start ties.
type overlayIndex struct {
	base eventIndex
	tail *ramIndex
}

func (ix *overlayIndex) fill(leaf int, winLo, winHi float64, visit func(state int32, start, end float64)) error {
	starts, ends, states, maxEnd := ix.tail.evStart[leaf], ix.tail.evEnd[leaf], ix.tail.evState[leaf], ix.tail.evMaxEnd[leaf]
	j1 := sort.SearchFloat64s(starts, winHi)
	j := sort.Search(j1, func(i int) bool { return maxEnd[i] > winLo })
	// emitTailBefore flushes tail events with start strictly below limit
	// (strict: the base wins ties, it is earlier in the stream).
	emitTailBefore := func(limit float64) {
		for j < j1 && starts[j] < limit {
			if ends[j] > winLo {
				visit(states[j], starts[j], ends[j])
			}
			j++
		}
	}
	if err := ix.base.fill(leaf, winLo, winHi, func(state int32, start, end float64) {
		emitTailBefore(start)
		visit(state, start, end)
	}); err != nil {
		return err
	}
	emitTailBefore(math.Inf(1))
	return nil
}

func (ix *overlayIndex) numEvents() int64 { return ix.base.numEvents() + ix.tail.numEvents() }
func (ix *overlayIndex) memoryBytes() int64 {
	return ix.base.memoryBytes() + ix.tail.memoryBytes()
}
func (ix *overlayIndex) openChunkBytes() int64           { return ix.base.openChunkBytes() }
func (ix *overlayIndex) kind() string                    { return ix.base.kind() }
func (ix *overlayIndex) readStats() eventstore.ReadStats { return ix.base.readStats() }
func (ix *overlayIndex) storePath() string               { return ix.base.storePath() }
func (ix *overlayIndex) verify() (int, error)            { return ix.base.verify() }
func (ix *overlayIndex) close() error                    { return ix.base.close() }
