package microscopic

import (
	"math/rand"
	"sync"
	"testing"

	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

// chainExtend builds a reslicer over the first cut of tr's events and
// Extends it with the remaining cuts one batch at a time, returning every
// intermediate snapshot (snapshots[i] indexes tr.Events[:cuts[i]]).
func chainExtend(t *testing.T, tr *trace.Trace, cuts []int, opt IndexOptions) []*Reslicer {
	t.Helper()
	prefix := &trace.Trace{Resources: tr.Resources, States: tr.States,
		Events: tr.Events[:cuts[0]], Start: tr.Start, End: tr.End}
	r, err := NewReslicerIndexed(TraceSource(prefix), opt)
	if err != nil {
		t.Fatalf("NewReslicerIndexed(prefix): %v", err)
	}
	snaps := []*Reslicer{r}
	for i := 1; i < len(cuts); i++ {
		r, err = r.Extend(tr.Events[cuts[i-1]:cuts[i]], tr.End)
		if err != nil {
			t.Fatalf("Extend(batch %d): %v", i, err)
		}
		snaps = append(snaps, r)
	}
	return snaps
}

// randomCuts splits [0, n] into 1–8 increasing cut points ending at n
// (batch sizes vary from empty to large).
func randomCuts(rng *rand.Rand, n int) []int {
	k := 1 + rng.Intn(8)
	cuts := make([]int, k)
	for i := 0; i < k-1; i++ {
		cuts[i] = rng.Intn(n + 1)
	}
	cuts[k-1] = n
	for i := 1; i < k; i++ { // make non-decreasing in place
		if cuts[i] < cuts[i-1] {
			cuts[i] = cuts[i-1]
		}
	}
	return cuts
}

// TestExtendChainBitIdentical is the live-ingestion correctness property:
// any chain of Extends is bit-identical to a one-shot build over the
// concatenated events — models built at arbitrary windows agree cell for
// cell — on both the RAM and the disk index backends.
func TestExtendChainBitIdentical(t *testing.T) {
	backends := []struct {
		name string
		opt  func() IndexOptions
	}{
		{"ram", func() IndexOptions { return IndexOptions{Mode: IndexRAM} }},
		{"disk", func() IndexOptions { return IndexOptions{Mode: IndexDisk, Dir: t.TempDir()} }},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 6; trial++ {
				tr := randomTrace(rng, 5, 400, 10)
				cuts := randomCuts(rng, len(tr.Events))

				oneShot, err := NewReslicerIndexed(TraceSource(tr), b.opt())
				if err != nil {
					t.Fatal(err)
				}
				snaps := chainExtend(t, tr, cuts, b.opt())
				chained := snaps[len(snaps)-1]

				if got, want := chained.NumEvents(), oneShot.NumEvents(); got != want {
					t.Fatalf("trial %d: chained NumEvents = %d, one-shot = %d", trial, got, want)
				}
				windows := []timeslice.Slicer{
					mustSlicer(t, 0, 10, 16),
					mustSlicer(t, 2.5, 7.5, 9),
					mustSlicer(t, 0, 10, 16).Shift(3),
				}
				for _, sl := range windows {
					got := mustBuildAt(t, chained, sl)
					want := mustBuildAt(t, oneShot, sl)
					modelsBitIdentical(t, got, want, "chained vs one-shot")
				}
				// Closing only the newest snapshot releases the shared
				// backing store exactly once.
				if err := chained.Close(); err != nil {
					t.Fatalf("Close(chained): %v", err)
				}
				oneShot.Close()
			}
		})
	}
}

// TestExtendSnapshotIsolation: Extend is copy-on-write — a snapshot keeps
// filling from exactly the events it was built over, even after later
// snapshots grow past it.
func TestExtendSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, 4, 300, 10)
	cuts := []int{100, 200, 300}
	snaps := chainExtend(t, tr, cuts, IndexOptions{Mode: IndexRAM})

	sl := mustSlicer(t, 0, 10, 12)
	before := mustBuildAt(t, snaps[0], sl)
	// Extend again off the middle snapshot; the first must not notice.
	if _, err := snaps[1].Extend(tr.Events[:50], tr.End); err != nil {
		t.Fatalf("Extend off middle snapshot: %v", err)
	}
	after := mustBuildAt(t, snaps[0], sl)
	modelsBitIdentical(t, after, before, "snapshot after later Extends")

	for i, cut := range cuts {
		if got := snaps[i].NumEvents(); got != cut {
			t.Errorf("snapshot %d: NumEvents = %d, want %d", i, got, cut)
		}
	}
}

// TestExtendConcurrentReads drives BuildAt on earlier snapshots while the
// chain keeps extending — the copy-on-write contract under the race
// detector, on both backends.
func TestExtendConcurrentReads(t *testing.T) {
	for _, b := range []struct {
		name string
		opt  IndexOptions
	}{
		{"ram", IndexOptions{Mode: IndexRAM}},
		{"disk", IndexOptions{Mode: IndexDisk, Dir: t.TempDir()}},
	} {
		t.Run(b.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			tr := randomTrace(rng, 5, 2000, 10)
			prefix := &trace.Trace{Resources: tr.Resources, States: tr.States,
				Events: tr.Events[:200], Start: tr.Start, End: tr.End}
			r, err := NewReslicerIndexed(TraceSource(prefix), b.opt)
			if err != nil {
				t.Fatal(err)
			}
			sl := mustSlicer(t, 0, 10, 8)

			var wg sync.WaitGroup
			cur := r
			for next := 300; next <= len(tr.Events); next += 100 {
				snap := cur
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						if _, err := snap.BuildAt(sl); err != nil {
							t.Errorf("concurrent BuildAt: %v", err)
							return
						}
					}
				}()
				cur, err = cur.Extend(tr.Events[next-100:next], tr.End)
				if err != nil {
					t.Fatalf("Extend: %v", err)
				}
			}
			wg.Wait()
			got := mustBuildAt(t, cur, sl)
			oneShot, err := NewReslicerIndexed(TraceSource(tr), b.opt)
			if err != nil {
				t.Fatal(err)
			}
			want := mustBuildAt(t, oneShot, sl)
			modelsBitIdentical(t, got, want, "after concurrent extends")
			cur.Close() // newest snapshot owns the shared store
			oneShot.Close()
		})
	}
}

// TestExtendErrors: window shrinks, NaN ends, and out-of-table events are
// refused without corrupting the receiver.
func TestExtendErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng, 3, 50, 10)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Extend(nil, 5); err == nil {
		t.Error("Extend to a smaller window: want error")
	}
	if _, err := r.Extend(nil, nan()); err == nil {
		t.Error("Extend to NaN: want error")
	}
	bad := []trace.Event{{Resource: 99, State: 0, Start: 1, End: 2}}
	if _, err := r.Extend(bad, 12); err == nil {
		t.Error("Extend with unknown resource: want error")
	}
	bad[0] = trace.Event{Resource: 0, State: 99, Start: 1, End: 2}
	if _, err := r.Extend(bad, 12); err == nil {
		t.Error("Extend with unknown state: want error")
	}
	// The receiver still works after refused extends.
	mustBuildAt(t, r, mustSlicer(t, 0, 10, 8))
}

// TestExtendEmptyBatch grows the window without events: same index, new
// bounds, usable immediately.
func TestExtendEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 3, 80, 10)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := r.Extend(nil, 14)
	if err != nil {
		t.Fatal(err)
	}
	if nr.NumEvents() != r.NumEvents() {
		t.Errorf("NumEvents changed: %d vs %d", nr.NumEvents(), r.NumEvents())
	}
	if _, end := nr.TraceWindow(); end != 14 {
		t.Errorf("window end = %v, want 14", end)
	}
	modelsBitIdentical(t,
		mustBuildAt(t, nr, mustSlicer(t, 0, 10, 8)),
		mustBuildAt(t, r, mustSlicer(t, 0, 10, 8)),
		"empty extend")
}

func mustSlicer(t *testing.T, lo, hi float64, n int) timeslice.Slicer {
	t.Helper()
	sl, err := timeslice.New(lo, hi, n)
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

func nan() float64 {
	var z float64
	return z / z
}
