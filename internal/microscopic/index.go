package microscopic

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/trace"
)

// eventIndex is the Reslicer's storage backend: per-leaf event sets
// queryable by time window. Two implementations exist — the in-RAM
// struct-of-arrays (ramIndex, the small-trace fast path) and the
// chunked on-disk store (diskIndex, the out-of-core path). The contract
// both uphold is the bit-identity invariant: fill visits exactly the
// events with start < winHi and end > winLo, in ascending
// (start, original stream order), so a model cell accumulates the same
// floats in the same order whichever backend serves it.
type eventIndex interface {
	// fill visits leaf's events overlapping [winLo, winHi).
	fill(leaf int, winLo, winHi float64, visit func(state int32, start, end float64)) error
	numEvents() int64
	// memoryBytes is the backend's fixed resident cost: the full arrays
	// for RAM, the chunk directory for disk.
	memoryBytes() int64
	// openChunkBytes is the disk backend's decoded-chunk cache residency
	// (0 for RAM) — reported separately so serving-layer byte budgets
	// can account it without double-counting Input bytes.
	openChunkBytes() int64
	kind() string
	readStats() eventstore.ReadStats
	// storePath names the sealed on-disk store backing the index ("" for
	// RAM) — what the serving layer journals so a restart can reopen the
	// store in place instead of rebuilding it.
	storePath() string
	// verify re-reads every stored chunk and validates its CRC (the
	// scrub pass); RAM backends have nothing on disk and verify 0 chunks.
	verify() (int, error)
	close() error
	// extend returns an index that additionally holds the events in tmp
	// (per-leaf buckets in stream order), preserving the fill-order
	// invariant as if the new events had been appended to the original
	// stream. The receiver stays valid and unchanged — extension is
	// copy-on-write, so concurrent fills on the old index never race.
	extend(tmp [][]indexedEvent) (eventIndex, error)
}

// IndexMode selects the Reslicer's index backend.
type IndexMode int

const (
	// IndexAuto picks RAM below IndexOptions.Threshold events and spills
	// to disk above it — the default.
	IndexAuto IndexMode = iota
	// IndexRAM forces the in-RAM struct-of-arrays index.
	IndexRAM
	// IndexDisk forces the chunked on-disk store.
	IndexDisk
)

func (m IndexMode) String() string {
	switch m {
	case IndexAuto:
		return "auto"
	case IndexRAM:
		return "ram"
	case IndexDisk:
		return "disk"
	default:
		return fmt.Sprintf("indexmode(%d)", int(m))
	}
}

// ParseIndexMode parses the -index flag vocabulary: auto, ram, disk.
func ParseIndexMode(s string) (IndexMode, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return IndexAuto, nil
	case "ram":
		return IndexRAM, nil
	case "disk":
		return IndexDisk, nil
	default:
		return IndexAuto, fmt.Errorf("microscopic: unknown index mode %q (want auto, ram or disk)", s)
	}
}

// DefaultDiskIndexThreshold is the IndexAuto cutover: traces up to this
// many events index in RAM (~28 B/event ⇒ ~120 MB at the threshold);
// larger ones spill to the on-disk store mid-load.
const DefaultDiskIndexThreshold = 4 << 20

// IndexOptions configures NewReslicerIndexed.
type IndexOptions struct {
	// Mode selects the backend (default IndexAuto).
	Mode IndexMode
	// Threshold is the IndexAuto RAM→disk cutover in events (default
	// DefaultDiskIndexThreshold).
	Threshold int64
	// Dir hosts the store file and its spill runs for disk-backed
	// indexes (default os.TempDir()). The file is a load-time temporary,
	// removed when the Reslicer closes — unless KeepStore is set.
	Dir string
	// KeepStore makes the store file a durable sidecar instead of a
	// load-time temporary: Close keeps it on disk, so a restarted daemon
	// can reopen it in place (OpenReslicerStore) instead of rebuilding
	// the index from the trace.
	KeepStore bool
	// Store tunes the on-disk store (chunk size, sort buffer, chunk
	// cache budget); zero values mean the eventstore defaults.
	Store eventstore.Options
}

// ramIndex is the in-RAM backend: per-leaf struct-of-arrays sorted by
// start, with the running-max-end column for interval queries. ~28 bytes
// per event resident.
type ramIndex struct {
	evStart, evEnd [][]float64
	evState        [][]int32
	// evMaxEnd[s][i] = max(evEnd[s][0..i]) — nondecreasing, so the set
	// of events possibly overlapping a window is one binary search on
	// each side of the sorted-by-start array.
	evMaxEnd [][]float64
}

// freezeRAM sorts each leaf's events by start and flattens them into a
// ramIndex with the running-max-end column.
func freezeRAM(tmp [][]indexedEvent) *ramIndex {
	ix := &ramIndex{
		evStart:  make([][]float64, len(tmp)),
		evEnd:    make([][]float64, len(tmp)),
		evState:  make([][]int32, len(tmp)),
		evMaxEnd: make([][]float64, len(tmp)),
	}
	for s, evs := range tmp {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].start < evs[j].start })
		starts := make([]float64, len(evs))
		ends := make([]float64, len(evs))
		states := make([]int32, len(evs))
		maxEnd := make([]float64, len(evs))
		running := 0.0
		for i, e := range evs {
			starts[i], ends[i], states[i] = e.start, e.end, e.state
			if i == 0 || e.end > running {
				running = e.end
			}
			maxEnd[i] = running
		}
		ix.evStart[s], ix.evEnd[s], ix.evState[s], ix.evMaxEnd[s] = starts, ends, states, maxEnd
	}
	return ix
}

func (ix *ramIndex) fill(leaf int, winLo, winHi float64, visit func(state int32, start, end float64)) error {
	starts, ends, states, maxEnd := ix.evStart[leaf], ix.evEnd[leaf], ix.evState[leaf], ix.evMaxEnd[leaf]
	// Candidates overlapping [winLo, winHi): start < winHi (prefix of
	// the sorted array) and end > winLo (suffix of the nondecreasing
	// running max).
	i1 := sort.SearchFloat64s(starts, winHi)
	i0 := sort.Search(i1, func(i int) bool { return maxEnd[i] > winLo })
	for i := i0; i < i1; i++ {
		if ends[i] <= winLo {
			continue
		}
		visit(states[i], starts[i], ends[i])
	}
	return nil
}

func (ix *ramIndex) numEvents() int64 {
	var n int64
	for _, s := range ix.evStart {
		n += int64(len(s))
	}
	return n
}

func (ix *ramIndex) memoryBytes() int64 {
	// 8 (start) + 8 (end) + 4 (state) + 8 (maxEnd) per event.
	return ix.numEvents() * 28
}

func (ix *ramIndex) openChunkBytes() int64           { return 0 }
func (ix *ramIndex) kind() string                    { return "ram" }
func (ix *ramIndex) readStats() eventstore.ReadStats { return eventstore.ReadStats{} }
func (ix *ramIndex) storePath() string               { return "" }
func (ix *ramIndex) verify() (int, error)            { return 0, nil }
func (ix *ramIndex) close() error                    { return nil }

// diskIndex adapts an eventstore.Store: series numbers are hierarchy
// leaf indices, so fill maps straight through.
type diskIndex struct {
	store *eventstore.Store
}

func (ix *diskIndex) fill(leaf int, winLo, winHi float64, visit func(state int32, start, end float64)) error {
	return ix.store.ForEachOverlapping(uint32(leaf), winLo, winHi, visit)
}

func (ix *diskIndex) numEvents() int64                { return ix.store.NumEvents() }
func (ix *diskIndex) memoryBytes() int64              { return ix.store.DirectoryBytes() }
func (ix *diskIndex) openChunkBytes() int64           { return ix.store.OpenChunkBytes() }
func (ix *diskIndex) kind() string                    { return "disk" }
func (ix *diskIndex) readStats() eventstore.ReadStats { return ix.store.ReadStats() }
func (ix *diskIndex) storePath() string               { return ix.store.Path() }
func (ix *diskIndex) verify() (int, error)            { return ix.store.VerifyChunks() }
func (ix *diskIndex) close() error                    { return ix.store.Close() }

// TraceSource adapts an in-memory trace to the EventSource interface, so
// callers holding a *trace.Trace (generators, tests, the CLI's -case
// path) can reach the indexed constructors and force a disk backend.
func TraceSource(tr *trace.Trace) EventSource { return &memSource{tr: tr} }

type memSource struct {
	tr *trace.Trace
	i  int
}

func (s *memSource) Resources() []string        { return s.tr.Resources }
func (s *memSource) States() []string           { return s.tr.States }
func (s *memSource) Window() (float64, float64) { return s.tr.Window() }
func (s *memSource) Next(ev *trace.Event) error {
	if s.i >= len(s.tr.Events) {
		return io.EOF
	}
	*ev = s.tr.Events[s.i]
	s.i++
	return nil
}

// NewReslicerIndexed indexes a streaming source with an explicit backend
// choice. IndexAuto streams once: events buffer in RAM up to the
// threshold, and a trace that overflows it switches to the disk builder
// mid-stream (the buffer drains into the builder; the stream is never
// re-read). The returned Reslicer must be Closed when disk-backed — the
// store file is a temporary that Close removes.
func NewReslicerIndexed(src EventSource, opt IndexOptions) (*Reslicer, error) {
	h, err := hierarchy.FromPaths(src.Resources())
	if err != nil {
		return nil, err
	}
	start, end := src.Window()
	states := src.States()
	r2leaf, err := leafMap(h, src.Resources())
	if err != nil {
		return nil, err
	}
	if opt.Threshold <= 0 {
		opt.Threshold = DefaultDiskIndexThreshold
	}
	r := &Reslicer{
		h:        h,
		states:   append([]string(nil), states...),
		winStart: start,
		winEnd:   end,
		r2leaf:   r2leaf,
	}

	var (
		tmp     [][]indexedEvent // RAM buffer (nil once spilled)
		total   int64
		builder *eventstore.Builder
	)
	startBuilder := func() error {
		b, err := newStoreBuilder(h, r2leaf, src.Resources(), states, start, end, opt)
		if err != nil {
			return err
		}
		builder = b
		for leaf, evs := range tmp {
			for _, e := range evs {
				if err := builder.Add(uint32(leaf), e.state, e.start, e.end); err != nil {
					builder.Abort()
					return err
				}
			}
		}
		tmp = nil
		return nil
	}
	if opt.Mode != IndexDisk {
		tmp = make([][]indexedEvent, h.NumLeaves())
	} else if err := startBuilder(); err != nil {
		return nil, err
	}

	var ev trace.Event
	for {
		if err := src.Next(&ev); err != nil {
			if err == io.EOF {
				break
			}
			if builder != nil {
				builder.Abort()
			}
			return nil, fmt.Errorf("microscopic: reading events: %w", err)
		}
		if builder == nil {
			if err := indexEvent(tmp, r2leaf, len(states), ev); err != nil {
				return nil, err
			}
			total++
			if opt.Mode == IndexAuto && total > opt.Threshold {
				if err := startBuilder(); err != nil {
					return nil, err
				}
			}
			continue
		}
		leaf, err := checkEvent(r2leaf, len(states), ev)
		if err != nil {
			builder.Abort()
			return nil, err
		}
		if err := builder.Add(uint32(leaf), int32(ev.State), ev.Start, ev.End); err != nil {
			builder.Abort()
			return nil, err
		}
	}

	if builder == nil {
		r.idx = freezeRAM(tmp)
		return r, nil
	}
	store, err := builder.Finish()
	if err != nil {
		return nil, err
	}
	r.idx = &diskIndex{store: store}
	return r, nil
}

// newStoreBuilder opens a disk-store builder for the source's shape: the
// store's series table is the leaf-ordered resource paths, so series i
// is hierarchy leaf i by construction.
func newStoreBuilder(h *hierarchy.Hierarchy, r2leaf []int, resources, states []string, start, end float64, opt IndexOptions) (*eventstore.Builder, error) {
	leafPaths := make([]string, h.NumLeaves())
	for i, p := range resources {
		leafPaths[r2leaf[i]] = p
	}
	dir := opt.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "ocelotl-index-*.oces")
	if err != nil {
		return nil, fmt.Errorf("microscopic: disk index: %w", err)
	}
	path := f.Name()
	f.Close()
	sopt := opt.Store
	sopt.RemoveOnClose = !opt.KeepStore
	meta := eventstore.Meta{Series: leafPaths, States: states, Start: start, End: end}
	b, err := eventstore.Create(path, meta, sopt)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return b, nil
}

// OpenReslicerStore reopens a sealed store file (built by a previous
// NewReslicerIndexed with KeepStore) as a disk-backed Reslicer, skipping
// the rebuild entirely — the restart fast path. The hierarchy is rebuilt
// from the store's leaf-ordered series table, which round-trips to
// identical leaf numbering (hierarchy.FromPaths inserts children by
// first appearance, and leaf order preserves it); the identity of that
// mapping is checked, so a store written by an incompatible writer fails
// loudly instead of silently renumbering leaves and breaking the
// bit-identity contract.
func OpenReslicerStore(path string, opt IndexOptions) (*Reslicer, error) {
	sopt := opt.Store
	sopt.RemoveOnClose = !opt.KeepStore
	store, err := eventstore.Open(path, sopt)
	if err != nil {
		return nil, err
	}
	meta := store.Meta()
	h, err := hierarchy.FromPaths(meta.Series)
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("microscopic: reopen %s: %w", path, err)
	}
	r2leaf, err := leafMap(h, meta.Series)
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("microscopic: reopen %s: %w", path, err)
	}
	for i, l := range r2leaf {
		if l != i {
			store.Close()
			return nil, fmt.Errorf("microscopic: reopen %s: series table is not leaf-ordered (series %d is leaf %d) — store written by an incompatible builder", path, i, l)
		}
	}
	r := emptyReslicer(h, meta.States, meta.Start, meta.End)
	r.r2leaf = r2leaf
	r.idx = &diskIndex{store: store}
	return r, nil
}

// checkEvent validates an event against the tables — the same acceptance
// rules indexEvent applies on the buffered path — and returns its leaf.
func checkEvent(r2leaf []int, numStates int, e trace.Event) (int, error) {
	if int(e.State) >= numStates || e.State < 0 {
		return 0, fmt.Errorf("microscopic: event references state %d, table has %d", e.State, numStates)
	}
	if int(e.Resource) >= len(r2leaf) || e.Resource < 0 {
		return 0, fmt.Errorf("microscopic: event references resource %d, table has %d", e.Resource, len(r2leaf))
	}
	return r2leaf[e.Resource], nil
}
