package microscopic

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

// mustBuildAt and mustShift unwrap the fallible index API for tests on
// RAM-backed reslicers, where fills cannot fail.
func mustBuildAt(t *testing.T, r *Reslicer, sl timeslice.Slicer) *Model {
	t.Helper()
	m, err := r.BuildAt(sl)
	if err != nil {
		t.Fatalf("BuildAt: %v", err)
	}
	return m
}

func mustShift(t *testing.T, r *Reslicer, m *Model, k int) (*Model, SliceOverlap) {
	t.Helper()
	nm, ov, err := r.Shift(m, k)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	return nm, ov
}

// randomTrace builds a trace with overlapping, unsorted events so the
// index's sorting and interval queries are actually exercised.
func randomTrace(rng *rand.Rand, nRes, nEv int, winEnd float64) *trace.Trace {
	paths := make([]string, nRes)
	for i := range paths {
		cluster := string(rune('A' + i%3))
		paths[i] = "c" + cluster + "/r" + string(rune('a'+i))
	}
	tr := trace.New(paths, []string{"work", "wait", "io"})
	tr.Start, tr.End = 0, winEnd
	for i := 0; i < nEv; i++ {
		s := trace.ResourceID(rng.Intn(nRes))
		x := trace.StateID(rng.Intn(3))
		start := rng.Float64() * winEnd
		dur := rng.Float64() * winEnd / 7
		tr.Add(s, x, start, start+dur)
	}
	return tr
}

func modelsBitIdentical(t *testing.T, got, want *Model, label string) {
	t.Helper()
	if got.NumSlices() != want.NumSlices() || got.NumStates() != want.NumStates() {
		t.Fatalf("%s: shape mismatch", label)
	}
	for x := 0; x < want.NumStates(); x++ {
		g, w := got.StateRow(x), want.StateRow(x)
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: d_%d cell %d: got %v, want %v (diff %g)", label, x, i, g[i], w[i], g[i]-w[i])
			}
		}
	}
}

// TestReslicerMatchesBuild: a reslicer's full build equals Build within
// floating-point reordering noise (the index accumulates per resource in
// start order, Build in trace order).
func TestReslicerMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 6, 500, 10)
	want, err := Build(tr, Options{Slices: 16})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Build(Options{Slices: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reslicer() != r {
		t.Fatal("model not bound to its reslicer")
	}
	for x := 0; x < want.NumStates(); x++ {
		g, w := got.StateRow(x), want.StateRow(x)
		for i := range w {
			if math.Abs(g[i]-w[i]) > 1e-9*(1+math.Abs(w[i])) {
				t.Fatalf("d_%d cell %d: reslicer %v, Build %v", x, i, g[i], w[i])
			}
		}
	}
}

// TestReslicerStreamMatchesInMemory: both constructors index identically.
func TestReslicerStreamMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, 5, 300, 8)
	r1, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReslicerStream(&traceSource{tr: tr})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := r1.Build(Options{Slices: 12})
	m2, _ := r2.Build(Options{Slices: 12})
	modelsBitIdentical(t, m2, m1, "stream vs in-memory")
	if r1.NumEvents() != r2.NumEvents() || r1.NumEvents() != tr.NumEvents() {
		t.Fatalf("event counts: %d, %d, trace %d", r1.NumEvents(), r2.NumEvents(), tr.NumEvents())
	}
}

// traceSource adapts an in-memory trace to the EventSource interface.
type traceSource struct {
	tr *trace.Trace
	i  int
}

func (s *traceSource) Resources() []string { return s.tr.Resources }
func (s *traceSource) States() []string    { return s.tr.States }
func (s *traceSource) Window() (float64, float64) {
	return s.tr.Window()
}
func (s *traceSource) Next(ev *trace.Event) error {
	if s.i >= len(s.tr.Events) {
		return io.EOF
	}
	*ev = s.tr.Events[s.i]
	s.i++
	return nil
}

// TestShiftBitIdenticalToFullFill: after any chain of pans, the model is
// bit-identical to one full fill at the final slicer — the model-layer half
// of the incremental-equivalence guarantee.
func TestShiftBitIdenticalToFullFill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng, 7, 800, 20)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(Options{Slices: 15})
	if err != nil {
		t.Fatal(err)
	}
	shifts := []int{1, -2, 5, 40, -40, 3, -1, -1, 7}
	for step, k := range shifts {
		var ov SliceOverlap
		m, ov = mustShift(t, r, m, k)
		if want := 15 - abs(k); (want < 0 && ov.W != 0) || (want >= 0 && ov.W != max(0, want)) {
			t.Fatalf("step %d: Shift(%d) overlap W=%d", step, k, ov.W)
		}
		fresh := mustBuildAt(t, r, m.Slicer)
		modelsBitIdentical(t, m, fresh, "after shift chain")
	}
}

// TestZoomEquivalence: zooming re-slices exactly the covered range; a
// full-width zoom degenerates to a pan with full overlap bookkeeping.
func TestZoomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := randomTrace(rng, 6, 600, 12)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(Options{Slices: 12})
	if err != nil {
		t.Fatal(err)
	}
	zm, ov, err := r.Zoom(m, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Shared() {
		t.Errorf("narrowing zoom reported overlap %+v", ov)
	}
	wantLo, wantHi := m.Slicer.IntervalBounds(3, 8)
	if zm.Slicer.Start != wantLo || zm.Slicer.End != wantHi {
		t.Errorf("zoom window [%v,%v), want [%v,%v)", zm.Slicer.Start, zm.Slicer.End, wantLo, wantHi)
	}
	modelsBitIdentical(t, zm, mustBuildAt(t, r, zm.Slicer), "zoom")

	// Zoom out from the zoomed view, back over a wider range.
	om, ov, err := r.Zoom(zm, -6, 17)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Shared() {
		t.Errorf("zoom-out reported overlap %+v", ov)
	}
	modelsBitIdentical(t, om, mustBuildAt(t, r, om.Slicer), "zoom out")

	// Full-width zoom == pan.
	pm, ov, err := r.Zoom(m, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !ov.Shared() || ov.W != 10 || ov.OldLo != 2 || ov.NewLo != 0 {
		t.Errorf("full-width zoom overlap %+v, want pan by 2", ov)
	}
	sm, _ := mustShift(t, r, m, 2)
	modelsBitIdentical(t, pm, sm, "full-width zoom vs pan")

	if _, _, err := r.Zoom(m, 5, 4); err == nil {
		t.Error("inverted zoom range accepted")
	}
}

// TestWindowArbitrary: absolute windows come from the index too.
func TestWindowArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 5, 400, 10)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	wm, ov, err := r.Window(m, 2.345, 8.901)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Shared() {
		t.Errorf("arbitrary window reported overlap %+v", ov)
	}
	modelsBitIdentical(t, wm, mustBuildAt(t, r, wm.Slicer), "window")
	if _, _, err := r.Window(m, 5, 5); err == nil {
		t.Error("empty window accepted")
	}
}

// TestShiftConservesMass: panning must neither invent nor lose event time
// on the surviving slices, and the total over a window fully containing
// the trace equals the trace's total busy time.
func TestShiftConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := randomTrace(rng, 4, 300, 10)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Build(Options{Slices: 10, Start: -5, End: 15})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalTime()
	var want float64
	for _, e := range tr.Events {
		want += e.Duration()
	}
	if math.Abs(total-want) > 1e-6*(1+want) {
		t.Fatalf("total time %v, events sum %v", total, want)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestReslicerRejectsCorruptEvents: both constructors must error (not
// panic) on out-of-range state or resource IDs.
func TestReslicerRejectsCorruptEvents(t *testing.T) {
	base := func() *trace.Trace {
		tr := trace.New([]string{"c/a", "c/b"}, []string{"s"})
		tr.Start, tr.End = 0, 1
		tr.Add(0, 0, 0, 0.5)
		return tr
	}
	badState := base()
	badState.Add(1, 7, 0, 1)
	badRes := base()
	badRes.Add(9, 0, 0, 1)
	for name, tr := range map[string]*trace.Trace{"state": badState, "resource": badRes} {
		if _, err := NewReslicer(tr); err == nil {
			t.Errorf("NewReslicer accepted corrupt %s", name)
		}
		if _, err := NewReslicerStream(&traceSource{tr: tr}); err == nil {
			t.Errorf("NewReslicerStream accepted corrupt %s", name)
		}
	}
}

// TestGridOverlap: the shared window-arithmetic helper must report the
// clamped pan overlap for on-grid slicers and nothing for off-grid or
// reshaped windows.
func TestGridOverlap(t *testing.T) {
	base, err := timeslice.New(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		new  timeslice.Slicer
		want SliceOverlap
	}{
		{"identity", base, SliceOverlap{OldLo: 0, NewLo: 0, W: 5}},
		{"pan+2", base.Shift(2), SliceOverlap{OldLo: 2, NewLo: 0, W: 3}},
		{"pan-3", base.Shift(-3), SliceOverlap{OldLo: 0, NewLo: 3, W: 2}},
		{"pan past width", base.Shift(5), SliceOverlap{}},
		{"pan far negative", base.Shift(-17), SliceOverlap{}},
	}
	for _, tc := range cases {
		if got := GridOverlap(base, tc.new); got != tc.want {
			t.Errorf("%s: GridOverlap = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// Shift() recovers the pan distance from a shared overlap.
	if k := GridOverlap(base, base.Shift(2)).Shift(); k != 2 {
		t.Errorf("Shift() = %d, want 2", k)
	}
	if k := GridOverlap(base, base.Shift(-3)).Shift(); k != -3 {
		t.Errorf("Shift() = %d, want -3", k)
	}
	// Off-grid: a window assembled independently shares nothing.
	other, err := timeslice.New(0.5, 10.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := GridOverlap(base, other); got.Shared() {
		t.Errorf("off-grid windows report overlap %+v", got)
	}
	// Reshaped: same span, different |T|.
	reshaped, err := timeslice.New(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := GridOverlap(base, reshaped); got.Shared() {
		t.Errorf("reshaped windows report overlap %+v", got)
	}
}
