package microscopic

import (
	"fmt"

	"ocelotl/internal/eventstore"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

// SliceOverlap describes the slices shared between two models at the same
// temporal resolution: old slice OldLo+i covers exactly the same time
// interval — the same boundary floats — as new slice NewLo+i for every
// 0 ≤ i < W. W = 0 means the windows share nothing reusable.
type SliceOverlap struct {
	OldLo, NewLo, W int
}

// Shared reports whether the overlap carries any reusable slices.
func (ov SliceOverlap) Shared() bool { return ov.W > 0 }

// Reslicer is the incremental counterpart of Build/BuildStream: it retains
// a per-resource event index so that a window change fills only the slices
// that actually changed. A pan that keeps W of |T| slices costs O(events
// overlapping the |T|−W new slices) instead of a pass over the whole
// trace; a zoom costs O(events overlapping the new window).
//
// The index has two backends behind one contract (see eventIndex): the
// in-RAM struct-of-arrays (~28 B/event — the small-trace fast path) and
// the chunked on-disk event store (O(window) bytes per fill — the
// out-of-core path for traces past RAM). NewReslicer/NewReslicerStream
// build the RAM index; NewReslicerIndexed selects by IndexOptions. Both
// backends visit identical events in identical order, so the models they
// produce are bit-identical.
//
// A Reslicer is immutable after construction and safe for concurrent use;
// the Models it produces carry a back-pointer to it (Model.Reslicer), which
// the core layer's Pan/Zoom helpers use. Disk-backed reslicers own a
// temporary store file: Close releases it (fills racing a Close fail with
// an error, never garbage).
type Reslicer struct {
	h      *hierarchy.Hierarchy
	states []string
	// Observation window of the underlying trace.
	winStart, winEnd float64
	// r2leaf maps trace resource IDs to hierarchy leaves — retained so
	// Extend can validate and route appended events exactly like the
	// constructors did.
	r2leaf []int

	idx eventIndex
}

// indexedEvent is the construction-time representation before the index is
// frozen into struct-of-arrays form.
type indexedEvent struct {
	start, end float64
	state      int32
}

// NewReslicer indexes an in-memory trace for incremental windowing (RAM
// index — the trace is in memory already). The hierarchy is derived from
// the trace's resource paths, as in Build.
func NewReslicer(tr *trace.Trace) (*Reslicer, error) {
	h, err := hierarchy.FromPaths(tr.Resources)
	if err != nil {
		return nil, err
	}
	start, end := tr.Window()
	r := emptyReslicer(h, tr.States, start, end)
	r2leaf, err := leafMap(h, tr.Resources)
	if err != nil {
		return nil, err
	}
	r.r2leaf = r2leaf
	tmp := make([][]indexedEvent, h.NumLeaves())
	for _, e := range tr.Events {
		if err := indexEvent(tmp, r2leaf, len(tr.States), e); err != nil {
			return nil, err
		}
	}
	r.idx = freezeRAM(tmp)
	return r, nil
}

// indexEvent validates one event against the tables and appends it to its
// leaf's bucket; the validation is checkEvent's, shared with the direct-
// to-builder path so the acceptance rules cannot drift apart.
func indexEvent(tmp [][]indexedEvent, r2leaf []int, numStates int, e trace.Event) error {
	s, err := checkEvent(r2leaf, numStates, e)
	if err != nil {
		return err
	}
	tmp[s] = append(tmp[s], indexedEvent{e.Start, e.End, int32(e.State)})
	return nil
}

// NewReslicerStream indexes a streaming source for incremental windowing
// with the RAM backend: ~28 bytes per event, the memory the incremental
// path trades for O(Δ) window updates. For traces past RAM, use
// NewReslicerIndexed with IndexAuto or IndexDisk.
func NewReslicerStream(src EventSource) (*Reslicer, error) {
	return NewReslicerIndexed(src, IndexOptions{Mode: IndexRAM})
}

// leafMap maps trace resource IDs to hierarchy leaf indices.
func leafMap(h *hierarchy.Hierarchy, resources []string) ([]int, error) {
	r2leaf := make([]int, len(resources))
	for i, p := range resources {
		li := h.LeafIndex(p)
		if li < 0 {
			return nil, fmt.Errorf("microscopic: resource %q not a leaf of the hierarchy", p)
		}
		r2leaf[i] = li
	}
	return r2leaf, nil
}

func emptyReslicer(h *hierarchy.Hierarchy, states []string, start, end float64) *Reslicer {
	return &Reslicer{
		h:        h,
		states:   append([]string(nil), states...),
		winStart: start,
		winEnd:   end,
	}
}

// Hierarchy returns the platform hierarchy shared by every model this
// reslicer produces.
func (r *Reslicer) Hierarchy() *hierarchy.Hierarchy { return r.h }

// States returns the state table.
func (r *Reslicer) States() []string { return r.states }

// TraceWindow returns the observation window of the indexed trace.
func (r *Reslicer) TraceWindow() (start, end float64) { return r.winStart, r.winEnd }

// NumEvents returns the number of indexed events.
func (r *Reslicer) NumEvents() int { return int(r.idx.numEvents()) }

// IndexKind names the index backend: "ram" or "disk".
func (r *Reslicer) IndexKind() string { return r.idx.kind() }

// IndexMemoryBytes returns the index's fixed resident cost — the event
// arrays for the RAM backend, the chunk directory for the disk backend.
// Reported distinctly from Input (model/arena) bytes so serving-layer
// budgets don't double-count.
func (r *Reslicer) IndexMemoryBytes() int64 { return r.idx.memoryBytes() }

// OpenChunkBytes returns the disk backend's decoded-chunk cache
// residency; 0 for the RAM backend.
func (r *Reslicer) OpenChunkBytes() int64 { return r.idx.openChunkBytes() }

// IndexReadStats snapshots the disk backend's read counters (zero for
// the RAM backend): window-locality assertions and /debug/cachestats
// read these.
func (r *Reslicer) IndexReadStats() eventstore.ReadStats { return r.idx.readStats() }

// StorePath names the sealed store file backing a disk index ("" for the
// RAM backend) — the path the serving layer journals so a restart can
// reopen it via OpenReslicerStore.
func (r *Reslicer) StorePath() string { return r.idx.storePath() }

// VerifyIndex re-reads and CRC-checks every chunk of a disk-backed
// index (the scrub pass), bypassing the decoded-chunk cache. It returns
// the chunks verified and the first corruption found; RAM backends
// verify (0, nil).
func (r *Reslicer) VerifyIndex() (int, error) { return r.idx.verify() }

// Close releases the index. For the RAM backend this is a no-op; for the
// disk backend it closes and removes the store file — fills in flight
// fail with an error after that, they never read freed memory or
// recycled file handles into a model.
func (r *Reslicer) Close() error { return r.idx.close() }

// Build constructs the initial model, like the package-level Build but
// from the index, producing a Model bound to this reslicer. The zero
// Options window means the full trace window.
func (r *Reslicer) Build(opt Options) (*Model, error) {
	if opt.Slices <= 0 {
		opt.Slices = DefaultSlices
	}
	start, end := opt.Start, opt.End
	if start == 0 && end == 0 {
		start, end = r.winStart, r.winEnd
	}
	sl, err := timeslice.New(start, end, opt.Slices)
	if err != nil {
		return nil, fmt.Errorf("microscopic: %w", err)
	}
	return r.BuildAt(sl)
}

// BuildAt fills a complete model for an exact slicer. Incremental updates
// and from-scratch builds share this fill path, which is what makes a
// chain of Shift/Zoom calls bit-identical to one BuildAt on the final
// slicer (every cell accumulates the same events in the same order). The
// error is always nil for RAM-backed reslicers; disk-backed fills can
// fail on I/O or a corrupt chunk.
func (r *Reslicer) BuildAt(sl timeslice.Slicer) (*Model, error) {
	m := NewEmpty(r.h, sl, r.states)
	m.resl = r
	if err := r.fillRange(m, 0, sl.N-1); err != nil {
		return nil, err
	}
	return m, nil
}

// Shift pans the model's window by k slices on the same grid, copying the
// |T|−|k| surviving slice columns and filling only the |k| new ones from
// the event index. The returned overlap is what core.Input.Update needs to
// reuse its matrices. Panning past the trace extent is allowed — slices
// out there are simply empty.
func (r *Reslicer) Shift(m *Model, k int) (*Model, SliceOverlap, error) {
	T := m.Slicer.N
	nm := NewEmpty(r.h, m.Slicer.Shift(k), r.states)
	nm.resl = r
	ov := ShiftOverlap(T, k)
	if !ov.Shared() {
		if err := r.fillRange(nm, 0, T-1); err != nil {
			return nil, SliceOverlap{}, err
		}
		return nm, ov, nil
	}
	for x := range nm.dx {
		oldRow, newRow := m.dx[x], nm.dx[x]
		for s := 0; s < r.h.NumLeaves(); s++ {
			copy(newRow[s*T+ov.NewLo:s*T+ov.NewLo+ov.W], oldRow[s*T+ov.OldLo:s*T+ov.OldLo+ov.W])
		}
	}
	var err error
	if k > 0 {
		err = r.fillRange(nm, T-k, T-1)
	} else {
		err = r.fillRange(nm, 0, -k-1)
	}
	if err != nil {
		return nil, SliceOverlap{}, err
	}
	return nm, ov, nil
}

// ShiftOverlap returns the surviving-slice mapping of a k-slice pan over a
// |T|-slice window: the overlap Shift reports, exposed so consumers (like
// core.Input.Update) can re-derive it from two slicers' grid offset.
func ShiftOverlap(T, k int) SliceOverlap {
	switch {
	case k >= T || k <= -T:
		return SliceOverlap{}
	case k >= 0:
		return SliceOverlap{OldLo: k, NewLo: 0, W: T - k}
	default:
		return SliceOverlap{OldLo: 0, NewLo: -k, W: T + k}
	}
}

// Shift returns the pan distance the overlap encodes: the k such that old
// slice i+k coincides with new slice i. Only meaningful for overlaps that
// share slices.
func (ov SliceOverlap) Shift() int { return ov.OldLo - ov.NewLo }

// GridOverlap is the one place window arithmetic between two slicers
// happens: it reports which of new's slices are bit-identical to slices of
// old. Both windows must sit on one anchored grid (same origin and width)
// and have the same slice count; the pan distance is clamped against the
// window width by ShiftOverlap, so callers never re-implement the
// |k| < |T| bound. Off-grid or reshaped windows share nothing. The CLI's
// pan/zoom replay, core.Input's overlap verification and the serving
// layer's cache all derive their reuse decisions from this.
func GridOverlap(old, new timeslice.Slicer) SliceOverlap {
	if old.N != new.N {
		return SliceOverlap{}
	}
	k, ok := old.OnGrid(new)
	if !ok {
		return SliceOverlap{}
	}
	return ShiftOverlap(old.N, k)
}

// Zoom re-slices the time range covered by slices [lo, hi] of m's window
// into the same number of slices. Indices outside [0, |T|) address the
// grid's extrapolation, so Zoom(-|T|/2, |T|+|T|/2-1) is a 2× zoom-out.
// When the zoomed grid coincides with the old one (hi−lo+1 == |T|), this
// is exactly a pan and the overlap is reported accordingly; otherwise the
// slice width changes, nothing is reusable and the window is refilled from
// the index (O(events overlapping the new window), not a trace pass).
func (r *Reslicer) Zoom(m *Model, lo, hi int) (*Model, SliceOverlap, error) {
	T := m.Slicer.N
	if hi < lo {
		return nil, SliceOverlap{}, fmt.Errorf("microscopic: zoom range [%d,%d] inverted", lo, hi)
	}
	if hi-lo+1 == T { // same width: a pure pan, keep the grid
		return r.Shift(m, lo)
	}
	start, end := m.Slicer.IntervalBounds(lo, hi)
	sl, err := timeslice.New(start, end, T)
	if err != nil {
		return nil, SliceOverlap{}, fmt.Errorf("microscopic: %w", err)
	}
	nm, err := r.BuildAt(sl)
	if err != nil {
		return nil, SliceOverlap{}, err
	}
	return nm, SliceOverlap{}, nil
}

// Window re-slices an arbitrary absolute time window at the model's
// resolution. No slices are reused (arbitrary windows don't land on the
// grid); the fill still comes from the index rather than a trace pass.
func (r *Reslicer) Window(m *Model, start, end float64) (*Model, SliceOverlap, error) {
	sl, err := timeslice.New(start, end, m.Slicer.N)
	if err != nil {
		return nil, SliceOverlap{}, fmt.Errorf("microscopic: %w", err)
	}
	nm, err := r.BuildAt(sl)
	if err != nil {
		return nil, SliceOverlap{}, err
	}
	return nm, SliceOverlap{}, nil
}

// fillRange accumulates d_x(s,t) for slices lo..hi of m from the event
// index. Both the full build and every incremental fill funnel through
// here so that any given cell always sums the same events in the same
// order — the bit-identity the incremental engine path relies on,
// whichever index backend serves the events.
func (r *Reslicer) fillRange(m *Model, lo, hi int) error {
	T := m.Slicer.N
	if lo < 0 {
		lo = 0
	}
	if hi > T-1 {
		hi = T - 1
	}
	if hi < lo {
		return nil
	}
	winLo, _ := m.Slicer.Bounds(lo)
	_, winHi := m.Slicer.Bounds(hi)
	for s := 0; s < r.h.NumLeaves(); s++ {
		base := s * T
		err := r.idx.fill(s, winLo, winHi, func(state int32, start, end float64) {
			row := m.dx[state]
			m.Slicer.Overlap(start, end, func(t int, sec float64) {
				if t >= lo && t <= hi {
					row[base+t] += sec
				}
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
