package microscopic

import (
	"fmt"
	"io"
	"sort"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

// SliceOverlap describes the slices shared between two models at the same
// temporal resolution: old slice OldLo+i covers exactly the same time
// interval — the same boundary floats — as new slice NewLo+i for every
// 0 ≤ i < W. W = 0 means the windows share nothing reusable.
type SliceOverlap struct {
	OldLo, NewLo, W int
}

// Shared reports whether the overlap carries any reusable slices.
func (ov SliceOverlap) Shared() bool { return ov.W > 0 }

// Reslicer is the incremental counterpart of Build/BuildStream: it retains
// a per-resource event index (events sorted by start time, with a running
// maximum of end times for interval queries) so that a window change fills
// only the slices that actually changed. A pan that keeps W of |T| slices
// costs O(events overlapping the |T|−W new slices) instead of a pass over
// the whole trace; a zoom costs O(events overlapping the new window).
//
// The index costs O(events) memory — the price of interactive windowing on
// an in-memory model. For one-shot analyses, Build/BuildStream remain the
// cheaper path.
//
// A Reslicer is immutable after construction and safe for concurrent use;
// the Models it produces carry a back-pointer to it (Model.Reslicer), which
// the core layer's Pan/Zoom helpers use.
type Reslicer struct {
	h      *hierarchy.Hierarchy
	states []string
	// Observation window of the underlying trace.
	winStart, winEnd float64

	// Per-leaf event index, struct-of-arrays, sorted by start (stable, so
	// equal-start events keep their trace order and refills reproduce the
	// exact same floating-point accumulation order every time).
	evStart, evEnd [][]float64
	evState        [][]int32
	// evMaxEnd[s][i] = max(evEnd[s][0..i]) — nondecreasing, so the set of
	// events possibly overlapping a window is one binary search on each
	// side of the sorted-by-start array.
	evMaxEnd [][]float64
}

// indexedEvent is the construction-time representation before the index is
// frozen into struct-of-arrays form.
type indexedEvent struct {
	start, end float64
	state      int32
}

// NewReslicer indexes an in-memory trace for incremental windowing. The
// hierarchy is derived from the trace's resource paths, as in Build.
func NewReslicer(tr *trace.Trace) (*Reslicer, error) {
	h, err := hierarchy.FromPaths(tr.Resources)
	if err != nil {
		return nil, err
	}
	start, end := tr.Window()
	r := emptyReslicer(h, tr.States, start, end)
	r2leaf, err := leafMap(h, tr.Resources)
	if err != nil {
		return nil, err
	}
	tmp := make([][]indexedEvent, h.NumLeaves())
	for _, e := range tr.Events {
		if err := indexEvent(tmp, r2leaf, len(tr.States), e); err != nil {
			return nil, err
		}
	}
	r.freeze(tmp)
	return r, nil
}

// indexEvent validates one event against the tables and appends it to its
// leaf's bucket; shared by both constructors so their acceptance rules
// cannot drift apart.
func indexEvent(tmp [][]indexedEvent, r2leaf []int, numStates int, e trace.Event) error {
	if int(e.State) >= numStates || e.State < 0 {
		return fmt.Errorf("microscopic: event references state %d, table has %d", e.State, numStates)
	}
	if int(e.Resource) >= len(r2leaf) || e.Resource < 0 {
		return fmt.Errorf("microscopic: event references resource %d, table has %d", e.Resource, len(r2leaf))
	}
	s := r2leaf[e.Resource]
	tmp[s] = append(tmp[s], indexedEvent{e.Start, e.End, int32(e.State)})
	return nil
}

// NewReslicerStream indexes a streaming source for incremental windowing.
// Unlike BuildStream this necessarily materializes the (compacted) events:
// ~20 bytes per event, the memory the incremental path trades for O(Δ)
// window updates.
func NewReslicerStream(src EventSource) (*Reslicer, error) {
	h, err := hierarchy.FromPaths(src.Resources())
	if err != nil {
		return nil, err
	}
	start, end := src.Window()
	states := src.States()
	r := emptyReslicer(h, states, start, end)
	r2leaf, err := leafMap(h, src.Resources())
	if err != nil {
		return nil, err
	}
	tmp := make([][]indexedEvent, h.NumLeaves())
	var ev trace.Event
	for {
		if err := src.Next(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("microscopic: reading events: %w", err)
		}
		if err := indexEvent(tmp, r2leaf, len(states), ev); err != nil {
			return nil, err
		}
	}
	r.freeze(tmp)
	return r, nil
}

// leafMap maps trace resource IDs to hierarchy leaf indices.
func leafMap(h *hierarchy.Hierarchy, resources []string) ([]int, error) {
	r2leaf := make([]int, len(resources))
	for i, p := range resources {
		li := h.LeafIndex(p)
		if li < 0 {
			return nil, fmt.Errorf("microscopic: resource %q not a leaf of the hierarchy", p)
		}
		r2leaf[i] = li
	}
	return r2leaf, nil
}

func emptyReslicer(h *hierarchy.Hierarchy, states []string, start, end float64) *Reslicer {
	n := h.NumLeaves()
	return &Reslicer{
		h:        h,
		states:   append([]string(nil), states...),
		winStart: start,
		winEnd:   end,
		evStart:  make([][]float64, n),
		evEnd:    make([][]float64, n),
		evState:  make([][]int32, n),
		evMaxEnd: make([][]float64, n),
	}
}

// freeze sorts each leaf's events by start and flattens them into the
// struct-of-arrays index with the running-max-end column.
func (r *Reslicer) freeze(tmp [][]indexedEvent) {
	for s, evs := range tmp {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].start < evs[j].start })
		starts := make([]float64, len(evs))
		ends := make([]float64, len(evs))
		states := make([]int32, len(evs))
		maxEnd := make([]float64, len(evs))
		running := 0.0
		for i, e := range evs {
			starts[i], ends[i], states[i] = e.start, e.end, e.state
			if i == 0 || e.end > running {
				running = e.end
			}
			maxEnd[i] = running
		}
		r.evStart[s], r.evEnd[s], r.evState[s], r.evMaxEnd[s] = starts, ends, states, maxEnd
	}
}

// Hierarchy returns the platform hierarchy shared by every model this
// reslicer produces.
func (r *Reslicer) Hierarchy() *hierarchy.Hierarchy { return r.h }

// States returns the state table.
func (r *Reslicer) States() []string { return r.states }

// TraceWindow returns the observation window of the indexed trace.
func (r *Reslicer) TraceWindow() (start, end float64) { return r.winStart, r.winEnd }

// NumEvents returns the number of indexed events.
func (r *Reslicer) NumEvents() int {
	n := 0
	for _, s := range r.evStart {
		n += len(s)
	}
	return n
}

// Build constructs the initial model, like the package-level Build but
// from the index, producing a Model bound to this reslicer. The zero
// Options window means the full trace window.
func (r *Reslicer) Build(opt Options) (*Model, error) {
	if opt.Slices <= 0 {
		opt.Slices = DefaultSlices
	}
	start, end := opt.Start, opt.End
	if start == 0 && end == 0 {
		start, end = r.winStart, r.winEnd
	}
	sl, err := timeslice.New(start, end, opt.Slices)
	if err != nil {
		return nil, fmt.Errorf("microscopic: %w", err)
	}
	return r.BuildAt(sl), nil
}

// BuildAt fills a complete model for an exact slicer. Incremental updates
// and from-scratch builds share this fill path, which is what makes a
// chain of Shift/Zoom calls bit-identical to one BuildAt on the final
// slicer (every cell accumulates the same events in the same order).
func (r *Reslicer) BuildAt(sl timeslice.Slicer) *Model {
	m := NewEmpty(r.h, sl, r.states)
	m.resl = r
	r.fillRange(m, 0, sl.N-1)
	return m
}

// Shift pans the model's window by k slices on the same grid, copying the
// |T|−|k| surviving slice columns and filling only the |k| new ones from
// the event index. The returned overlap is what core.Input.Update needs to
// reuse its matrices. Panning past the trace extent is allowed — slices
// out there are simply empty.
func (r *Reslicer) Shift(m *Model, k int) (*Model, SliceOverlap) {
	T := m.Slicer.N
	nm := NewEmpty(r.h, m.Slicer.Shift(k), r.states)
	nm.resl = r
	ov := ShiftOverlap(T, k)
	if !ov.Shared() {
		r.fillRange(nm, 0, T-1)
		return nm, ov
	}
	for x := range nm.dx {
		oldRow, newRow := m.dx[x], nm.dx[x]
		for s := 0; s < r.h.NumLeaves(); s++ {
			copy(newRow[s*T+ov.NewLo:s*T+ov.NewLo+ov.W], oldRow[s*T+ov.OldLo:s*T+ov.OldLo+ov.W])
		}
	}
	if k > 0 {
		r.fillRange(nm, T-k, T-1)
	} else {
		r.fillRange(nm, 0, -k-1)
	}
	return nm, ov
}

// ShiftOverlap returns the surviving-slice mapping of a k-slice pan over a
// |T|-slice window: the overlap Shift reports, exposed so consumers (like
// core.Input.Update) can re-derive it from two slicers' grid offset.
func ShiftOverlap(T, k int) SliceOverlap {
	switch {
	case k >= T || k <= -T:
		return SliceOverlap{}
	case k >= 0:
		return SliceOverlap{OldLo: k, NewLo: 0, W: T - k}
	default:
		return SliceOverlap{OldLo: 0, NewLo: -k, W: T + k}
	}
}

// Shift returns the pan distance the overlap encodes: the k such that old
// slice i+k coincides with new slice i. Only meaningful for overlaps that
// share slices.
func (ov SliceOverlap) Shift() int { return ov.OldLo - ov.NewLo }

// GridOverlap is the one place window arithmetic between two slicers
// happens: it reports which of new's slices are bit-identical to slices of
// old. Both windows must sit on one anchored grid (same origin and width)
// and have the same slice count; the pan distance is clamped against the
// window width by ShiftOverlap, so callers never re-implement the
// |k| < |T| bound. Off-grid or reshaped windows share nothing. The CLI's
// pan/zoom replay, core.Input's overlap verification and the serving
// layer's cache all derive their reuse decisions from this.
func GridOverlap(old, new timeslice.Slicer) SliceOverlap {
	if old.N != new.N {
		return SliceOverlap{}
	}
	k, ok := old.OnGrid(new)
	if !ok {
		return SliceOverlap{}
	}
	return ShiftOverlap(old.N, k)
}

// Zoom re-slices the time range covered by slices [lo, hi] of m's window
// into the same number of slices. Indices outside [0, |T|) address the
// grid's extrapolation, so Zoom(-|T|/2, |T|+|T|/2-1) is a 2× zoom-out.
// When the zoomed grid coincides with the old one (hi−lo+1 == |T|), this
// is exactly a pan and the overlap is reported accordingly; otherwise the
// slice width changes, nothing is reusable and the window is refilled from
// the index (O(events overlapping the new window), not a trace pass).
func (r *Reslicer) Zoom(m *Model, lo, hi int) (*Model, SliceOverlap, error) {
	T := m.Slicer.N
	if hi < lo {
		return nil, SliceOverlap{}, fmt.Errorf("microscopic: zoom range [%d,%d] inverted", lo, hi)
	}
	if hi-lo+1 == T { // same width: a pure pan, keep the grid
		nm, ov := r.Shift(m, lo)
		return nm, ov, nil
	}
	start, end := m.Slicer.IntervalBounds(lo, hi)
	sl, err := timeslice.New(start, end, T)
	if err != nil {
		return nil, SliceOverlap{}, fmt.Errorf("microscopic: %w", err)
	}
	return r.BuildAt(sl), SliceOverlap{}, nil
}

// Window re-slices an arbitrary absolute time window at the model's
// resolution. No slices are reused (arbitrary windows don't land on the
// grid); the fill still comes from the index rather than a trace pass.
func (r *Reslicer) Window(m *Model, start, end float64) (*Model, SliceOverlap, error) {
	sl, err := timeslice.New(start, end, m.Slicer.N)
	if err != nil {
		return nil, SliceOverlap{}, fmt.Errorf("microscopic: %w", err)
	}
	return r.BuildAt(sl), SliceOverlap{}, nil
}

// fillRange accumulates d_x(s,t) for slices lo..hi of m from the event
// index. Both the full build and every incremental fill funnel through
// here so that any given cell always sums the same events in the same
// order — the bit-identity the incremental engine path relies on.
func (r *Reslicer) fillRange(m *Model, lo, hi int) {
	T := m.Slicer.N
	if lo < 0 {
		lo = 0
	}
	if hi > T-1 {
		hi = T - 1
	}
	if hi < lo {
		return
	}
	winLo, _ := m.Slicer.Bounds(lo)
	_, winHi := m.Slicer.Bounds(hi)
	for s := range r.evStart {
		starts, ends, states, maxEnd := r.evStart[s], r.evEnd[s], r.evState[s], r.evMaxEnd[s]
		// Candidates overlapping [winLo, winHi): start < winHi (prefix of
		// the sorted array) and end > winLo (suffix of the nondecreasing
		// running max).
		i1 := sort.SearchFloat64s(starts, winHi)
		i0 := sort.Search(i1, func(i int) bool { return maxEnd[i] > winLo })
		base := s * T
		for i := i0; i < i1; i++ {
			if ends[i] <= winLo {
				continue
			}
			row := m.dx[states[i]]
			m.Slicer.Overlap(starts[i], ends[i], func(t int, sec float64) {
				if t >= lo && t <= hi {
					row[base+t] += sec
				}
			})
		}
	}
}
