// Package microscopic builds the trace microscopic model of paper §III.A:
// the raw timestamped events are preliminarily aggregated within
// microscopic spatiotemporal areas (s, t) — one resource × one regular time
// slice — producing the tridimensional dataset d_x(s,t) that every
// aggregation algorithm consumes.
package microscopic

import (
	"fmt"
	"io"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

// Model is the microscopic description of a trace: for each state x,
// resource s (leaf index in the hierarchy) and slice t, the time d_x(s,t)
// spent by s in x during t, plus the slice durations d(t).
type Model struct {
	H      *hierarchy.Hierarchy
	Slicer timeslice.Slicer
	// States maps state index to name (the dimension X).
	States []string
	// SliceDur is d(t) for each slice.
	SliceDur []float64
	// dx[x] is a row-major [resource][slice] matrix of d_x(s,t).
	dx [][]float64
	// resl is the index this model was produced from, when it came from a
	// Reslicer; nil for Build/BuildStream/NewEmpty models.
	resl *Reslicer
}

// Reslicer returns the event index behind this model, or nil if the model
// was built without one. Models with a reslicer support the incremental
// window updates of core.Input.Pan/Zoom.
func (m *Model) Reslicer() *Reslicer { return m.resl }

// NumStates returns |X|.
func (m *Model) NumStates() int { return len(m.States) }

// NumResources returns |S|.
func (m *Model) NumResources() int { return m.H.NumLeaves() }

// NumSlices returns |T|.
func (m *Model) NumSlices() int { return m.Slicer.N }

// D returns d_x(s,t), the time resource s spent in state x during slice t.
func (m *Model) D(x, s, t int) float64 { return m.dx[x][s*m.Slicer.N+t] }

// AddD accumulates seconds into d_x(s,t). Exposed for builders and tests.
func (m *Model) AddD(x, s, t int, seconds float64) { m.dx[x][s*m.Slicer.N+t] += seconds }

// Rho returns ρ_x(s,t) = d_x(s,t)/d(t), the proportion of slice t that
// resource s spent in state x.
func (m *Model) Rho(x, s, t int) float64 {
	d := m.SliceDur[t]
	if d <= 0 {
		return 0
	}
	return m.D(x, s, t) / d
}

// StateRow returns the [resource][slice] matrix for state x (row-major,
// length |S|·|T|). Callers must not mutate it.
func (m *Model) StateRow(x int) []float64 { return m.dx[x] }

// NewEmpty allocates a zeroed model for the given hierarchy, slicer and
// state table. Generators and tests fill it with AddD.
func NewEmpty(h *hierarchy.Hierarchy, sl timeslice.Slicer, states []string) *Model {
	m := &Model{
		H:        h,
		Slicer:   sl,
		States:   append([]string(nil), states...),
		SliceDur: sl.Durations(),
		dx:       make([][]float64, len(states)),
	}
	for x := range m.dx {
		m.dx[x] = make([]float64, h.NumLeaves()*sl.N)
	}
	return m
}

// Options configures model construction.
type Options struct {
	// Slices is |T|; the paper uses 30 for all its case studies.
	Slices int
	// Start/End override the observation window; when both are zero the
	// window is taken from the trace.
	Start, End float64
}

// DefaultSlices is the microscopic temporal resolution used throughout the
// paper's evaluation (§V: "The microscopic model is each time composed by
// 30 timeslices").
const DefaultSlices = 30

// Build constructs the microscopic model of an in-memory trace. The
// hierarchy is derived from the trace's resource paths; event time is
// distributed over the slices each event overlaps.
func Build(tr *trace.Trace, opt Options) (*Model, error) {
	h, err := hierarchy.FromPaths(tr.Resources)
	if err != nil {
		return nil, err
	}
	return BuildWithHierarchy(tr, h, opt)
}

// BuildWithHierarchy is Build with a caller-provided hierarchy (whose leaf
// paths must cover the trace's resources).
func BuildWithHierarchy(tr *trace.Trace, h *hierarchy.Hierarchy, opt Options) (*Model, error) {
	if opt.Slices <= 0 {
		opt.Slices = DefaultSlices
	}
	start, end := opt.Start, opt.End
	if start == 0 && end == 0 {
		start, end = tr.Window()
	}
	sl, err := timeslice.New(start, end, opt.Slices)
	if err != nil {
		return nil, fmt.Errorf("microscopic: %w", err)
	}
	m := NewEmpty(h, sl, tr.States)
	// Map the trace's resource IDs to hierarchy leaf indices once.
	r2leaf, err := leafMap(h, tr.Resources)
	if err != nil {
		return nil, err
	}
	for _, e := range tr.Events {
		if int(e.State) >= len(m.dx) {
			return nil, fmt.Errorf("microscopic: event references state %d, table has %d", e.State, len(m.dx))
		}
		s := r2leaf[e.Resource]
		x := int(e.State)
		sl.Overlap(e.Start, e.End, func(t int, sec float64) {
			m.dx[x][s*sl.N+t] += sec
		})
	}
	return m, nil
}

// EventSource is a streaming supplier of events, implemented by the readers
// in package traceio. Header data (resources, states, window) must be
// available before the first Next call.
type EventSource interface {
	// Resources returns the resource paths (index = ResourceID).
	Resources() []string
	// States returns the state names (index = StateID).
	States() []string
	// Window returns the observation window.
	Window() (start, end float64)
	// Next fills ev with the next event; it returns io.EOF at the end.
	Next(ev *trace.Event) error
}

// BuildStream constructs the model from a streaming source without
// materializing the events, so Table II-scale traces (hundreds of millions
// of events) fit in O(|X|·|S|·|T|) memory.
func BuildStream(src EventSource, opt Options) (*Model, error) {
	h, err := hierarchy.FromPaths(src.Resources())
	if err != nil {
		return nil, err
	}
	if opt.Slices <= 0 {
		opt.Slices = DefaultSlices
	}
	start, end := opt.Start, opt.End
	if start == 0 && end == 0 {
		start, end = src.Window()
	}
	sl, err := timeslice.New(start, end, opt.Slices)
	if err != nil {
		return nil, fmt.Errorf("microscopic: %w", err)
	}
	m := NewEmpty(h, sl, src.States())
	r2leaf, err := leafMap(h, src.Resources())
	if err != nil {
		return nil, err
	}
	var ev trace.Event
	for {
		if err := src.Next(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("microscopic: reading events: %w", err)
		}
		if int(ev.State) >= len(m.dx) || ev.State < 0 {
			return nil, fmt.Errorf("microscopic: event references state %d, table has %d", ev.State, len(m.dx))
		}
		if int(ev.Resource) >= len(r2leaf) || ev.Resource < 0 {
			return nil, fmt.Errorf("microscopic: event references resource %d, table has %d", ev.Resource, len(r2leaf))
		}
		s := r2leaf[ev.Resource]
		x := int(ev.State)
		sl.Overlap(ev.Start, ev.End, func(t int, sec float64) {
			m.dx[x][s*sl.N+t] += sec
		})
	}
	return m, nil
}

// Validate performs sanity checks: no negative durations, and (unless
// resources multiplex states, which MPI state traces do not) the per-area
// total Σ_x d_x(s,t) should not exceed d(t) by more than eps.
func (m *Model) Validate(eps float64) error {
	T := m.Slicer.N
	for s := 0; s < m.NumResources(); s++ {
		for t := 0; t < T; t++ {
			var tot float64
			for x := range m.dx {
				d := m.dx[x][s*T+t]
				if d < 0 {
					return fmt.Errorf("microscopic: negative d_%d(%d,%d) = %g", x, s, t, d)
				}
				tot += d
			}
			if tot > m.SliceDur[t]+eps {
				return fmt.Errorf("microscopic: overfull area (s=%d,t=%d): Σd=%g > d(t)=%g", s, t, tot, m.SliceDur[t])
			}
		}
	}
	return nil
}

// TotalTime returns Σ_x Σ_s Σ_t d_x(s,t), the total recorded busy time.
func (m *Model) TotalTime() float64 {
	var tot float64
	for _, row := range m.dx {
		for _, v := range row {
			tot += v
		}
	}
	return tot
}

// SliceProfile returns, for slice t, the per-state mean proportion over all
// resources: ρ_x(S, {t}) of Eq. 1 with S_k = S. Used by the temporal-only
// baseline and by renderers.
func (m *Model) SliceProfile(t int) []float64 {
	out := make([]float64, len(m.dx))
	n := m.NumResources()
	T := m.Slicer.N
	for x := range m.dx {
		var sum float64
		for s := 0; s < n; s++ {
			sum += m.dx[x][s*T+t]
		}
		if d := m.SliceDur[t]; d > 0 {
			out[x] = sum / (float64(n) * d)
		}
	}
	return out
}

// ResourceProfile returns, for resource s, the per-state time-weighted
// proportion over the whole window: ρ_x({s}, T). Used by the spatial-only
// baseline.
func (m *Model) ResourceProfile(s int) []float64 {
	out := make([]float64, len(m.dx))
	T := m.Slicer.N
	var dur float64
	for _, d := range m.SliceDur {
		dur += d
	}
	if dur <= 0 {
		return out
	}
	for x := range m.dx {
		var sum float64
		for t := 0; t < T; t++ {
			sum += m.dx[x][s*T+t]
		}
		out[x] = sum / dur
	}
	return out
}
