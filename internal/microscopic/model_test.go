package microscopic

import (
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ocelotl/internal/hierarchy"
	"ocelotl/internal/timeslice"
	"ocelotl/internal/trace"
)

func sampleTrace() *trace.Trace {
	tr := trace.New([]string{"A/a0", "A/a1", "B/b0"}, []string{"run", "wait"})
	tr.Start, tr.End = 0, 10
	tr.Add(0, 0, 0, 5)    // a0 runs 5s
	tr.Add(0, 1, 5, 10)   // a0 waits 5s
	tr.Add(1, 0, 0, 10)   // a1 runs the whole window
	tr.Add(2, 1, 2.5, 10) // b0 waits 7.5s
	return tr
}

func TestBuildBasic(t *testing.T) {
	m, err := Build(sampleTrace(), Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumResources() != 3 || m.NumStates() != 2 || m.NumSlices() != 10 {
		t.Fatalf("dims (%d,%d,%d)", m.NumResources(), m.NumStates(), m.NumSlices())
	}
	// a0 runs fully during slice 0, waits fully during slice 7.
	if got := m.Rho(0, 0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("rho(run,a0,0) = %g, want 1", got)
	}
	if got := m.Rho(1, 0, 7); math.Abs(got-1) > 1e-12 {
		t.Errorf("rho(wait,a0,7) = %g, want 1", got)
	}
	// b0's wait starts mid-slice 2: half the slice.
	if got := m.Rho(1, 2, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rho(wait,b0,2) = %g, want 0.5", got)
	}
	if err := m.Validate(1e-9); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildDefaultSlices(t *testing.T) {
	m, err := Build(sampleTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSlices() != DefaultSlices {
		t.Errorf("default |T| = %d, want %d", m.NumSlices(), DefaultSlices)
	}
}

func TestBuildConservesTime(t *testing.T) {
	tr := sampleTrace()
	m, err := Build(tr, Options{Slices: 7}) // slices that don't divide evenly
	if err != nil {
		t.Fatal(err)
	}
	want := tr.ComputeStats().BusyTime
	if got := m.TotalTime(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalTime = %g, want %g", got, want)
	}
}

func TestBuildWindowOverride(t *testing.T) {
	tr := sampleTrace()
	m, err := Build(tr, Options{Slices: 5, Start: 0, End: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Only the first 5 seconds are described: a0 run 5s + a1 run 5s +
	// b0 wait 2.5s.
	if got := m.TotalTime(); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("TotalTime = %g, want 12.5", got)
	}
}

func TestBuildRejectsBadStates(t *testing.T) {
	tr := sampleTrace()
	tr.Events = append(tr.Events, trace.Event{Resource: 0, State: 99, Start: 0, End: 1})
	if _, err := Build(tr, Options{Slices: 5}); err == nil {
		t.Error("event with unknown state accepted")
	}
}

func TestBuildWithForeignHierarchyFails(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"other/r"})
	if _, err := BuildWithHierarchy(sampleTrace(), h, Options{Slices: 5}); err == nil {
		t.Error("hierarchy not covering the trace accepted")
	}
}

func TestSliceProfile(t *testing.T) {
	m, err := Build(sampleTrace(), Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Slice 0: a0 run (1), a1 run (1), b0 idle → run mean = 2/3.
	prof := m.SliceProfile(0)
	if math.Abs(prof[0]-2.0/3) > 1e-12 {
		t.Errorf("run profile at slice 0 = %g, want 2/3", prof[0])
	}
	if math.Abs(prof[1]) > 1e-12 {
		t.Errorf("wait profile at slice 0 = %g, want 0", prof[1])
	}
}

func TestResourceProfile(t *testing.T) {
	m, err := Build(sampleTrace(), Options{Slices: 10})
	if err != nil {
		t.Fatal(err)
	}
	// a0: 5s run, 5s wait over 10s.
	prof := m.ResourceProfile(0)
	if math.Abs(prof[0]-0.5) > 1e-12 || math.Abs(prof[1]-0.5) > 1e-12 {
		t.Errorf("a0 profile = %v, want [0.5 0.5]", prof)
	}
	// b0: 0 run, 7.5s wait.
	prof = m.ResourceProfile(2)
	if math.Abs(prof[0]) > 1e-12 || math.Abs(prof[1]-0.75) > 1e-12 {
		t.Errorf("b0 profile = %v, want [0 0.75]", prof)
	}
}

func TestValidateCatchesOverfull(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"r"})
	sl, _ := timeslice.New(0, 1, 1)
	m := NewEmpty(h, sl, []string{"x", "y"})
	m.AddD(0, 0, 0, 0.7)
	m.AddD(1, 0, 0, 0.7)
	if err := m.Validate(1e-9); err == nil {
		t.Error("overfull microscopic area accepted")
	}
}

func TestValidateCatchesNegative(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"r"})
	sl, _ := timeslice.New(0, 1, 1)
	m := NewEmpty(h, sl, []string{"x"})
	m.AddD(0, 0, 0, -0.5)
	if err := m.Validate(1e-9); err == nil {
		t.Error("negative duration accepted")
	}
}

// streamSource adapts an in-memory trace to the EventSource interface.
type streamSource struct {
	tr *trace.Trace
	i  int
}

func (s *streamSource) Resources() []string        { return s.tr.Resources }
func (s *streamSource) States() []string           { return s.tr.States }
func (s *streamSource) Window() (float64, float64) { return s.tr.Window() }
func (s *streamSource) Next(ev *trace.Event) error {
	if s.i >= len(s.tr.Events) {
		return io.EOF
	}
	*ev = s.tr.Events[s.i]
	s.i++
	return nil
}

func TestBuildStreamMatchesBuild(t *testing.T) {
	tr := sampleTrace()
	m1, err := Build(tr, Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildStream(&streamSource{tr: tr}, Options{Slices: 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < m1.NumStates(); x++ {
		for s := 0; s < m1.NumResources(); s++ {
			for ti := 0; ti < 8; ti++ {
				if a, b := m1.D(x, s, ti), m2.D(x, s, ti); math.Abs(a-b) > 1e-12 {
					t.Fatalf("D(%d,%d,%d): in-memory %g vs stream %g", x, s, ti, a, b)
				}
			}
		}
	}
}

func TestBuildStreamRejectsBadEvents(t *testing.T) {
	tr := sampleTrace()
	tr.Events = append(tr.Events, trace.Event{Resource: 42, State: 0, Start: 0, End: 1})
	if _, err := BuildStream(&streamSource{tr: tr}, Options{Slices: 4}); err == nil {
		t.Error("stream with unknown resource accepted")
	}
}

// TestConservationProperty: total described time equals total clipped event
// time for random traces.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.New([]string{"A/a", "A/b", "B/c"}, []string{"x", "y", "z"})
		tr.Start, tr.End = 0, 20
		for i := 0; i < 50; i++ {
			start := rng.Float64() * 19
			end := start + rng.Float64()
			tr.Add(trace.ResourceID(rng.Intn(3)), trace.StateID(rng.Intn(3)), start, end)
		}
		m, err := Build(tr, Options{Slices: 1 + rng.Intn(29)})
		if err != nil {
			return false
		}
		want := tr.ComputeStats().BusyTime
		return math.Abs(m.TotalTime()-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
