package microscopic

import (
	"math/rand"
	"os"
	"testing"

	"ocelotl/internal/eventstore"
)

// keptDiskReslicer builds a disk-backed index with a durable store file
// and returns the reslicer and the store path.
func keptDiskReslicer(t *testing.T, rng *rand.Rand) (*Reslicer, string) {
	t.Helper()
	tr := randomTrace(rng, 6, 900, 25)
	opt := IndexOptions{
		Mode:      IndexDisk,
		Dir:       t.TempDir(),
		KeepStore: true,
		Store:     eventstore.Options{TargetChunkEvents: 32},
	}
	r, err := NewReslicerIndexed(&traceSource{tr: tr}, opt)
	if err != nil {
		t.Fatalf("NewReslicerIndexed(disk, keep): %v", err)
	}
	path := r.StorePath()
	if path == "" {
		t.Fatal("disk reslicer reports no store path")
	}
	return r, path
}

// TestReopenedStoreBitIdentical is the restart contract: a reslicer
// reopened from the sealed store file produces models bit-identical to
// the one that built it, across builds, pans, and zooms.
func TestReopenedStoreBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	built, path := keptDiskReslicer(t, rng)
	defer built.Close()

	// KeepStore means Close leaves the file; reopen works on a live file
	// too (simulating scrub or a second boot against the same sidecar).
	reopened, err := OpenReslicerStore(path, IndexOptions{KeepStore: true})
	if err != nil {
		t.Fatalf("OpenReslicerStore: %v", err)
	}
	defer reopened.Close()

	if built.NumEvents() != reopened.NumEvents() {
		t.Fatalf("event counts %d (built) vs %d (reopened)", built.NumEvents(), reopened.NumEvents())
	}
	if got, want := reopened.IndexKind(), "disk"; got != want {
		t.Fatalf("IndexKind = %q, want %q", got, want)
	}
	bs, be := built.TraceWindow()
	rs, re := reopened.TraceWindow()
	if bs != rs || be != re {
		t.Fatalf("trace windows diverge: [%g,%g] vs [%g,%g]", bs, be, rs, re)
	}

	mA, err := built.Build(Options{Slices: 14})
	if err != nil {
		t.Fatal(err)
	}
	mB, err := reopened.Build(Options{Slices: 14})
	if err != nil {
		t.Fatalf("reopened Build: %v", err)
	}
	modelsBitIdentical(t, mB, mA, "reopened initial build")

	for step := 0; step < 20; step++ {
		var ovA, ovB SliceOverlap
		switch rng.Intn(3) {
		case 0:
			k := rng.Intn(9) - 4
			mA, ovA = mustShift(t, built, mA, k)
			mB, ovB, err = reopened.Shift(mB, k)
		case 1:
			lo := rng.Intn(10)
			hi := lo + 1 + rng.Intn(13-lo)
			mA, ovA, err = built.Zoom(mA, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			mB, ovB, err = reopened.Zoom(mB, lo, hi)
		default:
			lo := rng.Float64() * 20
			hi := lo + 1 + rng.Float64()*10
			mA, ovA, err = built.Window(mA, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			mB, ovB, err = reopened.Window(mB, lo, hi)
		}
		if err != nil {
			t.Fatalf("step %d: reopened op: %v", step, err)
		}
		if ovA != ovB {
			t.Fatalf("step %d: overlaps diverge: %+v vs %+v", step, ovA, ovB)
		}
		modelsBitIdentical(t, mB, mA, "reopened after step")
	}
}

// TestKeepStoreSurvivesClose: with KeepStore the file outlives the
// reslicer (the durable-sidecar mode); without it Close removes the file
// (the load-time-temporary mode, unchanged).
func TestKeepStoreSurvivesClose(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	kept, path := keptDiskReslicer(t, rng)
	if err := kept.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("KeepStore store vanished on Close: %v", err)
	}

	reopened, err := OpenReslicerStore(path, IndexOptions{})
	if err != nil {
		t.Fatalf("OpenReslicerStore after Close: %v", err)
	}
	if n, err := reopened.VerifyIndex(); err != nil || n == 0 {
		t.Fatalf("VerifyIndex: n=%d err=%v", n, err)
	}
	// Reopened without KeepStore the store is a temporary again.
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("store should be removed when reopened without KeepStore: %v", err)
	}
}

// TestVerifyIndexRAMIsNoop: the scrub path is well-defined for RAM
// backends — nothing on disk, zero chunks verified.
func TestVerifyIndexRAMIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tr := randomTrace(rng, 4, 200, 10)
	r, err := NewReslicer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p := r.StorePath(); p != "" {
		t.Fatalf("RAM reslicer reports store path %q", p)
	}
	if n, err := r.VerifyIndex(); n != 0 || err != nil {
		t.Fatalf("RAM VerifyIndex: n=%d err=%v", n, err)
	}
}
