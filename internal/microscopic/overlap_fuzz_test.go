package microscopic

import (
	"math"
	"testing"

	"ocelotl/internal/timeslice"
)

// These fuzzers pin the window arithmetic every reuse decision rides on
// (the serving cache, Input.Update's overlap verification, the CLI replay)
// against brute-force oracles: ShiftOverlap against literal index
// enumeration, GridOverlap against bit-exact slice-boundary comparison.
// The seed corpus lives under testdata/fuzz; CI runs each fuzzer briefly
// (-fuzztime=10s) as a smoke pass.

// FuzzShiftOverlap checks the k-pan overlap of a |T|-slice window against
// an integer oracle: new slice j shows old slice j+k, so the shared
// indices are exactly those with both j and j+k in [0, T).
func FuzzShiftOverlap(f *testing.F) {
	f.Add(30, 3)
	f.Add(30, -3)
	f.Add(10, 0)
	f.Add(10, 10)
	f.Add(10, -10)
	f.Add(1, 1)
	f.Add(7, -6)
	f.Add(0, 5)
	f.Fuzz(func(t *testing.T, T, k int) {
		if T < 0 || T > 2048 {
			t.Skip("oracle loops over T")
		}
		ov := ShiftOverlap(T, k)

		// Oracle: enumerate the shared indices in int64 (j+k must not
		// wrap for extreme fuzzed k).
		wantW := 0
		firstOld, firstNew := -1, -1
		for j := 0; j < T; j++ {
			old := int64(j) + int64(k)
			if old >= 0 && old < int64(T) {
				if wantW == 0 {
					firstOld, firstNew = int(old), j
				}
				wantW++
			}
		}

		if ov.W != wantW {
			t.Fatalf("ShiftOverlap(%d, %d).W = %d, oracle says %d", T, k, ov.W, wantW)
		}
		if wantW == 0 {
			if ov != (SliceOverlap{}) {
				t.Fatalf("ShiftOverlap(%d, %d) = %+v, want the zero overlap", T, k, ov)
			}
			return
		}
		if ov.OldLo != firstOld || ov.NewLo != firstNew {
			t.Fatalf("ShiftOverlap(%d, %d) = %+v, oracle says OldLo=%d NewLo=%d", T, k, ov, firstOld, firstNew)
		}
		if got := ov.Shift(); got != k {
			t.Fatalf("ShiftOverlap(%d, %d).Shift() = %d, want k back", T, k, got)
		}
		for i := 0; i < ov.W; i++ {
			oldI, newI := ov.OldLo+i, ov.NewLo+i
			if oldI < 0 || oldI >= T || newI < 0 || newI >= T {
				t.Fatalf("ShiftOverlap(%d, %d) maps out of range at i=%d: old %d, new %d", T, k, i, oldI, newI)
			}
			if oldI-newI != k {
				t.Fatalf("ShiftOverlap(%d, %d) pair %d is off-diagonal: old %d, new %d", T, k, i, oldI, newI)
			}
		}
	})
}

// sanesSlicerParams bounds the fuzzed window parameters to a regime where
// the float grid is non-degenerate: finite, positive span, and magnitudes
// where base + off·w cannot absorb or overflow (the engine never sees
// windows outside this regime — trace times are seconds-scale floats).
func saneSlicerParams(start, span float64, n int) bool {
	return n >= 1 && n <= 256 &&
		!math.IsNaN(start) && !math.IsInf(start, 0) && math.Abs(start) <= 1e12 &&
		!math.IsNaN(span) && span >= 1e-9 && span <= 1e12
}

// FuzzGridOverlap fuzzes two windows — one derived from the other by an
// on-grid pan, one rebuilt independently — and checks GridOverlap both
// ways against the bit-exact boundary oracle:
//
//   - soundness (any pair): every slice pair the overlap claims shared
//     must have bit-identical boundary floats, because Input.Update will
//     copy matrix cells across on that promise;
//   - completeness (on-grid pair): a Shift-derived window must report
//     exactly the ShiftOverlap of its pan distance — the incremental path
//     must never degrade a legal pan to a rebuild.
func FuzzGridOverlap(f *testing.F) {
	f.Add(0.0, 10.0, 30, 0, 3, 0.0, 10.0, 30)
	f.Add(0.0, 10.0, 30, 2, -5, 0.0, 7.5, 30)
	f.Add(-4.25, 1.5, 7, -3, 11, -4.25, 1.5, 7)
	f.Add(1e9, 0.125, 64, 5, 5, 1e9, 0.125, 64)
	f.Add(0.1, 3.3, 10, 1, 2, 0.1, 3.3, 11)
	f.Fuzz(func(t *testing.T, start, span float64, n, kA, kB int, start2, span2 float64, n2 int) {
		if !saneSlicerParams(start, span, n) || !saneSlicerParams(start2, span2, n2) {
			t.Skip("degenerate window")
		}
		if kA < -(1<<20) || kA > 1<<20 || kB < -(1<<20) || kB > 1<<20 {
			t.Skip("pan distance out of the engine's regime")
		}
		base, err := timeslice.New(start, start+span, n)
		if err != nil {
			t.Skip(err)
		}
		old, new := base.Shift(kA), base.Shift(kB)

		// On-grid pair: soundness and completeness.
		ov := GridOverlap(old, new)
		want := ShiftOverlap(n, kB-kA)
		if ov != want {
			t.Fatalf("GridOverlap(shift %d, shift %d) = %+v, want ShiftOverlap(%d, %d) = %+v",
				kA, kB, ov, n, kB-kA, want)
		}
		assertOverlapSound(t, old, new, ov)

		// Independently built window: soundness only — GridOverlap is
		// allowed (required, even) to reject close-but-off-grid windows,
		// but anything it does claim must be bit-exact.
		other, err := timeslice.New(start2, start2+span2, n2)
		if err != nil {
			t.Skip(err)
		}
		assertOverlapSound(t, old, other, GridOverlap(old, other))
	})
}

// assertOverlapSound checks every slice pair an overlap claims shared has
// bit-identical boundaries in the two windows.
func assertOverlapSound(t *testing.T, old, new timeslice.Slicer, ov SliceOverlap) {
	t.Helper()
	if !ov.Shared() {
		return
	}
	if ov.OldLo < 0 || ov.NewLo < 0 || ov.OldLo+ov.W > old.N || ov.NewLo+ov.W > new.N {
		t.Fatalf("overlap %+v out of range for |T| = %d/%d", ov, old.N, new.N)
	}
	for i := 0; i < ov.W; i++ {
		oLo, oHi := old.Bounds(ov.OldLo + i)
		nLo, nHi := new.Bounds(ov.NewLo + i)
		if oLo != nLo || oHi != nHi {
			t.Fatalf("overlap %+v claims old slice %d == new slice %d, but bounds differ: [%v,%v) vs [%v,%v)",
				ov, ov.OldLo+i, ov.NewLo+i, oLo, oHi, nLo, nHi)
		}
	}
}
