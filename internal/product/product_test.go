package product

import (
	"math"
	"math/rand"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/hierarchy"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/timeslice"
)

func randomModel(t *testing.T, seed int64, T int) *microscopic.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h, err := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1"})
	if err != nil {
		t.Fatal(err)
	}
	sl, _ := timeslice.New(0, float64(T), T)
	m := microscopic.NewEmpty(h, sl, []string{"u", "v"})
	for s := 0; s < 4; s++ {
		for ti := 0; ti < T; ti++ {
			a := rng.Float64()
			m.AddD(0, s, ti, a)
			m.AddD(1, s, ti, rng.Float64()*(1-a))
		}
	}
	return m
}

func TestProductPartitionIsValid(t *testing.T) {
	m := randomModel(t, 1, 6)
	agg := New(m)
	for _, p := range []float64{0, 0.3, 0.7, 1} {
		pt, err := agg.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(m.H, m.NumSlices()); err != nil {
			t.Errorf("p=%v: invalid product partition: %v", p, err)
		}
	}
}

func TestProductIsCartesian(t *testing.T) {
	m := randomModel(t, 2, 5)
	agg := New(m)
	nodes, err := agg.Spatial.Nodes(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := agg.Temporal.Intervals(0.5)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := agg.Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(pt.Areas), len(nodes)*len(ivs); got != want {
		t.Errorf("|P(S×T)| = %d, want |P(S)|·|P(T)| = %d", got, want)
	}
}

// TestCoreDominatesProduct verifies the paper's §III.D claim: the true
// spatiotemporal optimum achieves a criterion at least as good as the
// product of the two unidimensional optima, at every p.
func TestCoreDominatesProduct(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := randomModel(t, seed, 6)
		ca := core.NewInput(m, core.Options{})
		pa := New(m)
		for _, p := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
			prodPt, err := pa.Evaluate(ca, p)
			if err != nil {
				t.Fatal(err)
			}
			corePt, err := ca.NewSolver().Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if corePt.PIC < prodPt.PIC-1e-9*(1+math.Abs(prodPt.PIC)) {
				t.Errorf("seed %d p=%v: core pIC %.9f < product pIC %.9f", seed, p, corePt.PIC, prodPt.PIC)
			}
		}
	}
}

// TestCoreStrictlyBeatsProductOnCrossPattern builds the paper's motivating
// pattern (Fig. 3.d): a trace whose structure cannot be expressed as a
// Cartesian product. The core algorithm must strictly beat the baseline.
func TestCoreStrictlyBeatsProductOnCrossPattern(t *testing.T) {
	h, _ := hierarchy.FromPaths([]string{"A/a0", "A/a1", "B/b0", "B/b1"})
	sl, _ := timeslice.New(0, 4, 4)
	m := microscopic.NewEmpty(h, sl, []string{"u"})
	// Cluster A: homogeneous in space, phase change at t=2.
	// Cluster B: constant in time, but differs per resource.
	for ti := 0; ti < 4; ti++ {
		v := 0.2
		if ti >= 2 {
			v = 0.8
		}
		m.AddD(0, 0, ti, v)
		m.AddD(0, 1, ti, v)
		m.AddD(0, 2, ti, 0.35)
		m.AddD(0, 3, ti, 0.65)
	}
	ca := core.NewInput(m, core.Options{})
	pa := New(m)
	p := 0.45
	prodPt, err := pa.Evaluate(ca, p)
	if err != nil {
		t.Fatal(err)
	}
	corePt, err := ca.NewSolver().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(corePt.PIC > prodPt.PIC+1e-9) {
		t.Errorf("core pIC %.9f does not strictly beat product %.9f on a cross pattern", corePt.PIC, prodPt.PIC)
	}
	// The optimal partition here needs genuinely spatiotemporal areas:
	// cluster A cut in time, cluster B cut in space.
	if corePt.NumAreas() >= prodPt.NumAreas() && corePt.Loss >= prodPt.Loss {
		t.Errorf("core partition (areas=%d, loss=%g) not better shaped than product (areas=%d, loss=%g)",
			corePt.NumAreas(), corePt.Loss, prodPt.NumAreas(), prodPt.Loss)
	}
}

func TestEvaluatePopulatesMeasures(t *testing.T) {
	m := randomModel(t, 7, 4)
	ca := core.NewInput(m, core.Options{})
	pt, err := New(m).Evaluate(ca, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Gain == 0 && pt.Loss == 0 {
		t.Error("Evaluate left gain/loss empty on a random model")
	}
	wantPIC := 0.5*pt.Gain - 0.5*pt.Loss
	if math.Abs(pt.PIC-wantPIC) > 1e-9 {
		t.Errorf("PIC = %g, want %g", pt.PIC, wantPIC)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	m := randomModel(t, 8, 3)
	if _, err := New(m).Run(math.NaN()); err == nil {
		t.Error("NaN p accepted")
	}
}
