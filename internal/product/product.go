// Package product implements the "spatial-and-temporal" baseline of paper
// §III.D (Fig. 3.c): the Cartesian product of the two unidimensional
// optimal partitions. The spatial algorithm runs on the time-integrated
// trace S×{T}, the temporal algorithm on the space-averaged trace {S}×T,
// and the spatiotemporal partition is P(S)×P(T).
//
// The paper shows this baseline is doubly limited: each 1-D algorithm
// ignores the other dimension, and H(S)×I(T) products cannot express many
// spatiotemporal patterns — which is exactly what the core algorithm fixes.
// This package exists to reproduce that comparison.
package product

import (
	"ocelotl/internal/core"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/partition"
	"ocelotl/internal/spatial"
	"ocelotl/internal/temporal"
)

// Aggregator combines the two 1-D aggregators over one model.
type Aggregator struct {
	Model    *microscopic.Model
	Spatial  *spatial.Aggregator
	Temporal *temporal.Aggregator
}

// New builds both unidimensional aggregators.
func New(m *microscopic.Model) *Aggregator {
	return &Aggregator{Model: m, Spatial: spatial.New(m), Temporal: temporal.New(m)}
}

// Run computes P(S) and P(T) independently at ratio p and returns their
// Cartesian product as a spatiotemporal partition. The partition's Gain,
// Loss and PIC fields are left zero; use core.Input.EvaluatePartition
// (or Evaluate below) to score it against the full microscopic model —
// scoring is deliberately separated because the product's own 1-D
// objectives are not comparable to the 2-D criterion.
func (a *Aggregator) Run(p float64) (*partition.Partition, error) {
	nodes, err := a.Spatial.Nodes(p)
	if err != nil {
		return nil, err
	}
	intervals, err := a.Temporal.Intervals(p)
	if err != nil {
		return nil, err
	}
	pt := &partition.Partition{P: p}
	for _, n := range nodes {
		for _, iv := range intervals {
			pt.Areas = append(pt.Areas, partition.Area{Node: n, I: iv[0], J: iv[1]})
		}
	}
	pt.Sort()
	return pt, nil
}

// Evaluate runs the product baseline at p and scores the resulting
// partition with the full microscopic criterion via the provided core
// input (which must wrap the same model). It returns the scored partition.
func (a *Aggregator) Evaluate(in *core.Input, p float64) (*partition.Partition, error) {
	pt, err := a.Run(p)
	if err != nil {
		return nil, err
	}
	pt.Gain, pt.Loss, pt.PIC = in.EvaluatePartition(pt, p)
	return pt, nil
}
