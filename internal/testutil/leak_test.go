package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSettlesToCatchesALeak parks a goroutine past the check window and
// verifies the guard reports the excess instead of settling.
func TestSettlesToCatchesALeak(t *testing.T) {
	base := runtime.NumGoroutine()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	extra, ok := SettlesTo(base, 50*time.Millisecond)
	if ok || extra < 1 {
		t.Errorf("SettlesTo = (%d, %v) with a parked goroutine, want a reported leak", extra, ok)
	}
	close(release)
	<-done
}

// TestSettlesToToleratesTransientGoroutines spawns goroutines that exit on
// their own; the guard must wait them out rather than flag them.
func TestSettlesToToleratesTransientGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		go time.Sleep(20 * time.Millisecond)
	}
	if extra, ok := SettlesTo(base, 5*time.Second); !ok {
		t.Errorf("SettlesTo reported %d leaked goroutines for self-terminating work", extra)
	}
}

// TestGoroutineDumpNamesSuspects checks the dump carries the parked
// goroutine's frames (the failure message must name the culprit).
func TestGoroutineDumpNamesSuspects(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go parkForDump(release, done)
	// Give the goroutine a beat to park.
	time.Sleep(10 * time.Millisecond)
	dump := GoroutineDump()
	if !strings.Contains(dump, "parkForDump") {
		t.Errorf("goroutine dump does not name the parked goroutine:\n%s", dump)
	}
	// ... and filters the harness's own goroutines (this test's runner),
	// so a failure message points at suspects, not scaffolding.
	if strings.Contains(dump, "testing.tRunner") {
		t.Errorf("goroutine dump includes test-harness scaffolding:\n%s", dump)
	}
	close(release)
	<-done
}

func parkForDump(release, done chan struct{}) {
	defer close(done)
	<-release
}

// TestVerifyNoLeaksPasses is the happy path: a test that spawns and joins
// everything must come out clean under the armed guard.
func TestVerifyNoLeaksPasses(t *testing.T) {
	VerifyNoLeaks(t)
	done := make(chan struct{})
	go close(done)
	<-done
}
