// Package testutil holds shared test infrastructure. Its centerpiece is
// the goroutine-leak guard: the cancellation paths through the engine and
// the serving layer promise to join every goroutine they spawn, and that
// promise is only worth something if the test suites that exercise them
// fail when it is broken.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSettleTimeout bounds how long the guard waits for goroutines spawned
// during a test to finish. Legitimate shutdown (pool drains, http client
// teardown, cond broadcasts) takes microseconds; five seconds keeps slow
// -race CI runs from flaking without masking a real leak.
const leakSettleTimeout = 5 * time.Second

// VerifyNoLeaks arms a goroutine-leak guard for the running test: it
// snapshots the goroutine count now and, at cleanup time, fails the test
// if the count has not settled back to the baseline. Call it FIRST in the
// test body — cleanups run last-registered-first, so guards registered
// before a server/pool is set up check only after that server's own
// cleanup has torn it down.
//
// The check retries until leakSettleTimeout because goroutine exits are
// asynchronous (a drained worker is "done" before the scheduler reaps
// it); a leak is only reported when the excess persists, and the failure
// message carries a full stack dump of every live goroutine so the
// culprit is named, not just counted.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		t.Helper()
		if extra, ok := SettlesTo(base, leakSettleTimeout); !ok {
			t.Errorf("goroutine leak: %d goroutines above the test's baseline of %d after %v; live stacks:\n%s",
				extra, base, leakSettleTimeout, GoroutineDump())
		}
	})
}

// SettlesTo polls until the live goroutine count drops to at most base or
// the timeout elapses, reporting the final excess and whether it settled.
// Exposed (rather than folded into VerifyNoLeaks) so the guard's own tests
// can assert both outcomes without failing themselves.
func SettlesTo(base int, timeout time.Duration) (extra int, ok bool) {
	deadline := time.Now().Add(timeout)
	for {
		extra = runtime.NumGoroutine() - base
		if extra <= 0 {
			return extra, true
		}
		if time.Now().After(deadline) {
			return extra, false
		}
		time.Sleep(time.Millisecond)
	}
}

// GoroutineDump returns the stacks of every live goroutine, with the
// runtime/testing scaffolding goroutines filtered out so a failure message
// points at suspects rather than the harness.
func GoroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out strings.Builder
	for i, g := range strings.Split(string(buf[:n]), "\n\n") {
		if harnessGoroutine(g) {
			continue
		}
		fmt.Fprintf(&out, "--- goroutine %d ---\n%s\n", i, g)
	}
	return out.String()
}

// harnessGoroutine reports stacks that belong to the test harness itself,
// never to code under test: goroutines with a testing.* frame on their
// call stack (the test runner, the main goroutine parked in
// testing.(*M).Run, parallel-test bookkeeping). Frames appear at the
// start of a line in runtime.Stack output; goroutines *created by* code
// under test mention the creator only in the trailing "created by" line,
// which names the creating function, not testing, so leaks are kept.
func harnessGoroutine(stack string) bool {
	for _, line := range strings.Split(stack, "\n") {
		if strings.HasPrefix(line, "testing.") {
			return true
		}
	}
	return false
}
