package eventstore

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

type ev struct {
	series uint32
	state  int32
	start  float64
	end    float64
}

func buildStore(t *testing.T, events []ev, opt Options) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.oces")
	meta := Meta{
		Series: []string{"job.0/rank.0", "job.0/rank.1", "job.0/rank.2", "job.0/rank.3"},
		States: []string{"compute", "wait", "send"},
		Start:  0, End: 100,
	}
	b, err := Create(path, meta, opt)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, e := range events {
		if err := b.Add(e.series, e.state, e.start, e.end); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func randomEvents(rng *rand.Rand, n int, series uint32) []ev {
	events := make([]ev, n)
	for i := range events {
		start := rng.Float64() * 100
		events[i] = ev{
			series: uint32(rng.Intn(int(series))),
			state:  int32(rng.Intn(3)),
			start:  start,
			end:    start + rng.Float64()*5,
		}
	}
	return events
}

// reference reproduces the contract order in RAM: stable sort by
// (series, start), then the per-event window filters.
func reference(events []ev, series uint32, lo, hi float64) []ev {
	var got []ev
	sorted := append([]ev(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].series != sorted[j].series {
			return sorted[i].series < sorted[j].series
		}
		return sorted[i].start < sorted[j].start
	})
	for _, e := range sorted {
		if e.series == series && e.start < hi && e.end > lo {
			got = append(got, e)
		}
	}
	return got
}

func collect(t *testing.T, s *Store, series uint32, lo, hi float64) []ev {
	t.Helper()
	var got []ev
	err := s.ForEachOverlapping(series, lo, hi, func(state int32, start, end float64) {
		got = append(got, ev{series: series, state: state, start: start, end: end})
	})
	if err != nil {
		t.Fatalf("ForEachOverlapping: %v", err)
	}
	return got
}

func sameEvents(a, b []ev) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundTripMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	events := randomEvents(rng, 5000, 4)
	// Small chunks so windows span several; in-RAM sort path (no spill).
	s := buildStore(t, events, Options{TargetChunkEvents: 64})
	if s.NumEvents() != 5000 {
		t.Fatalf("NumEvents = %d, want 5000", s.NumEvents())
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 100
		hi := lo + rng.Float64()*30
		series := uint32(rng.Intn(4))
		got := collect(t, s, series, lo, hi)
		want := reference(events, series, lo, hi)
		if !sameEvents(got, want) {
			t.Fatalf("series %d window [%g,%g): got %d events, want %d", series, lo, hi, len(got), len(want))
		}
	}
	// Full-window read returns everything.
	total := 0
	for series := uint32(0); series < 4; series++ {
		total += len(collect(t, s, series, math.Inf(-1), math.Inf(1)))
	}
	if total != 5000 {
		t.Fatalf("full read returned %d events, want 5000", total)
	}
}

// TestSpilledBuildIdenticalToBuffered forces the external sort (tiny
// sort buffer → many runs) and checks the merged order equals the pure
// in-RAM stable sort, including ties.
func TestSpilledBuildIdenticalToBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	events := randomEvents(rng, 3000, 3)
	// Inject duplicate (series, start) pairs so tie order is exercised:
	// the duplicates carry distinct states to make swaps visible.
	for i := 0; i < 200; i++ {
		j := rng.Intn(len(events))
		dup := events[j]
		dup.state = (dup.state + 1) % 3
		events = append(events, dup)
	}
	buffered := buildStore(t, events, Options{TargetChunkEvents: 128})
	spilled := buildStore(t, events, Options{TargetChunkEvents: 128, SortBufferEvents: 97})
	for series := uint32(0); series < 3; series++ {
		a := collect(t, buffered, series, math.Inf(-1), math.Inf(1))
		b := collect(t, spilled, series, math.Inf(-1), math.Inf(1))
		if !sameEvents(a, b) {
			t.Fatalf("series %d: spilled build order diverges from buffered (%d vs %d events)", series, len(a), len(b))
		}
	}
}

func TestWindowReadsOnlyOverlappingChunks(t *testing.T) {
	// One series, events at regular positions: chunk time-ranges tile the
	// window, so a narrow read must touch ~1 chunk.
	events := make([]ev, 10000)
	for i := range events {
		at := float64(i) / 100
		events[i] = ev{series: 0, state: 0, start: at, end: at + 0.005}
	}
	s := buildStore(t, events, Options{TargetChunkEvents: 500, ChunkCacheBytes: -1})
	if n := s.SeriesChunks(0); n != 20 {
		t.Fatalf("SeriesChunks = %d, want 20", n)
	}
	got := collect(t, s, 0, 50, 51)
	if len(got) == 0 {
		t.Fatal("narrow window returned no events")
	}
	st := s.ReadStats()
	if st.ChunksRead > 2 {
		t.Fatalf("narrow window read %d chunks, want ≤ 2 of 20", st.ChunksRead)
	}
	if st.BytesRead <= 0 {
		t.Fatalf("BytesRead = %d after a disk read", st.BytesRead)
	}
}

func TestChunkCacheHitsAndEviction(t *testing.T) {
	events := make([]ev, 4000)
	for i := range events {
		at := float64(i) / 40
		events[i] = ev{series: 0, state: 0, start: at, end: at + 0.01}
	}
	s := buildStore(t, events, Options{TargetChunkEvents: 100})
	collect(t, s, 0, 10, 12)
	first := s.ReadStats()
	collect(t, s, 0, 10, 12)
	second := s.ReadStats()
	if second.ChunksRead != first.ChunksRead {
		t.Fatalf("repeat read hit disk: %d → %d chunk reads", first.ChunksRead, second.ChunksRead)
	}
	if second.CacheHits <= first.CacheHits {
		t.Fatalf("repeat read recorded no cache hits")
	}
	if s.OpenChunkBytes() <= 0 {
		t.Fatal("OpenChunkBytes = 0 with chunks cached")
	}

	// A tiny budget keeps the cache bounded under a scan of every chunk.
	tiny := buildStore(t, events, Options{TargetChunkEvents: 100, ChunkCacheBytes: 4000})
	collect(t, tiny, 0, math.Inf(-1), math.Inf(1))
	if got := tiny.OpenChunkBytes(); got > 2*4000 {
		t.Fatalf("OpenChunkBytes = %d, budget 4000", got)
	}
}

func TestEmptyStore(t *testing.T) {
	s := buildStore(t, nil, Options{})
	if s.NumEvents() != 0 || s.NumChunks() != 0 {
		t.Fatalf("empty store: %d events, %d chunks", s.NumEvents(), s.NumChunks())
	}
	if got := collect(t, s, 0, 0, 100); len(got) != 0 {
		t.Fatalf("empty store returned %d events", len(got))
	}
}

func TestMetaRoundTrip(t *testing.T) {
	s := buildStore(t, []ev{{series: 1, state: 2, start: 1, end: 2}}, Options{})
	m := s.Meta()
	if len(m.Series) != 4 || m.Series[1] != "job.0/rank.1" {
		t.Fatalf("Series = %v", m.Series)
	}
	if len(m.States) != 3 || m.States[2] != "send" {
		t.Fatalf("States = %v", m.States)
	}
	if m.Start != 0 || m.End != 100 || m.NumEvents != 1 {
		t.Fatalf("window/count = %g/%g/%d", m.Start, m.End, m.NumEvents)
	}
}

func TestRemoveOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tmp.oces")
	b, _ := Create(path, Meta{Series: []string{"r"}, States: []string{"s"}}, Options{RemoveOnClose: true})
	b.Add(0, 0, 1, 2)
	s, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("store file survived RemoveOnClose: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestAbortRemovesRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ab.oces")
	b, _ := Create(path, Meta{Series: []string{"r"}, States: []string{"s"}}, Options{SortBufferEvents: 10})
	for i := 0; i < 100; i++ {
		b.Add(0, 0, float64(i), float64(i)+1)
	}
	b.Abort()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("Abort left %d files behind: %v", len(ents), ents)
	}
}

// --- durability edges: every damage mode must classify as IsCorrupt ---

func corruptStorePath(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	s := buildStore(t, randomEvents(rng, 2000, 4), Options{TargetChunkEvents: 128})
	path := s.Path()
	s.Close()
	return path
}

func mustFailCorrupt(t *testing.T, path, what string) {
	t.Helper()
	s, err := Open(path, Options{})
	if err == nil {
		// Open validated; the damage may be inside a chunk payload.
		defer s.Close()
		for series := uint32(0); series < 4; series++ {
			if err = s.ForEachOverlapping(series, math.Inf(-1), math.Inf(1), func(int32, float64, float64) {}); err != nil {
				break
			}
		}
	}
	if err == nil {
		t.Fatalf("%s: no error", what)
	}
	if !IsCorrupt(err) {
		t.Fatalf("%s: error not IsCorrupt-classifiable: %v", what, err)
	}
}

func TestTruncatedStoreIsCorrupt(t *testing.T) {
	path := corruptStorePath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{len(data) - 1, len(data) / 2, headerSize + 10, 4} {
		if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		mustFailCorrupt(t, path, "truncation")
	}
}

func TestBadFooterChecksumIsCorrupt(t *testing.T) {
	path := corruptStorePath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one directory byte: the footer CRC over dir+meta must catch it.
	data[len(data)-footerSize-200] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mustFailCorrupt(t, path, "flipped directory byte")
}

func TestVersionMismatchIsCorrupt(t *testing.T) {
	path := corruptStorePath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99 // version field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mustFailCorrupt(t, path, "version mismatch")

	copy(data[:4], "NOPE")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mustFailCorrupt(t, path, "bad magic")
}

func TestFlippedChunkByteIsCorrupt(t *testing.T) {
	path := corruptStorePath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage inside the chunk region (past the header, before the
	// directory): Open succeeds, the read of that chunk must fail loud.
	data[headerSize+50] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mustFailCorrupt(t, path, "flipped chunk byte")
}
