package eventstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The OCES store file, little-endian throughout:
//
//	header   "OCES" + u32 version (1)
//	chunks   delta-encoded event blocks, written (series asc, start asc)
//	directory one fixed 44-byte record per chunk (see chunkRef)
//	meta     series/state tables, window, event count
//	footer   fixed 32 bytes at EOF:
//	           u64 directory offset, u64 directory bytes, u64 meta bytes,
//	           u32 CRC-32 (IEEE) of directory+meta, "OCEF"
//
// Within a chunk each event encodes as three uvarints:
//
//	state | startBits XOR prevStartBits | endBits XOR startBits
//
// Events are sorted by start, so consecutive starts share their sign,
// exponent and high mantissa bits: the XOR is small and the varint
// short (~6 bytes/event on NAS-PB traces vs 20 in the in-RAM index).
// The directory carries each chunk's series, event count, byte extent,
// minimum start, maximum end and payload CRC — enough to prune to the
// chunks overlapping a window without touching their payloads, and to
// fail loud on a flipped byte when one is read.
const (
	storeMagic       = "OCES"
	footerMagic      = "OCEF"
	storeVersion     = 1
	headerSize       = 8  // magic + version
	footerSize       = 32 // dirOff + dirBytes + metaBytes + crc + magic
	chunkRefSize     = 44 // series + count + off + len + minStart + maxEnd + crc
	maxReasonableLen = 1 << 40
)

// chunkRef is one directory entry: where a chunk sits in the file and
// what it covers, so window fills prune without reading payloads.
type chunkRef struct {
	series   uint32
	count    uint32
	off      uint64
	length   uint64
	minStart float64
	maxEnd   float64
	crc      uint32
}

func (c chunkRef) marshal(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], c.series)
	binary.LittleEndian.PutUint32(b[4:], c.count)
	binary.LittleEndian.PutUint64(b[8:], c.off)
	binary.LittleEndian.PutUint64(b[16:], c.length)
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(c.minStart))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(c.maxEnd))
	binary.LittleEndian.PutUint32(b[40:], c.crc)
}

func unmarshalChunkRef(b []byte) chunkRef {
	return chunkRef{
		series:   binary.LittleEndian.Uint32(b[0:]),
		count:    binary.LittleEndian.Uint32(b[4:]),
		off:      binary.LittleEndian.Uint64(b[8:]),
		length:   binary.LittleEndian.Uint64(b[16:]),
		minStart: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		maxEnd:   math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		crc:      binary.LittleEndian.Uint32(b[40:]),
	}
}

// Meta is the store's self-describing header data: the series and state
// tables (for event stores built from traces, series are hierarchy-leaf
// resource paths), the observation window, and the indexed event count.
// A Reslicer can be reconstructed from an open store and its Meta alone.
type Meta struct {
	Series     []string
	States     []string
	Start, End float64
	NumEvents  int64
}

// appendMeta serializes m: u32-counted (u16 length + bytes) string
// tables, two f64s, one u64.
func appendMeta(b []byte, m Meta) ([]byte, error) {
	var err error
	if b, err = appendStrings(b, m.Series); err != nil {
		return nil, err
	}
	if b, err = appendStrings(b, m.States); err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Start))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.End))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.NumEvents))
	return b, nil
}

func appendStrings(b []byte, ss []string) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ss)))
	for _, s := range ss {
		if len(s) > math.MaxUint16 {
			return nil, fmt.Errorf("eventstore: name longer than 64KiB")
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// parseMeta is the inverse of appendMeta; errors name what failed so the
// store's corrupt wrapper can position them.
func parseMeta(b []byte) (Meta, error) {
	var m Meta
	var err error
	if m.Series, b, err = parseStrings(b, "series"); err != nil {
		return m, err
	}
	if m.States, b, err = parseStrings(b, "states"); err != nil {
		return m, err
	}
	if len(b) < 24 {
		return m, fmt.Errorf("meta window truncated")
	}
	m.Start = math.Float64frombits(binary.LittleEndian.Uint64(b[0:]))
	m.End = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	m.NumEvents = int64(binary.LittleEndian.Uint64(b[16:]))
	return m, nil
}

func parseStrings(b []byte, what string) ([]string, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%s table truncated", what)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if n > 100_000_000 {
		return nil, nil, fmt.Errorf("implausible %s count %d", what, n)
	}
	out := make([]string, n)
	for i := range out {
		if len(b) < 2 {
			return nil, nil, fmt.Errorf("%s table truncated", what)
		}
		l := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < l {
			return nil, nil, fmt.Errorf("%s table truncated", what)
		}
		out[i] = string(b[:l])
		b = b[l:]
	}
	return out, b, nil
}

// appendEvent delta-encodes one event onto b and returns the new slice
// plus the start bits to chain the next delta from.
func appendEvent(b []byte, state int32, startBits, prevStartBits, endBits uint64) []byte {
	b = binary.AppendUvarint(b, uint64(uint32(state)))
	b = binary.AppendUvarint(b, startBits^prevStartBits)
	b = binary.AppendUvarint(b, endBits^startBits)
	return b
}

// decodeChunk expands a chunk payload into struct-of-arrays form. count
// is trusted from the (checksummed) directory; payload short-reads are
// decode errors.
func decodeChunk(payload []byte, count int) (starts, ends []float64, states []int32, err error) {
	starts = make([]float64, count)
	ends = make([]float64, count)
	states = make([]int32, count)
	var prevStart uint64
	for i := 0; i < count; i++ {
		st, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("event %d: bad state varint", i)
		}
		payload = payload[n:]
		ds, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("event %d: bad start varint", i)
		}
		payload = payload[n:]
		de, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("event %d: bad end varint", i)
		}
		payload = payload[n:]
		startBits := ds ^ prevStart
		prevStart = startBits
		starts[i] = math.Float64frombits(startBits)
		ends[i] = math.Float64frombits(startBits ^ de)
		states[i] = int32(uint32(st))
	}
	if len(payload) != 0 {
		return nil, nil, nil, fmt.Errorf("%d trailing bytes after %d events", len(payload), count)
	}
	return starts, ends, states, nil
}
