package eventstore

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Builder tuning defaults. 4K events per chunk keeps a 1-slice pan to a
// handful of chunk decodes; a 1M-event sort buffer (24 MiB) bounds build
// RAM regardless of trace size.
const (
	DefaultTargetChunkEvents = 4096
	DefaultSortBufferEvents  = 1 << 20
)

// record is the builder's fixed 24-byte spill format: series, state,
// start bits, end bits, little-endian. Runs of sorted records merge back
// without any per-record allocation.
const recordSize = 24

type record struct {
	series uint32
	state  int32
	start  float64
	end    float64
}

func (r record) marshal(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], r.series)
	binary.LittleEndian.PutUint32(b[4:], uint32(r.state))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.start))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(r.end))
}

func unmarshalRecord(b []byte) record {
	return record{
		series: binary.LittleEndian.Uint32(b[0:]),
		state:  int32(binary.LittleEndian.Uint32(b[4:])),
		start:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		end:    math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
	}
}

// Builder streams events into a store file in bounded memory. Events
// arrive in any order; Add buffers up to Options.SortBufferEvents, each
// overflow spills one stably-sorted run beside the output file, and
// Finish merges the runs (k-way, ties broken by spill order) into
// (series asc, start asc, arrival order) chunks. The merge order is
// byte-for-byte the order a global stable sort of the whole event
// sequence would give — the invariant the bit-identity contract with the
// in-RAM index rests on.
type Builder struct {
	path string
	meta Meta
	opt  Options

	buf  []record
	runs []*os.File // spilled sorted runs, in spill order
	n    int64      // events added
	tmp  string     // in-flight output temp, renamed to path on success

	finished bool
}

// Create starts building a store at path. The directory containing path
// also hosts the temporary spill runs, so spills live on the same
// filesystem as the result. meta.NumEvents is ignored; the builder
// counts.
func Create(path string, meta Meta, opt Options) (*Builder, error) {
	if opt.TargetChunkEvents <= 0 {
		opt.TargetChunkEvents = DefaultTargetChunkEvents
	}
	if opt.SortBufferEvents <= 0 {
		opt.SortBufferEvents = DefaultSortBufferEvents
	}
	return &Builder{path: path, meta: meta, opt: opt}, nil
}

// Add buffers one event, spilling a sorted run if the buffer is full.
func (b *Builder) Add(series uint32, state int32, start, end float64) error {
	b.buf = append(b.buf, record{series: series, state: state, start: start, end: end})
	b.n++
	if len(b.buf) >= b.opt.SortBufferEvents {
		return b.spill()
	}
	return nil
}

// sortBuf stably orders the buffer by (series, start); ties keep arrival
// order, matching the in-RAM index's sort.SliceStable on starts.
func (b *Builder) sortBuf() {
	sort.SliceStable(b.buf, func(i, j int) bool {
		if b.buf[i].series != b.buf[j].series {
			return b.buf[i].series < b.buf[j].series
		}
		return b.buf[i].start < b.buf[j].start
	})
}

func (b *Builder) spill() error {
	b.sortBuf()
	f, err := os.CreateTemp(filepath.Dir(b.path), ".oces-run-*")
	if err != nil {
		return fmt.Errorf("eventstore: spill run: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var rec [recordSize]byte
	for _, r := range b.buf {
		r.marshal(rec[:])
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("eventstore: spill run: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("eventstore: spill run: %w", err)
	}
	b.buf = b.buf[:0]
	b.runs = append(b.runs, f)
	return nil
}

// Abort discards the build: spill runs are removed and nothing is
// written at path.
func (b *Builder) Abort() {
	if b.finished {
		return
	}
	b.finished = true
	for _, f := range b.runs {
		f.Close()
		os.Remove(f.Name())
	}
	b.runs = nil
	b.buf = nil
}

// Finish sorts/merges everything added, writes the store file and opens
// it for reading. The freshly written file goes through the same
// validating Open as any other store, so a Finish that returns nil error
// hands back a store whose checksums have been verified once already.
func (b *Builder) Finish() (*Store, error) {
	if b.finished {
		return nil, fmt.Errorf("eventstore: Finish on finished builder")
	}
	b.finished = true
	defer func() {
		for _, f := range b.runs {
			f.Close()
			os.Remove(f.Name())
		}
		b.runs = nil
	}()

	// The store is built in a temp file beside its final path and only
	// renamed into place after an fsync, so a crash mid-build leaves a
	// `.oces-build-*` temp (swept at startup), never a torn store under
	// the published name that the next boot would trust.
	b.meta.NumEvents = b.n
	out, err := os.CreateTemp(filepath.Dir(b.path), ".oces-build-*")
	if err != nil {
		return nil, err
	}
	b.tmp = out.Name()
	cw := &chunkedWriter{
		w:   bufio.NewWriterSize(out, 1<<18),
		opt: b.opt,
	}
	var hdr [headerSize]byte
	copy(hdr[:4], storeMagic)
	binary.LittleEndian.PutUint32(hdr[4:], storeVersion)
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return nil, b.fail(out, err)
	}
	cw.off = headerSize

	emit := func(r record) error { return cw.add(r) }
	if len(b.runs) == 0 {
		// Everything fit in the buffer: sort in place and emit directly.
		b.sortBuf()
		for _, r := range b.buf {
			if err := emit(r); err != nil {
				return nil, b.fail(out, err)
			}
		}
		b.buf = nil
	} else {
		if len(b.buf) > 0 {
			if err := b.spill(); err != nil {
				return nil, b.fail(out, err)
			}
		}
		if err := mergeRuns(b.runs, emit); err != nil {
			return nil, b.fail(out, err)
		}
	}
	if err := cw.flushChunk(); err != nil {
		return nil, b.fail(out, err)
	}

	dirOff := cw.off
	dirBuf := make([]byte, len(cw.dir)*chunkRefSize)
	for i, c := range cw.dir {
		c.marshal(dirBuf[i*chunkRefSize:])
	}
	metaBuf, err := appendMeta(nil, b.meta)
	if err != nil {
		return nil, b.fail(out, err)
	}
	if _, err := cw.w.Write(dirBuf); err != nil {
		return nil, b.fail(out, err)
	}
	if _, err := cw.w.Write(metaBuf); err != nil {
		return nil, b.fail(out, err)
	}
	crc := crc32.ChecksumIEEE(dirBuf)
	crc = crc32.Update(crc, crc32.IEEETable, metaBuf)
	var ftr [footerSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], dirOff)
	binary.LittleEndian.PutUint64(ftr[8:], uint64(len(dirBuf)))
	binary.LittleEndian.PutUint64(ftr[16:], uint64(len(metaBuf)))
	binary.LittleEndian.PutUint32(ftr[24:], crc)
	copy(ftr[28:], footerMagic)
	if _, err := cw.w.Write(ftr[:]); err != nil {
		return nil, b.fail(out, err)
	}
	if err := cw.w.Flush(); err != nil {
		return nil, b.fail(out, err)
	}
	if err := out.Sync(); err != nil {
		return nil, b.fail(out, err)
	}
	if err := out.Close(); err != nil {
		os.Remove(b.tmp)
		return nil, err
	}
	if err := os.Rename(b.tmp, b.path); err != nil {
		os.Remove(b.tmp)
		return nil, fmt.Errorf("eventstore: publish %s: %w", b.path, err)
	}
	if err := syncDir(filepath.Dir(b.path)); err != nil {
		os.Remove(b.path)
		return nil, err
	}
	s, err := Open(b.path, b.opt)
	if err != nil {
		os.Remove(b.path)
		return nil, err
	}
	return s, nil
}

func (b *Builder) fail(out *os.File, err error) error {
	out.Close()
	os.Remove(b.tmp)
	if _, ok := err.(*CorruptError); ok {
		return err
	}
	return fmt.Errorf("eventstore: write %s: %w", b.path, err)
}

// syncDir fsyncs the directory so the rename that published the store is
// itself durable — without it a crash after Finish can forget the file.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("eventstore: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("eventstore: sync dir %s: %w", dir, err)
	}
	return nil
}

// chunkedWriter packs the sorted event stream into chunks: a chunk holds
// one series and at most TargetChunkEvents events, delta-encoded against
// the previous start within the chunk (each chunk restarts the delta
// chain, so chunks decode independently).
type chunkedWriter struct {
	w   *bufio.Writer
	opt Options
	off uint64
	dir []chunkRef

	payload   []byte
	series    uint32
	count     int
	minStart  float64
	maxEnd    float64
	prevStart uint64
	open      bool
}

func (cw *chunkedWriter) add(r record) error {
	if cw.open && (r.series != cw.series || cw.count >= cw.opt.TargetChunkEvents) {
		if err := cw.flushChunk(); err != nil {
			return err
		}
	}
	startBits := math.Float64bits(r.start)
	if !cw.open {
		cw.open = true
		cw.series = r.series
		cw.count = 0
		cw.minStart = r.start
		cw.maxEnd = math.Inf(-1)
		cw.prevStart = 0
		cw.payload = cw.payload[:0]
	}
	cw.payload = appendEvent(cw.payload, r.state, startBits, cw.prevStart, math.Float64bits(r.end))
	cw.prevStart = startBits
	if r.end > cw.maxEnd {
		cw.maxEnd = r.end
	}
	cw.count++
	return nil
}

func (cw *chunkedWriter) flushChunk() error {
	if !cw.open {
		return nil
	}
	cw.open = false
	ref := chunkRef{
		series:   cw.series,
		count:    uint32(cw.count),
		off:      cw.off,
		length:   uint64(len(cw.payload)),
		minStart: cw.minStart,
		maxEnd:   cw.maxEnd,
		crc:      crc32.ChecksumIEEE(cw.payload),
	}
	if _, err := cw.w.Write(cw.payload); err != nil {
		return err
	}
	cw.off += uint64(len(cw.payload))
	cw.dir = append(cw.dir, ref)
	return nil
}

// runHead is one spill run's cursor in the k-way merge.
type runHead struct {
	r   *bufio.Reader
	rec record
	idx int // spill order; ties resolve to the earliest spill
}

type runHeap []*runHead

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.rec.series != b.rec.series {
		return a.rec.series < b.rec.series
	}
	if a.rec.start != b.rec.start {
		return a.rec.start < b.rec.start
	}
	return a.idx < b.idx
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runHead)) }
func (h *runHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *runHead) next() (bool, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(h.r, rec[:]); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, err
	}
	h.rec = unmarshalRecord(rec[:])
	return true, nil
}

// mergeRuns streams the stably-merged union of the sorted runs to emit.
// Because each run is internally stable and ties across runs resolve to
// the earliest-spilled run, the merged order equals a stable sort of the
// original arrival sequence.
func mergeRuns(runs []*os.File, emit func(record) error) error {
	h := make(runHeap, 0, len(runs))
	for i, f := range runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		rh := &runHead{r: bufio.NewReaderSize(f, 1<<16), idx: i}
		ok, err := rh.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, rh)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		rh := h[0]
		if err := emit(rh.rec); err != nil {
			return err
		}
		ok, err := rh.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}
