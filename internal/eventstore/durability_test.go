package eventstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// listNames returns the names in dir (test helper for debris checks).
func listNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestFinishPublishesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.oces")
	meta := Meta{Series: []string{"r0", "r1"}, States: []string{"s"}, Start: 0, End: 10}
	b, err := Create(path, meta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Add(uint32(i%2), 0, float64(i), float64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	defer s.Close()
	// The published name exists; no build temp or spill run survives.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("published store missing: %v", err)
	}
	for _, name := range listNames(t, dir) {
		if strings.HasPrefix(name, ".oces-build-") || strings.HasPrefix(name, ".oces-run-") {
			t.Fatalf("temp debris after Finish: %s", name)
		}
	}
}

func TestFinishNeverPublishesUnderFinalName(t *testing.T) {
	// Abort after adds: the final path must never have existed, because
	// all writing happens under the temp name until the closing rename.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.oces")
	b, err := Create(path, Meta{Series: []string{"r"}, States: []string{"s"}}, Options{SortBufferEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, e := range randomEvents(rng, 50, 1) {
		if err := b.Add(e.series, e.state, e.start, e.end); err != nil {
			t.Fatal(err)
		}
	}
	b.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted build left something at the final path: %v", err)
	}
}

func TestVerifyChunksCleanStore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := randomEvents(rng, 3000, 4)
	s := buildStore(t, events, Options{TargetChunkEvents: 128})
	n, err := s.VerifyChunks()
	if err != nil {
		t.Fatalf("VerifyChunks on clean store: %v", err)
	}
	if n != s.NumChunks() {
		t.Fatalf("verified %d of %d chunks", n, s.NumChunks())
	}
	// Scrub reads bypass the cache: a second pass re-reads from disk.
	before := s.ReadStats()
	if _, err := s.VerifyChunks(); err != nil {
		t.Fatal(err)
	}
	after := s.ReadStats()
	if after.ChunksRead-before.ChunksRead != int64(s.NumChunks()) {
		t.Fatalf("second VerifyChunks read %d chunks from disk, want %d (cache bypass)",
			after.ChunksRead-before.ChunksRead, s.NumChunks())
	}
	if after.CacheHits != before.CacheHits {
		t.Fatal("VerifyChunks consulted the decoded-chunk cache")
	}
}

func TestVerifyChunksDetectsBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	events := randomEvents(rng, 3000, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.oces")
	meta := Meta{Series: []string{"r0", "r1", "r2", "r3"}, States: []string{"a", "b", "c"}, Start: 0, End: 100}
	b, err := Create(path, meta, Options{TargetChunkEvents: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := b.Add(e.series, e.state, e.start, e.end); err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one bit in the middle of the chunk region (past the header,
	// well before the directory) and reopen: Open succeeds (directory
	// CRC is intact) but the scrub must catch the damaged chunk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+len(data)/3] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after chunk bit flip should succeed (lazy reads): %v", err)
	}
	defer s.Close()
	n, err := s.VerifyChunks()
	if err == nil {
		t.Fatal("VerifyChunks missed a flipped chunk byte")
	}
	if !IsCorrupt(err) {
		t.Fatalf("want corruption, got %T: %v", err, err)
	}
	if n >= s.NumChunks() {
		t.Fatalf("verified count %d with %d chunks and one corrupt", n, s.NumChunks())
	}
}
