package eventstore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"ocelotl/internal/failpoint"
)

// FailpointOpen and FailpointRead name the fault-injection sites of the
// disk index: the head of every store open, and every chunk read that
// misses the decoded-chunk cache. The chaos soak arms them to prove the
// serving layer survives disk faults mid-window-build.
const (
	FailpointOpen = "eventstore/open"
	FailpointRead = "eventstore/read"
)

// DefaultChunkCacheBytes budgets the decoded-chunk cache per store when
// Options.ChunkCacheBytes is 0: enough to keep a hot window's chunks
// resident across repeated fills, small next to any Input-cache budget.
const DefaultChunkCacheBytes = 32 << 20

// Options tunes a store (builder and reader sides share the type; zero
// values mean defaults).
type Options struct {
	// TargetChunkEvents caps events per chunk (default
	// DefaultTargetChunkEvents). Smaller chunks seek tighter windows;
	// larger chunks amortize directory and CRC overhead.
	TargetChunkEvents int
	// SortBufferEvents bounds the builder's in-RAM sort buffer (default
	// DefaultSortBufferEvents); beyond it, runs spill to disk and merge
	// back stably.
	SortBufferEvents int
	// ChunkCacheBytes budgets the reader's decoded-chunk cache (default
	// DefaultChunkCacheBytes; negative disables caching).
	ChunkCacheBytes int64
	// RemoveOnClose deletes the store file when the Store closes —
	// the mode for stores built as load-time temporaries rather than
	// reusable sidecars.
	RemoveOnClose bool
}

// ReadStats are a store's monotonic read counters: how many chunk
// payloads were fetched and decoded from disk (ChunksRead / BytesRead)
// versus served from the decoded cache (CacheHits). Window-locality
// assertions ("a 1-slice pan touches O(window) chunks") are written
// against deltas of these.
type ReadStats struct {
	ChunksRead int64
	BytesRead  int64
	CacheHits  int64
}

// decodedChunk is one chunk expanded to struct-of-arrays form, the shape
// the fill loop consumes.
type decodedChunk struct {
	starts, ends []float64
	states       []int32
	bytes        int // resident cost, charged against ChunkCacheBytes
}

// seriesView indexes one series' chunks for window pruning: refs ordered
// by minStart (the global chunk order restricted to the series), plus
// the running maximum of maxEnd — nondecreasing, so the chunks possibly
// overlapping a window are one binary search on each side, exactly the
// running-max-end trick the in-RAM index uses at event granularity.
type seriesView struct {
	refs      []int // indices into Store.dir
	minStarts []float64
	cumMaxEnd []float64
}

// Store is an open on-disk event index. All methods are safe for
// concurrent use: reads go through pread, the decoded-chunk cache is
// mutex-guarded, and counters are atomic.
type Store struct {
	path string
	f    *os.File
	dir  []chunkRef
	meta Meta
	opt  Options

	series []seriesView

	mu         sync.Mutex
	cache      map[int]*list.Element // chunk index → *cacheEntry
	lru        *list.List
	cacheBytes int64

	chunksRead atomic.Int64
	bytesRead  atomic.Int64
	cacheHits  atomic.Int64

	closed atomic.Bool
}

type cacheEntry struct {
	chunk int
	dec   *decodedChunk
}

// Open maps an existing store file: header magic and version are
// validated, the directory and meta are read and checksummed, and the
// per-series chunk views are built. Corruption anywhere in that path —
// truncation, version skew, a failed checksum — returns an
// IsCorrupt-classifiable error.
func Open(path string, opt Options) (*Store, error) {
	if err := failpoint.Inject(FailpointOpen); err != nil {
		return nil, fmt.Errorf("eventstore: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := openFile(path, f, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func openFile(path string, f *os.File, opt Options) (*Store, error) {
	corrupt := func(off int64, format string, args ...any) error {
		return &CorruptError{Path: path, Offset: off, Err: fmt.Errorf(format, args...)}
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize+footerSize {
		return nil, corrupt(size, "file too short (%d bytes) for a store", size)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, corrupt(0, "header: %v", err)
	}
	if string(hdr[:4]) != storeMagic {
		return nil, corrupt(0, "bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != storeVersion {
		return nil, corrupt(4, "unsupported store version %d (want %d)", v, storeVersion)
	}
	var ftr [footerSize]byte
	if _, err := f.ReadAt(ftr[:], size-footerSize); err != nil {
		return nil, corrupt(size-footerSize, "footer: %v", err)
	}
	if string(ftr[28:32]) != footerMagic {
		return nil, corrupt(size-4, "bad footer magic %q (truncated store?)", ftr[28:32])
	}
	dirOff := binary.LittleEndian.Uint64(ftr[0:])
	dirBytes := binary.LittleEndian.Uint64(ftr[8:])
	metaBytes := binary.LittleEndian.Uint64(ftr[16:])
	wantCRC := binary.LittleEndian.Uint32(ftr[24:])
	if dirBytes > maxReasonableLen || metaBytes > maxReasonableLen ||
		dirOff+dirBytes+metaBytes+footerSize != uint64(size) {
		return nil, corrupt(size-footerSize, "footer geometry off=%d dir=%d meta=%d does not tile the %d-byte file",
			dirOff, dirBytes, metaBytes, size)
	}
	if dirBytes%chunkRefSize != 0 {
		return nil, corrupt(int64(dirOff), "directory length %d not a whole number of %d-byte entries", dirBytes, chunkRefSize)
	}
	tail := make([]byte, dirBytes+metaBytes)
	if _, err := f.ReadAt(tail, int64(dirOff)); err != nil {
		return nil, corrupt(int64(dirOff), "directory: %v", err)
	}
	if got := crc32.ChecksumIEEE(tail); got != wantCRC {
		return nil, corrupt(int64(dirOff), "directory+meta checksum mismatch: file says %08x, data hashes to %08x", wantCRC, got)
	}
	dir := make([]chunkRef, dirBytes/chunkRefSize)
	for i := range dir {
		dir[i] = unmarshalChunkRef(tail[i*chunkRefSize:])
		if dir[i].off+dir[i].length > dirOff {
			return nil, corrupt(int64(dirOff)+int64(i*chunkRefSize), "chunk %d extends past the directory", i)
		}
	}
	meta, err := parseMeta(tail[dirBytes:])
	if err != nil {
		return nil, corrupt(int64(dirOff)+int64(dirBytes), "meta: %v", err)
	}
	if opt.ChunkCacheBytes == 0 {
		opt.ChunkCacheBytes = DefaultChunkCacheBytes
	}
	s := &Store{
		path:  path,
		f:     f,
		dir:   dir,
		meta:  meta,
		opt:   opt,
		cache: make(map[int]*list.Element),
		lru:   list.New(),
	}
	s.buildSeriesViews()
	return s, nil
}

func (s *Store) buildSeriesViews() {
	n := len(s.meta.Series)
	s.series = make([]seriesView, n)
	for i, c := range s.dir {
		if int(c.series) >= n {
			// A chunk for a series outside the table would have failed the
			// checksum; guard anyway rather than index out of range.
			continue
		}
		v := &s.series[c.series]
		v.refs = append(v.refs, i)
	}
	for si := range s.series {
		v := &s.series[si]
		v.minStarts = make([]float64, len(v.refs))
		v.cumMaxEnd = make([]float64, len(v.refs))
		running := math.Inf(-1)
		for j, ci := range v.refs {
			v.minStarts[j] = s.dir[ci].minStart
			if s.dir[ci].maxEnd > running {
				running = s.dir[ci].maxEnd
			}
			v.cumMaxEnd[j] = running
		}
	}
}

// Meta returns the store's header data.
func (s *Store) Meta() Meta { return s.meta }

// Path returns the store file's path.
func (s *Store) Path() string { return s.path }

// NumEvents returns the indexed event count.
func (s *Store) NumEvents() int64 { return s.meta.NumEvents }

// NumChunks returns the total chunk count.
func (s *Store) NumChunks() int { return len(s.dir) }

// SeriesChunks returns how many chunks hold series' events.
func (s *Store) SeriesChunks(series uint32) int {
	if int(series) >= len(s.series) {
		return 0
	}
	return len(s.series[series].refs)
}

// DirectoryBytes returns the resident cost of the directory and series
// views — the fixed RAM the open store costs regardless of reads.
func (s *Store) DirectoryBytes() int64 {
	n := int64(len(s.dir)) * chunkRefSize
	for _, v := range s.series {
		n += int64(len(v.refs))*8 + int64(len(v.minStarts))*8 + int64(len(v.cumMaxEnd))*8
	}
	return n
}

// OpenChunkBytes returns the decoded-chunk cache's resident bytes — the
// read-side RAM that grows and shrinks with use, reported distinctly
// from Input bytes so serving-layer budgets don't double-count.
func (s *Store) OpenChunkBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheBytes
}

// ReadStats snapshots the read counters.
func (s *Store) ReadStats() ReadStats {
	return ReadStats{
		ChunksRead: s.chunksRead.Load(),
		BytesRead:  s.bytesRead.Load(),
		CacheHits:  s.cacheHits.Load(),
	}
}

// ForEachOverlapping visits, in ascending (start, insertion-order), every
// stored event of series overlapping the half-open window [lo, hi):
// start < hi and end > lo. Chunk pruning uses the directory only; the
// chunks actually overlapping are decoded (or served from the cache) and
// filtered per event with exactly the in-RAM index's predicates, so a
// fill through this path touches the same events in the same order.
func (s *Store) ForEachOverlapping(series uint32, lo, hi float64, visit func(state int32, start, end float64)) error {
	if int(series) >= len(s.series) {
		return nil
	}
	v := &s.series[series]
	// Chunks with minStart < hi form a prefix (minStarts ascending);
	// chunks with cumMaxEnd > lo form a suffix (cumMaxEnd nondecreasing).
	j1 := sort.SearchFloat64s(v.minStarts, hi)
	j0 := sort.Search(j1, func(j int) bool { return v.cumMaxEnd[j] > lo })
	for j := j0; j < j1; j++ {
		ci := v.refs[j]
		if s.dir[ci].maxEnd <= lo {
			continue // an early long event elsewhere pulled cumMaxEnd up
		}
		dec, err := s.chunk(ci)
		if err != nil {
			return err
		}
		for i := range dec.starts {
			start := dec.starts[i]
			if start >= hi {
				break // sorted by start: nothing later overlaps either
			}
			if dec.ends[i] <= lo {
				continue
			}
			visit(dec.states[i], start, dec.ends[i])
		}
	}
	return nil
}

// chunk returns chunk ci decoded, through the cache.
func (s *Store) chunk(ci int) (*decodedChunk, error) {
	s.mu.Lock()
	if el, ok := s.cache[ci]; ok {
		s.lru.MoveToFront(el)
		dec := el.Value.(*cacheEntry).dec
		s.mu.Unlock()
		s.cacheHits.Add(1)
		return dec, nil
	}
	s.mu.Unlock()

	dec, err := s.readChunk(ci)
	if err != nil {
		return nil, err
	}
	if s.opt.ChunkCacheBytes > 0 {
		s.mu.Lock()
		if _, ok := s.cache[ci]; !ok { // lost races keep the first copy
			s.cache[ci] = s.lru.PushFront(&cacheEntry{chunk: ci, dec: dec})
			s.cacheBytes += int64(dec.bytes)
			for s.cacheBytes > s.opt.ChunkCacheBytes && s.lru.Len() > 1 {
				el := s.lru.Back()
				e := el.Value.(*cacheEntry)
				s.lru.Remove(el)
				delete(s.cache, e.chunk)
				s.cacheBytes -= int64(e.dec.bytes)
			}
		}
		s.mu.Unlock()
	}
	return dec, nil
}

// readChunk fetches and decodes chunk ci from disk, validating its CRC.
func (s *Store) readChunk(ci int) (*decodedChunk, error) {
	if err := failpoint.Inject(FailpointRead); err != nil {
		return nil, fmt.Errorf("eventstore: %s: chunk %d: %w", s.path, ci, err)
	}
	ref := s.dir[ci]
	payload := make([]byte, ref.length)
	if _, err := s.f.ReadAt(payload, int64(ref.off)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &CorruptError{Path: s.path, Offset: int64(ref.off),
				Err: fmt.Errorf("chunk %d truncated (%d bytes at %d past EOF)", ci, ref.length, ref.off)}
		}
		return nil, fmt.Errorf("eventstore: %s: chunk %d: %w", s.path, ci, err)
	}
	s.chunksRead.Add(1)
	s.bytesRead.Add(int64(len(payload)))
	if got := crc32.ChecksumIEEE(payload); got != ref.crc {
		return nil, &CorruptError{Path: s.path, Offset: int64(ref.off),
			Err: fmt.Errorf("chunk %d checksum mismatch: directory says %08x, payload hashes to %08x", ci, ref.crc, got)}
	}
	starts, ends, states, err := decodeChunk(payload, int(ref.count))
	if err != nil {
		return nil, &CorruptError{Path: s.path, Offset: int64(ref.off), Err: fmt.Errorf("chunk %d: %w", ci, err)}
	}
	return &decodedChunk{
		starts: starts,
		ends:   ends,
		states: states,
		bytes:  len(starts)*16 + len(states)*4,
	}, nil
}

// VerifyChunks re-reads every chunk payload from disk and validates its
// CRC and decode, bypassing the decoded-chunk cache — the scrub pass's
// workhorse. It returns the first corruption found (IsCorrupt-
// classifiable) and the number of chunks verified before it. Reads do
// not populate or consult the cache, so a scrub neither evicts a serving
// store's hot chunks nor gets fooled by them.
func (s *Store) VerifyChunks() (verified int, err error) {
	for ci := range s.dir {
		if _, err := s.readChunk(ci); err != nil {
			return verified, err
		}
		verified++
	}
	return verified, nil
}

// Close releases the store: the file handle closes, the decoded cache
// drops, and — for load-time temporaries (Options.RemoveOnClose) — the
// file is deleted. Reads racing a Close fail with the file's closed
// error; callers sequencing unload against in-flight builds own that
// race (the serving layer maps it to a failed build, not a crash).
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	s.cache = make(map[int]*list.Element)
	s.lru = list.New()
	s.cacheBytes = 0
	s.mu.Unlock()
	err := s.f.Close()
	if s.opt.RemoveOnClose {
		if rmErr := os.Remove(s.path); err == nil && rmErr != nil && !os.IsNotExist(rmErr) {
			err = rmErr
		}
	}
	return err
}
