package eventstore

import (
	"errors"
	"fmt"
)

// CorruptError marks an undecodable store file: bad magic, version skew,
// a failed directory or chunk checksum, or a truncation. It carries the
// byte offset of the failure when known (-1 otherwise), so a damaged
// store can be bisected without a debugger — the same contract
// traceio.CorruptError gives for trace files.
type CorruptError struct {
	Path   string
	Offset int64 // byte offset into the store file; -1 if unknown
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("eventstore: %s: %v (at byte %d)", e.Path, e.Err, e.Offset)
	}
	return fmt.Sprintf("eventstore: %s: %v", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err marks an undecodable store (as opposed
// to an I/O failure opening or reading the file).
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}
