// Package eventstore is the out-of-core event index: a chunked,
// per-series, time-ordered on-disk layout for the event sets that back
// interactive windowing, built once at trace load and read in O(window)
// chunks per fill instead of O(trace) RAM.
//
// The in-RAM index of microscopic.Reslicer costs ~28 bytes per event,
// which caps interactive windowing far below the trace sizes exascale
// tooling produces. This package trades that residency for a single
// store file:
//
//   - the builder streams events through a bounded-memory external sort
//     (spilled sorted runs, stable k-way merge), so multi-gigabyte traces
//     index in O(sort buffer) RAM;
//   - events land in chunks of one series (resource) each, sorted by
//     start time, with XOR-delta-encoded float64 timestamps (close
//     timestamps share their high bits, so deltas varint-encode small);
//   - a directory of (series, time-range, checksum) chunk footers lets a
//     window fill seek straight to the chunks overlapping the changed
//     slices — one binary search per series, like the in-RAM index's
//     running-max-end column, lifted to chunk granularity;
//   - reads go through explicit block reads (pread) plus a byte-budgeted
//     cache of decoded chunks, so repeated fills over a hot window do not
//     re-decode.
//
// Iteration order is the contract: ForEachOverlapping visits exactly the
// events the in-RAM index would visit, in the same stable
// (start, original-order) sort, so a fill through either index
// accumulates bit-identical floats. The property tests in package
// microscopic enforce this across random Build/Shift/Zoom sequences.
//
// Layering: eventstore sits below microscopic — it knows nothing about
// hierarchies, slicers or models, only (series, state, start, end)
// tuples keyed by opaque series numbers. microscopic.Reslicer adapts it
// as one of its two index backends (the other being the in-RAM
// struct-of-arrays), and everything above (core, server, the CLIs)
// selects a backend without seeing this package.
//
// A store file is sealed: chunks are immutable once the builder commits
// the directory, which is what makes CRC-per-chunk durability and
// lock-free concurrent reads cheap. Live ingestion (follow mode) does
// not break that seal — microscopic.Reslicer.Extend layers a RAM
// overlay of the appended events over the sealed store and merges the
// two streams in the contract order at read time, so the disk backend
// serves a growing trace without rewriting a byte of the store file.
//
// Durability: every open validates the header magic/version and the
// directory+meta checksum, and every chunk read validates its CRC;
// truncated files, flipped bytes and version skew all fail loud with
// IsCorrupt-classifiable errors instead of feeding garbage to the
// aggregation.
package eventstore
