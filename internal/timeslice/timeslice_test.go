package timeslice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(0, 10, 0); err == nil {
		t.Error("zero slices accepted")
	}
	if _, err := New(0, 10, -3); err == nil {
		t.Error("negative slices accepted")
	}
	if _, err := New(5, 5, 10); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := New(7, 3, 10); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestBoundsTileWindow(t *testing.T) {
	s, _ := New(2, 12, 5)
	prevEnd := 2.0
	for i := 0; i < s.N; i++ {
		lo, hi := s.Bounds(i)
		if math.Abs(lo-prevEnd) > 1e-12 {
			t.Errorf("slice %d starts at %g, want %g", i, lo, prevEnd)
		}
		if math.Abs(hi-lo-s.Width()) > 1e-12 {
			t.Errorf("slice %d width %g, want %g", i, hi-lo, s.Width())
		}
		prevEnd = hi
	}
	if math.Abs(prevEnd-12) > 1e-12 {
		t.Errorf("last slice ends at %g, want 12", prevEnd)
	}
}

func TestSliceOf(t *testing.T) {
	s, _ := New(0, 10, 10)
	cases := []struct {
		t    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 1}, {9.99, 9}, {10, 9}, {42, 9},
	}
	for _, c := range cases {
		if got := s.SliceOf(c.t); got != c.want {
			t.Errorf("SliceOf(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestIntervalBounds(t *testing.T) {
	s, _ := New(0, 30, 30)
	lo, hi := s.IntervalBounds(3, 5)
	if lo != 3 || hi != 6 {
		t.Errorf("IntervalBounds(3,5) = (%g,%g), want (3,6)", lo, hi)
	}
}

func TestOverlapSimple(t *testing.T) {
	s, _ := New(0, 10, 10)
	var got []struct {
		i   int
		sec float64
	}
	s.Overlap(1.5, 3.25, func(i int, sec float64) {
		got = append(got, struct {
			i   int
			sec float64
		}{i, sec})
	})
	if len(got) != 3 {
		t.Fatalf("got %d slices, want 3 (%v)", len(got), got)
	}
	if got[0].i != 1 || math.Abs(got[0].sec-0.5) > 1e-12 {
		t.Errorf("first overlap = %+v, want slice 1, 0.5s", got[0])
	}
	if got[1].i != 2 || math.Abs(got[1].sec-1) > 1e-12 {
		t.Errorf("second overlap = %+v, want slice 2, 1s", got[1])
	}
	if got[2].i != 3 || math.Abs(got[2].sec-0.25) > 1e-12 {
		t.Errorf("third overlap = %+v, want slice 3, 0.25s", got[2])
	}
}

func TestOverlapClipsToWindow(t *testing.T) {
	s, _ := New(0, 10, 5)
	var total float64
	s.Overlap(-3, 4, func(i int, sec float64) { total += sec })
	if math.Abs(total-4) > 1e-12 {
		t.Errorf("clipped total %g, want 4", total)
	}
	total = 0
	s.Overlap(8, 25, func(i int, sec float64) { total += sec })
	if math.Abs(total-2) > 1e-12 {
		t.Errorf("clipped total %g, want 2", total)
	}
}

func TestOverlapOutsideWindow(t *testing.T) {
	s, _ := New(0, 10, 5)
	calls := 0
	s.Overlap(-5, -1, func(int, float64) { calls++ })
	s.Overlap(11, 15, func(int, float64) { calls++ })
	s.Overlap(3, 3, func(int, float64) { calls++ }) // zero-length
	s.Overlap(4, 2, func(int, float64) { calls++ }) // inverted
	if calls != 0 {
		t.Errorf("events outside window produced %d calls", calls)
	}
}

func TestOverlapExactBoundary(t *testing.T) {
	s, _ := New(0, 10, 10)
	// An event ending exactly on a slice boundary must not touch the
	// next slice.
	var slices []int
	s.Overlap(2, 3, func(i int, sec float64) { slices = append(slices, i) })
	if len(slices) != 1 || slices[0] != 2 {
		t.Errorf("boundary event hit slices %v, want [2]", slices)
	}
}

// TestOverlapConservation: for any event, the sum of per-slice overlaps
// equals the clipped event duration.
func TestOverlapConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		s, err := New(0, 1+rng.Float64()*100, n)
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			a := rng.Float64()*s.End*1.2 - 0.1*s.End
			b := a + rng.Float64()*s.End*0.5
			clipA, clipB := math.Max(a, s.Start), math.Min(b, s.End)
			want := math.Max(0, clipB-clipA)
			var got float64
			prev := -1
			ok := true
			s.Overlap(a, b, func(i int, sec float64) {
				got += sec
				if i <= prev { // slices visited in order, once each
					ok = false
				}
				if sec <= 0 || sec > s.Width()+1e-9 {
					ok = false
				}
				prev = i
			})
			if !ok || math.Abs(got-want) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDurations(t *testing.T) {
	s, _ := New(0, 30, 30)
	d := s.Durations()
	if len(d) != 30 {
		t.Fatalf("len = %d", len(d))
	}
	for i, v := range d {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("d(%d) = %g, want 1", i, v)
		}
	}
}

func TestShiftBoundsAreBitIdentical(t *testing.T) {
	// The whole incremental-windowing design rests on this: slice i of a
	// shifted slicer covers the exact same floats as slice i+k of the
	// original, for any k, including chains of shifts that cancel out.
	s, _ := New(0.1, 7.3, 13)
	for _, k := range []int{1, -1, 5, -5, 13, 40} {
		sh := s.Shift(k)
		for i := -3; i < s.N+3; i++ {
			lo1, hi1 := sh.Bounds(i)
			lo2, hi2 := s.Bounds(i + k)
			if lo1 != lo2 || hi1 != hi2 {
				t.Fatalf("Shift(%d).Bounds(%d) = [%v,%v), want [%v,%v)", k, i, lo1, hi1, lo2, hi2)
			}
		}
		if sh.Width() != s.Width() {
			t.Fatalf("Shift(%d) changed the width", k)
		}
		if off, ok := s.OnGrid(sh); !ok || off != k {
			t.Fatalf("OnGrid(Shift(%d)) = (%d, %v), want (%d, true)", k, off, ok, k)
		}
	}
	// A round trip returns to the identical slicer.
	rt := s.Shift(7).Shift(-3).Shift(-4)
	if rt != s {
		t.Fatalf("shift round trip: %+v != %+v", rt, s)
	}
}

func TestOnGridRejectsForeignSlicers(t *testing.T) {
	a, _ := New(0, 10, 10)
	b, _ := New(0, 10, 20) // different width
	c, _ := New(1, 11, 10) // different origin
	if _, ok := a.OnGrid(b); ok {
		t.Error("different width accepted")
	}
	if _, ok := a.OnGrid(c); ok {
		t.Error("different origin accepted")
	}
	if k, ok := a.OnGrid(a); !ok || k != 0 {
		t.Errorf("self: (%d, %v), want (0, true)", k, ok)
	}
}

func TestShiftOverlapMatchesOriginal(t *testing.T) {
	// Event mass attributed to a given absolute slice must be the same
	// number whether seen through the original or a shifted window.
	s, _ := New(0, 9.9, 11)
	sh := s.Shift(3)
	events := [][2]float64{{0.05, 4.2}, {3.3, 3.31}, {2.7, 9.9}, {5, 6}}
	for _, e := range events {
		orig := map[int]float64{}
		s.Overlap(e[0], e[1], func(i int, sec float64) { orig[i] = sec })
		sh.Overlap(e[0], e[1], func(i int, sec float64) {
			abs := i + 3
			if abs >= s.N { // clipped differently at the right edge
				return
			}
			if want, ok := orig[abs]; ok && sec != want {
				t.Errorf("event %v slice %d: shifted %v, original %v", e, abs, sec, want)
			}
		})
	}
}
