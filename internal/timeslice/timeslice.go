// Package timeslice implements the temporal dimension of the trace model
// (paper §III.A(2)): the continuous raw-trace time is divided into |T|
// regular time periods ("slices"); events are associated with the slices
// where they are active, proportionally to their overlap.
package timeslice

import (
	"fmt"
	"math"
)

// Slicer divides the window [Start, End) into N equal slices.
//
// Slicers built by New (and derived by Shift) are anchored to a grid: an
// origin plus an explicit slice width, so that Bounds(i) of a shifted
// slicer returns the exact same floats as the original's Bounds(i+k).
// This is what lets the incremental windowing path treat "the same slice
// seen through two windows" as bit-identical. A zero-valued Slicer (or one
// assembled by hand from Start/End/N) falls back to deriving the width
// from the window, which matches the historical behavior.
type Slicer struct {
	Start, End float64
	N          int

	// Grid anchoring: Bounds(i) = base + (off+i)·w when w > 0.
	base float64
	off  int
	w    float64
}

// New returns a Slicer over [start, end) with n slices, anchored at start.
func New(start, end float64, n int) (Slicer, error) {
	if n <= 0 {
		return Slicer{}, fmt.Errorf("timeslice: need at least one slice, got %d", n)
	}
	if !(end > start) {
		return Slicer{}, fmt.Errorf("timeslice: empty window [%g,%g)", start, end)
	}
	return Slicer{Start: start, End: end, N: n, base: start, off: 0, w: (end - start) / float64(n)}, nil
}

// Shift returns the slicer panned by k slices on the same grid: slice i of
// the result covers exactly the interval of slice i+k of s — the boundary
// floats are identical, not merely close. The window may extend past the
// original trace extent; slices there simply hold no events.
func (s Slicer) Shift(k int) Slicer {
	w := s.Width()
	base, off := s.base, s.off
	if s.w <= 0 { // hand-assembled slicer: anchor it now
		base, off = s.Start, 0
	}
	off += k
	return Slicer{
		Start: base + float64(off)*w,
		End:   base + float64(off+s.N)*w,
		N:     s.N,
		base:  base,
		off:   off,
		w:     w,
	}
}

// OnGrid reports whether o shares s's grid (same origin and width), and if
// so the slice offset k such that o.Bounds(i) == s.Bounds(i+k) exactly.
func (s Slicer) OnGrid(o Slicer) (k int, ok bool) {
	if s.w <= 0 || o.w <= 0 || s.base != o.base || s.w != o.w {
		return 0, false
	}
	return o.off - s.off, true
}

// Grid exposes the slicer's grid anchoring (origin, slice width, offset of
// slice 0 on that grid). Two slicers with equal base and width address the
// same grid at possibly different offsets — the identity the multi-
// resolution pyramid keys its levels by. A hand-assembled slicer (w ≤ 0)
// reports its window-derived width anchored at its own start.
func (s Slicer) Grid() (base, width float64, off int) {
	if s.w > 0 {
		return s.base, s.w, s.off
	}
	return s.Start, s.Width(), 0
}

// CoarsenGrid returns the slicer covering the same window with n/factor
// slices of width·factor, anchored on the coarsened grid (same origin,
// every factor-th boundary). factor must be a power of two ≥ 2 (so
// width·factor is float-exact and the coarse boundaries are bit-exact
// members of the fine grid), N must be divisible by factor, and the grid
// offset must be divisible by factor; pyramid levels anchored at a trace
// origin satisfy this by construction, arbitrary pans may not.
func (s Slicer) CoarsenGrid(factor int) (Slicer, error) {
	if factor < 2 || factor&(factor-1) != 0 {
		return Slicer{}, fmt.Errorf("timeslice: coarsen factor %d not a power of two ≥ 2", factor)
	}
	if s.N%factor != 0 {
		return Slicer{}, fmt.Errorf("timeslice: %d slices not divisible by factor %d", s.N, factor)
	}
	base, w, off := s.Grid()
	if off%factor != 0 {
		return Slicer{}, fmt.Errorf("timeslice: grid offset %d not aligned to factor %d", off, factor)
	}
	return Slicer{
		Start: s.Start,
		End:   s.End,
		N:     s.N / factor,
		base:  base,
		off:   off / factor,
		w:     w * float64(factor),
	}, nil
}

// Width returns the duration d(t) of one slice (slices are regular).
func (s Slicer) Width() float64 {
	if s.w > 0 {
		return s.w
	}
	return (s.End - s.Start) / float64(s.N)
}

// Bounds returns the half-open time interval covered by slice i. The index
// may lie outside [0, N): the grid extrapolates, which the zoom-out path
// uses to address slices beyond the current window.
func (s Slicer) Bounds(i int) (float64, float64) {
	w := s.Width()
	if s.w > 0 {
		return s.base + float64(s.off+i)*w, s.base + float64(s.off+i+1)*w
	}
	return s.Start + float64(i)*w, s.Start + float64(i+1)*w
}

// IntervalBounds returns the time range covered by slices [i, j].
func (s Slicer) IntervalBounds(i, j int) (float64, float64) {
	lo, _ := s.Bounds(i)
	_, hi := s.Bounds(j)
	return lo, hi
}

// SliceOf returns the index of the slice containing time t, clamped to
// [0, N-1] for t at or beyond the window edges.
func (s Slicer) SliceOf(t float64) int {
	if t <= s.Start {
		return 0
	}
	if t >= s.End {
		return s.N - 1
	}
	i := int((t - s.Start) / s.Width())
	if i >= s.N { // guard against floating-point edge
		i = s.N - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Overlap visits every slice that intersects [start, end) and reports the
// overlap duration; the visitor receives (sliceIndex, seconds). Events
// outside the window are clipped; an event fully outside produces no calls.
// The sum of reported seconds equals the clipped event duration (up to
// floating-point rounding).
func (s Slicer) Overlap(start, end float64, visit func(slice int, seconds float64)) {
	if end <= s.Start || start >= s.End || end <= start {
		return
	}
	if start < s.Start {
		start = s.Start
	}
	if end > s.End {
		end = s.End
	}
	first, last := s.SliceOf(start), s.SliceOf(end)
	// SliceOf works on the (possibly re-derived) window, whose float
	// arithmetic may land one slice off the anchored grid; widen to the
	// true covering range — the b > a check below discards empty edges.
	for first > 0 {
		if lo, _ := s.Bounds(first); lo > start {
			first--
		} else {
			break
		}
	}
	for last < s.N-1 {
		if _, hi := s.Bounds(last); hi < end {
			last++
		} else {
			break
		}
	}
	// SliceOf(end) may land one past the real last overlapped slice when
	// end is exactly a slice boundary.
	if lo, _ := s.Bounds(last); lo >= end {
		last--
	}
	for i := first; i <= last; i++ {
		lo, hi := s.Bounds(i)
		a, b := math.Max(start, lo), math.Min(end, hi)
		if b > a {
			visit(i, b-a)
		}
	}
}

// Durations returns the slice-duration vector d(t) (all equal for a regular
// slicer, kept as a vector so downstream code works with any slicing).
func (s Slicer) Durations() []float64 {
	out := make([]float64, s.N)
	w := s.Width()
	for i := range out {
		out[i] = w
	}
	return out
}
