// Package timeslice implements the temporal dimension of the trace model
// (paper §III.A(2)): the continuous raw-trace time is divided into |T|
// regular time periods ("slices"); events are associated with the slices
// where they are active, proportionally to their overlap.
package timeslice

import (
	"fmt"
	"math"
)

// Slicer divides the window [Start, End) into N equal slices.
type Slicer struct {
	Start, End float64
	N          int
}

// New returns a Slicer over [start, end) with n slices.
func New(start, end float64, n int) (Slicer, error) {
	if n <= 0 {
		return Slicer{}, fmt.Errorf("timeslice: need at least one slice, got %d", n)
	}
	if !(end > start) {
		return Slicer{}, fmt.Errorf("timeslice: empty window [%g,%g)", start, end)
	}
	return Slicer{Start: start, End: end, N: n}, nil
}

// Width returns the duration d(t) of one slice (slices are regular).
func (s Slicer) Width() float64 { return (s.End - s.Start) / float64(s.N) }

// Bounds returns the half-open time interval covered by slice i.
func (s Slicer) Bounds(i int) (float64, float64) {
	w := s.Width()
	return s.Start + float64(i)*w, s.Start + float64(i+1)*w
}

// IntervalBounds returns the time range covered by slices [i, j].
func (s Slicer) IntervalBounds(i, j int) (float64, float64) {
	lo, _ := s.Bounds(i)
	_, hi := s.Bounds(j)
	return lo, hi
}

// SliceOf returns the index of the slice containing time t, clamped to
// [0, N-1] for t at or beyond the window edges.
func (s Slicer) SliceOf(t float64) int {
	if t <= s.Start {
		return 0
	}
	if t >= s.End {
		return s.N - 1
	}
	i := int((t - s.Start) / s.Width())
	if i >= s.N { // guard against floating-point edge
		i = s.N - 1
	}
	return i
}

// Overlap visits every slice that intersects [start, end) and reports the
// overlap duration; the visitor receives (sliceIndex, seconds). Events
// outside the window are clipped; an event fully outside produces no calls.
// The sum of reported seconds equals the clipped event duration (up to
// floating-point rounding).
func (s Slicer) Overlap(start, end float64, visit func(slice int, seconds float64)) {
	if end <= s.Start || start >= s.End || end <= start {
		return
	}
	if start < s.Start {
		start = s.Start
	}
	if end > s.End {
		end = s.End
	}
	first, last := s.SliceOf(start), s.SliceOf(end)
	// SliceOf(end) may land one past the real last overlapped slice when
	// end is exactly a slice boundary.
	if lo, _ := s.Bounds(last); lo >= end {
		last--
	}
	for i := first; i <= last; i++ {
		lo, hi := s.Bounds(i)
		a, b := math.Max(start, lo), math.Min(end, hi)
		if b > a {
			visit(i, b-a)
		}
	}
}

// Durations returns the slice-duration vector d(t) (all equal for a regular
// slicer, kept as a vector so downstream code works with any slicing).
func (s Slicer) Durations() []float64 {
	out := make([]float64, s.N)
	w := s.Width()
	for i := range out {
		out[i] = w
	}
	return out
}
