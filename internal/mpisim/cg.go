package mpisim

import (
	"math"

	"ocelotl/internal/grid5000"
	"ocelotl/internal/trace"
)

// simulateCG reproduces the structure the paper reports for NAS-CG
// (§V.A, Figure 1):
//
//   - an initialization phase of MPI_Init covering the first ~17% of the
//     run (0–1.6 s of 9.5 s for case A), homogeneous across all ranks;
//   - two short transition periods into computation (1.6–1.9 s and
//     1.9–2.2 s), still spatially homogeneous;
//   - a computation phase (2.2–9.5 s) with regular per-rank behaviour:
//     on every machine one process is dedicated to MPI_Wait while the
//     others mainly run MPI_Send interleaved with computation — CG's
//     irregular long-distance exchanges;
//   - a transient network-contention perturbation around t ≈ 3 s
//     affecting a subset of the ranks (26 of 64 in the paper's case A),
//     during which MPI_Send and MPI_Wait last much longer than usual.
func simulateCG(sc grid5000.Scenario, cfg Config, emit func(trace.Event) error) ([]Perturbation, error) {
	R := sc.PaperRuntime
	procs := sc.Processes
	initEnd := 0.17 * R
	trans1End := 0.20 * R
	trans2End := 0.23 * R
	// Perturbation: the paper observes it around 3 s of 9.5 s ≈ 32% of
	// the run, lasting roughly half a second.
	pertStart := 0.32 * R
	pertEnd := pertStart + 0.055*R

	// Event budget: almost all events belong to the computation phase.
	// One rank emits 1 init event, ~8 transition events, and
	// cycles of 5 events during computation.
	target := cfg.targetEvents(sc)
	perRank := target/procs - 9
	if perRank < 15 {
		perRank = 15
	}
	const eventsPerCycle = 5
	cycles := perRank / eventsPerCycle
	compSpan := R - trans2End
	cycleDur := compSpan / float64(cycles)

	// Choose the perturbed ranks deterministically: the paper reports 26
	// of 64 processes affected (≈40%), spread across machines because
	// the shared medium is the cluster network.
	var pertRanks []int
	if !cfg.DisablePerturbations {
		nPert := int(math.Round(0.4 * float64(procs)))
		if nPert < 1 {
			nPert = 1
		}
		pick := rankRNG(cfg.Seed, -1)
		perm := pick.Perm(procs)
		pertRanks = append(pertRanks, perm[:nPert]...)
	}
	pertSet := make(map[int]bool, len(pertRanks))
	for _, r := range pertRanks {
		pertSet[r] = true
	}

	for rank := 0; rank < procs; rank++ {
		rng := rankRNG(cfg.Seed, rank)
		cl, _, err := sc.Platform.ClusterOf(rank)
		if err != nil {
			return nil, err
		}
		rid := trace.ResourceID(rank)
		// Initialization: one long MPI_Init state; tiny per-rank skew at
		// the end (processes leave MPI_Init almost together).
		skew := 0.002 * R * rng.Float64()
		if err := emit(trace.Event{Resource: rid, State: StateInit, Start: 0, End: initEnd + skew}); err != nil {
			return nil, err
		}
		// Transitions: homogeneous alternation of Allreduce/compute then
		// Recv/compute — the paper shows two distinct spatially-merged
		// bands here.
		if _, err := emitSegment(emit, rng, rid, initEnd+skew, trans1End, (trans1End-initEnd)/2, 0.1,
			[]mixEntry{{StateAllreduce, 0.6}, {StateCompute, 0.4}}); err != nil {
			return nil, err
		}
		if _, err := emitSegment(emit, rng, rid, trans1End, trans2End, (trans2End-trans1End)/2, 0.1,
			[]mixEntry{{StateRecv, 0.5}, {StateCompute, 0.5}}); err != nil {
			return nil, err
		}
		// Computation phase. One process per machine is the wait-heavy
		// one (the paper: "Each 8-core machine has a process dedicated
		// to MPI_wait while the others are mainly running MPI_send").
		waiter := rank%cl.Cores == 0
		lat := cl.Network.LatencyFactor()
		var regular, perturbed []mixEntry
		if waiter {
			regular = []mixEntry{
				{StateWait, 0.55 * lat}, {StateCompute, 0.30},
				{StateSend, 0.10}, {StateRecv, 0.05},
			}
		} else {
			regular = []mixEntry{
				{StateSend, 0.40 * lat}, {StateCompute, 0.40},
				{StateWait, 0.12}, {StateRecv, 0.08},
			}
		}
		// Under contention both send and wait stretch drastically.
		perturbed = []mixEntry{
			{StateSend, 0.47 * lat}, {StateWait, 0.48 * lat}, {StateCompute, 0.05},
		}
		segs := []struct {
			from, to float64
			mix      []mixEntry
			jitter   float64
		}{
			{trans2End, pertStart, regular, 0.25},
			{pertStart, pertEnd, regular, 0.25},
			{pertEnd, R, regular, 0.25},
		}
		if pertSet[rank] {
			segs[1].mix = perturbed
			segs[1].jitter = 0.45
		}
		for _, sg := range segs {
			if _, err := emitSegment(emit, rng, rid, sg.from, sg.to, cycleDur, sg.jitter, sg.mix); err != nil {
				return nil, err
			}
		}
	}
	if cfg.DisablePerturbations {
		return nil, nil
	}
	return []Perturbation{{
		Kind:  "network-contention",
		Start: pertStart,
		End:   pertEnd,
		Ranks: pertRanks,
	}}, nil
}
