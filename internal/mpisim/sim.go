// Package mpisim is a behavioural simulator of the paper's traced
// workloads: the NAS Parallel Benchmarks CG and LU running on Grid'5000
// (§V). It substitutes for the Score-P-instrumented executions the authors
// traced — the evaluation never inspects numerical results, only the
// spatiotemporal structure of MPI states, which is what this package
// reproduces: initialization/transition/computation phases, per-cluster
// communication regimes driven by the interconnect class, and seeded
// injection of the anomalies the paper detects (the case-A transient
// network contention around 3 s, the case-C Graphite heterogeneity and
// Griffon 34.5 s rupture).
//
// Generators are deterministic given a seed, stream events through a
// callback so Table II-scale traces never need to fit in memory, and
// calibrate their event counts against the paper's Table II numbers via a
// scale factor.
package mpisim

import (
	"fmt"
	"math/rand"

	"ocelotl/internal/grid5000"
	"ocelotl/internal/trace"
)

// State indices shared by all generated traces. The names mirror the MPI
// functions the paper traces with Score-P.
const (
	StateInit      = 0 // MPI_Init
	StateSend      = 1 // MPI_Send
	StateRecv      = 2 // MPI_Recv
	StateWait      = 3 // MPI_Wait
	StateAllreduce = 4 // MPI_Allreduce
	StateCompute   = 5 // application computation between MPI calls
)

// StateNames is the state table of every simulated trace, indexed by the
// State* constants.
var StateNames = []string{"MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Wait", "MPI_Allreduce", "compute"}

// Config controls a simulation run.
type Config struct {
	// Seed makes the run reproducible. The same seed always yields the
	// same trace.
	Seed int64
	// Scale multiplies the paper's Table II event count to set the
	// generated event budget (1.0 ≈ the paper's trace; 0.01 is a quick
	// laptop run). Values ≤ 0 default to 0.01.
	Scale float64
	// EventTarget, when > 0, overrides Scale with an absolute event
	// budget.
	EventTarget int
	// DisablePerturbations turns off anomaly injection (for baselines
	// and A/B tests).
	DisablePerturbations bool
}

// targetEvents resolves the event budget for a scenario.
func (c Config) targetEvents(sc grid5000.Scenario) int {
	if c.EventTarget > 0 {
		return c.EventTarget
	}
	scale := c.Scale
	if scale <= 0 {
		scale = 0.01
	}
	n := int(float64(sc.PaperEvents) * scale)
	if min := 8 * sc.Processes; n < min {
		n = min
	}
	return n
}

// Perturbation is the ground truth of one injected anomaly, so examples
// and tests can check that the aggregation actually finds it.
type Perturbation struct {
	// Kind labels the anomaly ("network-contention", "switch-sharing",
	// "slow-interconnect").
	Kind string
	// Start and End delimit the anomalous window in trace time
	// (End = trace end for persistent conditions).
	Start, End float64
	// Ranks lists the affected MPI ranks.
	Ranks []int
}

// Result is a completed simulation: the trace, its scenario, and the
// injected anomalies.
type Result struct {
	Trace         *trace.Trace
	Scenario      grid5000.Scenario
	Perturbations []Perturbation
}

// Generate simulates the scenario in memory. For Table II-scale budgets
// prefer GenerateStream.
func Generate(sc grid5000.Scenario, cfg Config) (*Result, error) {
	tr := trace.New(sc.Platform.ResourcePaths(sc.Processes), StateNames)
	tr.Start, tr.End = 0, sc.PaperRuntime
	perts, err := GenerateStream(sc, cfg, func(ev trace.Event) error {
		tr.AddEvent(ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Trace: tr, Scenario: sc, Perturbations: perts}, nil
}

// GenerateStream simulates the scenario, passing every event to emit in
// per-rank time order (events of different ranks are interleaved rank by
// rank, not globally sorted). It returns the injected perturbations.
func GenerateStream(sc grid5000.Scenario, cfg Config, emit func(trace.Event) error) ([]Perturbation, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	switch sc.Application {
	case "CG":
		return simulateCG(sc, cfg, emit)
	case "LU":
		return simulateLU(sc, cfg, emit)
	default:
		return nil, fmt.Errorf("mpisim: unknown application %q", sc.Application)
	}
}

// GenerateCase is the one-call helper for a Table II case.
func GenerateCase(c grid5000.Case, cfg Config) (*Result, error) {
	sc, err := grid5000.Scenarios(c)
	if err != nil {
		return nil, err
	}
	return Generate(sc, cfg)
}

// segment emits alternating states filling [from, to) on one rank:
// the pattern cycles through the given (state, share) mix, with jittered
// durations, until the segment is exhausted. mix shares need not sum to 1;
// they are normalized. baseDur is the nominal duration of one full cycle.
type mixEntry struct {
	state trace.StateID
	share float64
}

// emitSegment fills [from, to) for rank with cycles of the mix. jitter is
// the relative amplitude of duration noise (0 = deterministic). Returns
// the number of events emitted.
func emitSegment(emit func(trace.Event) error, rng *rand.Rand, rank trace.ResourceID,
	from, to, cycleDur, jitter float64, mix []mixEntry) (int, error) {
	if to <= from || cycleDur <= 0 {
		return 0, nil
	}
	var total float64
	for _, e := range mix {
		total += e.share
	}
	if total <= 0 {
		return 0, nil
	}
	n := 0
	t := from
	for t < to {
		for _, e := range mix {
			if t >= to {
				break
			}
			d := cycleDur * (e.share / total)
			if jitter > 0 {
				d *= 1 + jitter*(2*rng.Float64()-1)
			}
			if d <= 0 {
				continue
			}
			end := t + d
			if end > to {
				end = to
			}
			if err := emit(trace.Event{Resource: rank, State: e.state, Start: t, End: end}); err != nil {
				return n, err
			}
			n++
			t = end
		}
	}
	return n, nil
}

// rankRNG derives a per-rank deterministic RNG so streaming order and
// parallel generation cannot change the trace.
func rankRNG(seed int64, rank int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(rank)*7919 + 12345))
}
