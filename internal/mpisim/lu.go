package mpisim

import (
	"ocelotl/internal/grid5000"
	"ocelotl/internal/trace"
)

// simulateLU reproduces the structure the paper reports for NAS-LU
// (§V.B, Figure 4):
//
//   - a long MPI_Init phase (0–17.5 s of 70 s for case C, i.e. the first
//     quarter of the run), homogeneous across ranks;
//   - a short spatially-heterogeneous MPI_Allreduce transition
//     (17.5 s–20 s) — ranks enter the collective at scattered times;
//   - a computation phase (from ≈20 s) running the SSOR wavefront:
//     compute / MPI_Send / MPI_Recv / MPI_Wait cycles. Cluster behaviour
//     differs (this is the experiment's point):
//     – Graphene (Infiniband): temporally and spatially homogeneous;
//     – Graphite (10 G Ethernet, 16 cores/node): frequent long MPI_Wait
//     and MPI_Send with irregular per-process patterns — spatially
//     separated by the aggregation, heterogeneous over time;
//     – Griffon (Infiniband, but switches shared with non-Grid'5000
//     machines): regular except for a strong rupture at 34.5 s where
//     two machines block in MPI_Wait and two in MPI_Send.
func simulateLU(sc grid5000.Scenario, cfg Config, emit func(trace.Event) error) ([]Perturbation, error) {
	R := sc.PaperRuntime
	procs := sc.Processes
	initEnd := 0.25 * R
	allreduceEnd := 0.286 * R
	// Griffon rupture: 34.5 s of 70 s ≈ 49.3% of the run, ~4% long.
	ruptStart := 0.493 * R
	ruptEnd := ruptStart + 0.04*R

	target := cfg.targetEvents(sc)
	perRank := target/procs - 6
	if perRank < 15 {
		perRank = 15
	}
	const eventsPerCycle = 5
	cycles := perRank / eventsPerCycle
	compSpan := R - allreduceEnd
	cycleDur := compSpan / float64(cycles)

	// Identify the perturbed Griffon machines: two blocked in MPI_Wait,
	// two in MPI_Send (paper §V.B). We take the first four machines of
	// the first Ethernet-free cluster named "griffon" when present;
	// otherwise (case D has no griffon) no rupture is injected.
	var waitBlocked, sendBlocked []int
	var slowRanks []int // all ranks on Ethernet clusters (graphite)
	for rank := 0; rank < procs; rank++ {
		cl, machine, err := sc.Platform.ClusterOf(rank)
		if err != nil {
			return nil, err
		}
		if cl.Name == "griffon" && !cfg.DisablePerturbations {
			switch machine {
			case 0, 1:
				waitBlocked = append(waitBlocked, rank)
			case 2, 3:
				sendBlocked = append(sendBlocked, rank)
			}
		}
		if cl.Network != grid5000.Infiniband20G {
			slowRanks = append(slowRanks, rank)
		}
	}
	waitSet := make(map[int]bool, len(waitBlocked))
	for _, r := range waitBlocked {
		waitSet[r] = true
	}
	sendSet := make(map[int]bool, len(sendBlocked))
	for _, r := range sendBlocked {
		sendSet[r] = true
	}

	for rank := 0; rank < procs; rank++ {
		rng := rankRNG(cfg.Seed, rank)
		cl, _, err := sc.Platform.ClusterOf(rank)
		if err != nil {
			return nil, err
		}
		rid := trace.ResourceID(rank)
		skew := 0.002 * R * rng.Float64()
		if err := emit(trace.Event{Resource: rid, State: StateInit, Start: 0, End: initEnd + skew}); err != nil {
			return nil, err
		}
		// Allreduce transition: scattered entry times make this phase
		// spatially heterogeneous (paper: "a spatially-heterogeneous
		// phase containing MPI_Allreduce function calls").
		enter := initEnd + skew + rng.Float64()*0.4*(allreduceEnd-initEnd)
		if err := emit(trace.Event{Resource: rid, State: StateCompute, Start: initEnd + skew, End: enter}); err != nil {
			return nil, err
		}
		if err := emit(trace.Event{Resource: rid, State: StateAllreduce, Start: enter, End: allreduceEnd}); err != nil {
			return nil, err
		}
		// Computation: the SSOR wavefront cycle. Cluster-specific mixes.
		ethernet := cl.Network != grid5000.Infiniband20G
		var mix []mixEntry
		jitter := 0.2
		switch {
		case ethernet:
			// Graphite: communication dominated, and *per-rank*
			// distinct (spatial heterogeneity): each process gets its
			// own persistent wait/send balance.
			bias := rng.Float64()
			mix = []mixEntry{
				{StateWait, 0.25 + 0.4*bias},
				{StateSend, 0.55 - 0.4*bias},
				{StateCompute, 0.15},
				{StateRecv, 0.05},
			}
			jitter = 0.6 // temporal irregularity
		default:
			mix = []mixEntry{
				{StateCompute, 0.55},
				{StateSend, 0.18},
				{StateRecv, 0.14},
				{StateWait, 0.13},
			}
		}
		if _, err := emitSegment(emit, rng, rid, allreduceEnd, ruptStart, cycleDur, jitter, mix); err != nil {
			return nil, err
		}
		// The rupture window.
		switch {
		case waitSet[rank]:
			// Blocked twice in MPI_Wait (paper: "two machines are
			// blocked twice in a MPI_wait").
			mid := (ruptStart + ruptEnd) / 2
			gap := 0.1 * (ruptEnd - ruptStart)
			if err := emit(trace.Event{Resource: rid, State: StateWait, Start: ruptStart, End: mid - gap/2}); err != nil {
				return nil, err
			}
			if err := emit(trace.Event{Resource: rid, State: StateCompute, Start: mid - gap/2, End: mid + gap/2}); err != nil {
				return nil, err
			}
			if err := emit(trace.Event{Resource: rid, State: StateWait, Start: mid + gap/2, End: ruptEnd}); err != nil {
				return nil, err
			}
		case sendSet[rank]:
			if err := emit(trace.Event{Resource: rid, State: StateSend, Start: ruptStart, End: ruptEnd}); err != nil {
				return nil, err
			}
		default:
			if _, err := emitSegment(emit, rng, rid, ruptStart, ruptEnd, cycleDur, jitter, mix); err != nil {
				return nil, err
			}
		}
		if _, err := emitSegment(emit, rng, rid, ruptEnd, R, cycleDur, jitter, mix); err != nil {
			return nil, err
		}
	}
	var perts []Perturbation
	if len(slowRanks) > 0 {
		perts = append(perts, Perturbation{
			Kind: "slow-interconnect", Start: allreduceEnd, End: R, Ranks: slowRanks,
		})
	}
	if len(waitBlocked)+len(sendBlocked) > 0 {
		perts = append(perts, Perturbation{
			Kind: "switch-sharing", Start: ruptStart, End: ruptEnd,
			Ranks: append(append([]int(nil), waitBlocked...), sendBlocked...),
		})
	}
	return perts, nil
}
