package mpisim

import (
	"math"
	"testing"

	"ocelotl/internal/core"
	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/trace"
)

func genCase(t *testing.T, c grid5000.Case, cfg Config) *Result {
	t.Helper()
	res, err := GenerateCase(c, cfg)
	if err != nil {
		t.Fatalf("GenerateCase(%s): %v", c, err)
	}
	return res
}

func TestCaseAGenerates(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 1, Scale: 0.02})
	tr := res.Trace
	if tr.NumResources() != 64 {
		t.Errorf("resources = %d, want 64", tr.NumResources())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	// Event budget within a reasonable factor of the target.
	scale := 0.02
	target := int(scale * 3838144)
	if n := tr.NumEvents(); n < target/2 || n > target*2 {
		t.Errorf("events = %d, want ≈%d", n, target)
	}
	// The window matches the paper's runtime.
	s, e := tr.Window()
	if s != 0 || math.Abs(e-9.5) > 1e-9 {
		t.Errorf("window = (%g,%g), want (0,9.5)", s, e)
	}
}

func TestDeterminism(t *testing.T) {
	a := genCase(t, grid5000.CaseA, Config{Seed: 7, Scale: 0.005})
	b := genCase(t, grid5000.CaseA, Config{Seed: 7, Scale: 0.005})
	if a.Trace.NumEvents() != b.Trace.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.Trace.NumEvents(), b.Trace.NumEvents())
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Trace.Events[i], b.Trace.Events[i])
		}
	}
	c := genCase(t, grid5000.CaseA, Config{Seed: 8, Scale: 0.005})
	same := a.Trace.NumEvents() == c.Trace.NumEvents()
	if same {
		for i := range a.Trace.Events {
			if a.Trace.Events[i] != c.Trace.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestEventsTileEachRank(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 3, Scale: 0.005})
	tr := res.Trace
	// Per-rank events must be contiguous in time (no gaps or overlaps
	// beyond float noise) and inside the window.
	last := make([]float64, tr.NumResources())
	for _, e := range tr.Events {
		r := int(e.Resource)
		if e.Start < last[r]-1e-9 {
			t.Fatalf("rank %d: event starts at %g before previous end %g", r, e.Start, last[r])
		}
		last[r] = e.End
	}
	_, we := tr.Window()
	for r, end := range last {
		if math.Abs(end-we) > 0.05*we {
			t.Errorf("rank %d: timeline ends at %g, window ends at %g", r, end, we)
		}
	}
}

func TestCGPerturbationGroundTruth(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 5, Scale: 0.01})
	if len(res.Perturbations) != 1 {
		t.Fatalf("got %d perturbations, want 1", len(res.Perturbations))
	}
	p := res.Perturbations[0]
	if p.Kind != "network-contention" {
		t.Errorf("kind = %q", p.Kind)
	}
	// Paper: around 3 s of a 9.5 s run.
	if p.Start < 2.5 || p.Start > 3.6 {
		t.Errorf("perturbation at %g s, want ≈3 s", p.Start)
	}
	// Paper: 26 of 64 processes.
	if len(p.Ranks) < 20 || len(p.Ranks) > 32 {
		t.Errorf("%d ranks perturbed, want ≈26", len(p.Ranks))
	}
}

func TestCGPerturbationVisibleInModel(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 5, Scale: 0.02})
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Perturbations[0]
	pertSlice := m.Slicer.SliceOf((p.Start + p.End) / 2)
	affected := p.Ranks[0]
	var unaffected int
	seen := map[int]bool{}
	for _, r := range p.Ranks {
		seen[r] = true
	}
	for r := 0; r < 64; r++ {
		if !seen[r] && r%8 != 0 { // skip the wait-dedicated processes
			unaffected = r
			break
		}
	}
	// During the perturbation the affected rank spends clearly more time
	// in Send+Wait than an unaffected sender.
	leafA := m.H.LeafIndex(res.Trace.Resources[affected])
	leafU := m.H.LeafIndex(res.Trace.Resources[unaffected])
	pa := m.Rho(StateSend, leafA, pertSlice) + m.Rho(StateWait, leafA, pertSlice)
	pu := m.Rho(StateSend, leafU, pertSlice) + m.Rho(StateWait, leafU, pertSlice)
	if pa < pu+0.1 {
		t.Errorf("perturbed rank comm share %.3f not clearly above unaffected %.3f", pa, pu)
	}
}

func TestCGInitPhaseHomogeneous(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 2, Scale: 0.01})
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	// First slice: everyone in MPI_Init.
	for s := 0; s < m.NumResources(); s++ {
		if got := m.Rho(StateInit, s, 0); math.Abs(got-1) > 1e-9 {
			t.Fatalf("resource %d: init share %g in slice 0", s, got)
		}
	}
}

func TestDisablePerturbations(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 5, Scale: 0.005, DisablePerturbations: true})
	if len(res.Perturbations) != 0 {
		t.Errorf("perturbations injected despite DisablePerturbations: %v", res.Perturbations)
	}
}

func TestCaseCGenerates(t *testing.T) {
	res := genCase(t, grid5000.CaseC, Config{Seed: 1, EventTarget: 150000})
	tr := res.Trace
	if tr.NumResources() != 700 {
		t.Errorf("resources = %d, want 700", tr.NumResources())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ground truth: a slow-interconnect condition on graphite's 64 ranks
	// and the switch-sharing rupture on 4 griffon machines.
	var slow, rupture *Perturbation
	for i := range res.Perturbations {
		switch res.Perturbations[i].Kind {
		case "slow-interconnect":
			slow = &res.Perturbations[i]
		case "switch-sharing":
			rupture = &res.Perturbations[i]
		}
	}
	if slow == nil || len(slow.Ranks) != 64 {
		t.Errorf("slow-interconnect ground truth wrong: %+v", slow)
	}
	if rupture == nil {
		t.Fatal("no switch-sharing rupture")
	}
	// 34.5 s of 70 s.
	if rupture.Start < 30 || rupture.Start > 38 {
		t.Errorf("rupture at %g s, want ≈34.5 s", rupture.Start)
	}
	// Two machines blocked in wait + two in send; griffon has 8
	// cores/machine → 32 ranks.
	if len(rupture.Ranks) != 32 {
		t.Errorf("%d ranks in rupture, want 32", len(rupture.Ranks))
	}
}

func TestLURuptureVisible(t *testing.T) {
	res := genCase(t, grid5000.CaseC, Config{Seed: 4, EventTarget: 200000})
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	var rupture Perturbation
	for _, p := range res.Perturbations {
		if p.Kind == "switch-sharing" {
			rupture = p
		}
	}
	slice := m.Slicer.SliceOf((rupture.Start + rupture.End) / 2)
	r := rupture.Ranks[0] // a wait-blocked rank
	leaf := m.H.LeafIndex(res.Trace.Resources[r])
	if got := m.Rho(StateWait, leaf, slice); got < 0.5 {
		t.Errorf("blocked rank wait share %.3f during rupture, want > 0.5", got)
	}
}

func TestCaseBAndDGenerate(t *testing.T) {
	for _, c := range []grid5000.Case{grid5000.CaseB, grid5000.CaseD} {
		res := genCase(t, c, Config{Seed: 1, EventTarget: 60000})
		if err := res.Trace.Validate(); err != nil {
			t.Errorf("case %s: %v", c, err)
		}
	}
}

func TestGenerateStreamMatchesGenerate(t *testing.T) {
	sc, _ := grid5000.Scenarios(grid5000.CaseA)
	cfg := Config{Seed: 11, Scale: 0.003}
	var streamed []trace.Event
	if _, err := GenerateStream(sc, cfg, func(ev trace.Event) error {
		streamed = append(streamed, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Generate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != res.Trace.NumEvents() {
		t.Fatalf("stream %d events, in-memory %d", len(streamed), res.Trace.NumEvents())
	}
	for i := range streamed {
		if streamed[i] != res.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestUnknownApplicationRejected(t *testing.T) {
	sc, _ := grid5000.Scenarios(grid5000.CaseA)
	sc.Application = "FT"
	if _, err := Generate(sc, Config{Seed: 1}); err == nil {
		t.Error("unknown application accepted")
	}
}

// TestAggregationFindsCGPerturbation is the end-to-end §V.A check: the
// spatiotemporal aggregation at a detail-preserving p must place a
// temporal cut near the injected perturbation window.
func TestAggregationFindsCGPerturbation(t *testing.T) {
	res := genCase(t, grid5000.CaseA, Config{Seed: 9, Scale: 0.02})
	m, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := core.Aggregate(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Perturbations[0]
	loSlice := m.Slicer.SliceOf(p.Start)
	hiSlice := m.Slicer.SliceOf(p.End)
	// Some area boundary must fall within [loSlice-1, hiSlice+1].
	found := false
	for _, a := range pt.Areas {
		if (a.I >= loSlice-1 && a.I <= hiSlice+1) || (a.J+1 >= loSlice-1 && a.J+1 <= hiSlice+1) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no aggregate boundary near the perturbation (slices %d-%d); areas: %d", loSlice, hiSlice, pt.NumAreas())
	}
}

func TestArtificialTrace(t *testing.T) {
	tr := Artificial()
	if tr.NumResources() != 12 || tr.NumStates() != 2 {
		t.Fatalf("dims: %d resources, %d states", tr.NumResources(), tr.NumStates())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exactly 2 events per (resource, slice).
	if tr.NumEvents() != 12*20*2 {
		t.Errorf("events = %d, want %d", tr.NumEvents(), 12*20*2)
	}
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Proportions sum to 1 everywhere.
	for s := 0; s < 12; s++ {
		for ti := 0; ti < 20; ti++ {
			sum := m.Rho(0, s, ti) + m.Rho(1, s, ti)
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("(s=%d,t=%d): ρ sums to %g", s, ti, sum)
			}
		}
	}
	// Slice 7 (T(8)) is fully homogeneous at 0.5.
	for s := 0; s < 12; s++ {
		if got := m.Rho(0, s, 7); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("slice 7 not homogeneous: ρ(0,%d,7) = %g", s, got)
		}
	}
}

func TestArtificialAggregationShape(t *testing.T) {
	tr := Artificial()
	m, err := microscopic.Build(tr, microscopic.Options{Slices: 20})
	if err != nil {
		t.Fatal(err)
	}
	agg := core.New(m, core.Options{})
	// A low p keeps detail; a high p aggregates more coarsely
	// (Fig. 3.d vs 3.e: 56 areas then 15).
	lo, err := agg.Run(0.3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := agg.Run(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo.NumAreas() <= hi.NumAreas() {
		t.Errorf("areas: p=0.3 → %d, p=0.95 → %d; want strictly more detail at low p", lo.NumAreas(), hi.NumAreas())
	}
	if err := lo.Validate(m.H, 20); err != nil {
		t.Fatal(err)
	}
	if err := hi.Validate(m.H, 20); err != nil {
		t.Fatal(err)
	}
}

func TestArtificialSized(t *testing.T) {
	tr := ArtificialSized(30, 40)
	if tr.NumResources() != 30 {
		t.Errorf("resources = %d", tr.NumResources())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degenerate arguments clamp.
	tr = ArtificialSized(1, 1)
	if tr.NumResources() < 3 {
		t.Errorf("clamped resources = %d", tr.NumResources())
	}
}

func TestEmitSegmentEdgeCases(t *testing.T) {
	rng := rankRNG(1, 0)
	n, err := emitSegment(func(trace.Event) error { return nil }, rng, 0, 5, 5, 1, 0, []mixEntry{{0, 1}})
	if err != nil || n != 0 {
		t.Errorf("empty segment emitted %d events", n)
	}
	n, err = emitSegment(func(trace.Event) error { return nil }, rng, 0, 0, 1, 0, 0, []mixEntry{{0, 1}})
	if err != nil || n != 0 {
		t.Errorf("zero cycle duration emitted %d events", n)
	}
	n, err = emitSegment(func(trace.Event) error { return nil }, rng, 0, 0, 1, 1, 0, []mixEntry{{0, 0}})
	if err != nil || n != 0 {
		t.Errorf("zero-share mix emitted %d events", n)
	}
}
