package mpisim

import (
	"strconv"

	"ocelotl/internal/trace"
)

// Artificial builds the paper's Fig. 3 synthetic trace: 12 resources in
// three clusters S_A (s1–s4), S_B (s5–s8), S_C (s9–s12), 20 microscopic
// time periods of 1 s, and two states whose proportions sum to 1 in every
// microscopic area. The spatiotemporal patterns follow §III.D's
// description of the optimal partition (Fig. 3.d):
//
//   - T(1,2): homogeneous in time, heterogeneous in space (each resource
//     keeps its own level for two slices);
//   - T(3,5): homogeneous in time, heterogeneous in space *except* for
//     cluster S_A, whose resources share one level;
//   - T(6,7): homogeneous in time and in space at the cluster level
//     (one level per cluster);
//   - T(8): fully homogeneous (all resources at one level);
//   - T(9,20): S_A homogeneous in space but heterogeneous in time
//     (level changes every three slices); S_B homogeneous in both;
//     S_C mixes finer imbrications (two sub-blocks with their own
//     temporal splits, one alternating resource, one constant).
//
// State 0 plays the role of the figure's square intensity ρ₁; state 1 is
// the complement ρ₂ = 1 − ρ₁.
func Artificial() *trace.Trace {
	const (
		nRes = 12
		nT   = 20
	)
	paths := []string{
		"SA/s1", "SA/s2", "SA/s3", "SA/s4",
		"SB/s5", "SB/s6", "SB/s7", "SB/s8",
		"SC/s9", "SC/s10", "SC/s11", "SC/s12",
	}
	tr := trace.New(paths, []string{"busy", "idle"})
	tr.Start, tr.End = 0, nT

	rho := func(s, t int) float64 {
		cluster := s / 4 // 0 = SA, 1 = SB, 2 = SC
		switch {
		case t < 2: // T(1,2): per-resource levels
			return float64(s+1) / 13
		case t < 5: // T(3,5): SA merged at 0.2, others per-resource
			if cluster == 0 {
				return 0.2
			}
			return float64(s+1) / 13
		case t < 7: // T(6,7): one level per cluster
			return []float64{0.2, 0.5, 0.8}[cluster]
		case t < 8: // T(8): fully homogeneous
			return 0.5
		default: // T(9,20)
			switch cluster {
			case 0: // SA: spatial homogeneity, temporal phases of 3
				phase := (t - 8) / 3
				return []float64{0.15, 0.85, 0.35, 0.65}[phase%4]
			case 1: // SB: constant
				return 0.4
			default: // SC: imbricated patterns
				switch s {
				case 8, 9: // s9, s10: one temporal split at t=14
					if t < 14 {
						return 0.3
					}
					return 0.7
				case 10: // s11: alternating every slice
					if (t-8)%2 == 0 {
						return 0.9
					}
					return 0.1
				default: // s12: constant
					return 0.55
				}
			}
		}
	}
	for s := 0; s < nRes; s++ {
		for t := 0; t < nT; t++ {
			v := rho(s, t)
			lo, hi := float64(t), float64(t+1)
			tr.Add(trace.ResourceID(s), 0, lo, lo+v)
			tr.Add(trace.ResourceID(s), 1, lo+v, hi)
		}
	}
	return tr
}

// ArtificialSized builds a synthetic trace with the Fig. 3 block structure
// generalized to nRes resources (split into three equal clusters) and nT
// slices — used by the scaling benchmarks where Fig. 3's 12×20 is too
// small. Resources keep the same four-band temporal pattern stretched to
// the requested width.
func ArtificialSized(nRes, nT int) *trace.Trace {
	if nRes < 3 {
		nRes = 3
	}
	if nT < 4 {
		nT = 4
	}
	paths := make([]string, nRes)
	clusterNames := []string{"SA", "SB", "SC"}
	per := (nRes + 2) / 3
	for s := 0; s < nRes; s++ {
		c := s / per
		if c > 2 {
			c = 2
		}
		paths[s] = clusterNames[c] + "/s" + strconv.Itoa(s+1)
	}
	tr := trace.New(paths, []string{"busy", "idle"})
	tr.Start, tr.End = 0, float64(nT)
	for s := 0; s < nRes; s++ {
		c := s / per
		if c > 2 {
			c = 2
		}
		for t := 0; t < nT; t++ {
			frac := float64(t) / float64(nT)
			var v float64
			switch {
			case frac < 0.1: // heterogeneous band
				v = float64(s%13+1) / 14
			case frac < 0.4: // cluster bands
				v = []float64{0.2, 0.5, 0.8}[c]
			case frac < 0.5: // homogeneous band
				v = 0.5
			default: // cluster-specific temporal phases
				switch c {
				case 0:
					phase := int(4*(frac-0.5)/0.5) % 4
					v = []float64{0.15, 0.85, 0.35, 0.65}[phase]
				case 1:
					v = 0.4
				default:
					if s%2 == 0 {
						v = 0.3
						if frac > 0.75 {
							v = 0.7
						}
					} else {
						v = 0.55
					}
				}
			}
			lo := float64(t)
			tr.Add(trace.ResourceID(s), 0, lo, lo+v)
			tr.Add(trace.ResourceID(s), 1, lo+v, lo+1)
		}
	}
	return tr
}
