package traceio

import (
	"errors"
	"fmt"
)

// CorruptError is the structured decode error both readers return for
// truncated or garbage input: it carries where in the stream decoding
// failed — a byte offset for the binary format, a 1-based line number for
// CSV — so a bad trace file can be bisected without re-running the
// decoder under a debugger. Use errors.As to recover the position from
// any error returned by a Reader.
type CorruptError struct {
	Format Format
	Offset int64 // byte offset into the (decompressed) stream; -1 if unknown
	Line   int   // 1-based line number (CSV); 0 if unknown
	Err    error // underlying cause
}

func (e *CorruptError) Error() string {
	switch {
	case e.Line > 0:
		return fmt.Sprintf("traceio: %s line %d: %v", e.Format, e.Line, e.Err)
	case e.Offset >= 0:
		return fmt.Sprintf("traceio: %s: %v (at byte %d)", e.Format, e.Err, e.Offset)
	default:
		return fmt.Sprintf("traceio: %s: %v", e.Format, e.Err)
	}
}

func (e *CorruptError) Unwrap() error { return e.Err }

// IsCorrupt reports whether err marks undecodable trace data (as opposed
// to an I/O failure opening or reading the file).
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}
