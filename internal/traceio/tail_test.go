package traceio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ocelotl/internal/trace"
)

// encodeTrace renders tr in format to a byte slice (header + events).
func encodeTrace(t *testing.T, tr *trace.Trace, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	start, end := tr.Window()
	w, err := NewWriter(&buf, format, Header{Resources: tr.Resources, States: tr.States, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainTail reads events until the terminal error.
func drainTail(tail *TailReader) ([]trace.Event, error) {
	var out []trace.Event
	var ev trace.Event
	for {
		if err := tail.Next(&ev); err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

func tailFormats() map[string]Format {
	return map[string]Format{"binary": FormatBinary, "csv": FormatCSV}
}

func extFor(f Format) string {
	if f == FormatBinary {
		return "t.bin"
	}
	return "t.csv"
}

// TestTailReadsCompleteFile: on a finished file, the tail reader yields
// exactly the batch reader's events and then reports a retryable
// incomplete (a finished file is indistinguishable from a paused writer).
func TestTailReadsCompleteFile(t *testing.T) {
	for name, format := range tailFormats() {
		t.Run(name, func(t *testing.T) {
			tr := sampleTrace()
			path := filepath.Join(t.TempDir(), extFor(format))
			if err := os.WriteFile(path, encodeTrace(t, tr, format), 0o644); err != nil {
				t.Fatal(err)
			}
			tail, err := OpenTail(path)
			if err != nil {
				t.Fatalf("OpenTail: %v", err)
			}
			defer tail.Close()
			if got := tail.Format(); got != format {
				t.Errorf("Format = %v, want %v", got, format)
			}
			if s, e := tail.Window(); s != 0 || e != 10 {
				t.Errorf("Window = (%g,%g), want (0,10)", s, e)
			}
			events, err := drainTail(tail)
			if !IsIncomplete(err) {
				t.Fatalf("terminal error = %v, want ErrIncomplete", err)
			}
			if len(events) != len(tr.Events) {
				t.Fatalf("read %d events, want %d", len(events), len(tr.Events))
			}
			for i := range events {
				if events[i] != tr.Events[i] {
					t.Errorf("event %d: %+v != %+v", i, events[i], tr.Events[i])
				}
			}
		})
	}
}

// TestTailFollowsAppends: events flushed after the reader drained the file
// are picked up by later Next calls — the follow loop's core motion.
func TestTailFollowsAppends(t *testing.T) {
	for name, format := range tailFormats() {
		t.Run(name, func(t *testing.T) {
			tr := sampleTrace()
			full := encodeTrace(t, tr, format)
			hdr := encodeTrace(t, &trace.Trace{Resources: tr.Resources, States: tr.States, Start: 0, End: 10}, format)

			path := filepath.Join(t.TempDir(), extFor(format))
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(hdr); err != nil {
				t.Fatal(err)
			}

			// A CSV header is only provably complete once the first event
			// line lands, so the open itself may need to wait for data —
			// retry it exactly like a follower would.
			var tail *TailReader
			if tail, err = OpenTail(path); err != nil && !IsIncomplete(err) {
				t.Fatalf("OpenTail: %v", err)
			}
			defer func() {
				if tail != nil {
					tail.Close()
				}
			}()
			if tail != nil {
				if evs, err := drainTail(tail); !IsIncomplete(err) || len(evs) != 0 {
					t.Fatalf("before events: got %d events, err %v", len(evs), err)
				}
			}

			// Append the event section a few bytes at a time, checking the
			// reader never mistakes a torn tail for corruption and ends up
			// with every event exactly once.
			rest := full[len(hdr):]
			var got []trace.Event
			for len(rest) > 0 {
				n := 5
				if n > len(rest) {
					n = len(rest)
				}
				if _, err := f.Write(rest[:n]); err != nil {
					t.Fatal(err)
				}
				rest = rest[n:]
				if tail == nil {
					if tail, err = OpenTail(path); err != nil {
						if IsIncomplete(err) {
							tail = nil
							continue
						}
						t.Fatalf("OpenTail retry: %v", err)
					}
				}
				evs, err := drainTail(tail)
				if !IsIncomplete(err) {
					t.Fatalf("mid-append error = %v, want ErrIncomplete", err)
				}
				got = append(got, evs...)
			}
			if len(got) != len(tr.Events) {
				t.Fatalf("got %d events, want %d", len(got), len(tr.Events))
			}
			for i := range got {
				if got[i] != tr.Events[i] {
					t.Errorf("event %d: %+v != %+v", i, got[i], tr.Events[i])
				}
			}
		})
	}
}

// TestTailHeaderIncomplete: a file cut anywhere inside the header opens
// with a retryable incomplete, never corruption.
func TestTailHeaderIncomplete(t *testing.T) {
	for name, format := range tailFormats() {
		t.Run(name, func(t *testing.T) {
			tr := sampleTrace()
			hdr := encodeTrace(t, &trace.Trace{Resources: tr.Resources, States: tr.States, Start: 0, End: 10}, format)
			for cut := 0; cut < len(hdr); cut++ {
				if format == FormatCSV && cut > 0 && hdr[cut-1] == '\n' && bytes.HasPrefix(hdr[cut:], []byte("event")) {
					continue // header complete at this boundary for CSV
				}
				path := filepath.Join(t.TempDir(), extFor(format))
				if err := os.WriteFile(path, hdr[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				_, err := OpenTail(path)
				if err == nil {
					// Complete-at-cut is fine for CSV (header ends before
					// the first event line, which sampleTrace always has).
					continue
				}
				if !IsIncomplete(err) {
					t.Fatalf("cut %d/%d: err = %v, want ErrIncomplete", cut, len(hdr), err)
				}
			}
		})
	}
}

// TestTailCorruption: decodable-but-invalid bytes are a CorruptError (with
// position info), not a retryable incomplete.
func TestTailCorruption(t *testing.T) {
	tr := sampleTrace()
	t.Run("binary-overflowing-varint", func(t *testing.T) {
		full := encodeTrace(t, tr, FormatBinary)
		// Ten 0x80 continuation bytes: a uvarint that provably cannot
		// terminate within 64 bits.
		data := append(append([]byte{}, full...), bytes.Repeat([]byte{0x80}, 12)...)
		path := filepath.Join(t.TempDir(), "t.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tail, err := OpenTail(path)
		if err != nil {
			t.Fatal(err)
		}
		defer tail.Close()
		events, err := drainTail(tail)
		if !IsCorrupt(err) {
			t.Fatalf("err = %v, want CorruptError", err)
		}
		var ce *CorruptError
		if asCorrupt(err, &ce); ce.Offset != int64(len(full)) {
			t.Errorf("corrupt offset = %d, want %d", ce.Offset, len(full))
		}
		if len(events) != len(tr.Events) {
			t.Errorf("events before corruption = %d, want %d", len(events), len(tr.Events))
		}
	})
	t.Run("binary-out-of-range-resource", func(t *testing.T) {
		full := encodeTrace(t, tr, FormatBinary)
		// resource 200 (one varint byte 0xC8,0x01), state 0, 16 payload bytes.
		bad := append([]byte{0xC8, 0x01, 0x00}, make([]byte, 16)...)
		data := append(append([]byte{}, full...), bad...)
		path := filepath.Join(t.TempDir(), "t.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tail, err := OpenTail(path)
		if err != nil {
			t.Fatal(err)
		}
		defer tail.Close()
		if _, err := drainTail(tail); !IsCorrupt(err) {
			t.Fatalf("err = %v, want CorruptError", err)
		}
	})
	t.Run("csv-malformed-line", func(t *testing.T) {
		full := encodeTrace(t, tr, FormatCSV)
		data := append(append([]byte{}, full...), []byte("event,not-a-number,0,1,2\n")...)
		path := filepath.Join(t.TempDir(), "t.csv")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tail, err := OpenTail(path)
		if err != nil {
			t.Fatal(err)
		}
		defer tail.Close()
		events, err := drainTail(tail)
		if !IsCorrupt(err) {
			t.Fatalf("err = %v, want CorruptError", err)
		}
		var ce *CorruptError
		if asCorrupt(err, &ce); ce.Line == 0 {
			t.Errorf("corrupt line not reported: %+v", ce)
		}
		if len(events) != len(tr.Events) {
			t.Errorf("events before corruption = %d, want %d", len(events), len(tr.Events))
		}
	})
}

// TestTailRejectsGzip: compressed traces cannot be followed and say so.
func TestTailRejectsGzip(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.bin.gz")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	_, err := OpenTail(path)
	if err == nil || IsIncomplete(err) {
		t.Fatalf("OpenTail(gzip) = %v, want a hard error", err)
	}
}

// TestTailOffsetResume: Offset after N events resumes an OpenTailAt reader
// exactly at event N.
func TestTailOffsetResume(t *testing.T) {
	for name, format := range tailFormats() {
		t.Run(name, func(t *testing.T) {
			tr := sampleTrace()
			path := filepath.Join(t.TempDir(), extFor(format))
			if err := os.WriteFile(path, encodeTrace(t, tr, format), 0o644); err != nil {
				t.Fatal(err)
			}
			tail, err := OpenTail(path)
			if err != nil {
				t.Fatal(err)
			}
			var ev trace.Event
			for i := 0; i < 2; i++ {
				if err := tail.Next(&ev); err != nil {
					t.Fatal(err)
				}
			}
			off := tail.Offset()
			tail.Close()

			resumed, err := OpenTailAt(path, off)
			if err != nil {
				t.Fatalf("OpenTailAt(%d): %v", off, err)
			}
			defer resumed.Close()
			events, err := drainTail(resumed)
			if !IsIncomplete(err) {
				t.Fatalf("terminal error = %v, want ErrIncomplete", err)
			}
			if want := tr.Events[2:]; len(events) != len(want) {
				t.Fatalf("resumed read %d events, want %d", len(events), len(want))
			} else {
				for i := range want {
					if events[i] != want[i] {
						t.Errorf("resumed event %d: %+v != %+v", i, events[i], want[i])
					}
				}
			}

			if _, err := OpenTailAt(path, 1); err == nil {
				t.Error("OpenTailAt inside the header: want error")
			}
			if _, err := OpenTailAt(path, -1); err == nil {
				t.Error("OpenTailAt(-1): want error")
			}
		})
	}
}

// TestTailTornRecords cuts a complete file at every byte position past the
// header: the tail reader must yield an exact prefix of the events with a
// retryable incomplete, and after the remainder is appended, exactly the
// missing suffix — never corruption, never a duplicate or dropped event.
func TestTailTornRecords(t *testing.T) {
	for name, format := range tailFormats() {
		t.Run(name, func(t *testing.T) {
			tr := sampleTrace()
			full := encodeTrace(t, tr, format)
			hdr := encodeTrace(t, &trace.Trace{Resources: tr.Resources, States: tr.States, Start: 0, End: 10}, format)
			dir := t.TempDir()
			for cut := len(hdr); cut <= len(full); cut++ {
				path := filepath.Join(dir, extFor(format))
				if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				var head []trace.Event
				tail, err := OpenTail(path)
				if err != nil {
					// A CSV cut right at the header boundary can leave the
					// header unprovably complete (no event line yet) — a
					// retryable state, not a failure.
					if !IsIncomplete(err) {
						t.Fatalf("cut %d: OpenTail: %v", cut, err)
					}
				} else {
					head, err = drainTail(tail)
					if !IsIncomplete(err) {
						tail.Close()
						t.Fatalf("cut %d: torn tail error = %v, want ErrIncomplete", cut, err)
					}
				}
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(full[cut:]); err != nil {
					t.Fatal(err)
				}
				f.Close()
				if tail == nil {
					if tail, err = OpenTail(path); err != nil {
						t.Fatalf("cut %d: OpenTail after completing: %v", cut, err)
					}
				}
				rest, err := drainTail(tail)
				tail.Close()
				if !IsIncomplete(err) {
					t.Fatalf("cut %d: completed tail error = %v, want ErrIncomplete", cut, err)
				}
				got := append(head, rest...)
				if len(got) != len(tr.Events) {
					t.Fatalf("cut %d: got %d events, want %d", cut, len(got), len(tr.Events))
				}
				for i := range got {
					if got[i] != tr.Events[i] {
						t.Fatalf("cut %d: event %d mismatch: %+v != %+v", cut, i, got[i], tr.Events[i])
					}
				}
			}
		})
	}
}

func asCorrupt(err error, ce **CorruptError) bool { return errors.As(err, ce) }
