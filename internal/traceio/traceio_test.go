package traceio

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"ocelotl/internal/grid5000"
	"ocelotl/internal/microscopic"
	"ocelotl/internal/mpisim"
	"ocelotl/internal/trace"
)

func sampleTrace() *trace.Trace {
	tr := trace.New([]string{"A/a0", "A/a1", "B/b0"}, []string{"run", "wait"})
	tr.Start, tr.End = 0, 10
	tr.Add(0, 0, 0, 2.5)
	tr.Add(1, 1, 0.25, 9.75)
	tr.Add(2, 0, 3, 4)
	tr.Add(2, 1, 4, 10)
	return tr
}

func roundTripFile(t *testing.T, name string) {
	t.Helper()
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), name)
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got.Resources) != 3 || got.Resources[2] != "B/b0" {
		t.Errorf("resources = %v", got.Resources)
	}
	if len(got.States) != 2 || got.States[1] != "wait" {
		t.Errorf("states = %v", got.States)
	}
	s, e := got.Window()
	if s != 0 || e != 10 {
		t.Errorf("window = (%g,%g)", s, e)
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Fatalf("events = %d, want %d", got.NumEvents(), tr.NumEvents())
	}
	for i := range tr.Events {
		if tr.Events[i] != got.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestRoundTripCSV(t *testing.T)      { roundTripFile(t, "t.csv") }
func TestRoundTripCSVGz(t *testing.T)    { roundTripFile(t, "t.csv.gz") }
func TestRoundTripBinary(t *testing.T)   { roundTripFile(t, "t.bin") }
func TestRoundTripBinaryGz(t *testing.T) { roundTripFile(t, "t.bin.gz") }

func TestFormatForPath(t *testing.T) {
	cases := []struct {
		path string
		f    Format
		gz   bool
	}{
		{"a.csv", FormatCSV, false},
		{"a.paje", FormatCSV, false},
		{"a.txt.gz", FormatCSV, true},
		{"a.bin", FormatBinary, false},
		{"a.bin.gz", FormatBinary, true},
		{"a.unknown", FormatBinary, false},
		{"A.CSV", FormatCSV, false},
	}
	for _, c := range cases {
		f, gz := FormatForPath(c.path)
		if f != c.f || gz != c.gz {
			t.Errorf("FormatForPath(%q) = (%v,%v), want (%v,%v)", c.path, f, gz, c.f, c.gz)
		}
	}
}

func TestFormatString(t *testing.T) {
	if FormatCSV.String() != "csv" || FormatBinary.String() != "binary" {
		t.Error("format names wrong")
	}
	if !strings.HasPrefix(Format(9).String(), "format(") {
		t.Error("unknown format String")
	}
}

func TestSniffingIgnoresExtension(t *testing.T) {
	// Write binary into a .csv-named file: OpenFile must still decode it.
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "actually-binary.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, FormatBinary, Header{Resources: tr.Resources, States: tr.States, Start: 0, End: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		w.WriteEvent(e)
	}
	w.Close()
	f.Close()
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("sniffing failed: %v", err)
	}
	if got.NumEvents() != tr.NumEvents() {
		t.Errorf("events = %d", got.NumEvents())
	}
}

func TestStreamingReaderInterface(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var ev trace.Event
	n := 0
	for {
		err := r.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != tr.NumEvents() {
		t.Errorf("streamed %d events, want %d", n, tr.NumEvents())
	}
	// EOF is sticky.
	if err := r.Next(&ev); err != io.EOF {
		t.Errorf("post-EOF Next = %v", err)
	}
}

func TestCountEvents(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.csv.gz")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	n, err := CountEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(tr.NumEvents()) {
		t.Errorf("CountEvents = %d, want %d", n, tr.NumEvents())
	}
}

func TestHeaderValidate(t *testing.T) {
	ok := Header{Resources: []string{"a"}, States: []string{"x"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid header rejected: %v", err)
	}
	bad := []Header{
		{States: []string{"x"}},
		{Resources: []string{"a"}},
		{Resources: []string{"a,b"}, States: []string{"x"}},
		{Resources: []string{"a"}, States: []string{"x\ny"}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad header %d accepted", i)
		}
	}
}

func TestCSVRejectsCorruption(t *testing.T) {
	cases := []string{
		"",                                    // empty
		"window,0,1\n",                        // no tables
		"bogus,1,2\n",                         // unknown kind
		"event,0,0,0,1\n",                     // event before tables
		"resource,1,a\n",                      // non-dense IDs
		"resource,0,a\nstate,0,x\nwindow,0\n", // malformed window
	}
	for i, body := range cases {
		_, err := NewReader(strings.NewReader(body))
		if err == nil {
			t.Errorf("corrupt CSV %d accepted", i)
		}
	}
}

func TestCSVRejectsBadEvents(t *testing.T) {
	head := "resource,0,a\nstate,0,x\n"
	cases := []string{
		head + "event,0,0,zero,1\n",
		head + "event,0,0,0\n",
		head + "event,5,0,0,1\n",
		head + "event,0,5,0,1\n",
		head + "resource,1,b\n", // table line after events started is fine only before events; here it's first non-event... actually this is a header line, accepted
	}
	for i, body := range cases[:4] {
		r, err := NewReader(strings.NewReader(body))
		if err != nil {
			continue // rejected at header stage is fine too
		}
		var ev trace.Event
		if err := r.Next(&ev); err == nil {
			t.Errorf("corrupt CSV event %d accepted", i)
		}
	}
}

func TestCSVSkipsCommentsAndBlanks(t *testing.T) {
	body := "# comment\n\nwindow,0,5\nresource,0,a\nstate,0,x\n\n# mid comment\nevent,0,0,1,2\n\n"
	r, err := NewReader(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	if err := r.Next(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Start != 1 || ev.End != 2 {
		t.Errorf("event = %+v", ev)
	}
	if err := r.Next(&ev); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	// Build a valid stream then truncate/corrupt it.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, FormatBinary, Header{Resources: []string{"a"}, States: []string{"x"}, Start: 0, End: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.WriteEvent(trace.Event{Resource: 0, State: 0, Start: 0, End: 1})
	w.Close()
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), full[4:]...)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		// Sniffing falls back to CSV, which must then fail.
		t.Error("bad magic accepted")
	}
	// Truncated mid-event.
	trunc := full[:len(full)-5]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	if err := r.Next(&ev); err == nil {
		t.Error("truncated event decoded")
	}
	// Bad version.
	badv := append([]byte(nil), full...)
	badv[4] = 99
	if _, err := NewReader(bytes.NewReader(badv)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestBinaryRejectsOutOfRangeIDs(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, FormatBinary, Header{Resources: []string{"a"}, States: []string{"x"}})
	w.WriteEvent(trace.Event{Resource: 0, State: 0, Start: 0, End: 1})
	w.Close()
	raw := buf.Bytes()
	// The first event byte after the header is the resource varint (0);
	// bump it out of range.
	raw[len(raw)-18] = 7
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	if err := r.Next(&ev); err == nil {
		t.Error("out-of-range resource accepted")
	}
}

func TestWriterRejectsNegativeIDs(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, FormatBinary, Header{Resources: []string{"a"}, States: []string{"x"}})
	if err := w.WriteEvent(trace.Event{Resource: -1, State: 0}); err == nil {
		t.Error("negative resource accepted")
	}
}

func TestNewWriterRejectsUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Format(42), Header{Resources: []string{"a"}, States: []string{"x"}}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Error("missing file opened")
	}
}

// TestRoundTripProperty: arbitrary traces survive both codecs exactly
// (float64 values are encoded losslessly in both formats).
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := trace.New([]string{"c/a", "c/b", "d/e"}, []string{"x", "y", "z"})
		tr.Start, tr.End = 0, 100
		for i := 0; i < 60; i++ {
			start := rng.Float64() * 99
			tr.Add(trace.ResourceID(rng.Intn(3)), trace.StateID(rng.Intn(3)), start, start+rng.Float64())
		}
		for _, format := range []Format{FormatCSV, FormatBinary} {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, format, Header{Resources: tr.Resources, States: tr.States, Start: tr.Start, End: tr.End})
			if err != nil {
				return false
			}
			for _, e := range tr.Events {
				if w.WriteEvent(e) != nil {
					return false
				}
			}
			if w.Close() != nil {
				return false
			}
			r, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				return false
			}
			var ev trace.Event
			for i := 0; ; i++ {
				err := r.Next(&ev)
				if err == io.EOF {
					if i != tr.NumEvents() {
						return false
					}
					break
				}
				if err != nil || ev != tr.Events[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 1, EventTarget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, binBuf bytes.Buffer
	hdr := Header{Resources: res.Trace.Resources, States: res.Trace.States, Start: res.Trace.Start, End: res.Trace.End}
	for _, tc := range []struct {
		f   Format
		buf *bytes.Buffer
	}{{FormatCSV, &csvBuf}, {FormatBinary, &binBuf}} {
		w, err := NewWriter(tc.buf, tc.f, hdr)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Trace.Events {
			w.WriteEvent(e)
		}
		w.Close()
	}
	if binBuf.Len() >= csvBuf.Len() {
		t.Errorf("binary (%d B) not smaller than CSV (%d B)", binBuf.Len(), csvBuf.Len())
	}
}

// TestStreamIntoMicroscopicModel closes the loop: simulate → write → open →
// BuildStream, and compare against the in-memory model.
func TestStreamIntoMicroscopicModel(t *testing.T) {
	res, err := mpisim.GenerateCase(grid5000.CaseA, mpisim.Config{Seed: 3, EventTarget: 15000})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "caseA.bin.gz")
	if err := WriteFile(path, res.Trace); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mStream, err := microscopic.BuildStream(r, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	mMem, err := microscopic.Build(res.Trace, microscopic.Options{Slices: 30})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < mMem.NumStates(); x++ {
		for s := 0; s < mMem.NumResources(); s++ {
			for ti := 0; ti < 30; ti++ {
				a, b := mMem.D(x, s, ti), mStream.D(x, s, ti)
				if math.Abs(a-b) > 1e-9 {
					t.Fatalf("D(%d,%d,%d): %g vs %g", x, s, ti, a, b)
				}
			}
		}
	}
}
