package traceio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ocelotl/internal/trace"
)

// The CSV trace format, line-oriented in the spirit of Paje's self-defined
// text traces:
//
//	# ocelotl-trace v1
//	window,0,9.5
//	resource,0,rennes/parapide/parapide-1/p0
//	state,0,MPI_Init
//	event,<resource>,<state>,<start>,<end>
//
// Header lines (window/resource/state) must precede event lines; blank
// lines and lines starting with '#' are ignored. Resource and state IDs
// must be dense, starting at 0, in increasing order.
const csvHeaderLine = "# ocelotl-trace v1"

type csvWriter struct {
	w   *bufio.Writer
	buf []byte
}

func newCSVWriter(w io.Writer, hdr Header) (*csvWriter, error) {
	cw := &csvWriter{w: bufio.NewWriterSize(w, 1<<20)}
	fmt.Fprintln(cw.w, csvHeaderLine)
	fmt.Fprintf(cw.w, "window,%s,%s\n", formatFloat(hdr.Start), formatFloat(hdr.End))
	for i, r := range hdr.Resources {
		fmt.Fprintf(cw.w, "resource,%d,%s\n", i, r)
	}
	for i, s := range hdr.States {
		fmt.Fprintf(cw.w, "state,%d,%s\n", i, s)
	}
	return cw, nil
}

func (cw *csvWriter) WriteEvent(e trace.Event) error {
	b := cw.buf[:0]
	b = append(b, "event,"...)
	b = strconv.AppendInt(b, int64(e.Resource), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.State), 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, e.Start, 'g', 17, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, e.End, 'g', 17, 64)
	b = append(b, '\n')
	cw.buf = b
	_, err := cw.w.Write(b)
	return err
}

func (cw *csvWriter) Close() error { return cw.w.Flush() }

// Flush pushes buffered lines down to the underlying writer so a live
// reader can see them mid-stream.
func (cw *csvWriter) Flush() error { return cw.w.Flush() }

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }

type csvReader struct {
	sc         *bufio.Scanner
	resources  []string
	states     []string
	start, end float64
	line       int
	// pending holds the first event line encountered while parsing the
	// header, so Next can emit it.
	pending  string
	havePend bool
}

func newCSVReader(r io.Reader) (*csvReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	cr := &csvReader{sc: sc}
	if err := cr.readHeader(); err != nil {
		return nil, err
	}
	return cr, nil
}

func (cr *csvReader) readHeader() error {
	for cr.sc.Scan() {
		cr.line++
		line := strings.TrimSpace(cr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, _ := strings.Cut(line, ",")
		switch kind {
		case "window":
			a, b, ok := strings.Cut(rest, ",")
			if !ok {
				return cr.errf("malformed window line")
			}
			var err error
			if cr.start, err = strconv.ParseFloat(a, 64); err != nil {
				return cr.errf("bad window start: %v", err)
			}
			if cr.end, err = strconv.ParseFloat(b, 64); err != nil {
				return cr.errf("bad window end: %v", err)
			}
		case "resource":
			idStr, name, ok := strings.Cut(rest, ",")
			if !ok {
				return cr.errf("malformed resource line")
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id != len(cr.resources) {
				return cr.errf("resource IDs must be dense and increasing (got %q, want %d)", idStr, len(cr.resources))
			}
			cr.resources = append(cr.resources, name)
		case "state":
			idStr, name, ok := strings.Cut(rest, ",")
			if !ok {
				return cr.errf("malformed state line")
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id != len(cr.states) {
				return cr.errf("state IDs must be dense and increasing (got %q, want %d)", idStr, len(cr.states))
			}
			cr.states = append(cr.states, name)
		case "event":
			if len(cr.resources) == 0 || len(cr.states) == 0 {
				return cr.errf("event line before resource/state declarations")
			}
			cr.pending, cr.havePend = line, true
			return nil
		default:
			return cr.errf("unknown line kind %q", kind)
		}
	}
	if err := cr.sc.Err(); err != nil {
		return err
	}
	// A header-only trace (no events) is legal.
	if len(cr.resources) == 0 || len(cr.states) == 0 {
		return cr.errf("missing resource/state declarations")
	}
	return nil
}

// errf wraps a decode failure with the reader's current 1-based line
// number as a CorruptError, so callers can recover the position with
// errors.As.
func (cr *csvReader) errf(format string, args ...interface{}) error {
	return &CorruptError{Format: FormatCSV, Offset: -1, Line: cr.line, Err: fmt.Errorf(format, args...)}
}

func (cr *csvReader) Resources() []string        { return cr.resources }
func (cr *csvReader) States() []string           { return cr.states }
func (cr *csvReader) Window() (float64, float64) { return cr.start, cr.end }
func (cr *csvReader) Close() error               { return nil }

func (cr *csvReader) Next(ev *trace.Event) error {
	var line string
	if cr.havePend {
		line, cr.havePend = cr.pending, false
	} else {
		for {
			if !cr.sc.Scan() {
				if err := cr.sc.Err(); err != nil {
					return err
				}
				return io.EOF
			}
			cr.line++
			line = strings.TrimSpace(cr.sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			break
		}
	}
	return cr.parseEvent(line, ev)
}

func (cr *csvReader) parseEvent(line string, ev *trace.Event) error {
	if err := parseCSVEventLine(line, len(cr.resources), len(cr.states), ev); err != nil {
		return cr.errf("%w", err)
	}
	return nil
}

// parseCSVEventLine decodes one "event,res,st,start,end" line against
// table sizes. It is shared by the batch reader (which adds the line
// number via errf) and the tail reader (which adds it via its own
// CorruptError).
func parseCSVEventLine(line string, numResources, numStates int, ev *trace.Event) error {
	kind, rest, _ := strings.Cut(line, ",")
	if kind != "event" {
		return fmt.Errorf("unexpected %q line in event section", kind)
	}
	parts := strings.Split(rest, ",")
	if len(parts) != 4 {
		return fmt.Errorf("event needs 4 fields, got %d", len(parts))
	}
	res, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad resource: %v", err)
	}
	st, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad state: %v", err)
	}
	start, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad start: %v", err)
	}
	end, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return fmt.Errorf("bad end: %v", err)
	}
	if res < 0 || res >= numResources {
		return fmt.Errorf("resource %d out of range [0,%d)", res, numResources)
	}
	if st < 0 || st >= numStates {
		return fmt.Errorf("state %d out of range [0,%d)", st, numStates)
	}
	ev.Resource = trace.ResourceID(res)
	ev.State = trace.StateID(st)
	ev.Start, ev.End = start, end
	return nil
}
