package traceio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ocelotl/internal/trace"
)

// The binary OCLT format, little-endian throughout:
//
//	magic   "OCLT"
//	u32     version (1)
//	f64     window start, f64 window end
//	u32     resource count, then per resource: u16 length + UTF-8 bytes
//	u32     state count, same encoding
//	events  until EOF, each:
//	          uvarint resource, uvarint state, f64 start, f64 end
//
// Varint IDs keep small ranks at 1–2 bytes; a typical event is ~18 bytes
// versus ~60 in CSV.
const (
	binaryMagic   = "OCLT"
	binaryVersion = 1
)

type binaryWriter struct {
	w   *bufio.Writer
	buf [2*binary.MaxVarintLen64 + 16]byte
}

func newBinaryWriter(w io.Writer, hdr Header) (*binaryWriter, error) {
	bw := &binaryWriter{w: bufio.NewWriterSize(w, 1<<20)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return nil, err
	}
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		bw.w.Write(b[:])
	}
	writeF64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		bw.w.Write(b[:])
	}
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("traceio: name longer than 64KiB")
		}
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
		bw.w.Write(b[:])
		bw.w.WriteString(s)
		return nil
	}
	writeU32(binaryVersion)
	writeF64(hdr.Start)
	writeF64(hdr.End)
	writeU32(uint32(len(hdr.Resources)))
	for _, r := range hdr.Resources {
		if err := writeStr(r); err != nil {
			return nil, err
		}
	}
	writeU32(uint32(len(hdr.States)))
	for _, s := range hdr.States {
		if err := writeStr(s); err != nil {
			return nil, err
		}
	}
	return bw, nil
}

func (bw *binaryWriter) WriteEvent(e trace.Event) error {
	if e.Resource < 0 || e.State < 0 {
		return fmt.Errorf("traceio: negative IDs in event %+v", e)
	}
	b := bw.buf[:0]
	b = binary.AppendUvarint(b, uint64(e.Resource))
	b = binary.AppendUvarint(b, uint64(e.State))
	var f [8]byte
	binary.LittleEndian.PutUint64(f[:], math.Float64bits(e.Start))
	b = append(b, f[:]...)
	binary.LittleEndian.PutUint64(f[:], math.Float64bits(e.End))
	b = append(b, f[:]...)
	_, err := bw.w.Write(b)
	return err
}

func (bw *binaryWriter) Close() error { return bw.w.Flush() }

// Flush pushes buffered records down to the underlying writer so a live
// reader can see them mid-stream.
func (bw *binaryWriter) Flush() error { return bw.w.Flush() }

// countReader tracks how many bytes of the stream have been consumed, so
// decode errors can say where the corruption sits. It forwards ReadByte
// (binary.ReadUvarint needs an io.ByteReader) without losing the count.
type countReader struct {
	r *bufio.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

func (cr *countReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.n++
	}
	return b, err
}

type binaryReader struct {
	r          *countReader
	resources  []string
	states     []string
	start, end float64
}

// corrupt wraps a decode failure with the reader's current byte offset.
func (br *binaryReader) corrupt(format string, args ...any) error {
	return &CorruptError{Format: FormatBinary, Offset: br.r.n, Line: 0, Err: fmt.Errorf(format, args...)}
}

func newBinaryReader(r *bufio.Reader) (*binaryReader, error) {
	br := &binaryReader{r: &countReader{r: r}}
	var magic [4]byte
	if _, err := io.ReadFull(br.r, magic[:]); err != nil {
		return nil, br.corrupt("%w", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, br.corrupt("bad magic %q", magic)
	}
	version, err := br.readU32()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, br.corrupt("unsupported version %d", version)
	}
	if br.start, err = br.readF64(); err != nil {
		return nil, err
	}
	if br.end, err = br.readF64(); err != nil {
		return nil, err
	}
	if br.resources, err = br.readStrings("resources"); err != nil {
		return nil, err
	}
	if br.states, err = br.readStrings("states"); err != nil {
		return nil, err
	}
	return br, nil
}

func (br *binaryReader) readU32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(br.r, b[:]); err != nil {
		return 0, br.corrupt("header: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (br *binaryReader) readF64() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(br.r, b[:]); err != nil {
		return 0, br.corrupt("header: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (br *binaryReader) readStrings(what string) ([]string, error) {
	n, err := br.readU32()
	if err != nil {
		return nil, err
	}
	if n > 100_000_000 {
		return nil, br.corrupt("implausible %s count %d", what, n)
	}
	// Grow incrementally rather than trusting n for the allocation: a
	// corrupt count just under the plausibility cap would otherwise
	// commit ~gigabytes before the first string read fails.
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([]string, 0, capHint)
	var lb [2]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br.r, lb[:]); err != nil {
			return nil, br.corrupt("%s table: %w", what, err)
		}
		l := binary.LittleEndian.Uint16(lb[:])
		buf := make([]byte, l)
		if _, err := io.ReadFull(br.r, buf); err != nil {
			return nil, br.corrupt("%s table: %w", what, err)
		}
		out = append(out, string(buf))
	}
	return out, nil
}

func (br *binaryReader) Resources() []string        { return br.resources }
func (br *binaryReader) States() []string           { return br.states }
func (br *binaryReader) Window() (float64, float64) { return br.start, br.end }
func (br *binaryReader) Close() error               { return nil }

func (br *binaryReader) Next(ev *trace.Event) error {
	recStart := br.r.n
	res, err := binary.ReadUvarint(br.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return br.corrupt("event: %w", err)
	}
	st, err := binary.ReadUvarint(br.r)
	if err != nil {
		return br.truncErr(recStart, err)
	}
	var b [16]byte
	if _, err := io.ReadFull(br.r, b[:]); err != nil {
		return br.truncErr(recStart, err)
	}
	if res >= uint64(len(br.resources)) {
		return br.corrupt("event at byte %d references resource %d, table has %d", recStart, res, len(br.resources))
	}
	if st >= uint64(len(br.states)) {
		return br.corrupt("event at byte %d references state %d, table has %d", recStart, st, len(br.states))
	}
	ev.Resource = trace.ResourceID(res)
	ev.State = trace.StateID(st)
	ev.Start = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
	ev.End = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	return nil
}

// truncErr converts an EOF mid-record into a corruption error naming the
// record's starting offset (a clean EOF is only legal at a record
// boundary).
func (br *binaryReader) truncErr(recStart int64, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return br.corrupt("truncated event record starting at byte %d", recStart)
	}
	return br.corrupt("event: %w", err)
}
