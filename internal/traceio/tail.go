package traceio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"ocelotl/internal/failpoint"
	"ocelotl/internal/trace"
)

// ErrIncomplete marks trace data that ends cleanly but mid-record: the
// writer simply has not flushed the rest yet. It is the retryable
// counterpart to CorruptError — a tail reader that hits it should poll
// again, while corrupt data never repairs itself. Test with IsIncomplete
// (or errors.Is); the sentinel may arrive wrapped with path context.
var ErrIncomplete = errors.New("traceio: incomplete trailing data")

// IsIncomplete reports whether err marks a retryable torn/partial tail
// (more data may arrive) as opposed to corruption or an I/O failure.
func IsIncomplete(err error) bool { return errors.Is(err, ErrIncomplete) }

// FailpointTail names the fault-injection site on the tail reader's
// refill path — one injection point per poll of the underlying file
// (chaos tests for live ingestion).
const FailpointTail = "traceio/tail"

// tailChunk is how many bytes each refill asks the file for.
const tailChunk = 64 << 10

// errNeedMore is the internal decode signal: the buffered bytes end
// mid-record. It never escapes TailReader.
var errNeedMore = errors.New("need more data")

// TailReader follows a trace file that is still being written. Unlike the
// batch Reader, a clean end-of-file is not final: Next returns
// ErrIncomplete when the buffered bytes end mid-record (or exactly at a
// record boundary), and a later call re-polls the file and picks up
// whatever the writer has flushed since. Undecodable bytes — bad IDs, a
// malformed line, a varint that cannot terminate — are still a
// CorruptError carrying the byte offset (binary) or line number (CSV),
// so callers can distinguish "wait" from "give up".
//
// Only uncompressed files can be followed: a gzip stream's trailing
// checksum makes "more data later" unrepresentable mid-stream.
//
// Offset reports the committed byte offset — the position after the last
// fully decoded record — which OpenTailAt accepts to resume a follow
// after a restart without re-reading the prefix. For CSV the offset is
// always a line boundary.
//
// A TailReader is not safe for concurrent use.
type TailReader struct {
	f      *os.File
	path   string
	format Format

	resources  []string
	states     []string
	start, end float64

	buf  []byte // read from the file but not yet decoded; buf[0] sits at offset off
	off  int64  // committed byte offset (position of buf[0] in the file)
	line int    // 1-based count of consumed CSV lines (0 for binary)
}

// OpenTail opens path for follow-mode reading. The header must already be
// complete on disk — for binary that means the string tables, for CSV the
// header lines up to and including the first "event" line (the only
// unambiguous signal that no more table lines follow). If the header is
// still partial the error satisfies IsIncomplete and the caller should
// retry; a present-but-garbage header is a CorruptError.
func OpenTail(path string) (*TailReader, error) { return openTail(path, -1) }

// OpenTailAt is OpenTail resuming from a committed byte offset previously
// reported by Offset. The header is re-read and validated first; offset
// must not point inside it. For CSV, line numbers in subsequent
// CorruptErrors are relative to the resume point.
func OpenTailAt(path string, offset int64) (*TailReader, error) {
	if offset < 0 {
		return nil, fmt.Errorf("traceio: %s: negative resume offset %d", path, offset)
	}
	return openTail(path, offset)
}

func openTail(path string, offset int64) (*TailReader, error) {
	if err := failpoint.Inject(FailpointOpen); err != nil {
		return nil, fmt.Errorf("traceio: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t := &TailReader{f: f, path: path}
	if err := t.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if offset >= 0 {
		if offset < t.off {
			f.Close()
			return nil, fmt.Errorf("traceio: %s: resume offset %d is inside the header (events start at byte %d)", path, offset, t.off)
		}
		t.buf, t.off, t.line = nil, offset, 0
	}
	return t, nil
}

// Resources returns the header's resource table.
func (t *TailReader) Resources() []string { return t.resources }

// States returns the header's state table.
func (t *TailReader) States() []string { return t.states }

// Window returns the header's declared window. For a live trace the
// declared end is the writer's plan, not what has been ingested — track
// the horizon from the events themselves.
func (t *TailReader) Window() (start, end float64) { return t.start, t.end }

// Format reports the detected encoding.
func (t *TailReader) Format() Format { return t.format }

// Offset returns the committed byte offset: the position just past the
// last record Next decoded (or past the header if none yet). Passing it
// to OpenTailAt resumes the follow exactly there.
func (t *TailReader) Offset() int64 { return t.off }

// Close releases the underlying file.
func (t *TailReader) Close() error { return t.f.Close() }

// Next decodes the next event. It returns ErrIncomplete when the file
// currently ends mid-record or at a record boundary — call again later;
// if the writer has flushed more, the read resumes where it left off.
func (t *TailReader) Next(ev *trace.Event) error {
	for {
		var n int
		var err error
		if t.format == FormatBinary {
			n, err = t.decodeBinary(ev)
		} else {
			n, err = t.decodeCSV(ev)
		}
		if err == nil {
			t.buf = t.buf[n:]
			t.off += int64(n)
			return nil
		}
		if err != errNeedMore {
			return err
		}
		nr, rerr := t.fill()
		if nr == 0 {
			if rerr != nil && rerr != io.EOF {
				return rerr
			}
			return ErrIncomplete
		}
	}
}

// fill reads whatever the file has past the buffered bytes. It returns
// the number of new bytes (0 at the current end of file).
func (t *TailReader) fill() (int, error) {
	if err := failpoint.Inject(FailpointTail); err != nil {
		return 0, fmt.Errorf("traceio: %s: %w", t.path, err)
	}
	if cap(t.buf)-len(t.buf) < tailChunk {
		nb := make([]byte, len(t.buf), len(t.buf)+tailChunk)
		copy(nb, t.buf)
		t.buf = nb
	}
	b := t.buf[len(t.buf) : len(t.buf)+tailChunk]
	n, err := t.f.ReadAt(b, t.off+int64(len(t.buf)))
	t.buf = t.buf[:len(t.buf)+n]
	return n, err
}

func (t *TailReader) corruptAt(offset int64, format string, args ...any) error {
	return &CorruptError{Format: FormatBinary, Offset: offset, Line: 0, Err: fmt.Errorf(format, args...)}
}

// decodeBinary tries to decode one OCLT event record from the head of the
// buffer, returning the bytes consumed. Insufficient bytes is errNeedMore
// — the torn-record case — while a non-terminating varint or an
// out-of-range ID is corruption (with ≥ MaxVarintLen64 bytes available a
// varint either terminates or provably overflows, so the two cannot be
// confused).
func (t *TailReader) decodeBinary(ev *trace.Event) (int, error) {
	b := t.buf
	res, n1 := binary.Uvarint(b)
	if n1 == 0 {
		return 0, errNeedMore
	}
	if n1 < 0 {
		return 0, t.corruptAt(t.off, "event at byte %d: resource varint overflows 64 bits", t.off)
	}
	st, n2 := binary.Uvarint(b[n1:])
	if n2 == 0 {
		return 0, errNeedMore
	}
	if n2 < 0 {
		return 0, t.corruptAt(t.off, "event at byte %d: state varint overflows 64 bits", t.off)
	}
	need := n1 + n2 + 16
	if len(b) < need {
		return 0, errNeedMore
	}
	if res >= uint64(len(t.resources)) {
		return 0, t.corruptAt(t.off, "event at byte %d references resource %d, table has %d", t.off, res, len(t.resources))
	}
	if st >= uint64(len(t.states)) {
		return 0, t.corruptAt(t.off, "event at byte %d references state %d, table has %d", t.off, st, len(t.states))
	}
	ev.Resource = trace.ResourceID(res)
	ev.State = trace.StateID(st)
	ev.Start = math.Float64frombits(binary.LittleEndian.Uint64(b[n1+n2:]))
	ev.End = math.Float64frombits(binary.LittleEndian.Uint64(b[n1+n2+8:]))
	return need, nil
}

// decodeCSV tries to decode one event line from the head of the buffer.
// Only complete lines (terminated by '\n') are considered — a trailing
// line fragment is the torn-record case. Blank and comment lines are
// consumed together with the event line that follows them, so the
// committed offset always lands on a line boundary.
func (t *TailReader) decodeCSV(ev *trace.Event) (int, error) {
	pos := 0
	lineNo := t.line
	for {
		i := bytes.IndexByte(t.buf[pos:], '\n')
		if i < 0 {
			return 0, errNeedMore
		}
		lineNo++
		line := strings.TrimSpace(string(t.buf[pos : pos+i]))
		pos += i + 1
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseCSVEventLine(line, len(t.resources), len(t.states), ev); err != nil {
			t.line = lineNo
			return 0, &CorruptError{Format: FormatCSV, Offset: -1, Line: lineNo, Err: err}
		}
		t.line = lineNo
		return pos, nil
	}
}

// readHeader grows the buffer until the header parses completely, the
// data proves corrupt, or the file runs out mid-header (ErrIncomplete).
func (t *TailReader) readHeader() error {
	for {
		done, err := t.tryParseHeader()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		n, rerr := t.fill()
		if n == 0 {
			if rerr != nil && rerr != io.EOF {
				return rerr
			}
			return fmt.Errorf("traceio: %s: header: %w", t.path, ErrIncomplete)
		}
	}
}

// tryParseHeader attempts a header parse over the buffered prefix.
// done=false means more bytes are needed.
func (t *TailReader) tryParseHeader() (done bool, err error) {
	if len(t.buf) < 2 {
		return false, nil
	}
	if t.buf[0] == 0x1f && t.buf[1] == 0x8b {
		return false, fmt.Errorf("traceio: %s: cannot follow gzip-compressed traces (the trailing checksum makes a live tail unreadable)", t.path)
	}
	if len(t.buf) < len(binaryMagic) {
		return false, nil
	}
	if string(t.buf[:len(binaryMagic)]) == binaryMagic {
		return t.tryParseBinaryHeader()
	}
	return t.tryParseCSVHeader()
}

// tryParseBinaryHeader reuses the batch reader's header decoder over the
// buffered bytes; its countReader tells exactly how many bytes the header
// occupies. A decode failure caused by running out of bytes is "not yet",
// anything else is corrupt.
func (t *TailReader) tryParseBinaryHeader() (bool, error) {
	br, err := newBinaryReader(bufio.NewReader(bytes.NewReader(t.buf)))
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return false, nil
		}
		return false, fmt.Errorf("traceio: %s: %w", t.path, err)
	}
	t.format = FormatBinary
	t.resources, t.states = br.resources, br.states
	t.start, t.end = br.start, br.end
	n := br.r.n
	t.buf = t.buf[n:]
	t.off += n
	return true, nil
}

// tryParseCSVHeader parses complete header lines from the buffer. The
// header is complete at the first "event" line (the only unambiguous end
// of the table section); everything before it is committed, the event
// line itself is left for Next.
func (t *TailReader) tryParseCSVHeader() (bool, error) {
	var resources, states []string
	var start, end float64
	pos, lineNo := 0, 0
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("traceio: %s: %w", t.path,
			&CorruptError{Format: FormatCSV, Offset: -1, Line: lineNo, Err: fmt.Errorf(format, args...)})
	}
	for {
		i := bytes.IndexByte(t.buf[pos:], '\n')
		if i < 0 {
			return false, nil
		}
		lineNo++
		line := strings.TrimSpace(string(t.buf[pos : pos+i]))
		lineStart := pos
		pos += i + 1
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, _ := strings.Cut(line, ",")
		switch kind {
		case "window":
			a, b, ok := strings.Cut(rest, ",")
			if !ok {
				return false, corrupt("malformed window line")
			}
			var err error
			if start, err = strconv.ParseFloat(a, 64); err != nil {
				return false, corrupt("bad window start: %v", err)
			}
			if end, err = strconv.ParseFloat(b, 64); err != nil {
				return false, corrupt("bad window end: %v", err)
			}
		case "resource":
			idStr, name, ok := strings.Cut(rest, ",")
			if !ok {
				return false, corrupt("malformed resource line")
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id != len(resources) {
				return false, corrupt("resource IDs must be dense and increasing (got %q, want %d)", idStr, len(resources))
			}
			resources = append(resources, name)
		case "state":
			idStr, name, ok := strings.Cut(rest, ",")
			if !ok {
				return false, corrupt("malformed state line")
			}
			id, err := strconv.Atoi(idStr)
			if err != nil || id != len(states) {
				return false, corrupt("state IDs must be dense and increasing (got %q, want %d)", idStr, len(states))
			}
			states = append(states, name)
		case "event":
			if len(resources) == 0 || len(states) == 0 {
				return false, corrupt("event line before resource/state declarations")
			}
			t.format = FormatCSV
			t.resources, t.states = resources, states
			t.start, t.end = start, end
			t.buf = t.buf[lineStart:]
			t.off += int64(lineStart)
			t.line = lineNo - 1
			return true, nil
		default:
			return false, corrupt("unknown line kind %q", kind)
		}
	}
}
