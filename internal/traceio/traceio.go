// Package traceio reads and writes execution traces. Two formats are
// provided, both streamed so Table II-scale traces (hundreds of millions of
// events, gigabytes on disk) never need to fit in memory:
//
//   - CSV: a Paje-flavoured line format, human-readable and diffable — the
//     header declares the window, resources and states, then one "event"
//     line per state occurrence;
//   - binary: a compact little-endian record format ("OCLT"), roughly 5×
//     smaller and an order of magnitude faster to decode.
//
// Either format can be gzip-compressed; readers sniff compression and
// format from the content, writers choose from the file extension
// (.csv, .csv.gz, .bin, .bin.gz).
//
// The paper's tooling reads Score-P/OTF2 traces; these codecs play that
// role (the traces here are "parsed manually" from our own formats), and
// the "trace reading" phase of Table II is measured through them.
package traceio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"iter"
	"os"
	"strings"

	"ocelotl/internal/failpoint"
	"ocelotl/internal/trace"
)

// Format identifies a trace encoding.
type Format int

const (
	// FormatCSV is the Paje-flavoured text format.
	FormatCSV Format = iota
	// FormatBinary is the compact OCLT record format.
	FormatBinary
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// FormatForPath picks the format and compression from a file name.
// Unknown extensions default to binary, uncompressed.
func FormatForPath(path string) (f Format, gzipped bool) {
	p := strings.ToLower(path)
	if strings.HasSuffix(p, ".gz") {
		gzipped = true
		p = strings.TrimSuffix(p, ".gz")
	}
	if strings.HasSuffix(p, ".csv") || strings.HasSuffix(p, ".paje") || strings.HasSuffix(p, ".txt") {
		return FormatCSV, gzipped
	}
	return FormatBinary, gzipped
}

// Writer is a streaming trace encoder. Events may arrive in any order.
// Close must be called to flush buffers (and terminate gzip streams).
type Writer interface {
	WriteEvent(trace.Event) error
	Close() error
}

// Flusher is implemented by writers that can push everything written so
// far down to the destination without closing the stream — what a live
// writer calls between batches so a TailReader sees complete records.
// All writers returned by NewWriter and CreateFile implement it.
type Flusher interface {
	Flush() error
}

// Flush flushes w if it supports mid-stream flushing and is a no-op
// otherwise.
func Flush(w Writer) error {
	if fl, ok := w.(Flusher); ok {
		return fl.Flush()
	}
	return nil
}

// Header carries the trace metadata every format encodes before events.
type Header struct {
	Resources  []string
	States     []string
	Start, End float64
}

// Validate rejects headers that would produce unreadable traces.
func (h Header) Validate() error {
	if len(h.Resources) == 0 {
		return fmt.Errorf("traceio: header has no resources")
	}
	if len(h.States) == 0 {
		return fmt.Errorf("traceio: header has no states")
	}
	for _, r := range h.Resources {
		if strings.ContainsAny(r, ",\n") {
			return fmt.Errorf("traceio: resource path %q contains a delimiter", r)
		}
	}
	for _, s := range h.States {
		if strings.ContainsAny(s, ",\n") {
			return fmt.Errorf("traceio: state name %q contains a delimiter", s)
		}
	}
	return nil
}

// NewWriter returns a streaming encoder for the given format writing to w.
// The caller remains responsible for closing w if it is a file.
func NewWriter(w io.Writer, format Format, hdr Header) (Writer, error) {
	if err := hdr.Validate(); err != nil {
		return nil, err
	}
	switch format {
	case FormatCSV:
		return newCSVWriter(w, hdr)
	case FormatBinary:
		return newBinaryWriter(w, hdr)
	default:
		return nil, fmt.Errorf("traceio: unknown format %v", format)
	}
}

// Reader is a streaming trace decoder. It implements
// microscopic.EventSource so models can be built without materializing
// events.
type Reader interface {
	Resources() []string
	States() []string
	Window() (start, end float64)
	Next(*trace.Event) error // io.EOF at end
	Close() error
}

// fileWriter wraps a Writer with the file and optional gzip layer beneath
// it, closing all three in order.
type fileWriter struct {
	Writer
	gz *gzip.Writer
	f  *os.File
}

// Flush pushes buffered events through the encoder (and the gzip layer,
// as a sync point) down to the file, so a concurrent reader of the path
// sees every record written so far.
func (fw *fileWriter) Flush() error {
	if fl, ok := fw.Writer.(Flusher); ok {
		if err := fl.Flush(); err != nil {
			return err
		}
	}
	if fw.gz != nil {
		return fw.gz.Flush()
	}
	return nil
}

func (fw *fileWriter) Close() error {
	err := fw.Writer.Close()
	if fw.gz != nil {
		if e := fw.gz.Close(); err == nil {
			err = e
		}
	}
	if e := fw.f.Close(); err == nil {
		err = e
	}
	return err
}

// CreateFile opens path for writing and returns a streaming writer using
// the format implied by the extension.
func CreateFile(path string, hdr Header) (Writer, error) {
	format, gzipped := FormatForPath(path)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if gzipped {
		gz = gzip.NewWriter(f)
		w = gz
	}
	inner, err := NewWriter(w, format, hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileWriter{Writer: inner, gz: gz, f: f}, nil
}

// WriteFile encodes a whole in-memory trace to path (format from the
// extension).
func WriteFile(path string, tr *trace.Trace) error {
	start, end := tr.Window()
	w, err := CreateFile(path, Header{Resources: tr.Resources, States: tr.States, Start: start, End: end})
	if err != nil {
		return err
	}
	for _, e := range tr.Events {
		if err := w.WriteEvent(e); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// fileReader pairs a Reader with the underlying closers.
type fileReader struct {
	Reader
	closers []io.Closer
}

func (fr *fileReader) Close() error {
	err := fr.Reader.Close()
	for i := len(fr.closers) - 1; i >= 0; i-- {
		if e := fr.closers[i].Close(); err == nil {
			err = e
		}
	}
	return err
}

// FailpointOpen names the fault-injection site at the head of every
// trace-file open (chaos tests for the load path).
const FailpointOpen = "traceio/open"

// OpenFile opens a trace file for streaming reads, sniffing gzip
// compression and the format from the content (not the name).
func OpenFile(path string) (Reader, error) {
	if err := failpoint.Inject(FailpointOpen); err != nil {
		return nil, fmt.Errorf("traceio: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	closers := []io.Closer{f}
	magic, err := br.Peek(2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("traceio: %s: %w", path, err)
	}
	var src io.Reader = br
	if magic[0] == 0x1f && magic[1] == 0x8b { // gzip
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("traceio: %s: %w", path, err)
		}
		closers = append(closers, gz)
		src = bufio.NewReaderSize(gz, 1<<20)
	}
	inner, err := NewReader(src)
	if err != nil {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i].Close()
		}
		return nil, fmt.Errorf("traceio: %s: %w", path, err)
	}
	return &fileReader{Reader: inner, closers: closers}, nil
}

// NewReader sniffs the format from the stream content and returns the
// matching decoder. The stream must not be gzip-compressed (OpenFile
// handles that layer).
func NewReader(r io.Reader) (Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("traceio: stream too short: %w", err)
	}
	if string(magic) == binaryMagic {
		return newBinaryReader(br)
	}
	return newCSVReader(br)
}

// Events adapts a streaming source's Next loop to a single-pass range
// iterator: each yielded pair is either (event, nil) or, exactly once at
// the end of a failed stream, (zero, err). io.EOF is consumed, not
// yielded. No `[]Event` is ever materialized, and decode errors pass
// through unwrapped, so a CorruptError's byte offset survives into the
// consumer — the store builder reports "trace corrupt at byte N" from
// the far side of this iterator. The source is NOT closed; callers own
// its lifetime (break out of the range freely, then Close).
func Events(src interface{ Next(*trace.Event) error }) iter.Seq2[trace.Event, error] {
	return func(yield func(trace.Event, error) bool) {
		var ev trace.Event
		for {
			if err := src.Next(&ev); err != nil {
				if err != io.EOF {
					yield(trace.Event{}, err)
				}
				return
			}
			if !yield(ev, nil) {
				return
			}
		}
	}
}

// ReadFile decodes a whole trace file into memory.
func ReadFile(path string) (*trace.Trace, error) {
	r, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	tr := trace.New(append([]string(nil), r.Resources()...), append([]string(nil), r.States()...))
	tr.Start, tr.End = r.Window()
	for ev, err := range Events(r) {
		if err != nil {
			return nil, err
		}
		tr.AddEvent(ev)
	}
	return tr, nil
}

// CountEvents streams through a trace file and returns the event count —
// the cheap full-scan used by tooling to report Table II-style rows.
func CountEvents(path string) (int64, error) {
	r, err := OpenFile(path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	var n int64
	for _, err := range Events(r) {
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
