package traceio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"ocelotl/internal/trace"
)

// buildValid returns a valid encoded trace in the given format.
func buildValid(t *testing.T, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, format, Header{
		Resources: []string{"c/a", "c/b"},
		States:    []string{"x", "y"},
		Start:     0, End: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		w.WriteEvent(trace.Event{
			Resource: trace.ResourceID(i % 2),
			State:    trace.StateID(i % 2),
			Start:    float64(i) * 0.1,
			End:      float64(i)*0.1 + 0.05,
		})
	}
	w.Close()
	return buf.Bytes()
}

// drain reads a stream to EOF or error, returning the error (nil on clean
// EOF). It must never panic, whatever the input.
func drain(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var ev trace.Event
	for {
		if err := r.Next(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestRandomMutationsNeverPanic: flip, truncate and splice the encodings at
// random; decoders must fail cleanly (error or valid decode), never panic,
// and never loop forever.
func TestRandomMutationsNeverPanic(t *testing.T) {
	for _, format := range []Format{FormatCSV, FormatBinary} {
		valid := buildValid(t, format)
		rng := rand.New(rand.NewSource(int64(format) + 1))
		for trial := 0; trial < 300; trial++ {
			data := append([]byte(nil), valid...)
			switch trial % 3 {
			case 0: // flip random bytes
				for k := 0; k < 1+rng.Intn(8); k++ {
					data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
				}
			case 1: // truncate
				data = data[:rng.Intn(len(data))]
			case 2: // splice a random chunk
				at := rng.Intn(len(data))
				junk := make([]byte, rng.Intn(32))
				rng.Read(junk)
				data = append(data[:at:at], append(junk, data[at:]...)...)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v trial %d: panic %v", format, trial, r)
					}
				}()
				_ = drain(data) // error or success are both acceptable
			}()
		}
	}
}

// TestRandomGarbageNeverPanics feeds pure noise to the sniffer.
func TestRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic %v", trial, r)
				}
			}()
			_ = drain(data)
		}()
	}
}

// TestMutatedEventsAreRangeChecked: mutations that survive decoding must
// still produce in-range IDs (the readers validate against their tables).
func TestMutatedEventsAreRangeChecked(t *testing.T) {
	valid := buildValid(t, FormatBinary)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), valid...)
		data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		nRes, nSt := len(r.Resources()), len(r.States())
		var ev trace.Event
		for {
			if err := r.Next(&ev); err != nil {
				break
			}
			if int(ev.Resource) >= nRes || ev.Resource < 0 || int(ev.State) >= nSt || ev.State < 0 {
				t.Fatalf("trial %d: out-of-range event %+v escaped validation", trial, ev)
			}
		}
	}
}
