package traceio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"ocelotl/internal/trace"
)

// buildValid returns a valid encoded trace in the given format.
func buildValid(t *testing.T, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, format, Header{
		Resources: []string{"c/a", "c/b"},
		States:    []string{"x", "y"},
		Start:     0, End: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		w.WriteEvent(trace.Event{
			Resource: trace.ResourceID(i % 2),
			State:    trace.StateID(i % 2),
			Start:    float64(i) * 0.1,
			End:      float64(i)*0.1 + 0.05,
		})
	}
	w.Close()
	return buf.Bytes()
}

// drain reads a stream to EOF or error, returning the error (nil on clean
// EOF). It must never panic, whatever the input.
func drain(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var ev trace.Event
	for {
		if err := r.Next(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestRandomMutationsNeverPanic: flip, truncate and splice the encodings at
// random; decoders must fail cleanly (error or valid decode), never panic,
// and never loop forever.
func TestRandomMutationsNeverPanic(t *testing.T) {
	for _, format := range []Format{FormatCSV, FormatBinary} {
		valid := buildValid(t, format)
		rng := rand.New(rand.NewSource(int64(format) + 1))
		for trial := 0; trial < 300; trial++ {
			data := append([]byte(nil), valid...)
			switch trial % 3 {
			case 0: // flip random bytes
				for k := 0; k < 1+rng.Intn(8); k++ {
					data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
				}
			case 1: // truncate
				data = data[:rng.Intn(len(data))]
			case 2: // splice a random chunk
				at := rng.Intn(len(data))
				junk := make([]byte, rng.Intn(32))
				rng.Read(junk)
				data = append(data[:at:at], append(junk, data[at:]...)...)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v trial %d: panic %v", format, trial, r)
					}
				}()
				_ = drain(data) // error or success are both acceptable
			}()
		}
	}
}

// TestRandomGarbageNeverPanics feeds pure noise to the sniffer.
func TestRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic %v", trial, r)
				}
			}()
			_ = drain(data)
		}()
	}
}

// TestTruncatedBinaryReportsOffset pins the structured error contract: a
// binary stream cut mid-record fails with a CorruptError whose byte
// offset lands inside the severed record, and the message names the byte
// position — IsCorrupt distinguishes it from an I/O failure.
func TestTruncatedBinaryReportsOffset(t *testing.T) {
	valid := buildValid(t, FormatBinary)
	// Each event record of this trace is 18 bytes (two 1-byte varints +
	// two f64s); chopping 5 bytes severs the final record.
	data := valid[:len(valid)-5]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var ev trace.Event
	var lastErr error
	for {
		if err := r.Next(&ev); err != nil {
			if err == io.EOF {
				t.Fatal("truncated stream drained to a clean EOF")
			}
			lastErr = err
			break
		}
	}
	var ce *CorruptError
	if !errors.As(lastErr, &ce) {
		t.Fatalf("truncation error %v (%T) is not a CorruptError", lastErr, lastErr)
	}
	if !IsCorrupt(lastErr) {
		t.Fatalf("IsCorrupt(%v) = false", lastErr)
	}
	if ce.Format != FormatBinary {
		t.Fatalf("CorruptError.Format = %v, want binary", ce.Format)
	}
	if ce.Offset < int64(len(data)-18) || ce.Offset > int64(len(data)) {
		t.Fatalf("CorruptError.Offset = %d, want within the severed record [%d,%d]", ce.Offset, len(data)-18, len(data))
	}
	if !strings.Contains(lastErr.Error(), "byte") {
		t.Fatalf("error %q does not name a byte position", lastErr)
	}
	if ce.Unwrap() == nil {
		t.Fatal("CorruptError does not unwrap to its cause")
	}
}

// TestGarbageCSVLineReportsLineNumber splices an unparseable event line
// into a valid CSV trace at a known position and checks the CorruptError
// carries exactly that 1-based line number.
func TestGarbageCSVLineReportsLineNumber(t *testing.T) {
	valid := buildValid(t, FormatCSV)
	lines := strings.Split(string(valid), "\n")
	const at = 10 // 0-based split index → 1-based line number at+1
	lines = append(lines[:at:at], append([]string{"event,not-a-number,0,0,1"}, lines[at:]...)...)
	err := drain([]byte(strings.Join(lines, "\n")))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("garbage-line error %v (%T) is not a CorruptError", err, err)
	}
	if ce.Format != FormatCSV {
		t.Fatalf("CorruptError.Format = %v, want csv", ce.Format)
	}
	if ce.Line != at+1 {
		t.Fatalf("CorruptError.Line = %d, want %d", ce.Line, at+1)
	}
	if want := fmt.Sprintf("line %d", at+1); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

// TestCSVMissingHeaderIsCorrupt: a stream that sniffs as CSV but never
// declares resources/states fails as corruption, not success.
func TestCSVMissingHeaderIsCorrupt(t *testing.T) {
	err := drain([]byte("# ocelotl-trace v1\nwindow,0,10\n"))
	if !IsCorrupt(err) {
		t.Fatalf("header-less CSV returned %v, want a CorruptError", err)
	}
}

// TestMutatedEventsAreRangeChecked: mutations that survive decoding must
// still produce in-range IDs (the readers validate against their tables).
func TestMutatedEventsAreRangeChecked(t *testing.T) {
	valid := buildValid(t, FormatBinary)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), valid...)
		data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		nRes, nSt := len(r.Resources()), len(r.States())
		var ev trace.Event
		for {
			if err := r.Next(&ev); err != nil {
				break
			}
			if int(ev.Resource) >= nRes || ev.Resource < 0 || int(ev.State) >= nSt || ev.State < 0 {
				t.Fatalf("trial %d: out-of-range event %+v escaped validation", trial, ev)
			}
		}
	}
}
