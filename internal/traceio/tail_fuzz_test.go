package traceio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ocelotl/internal/trace"
)

// fuzzTailDifferential is the shared property both byte-level fuzzers
// check: on arbitrary bytes, the tail reader must (1) never panic,
// (2) decode exactly the events the batch reader decodes before either
// stops, and (3) classify its stop correctly — corruption claimed by the
// tail implies the batch reader rejects the file too (a torn tail is the
// one place they legitimately disagree: batch calls mid-record EOF
// corrupt, tail calls it retryable).
func fuzzTailDifferential(t *testing.T, data []byte, name string) {
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var batchEvents []trace.Event
	var batchErr error
	if r, err := OpenFile(path); err != nil {
		batchErr = err
	} else {
		var ev trace.Event
		for {
			if err := r.Next(&ev); err != nil {
				if err != io.EOF {
					batchErr = err
				}
				break
			}
			batchEvents = append(batchEvents, ev)
		}
		r.Close()
	}

	tail, err := OpenTail(path)
	if err != nil {
		if IsIncomplete(err) || os.IsNotExist(err) {
			return // retryable — nothing further to compare
		}
		// A hard open error (corrupt header, gzip) must not be a file the
		// batch reader accepts in full.
		if batchErr == nil && len(batchEvents) > 0 && !isGzipData(data) {
			t.Fatalf("tail open failed (%v) on a file the batch reader read fully", err)
		}
		return
	}
	defer tail.Close()

	tailEvents, terr := drainTail(tail)
	n := len(tailEvents)
	if len(batchEvents) < n {
		n = len(batchEvents)
	}
	for i := 0; i < n; i++ {
		if tailEvents[i] != batchEvents[i] {
			t.Fatalf("event %d diverges: tail %+v, batch %+v", i, tailEvents[i], batchEvents[i])
		}
	}
	if IsCorrupt(terr) {
		var ce *CorruptError
		if asCorrupt(terr, &ce) && ce.Offset < -1 {
			t.Fatalf("corrupt error with nonsense offset: %+v", ce)
		}
		if batchErr == nil {
			t.Fatalf("tail reports corruption (%v) on a file the batch reader accepts", terr)
		}
	} else if !IsIncomplete(terr) {
		t.Fatalf("tail terminal error is neither incomplete nor corrupt: %v", terr)
	}
}

func isGzipData(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

// FuzzTailBinary mutates OCLT binary bytes under the tail reader.
func FuzzTailBinary(f *testing.F) {
	tr := fuzzSampleTrace()
	full := encodeTraceBytes(f, tr, FormatBinary)
	f.Add(full)
	f.Add(full[:len(full)-7])
	f.Add(full[:17])
	f.Add([]byte("OCLT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTailDifferential(t, data, "t.bin")
	})
}

// FuzzTailCSV mutates CSV trace bytes under the tail reader.
func FuzzTailCSV(f *testing.F) {
	tr := fuzzSampleTrace()
	full := encodeTraceBytes(f, tr, FormatCSV)
	f.Add(full)
	f.Add(full[:len(full)-5])
	f.Add([]byte("# ocelotl-trace v1\nwindow,0,1\n"))
	f.Add([]byte("event,"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTailDifferential(t, data, "t.csv")
	})
}

// FuzzTailTorn cuts a valid generated trace at an arbitrary byte position
// and follows it: the prefix must read as an exact event prefix with a
// retryable incomplete (never corruption), and appending the remainder
// must complete the stream with no event lost, duplicated or altered.
func FuzzTailTorn(f *testing.F) {
	f.Add(uint8(4), uint16(0), false)
	f.Add(uint8(4), uint16(31), false)
	f.Add(uint8(9), uint16(77), true)
	f.Add(uint8(1), uint16(9999), true)
	f.Add(uint8(0), uint16(12), false)
	f.Fuzz(func(t *testing.T, nEv uint8, cut uint16, useCSV bool) {
		format := FormatBinary
		name := "t.bin"
		if useCSV {
			format, name = FormatCSV, "t.csv"
		}
		tr := trace.New([]string{"A/a0", "A/a1", "B/b0"}, []string{"run", "wait"})
		tr.Start, tr.End = 0, 10
		for i := 0; i < int(nEv); i++ {
			s := float64(i) * 10 / float64(nEv)
			tr.Add(trace.ResourceID(i%3), trace.StateID(i%2), s, s+0.5)
		}
		full := encodeTraceBytes(t, tr, format)
		pos := int(cut) % (len(full) + 1)

		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, full[:pos], 0o644); err != nil {
			t.Fatal(err)
		}
		var head []trace.Event
		tail, err := OpenTail(path)
		if err != nil {
			if !IsIncomplete(err) {
				t.Fatalf("cut %d/%d: OpenTail on a valid prefix: %v", pos, len(full), err)
			}
		} else {
			defer tail.Close()
			var terr error
			head, terr = drainTail(tail)
			if !IsIncomplete(terr) {
				t.Fatalf("cut %d/%d: torn tail error = %v, want incomplete", pos, len(full), terr)
			}
		}

		fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(full[pos:]); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		if tail == nil {
			if tail, err = OpenTail(path); err != nil {
				// A zero-event CSV trace never proves its header complete
				// (the first event line is the only completeness signal) —
				// permanently retryable by design.
				if IsIncomplete(err) && len(tr.Events) == 0 {
					return
				}
				t.Fatalf("cut %d/%d: OpenTail after completing: %v", pos, len(full), err)
			}
			defer tail.Close()
		}
		rest, terr := drainTail(tail)
		if !IsIncomplete(terr) {
			t.Fatalf("cut %d/%d: completed tail error = %v, want incomplete", pos, len(full), terr)
		}
		got := append(head, rest...)
		if len(got) != len(tr.Events) {
			t.Fatalf("cut %d/%d: got %d events, want %d", pos, len(full), len(got), len(tr.Events))
		}
		for i := range got {
			if got[i] != tr.Events[i] {
				t.Fatalf("cut %d/%d: event %d mismatch: %+v != %+v", pos, len(full), i, got[i], tr.Events[i])
			}
		}
	})
}

// fuzzSampleTrace is sampleTrace, duplicated so fuzz seeds stay stable
// even if the shared test fixture evolves.
func fuzzSampleTrace() *trace.Trace {
	tr := trace.New([]string{"A/a0", "A/a1", "B/b0"}, []string{"run", "wait"})
	tr.Start, tr.End = 0, 10
	tr.Add(0, 0, 0, 2.5)
	tr.Add(1, 1, 0.25, 9.75)
	tr.Add(2, 0, 3, 4)
	tr.Add(2, 1, 4, 10)
	return tr
}

// encodeTraceBytes is encodeTrace for both *testing.T and *testing.F.
func encodeTraceBytes(tb testing.TB, tr *trace.Trace, format Format) []byte {
	tb.Helper()
	var buf writerBuffer
	start, end := tr.Window()
	w, err := NewWriter(&buf, format, Header{Resources: tr.Resources, States: tr.States, Start: start, End: end})
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.WriteEvent(e); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.b
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestWriteTailFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/ when OCELOTL_WRITE_CORPUS=1 — run it after changing the
// trace formats so CI's fuzz smoke starts from valid-looking inputs.
func TestWriteTailFuzzCorpus(t *testing.T) {
	if os.Getenv("OCELOTL_WRITE_CORPUS") == "" {
		t.Skip("set OCELOTL_WRITE_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	tr := fuzzSampleTrace()
	write := func(fuzzName, fileName, body string) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fileName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bin := encodeTraceBytes(t, tr, FormatBinary)
	csv := encodeTraceBytes(t, tr, FormatCSV)
	write("FuzzTailBinary", "valid", fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", bin))
	write("FuzzTailBinary", "torn", fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", bin[:len(bin)-9]))
	write("FuzzTailBinary", "flipped", fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", flipByte(bin, len(bin)-20)))
	write("FuzzTailCSV", "valid", fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", csv))
	write("FuzzTailCSV", "torn", fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", csv[:len(csv)-4]))
	write("FuzzTailCSV", "flipped", fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", flipByte(csv, len(csv)-10)))
	write("FuzzTailTorn", "bin-mid-record", "go test fuzz v1\nbyte(13)\nuint16(61)\nbool(false)\n")
	write("FuzzTailTorn", "csv-mid-line", "go test fuzz v1\nbyte(13)\nuint16(61)\nbool(true)\n")
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	if i >= 0 && i < len(out) {
		out[i] ^= 0xff
	}
	return out
}
